// The AnalysisArtifacts bundle: everything the static analyzer proves
// about a program, packaged for runtime consumption.
//
// analyze_program() builds the CFG, runs the dataflow pack, derives
// range assertions at every VM-entry gate (Hlt) from the interval facts,
// and embeds a CFG-based verifier report — one analysis pass, one bundle
// that the CFI detector (runtime), the verifier (build time), and the
// analyze_program CLI (reports) all read.
//
// Derived assertions carry ids in the reserved partition starting at
// kDerivedAssertBase so they can be auto-registered into an
// AssertionRegistry without ever colliding with hand-written ids.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/bitlive.hpp"
#include "analysis/cfg.hpp"
#include "analysis/dataflow.hpp"
#include "analysis/timing.hpp"
#include "sim/verifier.hpp"

namespace xentry::analysis {

/// First assertion id reserved for analyzer-derived assertions.  The
/// AssertionRegistry rejects hand-registered ids at or above this.
inline constexpr std::uint32_t kDerivedAssertBase = 1u << 16;

/// A range invariant proven at a VM-entry gate: whenever fault-free
/// execution halts at `addr`, the signed value of `reg` is in [lo, hi].
struct DerivedAssertion {
  std::uint32_t id = 0;  ///< kDerivedAssertBase + index
  sim::Addr addr = 0;    ///< the Hlt instruction the invariant holds at
  std::uint8_t reg = 0;  ///< GPR index
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  std::string description;
};

struct AnalyzeOptions {
  CfgOptions cfg;
  sim::VerifierOptions verifier;
  bool derive_assertions = true;
  /// Cap on derived assertions (first by address, then register).
  std::size_t max_derived = 64;
  /// Compute the per-bit vulnerability map (importance-sampling input).
  bool bit_liveness = true;
  /// Compute static [BCET, WCET] timing envelopes per entry point
  /// (Technique::Timing input).
  bool timing_envelopes = true;
  /// Cycle weights for the timing analysis.
  TimingCostModel timing_model;
};

struct AnalysisArtifacts {
  /// The analyzed program, owned: block and derived-assertion addresses
  /// index into it, and ownership keeps them valid for the detector's
  /// lifetime regardless of what produced the program.
  sim::Program program;
  std::uint64_t signature = 0;  ///< program_signature(program)
  ControlFlowGraph cfg;
  std::vector<BlockFacts> facts;   ///< parallel to cfg.blocks
  std::vector<RegState> block_in;  ///< interval state at block entry
  std::vector<StackWarning> stack_warnings;
  std::vector<DerivedAssertion> derived;  ///< sorted by (addr, reg)
  /// Per-bit liveness map (empty when AnalyzeOptions::bit_liveness is
  /// off).  Computed after assertion derivation so gate-time consumers
  /// are part of the liveness roots.
  VulnerabilityMap vuln;
  /// Per-entry-point timing envelopes (empty map when
  /// AnalyzeOptions::timing_envelopes is off or nothing was provable).
  TimingEnvelopes timing;
  sim::VerifierReport verifier;

  std::size_t reachable_blocks() const;
  /// Derived assertions attached to the Hlt at `addr` as a subrange of
  /// `derived` ([first, last) indices); empty when none.
  std::pair<std::size_t, std::size_t> derived_at(sim::Addr addr) const;

  /// Issues that should fail a build: verifier issues + stack warnings.
  std::size_t finding_count() const {
    return verifier.issues.size() + stack_warnings.size();
  }

  std::string to_string() const;
  void write_json(std::ostream& os) const;
};

AnalysisArtifacts analyze_program(const sim::Program& program,
                                  const AnalyzeOptions& options = {});

/// The CFG-based verifier core shared by sim::verify_program and
/// analyze_program (one legality implementation, two entry points).
sim::VerifierReport verify_with_cfg(const sim::Program& program,
                                    const ControlFlowGraph& cfg,
                                    const std::vector<BlockFacts>& facts,
                                    const sim::VerifierOptions& options);

}  // namespace xentry::analysis
