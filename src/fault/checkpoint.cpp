#include "fault/checkpoint.hpp"

#include <cinttypes>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/json.hpp"

namespace xentry::fault {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

/// Region words as a compact token string: hex values, zero runs as
/// "z<count>".  Machine images are mostly zero, so this keeps journal
/// lines small without a real compressor.
void encode_words(std::string& out, const std::vector<std::uint64_t>& words) {
  std::size_t i = 0;
  bool first = true;
  char buf[24];
  while (i < words.size()) {
    if (!first) out += ',';
    first = false;
    if (words[i] == 0) {
      std::size_t run = 1;
      while (i + run < words.size() && words[i + run] == 0) ++run;
      out += 'z';
      append_u64(out, run);
      i += run;
    } else {
      std::snprintf(buf, sizeof buf, "%" PRIx64, words[i]);
      out += buf;
      ++i;
    }
  }
}

bool decode_words(std::string_view text, std::vector<std::uint64_t>& out) {
  out.clear();
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find(',', pos);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view tok = text.substr(pos, end - pos);
    pos = end + 1;
    if (tok.empty()) return false;
    if (tok[0] == 'z') {
      std::uint64_t run = 0;
      for (char c : tok.substr(1)) {
        if (c < '0' || c > '9') return false;
        run = run * 10 + static_cast<std::uint64_t>(c - '0');
      }
      out.insert(out.end(), run, 0);
    } else {
      std::uint64_t v = 0;
      for (char c : tok) {
        std::uint64_t d = 0;
        if (c >= '0' && c <= '9') {
          d = static_cast<std::uint64_t>(c - '0');
        } else if (c >= 'a' && c <= 'f') {
          d = static_cast<std::uint64_t>(c - 'a' + 10);
        } else {
          return false;
        }
        v = (v << 4) | d;
      }
      out.push_back(v);
    }
  }
  return true;
}

std::string header_line(const CheckpointHeader& h) {
  std::string line = "{\"type\":\"header\",\"seed\":";
  append_u64(line, h.seed);
  line += ",\"injections\":";
  append_u64(line, static_cast<std::uint64_t>(h.injections));
  line += ",\"shards\":";
  append_u64(line, static_cast<std::uint64_t>(h.shards));
  line += ",\"bias\":";
  append_double(line, h.activation_bias);
  line += ",\"warmup\":";
  append_u64(line, static_cast<std::uint64_t>(h.warmup_activations));
  line += ",\"gap\":";
  append_u64(line, static_cast<std::uint64_t>(h.stream_gap));
  line += ",\"importance\":";
  line += h.importance ? '1' : '0';
  line += ",\"every\":";
  append_u64(line, static_cast<std::uint64_t>(h.checkpoint_every));
  line += ",\"fmt\":";
  append_u64(line, h.records_format);
  // Only fleet workers carry a unit assignment; omitting the key keeps
  // single-process journals byte-identical to pre-fleet ones.
  if (!h.units.empty()) {
    line += ",\"units\":[";
    bool first = true;
    for (int u : h.units) {
      if (!first) line += ',';
      first = false;
      append_u64(line, static_cast<std::uint64_t>(u));
    }
    line += ']';
  }
  line += "}\n";
  return line;
}

std::string checkpoint_line(const ShardCheckpoint& c) {
  std::string line = "{\"type\":\"ckpt\",\"shard\":";
  append_u64(line, static_cast<std::uint64_t>(c.shard));
  line += ",\"iter\":";
  append_u64(line, c.iterations);
  line += ",\"records\":";
  append_u64(line, c.records_written);
  line += ",\"digest\":";
  append_u64(line, c.digest);
  line += ",\"eff\":";
  append_double(line, c.effective);
  line += ",\"sink_off\":";
  append_u64(line, c.sink_offset);
  line += ",\"snap_off\":";
  append_u64(line, c.snap_offset);
  line += ",\"snap_count\":";
  append_u64(line, c.snap_count);
  line += ",\"forensics\":";
  append_u64(line, c.forensics_counter);
  line += ",\"acts\":";
  append_u64(line, c.activations_generated);
  // RNG states are digits and spaces; region words are hex/commas — no
  // JSON escaping needed for any of these payloads.
  line += ",\"gen_rng\":\"";
  line += c.gen_rng;
  line += "\",\"main_rng\":\"";
  line += c.main_rng;
  line += "\",\"aux_rng\":\"";
  line += c.aux_rng;
  line += "\",\"tsc\":";
  append_u64(line, c.tsc);
  line += ",\"mem\":[";
  bool first = true;
  for (const std::vector<std::uint64_t>& region : c.memory) {
    if (!first) line += ',';
    first = false;
    line += '"';
    encode_words(line, region);
    line += '"';
  }
  line += "]}\n";
  return line;
}

}  // namespace

std::unique_ptr<CheckpointJournal> CheckpointJournal::create(
    const std::string& path, const CheckpointHeader& header) {
  auto journal = std::unique_ptr<CheckpointJournal>(new CheckpointJournal());
  journal->file_ = std::fopen(path.c_str(), "wb");
  if (journal->file_ == nullptr) return nullptr;
  const std::string line = header_line(header);
  if (std::fwrite(line.data(), 1, line.size(), journal->file_) != line.size() ||
      std::fflush(journal->file_) != 0) {
    journal->failed_ = true;
  }
  return journal;
}

std::unique_ptr<CheckpointJournal> CheckpointJournal::append_to(
    const std::string& path) {
  auto journal = std::unique_ptr<CheckpointJournal>(new CheckpointJournal());
  journal->file_ = std::fopen(path.c_str(), "ab");
  if (journal->file_ == nullptr) return nullptr;
  return journal;
}

CheckpointJournal::~CheckpointJournal() {
  if (file_ != nullptr) std::fclose(file_);
}

void CheckpointJournal::append(const ShardCheckpoint& ckpt) {
  const std::string line = checkpoint_line(ckpt);
  const std::scoped_lock lock(mu_);
  if (file_ == nullptr || failed_) return;
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
      std::fflush(file_) != 0) {
    failed_ = true;
  }
}

JournalContents read_journal(const std::string& path) {
  JournalContents out;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return out;
  std::string text;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);

  std::size_t pos = 0;
  bool have_header = false;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) break;  // torn tail
    const std::string_view line(text.data() + pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    const std::optional<obs::JsonValue> v = obs::parse_json(line);
    if (!v.has_value() || !v->is_object()) break;  // torn/corrupt: stop
    const std::string& type = v->get_string("type");
    if (!have_header) {
      if (type != "header") break;
      out.header.seed = v->get_uint("seed");
      out.header.injections = static_cast<int>(v->get_int("injections"));
      out.header.shards = static_cast<int>(v->get_int("shards"));
      out.header.activation_bias = v->get_double("bias");
      out.header.warmup_activations = static_cast<int>(v->get_int("warmup"));
      out.header.stream_gap = static_cast<int>(v->get_int("gap"));
      out.header.importance = v->get_int("importance") != 0;
      out.header.checkpoint_every = static_cast<int>(v->get_int("every"));
      out.header.records_format =
          static_cast<std::uint8_t>(v->get_uint("fmt"));
      if (const obs::JsonValue* units = v->get("units");
          units != nullptr && units->is_array()) {
        for (const obs::JsonValue& u : units->as_array()) {
          out.header.units.push_back(static_cast<int>(u.as_int()));
        }
      }
      if (out.header.shards <= 0) break;
      out.shards.resize(static_cast<std::size_t>(out.header.shards));
      have_header = true;
      out.valid = true;
      continue;
    }
    if (type != "ckpt") break;
    ShardCheckpoint c;
    c.shard = static_cast<int>(v->get_int("shard"));
    if (c.shard < 0 || c.shard >= out.header.shards) break;
    c.iterations = v->get_uint("iter");
    c.records_written = v->get_uint("records");
    c.digest = v->get_uint("digest");
    c.effective = v->get_double("eff");
    c.sink_offset = v->get_uint("sink_off");
    c.snap_offset = v->get_uint("snap_off");
    c.snap_count = v->get_uint("snap_count");
    c.forensics_counter = v->get_uint("forensics");
    c.activations_generated = v->get_uint("acts");
    c.gen_rng = v->get_string("gen_rng");
    c.main_rng = v->get_string("main_rng");
    c.aux_rng = v->get_string("aux_rng");
    c.tsc = v->get_uint("tsc");
    const obs::JsonValue* mem = v->get("mem");
    if (mem == nullptr || !mem->is_array()) break;
    bool mem_ok = true;
    for (const obs::JsonValue& region : mem->as_array()) {
      std::vector<std::uint64_t> words;
      if (!decode_words(region.as_string(), words)) {
        mem_ok = false;
        break;
      }
      c.memory.push_back(std::move(words));
    }
    if (!mem_ok) break;
    out.shards[static_cast<std::size_t>(c.shard)] = std::move(c);
  }
  return out;
}

std::string snapshot_sidecar_path(std::string_view checkpoint_path,
                                  int shard) {
  std::string path(checkpoint_path);
  path += ".shard";
  path += std::to_string(shard);
  path += ".snap.jsonl";
  return path;
}

void capture_machine(const hv::Machine& machine, ShardCheckpoint& out) {
  const hv::Machine::Snapshot snap = machine.snapshot();
  out.tsc = snap.tsc;
  out.memory.clear();
  out.memory.reserve(snap.memory.regions.size());
  for (const sim::Memory::Snapshot::RegionImage& r : snap.memory.regions) {
    out.memory.push_back(r.data);
  }
}

void restore_machine(hv::Machine& machine, const ShardCheckpoint& ckpt) {
  const std::vector<sim::Memory::Region>& regions =
      machine.memory().regions();
  if (ckpt.memory.size() != regions.size()) {
    throw std::runtime_error(
        "checkpoint: memory image has " + std::to_string(ckpt.memory.size()) +
        " regions but the machine maps " + std::to_string(regions.size()) +
        " — the journal was written under a different machine configuration");
  }
  hv::Machine::Snapshot snap;
  snap.tsc = ckpt.tsc;
  snap.memory.source_id = 0;  // foreign image: forces a full region copy
  snap.memory.regions.resize(ckpt.memory.size());
  for (std::size_t i = 0; i < ckpt.memory.size(); ++i) {
    if (ckpt.memory[i].size() != regions[i].data.size()) {
      throw std::runtime_error(
          "checkpoint: region " + std::to_string(i) + " has " +
          std::to_string(ckpt.memory[i].size()) + " words but the machine's " +
          regions[i].name + " region holds " +
          std::to_string(regions[i].data.size()) +
          " — the journal was written under a different machine "
          "configuration");
    }
    snap.memory.regions[i].data = ckpt.memory[i];
  }
  machine.restore(snap);
}

std::string rng_state_string(const std::mt19937_64& rng) {
  std::ostringstream os;
  os << rng;
  return os.str();
}

bool rng_state_from_string(std::mt19937_64& rng, const std::string& state) {
  std::istringstream is(state);
  is >> rng;
  return !is.fail();
}

}  // namespace xentry::fault
