
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hv/exit_reason.cpp" "src/hv/CMakeFiles/xentry_hv.dir/exit_reason.cpp.o" "gcc" "src/hv/CMakeFiles/xentry_hv.dir/exit_reason.cpp.o.d"
  "/root/repo/src/hv/layout.cpp" "src/hv/CMakeFiles/xentry_hv.dir/layout.cpp.o" "gcc" "src/hv/CMakeFiles/xentry_hv.dir/layout.cpp.o.d"
  "/root/repo/src/hv/machine.cpp" "src/hv/CMakeFiles/xentry_hv.dir/machine.cpp.o" "gcc" "src/hv/CMakeFiles/xentry_hv.dir/machine.cpp.o.d"
  "/root/repo/src/hv/microvisor.cpp" "src/hv/CMakeFiles/xentry_hv.dir/microvisor.cpp.o" "gcc" "src/hv/CMakeFiles/xentry_hv.dir/microvisor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/xentry_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
