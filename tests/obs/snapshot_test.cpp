#include "obs/snapshot.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace xentry::obs {
namespace {

std::string registry_json(const MetricsRegistry& reg) {
  std::ostringstream os;
  reg.write_json(os);
  return os.str();
}

TEST(SnapshotTest, FirstWriteIsFullThenDeltas) {
  MetricsRegistry reg;
  std::ostringstream os;
  SnapshotWriter w(os);
  reg.counter("a").inc(5);
  w.write(reg);
  reg.counter("a").inc(2);
  w.write(reg);

  const auto snaps = read_snapshots(os.str());
  ASSERT_EQ(snaps.size(), 2u);
  EXPECT_TRUE(snaps[0].full);
  EXPECT_FALSE(snaps[1].full);
  EXPECT_EQ(snaps[0].seq, 0u);
  EXPECT_EQ(snaps[1].seq, 1u);
  EXPECT_EQ(snaps[0].counters.at("a"), 5u);
  EXPECT_EQ(snaps[1].counters.at("a"), 2u);  // delta, not absolute
}

TEST(SnapshotTest, EveryPrefixReconstructsTheRegistryExactly) {
  MetricsRegistry reg;
  std::ostringstream os;
  SnapshotWriter w(os);
  std::vector<std::string> want;  // registry JSON at each snapshot point

  for (int step = 0; step < 6; ++step) {
    reg.counter("campaign.injections").inc(10 + step);
    if (step % 2 == 0) reg.counter("campaign.detected").inc(step);
    reg.gauge("campaign.shards").set(3);
    reg.gauge("wobble").set(step - 2);
    reg.histogram("latency").observe(1u << step);
    w.write(reg);
    want.push_back(registry_json(reg));
  }

  // Split the sidecar into lines and replay every prefix.
  const std::string text = os.str();
  std::vector<std::size_t> line_ends;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') line_ends.push_back(i + 1);
  }
  ASSERT_EQ(line_ends.size(), want.size());
  for (std::size_t k = 0; k < line_ends.size(); ++k) {
    const auto snaps =
        read_snapshots(std::string_view(text).substr(0, line_ends[k]));
    ASSERT_EQ(snaps.size(), k + 1);
    const MetricsRegistry rebuilt = merge_snapshots(snaps);
    EXPECT_EQ(registry_json(rebuilt), want[k]) << "prefix of " << k + 1;
  }
}

TEST(SnapshotTest, TornFinalLineIsIgnored) {
  MetricsRegistry reg;
  std::ostringstream os;
  SnapshotWriter w(os);
  reg.counter("a").inc(1);
  w.write(reg);
  reg.counter("a").inc(1);
  w.write(reg);

  std::string text = os.str();
  const std::size_t first_end = text.find('\n') + 1;
  // Cut the second line mid-way: a killed process's final write.
  const std::string torn = text.substr(0, (first_end + text.size()) / 2);
  const auto snaps = read_snapshots(torn);
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(merge_snapshots(snaps).find_counter("a")->value(), 1u);
}

TEST(SnapshotTest, NewMetricAppearsInTheDeltaWhereItIsBorn) {
  MetricsRegistry reg;
  std::ostringstream os;
  SnapshotWriter w(os);
  reg.counter("a").inc(1);
  w.write(reg);
  MetricsRegistry reg2;
  reg2.counter("a").inc(1);
  reg2.counter("late").inc(0);  // born at zero — must still be encoded
  w.write(reg2);

  const auto snaps = read_snapshots(os.str());
  ASSERT_EQ(snaps.size(), 2u);
  ASSERT_TRUE(snaps[1].counters.count("late"));
  const MetricsRegistry rebuilt = merge_snapshots(snaps);
  ASSERT_NE(rebuilt.find_counter("late"), nullptr);
  EXPECT_EQ(rebuilt.find_counter("late")->value(), 0u);
}

TEST(SnapshotTest, PrimeContinuesADeltaStreamWithoutDoubleCounting) {
  // First process: two snapshots, then dies.
  MetricsRegistry reg;
  std::ostringstream os1;
  SnapshotWriter w1(os1);
  reg.counter("n").inc(7);
  reg.histogram("h").observe(4);
  w1.write(reg);
  reg.counter("n").inc(3);
  reg.histogram("h").observe(9);
  w1.write(reg);

  // Resume: rebuild from the sidecar, prime a fresh writer, keep going.
  const auto snaps1 = read_snapshots(os1.str());
  MetricsRegistry restored = merge_snapshots(snaps1);
  EXPECT_EQ(registry_json(restored), registry_json(reg));

  std::ostringstream os2;
  SnapshotWriter w2(os2);
  w2.prime(restored, snaps1.size());
  EXPECT_EQ(w2.next_seq(), 2u);
  restored.counter("n").inc(5);
  restored.histogram("h").observe(100);
  w2.write(restored);

  // The concatenated sidecar replays to the final registry exactly; the
  // primed delta encodes only the post-resume change.
  const auto all = read_snapshots(os1.str() + os2.str());
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[2].seq, 2u);
  EXPECT_FALSE(all[2].full);
  EXPECT_EQ(all[2].counters.at("n"), 5u);
  EXPECT_EQ(registry_json(merge_snapshots(all)), registry_json(restored));
}

TEST(SnapshotTest, HistogramMergePreservesMinMaxAndBuckets) {
  MetricsRegistry reg;
  std::ostringstream os;
  SnapshotWriter w(os);
  reg.histogram("h").observe(1000);
  w.write(reg);
  reg.histogram("h").observe(2);  // min moves after the full snapshot
  w.write(reg);

  const MetricsRegistry rebuilt = merge_snapshots(read_snapshots(os.str()));
  const Log2Histogram* h = rebuilt.find_histogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 2u);
  EXPECT_EQ(h->min(), 2u);
  EXPECT_EQ(h->max(), 1000u);
  EXPECT_EQ(registry_json(rebuilt), registry_json(reg));
}

TEST(SnapshotTest, TimingMetricsAreRecognizedAndStripped) {
  EXPECT_TRUE(is_timing_metric("machine.snapshot_ns"));
  EXPECT_TRUE(is_timing_metric("campaign.elapsed_us"));
  EXPECT_TRUE(is_timing_metric("campaign.injections_per_sec"));
  EXPECT_FALSE(is_timing_metric("campaign.injections"));
  EXPECT_FALSE(is_timing_metric("obs.sink.appends"));

  MetricsRegistry reg;
  reg.counter("campaign.injections").inc(10);
  reg.gauge("campaign.elapsed_us").set(12345);
  reg.histogram("machine.snapshot_ns").observe(500);
  const MetricsRegistry bare = strip_timing_metrics(reg);
  EXPECT_NE(bare.find_counter("campaign.injections"), nullptr);
  EXPECT_EQ(bare.find_gauge("campaign.elapsed_us"), nullptr);
  EXPECT_EQ(bare.find_histogram("machine.snapshot_ns"), nullptr);
}

TEST(SnapshotTest, EmptyStreamMergesToEmptyRegistry) {
  EXPECT_TRUE(merge_snapshots({}).empty());
  EXPECT_TRUE(read_snapshots("").empty());
}

}  // namespace
}  // namespace xentry::obs
