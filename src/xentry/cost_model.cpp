#include "xentry/cost_model.hpp"

namespace xentry {

ActivationCost activation_cost(const CostParams& p,
                               std::uint64_t assertions_executed,
                               int rule_comparisons) {
  ActivationCost c;
  c.runtime_only_cycles =
      static_cast<double>(assertions_executed) * p.cycles_per_assertion;
  c.with_transition_cycles =
      c.runtime_only_cycles + p.interception_cycles +
      p.counter_program_cycles + p.counter_read_cycles +
      static_cast<double>(rule_comparisons) * p.cycles_per_comparison;
  return c;
}

double overhead_fraction(const CostParams& p, double activations_per_sec,
                         double added_cycles_per_activation) {
  return activations_per_sec * added_cycles_per_activation /
         (p.cpu_ghz * 1e9);
}

}  // namespace xentry
