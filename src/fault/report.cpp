#include "fault/report.hpp"

#include <ostream>
#include <sstream>

#include "fault/stats.hpp"

namespace xentry::fault {

void write_records_csv(std::ostream& os,
                       const std::vector<InjectionRecord>& records) {
  os << "reason,reason_code,seed,vcpu,at_step,reg,bit,injected,activated,"
        "consequence,detected,technique,latency,trap,assert_id,"
        "trace_diverged,undetected_class,vmer,rt,br,rm,wm\n";
  for (const InjectionRecord& r : records) {
    os << hv::handler_symbol(r.reason) << ',' << r.reason.code() << ','
       << r.activation_seed << ',' << r.vcpu << ',' << r.injection.at_step
       << ',' << sim::reg_name(r.injection.reg) << ',' << r.injection.bit
       << ',' << (r.injected ? 1 : 0) << ',' << (r.activated ? 1 : 0) << ','
       << consequence_name(r.consequence) << ',' << (r.detected ? 1 : 0)
       << ',' << technique_name(r.technique) << ',' << r.latency << ','
       << sim::trap_name(r.trap) << ',' << r.assert_id << ','
       << (r.trace_diverged ? 1 : 0) << ','
       << undetected_class_name(r.undetected) << ',' << r.features.vmer
       << ',' << r.features.rt << ',' << r.features.br << ','
       << r.features.rm << ',' << r.features.wm << '\n';
  }
}

std::string summarize(const std::vector<InjectionRecord>& records) {
  std::ostringstream os;
  const CoverageBreakdown cov = coverage_breakdown(records);
  os << "injections: " << records.size() << ", manifested: "
     << cov.manifested;
  if (!records.empty()) {
    os << " (" << 100.0 * static_cast<double>(cov.manifested) /
                     static_cast<double>(records.size())
       << "%)";
  }
  os << "\ncoverage: " << 100.0 * cov.coverage()
     << "%  [hw " << 100.0 * cov.share(cov.hw_exception) << "%, sw "
     << 100.0 * cov.share(cov.sw_assertion) << "%, vmt "
     << 100.0 * cov.share(cov.vm_transition) << "%";
  if (cov.stack_redundancy > 0) {
    os << ", stack " << 100.0 * cov.share(cov.stack_redundancy) << "%";
  }
  if (cov.control_flow > 0) {
    os << ", cfi " << 100.0 * cov.share(cov.control_flow) << "%";
  }
  if (cov.timing > 0) {
    os << ", timing " << 100.0 * cov.share(cov.timing) << "%";
  }
  os << ", undetected " << 100.0 * cov.share(cov.undetected) << "%]\n";

  os << "consequences:";
  for (const auto& [c, n] : consequence_histogram(records)) {
    os << ' ' << consequence_name(c) << '=' << n;
  }
  os << '\n';

  // Importance-sampled campaigns carry non-unit weights; report the
  // reweighted (uniform-equivalent) rates alongside the raw counts.
  bool weighted = false;
  for (const InjectionRecord& r : records) {
    if (r.weight != 1.0 || r.masked_weight != 0.0) {
      weighted = true;
      break;
    }
  }
  if (weighted) {
    const WeightedRates w = weighted_rates(records);
    os << "reweighted (uniform-equivalent): effective injections "
       << w.effective_injections << ", manifested "
       << 100.0 * w.manifested_rate() << "%, detected "
       << 100.0 * w.detected_rate() << "%, masked "
       << 100.0 * w.rate(Consequence::Masked) << "%, sdc "
       << 100.0 * w.rate(Consequence::AppSdc) << "%\n";
  }

  const UndetectedBreakdown und = undetected_breakdown(records);
  if (und.total > 0) {
    os << "undetected classes: mis=" << und.mis_classified
       << " stack=" << und.stack_values << " time=" << und.time_values
       << " other=" << und.other_values << '\n';
  }

  for (auto& [tech, lats] : latency_by_technique(records)) {
    os << technique_name(tech) << " latency p50/p95: "
       << latency_percentile(lats, 50) << '/' << latency_percentile(lats, 95)
       << " instructions (" << lats.size() << " detections)\n";
  }
  return os.str();
}

void write_forensics_jsonl(std::ostream& os,
                           const std::vector<InjectionRecord>& records) {
  // Every emitted name comes from a fixed internal vocabulary (handler
  // symbols, register/consequence/class names), so no JSON escaping is
  // needed.
  for (const InjectionRecord& r : records) {
    if (!r.forensics.has_value()) continue;
    os << "{\"handler\": \"" << hv::handler_symbol(r.reason)
       << "\", \"reason_code\": " << r.reason.code()
       << ", \"seed\": " << r.activation_seed << ", \"vcpu\": " << r.vcpu
       << ", \"at_step\": " << r.injection.at_step << ", \"reg\": \""
       << sim::reg_name(r.injection.reg) << "\", \"bit\": " << r.injection.bit
       << ", \"consequence\": \"" << consequence_name(r.consequence)
       << "\", \"detected\": " << (r.detected ? "true" : "false")
       << ", \"trace_diverged\": " << (r.trace_diverged ? "true" : "false")
       << ", \"undetected_heuristic\": \""
       << undetected_class_name(r.undetected) << "\", \"undetected\": \""
       << undetected_class_name(effective_undetected(r))
       << "\", \"forensics\": ";
    r.forensics->write_json(os);
    os << "}\n";
  }
}

}  // namespace xentry::fault
