// Superblock formation and the cached threaded-code front door.
//
// The tiling invariants asserted here are exactly the ones
// sim::jit::compile validates (and the threaded engine's accounting
// depends on): contiguous coverage, boundaries only where fall-through
// ends, and maximality — no boundary on a guaranteed fall-through edge.

#include "analysis/superblocks.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "analysis/artifacts.hpp"
#include "analysis/cfg.hpp"
#include "hv/microvisor.hpp"
#include "sim/assembler.hpp"
#include "sim/jit/compiled_program.hpp"
#include "sim/program.hpp"

namespace xentry::analysis {
namespace {

constexpr sim::Addr kBase = 0x400000;

void expect_valid_tiling(const std::vector<sim::jit::Superblock>& sbs,
                         const sim::Program& prog) {
  ASSERT_FALSE(sbs.empty());
  std::uint32_t expect = 0;
  for (const sim::jit::Superblock& sb : sbs) {
    EXPECT_EQ(sb.first, expect);
    ASSERT_LE(sb.first, sb.last);
    ASSERT_LT(sb.last, prog.size());
    // Interior ops fall through; the boundary is maximal.
    for (std::uint32_t i = sb.first; i < sb.last; ++i) {
      EXPECT_TRUE(sim::jit::can_fall_through(prog.at(kBase + i).op))
          << "interior op " << i;
    }
    if (sb.last + 1 < prog.size()) {
      EXPECT_FALSE(sim::jit::can_fall_through(prog.at(kBase + sb.last).op))
          << "non-maximal boundary after op " << sb.last;
    }
    expect = sb.last + 1;
  }
  EXPECT_EQ(expect, prog.size());
}

TEST(SuperblocksTest, GluesFallThroughSeamsAcrossCfgLeaders) {
  // A conditional branch makes its fall-through successor a CFG leader,
  // but that seam is a guaranteed fall-through edge — the superblock must
  // continue across it and only end at the jmp.
  sim::Assembler as(kBase);
  const auto end = as.make_label();
  as.cmpi(sim::Reg::rax, 0);  // 0
  as.je(end);                 // 1: leader split at 2
  as.inc(sim::Reg::rax);      // 2
  as.jmp(end);                // 3: real terminator
  as.bind(end);
  as.hlt();                   // 4
  const sim::Program prog = as.finish();
  const auto sbs = form_superblocks(build_cfg(prog), prog);
  expect_valid_tiling(sbs, prog);
  ASSERT_EQ(sbs.size(), 2u);
  EXPECT_EQ(sbs[0].first, 0u);
  EXPECT_EQ(sbs[0].last, 3u);  // cmp..jmp glued into one run
  EXPECT_EQ(sbs[1].first, 4u);
  EXPECT_EQ(sbs[1].last, 4u);
}

TEST(SuperblocksTest, MicrovisorProgramTilesValidly) {
  const hv::Microvisor mv = hv::build_microvisor({});
  const sim::Program& prog = mv.program;
  const ControlFlowGraph cfg = build_cfg(prog);
  const auto sbs = form_superblocks(cfg, prog);
  expect_valid_tiling(sbs, prog);
  // A real program glues aggressively: many superblocks must span a CFG
  // block boundary (a leader somewhere past the superblock's first slot).
  std::size_t glued = 0;
  for (const sim::jit::Superblock& sb : sbs) {
    for (std::uint32_t i = sb.first + 1; i <= sb.last; ++i) {
      const std::uint32_t blk = cfg.block_of[i];
      if (blk != kNoBlock && cfg.blocks[blk].first == prog.base() + i) {
        ++glued;
        break;
      }
    }
  }
  EXPECT_GT(glued, 20u);
}

TEST(SuperblocksTest, StaleCfgRejected) {
  sim::Assembler as(kBase);
  as.inc(sim::Reg::rax);
  as.hlt();
  const sim::Program prog = as.finish();
  sim::Assembler other(kBase);
  other.inc(sim::Reg::rax);
  other.inc(sim::Reg::rax);
  other.hlt();
  const sim::Program longer = other.finish();
  EXPECT_THROW(form_superblocks(build_cfg(longer), prog),
               std::invalid_argument);
}

TEST(SuperblocksTest, CodeCacheSharesOneCompilationPerSignature) {
  const hv::Microvisor mv = hv::build_microvisor({});
  const AnalysisArtifacts art =
      analyze_program(mv.program, hv::analyze_options(mv));
  const auto a = compile_threaded(art);
  const auto b = compile_threaded(art);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a.get(), b.get());  // cache hit: the same immutable stream
  EXPECT_TRUE(a->matches(mv.program));
}

}  // namespace
}  // namespace xentry::analysis
