// Fig. 3: hypervisor activation frequency per benchmark, para-virtualized
// vs hardware-assisted, as box statistics (min / 25th / median / 75th /
// max) over per-second observation windows.
//
// Paper anchors: PV generally 5K-100K/s, freqmine peaking ~650K/s; HVM
// mostly 2K-10K/s.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "workloads/workload.hpp"

namespace {

struct BoxStats {
  double min, q25, median, q75, max;
};

BoxStats box(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  auto at = [&](double q) {
    return v[static_cast<std::size_t>(q * (v.size() - 1))];
  };
  return {v.front(), at(0.25), at(0.5), at(0.75), v.back()};
}

}  // namespace

int main() {
  using namespace xentry;
  bench::print_header("Fig. 3: hypervisor activation frequency (/s)");

  hv::Machine machine;
  const int windows = bench::scaled(400);
  std::printf("%-10s %-5s %10s %10s %10s %10s %10s\n", "benchmark", "mode",
              "min", "p25", "median", "p75", "max");
  for (wl::Benchmark b : wl::all_benchmarks()) {
    for (wl::VirtMode mode : {wl::VirtMode::Para, wl::VirtMode::Hvm}) {
      wl::WorkloadGenerator gen(machine, wl::profile(b, mode),
                                1000 + static_cast<std::uint64_t>(b) * 2 +
                                    static_cast<std::uint64_t>(mode));
      std::vector<double> rates;
      rates.reserve(static_cast<std::size_t>(windows));
      for (int i = 0; i < windows; ++i) rates.push_back(gen.sample_rate());
      const BoxStats s = box(std::move(rates));
      std::printf("%-10s %-5s %10.0f %10.0f %10.0f %10.0f %10.0f\n",
                  std::string(wl::benchmark_name(b)).c_str(),
                  std::string(wl::virt_mode_name(mode)).c_str(), s.min,
                  s.q25, s.median, s.q75, s.max);
    }
  }
  std::printf(
      "\npaper anchors: PV bands 5K-100K/s; freqmine PV peak ~650K/s;\n"
      "HVM mostly 2K-10K/s; PV > HVM for every benchmark.\n");
  return 0;
}
