// InjectionRecord wire formats and the campaign determinism digest.
//
// The streaming pipeline persists records through obs::RecordSink, which
// is byte-oriented (obs sits below fault); this module is where records
// become bytes.  Two formats, decode-equivalent:
//
//   - JSONL: one object per line, fixed key order, integers everywhere
//     except the sampling weights (%.17g — exact double round-trip).
//     Greppable, and `telemetry_tool tail` prints it as-is.
//   - binary: a little-endian length-prefixed frame, ~4x denser.  The
//     length prefix is framing, not compression: frames are fixed-size
//     today but readers must honour the prefix.
//
// Both encode every determinism-relevant field plus the sampling weights;
// the postmortem payloads (`blackbox`, `forensics`) stay in-memory-only,
// matching the digest's scope.  Encode→decode round-trips to a record
// whose digest contribution is bit-identical to the original's.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "fault/outcome.hpp"
#include "obs/record_sink.hpp"

namespace xentry::fault {

inline constexpr std::uint64_t kDigestBasis = 0xcbf29ce484222325ull;

/// FNV-1a over a 64-bit value, byte by byte.
inline std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Folds one record into a running digest.  The digest covers every
/// determinism-relevant field in a fixed order and deliberately excludes
/// `blackbox`/`forensics` (telemetry-dependent payloads) and the sampling
/// weights (derived metadata), so digests are bit-identical across
/// telemetry modes and checkpointable per shard.
std::uint64_t digest_update(std::uint64_t h, const InjectionRecord& r);

/// FNV-1a digest of a whole record stream (digest_update folded over
/// kDigestBasis).  NOT composable from per-shard digests: verifying a
/// sharded stream means chaining shard streams in shard order.
std::uint64_t records_digest(const std::vector<InjectionRecord>& records);

/// Appends one encoded frame for `r` to `out` (including the framing:
/// trailing newline for JSONL, length prefix for binary).
void encode_record(const InjectionRecord& r, obs::RecordFormat format,
                   std::string& out);

/// Decodes one frame from the front of `data`, advancing `pos` past it.
/// Returns false on a malformed or truncated frame (`pos` unchanged).
bool decode_record(std::string_view data, obs::RecordFormat format,
                   std::size_t& pos, InjectionRecord& out);

/// Decodes every frame in `data`, appending to `out`.  Returns false if
/// trailing bytes remain that do not decode (the intact prefix is kept).
bool decode_records(std::string_view data, obs::RecordFormat format,
                    std::vector<InjectionRecord>& out);

}  // namespace xentry::fault
