file(REMOVE_RECURSE
  "CMakeFiles/ml_accuracy.dir/ml_accuracy.cpp.o"
  "CMakeFiles/ml_accuracy.dir/ml_accuracy.cpp.o.d"
  "ml_accuracy"
  "ml_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
