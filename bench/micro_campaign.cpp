// End-to-end campaign throughput benchmark (no google-benchmark
// dependency: one shot, wall-clock timed, JSON out).
//
// The paper's headline experiment is a 30,000-injection campaign; the
// injections/sec of `run_campaign` bounds every study we can afford.
// This bench tracks the three layers the hot path is built from:
//   - campaign:  end-to-end injections/sec through run_campaign
//   - golden:    raw simulator throughput (steps/sec) of clean activations
//   - snapshot:  machine snapshot+restore round-trips/sec (the sync cost
//                paid between golden and faulty machines per injection)
//
// Output is a single JSON object, suitable for seeding a BENCH_*.json
// trajectory.  A fourth argument enables the campaign progress heartbeat
// on stderr (stdout stays pure JSON).
// Usage:  micro_campaign [injections] [shards] [seed] [heartbeat_sec]
//                        [--engine fast|reference|jit] [--sampling]
//                        [--metrics-out FILE] [--forensics-out FILE]
//   --engine         execution engine for the campaign machines (default
//                    fast; jit runs analyze_program first and compiles the
//                    threaded stream).  records_digest must be
//                    bit-identical across all three — CI asserts it.
//   --sampling       masking-aware importance sampling: runs
//                    analyze_program for the vulnerability map and skips
//                    provably-masked draws with exact reweighting.  The
//                    JSON gains effective_injections(_per_sec) and the
//                    reweighted rates, which CI compares against a uniform
//                    run of the same seed.
//   --metrics-out    enable obs.metrics and write the merged registry JSON
//   --forensics-out  enable obs.forensics and write the replay evidence
//                    (one JSON object per qualifying record) as JSONL
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/artifacts.hpp"
#include "bench/bench_util.hpp"
#include "fault/campaign.hpp"
#include "fault/report.hpp"
#include "fault/stats.hpp"
#include "hv/machine.hpp"
#include "hv/microvisor.hpp"

namespace {

using namespace xentry;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct CampaignScore {
  double elapsed = 0;
  std::size_t records = 0;
  std::size_t manifested = 0;
  std::size_t detected = 0;
  std::size_t forensics = 0;
  std::uint64_t digest = 0;
  fault::WeightedRates weighted;
};

/// Progress heartbeat on stderr, one line per sample, so a long campaign
/// is observable without touching the JSON contract on stdout.
void print_heartbeat(const fault::HeartbeatSample& s) {
  std::fprintf(stderr,
               "[micro_campaign] %llu/%llu injections  %.0f inj/s "
               "(recent %.0f)  detected %llu  elapsed %.1fs  eta %.0fs%s\n",
               static_cast<unsigned long long>(s.completed),
               static_cast<unsigned long long>(s.total), s.injections_per_sec,
               s.recent_per_sec,
               static_cast<unsigned long long>(s.detected_total),
               s.elapsed_sec, s.eta_sec, s.last ? "  [final]" : "");
}

CampaignScore time_campaign(int injections, int shards, std::uint64_t seed,
                            double heartbeat_sec, sim::EngineKind engine,
                            bool sampling, const std::string& metrics_out,
                            const std::string& forensics_out) {
  fault::CampaignConfig cfg;
  cfg.injections = injections;
  cfg.shards = shards;
  cfg.seed = seed;
  cfg.collect_dataset = true;
  cfg.xentry.engine = engine;
  cfg.sampling.importance = sampling;
  if (engine == sim::EngineKind::Jit || sampling) {
    cfg.analysis = std::make_shared<analysis::AnalysisArtifacts>(
        analysis::analyze_program(hv::build_microvisor(cfg.machine).program));
  }
  cfg.obs.metrics = !metrics_out.empty();
  cfg.obs.forensics = !forensics_out.empty();
  if (heartbeat_sec > 0) {
    cfg.heartbeat.interval_sec = heartbeat_sec;
    cfg.heartbeat.callback = print_heartbeat;
  }
  const auto t0 = Clock::now();
  const fault::CampaignResult res = fault::run_campaign(cfg);
  CampaignScore score;
  score.elapsed = seconds_since(t0);
  score.records = res.records.size();
  for (const auto& r : res.records) {
    score.manifested += fault::is_manifested(r.consequence);
    score.detected += r.detected;
    score.forensics += r.forensics.has_value();
  }
  score.digest = bench::records_digest(res.records);
  score.weighted = fault::weighted_rates(res.records);
  if (!metrics_out.empty()) {
    std::ofstream os(metrics_out);
    res.metrics.write_json(os);
  }
  if (!forensics_out.empty()) {
    std::ofstream os(forensics_out);
    fault::write_forensics_jsonl(os, res.records);
  }
  return score;
}

struct GoldenScore {
  double elapsed = 0;
  std::uint64_t steps = 0;
  std::uint64_t runs = 0;
};

GoldenScore time_golden(double budget_sec) {
  hv::Machine m;
  const auto act = m.make_activation(
      hv::ExitReason::hypercall(hv::Hypercall::mmu_update), 7);
  GoldenScore score;
  const auto t0 = Clock::now();
  do {
    for (int i = 0; i < 64; ++i) {
      const hv::RunResult res = m.run(act);
      score.steps += res.steps;
      ++score.runs;
    }
    score.elapsed = seconds_since(t0);
  } while (score.elapsed < budget_sec);
  return score;
}

struct SnapshotScore {
  double elapsed = 0;
  std::uint64_t round_trips = 0;
};

SnapshotScore time_snapshot(double budget_sec) {
  // The campaign sync pattern: golden advances, faulty is re-aligned.
  hv::Machine golden, faulty;
  const auto act = golden.make_activation(
      hv::ExitReason::hypercall(hv::Hypercall::grant_table_op), 3);
  SnapshotScore score;
  const auto t0 = Clock::now();
  do {
    for (int i = 0; i < 64; ++i) {
      golden.run(act);
      faulty.restore(golden.snapshot());
      ++score.round_trips;
    }
    score.elapsed = seconds_since(t0);
  } while (score.elapsed < budget_sec);
  return score;
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_out, forensics_out;
  sim::EngineKind engine = sim::EngineKind::Fast;
  bool sampling = false;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--sampling") {
      sampling = true;
    } else if (arg == "--metrics-out" && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (arg == "--forensics-out" && i + 1 < argc) {
      forensics_out = argv[++i];
    } else if (arg == "--engine" && i + 1 < argc) {
      const std::string name = argv[++i];
      if (name == "fast") {
        engine = sim::EngineKind::Fast;
      } else if (name == "reference") {
        engine = sim::EngineKind::Reference;
      } else if (name == "jit") {
        engine = sim::EngineKind::Jit;
      } else {
        std::fprintf(stderr,
                     "micro_campaign: unknown --engine '%s' (want "
                     "fast|reference|jit)\n",
                     name.c_str());
        return 2;
      }
    } else {
      positional.push_back(argv[i]);
    }
  }
  const int injections =
      positional.size() > 0 ? std::atoi(positional[0]) : 2000;
  const int shards = positional.size() > 1 ? std::atoi(positional[1]) : 1;
  const std::uint64_t seed =
      positional.size() > 2 ? std::strtoull(positional[2], nullptr, 10) : 7;
  const double heartbeat_sec =
      positional.size() > 3 ? std::atof(positional[3]) : 0;

  const CampaignScore campaign =
      time_campaign(injections, shards, seed, heartbeat_sec, engine,
                    sampling, metrics_out, forensics_out);
  const GoldenScore golden = time_golden(1.0);
  const SnapshotScore snap = time_snapshot(1.0);

  std::printf(
      "{\n"
      "  \"bench\": \"micro_campaign\",\n"
      "  \"injections\": %d,\n"
      "  \"shards\": %d,\n"
      "  \"seed\": %llu,\n"
      "  \"engine\": \"%s\",\n"
      "  \"records\": %zu,\n"
      "  \"records_digest\": \"%016llx\",\n"
      "  \"manifested\": %zu,\n"
      "  \"detected\": %zu,\n"
      "  \"forensics_records\": %zu,\n"
      "  \"sampling\": %s,\n"
      "  \"effective_injections\": %.1f,\n"
      "  \"weighted_masked_rate\": %.6f,\n"
      "  \"weighted_sdc_rate\": %.6f,\n"
      "  \"weighted_crash_rate\": %.6f,\n"
      "  \"weighted_manifested_rate\": %.6f,\n"
      "  \"weighted_detected_rate\": %.6f,\n"
      "  \"campaign_elapsed_sec\": %.4f,\n"
      "  \"injections_per_sec\": %.1f,\n"
      "  \"effective_injections_per_sec\": %.1f,\n"
      "  \"golden_steps_per_sec\": %.0f,\n"
      "  \"golden_runs_per_sec\": %.0f,\n"
      "  \"snapshot_round_trips_per_sec\": %.0f\n"
      "}\n",
      injections, shards, static_cast<unsigned long long>(seed),
      std::string(sim::engine_name(engine)).c_str(), campaign.records,
      static_cast<unsigned long long>(campaign.digest),
      campaign.manifested, campaign.detected, campaign.forensics,
      sampling ? "true" : "false",
      campaign.weighted.effective_injections,
      campaign.weighted.rate(fault::Consequence::Masked),
      campaign.weighted.rate(fault::Consequence::AppSdc),
      campaign.weighted.rate(fault::Consequence::AppCrash),
      campaign.weighted.manifested_rate(),
      campaign.weighted.detected_rate(), campaign.elapsed,
      static_cast<double>(campaign.records) / campaign.elapsed,
      campaign.weighted.effective_injections / campaign.elapsed,
      static_cast<double>(golden.steps) / golden.elapsed,
      static_cast<double>(golden.runs) / golden.elapsed,
      static_cast<double>(snap.round_trips) / snap.elapsed);
  return 0;
}
