#include "fault/outcome.hpp"

namespace xentry::fault {

std::string_view consequence_name(Consequence c) {
  switch (c) {
    case Consequence::Masked: return "masked";
    case Consequence::HypervisorCrash: return "hypervisor_crash";
    case Consequence::HypervisorHang: return "hypervisor_hang";
    case Consequence::AllVmFailure: return "all_vm_failure";
    case Consequence::OneVmFailure: return "one_vm_failure";
    case Consequence::AppCrash: return "app_crash";
    case Consequence::AppSdc: return "app_sdc";
  }
  return "?";
}

std::string_view undetected_class_name(UndetectedClass c) {
  switch (c) {
    case UndetectedClass::NotApplicable: return "n/a";
    case UndetectedClass::MisClassified: return "mis_classify";
    case UndetectedClass::StackValues: return "stack_values";
    case UndetectedClass::TimeValues: return "time_values";
    case UndetectedClass::OtherValues: return "other_values";
  }
  return "?";
}

}  // namespace xentry::fault
