// Tests for the Section VI countermeasure extensions: shadow-stack
// redundancy and duplicated time reads.
#include <gtest/gtest.h>

#include "fault/campaign.hpp"
#include "fault/stats.hpp"
#include "hv/machine.hpp"
#include "xentry/framework.hpp"

namespace xentry {
namespace {

namespace L = hv::layout;

hv::MicrovisorOptions hardened_options() {
  hv::MicrovisorOptions opt;
  opt.shadow_stack = true;
  opt.time_checks = true;
  return opt;
}

TEST(ShadowStackTest, FaultFreeSweepStaysClean) {
  hv::Machine m(hardened_options());
  ASSERT_TRUE(m.cpu().shadow_stack_enabled());
  for (const hv::ExitReason& r : hv::all_exit_reasons()) {
    for (std::uint64_t seed : {3u, 19u}) {
      hv::RunResult res = m.run(m.make_activation(r, seed));
      ASSERT_TRUE(res.reached_vm_entry)
          << hv::handler_symbol(r) << " trapped "
          << sim::trap_name(res.trap.kind) << " assert=" << res.trap.aux;
    }
  }
}

TEST(ShadowStackTest, CatchesCorruptedStackValue) {
  hv::Machine m(hardened_options());
  const auto act = m.make_activation(
      hv::ExitReason::hypercall(hv::Hypercall::sched_op_compat), 4, 0);
  // Run golden to find the dynamic length; then corrupt the in-memory
  // stack word (not the shadow) mid-run via a direct poke between steps —
  // modelled here by corrupting rsp's stack slot before a pop: instead,
  // easiest deterministic repro: corrupt the value *after* push by poking
  // the stack word, then let the handler's matching pop verify.
  const hv::Machine::Snapshot snap = m.snapshot();
  hv::RunResult golden = m.run(act);
  ASSERT_TRUE(golden.reached_vm_entry);
  m.restore(snap);

  // Drive step-by-step: after the wrapper's `call` pushes the return
  // address, flip the stored word under the shadow's nose.
  m.memory().poke(L::kHvDataBase + L::kHvCurrentVcpu, L::vcpu_addr(0));
  sim::Cpu& cpu = m.cpu();
  cpu.reset(m.microvisor().entry(act.reason), L::kStackTop);
  cpu.set_reg(sim::Reg::rbp, L::kHvDataBase);
  cpu.set_reg(sim::Reg::r8, L::vcpu_addr(0));
  cpu.set_reg(sim::Reg::r9, L::domain_addr(0));
  cpu.set_reg(sim::Reg::rdi, act.arg1);
  cpu.step();  // the wrapper call: pushes the return address
  const sim::Addr slot = cpu.reg(sim::Reg::rsp);
  m.memory().poke(slot, m.memory().peek(slot) ^ 0x10);  // soft error
  const sim::StepInfo info = cpu.run(100000);
  ASSERT_EQ(info.status, sim::StepInfo::Status::Trapped);
  EXPECT_EQ(info.trap.kind, sim::TrapKind::StackCheck);
}

TEST(ShadowStackTest, XentryAttributesStackRedundancy) {
  hv::Machine m(hardened_options());
  Xentry x;
  // Inject into rbx right before the multicall body pops it back: use a
  // direct rsp-relative corruption via the step API instead — simpler:
  // flip a bit of a pushed word through an injection into the stack
  // pointer is unreliable; reuse the manual scenario and classify the
  // resulting trap through the framework's technique mapping.
  const sim::Trap trap{sim::TrapKind::StackCheck, L::kStackTop - 1, 0};
  EXPECT_EQ(x.parser().parse(trap), ExceptionVerdict::NotHardware);
  EXPECT_EQ(technique_name(Technique::StackRedundancy), "stack_redundancy");
}

TEST(TimeChecksTest, FaultFreeTimePathsStayClean) {
  hv::MicrovisorOptions opt;
  opt.time_checks = true;
  hv::Machine m(opt);
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    hv::RunResult res =
        m.run(m.make_activation(hv::ExitReason::apic(hv::ApicInterrupt::timer),
                                seed));
    ASSERT_TRUE(res.reached_vm_entry)
        << sim::trap_name(res.trap.kind) << " assert=" << res.trap.aux;
  }
}

TEST(TimeChecksTest, CatchesCorruptedTimeComputation) {
  hv::MicrovisorOptions opt;
  opt.time_checks = true;
  hv::Machine m(opt);
  const auto act =
      m.make_activation(hv::ExitReason::apic(hv::ApicInterrupt::timer), 7, 0);
  // Find a step inside update_time where r10 holds the computed time and
  // flip a high bit: the duplicated read's delta check must fire.
  bool caught = false;
  for (std::uint64_t step = 2; step < 40 && !caught; ++step) {
    hv::Injection inj{step, sim::Reg::r10, 55};
    hv::RunOptions opts;
    opts.injection = &inj;
    const hv::RunResult res = m.run(act, opts);
    if (!res.reached_vm_entry &&
        res.trap.kind == sim::TrapKind::AssertFailed &&
        res.trap.aux == hv::kAssertTscDelta) {
      caught = true;
    }
    m.reset();
  }
  EXPECT_TRUE(caught);
}

TEST(CountermeasuresTest, CampaignWithHardeningReducesStackEscapes) {
  fault::CampaignConfig base;
  base.injections = 6000;
  base.seed = 404;
  // No model installed: drop transition detection so validation passes
  // (this test compares stack-escape counts, which it does not affect).
  base.xentry.transition_detection = false;
  const auto plain = fault::run_campaign(base);

  fault::CampaignConfig hard = base;
  hard.machine = hardened_options();
  const auto hardened = fault::run_campaign(hard);

  const auto u_plain = fault::undetected_breakdown(plain.records);
  const auto u_hard = fault::undetected_breakdown(hardened.records);
  const auto c_hard = fault::coverage_breakdown(hardened.records);
  // The extension claims stake: the new technique actually fires, and the
  // stack-value escape count does not grow materially (the draw of
  // injection points shifts slightly because the shadow region changes
  // which rsp flips trap where).
  EXPECT_LE(u_hard.stack_values, u_plain.stack_values + 2);
  EXPECT_GT(c_hard.stack_redundancy, 0u);
}

}  // namespace
}  // namespace xentry
