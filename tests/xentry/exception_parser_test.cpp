#include "xentry/exception_parser.hpp"

#include <gtest/gtest.h>

namespace xentry {
namespace {

TEST(ExceptionParserTest, FatalHardwareExceptions) {
  ExceptionParser p;
  for (sim::TrapKind k :
       {sim::TrapKind::InvalidOpcode, sim::TrapKind::PageFault,
        sim::TrapKind::GeneralProtection, sim::TrapKind::StackFault}) {
    EXPECT_EQ(p.parse(sim::Trap{k, 0, 0}), ExceptionVerdict::Fatal)
        << sim::trap_name(k);
  }
}

TEST(ExceptionParserTest, AssertionsAreNotHardware) {
  ExceptionParser p;
  EXPECT_EQ(p.parse(sim::Trap{sim::TrapKind::AssertFailed, 0, 3}),
            ExceptionVerdict::NotHardware);
  EXPECT_EQ(p.parse(sim::Trap{}), ExceptionVerdict::NotHardware);
}

TEST(ExceptionParserTest, PolicyControlsWatchdogAndDivide) {
  ExceptionParser::Policy policy;
  policy.watchdog_is_fatal = false;
  policy.divide_error_is_fatal = false;
  ExceptionParser p(policy);
  EXPECT_EQ(p.parse(sim::Trap{sim::TrapKind::Watchdog, 0, 0}),
            ExceptionVerdict::Benign);
  EXPECT_EQ(p.parse(sim::Trap{sim::TrapKind::DivideError, 0, 0}),
            ExceptionVerdict::Benign);
  ExceptionParser strict;
  EXPECT_EQ(strict.parse(sim::Trap{sim::TrapKind::Watchdog, 0, 0}),
            ExceptionVerdict::Fatal);
  EXPECT_EQ(strict.parse(sim::Trap{sim::TrapKind::DivideError, 0, 0}),
            ExceptionVerdict::Fatal);
}

TEST(ExceptionParserTest, DescribeMentionsKindAndAssertId) {
  const std::string s =
      ExceptionParser::describe(sim::Trap{sim::TrapKind::AssertFailed, 7, 9});
  EXPECT_NE(s.find("ASSERT"), std::string::npos);
  EXPECT_NE(s.find("9"), std::string::npos);
  EXPECT_NE(ExceptionParser::describe(
                sim::Trap{sim::TrapKind::PageFault, 0xdead, 0})
                .find("#PF"),
            std::string::npos);
}

}  // namespace
}  // namespace xentry
