#include "xentry/framework.hpp"

#include <gtest/gtest.h>

#include "hv/machine.hpp"
#include "ml/decision_tree.hpp"

namespace xentry {
namespace {

namespace L = hv::layout;

// A rule set that flags everything / nothing, for protocol tests.
ml::RuleSet constant_rules(ml::Label label) {
  ml::Dataset ds({"VMER", "RT", "BR", "RM", "WM"});
  std::array<std::int64_t, 5> row{0, 0, 0, 0, 0};
  ds.add(row, label);
  ds.add(row, label);
  ml::DecisionTree t;
  t.train(ds);
  return ml::RuleSet::compile(t);
}

TEST(XentryTest, CleanRunIsUndetectedWithAlwaysCorrectModel) {
  hv::Machine m;
  Xentry x;
  x.set_model(constant_rules(ml::Label::Correct));
  auto act =
      m.make_activation(hv::ExitReason::hypercall(hv::Hypercall::iret), 3);
  Observation obs = x.observe(m, act);
  EXPECT_TRUE(obs.run.reached_vm_entry);
  EXPECT_FALSE(obs.detected);
  EXPECT_EQ(obs.technique, Technique::None);
  EXPECT_GT(obs.features.rt, 0);
  EXPECT_EQ(x.detector().evaluations(), 1u);
}

TEST(XentryTest, TransitionDetectionFlagsAtVmEntry) {
  hv::Machine m;
  Xentry x;
  x.set_model(constant_rules(ml::Label::Incorrect));
  auto act =
      m.make_activation(hv::ExitReason::hypercall(hv::Hypercall::iret), 3);
  Observation obs = x.observe(m, act);
  ASSERT_TRUE(obs.run.reached_vm_entry);
  EXPECT_TRUE(obs.detected);
  EXPECT_EQ(obs.technique, Technique::VmTransition);
  EXPECT_EQ(obs.detection_step, obs.run.steps);
}

TEST(XentryTest, HardwareExceptionDetection) {
  hv::Machine m;
  Xentry x;
  auto act = m.make_activation(
      hv::ExitReason::hypercall(hv::Hypercall::console_io), 8, 2);
  // Flip a high rip bit early: guaranteed #PF.
  hv::Injection inj{2, sim::Reg::rip, 40};
  hv::RunOptions opts;
  opts.injection = &inj;
  Observation obs = x.observe(m, act, opts);
  EXPECT_FALSE(obs.run.reached_vm_entry);
  EXPECT_TRUE(obs.detected);
  EXPECT_EQ(obs.technique, Technique::HardwareException);
}

TEST(XentryTest, AssertionDetectionRecordsFire) {
  hv::Machine m;
  // Corrupt the idle vcpu so a forced idle path trips Listing 2's assert.
  m.memory().poke(L::kHvDataBase + L::kHvRunqCount, 0);
  m.memory().poke(L::vcpu_addr(m.num_vcpus()) + L::kVcpuState,
                  L::kVcpuStateRunning);
  Xentry x;
  hv::Activation act;
  act.reason = hv::ExitReason::hypercall(hv::Hypercall::sched_op_compat);
  act.arg1 = 1;
  act.vcpu = 0;
  Observation obs = x.observe(m, act);
  ASSERT_TRUE(obs.detected);
  EXPECT_EQ(obs.technique, Technique::SoftwareAssertion);
  EXPECT_EQ(x.assertions().fires(hv::kAssertIdleVcpu), 1u);
}

TEST(XentryTest, RuntimeDetectionOffIgnoresTraps) {
  hv::Machine m;
  XentryConfig cfg;
  cfg.runtime_detection = false;
  Xentry x(cfg);
  auto act = m.make_activation(
      hv::ExitReason::hypercall(hv::Hypercall::console_io), 8, 2);
  hv::Injection inj{2, sim::Reg::rip, 40};
  hv::RunOptions opts;
  opts.injection = &inj;
  Observation obs = x.observe(m, act, opts);
  EXPECT_FALSE(obs.run.reached_vm_entry);
  EXPECT_FALSE(obs.detected);  // the crash happens, but nothing claims it
}

TEST(XentryTest, TransitionDetectionOffSkipsCountersAndModel) {
  hv::Machine m;
  XentryConfig cfg;
  cfg.transition_detection = false;
  Xentry x(cfg);
  x.set_model(constant_rules(ml::Label::Incorrect));
  auto act =
      m.make_activation(hv::ExitReason::hypercall(hv::Hypercall::iret), 3);
  Observation obs = x.observe(m, act);
  EXPECT_TRUE(obs.run.reached_vm_entry);
  EXPECT_FALSE(obs.detected);
  EXPECT_EQ(x.detector().evaluations(), 0u);
  EXPECT_EQ(obs.features.rt, 0);  // counters never armed
}

TEST(XentryTest, TechniqueNames) {
  EXPECT_EQ(technique_name(Technique::None), "undetected");
  EXPECT_EQ(technique_name(Technique::HardwareException), "hw_exception");
  EXPECT_EQ(technique_name(Technique::SoftwareAssertion), "sw_assertion");
  EXPECT_EQ(technique_name(Technique::VmTransition), "vm_transition");
}

TEST(TransitionDetectorTest, StatisticsAccumulate) {
  TransitionDetector d(constant_rules(ml::Label::Incorrect));
  ASSERT_TRUE(d.has_model());
  FeatureVector f{1, 2, 3, 4, 5};
  EXPECT_TRUE(d.flag(f));
  EXPECT_TRUE(d.flag(f));
  EXPECT_EQ(d.evaluations(), 2u);
  EXPECT_EQ(d.flagged(), 2u);
  EXPECT_EQ(d.max_comparisons_per_entry(), 0);  // single-leaf model
  EXPECT_DOUBLE_EQ(d.mean_comparisons(), 0.0);
}

}  // namespace
}  // namespace xentry
