// Light-weight recovery by checkpoint + re-execution (paper Section VI).
//
// "We assume that the recovery techniques will preserve the critical
// hypervisor data (e.g. VCPU and domain information) and the VM exit
// reason by making a redundant copy at every VM exit.  If there is a
// positive detection (correct or false), these critical data and the VM
// exit reason will be restored and the hypervisor execution is
// re-initiated."  The paper costs this scheme out (Fig. 11) but leaves
// the implementation as future work; this engine implements it.
//
// The checkpoint covers exactly what the paper names — the hypervisor
// globals, every domain/VCPU structure, and the activation — NOT guest
// memory or shared-info pages.  Recovery can therefore fail when the
// faulted execution corrupted guest-visible state before detection fired;
// RecoveryEngine reports that honestly via verify().
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "hv/machine.hpp"

namespace xentry {

class RecoveryEngine {
 public:
  struct Stats {
    std::uint64_t checkpoints = 0;
    std::uint64_t recoveries = 0;
    std::uint64_t clean_reruns = 0;  ///< re-execution reached VM entry
  };

  explicit RecoveryEngine(hv::Machine& machine) : machine_(&machine) {}

  /// The VM-exit side: copies the critical hypervisor data and the
  /// activation (the "VM exit reason").  Called before the handler runs.
  void checkpoint(const hv::Activation& activation);

  bool has_checkpoint() const { return checkpoint_.has_value(); }

  /// The recovery side: restores the critical data and re-executes the
  /// checkpointed activation.  Returns the rerun's result.  Requires a
  /// checkpoint.
  hv::RunResult recover();

  /// Number of words one checkpoint copies — the quantity behind the
  /// paper's measured 1,900 ns copy cost.
  std::size_t checkpoint_words() const;

  const Stats& stats() const { return stats_; }

 private:
  struct Checkpoint {
    hv::Activation activation;
    std::vector<sim::Word> hv_data;
    std::vector<sim::Word> domains;
    std::vector<sim::Word> vcpus;
    sim::Word tsc = 0;
  };

  std::vector<sim::Word> copy_region(sim::Addr base, sim::Addr size) const;
  void restore_region(sim::Addr base, const std::vector<sim::Word>& words);

  hv::Machine* machine_;
  std::optional<Checkpoint> checkpoint_;
  Stats stats_;
};

}  // namespace xentry
