// Basic machine types shared by the whole simulator substrate.
//
// The simulated machine is a 64-bit, word-addressable architecture with an
// x86-flavoured architectural register file: 16 general-purpose registers
// (including the stack pointer), an instruction pointer, and a flags
// register.  These 18 registers are exactly the fault-injection surface of
// the paper's fault model (single bit flip in the architectural register
// state, Section V-B).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace xentry::sim {

/// Machine word.  All registers and memory cells hold one of these.
using Word = std::uint64_t;

/// Word address.  The machine is word-addressable; one address unit is one
/// 64-bit cell (for data) or one instruction slot (for code).
using Addr = std::uint64_t;

/// Architectural registers.  Order matters: it is the bit-flip target index
/// space used by the fault injector.
enum class Reg : std::uint8_t {
  rax = 0,
  rbx,
  rcx,
  rdx,
  rsi,
  rdi,
  rbp,
  rsp,
  r8,
  r9,
  r10,
  r11,
  r12,
  r13,
  r14,
  r15,
  rip,     ///< instruction pointer (absolute instruction address)
  rflags,  ///< condition flags, see FlagBit
};

inline constexpr int kNumGprs = 16;              ///< rax..r15
inline constexpr int kNumArchRegs = 18;          ///< GPRs + rip + rflags
inline constexpr int kBitsPerReg = 64;

/// Condition flag bit positions within rflags.
enum FlagBit : Word {
  kFlagZero = 1u << 0,   ///< ZF: result was zero
  kFlagSign = 1u << 1,   ///< SF: result was negative (bit 63 set)
  kFlagCarry = 1u << 2,  ///< CF: unsigned borrow/carry
  kFlagOverflow = 1u << 3,
};

constexpr std::string_view reg_name(Reg r) {
  constexpr std::array<std::string_view, kNumArchRegs> names = {
      "rax", "rbx", "rcx", "rdx", "rsi", "rdi", "rbp", "rsp", "r8",
      "r9",  "r10", "r11", "r12", "r13", "r14", "r15", "rip", "rflags"};
  return names[static_cast<std::size_t>(r)];
}

/// Hardware traps the CPU can raise.  These mirror the x86 exceptions the
/// paper's runtime detection parses ("fatal page fault and invalid opcode",
/// Section III-A); AssertFailed models the software-assertion trap and
/// Watchdog models Xen's NMI watchdog catching a hung hypervisor.
enum class TrapKind : std::uint8_t {
  None = 0,
  InvalidOpcode,     ///< #UD: fetched a non-instruction
  PageFault,         ///< #PF: access to unmapped memory
  GeneralProtection, ///< #GP: access violating region permissions
  DivideError,       ///< #DE: division by zero
  StackFault,        ///< #SS: push/pop outside the stack region
  AssertFailed,      ///< software assertion fired (not a hardware trap)
  Watchdog,          ///< NMI watchdog: execution budget exhausted
  StackCheck,        ///< shadow-stack redundancy mismatch (extension)
};

constexpr std::string_view trap_name(TrapKind t) {
  switch (t) {
    case TrapKind::None: return "none";
    case TrapKind::InvalidOpcode: return "#UD";
    case TrapKind::PageFault: return "#PF";
    case TrapKind::GeneralProtection: return "#GP";
    case TrapKind::DivideError: return "#DE";
    case TrapKind::StackFault: return "#SS";
    case TrapKind::AssertFailed: return "ASSERT";
    case TrapKind::Watchdog: return "WATCHDOG";
    case TrapKind::StackCheck: return "STACKCHK";
  }
  return "?";
}

/// A raised trap plus diagnostic detail.
struct Trap {
  TrapKind kind = TrapKind::None;
  Addr fault_addr = 0;   ///< faulting memory address or rip
  std::uint32_t aux = 0; ///< assertion id for AssertFailed

  constexpr explicit operator bool() const { return kind != TrapKind::None; }
};

}  // namespace xentry::sim
