// Telemetry overhead bound + digest-equality check.
//
// Runs the same campaign (the micro_campaign configuration) under eight
// telemetry modes — two independent fully-off sets, metrics-only, fully
// on (metrics + tracing + flight recorder), forensics (metrics +
// lockstep replay), cfi_off (static-analysis artifacts installed but
// control-flow detection disabled), timing_off (artifacts with timing
// envelopes installed but timing detection disabled), and sinks
// (streaming every record through the durable JSONL record sink) — and
// asserts the observability contract.  Measurement discipline for noisy shared
// hosts: rates are computed from process CPU time (immune to scheduler
// steal), one untimed warmup campaign runs first, the mode order rotates
// every rep (so no mode systematically inherits the post-boost or
// post-warmup slot), and each mode keeps its best-of-N rate.  Asserted:
//
//   1. record digests are bit-identical across ALL runs and modes;
//   2. the two telemetry-off sets agree within `tol_disabled`: with
//      telemetry disabled every collection site is a null-pointer check,
//      so a disabled-telemetry run must be indistinguishable from the
//      baseline up to measurement noise — this bounds both the disabled
//      path's cost and the noise floor the enabled bound is judged
//      against;
//   3. fully-on throughput is within `tol_enabled` of off;
//   4. forensics-mode digests equal the off digests (the replay must not
//      perturb the record stream) and its throughput stays within
//      `tol_forensics` — a loose bound: forensics re-executes qualifying
//      faulted windows on the reference engine, so its cost scales with
//      the escape rate, not with hot-path instrumentation;
//   5. cfi_off digests equal the off digests (installing analysis
//      artifacts with control-flow detection disabled must not perturb
//      the observe path) and its rate is judged at `tol_disabled`;
//   5b. timing_off digests equal the off digests (artifacts carrying
//      timing envelopes with timing detection disabled must leave
//      counter arming and the observe path bit-identical) and its rate
//      is judged at `tol_disabled`;
//   6. sinks digests equal the off digests (streaming is encode-and-
//      append off the hot state, never a behavioral input) and its
//      throughput stays within `tol_enabled` — the streaming pipeline's
//      headline bound: durable records cost <= 10% by default.
//
// Exit status is non-zero on any violation, so CI can run this as a
// smoke test.  `--trace-out FILE` additionally writes the fully-on run's
// Chrome trace-event JSON (load it at ui.perfetto.dev).
//
// Usage: obs_overhead [injections] [shards] [seed] [reps] [--trace-out F]
//   tolerances:  XENTRY_OBS_TOL_DISABLED  (default 0.02)
//                XENTRY_OBS_TOL_ENABLED   (default 0.10)
//                XENTRY_OBS_TOL_FORENSICS (default 0.35)
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "fault/campaign.hpp"
#include "hv/microvisor.hpp"

namespace {

using namespace xentry;

struct Mode {
  const char* name;
  obs::Options obs;
  /// Install static-analysis artifacts (with control-flow detection left
  /// off) — exercises the disabled-CFI path of the observe loop.
  bool install_analysis = false;
  /// Stream records through a durable JSONL ShardedFileSink.
  bool streaming = false;
  /// Explicitly pin timing detection off while artifacts (which carry
  /// the timing envelopes) are installed — exercises the disabled-timing
  /// path of the observe loop, including its counter-arming decision.
  bool timing_off = false;
};

struct RunScore {
  double rate = 0;  ///< injections per CPU-second
  std::uint64_t digest = 0;
};

double cpu_seconds() {
  timespec ts;
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

/// Per-process scratch base for the sinks mode (parallel CI jobs must
/// not share stream files).
const std::string& sink_base_path() {
  static const std::string p = [] {
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::path dir = fs::temp_directory_path(ec);
    if (ec) dir = ".";
    return (dir / ("obs_overhead_records." +
                   std::to_string(static_cast<long>(::getpid()))))
        .string();
  }();
  return p;
}

RunScore run_once(int injections, int shards, std::uint64_t seed,
                  const Mode& mode,
                  std::shared_ptr<const analysis::AnalysisArtifacts> analysis,
                  fault::CampaignResult* keep) {
  fault::CampaignConfig cfg;
  cfg.injections = injections;
  cfg.shards = shards;
  cfg.seed = seed;
  cfg.collect_dataset = true;  // the micro_campaign configuration
  cfg.obs = mode.obs;
  if (mode.install_analysis) cfg.analysis = std::move(analysis);
  if (mode.streaming) cfg.streaming.records_path = sink_base_path();
  if (mode.timing_off) cfg.xentry.timing_detection = false;
  const double t0 = cpu_seconds();
  fault::CampaignResult res = fault::run_campaign(cfg);
  const double elapsed = cpu_seconds() - t0;
  RunScore score;
  score.rate = static_cast<double>(res.records.size()) / elapsed;
  score.digest = bench::records_digest(res.records);
  if (keep != nullptr) *keep = std::move(res);
  return score;
}

double env_tol(const char* name, double fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  const double v = std::atof(env);
  return v > 0 ? v : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  // Default reps = mode count: with rotation, every mode then occupies
  // every within-rep slot exactly once.
  int injections = 20000, shards = 1, reps = 8;
  std::uint64_t seed = 7;
  std::string trace_out;
  int pos = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
      continue;
    }
    switch (pos++) {
      case 0: injections = std::atoi(argv[i]); break;
      case 1: shards = std::atoi(argv[i]); break;
      case 2: seed = std::strtoull(argv[i], nullptr, 10); break;
      case 3: reps = std::atoi(argv[i]); break;
    }
  }
  const double tol_disabled = env_tol("XENTRY_OBS_TOL_DISABLED", 0.02);
  const double tol_enabled = env_tol("XENTRY_OBS_TOL_ENABLED", 0.10);
  const double tol_forensics = env_tol("XENTRY_OBS_TOL_FORENSICS", 0.35);

  const Mode modes[] = {
      {"off", obs::Options{}},
      {"off2", obs::Options{}},
      {"metrics", {.metrics = true}},
      {"full", obs::Options::all()},
      {"forensics", {.metrics = true, .forensics = true}},
      {"cfi_off", obs::Options{}, /*install_analysis=*/true},
      {"timing_off", obs::Options{}, /*install_analysis=*/true,
       /*streaming=*/false, /*timing_off=*/true},
      {"sinks", obs::Options{}, /*install_analysis=*/false,
       /*streaming=*/true},
  };
  constexpr int kNumModes = 8;

  // Analysis artifacts for the cfi_off mode, computed once (the analysis
  // itself is build-time work, not part of the campaign hot path).
  const hv::Microvisor probe =
      hv::build_microvisor(fault::CampaignConfig{}.machine);
  const auto artifacts = std::make_shared<const analysis::AnalysisArtifacts>(
      analysis::analyze_program(probe.program, hv::analyze_options(probe)));

  // One untimed warmup (page cache, allocator, frequency boost), then
  // rotate the mode order every rep so drift hits every mode equally;
  // keep the best rate per mode.
  run_once(injections, shards, seed, modes[0], nullptr, nullptr);
  double best[kNumModes] = {};
  std::uint64_t digest = 0;
  bool digest_set = false, digests_ok = true;
  fault::CampaignResult full_result;  // a fully-on run, for --trace-out
  for (int rep = 0; rep < reps; ++rep) {
    for (int mi = 0; mi < kNumModes; ++mi) {
      const int m = (mi + rep) % kNumModes;
      const bool keep = m == 3;  // "full": the run --trace-out exports
      const RunScore s = run_once(injections, shards, seed, modes[m],
                                  artifacts, keep ? &full_result : nullptr);
      if (s.rate > best[m]) best[m] = s.rate;
      if (!digest_set) {
        digest = s.digest;
        digest_set = true;
      } else if (s.digest != digest) {
        digests_ok = false;
        std::fprintf(stderr,
                     "FAIL: digest mismatch in mode %s rep %d: "
                     "%016llx vs %016llx\n",
                     modes[m].name, rep,
                     static_cast<unsigned long long>(s.digest),
                     static_cast<unsigned long long>(digest));
      }
    }
  }

  // Symmetric disabled gap: either off set may have gotten the luckier
  // scheduling, and a negative gap is as informative as a positive one.
  const double overhead_disabled =
      std::abs(1.0 - best[1] / best[0]);
  const double overhead_metrics = 1.0 - best[2] / best[0];
  const double overhead_enabled = 1.0 - best[3] / best[0];
  const double overhead_forensics = 1.0 - best[4] / best[0];
  // cfi_off is a disabled collection site like off2: one boolean check
  // per observation, so it is judged at the same symmetric tolerance.
  const double overhead_cfi_off = std::abs(1.0 - best[5] / best[0]);
  // timing_off is the same shape for the timing detector: installed
  // envelopes with detection off must cost one boolean check.
  const double overhead_timing_off = std::abs(1.0 - best[6] / best[0]);
  // sinks pays encode + buffered append + flush per record — real work,
  // judged at the enabled tolerance (the <= 10% streaming bound).
  const double overhead_sinks = 1.0 - best[7] / best[0];
  const bool disabled_ok = overhead_disabled <= tol_disabled;
  const bool enabled_ok = overhead_enabled <= tol_enabled;
  const bool forensics_ok = overhead_forensics <= tol_forensics;
  const bool cfi_off_ok = overhead_cfi_off <= tol_disabled;
  const bool timing_off_ok = overhead_timing_off <= tol_disabled;
  const bool sinks_ok = overhead_sinks <= tol_enabled;

  std::printf(
      "{\n"
      "  \"bench\": \"obs_overhead\",\n"
      "  \"injections\": %d,\n"
      "  \"shards\": %d,\n"
      "  \"seed\": %llu,\n"
      "  \"reps\": %d,\n"
      "  \"records_digest\": \"%016llx\",\n"
      "  \"digests_identical\": %s,\n"
      "  \"rate_off\": %.1f,\n"
      "  \"rate_off2\": %.1f,\n"
      "  \"rate_metrics\": %.1f,\n"
      "  \"rate_full\": %.1f,\n"
      "  \"rate_forensics\": %.1f,\n"
      "  \"rate_cfi_off\": %.1f,\n"
      "  \"rate_timing_off\": %.1f,\n"
      "  \"rate_sinks\": %.1f,\n"
      "  \"overhead_disabled\": %.4f,\n"
      "  \"overhead_metrics\": %.4f,\n"
      "  \"overhead_full\": %.4f,\n"
      "  \"overhead_forensics\": %.4f,\n"
      "  \"overhead_cfi_off\": %.4f,\n"
      "  \"overhead_timing_off\": %.4f,\n"
      "  \"overhead_sinks\": %.4f,\n"
      "  \"tol_disabled\": %.4f,\n"
      "  \"tol_enabled\": %.4f,\n"
      "  \"tol_forensics\": %.4f,\n"
      "  \"bounds_ok\": %s\n"
      "}\n",
      injections, shards, static_cast<unsigned long long>(seed), reps,
      static_cast<unsigned long long>(digest), digests_ok ? "true" : "false",
      best[0], best[1], best[2], best[3], best[4], best[5], best[6], best[7],
      overhead_disabled, overhead_metrics, overhead_enabled,
      overhead_forensics, overhead_cfi_off, overhead_timing_off,
      overhead_sinks, tol_disabled, tol_enabled, tol_forensics,
      disabled_ok && enabled_ok && forensics_ok && cfi_off_ok &&
              timing_off_ok && sinks_ok
          ? "true"
          : "false");

  // Scratch stream files from the sinks mode are per-process; clean up.
  for (int s = 0; s < shards; ++s) {
    std::error_code ec;
    std::filesystem::remove(
        obs::ShardedFileSink::shard_path(sink_base_path(),
                                         obs::RecordFormat::kJsonl,
                                         static_cast<std::size_t>(s)),
        ec);
  }

  if (!trace_out.empty()) {
    std::ofstream os(trace_out);
    if (!os) {
      std::fprintf(stderr, "FAIL: cannot open %s\n", trace_out.c_str());
      return 1;
    }
    full_result.trace.write_chrome_json(os);
    std::fprintf(stderr, "[obs_overhead] wrote %zu trace events to %s\n",
                 full_result.trace.events().size(), trace_out.c_str());
  }

  if (!digests_ok) return 1;
  if (!disabled_ok) {
    std::fprintf(stderr,
                 "FAIL: disabled-telemetry overhead %.2f%% exceeds %.2f%%\n",
                 overhead_disabled * 100, tol_disabled * 100);
    return 1;
  }
  if (!enabled_ok) {
    std::fprintf(stderr,
                 "FAIL: enabled-telemetry overhead %.2f%% exceeds %.2f%%\n",
                 overhead_enabled * 100, tol_enabled * 100);
    return 1;
  }
  if (!forensics_ok) {
    std::fprintf(stderr,
                 "FAIL: forensics overhead %.2f%% exceeds %.2f%%\n",
                 overhead_forensics * 100, tol_forensics * 100);
    return 1;
  }
  if (!cfi_off_ok) {
    std::fprintf(stderr,
                 "FAIL: disabled-CFI overhead %.2f%% exceeds %.2f%%\n",
                 overhead_cfi_off * 100, tol_disabled * 100);
    return 1;
  }
  if (!timing_off_ok) {
    std::fprintf(stderr,
                 "FAIL: disabled-timing overhead %.2f%% exceeds %.2f%%\n",
                 overhead_timing_off * 100, tol_disabled * 100);
    return 1;
  }
  if (!sinks_ok) {
    std::fprintf(stderr,
                 "FAIL: record-sink streaming overhead %.2f%% exceeds %.2f%%\n",
                 overhead_sinks * 100, tol_enabled * 100);
    return 1;
  }
  return 0;
}
