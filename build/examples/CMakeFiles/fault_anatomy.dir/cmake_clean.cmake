file(REMOVE_RECURSE
  "CMakeFiles/fault_anatomy.dir/fault_anatomy.cpp.o"
  "CMakeFiles/fault_anatomy.dir/fault_anatomy.cpp.o.d"
  "fault_anatomy"
  "fault_anatomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
