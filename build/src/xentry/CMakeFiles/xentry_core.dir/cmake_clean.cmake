file(REMOVE_RECURSE
  "CMakeFiles/xentry_core.dir/assertions.cpp.o"
  "CMakeFiles/xentry_core.dir/assertions.cpp.o.d"
  "CMakeFiles/xentry_core.dir/cost_model.cpp.o"
  "CMakeFiles/xentry_core.dir/cost_model.cpp.o.d"
  "CMakeFiles/xentry_core.dir/exception_parser.cpp.o"
  "CMakeFiles/xentry_core.dir/exception_parser.cpp.o.d"
  "CMakeFiles/xentry_core.dir/features.cpp.o"
  "CMakeFiles/xentry_core.dir/features.cpp.o.d"
  "CMakeFiles/xentry_core.dir/framework.cpp.o"
  "CMakeFiles/xentry_core.dir/framework.cpp.o.d"
  "CMakeFiles/xentry_core.dir/recovery.cpp.o"
  "CMakeFiles/xentry_core.dir/recovery.cpp.o.d"
  "CMakeFiles/xentry_core.dir/recovery_engine.cpp.o"
  "CMakeFiles/xentry_core.dir/recovery_engine.cpp.o.d"
  "libxentry_core.a"
  "libxentry_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xentry_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
