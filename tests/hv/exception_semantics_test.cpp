// Behavioural tests for the exception, APIC, IRQ, softirq and tasklet
// handlers: event injection into guests, emulation paths, scheduling and
// time side effects.
#include <gtest/gtest.h>

#include "hv/machine.hpp"

namespace xentry::hv {
namespace {

namespace L = layout;
using sim::Word;

class ExceptionTest : public ::testing::Test {
 protected:
  Activation exc(GuestException e, Word a1 = 0, Word a2 = 0, int vcpu = 1,
                 std::uint64_t seed = 7) {
    Activation act;
    act.reason = ExitReason::exception(e);
    act.arg1 = a1;
    act.arg2 = a2;
    act.vcpu = vcpu;
    act.seed = seed;
    return act;
  }

  void run_ok(const Activation& act) {
    const RunResult res = m.run(act);
    ASSERT_TRUE(res.reached_vm_entry)
        << handler_symbol(act.reason) << ": "
        << sim::trap_name(res.trap.kind) << " assert=" << res.trap.aux;
  }

  Word vcpu_field(int v, std::int64_t off) {
    return m.memory().peek(L::vcpu_addr(v) + off);
  }
  Word ram(int dom, std::int64_t off) {
    return m.memory().peek(L::guest_ram_addr(dom) + off);
  }
  Word hv(std::int64_t off) {
    return m.memory().peek(L::kHvDataBase + off);
  }

  Machine m;
};

TEST_F(ExceptionTest, SimpleInjectVectorsThroughTrapTable) {
  // divide_error -> vector 0: frame pushed, rip redirected to the guest's
  // registered handler.
  const Word old_rip_handler = vcpu_field(1, L::kVcpuTrapTable + 0);
  run_ok(exc(GuestException::divide_error, 0x1234));
  EXPECT_EQ(vcpu_field(1, L::kVcpuSaveRip), old_rip_handler);
  EXPECT_EQ(ram(1, L::kGuestExcFrame + 3), 0u);  // vector number
}

TEST_F(ExceptionTest, ErrorCodeVariantsRecordVector) {
  for (auto [e, vec] : {std::pair{GuestException::invalid_tss, 10},
                        {GuestException::segment_not_present, 11},
                        {GuestException::stack_segment, 12}}) {
    run_ok(exc(e, 0x42));
    EXPECT_EQ(ram(1, L::kGuestExcFrame + 3), static_cast<Word>(vec))
        << exception_name(e);
    EXPECT_EQ(vcpu_field(1, L::kVcpuSaveRip),
              vcpu_field(1, L::kVcpuTrapTable + vec));
  }
}

TEST_F(ExceptionTest, GpEmulatesCpuidLeafZero) {
  run_ok(exc(GuestException::general_protection, 0x0f, 0));
  EXPECT_EQ(vcpu_field(1, L::kVcpuSaveGprs + 0), 0x0du);       // max leaf
  EXPECT_EQ(vcpu_field(1, L::kVcpuSaveGprs + 1), 0x756e6547u); // "Genu"
}

TEST_F(ExceptionTest, GpEmulatesCpuidLeafOneWithDomainStamp) {
  run_ok(exc(GuestException::general_protection, 0x0f, 1, 2));
  const Word eax = vcpu_field(2, L::kVcpuSaveGprs + 0);
  EXPECT_EQ(eax & 0xff, 0xa5u);          // stepping field
  EXPECT_EQ((eax >> 8) & 0xff, 2u + 6u); // domain id folded in (2<<8 + 0x06..)
}

TEST_F(ExceptionTest, GpEmulatesRdtscSplitLowHigh) {
  run_ok(exc(GuestException::general_protection, 0x31, 0));
  // Low half in guest rax, high half in guest rdx; scaled TSC is small
  // early in a machine's life so the high half is zero but the low half
  // must be populated.
  EXPECT_NE(vcpu_field(1, L::kVcpuSaveGprs + 0), 0u);
  EXPECT_EQ(vcpu_field(1, L::kVcpuSaveGprs + 3),
            0u);
}

TEST_F(ExceptionTest, GpReflectsUnknownOpcodes) {
  run_ok(exc(GuestException::general_protection, 0x6c, 0));
  EXPECT_EQ(ram(1, L::kGuestExcFrame + 3), 13u);
}

TEST_F(ExceptionTest, PageFaultFixupCountsMinorFaults) {
  const Word before = hv(L::kHvPerfcCounters + 5);
  run_ok(exc(GuestException::page_fault, 0x23));  // mapped l1 slot
  EXPECT_EQ(hv(L::kHvPerfcCounters + 5), before + 1);
  EXPECT_NE(ram(1, L::kGuestAppPtrs + 0x23), 0u);
}

TEST_F(ExceptionTest, DoubleFaultCrashesAndDeschedulesDomain) {
  run_ok(exc(GuestException::double_fault, 0, 0, 2));
  EXPECT_EQ(m.memory().peek(L::domain_addr(2) + L::kDomState), 1u);
  EXPECT_EQ(vcpu_field(2, L::kVcpuState),
            static_cast<Word>(L::kVcpuStateBlocked));
}

TEST_F(ExceptionTest, MachineCheckFatalBitCrashesDomain) {
  // Odd bank values carry the fatal bit; prepare_inputs only writes even
  // ones, so poke a fatal record first.
  Activation act = exc(GuestException::machine_check, 0, 0, 1, 7);
  m.run(act);  // benign pass first (prepared banks are even)
  EXPECT_EQ(m.memory().peek(L::domain_addr(1) + L::kDomState), 0u);
  // Run again, then force fatal by prepared state: poke after prepare is
  // impossible from outside, so drive the CPU manually.
  m.memory().poke(L::kHvDataBase + L::kHvMcBanks + 1, 3);  // fatal
  sim::Cpu& cpu = m.cpu();
  cpu.reset(m.microvisor().entry(act.reason), L::kStackTop);
  cpu.set_reg(sim::Reg::rbp, L::kHvDataBase);
  cpu.set_reg(sim::Reg::r8, L::vcpu_addr(1));
  cpu.set_reg(sim::Reg::r9, L::domain_addr(1));
  ASSERT_EQ(cpu.run(100000).status, sim::StepInfo::Status::Halted);
  EXPECT_EQ(m.memory().peek(L::domain_addr(1) + L::kDomState), 1u);
}

TEST_F(ExceptionTest, ApicTimerAdvancesTimeAndFiresDeadline) {
  // Arm a deadline that the first tick will have passed.
  m.memory().poke(L::vcpu_addr(1) + L::kVcpuTimerDeadline, 1);
  Activation tick;
  tick.reason = ExitReason::apic(ApicInterrupt::timer);
  tick.vcpu = 1;
  tick.seed = 5;
  run_ok(tick);
  EXPECT_GT(hv(L::kHvSystemTime), 0u);
  EXPECT_EQ(vcpu_field(1, L::kVcpuTimerDeadline), 0u);  // fired
  EXPECT_EQ(vcpu_field(1, L::kVcpuPendingEvents), 1u);
  // Shared info time published for the current domain.
  EXPECT_GT(m.memory().peek(L::shared_info_addr(1) + L::kShVersion), 0u);
  // Softirqs fully drained before VM entry.
  EXPECT_EQ(hv(L::kHvSoftirqPending), 0u);
}

TEST_F(ExceptionTest, IpiEventCheckRaisesCallbackFlag) {
  m.memory().poke(L::vcpu_addr(1) + L::kVcpuPendingEvents, 1);
  Activation act;
  act.reason = ExitReason::apic(ApicInterrupt::ipi_event_check);
  act.vcpu = 1;
  run_ok(act);
  EXPECT_TRUE(m.memory().peek(L::shared_info_addr(1) + L::kShArchFlags) & 1);
}

TEST_F(ExceptionTest, SoftirqDrainsAllPendingBits) {
  Activation act;
  act.reason = ExitReason::softirq();
  act.vcpu = 0;
  act.seed = 11;  // prepare_inputs raises a nonzero pending mask
  run_ok(act);
  EXPECT_EQ(hv(L::kHvSoftirqPending), 0u);
}

TEST_F(ExceptionTest, TaskletDrainsQueueAndAccumulatesWork) {
  Activation act;
  act.reason = ExitReason::tasklet();
  act.vcpu = 0;
  act.seed = 13;
  run_ok(act);
  EXPECT_EQ(hv(L::kHvTaskletCount), 0u);
}

TEST_F(ExceptionTest, IrqCountsAndRoutes) {
  const Word before = hv(L::kHvPerfcCounters + 0);
  run_ok(m.make_activation(ExitReason::irq(7), 3, 0));
  EXPECT_EQ(hv(L::kHvPerfcCounters + 0), before + 1);
  // Boot routing: irq 7 -> dom 1 (7 % 3), port 7.
  EXPECT_TRUE(m.memory().peek(L::shared_info_addr(1) + L::kShEvtchnPending) &
              (1u << 7));
}

TEST_F(ExceptionTest, SpuriousHandlersAreShortAndCounted) {
  Activation act;
  act.reason = ExitReason::apic(ApicInterrupt::spurious);
  act.vcpu = 0;
  const RunResult res = m.run(act);
  ASSERT_TRUE(res.reached_vm_entry);
  EXPECT_LE(res.counters.inst_retired, 24u);
  EXPECT_EQ(hv(L::kHvPerfcCounters + 8), 1u);
}

}  // namespace
}  // namespace xentry::hv
