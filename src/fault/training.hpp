// Training pipeline for the VM-transition detector (paper Section III-B).
//
// The paper collects ~23,400 injection + fault-free runs into 12,024
// training samples (10,280 correct / 1,744 incorrect ~= 6:1), trains both
// a plain decision tree and WEKA's RandomTree, and reports 96.1% vs 98.6%
// test accuracy with a 0.7% false-positive rate.  Campaign datasets here
// are more imbalanced than 6:1 (golden runs contribute a correct sample
// each), so the trainer oversamples the incorrect class back to the
// paper's ratio before fitting.
#pragma once

#include <cstdint>

#include "ml/dataset.hpp"
#include "ml/decision_tree.hpp"
#include "ml/metrics.hpp"
#include "ml/rules.hpp"

namespace xentry::fault {

struct TrainingOptions {
  double train_fraction = 0.65;
  /// Target fraction of incorrect samples in the training set after
  /// oversampling (paper: 1,744 / 12,024 ~= 0.145).  <= 0 disables.
  double incorrect_target_fraction = 0.20;
  /// RandomTree (the paper's deployed model) vs the plain decision tree.
  bool random_tree = true;
  std::uint64_t seed = 17;
};

struct TrainedDetector {
  ml::DecisionTree tree;
  ml::RuleSet rules;  ///< the deployable flattened form
  ml::ConfusionMatrix test_eval;
  std::size_t train_samples = 0;
  std::size_t train_incorrect = 0;
  std::size_t test_samples = 0;
};

/// Oversamples the Incorrect class (by deterministic duplication) until it
/// makes up `target_fraction` of the set.  No-op if already above target.
ml::Dataset oversample_incorrect(const ml::Dataset& data,
                                 double target_fraction);

/// Splits, balances, fits, compiles and evaluates in one step.
TrainedDetector train_detector(const ml::Dataset& samples,
                               const TrainingOptions& options = {});

}  // namespace xentry::fault
