// Atomic whole-file publication (write-to-temp + rename).
//
// The fleet observability plane is built on files that one process
// rewrites on a cadence while others tail them: the coordinator's
// status.json, each worker's heartbeat file, micro_campaign's
// --metrics-out.  A plain truncate-and-write lets a reader observe a
// torn prefix; POSIX rename(2) within one directory is atomic, so
// writing the full content to a sibling temp file and renaming it over
// the target guarantees every reader sees either the old file or the
// new one, never a mix.
#pragma once

#include <string>
#include <string_view>

namespace xentry::obs {

/// Writes `content` to `path` atomically: the bytes land in
/// `<path>.tmp.<pid>` first and are renamed over `path` only after a
/// successful write + flush.  Returns false (and removes the temp file)
/// on any I/O failure; `path` is never left torn or truncated.
bool write_file_atomic(const std::string& path, std::string_view content);

}  // namespace xentry::obs
