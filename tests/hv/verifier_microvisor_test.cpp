// The microvisor itself must verify cleanly in every configuration — the
// strongest static guarantee that no handler branches into padding, falls
// off its tail, or carries an unregistered assertion id.
#include <gtest/gtest.h>

#include "hv/microvisor.hpp"
#include "sim/verifier.hpp"

namespace xentry::hv {
namespace {

sim::VerifierOptions strict() {
  sim::VerifierOptions opt;
  opt.max_assert_id = kAssertMaxId;
  return opt;
}

struct ConfigCase {
  int domains;
  int vcpus;
  bool assertions;
  bool time_checks;
};

class MicrovisorVerify : public ::testing::TestWithParam<ConfigCase> {};

TEST_P(MicrovisorVerify, ProgramVerifiesClean) {
  const ConfigCase c = GetParam();
  MicrovisorOptions opt;
  opt.num_domains = c.domains;
  opt.vcpus_per_domain = c.vcpus;
  opt.assertions = c.assertions;
  opt.time_checks = c.time_checks;
  const Microvisor mv = build_microvisor(opt);
  const sim::VerifierReport r = sim::verify_program(mv.program, strict());
  EXPECT_TRUE(r.ok()) << r.to_string();
  EXPECT_GT(r.branches, 100u);
  if (c.assertions) {
    EXPECT_GT(r.assertions, 20u);
  } else {
    EXPECT_EQ(r.assertions, 0u);
  }
  // multicall's manual indirect dispatch is the only jmp-through-register.
  EXPECT_EQ(r.indirect_jumps, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, MicrovisorVerify,
    ::testing::Values(ConfigCase{3, 1, true, false},
                      ConfigCase{3, 1, true, true},
                      ConfigCase{3, 1, false, false},
                      ConfigCase{2, 1, true, false},
                      ConfigCase{4, 2, true, true},
                      ConfigCase{8, 1, true, false},
                      ConfigCase{1, 1, true, false}));

}  // namespace
}  // namespace xentry::hv
