#include "xentry/framework.hpp"

#include "analysis/cfi.hpp"
#include "analysis/timing.hpp"

namespace xentry {

std::string_view technique_name(Technique t) {
  switch (t) {
    case Technique::None: return "undetected";
    case Technique::HardwareException: return "hw_exception";
    case Technique::SoftwareAssertion: return "sw_assertion";
    case Technique::VmTransition: return "vm_transition";
    case Technique::StackRedundancy: return "stack_redundancy";
    case Technique::ControlFlow: return "control_flow";
    case Technique::Timing: return "timing";
  }
  return "?";
}

void Xentry::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr || !cfg_.obs.metrics) {
    metrics_ = {};
    return;
  }
  metrics_.observations = &registry->counter("xentry.observations");
  for (int t = 1; t < kNumTechniques; ++t) {
    std::string name = "xentry.detections.";
    name += technique_name(static_cast<Technique>(t));
    metrics_.detections[t] = &registry->counter(name);
  }
  metrics_.handler_length = &registry->histogram("xentry.handler_length");
  metrics_.detection_latency =
      &registry->histogram("xentry.detection_latency");
  metrics_.cfi_checks = &registry->counter("xentry.cfi.checks");
  metrics_.cfi_edge_misses = &registry->counter("xentry.cfi.edge_misses");
  metrics_.cfi_derived_fires = &registry->counter("xentry.cfi.derived_fires");
  metrics_.timing_checks = &registry->counter("xentry.timing.checks");
  metrics_.timing_cycle_misses =
      &registry->counter("xentry.timing.cycle_misses");
  metrics_.timing_counter_misses =
      &registry->counter("xentry.timing.counter_misses");
}

void Xentry::set_analysis(const analysis::AnalysisArtifacts* artifacts) {
  analysis_ = artifacts;
  if (artifacts == nullptr) return;
  for (const analysis::DerivedAssertion& d : artifacts->derived) {
    registry_.register_derived(d);
  }
}

Observation Xentry::observe(hv::Machine& machine,
                            const hv::Activation& activation,
                            hv::RunOptions opts) {
  const bool timing = timing_active();
  opts.arm_counters = cfg_.transition_detection || timing;
  const bool cfi = cfi_active();
  if (cfi && opts.trace == nullptr) {
    // CFI replays the retired-instruction trace; attach a sink when the
    // caller (unlike the campaign) did not request one.
    scratch_trace_.clear();
    opts.trace = &scratch_trace_;
  }
  Observation obs;
  obs.run = machine.run(activation, opts);
  obs.features = FeatureVector::from(activation.reason, obs.run.counters);

  if (metrics_.observations != nullptr) {
    metrics_.observations->inc();
    metrics_.handler_length->observe(obs.run.steps);
  }

  if (!obs.run.reached_vm_entry) {
    // Host-mode trap: runtime detection territory.
    const sim::Trap& trap = obs.run.trap;
    if (cfg_.runtime_detection) {
      if (trap.kind == sim::TrapKind::StackCheck) {
        obs.detected = true;
        obs.technique = Technique::StackRedundancy;
        obs.detection_step = obs.run.trap_step;
      } else if (trap.kind == sim::TrapKind::AssertFailed) {
        registry_.record_fire(trap.aux);
        obs.detected = true;
        obs.technique = Technique::SoftwareAssertion;
        obs.detection_step = obs.run.trap_step;
      } else if (parser_.parse(trap) == ExceptionVerdict::Fatal) {
        obs.detected = true;
        obs.technique = Technique::HardwareException;
        obs.detection_step = obs.run.trap_step;
      }
    }
    // A trap the parser let pass may still have taken a wild edge on the
    // way: replay the partial trace (no gate, so no range checks).
    if (!obs.detected && cfi) {
      check_control_flow(machine, activation, *opts.trace,
                         /*reached_vm_entry=*/false, obs);
    }
    record_detection_metrics(obs);
    return obs;
  }

  // VM entry: CFI first (deterministic evidence), then the timing
  // envelope (deterministic bounds on the retired counters), then the
  // learned transition detector on what neither can prove wrong.
  if (cfi) {
    check_control_flow(machine, activation, *opts.trace,
                       /*reached_vm_entry=*/true, obs);
  }
  if (timing) {
    check_timing_envelope(machine, activation, obs);
  }
  if (!obs.detected && cfg_.transition_detection && detector_.has_model() &&
      detector_.flag(obs.features)) {
    obs.detected = true;
    obs.technique = Technique::VmTransition;
    obs.detection_step = obs.run.steps;
  }
  record_detection_metrics(obs);
  return obs;
}

void Xentry::check_control_flow(hv::Machine& machine,
                                const hv::Activation& activation,
                                const std::vector<sim::Addr>& trace,
                                bool reached_vm_entry, Observation& obs) {
  const sim::Addr hlt_addr =
      reached_vm_entry ? machine.cpu().reg(sim::Reg::rip) : analysis::kNoAddr;
  const analysis::CfiResult r = analysis::check_trace(
      *analysis_, trace, machine.handler_entry(activation.reason), hlt_addr,
      reached_vm_entry ? &machine.cpu().regs() : nullptr);
  if (metrics_.cfi_checks != nullptr) {
    metrics_.cfi_checks->inc();
    if (r.kind == analysis::CfiResult::Kind::DerivedRange) {
      metrics_.cfi_derived_fires->inc();
    } else if (!r.ok()) {
      metrics_.cfi_edge_misses->inc();
    }
  }
  if (r.ok()) return;
  if (r.kind == analysis::CfiResult::Kind::DerivedRange) {
    registry_.record_fire(r.derived_id);
  }
  obs.detected = true;
  obs.technique = Technique::ControlFlow;
  obs.detection_step = r.kind == analysis::CfiResult::Kind::DerivedRange
                           ? obs.run.steps
                           : r.step;
}

void Xentry::check_timing_envelope(hv::Machine& machine,
                                   const hv::Activation& activation,
                                   Observation& obs) {
  // Only meaningful on runs that reached VM entry: the counters then
  // cover exactly one handler activation, the quantity the static
  // envelope bounds.  Entries without a finite envelope (statically
  // unbounded handlers) are skipped, never flagged.
  const analysis::TimingCheckResult r = analysis::check_timing(
      analysis_->timing, machine.handler_entry(activation.reason),
      obs.run.counters);
  if (!r.checked) return;
  if (metrics_.timing_checks != nullptr) {
    metrics_.timing_checks->inc();
    if (r.cycle_miss) metrics_.timing_cycle_misses->inc();
    if (r.counter_miss) metrics_.timing_counter_misses->inc();
  }
  if (r.ok() || obs.detected) return;
  obs.detected = true;
  obs.technique = Technique::Timing;
  obs.detection_step = obs.run.steps;
}

void Xentry::record_detection_metrics(const Observation& obs) {
  if (metrics_.observations == nullptr || !obs.detected) return;
  obs::Counter* c = metrics_.detections[static_cast<int>(obs.technique)];
  if (c != nullptr) c->inc();
  // Activation-to-detection latency, the paper's Fig. 9/10 quantity.
  // Only meaningful when the fault bookkeeping saw an activation.
  if (obs.run.activated && obs.detection_step >= obs.run.activation_step) {
    metrics_.detection_latency->observe(obs.detection_step -
                                        obs.run.activation_step);
  }
}

}  // namespace xentry
