#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdlib>
#include <utility>

namespace xentry::obs {

const JsonValue* JsonValue::get(std::string_view key) const {
  if (!is_object()) return nullptr;
  const auto it = object_.find(std::string(key));
  return it == object_.end() ? nullptr : &it->second;
}

std::int64_t JsonValue::get_int(std::string_view key,
                                std::int64_t fallback) const {
  const JsonValue* v = get(key);
  return v == nullptr ? fallback : v->as_int(fallback);
}

std::uint64_t JsonValue::get_uint(std::string_view key,
                                  std::uint64_t fallback) const {
  const JsonValue* v = get(key);
  return v == nullptr ? fallback : v->as_uint(fallback);
}

double JsonValue::get_double(std::string_view key, double fallback) const {
  const JsonValue* v = get(key);
  return v == nullptr ? fallback : v->as_double(fallback);
}

bool JsonValue::get_bool(std::string_view key, bool fallback) const {
  const JsonValue* v = get(key);
  return v == nullptr ? fallback : v->as_bool(fallback);
}

const std::string& JsonValue::get_string(std::string_view key) const {
  static const std::string empty;
  const JsonValue* v = get(key);
  return v == nullptr ? empty : v->as_string();
}

JsonValue JsonValue::null() { return JsonValue{}; }

JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.kind_ = Kind::Bool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::number(std::int64_t i) {
  JsonValue v;
  v.kind_ = Kind::Number;
  v.int_ = i;
  v.uint_ = static_cast<std::uint64_t>(i);
  v.double_ = static_cast<double>(i);
  return v;
}

JsonValue JsonValue::number_u(std::uint64_t u) {
  JsonValue v;
  v.kind_ = Kind::Number;
  v.int_ = static_cast<std::int64_t>(u);
  v.uint_ = u;
  v.double_ = static_cast<double>(u);
  return v;
}

JsonValue JsonValue::number_d(double d) {
  JsonValue v;
  v.kind_ = Kind::Number;
  v.int_ = static_cast<std::int64_t>(d);
  v.uint_ = d < 0 ? 0 : static_cast<std::uint64_t>(d);
  v.double_ = d;
  return v;
}

JsonValue JsonValue::string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::String;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::array(std::vector<JsonValue> a) {
  JsonValue v;
  v.kind_ = Kind::Array;
  v.array_ = std::move(a);
  return v;
}

JsonValue JsonValue::object(std::map<std::string, JsonValue> o) {
  JsonValue v;
  v.kind_ = Kind::Object;
  v.object_ = std::move(o);
  return v;
}

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  /// Nesting guard: the journal/snapshot formats nest a handful of
  /// levels; anything deeper is corrupt input, not a use case.
  int depth = 0;
  static constexpr int kMaxDepth = 64;

  bool eof() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }

  void skip_ws() {
    while (!eof()) {
      const char c = text[pos];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos;
      } else {
        break;
      }
    }
  }

  bool consume(char c) {
    if (eof() || text[pos] != c) return false;
    ++pos;
    return true;
  }

  bool consume_literal(std::string_view lit) {
    if (text.substr(pos, lit.size()) != lit) return false;
    pos += lit.size();
    return true;
  }

  std::optional<JsonValue> value() {
    if (++depth > kMaxDepth) return std::nullopt;
    skip_ws();
    if (eof()) return std::nullopt;
    std::optional<JsonValue> out;
    switch (peek()) {
      case '{': out = object(); break;
      case '[': out = array(); break;
      case '"': out = string(); break;
      case 't':
        out = consume_literal("true") ? std::optional(JsonValue::boolean(true))
                                      : std::nullopt;
        break;
      case 'f':
        out = consume_literal("false")
                  ? std::optional(JsonValue::boolean(false))
                  : std::nullopt;
        break;
      case 'n':
        out = consume_literal("null") ? std::optional(JsonValue::null())
                                      : std::nullopt;
        break;
      default: out = number(); break;
    }
    --depth;
    return out;
  }

  std::optional<JsonValue> object() {
    if (!consume('{')) return std::nullopt;
    std::map<std::string, JsonValue> members;
    skip_ws();
    if (consume('}')) return JsonValue::object(std::move(members));
    while (true) {
      skip_ws();
      std::optional<JsonValue> key = string();
      if (!key.has_value()) return std::nullopt;
      skip_ws();
      if (!consume(':')) return std::nullopt;
      std::optional<JsonValue> val = value();
      if (!val.has_value()) return std::nullopt;
      members.insert_or_assign(key->as_string(), std::move(*val));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return JsonValue::object(std::move(members));
      return std::nullopt;
    }
  }

  std::optional<JsonValue> array() {
    if (!consume('[')) return std::nullopt;
    std::vector<JsonValue> items;
    skip_ws();
    if (consume(']')) return JsonValue::array(std::move(items));
    while (true) {
      std::optional<JsonValue> val = value();
      if (!val.has_value()) return std::nullopt;
      items.push_back(std::move(*val));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return JsonValue::array(std::move(items));
      return std::nullopt;
    }
  }

  std::optional<JsonValue> string() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (true) {
      if (eof()) return std::nullopt;
      const char c = text[pos++];
      if (c == '"') return JsonValue::string(std::move(out));
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (eof()) return std::nullopt;
      const char e = text[pos++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos + 4 > text.size()) return std::nullopt;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return std::nullopt;
            }
          }
          // Our writers only escape control characters; anything else
          // decodes to a placeholder rather than full UTF-16 handling.
          out.push_back(code < 0x80 ? static_cast<char>(code) : '?');
          break;
        }
        default: return std::nullopt;
      }
    }
  }

  std::optional<JsonValue> number() {
    const std::size_t start = pos;
    if (!eof() && peek() == '-') ++pos;
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos;
    bool is_integer = true;
    if (!eof() && peek() == '.') {
      is_integer = false;
      ++pos;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      is_integer = false;
      ++pos;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos;
    }
    const std::string_view token = text.substr(start, pos - start);
    if (token.empty() || token == "-") return std::nullopt;
    if (is_integer) {
      // Unsigned first: 64-bit digests and offsets exceed int64 range.
      if (token[0] != '-') {
        std::uint64_t u = 0;
        const auto [p, ec] =
            std::from_chars(token.data(), token.data() + token.size(), u);
        if (ec == std::errc{} && p == token.data() + token.size()) {
          return JsonValue::number_u(u);
        }
      } else {
        std::int64_t i = 0;
        const auto [p, ec] =
            std::from_chars(token.data(), token.data() + token.size(), i);
        if (ec == std::errc{} && p == token.data() + token.size()) {
          return JsonValue::number(i);
        }
      }
    }
    // Fall through to double for fractions, exponents, and overflow.
    const std::string copy(token);  // strtod needs a terminator
    char* end = nullptr;
    const double d = std::strtod(copy.c_str(), &end);
    if (end != copy.c_str() + copy.size()) return std::nullopt;
    return JsonValue::number_d(d);
  }
};

}  // namespace

std::optional<JsonValue> parse_json_prefix(std::string_view text,
                                           std::size_t& pos) {
  Parser p{text, pos};
  std::optional<JsonValue> v = p.value();
  if (v.has_value()) pos = p.pos;
  return v;
}

std::optional<JsonValue> parse_json(std::string_view text) {
  Parser p{text, 0};
  std::optional<JsonValue> v = p.value();
  if (!v.has_value()) return std::nullopt;
  p.skip_ws();
  if (!p.eof()) return std::nullopt;  // trailing garbage
  return v;
}

}  // namespace xentry::obs
