file(REMOVE_RECURSE
  "CMakeFiles/test_ml.dir/ml/dataset_test.cpp.o"
  "CMakeFiles/test_ml.dir/ml/dataset_test.cpp.o.d"
  "CMakeFiles/test_ml.dir/ml/decision_tree_test.cpp.o"
  "CMakeFiles/test_ml.dir/ml/decision_tree_test.cpp.o.d"
  "CMakeFiles/test_ml.dir/ml/entropy_test.cpp.o"
  "CMakeFiles/test_ml.dir/ml/entropy_test.cpp.o.d"
  "CMakeFiles/test_ml.dir/ml/forest_test.cpp.o"
  "CMakeFiles/test_ml.dir/ml/forest_test.cpp.o.d"
  "CMakeFiles/test_ml.dir/ml/metrics_test.cpp.o"
  "CMakeFiles/test_ml.dir/ml/metrics_test.cpp.o.d"
  "CMakeFiles/test_ml.dir/ml/pruning_test.cpp.o"
  "CMakeFiles/test_ml.dir/ml/pruning_test.cpp.o.d"
  "CMakeFiles/test_ml.dir/ml/rules_test.cpp.o"
  "CMakeFiles/test_ml.dir/ml/rules_test.cpp.o.d"
  "test_ml"
  "test_ml.pdb"
  "test_ml[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
