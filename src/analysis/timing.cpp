#include "analysis/timing.hpp"

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <map>
#include <vector>

#include "analysis/dataflow.hpp"
#include "sim/isa.hpp"

namespace xentry::analysis {

namespace {

using sim::Addr;
using sim::Instruction;
using sim::Opcode;
using sim::Program;
using sim::Reg;

/// Iteration cap: a loop whose inferred bound exceeds this is treated as
/// unbounded (the envelope would be too loose to ever fire anyway).
constexpr std::int64_t kMaxTrips = 1 << 16;

/// Saturation sentinel for cost arithmetic.  Any channel that saturates
/// is reported non-finite and the envelope is withheld — saturation can
/// only ever widen toward "no claim", never toward an unsound bound.
constexpr std::int64_t kCostInf = std::int64_t{1} << 56;

/// Lattice ascents per (node, register) before the local interval
/// analysis widens that register.  Counted per register — a loop counter's
/// interval strictly grows at most bound+2 times no matter how many paths
/// interleave, so per-register counting keeps diamonds inside a loop from
/// double-counting ascents and widening the counter before it converges.
/// The threshold sits above the largest legitimate climb (the andi-0x7f
/// batch loops count up to 127).
constexpr int kWidenThreshold = 160;

constexpr unsigned kGprs = static_cast<unsigned>(sim::kNumGprs);

unsigned gpr(Reg r) { return static_cast<unsigned>(r); }
bool tracked(Reg r) { return gpr(r) < kGprs; }

std::int64_t sat_add(std::int64_t a, std::int64_t b) {
  std::int64_t r = 0;
  if (__builtin_add_overflow(a, b, &r) || r >= kCostInf) return kCostInf;
  return r;
}

std::int64_t sat_mul(std::int64_t a, std::int64_t b) {
  std::int64_t r = 0;
  if (__builtin_mul_overflow(a, b, &r) || r >= kCostInf) return kCostInf;
  return r;
}

/// One value per clock; the unit of all cost propagation.
struct CostVec {
  std::int64_t v[kNumClocks] = {};

  static CostVec zero() { return {}; }
  static CostVec inf() {
    CostVec c;
    for (std::int64_t& x : c.v) x = kCostInf;
    return c;
  }
  bool is_inf() const {
    for (std::int64_t x : v) {
      if (x >= kCostInf) return true;
    }
    return false;
  }
};

CostVec vec_add(const CostVec& a, const CostVec& b) {
  CostVec r;
  for (int i = 0; i < kNumClocks; ++i) r.v[i] = sat_add(a.v[i], b.v[i]);
  return r;
}

CostVec vec_scale(const CostVec& a, std::int64_t n) {
  CostVec r;
  for (int i = 0; i < kNumClocks; ++i) r.v[i] = sat_mul(a.v[i], n);
  return r;
}

CostVec vec_max(const CostVec& a, const CostVec& b) {
  CostVec r;
  for (int i = 0; i < kNumClocks; ++i) r.v[i] = std::max(a.v[i], b.v[i]);
  return r;
}

CostVec vec_min(const CostVec& a, const CostVec& b) {
  CostVec r;
  for (int i = 0; i < kNumClocks; ++i) r.v[i] = std::min(a.v[i], b.v[i]);
  return r;
}

bool vec_less(const CostVec& a, const CostVec& b) {
  for (int i = 0; i < kNumClocks; ++i) {
    if (a.v[i] < b.v[i]) return true;
  }
  return false;
}

CostVec cost_of_insn(const TimingCostModel& model, const Instruction& insn) {
  CostVec c;
  if (insn.op == Opcode::Hlt) return c;  // the gate does not retire
  c.v[kClockCycles] = model.cost_of(insn.op);
  c.v[kClockInsts] = 1;
  c.v[kClockBranches] = sim::is_branch(insn.op) ? 1 : 0;
  c.v[kClockLoads] = sim::is_mem_load(insn.op) ? 1 : 0;
  c.v[kClockStores] = sim::is_mem_store(insn.op) ? 1 : 0;
  return c;
}

/// [min, max] cost range of one exit channel of a function summary.
struct Channel {
  bool reachable = false;
  CostVec lo = CostVec::inf();
  CostVec hi = CostVec::zero();
};

void channel_join(Channel& c, const CostVec& lo, const CostVec& hi) {
  c.lo = c.reachable ? vec_min(c.lo, lo) : lo;
  c.hi = c.reachable ? vec_max(c.hi, hi) : hi;
  c.reachable = true;
}

struct Summary {
  bool valid = false;
  Channel ret;       ///< entry -> Ret (inclusive of the Ret itself)
  Channel gate;      ///< entry -> Hlt
  std::uint32_t clobber = 0;  ///< regs possibly written, callees included
};

// ---------------------------------------------------------------------------
// Branch-edge interval refinement.  A superset of the global dataflow
// pass's refinement (adds CmpRR), kept local so the derived assertions and
// campaign digests of the existing pass are untouched.
// ---------------------------------------------------------------------------

Interval trim_value(Interval s, std::int64_t v) {
  if (s.lo == v && s.hi == v) return {1, 0};  // empty
  if (s.lo == v) ++s.lo;
  else if (s.hi == v) --s.hi;
  return s;
}

void clamp_hi(Interval& s, std::int64_t v) { s.hi = std::min(s.hi, v); }
void clamp_lo(Interval& s, std::int64_t v) { s.lo = std::max(s.lo, v); }

void refine_cmp_ri(Opcode jcc, bool taken, std::int64_t k, Interval& s) {
  switch (jcc) {
    case Opcode::Je:
      s = taken ? interval_meet(s, Interval::exact(k)) : trim_value(s, k);
      break;
    case Opcode::Jne:
      s = taken ? trim_value(s, k) : interval_meet(s, Interval::exact(k));
      break;
    case Opcode::Jl:
      if (taken) { if (k != Interval::kMin) clamp_hi(s, k - 1); }
      else clamp_lo(s, k);
      break;
    case Opcode::Jle:
      if (taken) clamp_hi(s, k);
      else if (k != Interval::kMax) clamp_lo(s, k + 1);
      break;
    case Opcode::Jg:
      if (taken) { if (k != Interval::kMax) clamp_lo(s, k + 1); }
      else clamp_hi(s, k);
      break;
    case Opcode::Jge:
      if (taken) clamp_lo(s, k);
      else if (k != Interval::kMin) clamp_hi(s, k - 1);
      break;
    case Opcode::Jb:  // unsigned <
      if (k >= 0) {
        if (taken) s = interval_meet(s, {0, k - 1});
        else if (s.lo >= 0) clamp_lo(s, k);
      }
      break;
    case Opcode::Jae:  // unsigned >=
      if (k >= 0) {
        if (taken) { if (s.lo >= 0) clamp_lo(s, k); }
        else s = interval_meet(s, {0, k - 1});
      }
      break;
    default:
      break;
  }
}

/// Signed two-register refinement: narrows `a` (left operand) against the
/// pre-branch interval of the right operand, and vice versa.
void refine_cmp_rr(Opcode jcc, bool taken, Interval& a, Interval& b) {
  const Interval a0 = a, b0 = b;
  // Normalize to one of {<, <=, >, >=, ==} on (a, b).
  enum class Rel : std::uint8_t { Lt, Le, Gt, Ge, Eq, None };
  Rel rel = Rel::None;
  switch (jcc) {
    case Opcode::Je: rel = taken ? Rel::Eq : Rel::None; break;
    case Opcode::Jne: rel = taken ? Rel::None : Rel::Eq; break;
    case Opcode::Jl: rel = taken ? Rel::Lt : Rel::Ge; break;
    case Opcode::Jle: rel = taken ? Rel::Le : Rel::Gt; break;
    case Opcode::Jg: rel = taken ? Rel::Gt : Rel::Le; break;
    case Opcode::Jge: rel = taken ? Rel::Ge : Rel::Lt; break;
    case Opcode::Jb:  // unsigned: only meaningful when both nonnegative
      if (a0.lo >= 0 && b0.lo >= 0) rel = taken ? Rel::Lt : Rel::Ge;
      else if (taken && b0.lo >= 0) {
        // a <u b with b in [0, hi]: a's unsigned value is below 2^63, so
        // a is nonnegative as signed and bounded by b-1.
        a = interval_meet(a0, {0, b0.hi - 1});
        return;
      }
      break;
    case Opcode::Jae:
      if (a0.lo >= 0 && b0.lo >= 0) rel = taken ? Rel::Ge : Rel::Lt;
      else if (!taken && b0.lo >= 0) {
        a = interval_meet(a0, {0, b0.hi - 1});
        return;
      }
      break;
    default:
      break;
  }
  switch (rel) {
    case Rel::Lt:
      if (b0.hi != Interval::kMin) clamp_hi(a, b0.hi - 1);
      if (a0.lo != Interval::kMax) clamp_lo(b, a0.lo + 1);
      break;
    case Rel::Le:
      clamp_hi(a, b0.hi);
      clamp_lo(b, a0.lo);
      break;
    case Rel::Gt:
      if (b0.lo != Interval::kMax) clamp_lo(a, b0.lo + 1);
      if (a0.hi != Interval::kMin) clamp_hi(b, a0.hi - 1);
      break;
    case Rel::Ge:
      clamp_lo(a, b0.lo);
      clamp_hi(b, a0.hi);
      break;
    case Rel::Eq: {
      const Interval m = interval_meet(a0, b0);
      a = m;
      b = m;
      break;
    }
    case Rel::None:
      break;
  }
}

/// Refines `st` along the edge from block `b` to the block starting at
/// `succ_first`, when `b` ends with a guard + conditional branch.
void refine_edge(const Program& program, const BasicBlock& b,
                 Addr succ_first, RegState& st) {
  const Instruction& jcc = program.at(b.last);
  if (!sim::is_cond_branch(jcc.op)) return;
  if (b.last == b.first) return;  // guard lives in another block
  const Instruction& guard = program.at(b.last - 1);
  const auto target = static_cast<Addr>(jcc.imm);
  const Addr fallthrough = b.last + 1;
  if (target == fallthrough) return;
  bool taken = false;
  if (succ_first == target) taken = true;
  else if (succ_first == fallthrough) taken = false;
  else return;

  if (guard.op == Opcode::CmpRI && tracked(guard.r1)) {
    refine_cmp_ri(jcc.op, taken, guard.imm, st[gpr(guard.r1)]);
  } else if (guard.op == Opcode::CmpRR && tracked(guard.r1) &&
             tracked(guard.r2) && guard.r1 != guard.r2) {
    refine_cmp_rr(jcc.op, taken, st[gpr(guard.r1)], st[gpr(guard.r2)]);
  } else if (guard.op == Opcode::TestRR && guard.r1 == guard.r2 &&
             tracked(guard.r1)) {
    Interval& s = st[gpr(guard.r1)];
    if (jcc.op == Opcode::Je) {
      s = taken ? interval_meet(s, Interval::exact(0)) : trim_value(s, 0);
    } else if (jcc.op == Opcode::Jne) {
      s = taken ? trim_value(s, 0) : interval_meet(s, Interval::exact(0));
    }
  } else if (guard.op == Opcode::TestRI && tracked(guard.r1) &&
             guard.imm != 0 && (guard.imm & (guard.imm - 1)) == 0) {
    // test r, single-bit: the jne edge proves the register nonzero.
    Interval& s = st[gpr(guard.r1)];
    if ((jcc.op == Opcode::Jne && taken) || (jcc.op == Opcode::Je && !taken)) {
      s = trim_value(s, 0);
    }
  }
}

// ---------------------------------------------------------------------------
// Function structure
// ---------------------------------------------------------------------------

struct LocalEdge {
  std::uint32_t to = 0;               ///< local node index
  std::vector<Addr> call_targets;     ///< non-empty: call-return edge
  bool back = false;                  ///< dominator back edge (to a header)
  // Resolved per-edge cost contribution (callee Return range); zero for
  // plain edges.  Filled during summarization.
  CostVec lo = CostVec::zero();
  CostVec hi = CostVec::zero();
  std::uint32_t kill = 0;             ///< regs clobbered crossing this edge
};

struct ExitSite {
  std::uint32_t node = 0;
  bool has_tail = false;   ///< composes the channels of `tail_target`
  Addr tail_target = 0;
  bool to_gate = false;    ///< own Hlt (valid when !has_tail)
  bool is_ret = false;     ///< own Ret (valid when !has_tail)
  // Extra cost beyond the node distance (callee Gate range for calls into
  // never-returning functions; tail-target channel ranges).
  CostVec extra_lo = CostVec::zero();
  CostVec extra_hi = CostVec::zero();
  bool gate_channel = false;  ///< resolved channel this site feeds
};

struct LocalFn {
  Addr entry = 0;
  Addr end = 0;  ///< exclusive
  std::vector<std::uint32_t> blocks;       ///< global block ids; [0] = entry
  std::map<std::uint32_t, std::uint32_t> local_of;
  std::vector<std::vector<LocalEdge>> succs;
  std::vector<CostVec> block_cost;
  std::vector<ExitSite> exits;             ///< unresolved exit shapes
  std::vector<Addr> callees;               ///< for summarization order
  bool structure_ok = true;
  Summary summary;
};

/// Whole-program analysis state.
class TimingAnalyzer {
 public:
  TimingAnalyzer(const Program& program, const ControlFlowGraph& cfg,
                 const TimingCostModel& model)
      : program_(program), cfg_(cfg), model_(model) {}

  TimingEnvelopes run() {
    TimingEnvelopes out;
    out.model = model_;
    collect_functions();
    for (auto& [entry, fn] : fns_) build_structure(fn);
    for (auto& [entry, fn] : fns_) summarize(entry);
    for (auto& [entry, fn] : fns_) {
      const Summary& s = fn.summary;
      if (!s.valid || !s.gate.reachable) continue;
      TimingEnvelope env;
      env.valid = !s.gate.hi.is_inf();
      if (!env.valid) continue;
      for (int c = 0; c < kNumClocks; ++c) {
        env.clocks[c] = {s.gate.lo.v[c], s.gate.hi.v[c]};
      }
      out.by_entry.emplace(entry, env);
    }
    return out;
  }

 private:
  const Program& program_;
  const ControlFlowGraph& cfg_;
  const TimingCostModel& model_;
  std::map<Addr, LocalFn> fns_;
  std::vector<Addr> fn_entries_;  ///< sorted
  enum class State : std::uint8_t { Fresh, InProgress, Done };
  std::map<Addr, State> state_;

  Addr fn_entry_of(Addr a) const {
    auto it = std::upper_bound(fn_entries_.begin(), fn_entries_.end(), a);
    if (it == fn_entries_.begin()) return 0;
    return *(it - 1);
  }

  void collect_functions() {
    for (const auto& [name, addr] : program_.symbols()) {
      fn_entries_.push_back(addr);
    }
    std::sort(fn_entries_.begin(), fn_entries_.end());
    fn_entries_.erase(std::unique(fn_entries_.begin(), fn_entries_.end()),
                      fn_entries_.end());
    if (fn_entries_.empty() && !cfg_.blocks.empty()) {
      fn_entries_.push_back(cfg_.blocks.front().first);
    }
    for (std::size_t i = 0; i < fn_entries_.size(); ++i) {
      LocalFn fn;
      fn.entry = fn_entries_[i];
      fn.end = i + 1 < fn_entries_.size()
                   ? fn_entries_[i + 1]
                   : static_cast<Addr>(cfg_.base + cfg_.code_size);
      fns_.emplace(fn.entry, std::move(fn));
      state_.emplace(fn_entries_[i], State::Fresh);
    }
    for (std::uint32_t bi = 0; bi < cfg_.blocks.size(); ++bi) {
      const Addr first = cfg_.blocks[bi].first;
      const Addr fe = fn_entry_of(first);
      auto it = fns_.find(fe);
      if (it != fns_.end() && first < it->second.end) {
        it->second.blocks.push_back(bi);
      }
    }
    // The entry block must exist and lead the list (blocks arrive sorted
    // by address, and the entry address is the region's first slot).
    for (auto& [entry, fn] : fns_) {
      for (std::uint32_t i = 0; i < fn.blocks.size(); ++i) {
        fn.local_of.emplace(fn.blocks[i], i);
      }
      if (fn.blocks.empty() || cfg_.blocks[fn.blocks[0]].first != entry) {
        fn.structure_ok = false;
      }
    }
  }

  /// Local node index of the block starting at `a`, or kNoBlock.
  std::uint32_t local_at(const LocalFn& fn, Addr a) const {
    const std::uint32_t bi = cfg_.block_at(a);
    if (bi == kNoBlock) return kNoBlock;
    auto it = fn.local_of.find(bi);
    if (it == fn.local_of.end() || cfg_.blocks[bi].first != a) return kNoBlock;
    return it->second;
  }

  void add_callee(LocalFn& fn, Addr target) {
    if (std::find(fn.callees.begin(), fn.callees.end(), target) ==
        fn.callees.end()) {
      fn.callees.push_back(target);
    }
  }

  void build_structure(LocalFn& fn) {
    if (!fn.structure_ok) return;
    const auto n = static_cast<std::uint32_t>(fn.blocks.size());
    fn.succs.assign(n, {});
    fn.block_cost.assign(n, CostVec::zero());
    for (std::uint32_t li = 0; li < n; ++li) {
      const BasicBlock& b = cfg_.blocks[fn.blocks[li]];
      for (Addr a = b.first; a <= b.last; ++a) {
        fn.block_cost[li] =
            vec_add(fn.block_cost[li], cost_of_insn(model_, program_.at(a)));
      }
      const Instruction& term = program_.at(b.last);
      const auto local_edge = [&](Addr target) {
        const std::uint32_t t = local_at(fn, target);
        if (t == kNoBlock) {
          // A branch into another function: legal only onto its entry
          // (a tail jump); anything else defeats the summary model.
          const Addr fe = fn_entry_of(target);
          if (target == fe && fns_.count(fe) != 0 && fe != fn.entry) {
            ExitSite e;
            e.node = li;
            e.has_tail = true;
            e.tail_target = fe;
            fn.exits.push_back(e);
            add_callee(fn, fe);
          } else {
            fn.structure_ok = false;
          }
          return;
        }
        fn.succs[li].push_back(LocalEdge{t, {}, false, {}, {}, 0});
      };
      switch (term.op) {
        case Opcode::Hlt: {
          ExitSite e;
          e.node = li;
          e.to_gate = true;
          fn.exits.push_back(e);
          break;
        }
        case Opcode::Ret: {
          ExitSite e;
          e.node = li;
          e.is_ret = true;
          fn.exits.push_back(e);
          break;
        }
        case Opcode::Jmp:
          local_edge(static_cast<Addr>(term.imm));
          break;
        case Opcode::Call: {
          const auto target = static_cast<Addr>(term.imm);
          if (fns_.count(target) == 0) {
            fn.structure_ok = false;
            break;
          }
          const std::uint32_t cont = local_at(fn, b.last + 1);
          if (cont == kNoBlock) {
            fn.structure_ok = false;
            break;
          }
          fn.succs[li].push_back(LocalEdge{cont, {target}, false, {}, {}, 0});
          add_callee(fn, target);
          break;
        }
        case Opcode::JmpR: {
          if (b.accept_any_succ) {
            fn.structure_ok = false;
            break;
          }
          // The manual indirect-call pattern: targets were resolved into
          // the CFG's successor set; control resumes at the materialized
          // return address, which is the next slot.
          std::vector<Addr> targets;
          for (std::uint32_t si : b.succs) {
            const Addr t = cfg_.blocks[si].first;
            if (fns_.count(t) == 0) {
              fn.structure_ok = false;
              break;
            }
            targets.push_back(t);
            add_callee(fn, t);
          }
          const std::uint32_t cont = local_at(fn, b.last + 1);
          if (!fn.structure_ok || targets.empty() || cont == kNoBlock) {
            fn.structure_ok = false;
            break;
          }
          fn.succs[li].push_back(
              LocalEdge{cont, std::move(targets), false, {}, {}, 0});
          break;
        }
        default: {
          if (sim::is_cond_branch(term.op)) {
            local_edge(static_cast<Addr>(term.imm));
            local_edge(b.last + 1);
          } else {
            // Plain fall-through into the next leader.
            if (b.falls_into_padding) {
              fn.structure_ok = false;
            } else {
              local_edge(b.last + 1);
            }
          }
          break;
        }
      }
      if (b.has_illegal_target) fn.structure_ok = false;
    }
  }

  void summarize(Addr entry) {
    auto st = state_.find(entry);
    if (st == state_.end() || st->second == State::Done) return;
    if (st->second == State::InProgress) {
      // Recursion: leave the summary invalid.
      return;
    }
    st->second = State::InProgress;
    LocalFn& fn = fns_.at(entry);
    for (Addr callee : fn.callees) summarize(callee);
    compute_summary(fn);
    st->second = State::Done;
  }

  // ---- per-function analysis ----------------------------------------------

  void compute_summary(LocalFn& fn) {
    fn.summary = Summary{};
    if (!fn.structure_ok) return;
    const auto n = static_cast<std::uint32_t>(fn.blocks.size());

    // Resolve call edges and exit sites against callee summaries.
    std::vector<ExitSite> exits;  // resolved, channel-tagged
    for (std::uint32_t li = 0; li < n; ++li) {
      for (LocalEdge& e : fn.succs[li]) {
        if (e.call_targets.empty()) continue;
        bool returns = false;
        CostVec lo = CostVec::inf(), hi = CostVec::zero();
        bool gate = false;
        CostVec glo = CostVec::inf(), ghi = CostVec::zero();
        for (Addr t : e.call_targets) {
          const Summary& cs = fns_.at(t).summary;
          if (!cs.valid) return;  // fn stays invalid
          e.kill |= cs.clobber;
          if (cs.ret.reachable) {
            returns = true;
            lo = vec_min(lo, cs.ret.lo);
            hi = vec_max(hi, cs.ret.hi);
          }
          if (cs.gate.reachable) {
            gate = true;
            glo = vec_min(glo, cs.gate.lo);
            ghi = vec_max(ghi, cs.gate.hi);
          }
        }
        if (gate) {
          ExitSite g;
          g.node = li;
          g.gate_channel = true;
          g.extra_lo = glo;
          g.extra_hi = ghi;
          exits.push_back(g);
        }
        if (!returns) {
          // The callee never returns: the continuation edge is dead.
          e.to = kNoBlock;
          continue;
        }
        e.lo = lo;
        e.hi = hi;
      }
      fn.succs[li].erase(
          std::remove_if(fn.succs[li].begin(), fn.succs[li].end(),
                         [](const LocalEdge& e) { return e.to == kNoBlock; }),
          fn.succs[li].end());
    }
    for (const ExitSite& e : fn.exits) {
      if (e.has_tail) {
        const Summary& ts = fns_.at(e.tail_target).summary;
        if (!ts.valid) return;
        if (ts.gate.reachable) {
          ExitSite g = e;
          g.gate_channel = true;
          g.extra_lo = ts.gate.lo;
          g.extra_hi = ts.gate.hi;
          exits.push_back(g);
        }
        if (ts.ret.reachable) {
          ExitSite r = e;
          r.gate_channel = false;
          r.extra_lo = ts.ret.lo;
          r.extra_hi = ts.ret.hi;
          exits.push_back(r);
        }
      } else {
        ExitSite r = e;
        r.gate_channel = e.to_gate;
        exits.push_back(r);
      }
    }

    // Reachability from the entry node.
    std::vector<bool> reach(n, false);
    {
      std::deque<std::uint32_t> work{0};
      reach[0] = true;
      while (!work.empty()) {
        const std::uint32_t u = work.front();
        work.pop_front();
        for (const LocalEdge& e : fn.succs[u]) {
          if (!reach[e.to]) {
            reach[e.to] = true;
            work.push_back(e.to);
          }
        }
      }
    }

    // Clobber set: everything written in reachable blocks + callees.
    std::uint32_t clobber = 0;
    for (std::uint32_t li = 0; li < n; ++li) {
      if (!reach[li]) continue;
      const BasicBlock& b = cfg_.blocks[fn.blocks[li]];
      for (Addr a = b.first; a <= b.last; ++a) {
        clobber |= sim::regs_written(program_.at(a));
      }
      for (const LocalEdge& e : fn.succs[li]) clobber |= e.kill;
    }

    // Local interval analysis (loop-bound substrate).
    std::vector<RegState> in_state(n);
    std::vector<bool> in_valid(n, false);
    run_local_intervals(fn, reach, in_state, in_valid);

    // Dominators + loops on the reachable local graph.
    std::vector<std::uint32_t> idom;
    if (!compute_local_dominators(fn, reach, idom)) return;
    std::vector<CostVec> supplement(n, CostVec::zero());
    if (!bound_loops(fn, reach, idom, in_state, in_valid, supplement)) return;

    // WCET: longest path on the reduced DAG with loop supplements.
    std::vector<std::uint32_t> topo;
    if (!topo_order_reduced(fn, reach, topo)) return;
    std::vector<CostVec> hi(n, CostVec::zero());
    std::vector<bool> hi_valid(n, false);
    for (std::uint32_t u : topo) {
      if (u == 0) {
        hi[0] = vec_add(fn.block_cost[0], supplement[0]);
        hi_valid[0] = true;
      }
      if (!hi_valid[u]) continue;
      for (const LocalEdge& e : fn.succs[u]) {
        if (e.back) continue;
        const CostVec cand = vec_add(
            vec_add(hi[u], e.hi),
            vec_add(fn.block_cost[e.to], supplement[e.to]));
        hi[e.to] = hi_valid[e.to] ? vec_max(hi[e.to], cand) : cand;
        hi_valid[e.to] = true;
      }
    }

    // BCET: component-wise shortest distances on the full graph.
    std::vector<CostVec> lo(n, CostVec::inf());
    std::vector<bool> lo_valid(n, false);
    {
      std::deque<std::uint32_t> work{0};
      std::vector<bool> queued(n, false);
      lo[0] = fn.block_cost[0];
      lo_valid[0] = true;
      queued[0] = true;
      while (!work.empty()) {
        const std::uint32_t u = work.front();
        work.pop_front();
        queued[u] = false;
        for (const LocalEdge& e : fn.succs[u]) {
          const CostVec cand =
              vec_add(vec_add(lo[u], e.lo), fn.block_cost[e.to]);
          if (!lo_valid[e.to] || vec_less(cand, lo[e.to])) {
            lo[e.to] = lo_valid[e.to] ? vec_min(lo[e.to], cand) : cand;
            lo_valid[e.to] = true;
            if (!queued[e.to]) {
              work.push_back(e.to);
              queued[e.to] = true;
            }
          }
        }
      }
    }

    Summary s;
    for (const ExitSite& e : exits) {
      if (!reach[e.node] || !hi_valid[e.node] || !lo_valid[e.node]) continue;
      const CostVec site_lo = vec_add(lo[e.node], e.extra_lo);
      const CostVec site_hi = vec_add(hi[e.node], e.extra_hi);
      channel_join(e.gate_channel ? s.gate : s.ret, site_lo, site_hi);
    }
    s.clobber = clobber;
    s.valid = true;
    fn.summary = s;
  }

  void run_local_intervals(const LocalFn& fn, const std::vector<bool>& reach,
                           std::vector<RegState>& in_state,
                           std::vector<bool>& in_valid) {
    const auto n = static_cast<std::uint32_t>(fn.blocks.size());
    std::vector<std::array<std::uint16_t, sim::kNumGprs>> ascents(n);
    for (auto& a : ascents) a.fill(0);
    std::deque<std::uint32_t> work{0};
    std::vector<bool> queued(n, false);
    in_state[0].fill(Interval::top());
    in_valid[0] = true;
    queued[0] = true;
    while (!work.empty()) {
      const std::uint32_t u = work.front();
      work.pop_front();
      queued[u] = false;
      if (!reach[u]) continue;
      const BasicBlock& b = cfg_.blocks[fn.blocks[u]];
      RegState out = in_state[u];
      for (Addr a = b.first; a <= b.last; ++a) {
        apply_instruction(program_.at(a), out);
      }
      for (const LocalEdge& e : fn.succs[u]) {
        RegState edge = out;
        if (!e.call_targets.empty()) {
          // Balanced callee: the return-address push/pop cancels; the
          // Call's own rsp decrement (already applied) is undone by the
          // callee's Ret.
          edge[gpr(Reg::rsp)] =
              interval_add(edge[gpr(Reg::rsp)], Interval::exact(1));
          for (unsigned r = 0; r < kGprs; ++r) {
            if (r == gpr(Reg::rsp)) continue;
            if ((e.kill & (1u << r)) != 0) edge[r] = Interval::top();
          }
        } else {
          refine_edge(program_, b, cfg_.blocks[fn.blocks[e.to]].first, edge);
        }
        bool infeasible = false;
        for (const Interval& v : edge) infeasible |= v.is_empty();
        if (infeasible) continue;
        RegState& tin = in_state[e.to];
        bool changed = false;
        if (!in_valid[e.to]) {
          tin = edge;
          in_valid[e.to] = true;
          changed = true;
        } else {
          for (unsigned r = 0; r < kGprs; ++r) {
            Interval j = interval_join(tin[r], edge[r]);
            if (j == tin[r]) continue;
            if (++ascents[e.to][r] >= kWidenThreshold) {
              if (j.lo < tin[r].lo) j.lo = Interval::kMin;
              if (j.hi > tin[r].hi) j.hi = Interval::kMax;
            }
            tin[r] = j;
            changed = true;
          }
        }
        if (changed && !queued[e.to]) {
          work.push_back(e.to);
          queued[e.to] = true;
        }
      }
    }
  }

  /// Iterative dominators over the reachable local graph (root = node 0).
  /// Returns false when the entry is missing.
  bool compute_local_dominators(const LocalFn& fn,
                                const std::vector<bool>& reach,
                                std::vector<std::uint32_t>& idom) {
    const auto n = static_cast<std::uint32_t>(fn.blocks.size());
    idom.assign(n, kNoBlock);
    std::vector<std::vector<std::uint32_t>> preds(n);
    for (std::uint32_t u = 0; u < n; ++u) {
      if (!reach[u]) continue;
      for (const LocalEdge& e : fn.succs[u]) preds[e.to].push_back(u);
    }
    // Reverse postorder.
    std::vector<std::uint32_t> po_num(n, kNoBlock);
    std::vector<std::uint32_t> rpo;
    {
      std::vector<std::uint8_t> seen(n, 0);
      std::vector<std::pair<std::uint32_t, std::size_t>> stack{{0u, 0u}};
      seen[0] = 1;
      std::vector<std::uint32_t> postorder;
      while (!stack.empty()) {
        auto& [u, i] = stack.back();
        if (i < fn.succs[u].size()) {
          const std::uint32_t s = fn.succs[u][i++].to;
          if (seen[s] == 0) {
            seen[s] = 1;
            stack.emplace_back(s, 0);
          }
        } else {
          postorder.push_back(u);
          stack.pop_back();
        }
      }
      for (std::uint32_t i = 0; i < postorder.size(); ++i) {
        po_num[postorder[i]] = i;
      }
      rpo.assign(postorder.rbegin(), postorder.rend());
    }
    idom[0] = 0;
    auto intersect = [&](std::uint32_t a, std::uint32_t b) {
      while (a != b) {
        while (po_num[a] < po_num[b]) a = idom[a];
        while (po_num[b] < po_num[a]) b = idom[b];
      }
      return a;
    };
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::uint32_t u : rpo) {
        if (u == 0) continue;
        std::uint32_t nd = kNoBlock;
        for (std::uint32_t p : preds[u]) {
          if (po_num[p] == kNoBlock || idom[p] == kNoBlock) continue;
          nd = nd == kNoBlock ? p : intersect(nd, p);
        }
        if (nd != kNoBlock && idom[u] != nd) {
          idom[u] = nd;
          changed = true;
        }
      }
    }
    return true;
  }

  bool dominates(const std::vector<std::uint32_t>& idom, std::uint32_t a,
                 std::uint32_t b) const {
    // Walks b's dominator chain; the local graphs are small.
    while (true) {
      if (a == b) return true;
      if (b == 0 || idom[b] == kNoBlock || idom[b] == b) return a == b;
      b = idom[b];
    }
  }

  /// Finds natural loops, infers trip bounds, marks back edges and fills
  /// per-header supplements.  False when any reachable loop is unbounded
  /// or the graph is irreducible.
  bool bound_loops(LocalFn& fn, const std::vector<bool>& reach,
                   const std::vector<std::uint32_t>& idom,
                   const std::vector<RegState>& in_state,
                   const std::vector<bool>& in_valid,
                   std::vector<CostVec>& supplement) {
    const auto n = static_cast<std::uint32_t>(fn.blocks.size());
    struct Loop {
      std::uint32_t header = 0;
      std::vector<std::uint32_t> latches;
      std::vector<bool> body;  ///< membership
      std::size_t size = 0;
    };
    std::map<std::uint32_t, Loop> loops;  // header -> loop
    for (std::uint32_t u = 0; u < n; ++u) {
      if (!reach[u]) continue;
      for (LocalEdge& e : fn.succs[u]) {
        if (!dominates(idom, e.to, u)) continue;
        e.back = true;
        Loop& L = loops[e.to];
        L.header = e.to;
        L.latches.push_back(u);
        if (L.body.empty()) L.body.assign(n, false);
        // Natural loop: everything that reaches the latch without going
        // through the header.
        L.body[e.to] = true;
        std::deque<std::uint32_t> work;
        if (!L.body[u]) {
          L.body[u] = true;
          work.push_back(u);
        }
        std::vector<std::vector<std::uint32_t>> preds(n);
        for (std::uint32_t x = 0; x < n; ++x) {
          if (!reach[x]) continue;
          for (const LocalEdge& pe : fn.succs[x]) preds[pe.to].push_back(x);
        }
        while (!work.empty()) {
          const std::uint32_t y = work.front();
          work.pop_front();
          for (std::uint32_t p : preds[y]) {
            if (!L.body[p]) {
              L.body[p] = true;
              work.push_back(p);
            }
          }
        }
      }
    }
    // Irreducible flow: a retreating edge that is not a back edge shows up
    // as a cycle in the reduced graph; topo_order_reduced catches it.
    for (auto& [h, L] : loops) {
      L.size = static_cast<std::size_t>(
          std::count(L.body.begin(), L.body.end(), true));
    }
    // Innermost first (smaller bodies are subsets of enclosing bodies).
    std::vector<Loop*> order;
    for (auto& [h, L] : loops) order.push_back(&L);
    std::sort(order.begin(), order.end(),
              [](const Loop* a, const Loop* b) { return a->size < b->size; });

    for (Loop* Lp : order) {
      const Loop& L = *Lp;
      const std::int64_t trips =
          infer_trip_bound(fn, L.header, L.body, L.latches, idom, in_state,
                           in_valid);
      if (trips < 0) return false;
      // Longest header->latch path inside the loop's reduced subgraph,
      // with inner-loop supplements already folded into node weights.
      std::vector<std::uint32_t> topo;
      if (!topo_order_subgraph(fn, L.body, L.header, topo)) return false;
      std::vector<CostVec> dist(n, CostVec::zero());
      std::vector<bool> valid(n, false);
      dist[L.header] =
          vec_add(fn.block_cost[L.header], supplement[L.header]);
      valid[L.header] = true;
      for (std::uint32_t u : topo) {
        if (!valid[u]) continue;
        for (const LocalEdge& e : fn.succs[u]) {
          if (e.back || !L.body[e.to]) continue;
          const CostVec cand = vec_add(
              vec_add(dist[u], e.hi),
              vec_add(fn.block_cost[e.to], supplement[e.to]));
          dist[e.to] = valid[e.to] ? vec_max(dist[e.to], cand) : cand;
          valid[e.to] = true;
        }
      }
      CostVec one_iter = CostVec::zero();
      bool any_latch = false;
      for (std::uint32_t latch : L.latches) {
        if (!valid[latch]) continue;
        any_latch = true;
        one_iter = vec_max(one_iter, dist[latch]);
      }
      if (!any_latch) return false;
      supplement[L.header] =
          vec_add(supplement[L.header], vec_scale(one_iter, trips));
    }
    return true;
  }

  /// Sound trip-count bound for one natural loop, or -1 when none can be
  /// proven.  Rule: a register with exactly one writing instruction in
  /// the loop, stepping by a nonzero constant, whose block dominates
  /// every latch, and whose interval at the loop-body entry (the refined
  /// header->body edges) is finite, bounds the number of body entries by
  /// interval width / |step| + 1 — the values at successive entries are
  /// distinct, monotone, and confined to the interval.
  std::int64_t infer_trip_bound(const LocalFn& fn, std::uint32_t header,
                                const std::vector<bool>& body,
                                const std::vector<std::uint32_t>& latches,
                                const std::vector<std::uint32_t>& idom,
                                const std::vector<RegState>& in_state,
                                const std::vector<bool>& in_valid) {
    const auto n = static_cast<std::uint32_t>(fn.blocks.size());
    if (!in_valid[header]) return -1;
    // Per-register: writer count, step, writer block; call-edge kills
    // count as unmodelled writers.
    struct Cand {
      int writers = 0;
      std::int64_t step = 0;
      std::uint32_t block = 0;
    };
    Cand cands[kGprs];
    for (std::uint32_t u = 0; u < n; ++u) {
      if (!body[u]) continue;
      const BasicBlock& b = cfg_.blocks[fn.blocks[u]];
      for (Addr a = b.first; a <= b.last; ++a) {
        const Instruction& insn = program_.at(a);
        const std::uint32_t w = sim::regs_written(insn);
        for (unsigned r = 0; r < kGprs; ++r) {
          if ((w & (1u << r)) == 0) continue;
          Cand& c = cands[r];
          ++c.writers;
          c.block = u;
          switch (insn.op) {
            case Opcode::Inc: c.step = 1; break;
            case Opcode::Dec: c.step = -1; break;
            case Opcode::AddRI: c.step = insn.imm; break;
            case Opcode::SubRI: c.step = -insn.imm; break;
            default: c.step = 0; break;
          }
          if (insn.r1 != static_cast<Reg>(r)) c.step = 0;  // implicit write
        }
      }
      for (const LocalEdge& e : fn.succs[u]) {
        if (e.call_targets.empty() || !body[e.to]) continue;
        for (unsigned r = 0; r < kGprs; ++r) {
          if ((e.kill & (1u << r)) != 0) cands[r].writers += 2;
        }
      }
    }
    // Refined intervals at the loop-body entry edges.
    RegState body_in{};
    bool body_in_valid = false;
    {
      const BasicBlock& hb = cfg_.blocks[fn.blocks[header]];
      RegState out = in_state[header];
      for (Addr a = hb.first; a <= hb.last; ++a) {
        apply_instruction(program_.at(a), out);
      }
      // Every loop cycle traverses exactly one header->body edge; for a
      // self-loop (header == latch) that edge is the back edge itself, so
      // back edges participate in the join.
      for (const LocalEdge& e : fn.succs[header]) {
        if (!body[e.to]) continue;
        RegState edge = out;
        if (e.call_targets.empty()) {
          refine_edge(program_, hb, cfg_.blocks[fn.blocks[e.to]].first, edge);
        } else {
          edge[gpr(Reg::rsp)] =
              interval_add(edge[gpr(Reg::rsp)], Interval::exact(1));
          for (unsigned r = 0; r < kGprs; ++r) {
            if (r != gpr(Reg::rsp) && (e.kill & (1u << r)) != 0) {
              edge[r] = Interval::top();
            }
          }
        }
        if (!body_in_valid) {
          body_in = edge;
          body_in_valid = true;
        } else {
          for (unsigned r = 0; r < kGprs; ++r) {
            body_in[r] = interval_join(body_in[r], edge[r]);
          }
        }
      }
    }
    if (!body_in_valid) {
      // The header never enters the body (degenerate); zero iterations.
      return 0;
    }
    std::int64_t best = -1;
    for (unsigned r = 0; r < kGprs; ++r) {
      if (r == gpr(Reg::rsp)) continue;
      const Cand& c = cands[r];
      if (c.writers != 1 || c.step == 0) continue;
      bool dom_all = true;
      for (std::uint32_t latch : latches) {
        if (!dominates(idom, c.block, latch)) dom_all = false;
      }
      if (!dom_all) continue;
      const Interval iv = body_in[r];
      if (iv.is_empty() || iv.lo == Interval::kMin ||
          iv.hi == Interval::kMax || iv.lo > iv.hi) {
        continue;
      }
      const std::int64_t step =
          c.step == Interval::kMin ? Interval::kMax : std::llabs(c.step);
      const std::int64_t width = iv.hi - iv.lo;  // both finite, no overflow
      const std::int64_t trips = width / step + 1;
      if (trips > kMaxTrips) continue;
      best = best < 0 ? trips : std::min(best, trips);
    }
    return best;
  }

  /// Topological order of the reduced (back edges removed) local graph.
  /// False when a cycle remains (irreducible flow).
  bool topo_order_reduced(const LocalFn& fn, const std::vector<bool>& reach,
                          std::vector<std::uint32_t>& topo) {
    const auto n = static_cast<std::uint32_t>(fn.blocks.size());
    std::vector<int> indeg(n, 0);
    for (std::uint32_t u = 0; u < n; ++u) {
      if (!reach[u]) continue;
      for (const LocalEdge& e : fn.succs[u]) {
        if (!e.back && reach[e.to]) ++indeg[e.to];
      }
    }
    std::deque<std::uint32_t> ready;
    std::size_t reachable = 0;
    for (std::uint32_t u = 0; u < n; ++u) {
      if (!reach[u]) continue;
      ++reachable;
      if (indeg[u] == 0) ready.push_back(u);
    }
    topo.clear();
    while (!ready.empty()) {
      const std::uint32_t u = ready.front();
      ready.pop_front();
      topo.push_back(u);
      for (const LocalEdge& e : fn.succs[u]) {
        if (e.back || !reach[e.to]) continue;
        if (--indeg[e.to] == 0) ready.push_back(e.to);
      }
    }
    return topo.size() == reachable;
  }

  /// Topological order within one loop body (back edges removed), rooted
  /// at the header.  False on a residual cycle (irreducible inner flow).
  bool topo_order_subgraph(const LocalFn& fn, const std::vector<bool>& body,
                           std::uint32_t header,
                           std::vector<std::uint32_t>& topo) {
    const auto n = static_cast<std::uint32_t>(fn.blocks.size());
    std::vector<int> indeg(n, 0);
    std::size_t members = 0;
    for (std::uint32_t u = 0; u < n; ++u) {
      if (!body[u]) continue;
      ++members;
      for (const LocalEdge& e : fn.succs[u]) {
        if (!e.back && body[e.to]) ++indeg[e.to];
      }
    }
    std::deque<std::uint32_t> ready;
    for (std::uint32_t u = 0; u < n; ++u) {
      if (body[u] && indeg[u] == 0) ready.push_back(u);
    }
    // The header must lead; other zero-indegree members are unreachable
    // from it inside the loop and harmless.
    topo.clear();
    while (!ready.empty()) {
      const std::uint32_t u = ready.front();
      ready.pop_front();
      topo.push_back(u);
      for (const LocalEdge& e : fn.succs[u]) {
        if (e.back || !body[e.to]) continue;
        if (--indeg[e.to] == 0) ready.push_back(e.to);
      }
    }
    (void)header;
    return topo.size() == members;
  }
};

}  // namespace

std::string_view clock_name(int clock) {
  switch (clock) {
    case kClockCycles: return "cycles";
    case kClockInsts: return "inst_retired";
    case kClockBranches: return "branches";
    case kClockLoads: return "loads";
    case kClockStores: return "stores";
    default: return "?";
  }
}

bool TimingEnvelope::contains(const TimingCostModel& model,
                              const sim::PerfSnapshot& c) const {
  if (!valid) return true;
  const std::int64_t observed[kNumClocks] = {
      model.cycles_from_counters(c),
      static_cast<std::int64_t>(c.inst_retired),
      static_cast<std::int64_t>(c.branches),
      static_cast<std::int64_t>(c.loads),
      static_cast<std::int64_t>(c.stores),
  };
  for (int i = 0; i < kNumClocks; ++i) {
    if (observed[i] < clocks[i].lo || observed[i] > clocks[i].hi) return false;
  }
  return true;
}

std::size_t TimingEnvelopes::valid_count() const {
  std::size_t n = 0;
  for (const auto& [addr, env] : by_entry) n += env.valid ? 1 : 0;
  return n;
}

TimingCheckResult check_timing(const TimingEnvelopes& envelopes,
                               sim::Addr entry, const sim::PerfSnapshot& c) {
  TimingCheckResult r;
  const TimingEnvelope* env = envelopes.at(entry);
  if (env == nullptr || !env->valid) return r;
  r.checked = true;
  const std::int64_t observed[kNumClocks] = {
      envelopes.model.cycles_from_counters(c),
      static_cast<std::int64_t>(c.inst_retired),
      static_cast<std::int64_t>(c.branches),
      static_cast<std::int64_t>(c.loads),
      static_cast<std::int64_t>(c.stores),
  };
  for (int i = 0; i < kNumClocks; ++i) {
    if (observed[i] < env->clocks[i].lo || observed[i] > env->clocks[i].hi) {
      if (r.first_bad_clock < 0) r.first_bad_clock = i;
      if (i == kClockCycles) r.cycle_miss = true;
      else r.counter_miss = true;
    }
  }
  return r;
}

TimingEnvelopes compute_timing_envelopes(const sim::Program& program,
                                         const ControlFlowGraph& cfg,
                                         const TimingCostModel& model) {
  TimingAnalyzer analyzer(program, cfg, model);
  return analyzer.run();
}

}  // namespace xentry::analysis
