#include "fault/campaign.hpp"

#include <memory>
#include <thread>

namespace xentry::fault {

wl::WorkloadProfile uniform_sweep_profile() {
  wl::WorkloadProfile p;
  for (const hv::ExitReason& r : hv::all_exit_reasons()) {
    p.mix.emplace_back(r, 1.0);
  }
  return p;
}

namespace {

/// One shard's work: its own machines, generator, and RNG.  The workload
/// profile is resolved once in run_campaign and shared read-only.
CampaignResult run_shard(const CampaignConfig& cfg,
                         const wl::WorkloadProfile& profile, int shard_index,
                         int num_shards) {
  const int base = cfg.injections / num_shards;
  const int extra = shard_index < cfg.injections % num_shards ? 1 : 0;
  const int quota = base + extra;

  CampaignResult result;
  if (quota == 0) return result;
  result.records.reserve(static_cast<std::size_t>(quota));

  hv::Machine golden(cfg.machine);
  hv::Machine faulty(cfg.machine);
  Xentry xentry(cfg.xentry);
  if (!cfg.model.empty()) xentry.set_model(cfg.model);
  InjectionExperiment experiment(golden, faulty, xentry, cfg.outcome);

  const std::uint64_t shard_seed =
      cfg.seed * 0x9e3779b97f4a7c15ull + static_cast<std::uint64_t>(shard_index);
  wl::WorkloadGenerator gen(golden, profile, shard_seed);
  std::mt19937_64 rng(shard_seed ^ 0xc2b2ae3d27d4eb4full);

  for (int i = 0; i < cfg.warmup_activations; ++i) {
    experiment.advance(gen.next());
  }

  std::bernoulli_distribution biased(cfg.activation_bias);
  InjectionExperiment::GoldenProbe probe;  // buffers reused every injection
  for (int i = 0; i < quota; ++i) {
    const hv::Activation act = gen.next();
    // The probe run doubles as the experiment's golden run: the golden
    // machine advances to its post-run state here and run_one only has to
    // execute the faulted machine.
    experiment.probe_golden_advance(act, probe);
    if (probe.steps == 0) {
      golden.restore(probe.pre);  // degenerate activation; rewind and skip
      continue;
    }
    const hv::Injection inj =
        biased(rng)
            ? InjectionExperiment::draw_activated_injection(
                  rng, probe.trace, golden.microvisor().program)
            : InjectionExperiment::draw_injection(rng, probe.steps);
    InjectionExperiment::Result r = experiment.run_one(act, inj, probe);
    if (cfg.collect_dataset) {
      result.dataset.add(r.golden_features.as_array(), ml::Label::Correct);
      if (r.record.activated && r.record.trap == sim::TrapKind::None &&
          r.record.injected) {
        // Reached VM entry: the transition detector's input space.
        result.dataset.add(r.record.features.as_array(),
                           r.record.trace_diverged ? ml::Label::Incorrect
                                                   : ml::Label::Correct);
      }
    }
    result.records.push_back(r.record);
    for (int g = 0; g < cfg.stream_gap; ++g) {
      experiment.advance(gen.next());
    }
  }
  return result;
}

}  // namespace

CampaignResult run_campaign(const CampaignConfig& cfg) {
  int shards = cfg.shards;
  if (shards <= 0) {
    shards = static_cast<int>(std::thread::hardware_concurrency());
    if (shards <= 0) shards = 4;
  }
  if (shards > cfg.injections && cfg.injections > 0) shards = cfg.injections;

  const wl::WorkloadProfile profile =
      cfg.workload.mix.empty() ? uniform_sweep_profile() : cfg.workload;

  std::vector<CampaignResult> partials(static_cast<std::size_t>(shards));
  {
    std::vector<std::jthread> threads;
    threads.reserve(static_cast<std::size_t>(shards));
    for (int s = 0; s < shards; ++s) {
      threads.emplace_back([&cfg, &profile, &partials, s, shards] {
        partials[static_cast<std::size_t>(s)] =
            run_shard(cfg, profile, s, shards);
      });
    }
  }  // jthreads join here

  // Move-merge: records splice via move iterators, datasets via one bulk
  // append per shard.  Order stays by shard index, so merged output is
  // deterministic for a fixed (seed, shards).
  CampaignResult merged;
  std::size_t total_records = 0, total_rows = 0;
  for (const CampaignResult& p : partials) {
    total_records += p.records.size();
    total_rows += p.dataset.size();
  }
  merged.records.reserve(total_records);
  merged.dataset.reserve(total_rows);
  for (CampaignResult& p : partials) {
    merged.records.insert(merged.records.end(),
                          std::make_move_iterator(p.records.begin()),
                          std::make_move_iterator(p.records.end()));
    merged.dataset.append(p.dataset);
  }
  return merged;
}

}  // namespace xentry::fault
