// Observability configuration.
//
// One Options struct gates every telemetry layer: the metrics registry
// (counters / gauges / log2 histograms), the phase/span trace recorder
// (Chrome trace-event JSON), and the per-machine SDC flight recorder.
// Everything defaults to OFF, and every collection site in the hot path
// reduces to a single well-predicted null-pointer or bool check when its
// layer is disabled — the overhead contract (<= 2% disabled, <= 10%
// fully enabled on the micro_campaign configuration) is enforced by
// `bench/obs_overhead`.
#pragma once

#include <cstddef>
#include <cstdint>

namespace xentry::obs {

struct Options {
  /// Per-shard MetricsRegistry collection (detections per technique,
  /// latency/handler-length histograms, snapshot/restore timings),
  /// merged deterministically at campaign end.
  bool metrics = false;
  /// Structured span tracing of campaign phases and per-VM-exit spans,
  /// exportable as Chrome trace-event JSON (Perfetto-loadable).
  bool tracing = false;
  /// Ring buffer of the last N VM exits per machine, dumped into the
  /// InjectionRecord when an outcome is SDC / crash class.
  bool flight_recorder = false;

  /// Fault-propagation forensics: golden/faulty lockstep replay of
  /// injections that end in SDC, app crash, or an undetected escape,
  /// bisecting to the first architectural divergence and sampling the
  /// corruption taint map.  Costs a bounded re-execution of the faulted
  /// window per qualifying injection; record digests stay bit-identical
  /// either way (the evidence rides outside the digested fields).  Not
  /// part of any()/all(): forensics is a replay layer, not a hot-path
  /// collection site, and obs_overhead gates it separately.
  bool forensics = false;

  /// Ring depth for the flight recorder (frames kept per machine).
  int flight_recorder_depth = 32;
  /// Hard cap on buffered trace events per recorder; events beyond the
  /// cap are counted as dropped, never reallocated past it.
  std::size_t trace_max_events = 1u << 20;

  /// Lockstep chunk length: golden/faulty state is compared every this
  /// many replayed instructions, and a dirty chunk is bisected to the
  /// first divergent boundary (divergence resolution = 1 instruction;
  /// chunk size only trades compares against bisection probes).
  int forensics_chunk_steps = 64;
  /// Per-side replay budget (instructions after the injection point).
  /// Bounds pathological replays — a hung faulty run has no natural end.
  std::uint64_t forensics_max_replay_steps = 1u << 17;
  /// Cap on taint-map samples per injection (exponentially spaced from
  /// the first divergence, plus one final end-state sample).
  int forensics_max_taint_samples = 24;
  /// Replay 1-in-N of the *undetected-escape* qualifiers (deterministic
  /// per-shard counter).  AppSdc/AppCrash records always replay — the
  /// forensics contract promises every SDC a first-divergence entry.
  int forensics_sample_every = 1;

  /// True when any collection layer is live.
  constexpr bool any() const { return metrics || tracing || flight_recorder; }

  /// Everything on, default sizing — the `obs_overhead` "fully enabled"
  /// configuration.
  static constexpr Options all() {
    Options o;
    o.metrics = true;
    o.tracing = true;
    o.flight_recorder = true;
    return o;
  }
};

}  // namespace xentry::obs
