// Parallel fault-injection campaigns.
//
// The paper runs 30,000 injections for the coverage study and ~23,400 +
// ~17,700 for training/testing the classifier (Sections III-B, V-D).  A
// campaign shards its injections across threads; each shard owns an
// isolated golden/faulty Machine pair and a workload generator seeded
// per shard, so results are deterministic for a fixed (seed, shards)
// pair and shards share no mutable state.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "analysis/artifacts.hpp"
#include "fault/experiment.hpp"
#include "fault/outcome.hpp"
#include "ml/dataset.hpp"
#include "ml/rules.hpp"
#include "obs/metrics.hpp"
#include "obs/options.hpp"
#include "obs/record_sink.hpp"
#include "obs/trace.hpp"
#include "workloads/workload.hpp"
#include "xentry/framework.hpp"

namespace xentry::fault {

/// One progress heartbeat (see CampaignConfig::Heartbeat).  Aggregated
/// from relaxed per-shard counters, so mid-campaign samples are a
/// consistent-enough snapshot, not a barrier; the final sample (emitted
/// after all shards join) is exact.
struct HeartbeatSample {
  std::uint64_t completed = 0;  ///< injections finished so far
  std::uint64_t total = 0;      ///< configured campaign size
  double elapsed_sec = 0;
  double injections_per_sec = 0;  ///< mean rate since campaign start
  double recent_per_sec = 0;      ///< rate since the previous heartbeat
  /// Remaining-work estimate from the recent rate (mean rate when no
  /// recent sample exists yet); 0 when done or the rate is unknown.
  double eta_sec = 0;
  std::uint64_t detected_total = 0;
  /// Indexed by Technique; entry 0 (None) stays zero.
  std::array<std::uint64_t, kNumTechniques> detected_by_technique{};
  /// Injections durable at the last checkpoint (0 without checkpointing).
  std::uint64_t checkpointed = 0;
  /// Record-sink bytes appended but not yet flushed to disk.
  std::uint64_t sink_lag_bytes = 0;
  /// Record-sink frames dropped across all shards (nonzero only when a
  /// sink failed or hit a capacity cap — a healthy file sink never drops).
  std::uint64_t sink_dropped = 0;
  /// Per-shard progress, one entry per *running* shard of this process,
  /// in shard order.  Feeds the straggler monitor and the fleet plane.
  struct ShardThroughput {
    int shard = -1;
    std::uint64_t completed = 0;
    double recent_per_sec = 0;  ///< since the previous heartbeat
    /// True when this shard's recent rate fell below
    /// `Heartbeat::straggler_fraction` of the median across shards.
    bool straggler = false;
  };
  std::vector<ShardThroughput> shards;
  std::uint64_t stragglers = 0;  ///< count of flagged shards this sample
  bool last = false;  ///< true for the exact post-join sample
};

struct CampaignConfig {
  int injections = 1000;
  /// Probability that an injection targets a register the upcoming
  /// instruction reads (an *activated* error, paper Section V-B) instead
  /// of a uniform architectural flip (which mostly lands in dead registers
  /// and masks).  0.5 reproduces the paper's manifestation rate of
  /// roughly 17,700 of 30,000 injections.
  double activation_bias = 0.5;
  /// Fault-free activations executed before the first injection, so the
  /// machine is warm ("regions when applications are running", V-B).
  int warmup_activations = 32;
  /// Fault-free activations between consecutive injections.
  int stream_gap = 2;
  std::uint64_t seed = 1;
  int shards = 0;  ///< 0: hardware concurrency

  /// Fleet partition (src/fault/fleet.hpp).  A fleet campaign fixes the
  /// shard space to `unit_count` deterministic work units — the same
  /// quotas and seeds the equivalent single-process run with
  /// `shards = unit_count` would use — and this process executes only the
  /// `units` subset.  Unit streams land in the single-process shard-file
  /// layout (`<records_path>.shard<u>.*`), so the files from any worker
  /// partition concatenate in unit order to the identical byte stream.
  /// Requires streaming.records_path; `units` must be unique and within
  /// [0, unit_count).  unit_count == 0 disables fleet mode.
  struct FleetConfig {
    int unit_count = 0;
    std::vector<int> units;
  };
  FleetConfig fleet{};

  hv::MicrovisorOptions machine{};
  XentryConfig xentry{};
  OutcomeModel outcome{};
  /// Transition-detection model (empty: no model installed).
  ml::RuleSet model{};
  /// Activation source.  Leave `mix` empty to sweep all exit reasons
  /// uniformly (the classifier-training configuration).
  wl::WorkloadProfile workload{};

  /// Collect (features, label) samples into CampaignResult::dataset.
  bool collect_dataset = false;

  /// Masking-aware importance sampling (src/fault/sampler.hpp).  When
  /// enabled, draws the vulnerability map proves masked are skipped and
  /// their probability mass reweighted exactly onto the records
  /// (InjectionRecord::weight / masked_weight), so weighted_rates()
  /// reproduces the uniform-sampling answer while spending faulted runs
  /// only on live bits.  Requires `analysis` carrying a bit-liveness map.
  /// The main RNG stream is consumed identically to uniform mode, so the
  /// activation/golden-probe sequence is bit-identical across modes.
  struct SamplingConfig {
    bool importance = false;
    /// Slots whose live mass falls below this floor are attributed to
    /// Masked analytically without a faulted run (bias <= floor per
    /// affected slot).  Must be in (0, 1].
    double weight_floor = 1.0 / 64;
  };
  SamplingConfig sampling{};

  /// Static-analysis artifacts for xentry.control_flow_detection, shared
  /// read-only across shards (every shard's Microvisor assembles the same
  /// program, so one analysis serves all).  Required when control-flow
  /// detection is enabled — validate_campaign_config fails fast otherwise,
  /// mirroring the transition-detection-without-model guard.
  std::shared_ptr<const analysis::AnalysisArtifacts> analysis;

  /// Observability: per-shard metrics, phase/VM-exit tracing, and the
  /// SDC flight recorder.  All off by default; none of it perturbs the
  /// record stream (digests are bit-identical across telemetry modes).
  obs::Options obs{};

  /// Streaming telemetry: durable record sinks and the checkpoint
  /// journal (src/fault/checkpoint.hpp).  With `records_path` set, every
  /// shard streams its records through an append-only per-shard file
  /// (`<records_path>.shard<N>.<jsonl|bin>`); shard files concatenated in
  /// shard order decode to exactly the in-memory record stream.  With
  /// `checkpoint_path` also set, shards journal their resume state every
  /// `checkpoint_every` iterations, and run_campaign with the same config
  /// resumes a killed campaign automatically — the resumed record stream
  /// and final metrics are bit-identical to an uninterrupted run's (see
  /// DESIGN.md section 5g).
  struct StreamingConfig {
    std::string records_path;  ///< empty: no record streaming
    obs::RecordFormat records_format = obs::RecordFormat::kJsonl;
    std::size_t sink_buffer_bytes = 64 * 1024;
    /// Journal file; empty disables checkpointing.  Requires
    /// records_path (resuming without a durable record stream would lose
    /// the pre-kill records).  Metrics sidecars live next to it.
    std::string checkpoint_path;
    int checkpoint_every = 1024;  ///< shard iterations between checkpoints
    /// false: do not accumulate records in CampaignResult::records (the
    /// 10^7-injection configuration — read them back from the sink).
    bool keep_records = true;
    /// Test hook simulating SIGKILL: each shard returns after this many
    /// iterations without flushing or checkpointing, so buffered sink
    /// bytes are lost exactly as a kill would lose them.  0 = off.
    int abort_after = 0;
  };
  StreamingConfig streaming{};

  /// Periodic progress reporting from a monitor thread.  Disabled unless
  /// `interval_sec > 0` and a callback is installed; the callback runs on
  /// the monitor thread (and once more, exactly, from the caller's thread
  /// after all shards join, with `HeartbeatSample::last` set).
  struct Heartbeat {
    double interval_sec = 0;
    std::function<void(const HeartbeatSample&)> callback;
    /// A shard whose recent rate drops below this fraction of the median
    /// across this process's shards is flagged as a straggler in
    /// HeartbeatSample::shards.  Must be in [0, 1); 0 disables flagging.
    double straggler_fraction = 0.5;
  };
  Heartbeat heartbeat{};
};

/// Validates a configuration, throwing std::invalid_argument naming the
/// offending field.  run_campaign calls this before spawning shards, so
/// a bad config fails fast and loudly instead of silently misbehaving.
void validate_campaign_config(const CampaignConfig& config);

struct CampaignResult {
  std::vector<InjectionRecord> records;
  /// Labelled samples: golden runs (Correct) + faulted runs that reached
  /// VM entry (Incorrect when the control-flow trace diverged).
  ml::Dataset dataset{std::vector<std::string>{"VMER", "RT", "BR", "RM",
                                               "WM"}};
  /// Shard metrics merged in shard order (empty unless obs.metrics).
  /// Includes campaign-level gauges (injections_per_sec, elapsed_us).
  obs::MetricsRegistry metrics;
  /// All shards' spans on one timeline, tid = shard index (empty unless
  /// obs.tracing).  Export with trace.write_chrome_json for Perfetto.
  obs::TraceRecorder trace;
  /// Records durably written to the sink across all shards, including
  /// those streamed before a resume (0 without streaming.records_path).
  std::uint64_t records_streamed = 0;
  /// True when this run continued from an existing checkpoint journal —
  /// `records` then holds only the post-resume suffix; the full stream
  /// lives in the sink files.
  bool resumed = false;
};

/// Runs the campaign.  Deterministic per (config.seed, shard count).
CampaignResult run_campaign(const CampaignConfig& config);

/// A workload profile that sweeps every exit reason uniformly.
wl::WorkloadProfile uniform_sweep_profile();

}  // namespace xentry::fault
