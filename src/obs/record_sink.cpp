#include "obs/record_sink.hpp"

#include <cassert>
#include <filesystem>
#include <system_error>
#include <utility>

namespace xentry::obs {

std::string_view record_format_name(RecordFormat f) {
  switch (f) {
    case RecordFormat::kJsonl: return "jsonl";
    case RecordFormat::kBinary: return "bin";
  }
  return "jsonl";
}

std::optional<RecordFormat> record_format_from_name(std::string_view name) {
  if (name == "jsonl") return RecordFormat::kJsonl;
  if (name == "bin" || name == "binary") return RecordFormat::kBinary;
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// ShardedFileSink

std::string ShardedFileSink::shard_path(std::string_view base, RecordFormat f,
                                        std::size_t shard) {
  std::string path(base);
  path += ".shard";
  path += std::to_string(shard);
  path += '.';
  path += record_format_name(f);
  return path;
}

ShardedFileSink::ShardedFileSink(Options opts)
    : buffer_bytes_(opts.buffer_bytes == 0 ? 1 : opts.buffer_bytes) {
  const bool resume = !opts.resume_offsets.empty();
  assert(!resume || opts.resume_offsets.size() == opts.shard_count);
  shards_.resize(opts.shard_count);
  if (!opts.active_shards.empty()) {
    for (Shard& sh : shards_) sh.active = false;
    for (std::size_t s : opts.active_shards) {
      if (s < shards_.size()) shards_[s].active = true;
    }
  }
  for (std::size_t s = 0; s < opts.shard_count; ++s) {
    Shard& sh = shards_[s];
    sh.path = shard_path(opts.base_path, opts.format, s);
    if (!sh.active) continue;  // another worker's stream: never opened
    sh.buffer.reserve(buffer_bytes_);
    if (resume) {
      // Truncate to the last durable (journaled) offset: anything past it
      // is a torn tail from the killed run and must not survive.
      const std::uint64_t off = opts.resume_offsets[s];
      std::error_code ec;
      std::filesystem::resize_file(sh.path, off, ec);
      if (ec) {
        sh.failed = true;
        continue;
      }
      sh.file = std::fopen(sh.path.c_str(), "ab");
      sh.offset = off;
    } else {
      sh.file = std::fopen(sh.path.c_str(), "wb");
    }
    if (sh.file == nullptr) sh.failed = true;
  }
}

ShardedFileSink::~ShardedFileSink() {
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    flush(s);
    if (shards_[s].file != nullptr) std::fclose(shards_[s].file);
  }
}

bool ShardedFileSink::append(std::size_t shard, std::string_view frame) {
  Shard& sh = shards_[shard];
  if (sh.failed || !sh.active) {
    ++sh.stats.dropped;
    return false;
  }
  if (sh.buffer.size() + frame.size() > buffer_bytes_ && !sh.buffer.empty()) {
    ++sh.stats.backpressure_flushes;
    flush(shard);
    if (sh.failed) {
      ++sh.stats.dropped;
      return false;
    }
  }
  sh.buffer.append(frame.data(), frame.size());
  ++sh.stats.appends;
  sh.stats.appended_bytes += frame.size();
  // Oversized frame: the buffer can't bound it, push it straight out.
  if (sh.buffer.size() > buffer_bytes_) flush(shard);
  return !sh.failed;
}

void ShardedFileSink::flush(std::size_t shard) {
  Shard& sh = shards_[shard];
  if (sh.buffer.empty() || sh.failed || sh.file == nullptr) return;
  const std::size_t n =
      std::fwrite(sh.buffer.data(), 1, sh.buffer.size(), sh.file);
  if (n != sh.buffer.size() || std::fflush(sh.file) != 0) {
    sh.failed = true;
    return;
  }
  sh.offset += sh.buffer.size();
  ++sh.stats.flushes;
  sh.stats.flushed_bytes += sh.buffer.size();
  sh.buffer.clear();
}

std::uint64_t ShardedFileSink::offset(std::size_t shard) const {
  return shards_[shard].offset;
}

std::uint64_t ShardedFileSink::buffered_bytes(std::size_t shard) const {
  return shards_[shard].buffer.size();
}

void ShardedFileSink::discard(std::size_t shard) {
  Shard& sh = shards_[shard];
  sh.stats.dropped += sh.buffer.empty() ? 0 : 1;
  sh.buffer.clear();
}

const SinkShardStats& ShardedFileSink::stats(std::size_t shard) const {
  return shards_[shard].stats;
}

bool ShardedFileSink::ok() const {
  for (const Shard& sh : shards_) {
    if (sh.failed) return false;
  }
  return true;
}

const std::string& ShardedFileSink::path(std::size_t shard) const {
  return shards_[shard].path;
}

// ---------------------------------------------------------------------------
// MemoryRecordSink

MemoryRecordSink::MemoryRecordSink(Options opts) : opts_(std::move(opts)) {
  if (opts_.buffer_bytes == 0) opts_.buffer_bytes = 1;
  shards_.resize(opts_.shard_count);
}

bool MemoryRecordSink::append(std::size_t shard, std::string_view frame) {
  Shard& sh = shards_[shard];
  if (opts_.max_shard_bytes != 0 &&
      sh.durable.size() + sh.buffer.size() + frame.size() >
          opts_.max_shard_bytes) {
    ++sh.stats.dropped;
    return false;
  }
  if (sh.buffer.size() + frame.size() > opts_.buffer_bytes &&
      !sh.buffer.empty()) {
    ++sh.stats.backpressure_flushes;
    flush(shard);
  }
  sh.buffer.append(frame.data(), frame.size());
  ++sh.stats.appends;
  sh.stats.appended_bytes += frame.size();
  if (sh.buffer.size() > opts_.buffer_bytes) flush(shard);
  return true;
}

void MemoryRecordSink::flush(std::size_t shard) {
  Shard& sh = shards_[shard];
  if (sh.buffer.empty()) return;
  sh.durable += sh.buffer;
  ++sh.stats.flushes;
  sh.stats.flushed_bytes += sh.buffer.size();
  sh.buffer.clear();
}

std::uint64_t MemoryRecordSink::offset(std::size_t shard) const {
  return shards_[shard].durable.size();
}

std::uint64_t MemoryRecordSink::buffered_bytes(std::size_t shard) const {
  return shards_[shard].buffer.size();
}

void MemoryRecordSink::discard(std::size_t shard) {
  Shard& sh = shards_[shard];
  sh.stats.dropped += sh.buffer.empty() ? 0 : 1;
  sh.buffer.clear();
}

const SinkShardStats& MemoryRecordSink::stats(std::size_t shard) const {
  return shards_[shard].stats;
}

const std::string& MemoryRecordSink::data(std::size_t shard) const {
  return shards_[shard].durable;
}

}  // namespace xentry::obs
