// A fully assembled code image.
//
// Instructions are pre-decoded and live in a dedicated code address range
// [base, base + code.size()); rip values index instruction slots directly.
// A rip outside the range faults with #PF (instruction fetch from unmapped
// memory); a rip landing on a Ud padding slot faults with #UD.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/isa.hpp"
#include "sim/types.hpp"

namespace xentry::sim {

/// Conservative static landing set of a program: one flag per instruction
/// slot, true when control flow can enter that slot without falling
/// through from the previous one.  Covers direct branch/call targets,
/// named symbols (dispatch entries), call return sites, and any MovRI
/// immediate that lands in the code image (material for indirect jumps
/// through a register and for manually pushed return addresses).
///
/// This is the single source of truth for "where can control arrive":
/// Program::compute_fusion consumes it (a pair whose Jcc slot is a
/// landing point must not fuse), the analysis subsystem's CFG builder
/// consumes it (every landing point is a basic-block leader), and the
/// threaded-code compiler's superblock formation consumes it through the
/// CFG, so the fuser, the verifier, and the compiler can never disagree
/// about landing legality.  Computed once at assembly time and cached on
/// the Program (Program::landing_sites); this free function returns the
/// cached vector.
const std::vector<bool>& compute_landing_sites(const class Program& program);

/// FNV-1a accumulation of one instruction's architectural text (op,
/// operands, immediate, aux — not the fused hint, which is derived).
/// Shared by program_text_signature and the analysis CFG's per-block
/// signatures so all layers key caches off the same hash.
std::uint64_t instruction_fnv(std::uint64_t h, const Instruction& insn);

inline constexpr std::uint64_t kFnvOffsetBasis = 1469598103934665603ull;

/// FNV-1a signature of a program's load address + full architectural
/// text.  This is the cache/staleness key used by analysis artifacts
/// (analysis::program_signature delegates here) and by the threaded-code
/// engine's CompiledProgram cache.
std::uint64_t program_text_signature(const class Program& program);

/// Macro-op fusion metadata for one instruction slot, computed once at
/// assembly time.  When `fused` is set, the slot holds a Cmp*/Test* whose
/// immediate successor is a direct conditional jump and no control flow can
/// land *between* the two; the specialized run loops may then execute the
/// pair in one dispatch.  The pair still retires as two instructions (two
/// trace entries, two counter retires, same rflags effects), so every
/// architectural observable is bit-identical to unfused execution.  The
/// architectural code stream is never rewritten: single-stepping, the
/// injector, and diagnostics keep seeing the original two instructions.
///
/// The hot loops do not read this struct: the hint lives in
/// Instruction::fused (the slot's padding byte) and the branch's opcode and
/// target are read from the successor slot.  This accessor view exists for
/// tests and diagnostics.
struct FusedPair {
  bool fused = false;
  Opcode jcc = Opcode::Nop;  ///< the fused conditional branch
  Addr target = 0;           ///< its taken-path target (resolved imm)
};

class Program {
 public:
  Program() = default;
  Program(Addr base, std::vector<Instruction> code,
          std::map<std::string, Addr> symbols)
      : base_(base), code_(std::move(code)), symbols_(std::move(symbols)) {
    compute_landing();
    compute_fusion();
  }

  Addr base() const { return base_; }
  Addr end() const { return base_ + code_.size(); }
  std::size_t size() const { return code_.size(); }
  bool empty() const { return code_.empty(); }

  bool contains(Addr rip) const { return rip >= base_ && rip < end(); }

  const Instruction& at(Addr rip) const { return code_[rip - base_]; }

  /// Single-lookup fetch for the interpreter hot path: nullptr when `rip`
  /// is outside the code image (instruction fetch from unmapped memory).
  const Instruction* fetch(Addr rip) const {
    const Addr off = rip - base_;
    return off < code_.size() ? &code_[off] : nullptr;
  }

  /// Fusion metadata for the instruction slot at offset `off` (valid for
  /// off < size()).
  FusedPair fused(std::size_t off) const {
    if (!code_[off].fused) return {};
    const Instruction& jcc = code_[off + 1];
    return FusedPair{true, jcc.op, static_cast<Addr>(jcc.imm)};
  }

  /// Address of a named symbol (function entry).  Throws if unknown.
  Addr symbol(const std::string& name) const;
  bool has_symbol(const std::string& name) const {
    return symbols_.count(name) != 0;
  }
  const std::map<std::string, Addr>& symbols() const { return symbols_; }

  /// Name of the function containing `rip` (last symbol at or before it),
  /// or empty if none.  For diagnostics.
  std::string symbol_at(Addr rip) const;

  /// Cached conservative landing set (see compute_landing_sites above),
  /// one flag per instruction slot.  Computed once at assembly time so
  /// per-attach consumers (campaign shards, CFG builds, threaded-code
  /// compilation) never recompute it.
  const std::vector<bool>& landing_sites() const { return landing_; }

 private:
  void compute_landing();
  void compute_fusion();

  Addr base_ = 0;
  std::vector<Instruction> code_;
  std::map<std::string, Addr> symbols_;
  std::vector<bool> landing_;
};

}  // namespace xentry::sim
