// Execution engine for one logical core.
//
// The CPU interprets a pre-decoded Program against a Memory, maintaining
// the 18 architectural registers that form the paper's fault-injection
// surface.  Hardware faults are reported as values (Trap), never as C++
// exceptions: the run loops are the simulator's hot path.
//
// Two engines share the architectural semantics:
//   - step() / run_reference(): the reference engine.  One instruction per
//     call, a fresh StepInfo per step — used by single-step callers
//     (injection-point stepping, lockstep comparison) and as the oracle
//     the differential tests check the fast engine against.
//   - run(): the mode-specialized engine.  Dispatches once, per run, to a
//     loop templated over the three per-step feature flags (trace
//     recording, register-mask tracking, shadow-stack redundancy), so the
//     common golden-run configuration compiles to a tight loop with zero
//     disabled-feature branches.  Retire bookkeeping (steps, TSC,
//     counters) accumulates in locals and is flushed once at loop exit,
//     and fusable Cmp*/Test* + Jcc pairs (see Program::fused) execute in
//     one dispatch while still retiring as two instructions.  Every
//     architectural observable is bit-identical to the reference engine.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/isa.hpp"
#include "sim/memory.hpp"
#include "sim/perf_counters.hpp"
#include "sim/program.hpp"
#include "sim/types.hpp"

namespace xentry::sim {

namespace jit {
struct CompiledProgram;
}  // namespace jit

/// Which engine Cpu::run drives.  All three are bit-identical in every
/// architectural observable (the differential tests assert it); they
/// differ only in throughput and in what they need attached.
enum class EngineKind : std::uint8_t {
  /// Mode-specialized interpreter (run_loop templates).  The default.
  Fast,
  /// step()-driven reference engine: the oracle.
  Reference,
  /// Threaded-code superblock engine (src/sim/jit/).  Needs a
  /// CompiledProgram attached via set_compiled; without one, run() falls
  /// back to Fast.
  Jit,
};

constexpr std::string_view engine_name(EngineKind k) {
  switch (k) {
    case EngineKind::Fast: return "fast";
    case EngineKind::Reference: return "reference";
    case EngineKind::Jit: return "jit";
  }
  return "?";
}

/// Timestamp-counter advance per retired instruction.  Two back-to-back
/// rdtsc reads therefore differ by a small constant — the property the
/// paper's discussion of time-value checking relies on (Section VI).
inline constexpr Word kTscPerStep = 3;

/// One architectural register that differs between two CPUs: the
/// register-file element of a (location, xor-mask) corruption set.
struct RegDiff {
  Reg reg = Reg::rax;
  Word xor_mask = 0;  ///< a ^ b; never zero
};

/// Result of one step.
struct StepInfo {
  enum class Status : std::uint8_t { Ok, Halted, Trapped };
  Status status = Status::Ok;
  Trap trap;
  Addr rip_before = 0;
  std::uint32_t read_mask = 0;     ///< architectural registers read
  std::uint32_t written_mask = 0;  ///< architectural registers written
};

class Cpu {
 public:
  Cpu(const Program* program, Memory* memory)
      : prog_(program), mem_(memory) {
    regs_.fill(0);
  }

  // -- architectural state ---------------------------------------------------

  Word reg(Reg r) const { return regs_[static_cast<std::size_t>(r)]; }
  void set_reg(Reg r, Word v) { regs_[static_cast<std::size_t>(r)] = v; }

  /// Flips one bit of one architectural register: the paper's fault model.
  void flip_bit(Reg r, int bit) {
    regs_[static_cast<std::size_t>(r)] ^= Word{1} << bit;
  }

  const std::array<Word, kNumArchRegs>& regs() const { return regs_; }

  /// Bulk register-file overwrite, for lockstep checkpoint restore.  The
  /// TSC and step counter are untouched (set_tsc restores the former; the
  /// latter is bookkeeping the replay engine tracks itself).
  void set_regs(const std::array<Word, kNumArchRegs>& regs) { regs_ = regs; }

  /// Resets registers to a clean state with the given entry point and
  /// stack pointer.  Flags and GPRs are zeroed; the TSC is preserved
  /// (monotonic across activations).
  void reset(Addr rip, Addr rsp);

  // -- execution ---------------------------------------------------------------

  /// Executes one instruction (reference engine).  On a trap, the
  /// architectural state is left as of the faulting instruction (rip
  /// points at it).
  StepInfo step();

  /// Runs until Hlt, a trap, or `max_steps` instructions (which raises the
  /// Watchdog trap, modelling Xen's NMI watchdog catching a hung
  /// hypervisor).  Returns the last StepInfo.  Picks the run-loop
  /// specialization for the current trace/mask/shadow configuration once,
  /// then executes with no per-step feature tests; the feature setters
  /// must not be called while a run is in flight.
  StepInfo run(std::uint64_t max_steps);

  /// Reference-engine equivalent of run(): drives step() one instruction
  /// at a time.  Semantically identical to run() (the differential tests
  /// assert it); kept for lockstep callers and as the oracle.
  StepInfo run_reference(std::uint64_t max_steps);

  /// Threaded-code engine: executes the attached CompiledProgram with
  /// computed-goto dispatch at superblock granularity.  Requires
  /// set_compiled first.  When the remaining watchdog budget cannot cover
  /// a superblock's worst case, it deopts — flushes exact architectural
  /// state and finishes the tail through the interpreter — so results
  /// stay bit-identical to run_reference at every budget.
  StepInfo run_jit(std::uint64_t max_steps);

  std::uint64_t steps_executed() const { return steps_; }

  // -- attachments ------------------------------------------------------------

  PerfCounters& counters() { return counters_; }
  const PerfCounters& counters() const { return counters_; }

  /// When non-null, every executed rip is appended: the control-flow trace
  /// used for golden-run comparison and ML labelling.
  void set_trace(std::vector<Addr>* trace) { trace_ = trace; }

  /// Controls whether step() fills StepInfo::read_mask/written_mask.  The
  /// masks are only consumed while watching a pending injection for
  /// activation; clean (golden/advance) runs skip the two per-step
  /// register-set computations.  Default on.
  void set_mask_tracking(bool on) { track_masks_ = on; }

  /// Register watch (by reg_bit mask).  While nonzero, run() stops
  /// *before* executing any instruction whose static read or write set
  /// intersects the mask, returning StepInfo::Status::Ok with the pending
  /// instruction's masks filled and rip still pointing at it.  The
  /// injection path uses this to batch execution between
  /// activation-relevant instructions on the fast engine and single-step
  /// only those.  Forces interpreter execution (bit-identical) while set:
  /// the jit loop has no per-instruction mask check.  Zero disables.
  void set_watch(std::uint32_t reg_mask) { watch_mask_ = reg_mask; }

  Word tsc() const { return tsc_; }
  void set_tsc(Word v) { tsc_ = v; }

  /// Enables shadow-stack redundancy (the paper's Section VI "selective
  /// redundancy" countermeasure for stack-value corruption): every pushed
  /// word is mirrored at `addr + offset`, and every pop verifies the
  /// mirror, raising TrapKind::StackCheck on mismatch.  The mirror range
  /// must be mapped by the caller.
  void enable_shadow_stack(std::int64_t offset) {
    shadow_offset_ = offset;
    shadow_enabled_ = true;
  }
  void disable_shadow_stack() { shadow_enabled_ = false; }
  bool shadow_stack_enabled() const { return shadow_enabled_; }

  /// Selects the engine run() drives.  Jit without a compiled program
  /// attached silently falls back to Fast (same architectural results).
  void set_engine(EngineKind kind) { engine_ = kind; }
  EngineKind engine() const { return engine_; }

  /// Attaches a threaded-code compilation of the attached program.  The
  /// compiled stream must match the program's base, size, and text
  /// signature; a stale compilation (assembled-over image, different
  /// program) throws std::invalid_argument — superblock invalidation is
  /// fail-fast, never silent misexecution.  nullptr detaches.
  void set_compiled(std::shared_ptr<const jit::CompiledProgram> compiled);
  const jit::CompiledProgram* compiled() const { return jit_.get(); }

  Memory& memory() { return *mem_; }
  const Program& program() const { return *prog_; }

 private:
  void set_flags_cmp(Word a, Word b);
  void set_flags_result(Word res);
  bool flag(Word bit) const { return (reg(Reg::rflags) & bit) != 0; }

  /// The mode-specialized hot loop behind run().  One instantiation per
  /// trace/mask/shadow combination; `Masks` only affects the StepInfo
  /// materialized at loop exit (per-step masks are a step() concern).
  template <bool Trace, bool Masks, bool Shadow>
  StepInfo run_loop(std::uint64_t max_steps);

  /// Interpreter dispatch behind run(): picks the run_loop specialization
  /// for the current trace/mask/shadow configuration.  Also the deopt
  /// tail of run_jit and the fallback when Jit is selected with no
  /// compiled program.
  StepInfo run_interp(std::uint64_t max_steps);

  /// The threaded-code hot loop (src/sim/jit/engine.cpp).  Masks are not
  /// a template axis: they only affect the StepInfo materialized at exit,
  /// which reads track_masks_ at runtime.  On deopt, sets `deopted` and
  /// the remaining budget instead of finishing.
  template <bool Trace, bool Shadow>
  StepInfo run_jit_loop(std::uint64_t max_steps, bool& deopted,
                        std::uint64_t& deopt_remaining);

  const Program* prog_;
  Memory* mem_;
  std::array<Word, kNumArchRegs> regs_{};
  PerfCounters counters_;
  std::vector<Addr>* trace_ = nullptr;
  std::shared_ptr<const jit::CompiledProgram> jit_;
  Word tsc_ = 0;
  std::uint64_t steps_ = 0;
  std::int64_t shadow_offset_ = 0;
  EngineKind engine_ = EngineKind::Fast;
  std::uint32_t watch_mask_ = 0;
  bool shadow_enabled_ = false;
  bool track_masks_ = true;
};

/// Fills `out` with one RegDiff per architectural register (including rip
/// and rflags) whose value differs between `a` and `b`, in register-index
/// order, and returns the diff count.  `out` is cleared first and reused.
std::size_t diff_regs(const Cpu& a, const Cpu& b, std::vector<RegDiff>& out);

}  // namespace xentry::sim
