// Dumps the assembled microvisor: a full disassembly listing with symbol
// headers, followed by the static verifier's report.  Useful when writing
// or auditing handlers.
//
//   $ ./microvisor_listing [symbol]
//
// With a symbol argument, prints only that function (e.g. "schedule",
// "hypercall_mmu_update_body").
#include <cstdio>
#include <cstring>
#include <string>

#include "hv/microvisor.hpp"
#include "sim/verifier.hpp"

using namespace xentry;

int main(int argc, char** argv) {
  const std::string only = argc > 1 ? argv[1] : "";

  const hv::Microvisor mv = hv::build_microvisor();
  const sim::Program& p = mv.program;

  // Invert the symbol table for header printing.
  std::string current;
  std::size_t skipped_padding = 0;
  for (sim::Addr a = p.base(); a < p.end(); ++a) {
    const std::string sym = p.symbol_at(a);
    const bool is_entry = p.has_symbol(sym) && p.symbol(sym) == a;
    if (is_entry && sym != current) {
      current = sym;
      if (only.empty() || current == only) {
        std::printf("\n%s:\n", current.c_str());
      }
    }
    if (!only.empty() && current != only) continue;
    const sim::Instruction& insn = p.at(a);
    if (insn.op == sim::Opcode::Ud) {
      ++skipped_padding;
      continue;
    }
    std::printf("  %06lx  %s\n", (unsigned long)a,
                sim::disassemble(insn).c_str());
  }

  if (only.empty()) {
    sim::VerifierOptions opt;
    opt.max_assert_id = hv::kAssertMaxId;
    const sim::VerifierReport report = sim::verify_program(p, opt);
    std::printf("\n;; %s\n", report.to_string().c_str());
    std::printf(";; %zu symbols, %zu padding slots suppressed\n",
                p.symbols().size(), skipped_padding);
  }
  return 0;
}
