#include "sim/program.hpp"

#include <stdexcept>

namespace xentry::sim {

Addr Program::symbol(const std::string& name) const {
  auto it = symbols_.find(name);
  if (it == symbols_.end()) {
    throw std::out_of_range("Program: unknown symbol '" + name + "'");
  }
  return it->second;
}

std::string Program::symbol_at(Addr rip) const {
  std::string best;
  Addr best_addr = 0;
  for (const auto& [name, addr] : symbols_) {
    if (addr <= rip && (best.empty() || addr >= best_addr)) {
      best = name;
      best_addr = addr;
    }
  }
  return best;
}

}  // namespace xentry::sim
