file(REMOVE_RECURSE
  "CMakeFiles/xentry_sim.dir/assembler.cpp.o"
  "CMakeFiles/xentry_sim.dir/assembler.cpp.o.d"
  "CMakeFiles/xentry_sim.dir/cpu.cpp.o"
  "CMakeFiles/xentry_sim.dir/cpu.cpp.o.d"
  "CMakeFiles/xentry_sim.dir/isa.cpp.o"
  "CMakeFiles/xentry_sim.dir/isa.cpp.o.d"
  "CMakeFiles/xentry_sim.dir/memory.cpp.o"
  "CMakeFiles/xentry_sim.dir/memory.cpp.o.d"
  "CMakeFiles/xentry_sim.dir/program.cpp.o"
  "CMakeFiles/xentry_sim.dir/program.cpp.o.d"
  "CMakeFiles/xentry_sim.dir/verifier.cpp.o"
  "CMakeFiles/xentry_sim.dir/verifier.cpp.o.d"
  "libxentry_sim.a"
  "libxentry_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xentry_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
