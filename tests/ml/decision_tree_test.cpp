#include "ml/decision_tree.hpp"

#include <gtest/gtest.h>

#include <array>

#include "ml/metrics.hpp"

namespace xentry::ml {
namespace {

// A linearly separable dataset on feature 1 (threshold 200), mimicking the
// paper's RT example.
Dataset separable() {
  Dataset ds({"VMER", "RT"});
  for (int i = 0; i < 10; ++i) {
    std::array<std::int64_t, 2> v{1, 100 + i};
    ds.add(v, Label::Correct);
  }
  for (int i = 0; i < 5; ++i) {
    std::array<std::int64_t, 2> v{1, 300 + i};
    ds.add(v, Label::Incorrect);
  }
  return ds;
}

TEST(DecisionTreeTest, LearnsPerfectSplit) {
  Dataset ds = separable();
  DecisionTree tree;
  tree.train(ds);
  auto m = evaluate(ds, [&](auto row) { return tree.predict(row); });
  EXPECT_DOUBLE_EQ(m.accuracy(), 1.0);
  // One internal node is enough.
  EXPECT_EQ(tree.leaf_count(), 2u);
  EXPECT_EQ(tree.depth(), 2);
  // The split must be on RT, between 109 and 300.
  const TreeNode& root = tree.nodes()[0];
  EXPECT_EQ(root.feature, 1);
  EXPECT_GE(root.threshold, 109);
  EXPECT_LT(root.threshold, 300);
}

TEST(DecisionTreeTest, PredictCountsComparisons) {
  Dataset ds = separable();
  DecisionTree tree;
  tree.train(ds);
  int cmps = -1;
  std::array<std::int64_t, 2> v{1, 150};
  EXPECT_EQ(tree.predict(v, &cmps), Label::Correct);
  EXPECT_EQ(cmps, 1);
}

TEST(DecisionTreeTest, PureDatasetYieldsSingleLeaf) {
  Dataset ds({"x"});
  for (int i = 0; i < 8; ++i) {
    std::array<std::int64_t, 1> v{i};
    ds.add(v, Label::Correct);
  }
  DecisionTree tree;
  tree.train(ds);
  EXPECT_EQ(tree.nodes().size(), 1u);
  std::array<std::int64_t, 1> v{100};
  EXPECT_EQ(tree.predict(v), Label::Correct);
}

TEST(DecisionTreeTest, EmptyDatasetThrows) {
  Dataset ds({"x"});
  DecisionTree tree;
  EXPECT_THROW(tree.train(ds), std::invalid_argument);
}

TEST(DecisionTreeTest, UntrainedPredictThrows) {
  DecisionTree tree;
  std::array<std::int64_t, 1> v{0};
  EXPECT_THROW(tree.predict(v), std::logic_error);
}

TEST(DecisionTreeTest, MaxDepthLimitsTree) {
  // AND-shaped data needs two split levels; max_depth 0 forces a leaf.
  Dataset ds({"a", "b"});
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      for (int k = 0; k < 3; ++k) {
        std::array<std::int64_t, 2> v{a, b};
        ds.add(v, (a == 1 && b == 1) ? Label::Incorrect : Label::Correct);
      }
    }
  }
  TreeParams deep;
  DecisionTree full;
  full.train(ds, deep);
  auto mfull = evaluate(ds, [&](auto row) { return full.predict(row); });
  EXPECT_DOUBLE_EQ(mfull.accuracy(), 1.0);
  EXPECT_GE(full.depth(), 3);  // root + two levels

  TreeParams shallow;
  shallow.max_depth = 0;
  DecisionTree stump;
  stump.train(ds, shallow);
  EXPECT_EQ(stump.nodes().size(), 1u);
}

TEST(DecisionTreeTest, MinSamplesLeafRespected) {
  Dataset ds = separable();
  TreeParams p;
  p.min_samples_leaf = 8;  // 15 samples cannot make two leaves of >= 8
  DecisionTree tree;
  tree.train(ds, p);
  EXPECT_EQ(tree.nodes().size(), 1u);
  EXPECT_EQ(tree.nodes()[0].label, Label::Correct);  // majority
}

TEST(DecisionTreeTest, NoisyDataMajorityLeaves) {
  // Identical feature values with conflicting labels cannot be split.
  Dataset ds({"x"});
  std::array<std::int64_t, 1> v{7};
  for (int i = 0; i < 9; ++i) ds.add(v, Label::Correct);
  for (int i = 0; i < 3; ++i) ds.add(v, Label::Incorrect);
  DecisionTree tree;
  tree.train(ds);
  EXPECT_EQ(tree.nodes().size(), 1u);
  EXPECT_EQ(tree.predict(v), Label::Correct);
}

TEST(DecisionTreeTest, RandomTreeParamsMatchPaper) {
  // floor(log2(5)) + 1 = 3 features considered per split (Section III-B).
  EXPECT_EQ(random_tree_params(5, 0).random_features, 3);
  EXPECT_EQ(random_tree_params(4, 0).random_features, 3);
  EXPECT_EQ(random_tree_params(8, 0).random_features, 4);
  EXPECT_EQ(random_tree_params(1, 0).random_features, 1);
}

TEST(DecisionTreeTest, RandomTreeStillSeparatesEasyData) {
  Dataset ds = separable();
  DecisionTree tree;
  tree.train(ds, random_tree_params(ds.num_features(), 5));
  auto m = evaluate(ds, [&](auto row) { return tree.predict(row); });
  EXPECT_DOUBLE_EQ(m.accuracy(), 1.0);
}

TEST(DecisionTreeTest, DeterministicForFixedSeed) {
  Dataset ds = separable();
  DecisionTree t1, t2;
  t1.train(ds, random_tree_params(2, 99));
  t2.train(ds, random_tree_params(2, 99));
  ASSERT_EQ(t1.nodes().size(), t2.nodes().size());
  for (std::size_t i = 0; i < t1.nodes().size(); ++i) {
    EXPECT_EQ(t1.nodes()[i].feature, t2.nodes()[i].feature);
    EXPECT_EQ(t1.nodes()[i].threshold, t2.nodes()[i].threshold);
  }
}

TEST(DecisionTreeTest, ToStringMentionsFeatureNames) {
  Dataset ds = separable();
  DecisionTree tree;
  tree.train(ds);
  const std::string s = tree.to_string(ds.feature_names());
  EXPECT_NE(s.find("RT"), std::string::npos);
  EXPECT_NE(s.find("Incorrect"), std::string::npos);
}

// Property-style sweep: with any seed, a random tree trained on separable
// data stays perfect on the training set.
class RandomTreeSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTreeSeedSweep, PerfectOnSeparableTrainingData) {
  Dataset ds = separable();
  DecisionTree tree;
  tree.train(ds, random_tree_params(ds.num_features(), GetParam()));
  auto m = evaluate(ds, [&](auto row) { return tree.predict(row); });
  EXPECT_DOUBLE_EQ(m.accuracy(), 1.0) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTreeSeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

}  // namespace
}  // namespace xentry::ml
