// Campaign metrics: counters, gauges, and fixed-bucket log2 histograms.
//
// Ownership model (the lock-free contract): every shard owns a private
// MetricsRegistry and bumps plain (non-atomic) cells through pre-resolved
// handles — the hot path never takes a lock, never hashes a name, never
// allocates.  Name lookup happens once per shard at setup
// (`counter()` / `gauge()` / `histogram()` return references with stable
// addresses), and the per-shard registries are merged in shard order at
// campaign end, so the merged output is deterministic for a fixed shard
// count and export order is sorted by name regardless of insertion order.
#pragma once

#include <bit>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <map>
#include <string>
#include <string_view>

namespace xentry::obs {

/// Monotonic event count.  Merge: sum.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }
  void merge_from(const Counter& other) { value_ += other.value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-set instantaneous value.  Merge: sum — shard gauges hold
/// per-shard contributions (e.g. injections/sec), so the merged gauge is
/// the campaign total.
class Gauge {
 public:
  void set(std::int64_t v) { value_ = v; }
  std::int64_t value() const { return value_; }
  void merge_from(const Gauge& other) { value_ += other.value_; }

 private:
  std::int64_t value_ = 0;
};

/// Fixed-bucket base-2 histogram of non-negative 64-bit values.
///
/// Bucket index is `std::bit_width(v)`: bucket 0 holds exactly the value
/// 0, bucket i (1..64) holds [2^(i-1), 2^i - 1].  Fixed buckets make the
/// merge a plain vector add (deterministic, no rebinning) and `observe`
/// one bit-scan plus three adds — cheap enough for per-VM-exit use.
class Log2Histogram {
 public:
  static constexpr int kNumBuckets = 65;

  void observe(std::uint64_t v) {
    ++buckets_[std::bit_width(v)];
    ++count_;
    sum_ += v;
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  std::uint64_t bucket(int i) const { return buckets_[i]; }
  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  /// Meaningful only when count() > 0.
  std::uint64_t min() const { return min_; }
  std::uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Smallest value that lands in bucket `i`.
  static constexpr std::uint64_t bucket_lower_bound(int i) {
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
  }
  /// Largest value that lands in bucket `i`.
  static constexpr std::uint64_t bucket_upper_bound(int i) {
    if (i == 0) return 0;
    if (i >= 64) return std::numeric_limits<std::uint64_t>::max();
    return (std::uint64_t{1} << i) - 1;
  }

  /// Estimates the q-quantile (q in [0, 1]) from the bucket boundaries:
  /// walk the cumulative counts to the rank, then interpolate linearly
  /// within the bucket's [lower, upper] range, clamped to the observed
  /// [min, max] so estimates never leave the data's envelope.  Exact for
  /// single-bucket data; within one power of two otherwise.  Returns 0
  /// when empty.
  double percentile(double q) const;

  /// The histogram's JSON object: count/sum/min/max, p50/p95/p99 (when
  /// non-empty), and the sparse "buckets" map keyed by lower bound.
  void write_json(std::ostream& os) const;

  void merge_from(const Log2Histogram& other) {
    for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.count_ > 0) {
      if (other.min_ < min_) min_ = other.min_;
      if (other.max_ > max_) max_ = other.max_;
    }
  }

  /// Reassembles a histogram from serialized state (snapshot readback).
  /// `min_v`/`max_v` are ignored when `count` is 0.
  static Log2Histogram from_parts(const std::uint64_t (&buckets)[kNumBuckets],
                                  std::uint64_t count, std::uint64_t sum,
                                  std::uint64_t min_v, std::uint64_t max_v) {
    Log2Histogram h;
    for (int i = 0; i < kNumBuckets; ++i) h.buckets_[i] = buckets[i];
    h.count_ = count;
    h.sum_ = sum;
    if (count > 0) {
      h.min_ = min_v;
      h.max_ = max_v;
    }
    return h;
  }

 private:
  std::uint64_t buckets_[kNumBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_ = 0;
};

class MetricsRegistry {
 public:
  /// Resolve-or-create by name.  Returned references are stable for the
  /// registry's lifetime (node-based storage) — resolve once at setup,
  /// bump through the reference on the hot path.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Log2Histogram& histogram(std::string_view name);

  /// Lookup without creation (nullptr when absent) — for tests/export.
  const Counter* find_counter(std::string_view name) const;
  const Gauge* find_gauge(std::string_view name) const;
  const Log2Histogram* find_histogram(std::string_view name) const;

  /// Merges `other` into this registry: counters and gauges sum,
  /// histograms add bucket-wise.  Metrics absent on one side are adopted
  /// as-is.  Merging shard registries in shard order yields identical
  /// results to any other association of the same shards.
  void merge_from(const MetricsRegistry& other);

  std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }
  bool empty() const { return size() == 0; }

  const std::map<std::string, Counter, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, Gauge, std::less<>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, Log2Histogram, std::less<>>& histograms() const {
    return histograms_;
  }

  /// One JSON object with "counters" / "gauges" / "histograms" members,
  /// keys sorted by name (map order) — byte-identical for equal contents.
  void write_json(std::ostream& os) const;

 private:
  // std::map: heterogeneous lookup, stable element addresses, and sorted
  // iteration for deterministic export.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Log2Histogram, std::less<>> histograms_;
};

}  // namespace xentry::obs
