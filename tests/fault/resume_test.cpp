// Kill/resume determinism: a campaign killed at (or between) checkpoint
// boundaries and resumed under the identical config must reproduce the
// uninterrupted run's record stream byte for byte — same records digest,
// same merged (timing-stripped) metrics.  `streaming.abort_after` is the
// in-process SIGKILL: the shard drops its buffered sink bytes and returns
// without a final flush or checkpoint, exactly what a killed process
// leaves behind.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/artifacts.hpp"
#include "fault/campaign.hpp"
#include "fault/checkpoint.hpp"
#include "fault/record_io.hpp"
#include "hv/microvisor.hpp"
#include "obs/snapshot.hpp"

namespace xentry::fault {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

/// Decodes the persisted shard streams in shard order — the full-stream
/// view a resumed run cannot hold in memory.
std::vector<InjectionRecord> decode_stream(const std::string& base,
                                           obs::RecordFormat fmt, int shards) {
  std::vector<InjectionRecord> recs;
  for (int s = 0; s < shards; ++s) {
    const std::string path = obs::ShardedFileSink::shard_path(
        base, fmt, static_cast<std::size_t>(s));
    EXPECT_TRUE(decode_records(slurp(path), fmt, recs)) << path;
  }
  return recs;
}

std::string stripped_metrics_json(const obs::MetricsRegistry& reg) {
  std::ostringstream os;
  obs::strip_timing_metrics(reg).write_json(os);
  return os.str();
}

std::shared_ptr<const analysis::AnalysisArtifacts> analyze_machine(
    const hv::MicrovisorOptions& opt) {
  const hv::Microvisor mv = hv::build_microvisor(opt);
  return std::make_shared<const analysis::AnalysisArtifacts>(
      analysis::analyze_program(mv.program, hv::analyze_options(mv)));
}

/// Fresh scratch directory per test; removed on teardown.
class ResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "resume_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  CampaignConfig make_cfg(const std::string& tag, int shards, bool importance,
                          obs::RecordFormat fmt = obs::RecordFormat::kJsonl) {
    CampaignConfig cfg;
    cfg.injections = 240;
    cfg.seed = 31;
    cfg.shards = shards;
    cfg.xentry.transition_detection = false;  // no model installed
    cfg.obs.metrics = true;  // tracing/flight recorder stay off: their
                             // payloads are not resume-stable
    cfg.streaming.records_path = dir_ + "/" + tag;
    cfg.streaming.records_format = fmt;
    cfg.streaming.checkpoint_path = dir_ + "/" + tag + ".ckpt";
    cfg.streaming.checkpoint_every = 16;
    if (importance) {
      cfg.analysis = analyze_machine(cfg.machine);
      cfg.sampling.importance = true;
    }
    return cfg;
  }

  std::string dir_;
};

void expect_resume_matches_reference(CampaignConfig ref_cfg,
                                     CampaignConfig victim_cfg,
                                     int abort_after) {
  const auto ref = run_campaign(ref_cfg);
  EXPECT_FALSE(ref.resumed);
  const auto ref_stream =
      decode_stream(ref_cfg.streaming.records_path,
                    ref_cfg.streaming.records_format, ref_cfg.shards);
  ASSERT_EQ(ref_stream.size(), ref.records.size());
  const std::uint64_t want_digest = records_digest(ref.records);
  ASSERT_EQ(records_digest(ref_stream), want_digest);

  victim_cfg.streaming.abort_after = abort_after;
  const auto victim = run_campaign(victim_cfg);
  EXPECT_LT(victim.records_streamed, ref.records_streamed)
      << "the abort hook should have cut the campaign short";

  victim_cfg.streaming.abort_after = 0;
  const auto resumed = run_campaign(victim_cfg);
  EXPECT_TRUE(resumed.resumed);
  EXPECT_EQ(resumed.records_streamed, ref.records_streamed);

  // Byte-identical shard streams, hence identical digests.
  for (int s = 0; s < ref_cfg.shards; ++s) {
    const auto sp = static_cast<std::size_t>(s);
    EXPECT_EQ(slurp(obs::ShardedFileSink::shard_path(
                  victim_cfg.streaming.records_path,
                  victim_cfg.streaming.records_format, sp)),
              slurp(obs::ShardedFileSink::shard_path(
                  ref_cfg.streaming.records_path,
                  ref_cfg.streaming.records_format, sp)))
        << "shard " << s;
  }
  const auto resumed_stream =
      decode_stream(victim_cfg.streaming.records_path,
                    victim_cfg.streaming.records_format, victim_cfg.shards);
  EXPECT_EQ(records_digest(resumed_stream), want_digest);

  // The merged metrics are reconstructed from the sidecar prefix plus the
  // live suffix; stripped of timing they match the uninterrupted run.
  EXPECT_EQ(stripped_metrics_json(resumed.metrics),
            stripped_metrics_json(ref.metrics));
}

TEST_F(ResumeTest, KillBetweenCheckpointsSingleShard) {
  // abort_after=21 with checkpoint_every=16: the last 5 iterations were
  // never durable and must be re-executed identically.
  expect_resume_matches_reference(make_cfg("ref", 1, false),
                                  make_cfg("victim", 1, false), 21);
}

TEST_F(ResumeTest, KillExactlyAtCheckpointBoundary) {
  // The buffered suffix is empty at the kill: resume re-executes nothing
  // before the boundary and everything after it.
  expect_resume_matches_reference(make_cfg("ref", 2, false),
                                  make_cfg("victim", 2, false), 16);
}

TEST_F(ResumeTest, KillBeforeFirstCheckpointRestartsFromScratch) {
  // Journal holds only the header: every shard restarts at iteration 0,
  // truncating its streams to zero — still bit-identical at the end.
  expect_resume_matches_reference(make_cfg("ref", 2, false),
                                  make_cfg("victim", 2, false), 5);
}

TEST_F(ResumeTest, KillBetweenCheckpointsSevenShards) {
  expect_resume_matches_reference(make_cfg("ref", 7, false),
                                  make_cfg("victim", 7, false), 20);
}

TEST_F(ResumeTest, KillWithImportanceSampling) {
  // The sampler's aux RNG cursor is journaled too; a resumed importance
  // campaign must redraw the same slots with the same weights.
  expect_resume_matches_reference(make_cfg("ref", 2, true),
                                  make_cfg("victim", 2, true), 21);
}

TEST_F(ResumeTest, KillWithImportanceSamplingSevenShards) {
  expect_resume_matches_reference(make_cfg("ref", 7, true),
                                  make_cfg("victim", 7, true), 17);
}

TEST_F(ResumeTest, BinaryFormatResumesIdentically) {
  expect_resume_matches_reference(
      make_cfg("ref", 2, false, obs::RecordFormat::kBinary),
      make_cfg("victim", 2, false, obs::RecordFormat::kBinary), 21);
}

TEST_F(ResumeTest, JsonlAndBinaryStreamsAreDigestEquivalent) {
  auto jcfg = make_cfg("jsonl_run", 2, false, obs::RecordFormat::kJsonl);
  auto bcfg = make_cfg("bin_run", 2, false, obs::RecordFormat::kBinary);
  const auto a = run_campaign(jcfg);
  const auto b = run_campaign(bcfg);
  const auto ja = decode_stream(jcfg.streaming.records_path,
                                obs::RecordFormat::kJsonl, 2);
  const auto jb = decode_stream(bcfg.streaming.records_path,
                                obs::RecordFormat::kBinary, 2);
  ASSERT_EQ(ja.size(), jb.size());
  EXPECT_EQ(records_digest(ja), records_digest(jb));
  EXPECT_EQ(records_digest(ja), records_digest(a.records));
  EXPECT_EQ(records_digest(jb), records_digest(b.records));
}

TEST_F(ResumeTest, StreamingWithoutCheckpointMatchesInMemoryRecords) {
  auto cfg = make_cfg("plain", 3, false);
  cfg.streaming.checkpoint_path.clear();
  const auto res = run_campaign(cfg);
  const auto stream =
      decode_stream(cfg.streaming.records_path, obs::RecordFormat::kJsonl, 3);
  ASSERT_EQ(stream.size(), res.records.size());
  EXPECT_EQ(records_digest(stream), records_digest(res.records));
  EXPECT_EQ(res.records_streamed, stream.size());
  // Sink accounting reached the metrics registry.
  ASSERT_NE(res.metrics.find_counter("obs.sink.appends"), nullptr);
  EXPECT_EQ(res.metrics.find_counter("obs.sink.appends")->value(),
            res.records_streamed);
}

TEST_F(ResumeTest, KeepRecordsOffStreamsWithoutAccumulating) {
  auto keep = make_cfg("keep", 2, false);
  auto drop = make_cfg("drop", 2, false);
  drop.streaming.keep_records = false;
  const auto a = run_campaign(keep);
  const auto b = run_campaign(drop);
  EXPECT_TRUE(b.records.empty());
  EXPECT_EQ(b.records_streamed, a.records_streamed);
  const auto stream =
      decode_stream(drop.streaming.records_path, obs::RecordFormat::kJsonl, 2);
  EXPECT_EQ(records_digest(stream), records_digest(a.records));
}

TEST_F(ResumeTest, ResumeUnderDifferentConfigIsRejected) {
  auto victim = make_cfg("victim", 2, false);
  victim.streaming.abort_after = 20;
  run_campaign(victim);

  auto other = victim;
  other.streaming.abort_after = 0;
  other.seed = 77;  // same journal path, different campaign identity
  EXPECT_THROW(run_campaign(other), std::invalid_argument);

  auto reshard = victim;
  reshard.streaming.abort_after = 0;
  reshard.shards = 3;
  EXPECT_THROW(run_campaign(reshard), std::invalid_argument);
}

TEST_F(ResumeTest, JournalRoundTripsShardState) {
  auto cfg = make_cfg("journal", 2, false);
  run_campaign(cfg);
  const JournalContents j = read_journal(cfg.streaming.checkpoint_path);
  ASSERT_TRUE(j.valid);
  EXPECT_EQ(j.header.seed, 31u);
  EXPECT_EQ(j.header.injections, 240);
  EXPECT_EQ(j.header.shards, 2);
  EXPECT_EQ(j.header.checkpoint_every, 16);
  ASSERT_EQ(j.shards.size(), 2u);
  std::uint64_t records = 0;
  for (int s = 0; s < 2; ++s) {
    ASSERT_TRUE(j.shards[s].has_value()) << s;
    const ShardCheckpoint& ck = *j.shards[s];
    EXPECT_EQ(ck.shard, s);
    EXPECT_GT(ck.iterations, 0u);
    EXPECT_FALSE(ck.main_rng.empty());
    EXPECT_FALSE(ck.gen_rng.empty());
    EXPECT_TRUE(ck.aux_rng.empty());  // uniform sampling: no aux stream
    EXPECT_FALSE(ck.memory.empty());
    records += ck.records_written;
    // The final checkpoint's sink offset covers the whole shard file.
    const std::string path = obs::ShardedFileSink::shard_path(
        cfg.streaming.records_path, obs::RecordFormat::kJsonl,
        static_cast<std::size_t>(s));
    EXPECT_EQ(ck.sink_offset, std::filesystem::file_size(path));
  }
  // Final checkpoints land at the quota: every record is journaled.
  const auto stream =
      decode_stream(cfg.streaming.records_path, obs::RecordFormat::kJsonl, 2);
  EXPECT_EQ(records, stream.size());
}

TEST_F(ResumeTest, StreamingConfigValidation) {
  const auto valid = [this] { return make_cfg("v", 1, false); };
  EXPECT_NO_THROW(validate_campaign_config(valid()));

  auto c = valid();
  c.streaming.checkpoint_path = dir_ + "/c.ckpt";
  c.streaming.records_path.clear();  // checkpoint needs a record stream
  EXPECT_THROW(validate_campaign_config(c), std::invalid_argument);

  c = valid();
  c.streaming.checkpoint_every = 0;
  EXPECT_THROW(validate_campaign_config(c), std::invalid_argument);

  c = valid();
  c.streaming.abort_after = -1;
  EXPECT_THROW(validate_campaign_config(c), std::invalid_argument);

  c = valid();
  c.streaming.sink_buffer_bytes = 0;
  EXPECT_THROW(validate_campaign_config(c), std::invalid_argument);

  c = valid();
  c.streaming.records_path.clear();
  c.streaming.checkpoint_path.clear();
  c.streaming.keep_records = false;  // would discard every record
  EXPECT_THROW(validate_campaign_config(c), std::invalid_argument);

  // The dataset accumulator is not journaled: checkpointing + dataset
  // collection is an up-front error, not a silent wrong resume.
  c = valid();
  c.xentry.transition_detection = false;
  c.collect_dataset = true;
  EXPECT_THROW(validate_campaign_config(c), std::invalid_argument);
}

}  // namespace
}  // namespace xentry::fault
