// Bagged ensemble of RandomTrees (majority vote).
//
// An extension beyond the paper's single RandomTree: the paper's future
// work asks for lower false-positive rates, and bagging is the natural
// low-cost step — each tree is still integer-compare-only, so a small
// forest remains cheap enough for the VM-entry hot path.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/decision_tree.hpp"

namespace xentry::ml {

class RandomForest {
 public:
  struct Params {
    int num_trees = 15;
    TreeParams tree;  ///< random_features filled from the dataset if 0
    std::uint64_t seed = 1;
  };

  void train(const Dataset& data, const Params& params);

  /// Majority vote across trees; ties go to Incorrect (fail-safe: a
  /// suspicious VM entry is worth a cheap re-execution).
  Label predict(std::span<const std::int64_t> features,
                int* comparisons = nullptr) const;

  bool trained() const { return !trees_.empty(); }
  const std::vector<DecisionTree>& trees() const { return trees_; }

 private:
  std::vector<DecisionTree> trees_;
};

}  // namespace xentry::ml
