#include "xentry/recovery_engine.hpp"

#include <stdexcept>

namespace xentry {

namespace L = hv::layout;

std::vector<sim::Word> RecoveryEngine::copy_region(sim::Addr base,
                                                   sim::Addr size) const {
  std::vector<sim::Word> out;
  out.reserve(size);
  for (sim::Addr a = base; a < base + size; ++a) {
    out.push_back(machine_->memory().peek(a));
  }
  return out;
}

void RecoveryEngine::restore_region(sim::Addr base,
                                    const std::vector<sim::Word>& words) {
  for (std::size_t i = 0; i < words.size(); ++i) {
    machine_->memory().poke(base + i, words[i]);
  }
}

void RecoveryEngine::checkpoint(const hv::Activation& activation) {
  Checkpoint cp;
  cp.activation = activation;
  cp.hv_data = copy_region(L::kHvDataBase, L::kHvDataSize);
  cp.domains = copy_region(
      L::kDomainBase,
      static_cast<sim::Addr>(machine_->num_domains()) * L::kDomainStride);
  cp.vcpus = copy_region(
      L::kVcpuBase,
      static_cast<sim::Addr>(machine_->num_vcpus() + 1) * L::kVcpuStride);
  cp.tsc = machine_->cpu().tsc();
  checkpoint_ = std::move(cp);
  ++stats_.checkpoints;
}

std::size_t RecoveryEngine::checkpoint_words() const {
  if (!checkpoint_) return 0;
  return checkpoint_->hv_data.size() + checkpoint_->domains.size() +
         checkpoint_->vcpus.size();
}

hv::RunResult RecoveryEngine::recover() {
  if (!checkpoint_) {
    throw std::logic_error("RecoveryEngine::recover: no checkpoint");
  }
  restore_region(L::kHvDataBase, checkpoint_->hv_data);
  restore_region(L::kDomainBase, checkpoint_->domains);
  restore_region(L::kVcpuBase, checkpoint_->vcpus);
  machine_->cpu().set_tsc(checkpoint_->tsc);
  ++stats_.recoveries;
  hv::RunResult res = machine_->run(checkpoint_->activation);
  stats_.clean_reruns += res.reached_vm_entry ? 1 : 0;
  return res;
}

}  // namespace xentry
