#include "obs/atomic_file.hpp"

#include <cstdio>

#include <unistd.h>

namespace xentry::obs {

bool write_file_atomic(const std::string& path, std::string_view content) {
  // The pid suffix keeps concurrent writers of *different* targets in the
  // same directory from clobbering each other's temp files; two writers
  // of the same target still converge to one of the two contents intact.
  std::string tmp = path;
  tmp += ".tmp.";
  tmp += std::to_string(::getpid());
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote =
      (content.empty() ||
       std::fwrite(content.data(), 1, content.size(), f) == content.size()) &&
      std::fflush(f) == 0;
  if (std::fclose(f) != 0 || !wrote) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace xentry::obs
