#include "analysis/superblocks.hpp"

#include <stdexcept>

#include "sim/jit/code_cache.hpp"
#include "sim/program.hpp"

namespace xentry::analysis {

std::vector<sim::jit::Superblock> form_superblocks(
    const ControlFlowGraph& cfg, const sim::Program& program) {
  if (cfg.base != program.base() || cfg.code_size != program.size()) {
    throw std::invalid_argument(
        "form_superblocks: CFG does not describe this program (stale "
        "base/size) — rebuild the analysis artifacts");
  }
  const std::size_t n = program.size();
  std::vector<sim::jit::Superblock> out;
  if (n == 0) return out;

  const sim::Addr base = program.base();
  const auto op_at = [&](std::size_t off) { return program.at(base + off).op; };

  // Candidate superblock tops: every CFG block leader, plus each Ud
  // padding slot (padding forms no CFG block but still needs a stream
  // slot so corrupted control flow landing there faults correctly).
  std::vector<bool> start(n, false);
  start[0] = true;
  for (const BasicBlock& b : cfg.blocks) start[b.first - base] = true;
  for (std::size_t i = 0; i < n; ++i) {
    if (op_at(i) == sim::Opcode::Ud) start[i] = true;
  }
  // Glue: a candidate only stays a boundary when the preceding op cannot
  // fall into it.  This merges plain landing-site splits, conditional
  // branches' fall-through seams, and padding reachable by fall-through —
  // yielding maximal fall-through runs, the invariant jit::compile
  // re-validates.
  for (std::size_t i = 1; i < n; ++i) {
    if (start[i] && sim::jit::can_fall_through(op_at(i - 1))) start[i] = false;
  }

  for (std::size_t first = 0; first < n;) {
    std::size_t last = first;
    while (last + 1 < n && !start[last + 1]) ++last;
    out.push_back(sim::jit::Superblock{static_cast<std::uint32_t>(first),
                                       static_cast<std::uint32_t>(last)});
    first = last + 1;
  }
  return out;
}

std::shared_ptr<const sim::jit::CompiledProgram> compile_threaded(
    const AnalysisArtifacts& artifacts) {
  auto& cache = sim::jit::CodeCache::instance();
  if (auto hit = cache.find(artifacts.signature)) return hit;
  return cache.insert(sim::jit::compile(
      artifacts.program, form_superblocks(artifacts.cfg, artifacts.program)));
}

}  // namespace xentry::analysis
