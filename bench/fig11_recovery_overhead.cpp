// Fig. 11: fault-free overhead of the assumed light-weight recovery with
// false-positive cases (Section VI).
//
// Methodology mirrors the paper: collect a trace of hypervisor execution
// durations per application, copy critical data at every VM exit
// (~1,900 ns measured on the Xeon E5506), draw false positives at the
// classifier's measured rate (0.7%) which restore + re-execute the
// activation, repeat the draw 100 times per application.
//
// Paper anchors: avg 2.7%; mcf and bzip2 ~1.6%; postmark highest at 6.3%;
// max-min spread per application below 0.03%.
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "workloads/workload.hpp"
#include "xentry/recovery.hpp"

int main() {
  using namespace xentry;
  bench::print_header("Fig. 11: recovery overhead with false positives");

  hv::Machine machine;
  RecoveryParams params;  // 1,900 ns copy, 0.7% FP, 2.13 GHz
  const int trials = 100;
  const double window_s = 1.0;
  const double ns_per_cycle = 1e9 / (params.cpu_ghz * 1e9) * 1.0;

  std::printf("%-10s %10s %12s %9s %9s %9s\n", "benchmark", "rate(/s)",
              "mean_ns/act", "mean %", "min %", "max %");
  double sum = 0;
  for (wl::Benchmark b : wl::all_benchmarks()) {
    const wl::WorkloadProfile prof = wl::profile(b, wl::VirtMode::Para);
    wl::WorkloadGenerator gen(machine, prof,
                              55 + static_cast<std::uint64_t>(b));
    // Mean activation duration (cycles == instructions) over the mix.
    const int probes = bench::scaled(1500);
    double cycles = 0;
    for (int i = 0; i < probes; ++i) {
      cycles += static_cast<double>(machine.run(gen.next()).steps);
    }
    const double mean_ns =
        cycles / probes * ns_per_cycle * prof.disturbance;
    // Fig. 3's activation rates are machine-wide across the four guest
    // VMs; recovery overhead is experienced per VM, so each VM sees a
    // quarter of the stream.
    const double rate = prof.rate_median / 4.0;
    // One second of hypervisor executions at the benchmark's median rate.
    const auto n = static_cast<std::size_t>(rate * window_s);
    std::vector<double> activations(n, mean_ns);
    const RecoveryOverhead o = estimate_recovery_overhead(
        params, activations, window_s * 1e9, trials,
        911 + static_cast<std::uint64_t>(b));
    std::printf("%-10s %10.0f %12.0f %8.2f%% %8.2f%% %8.2f%%\n",
                std::string(wl::benchmark_name(b)).c_str(), rate, mean_ns,
                100 * o.mean, 100 * o.min, 100 * o.max);
    sum += o.mean;
  }
  std::printf("%-10s %41.2f%%\n", "AVG", 100 * sum / 6);
  std::printf(
      "\npaper anchors: avg 2.7%%; mcf/bzip2 ~1.6%%; postmark 6.3%%;\n"
      "per-app max-min spread < 0.03%%.\n");
  return 0;
}
