#include "hv/microvisor.hpp"

#include <gtest/gtest.h>

#include "hv/layout.hpp"

namespace xentry::hv {
namespace {

TEST(MicrovisorTest, BuildsAndHasAllHandlerSymbols) {
  Microvisor mv = build_microvisor();
  for (const ExitReason& r : all_exit_reasons()) {
    const std::string sym(handler_symbol(r));
    EXPECT_TRUE(mv.program.has_symbol(sym)) << sym;
    EXPECT_TRUE(mv.program.has_symbol(sym + "_body")) << sym;
  }
  // Shared subroutines.
  for (const char* s :
       {"ret_to_guest", "evtchn_set_pending", "runq_insert", "update_time",
        "schedule", "sched_block", "inject_guest_event", "do_softirq_work",
        "do_tasklet_work"}) {
    EXPECT_TRUE(mv.program.has_symbol(s)) << s;
  }
}

TEST(MicrovisorTest, EntryResolvesEveryReason) {
  Microvisor mv = build_microvisor();
  for (const ExitReason& r : all_exit_reasons()) {
    const sim::Addr e = mv.entry(r);
    EXPECT_TRUE(mv.program.contains(e));
  }
}

TEST(MicrovisorTest, AssertionFreeBuildHasNoAssertOpcodes) {
  MicrovisorOptions opt;
  opt.assertions = false;
  Microvisor mv = build_microvisor(opt);
  for (sim::Addr a = mv.program.base(); a < mv.program.end(); ++a) {
    EXPECT_FALSE(sim::is_assertion(mv.program.at(a).op))
        << "assertion at " << a;
  }
}

TEST(MicrovisorTest, AssertingBuildContainsPaperListings) {
  Microvisor mv = build_microvisor();
  bool saw_trap_vector = false, saw_idle_vcpu = false;
  for (sim::Addr a = mv.program.base(); a < mv.program.end(); ++a) {
    const sim::Instruction& insn = mv.program.at(a);
    if (!sim::is_assertion(insn.op)) continue;
    if (insn.aux == kAssertTrapVector) saw_trap_vector = true;
    if (insn.aux == kAssertIdleVcpu) saw_idle_vcpu = true;
  }
  EXPECT_TRUE(saw_trap_vector);  // Listing 1
  EXPECT_TRUE(saw_idle_vcpu);    // Listing 2
}

TEST(MicrovisorTest, StaticFootprintIsThin) {
  // Section IV: Xentry is ~2,000 lines — a thin layer.  Our whole
  // microvisor text should stay small too (well under the paper's nested
  // virtualization comparison point).
  Microvisor mv = build_microvisor();
  EXPECT_GT(mv.program.size(), 1000u);   // it is a real hypervisor...
  EXPECT_LT(mv.program.size(), 10000u);  // ...but a miniature one
}

TEST(MicrovisorTest, HypercallBodyTableMarksSafeSubset) {
  Microvisor mv = build_microvisor();
  const auto table = mv.hypercall_body_table();
  ASSERT_EQ(table.size(), static_cast<std::size_t>(kNumHypercalls));
  int populated = 0;
  for (sim::Addr a : table) {
    if (a != 0) {
      ++populated;
      EXPECT_TRUE(mv.program.contains(a));
    }
  }
  EXPECT_EQ(populated, 4);
}

TEST(MicrovisorTest, RejectsBadOptions) {
  MicrovisorOptions opt;
  opt.num_domains = 0;
  EXPECT_THROW(build_microvisor(opt), std::invalid_argument);
  opt.num_domains = 100;
  EXPECT_THROW(build_microvisor(opt), std::invalid_argument);
  opt.num_domains = 4;
  opt.vcpus_per_domain = 8;  // 32 + idle > kMaxVcpus
  EXPECT_THROW(build_microvisor(opt), std::invalid_argument);
}

TEST(MicrovisorTest, ExitReasonCodesAreUniqueAndStable) {
  std::set<int> codes;
  for (const ExitReason& r : all_exit_reasons()) {
    EXPECT_TRUE(codes.insert(r.code()).second) << r.code();
  }
  EXPECT_EQ(ExitReason::hypercall(Hypercall::sched_op).code(), 28);
  EXPECT_EQ(ExitReason::exception(GuestException::page_fault).code(), 114);
  EXPECT_EQ(ExitReason::apic(ApicInterrupt::timer).code(), 200);
  EXPECT_EQ(ExitReason::irq(3).code(), 303);
  EXPECT_EQ(ExitReason::softirq().code(), 400);
}

TEST(MicrovisorTest, AssertNamesAreDistinct) {
  std::set<std::string> names;
  for (std::uint32_t id = kAssertTrapVector; id < kAssertMaxId; ++id) {
    EXPECT_TRUE(names.insert(assert_name(id)).second) << id;
  }
}

}  // namespace
}  // namespace xentry::hv
