// Labelled integer-feature dataset for the VM-transition classifier.
//
// Every sample is one hypervisor execution described by the paper's five
// features (Table I): VM exit reason, retired instructions, branches,
// memory loads, memory stores — all integers, which is what makes the
// decision-tree classifier implementable in the hypervisor "as a set of
// simple integer comparisons" (Section III-B).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <random>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace xentry::ml {

/// Binary classification labels, matching the paper's terminology.
enum class Label : std::uint8_t {
  Correct = 0,    ///< fault-free (or indistinguishable) execution
  Incorrect = 1,  ///< incorrect control flow caused by a soft error
};

class Dataset {
 public:
  explicit Dataset(std::vector<std::string> feature_names);

  std::size_t num_features() const { return feature_names_.size(); }
  std::size_t size() const { return labels_.size(); }
  bool empty() const { return labels_.empty(); }
  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }

  /// Appends one sample.  `features.size()` must equal num_features().
  void add(std::span<const std::int64_t> features, Label label);

  /// Appends every row of `other` in order.  The feature schemas must be
  /// identical (same names, same order).  One bulk splice per underlying
  /// buffer — this is how campaign shard results merge.
  void append(const Dataset& other);

  /// Grows the underlying buffers to hold `rows` total rows without
  /// reallocating on the way there.
  void reserve(std::size_t rows);

  std::int64_t value(std::size_t row, std::size_t col) const {
    return values_[row * num_features() + col];
  }
  std::span<const std::int64_t> row(std::size_t r) const {
    return {values_.data() + r * num_features(), num_features()};
  }
  Label label(std::size_t row) const { return labels_[row]; }

  std::size_t count(Label l) const;

  /// Deterministic shuffled split into (train, test) with `train_fraction`
  /// of rows in the first part.
  std::pair<Dataset, Dataset> split(double train_fraction,
                                    std::uint64_t seed) const;

  /// Bootstrap sample of the same size (sampling with replacement), for
  /// bagged ensembles.
  Dataset bootstrap(std::mt19937_64& rng) const;

  /// CSV round-trip: header is feature names + "label".
  void save_csv(std::ostream& os) const;
  static Dataset load_csv(std::istream& is);

 private:
  std::vector<std::string> feature_names_;
  std::vector<std::int64_t> values_;  // row-major
  std::vector<Label> labels_;
};

}  // namespace xentry::ml
