file(REMOVE_RECURSE
  "CMakeFiles/xentry_hv.dir/exit_reason.cpp.o"
  "CMakeFiles/xentry_hv.dir/exit_reason.cpp.o.d"
  "CMakeFiles/xentry_hv.dir/layout.cpp.o"
  "CMakeFiles/xentry_hv.dir/layout.cpp.o.d"
  "CMakeFiles/xentry_hv.dir/machine.cpp.o"
  "CMakeFiles/xentry_hv.dir/machine.cpp.o.d"
  "CMakeFiles/xentry_hv.dir/microvisor.cpp.o"
  "CMakeFiles/xentry_hv.dir/microvisor.cpp.o.d"
  "libxentry_hv.a"
  "libxentry_hv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xentry_hv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
