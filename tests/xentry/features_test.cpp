#include "xentry/features.hpp"

#include <gtest/gtest.h>

namespace xentry {
namespace {

TEST(FeaturesTest, FromCountersAndReason) {
  sim::PerfSnapshot s{100, 20, 30, 40};
  FeatureVector f = FeatureVector::from(
      hv::ExitReason::hypercall(hv::Hypercall::sched_op), s);
  EXPECT_EQ(f.vmer, 28);
  EXPECT_EQ(f.rt, 100);
  EXPECT_EQ(f.br, 20);
  EXPECT_EQ(f.rm, 30);
  EXPECT_EQ(f.wm, 40);
}

TEST(FeaturesTest, AsArrayOrderMatchesTableOne) {
  FeatureVector f{1, 2, 3, 4, 5};
  auto a = f.as_array();
  EXPECT_EQ(a[0], 1);  // VMER
  EXPECT_EQ(a[1], 2);  // RT
  EXPECT_EQ(a[2], 3);  // BR
  EXPECT_EQ(a[3], 4);  // RM
  EXPECT_EQ(a[4], 5);  // WM
  ASSERT_EQ(feature_names().size(), static_cast<std::size_t>(kNumFeatures));
  EXPECT_EQ(feature_names()[0], "VMER");
  EXPECT_EQ(feature_names()[4], "WM");
}

TEST(FeaturesTest, Equality) {
  FeatureVector a{1, 2, 3, 4, 5};
  FeatureVector b{1, 2, 3, 4, 5};
  FeatureVector c{1, 2, 3, 4, 6};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace xentry
