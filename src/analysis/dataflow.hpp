// Dataflow analyses over the basic-block CFG: reachability, dominators,
// per-block signed-interval register analysis, and per-function stack
// depth balance.
//
// The interval domain is the classic signed-int64 lattice.  Values are
// seeded from MovRI immediates, narrowed by ALU transfer functions and
// by Cmp/Test-guarded branch edges, and widened to the respective
// infinity after a bounded number of lattice ascents so loops terminate.
// Soundness contract: every interval fact must hold on ANY fault-free
// execution — the runtime detector treats a violated derived range as
// evidence of corruption, so a transfer function that cannot prove a
// bound must return top, never guess.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "analysis/cfg.hpp"

namespace xentry::analysis {

struct Interval {
  static constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  static constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();

  std::int64_t lo = kMin;
  std::int64_t hi = kMax;

  static Interval top() { return {kMin, kMax}; }
  static Interval exact(std::int64_t v) { return {v, v}; }
  bool is_top() const { return lo == kMin && hi == kMax; }
  bool is_empty() const { return lo > hi; }
  bool contains(std::int64_t v) const { return v >= lo && v <= hi; }

  friend bool operator==(const Interval& a, const Interval& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
};

Interval interval_join(const Interval& a, const Interval& b);
Interval interval_meet(const Interval& a, const Interval& b);
/// Saturating-to-top interval addition (top on potential i64 overflow,
/// matching the wrapping machine arithmetic conservatively).
Interval interval_add(const Interval& a, const Interval& b);
Interval interval_sub(const Interval& a, const Interval& b);

/// Register state at a program point: one interval per GPR (rip/rflags
/// are not tracked).
using RegState = std::array<Interval, sim::kNumGprs>;

/// Applies one instruction's effect to `state`.  Never traps: assertion
/// opcodes refine along their non-trapping path (the only path that
/// reaches the next instruction).
void apply_instruction(const sim::Instruction& insn, RegState& state);

/// Sentinel for "stack depth not statically known at this block".
inline constexpr std::int32_t kDepthUnknown =
    std::numeric_limits<std::int32_t>::min();

struct StackWarning {
  sim::Addr addr = 0;
  std::int32_t depth = 0;  ///< local frame depth where the conflict hit
  std::string what;
};

struct BlockFacts {
  bool reachable = false;
  /// Immediate dominator block index; kNoBlock for roots (dominated only
  /// by the virtual entry) and unreachable blocks.
  std::uint32_t idom = kNoBlock;
  /// Local frame depth (words pushed minus popped since function entry)
  /// on entry to the block; kDepthUnknown when not statically known.
  std::int32_t stack_in = kDepthUnknown;
  /// Interval analysis reached this block (in_state below is meaningful).
  bool in_valid = false;
};

struct DataflowResult {
  std::vector<BlockFacts> facts;      ///< parallel to cfg.blocks
  std::vector<RegState> in_state;     ///< register intervals at block entry
  std::vector<StackWarning> stack_warnings;
};

DataflowResult run_dataflow(const sim::Program& program,
                            const ControlFlowGraph& cfg);

}  // namespace xentry::analysis
