file(REMOVE_RECURSE
  "libxentry_sim.a"
)
