// Anatomy of a soft error: reproduces the paper's Fig. 5 scenarios on the
// live system and shows exactly what each detection technique sees.
//
//   $ ./fault_anatomy
//
// (a) a fault in a loop counter adds extra dynamic instructions;
// (b) a fault in a compared register takes a valid-but-wrong branch;
// (c) a fault in a pointer register raises a fatal hardware exception.
// For each: the golden vs faulted control-flow traces, the perf-counter
// signatures, and the persistent-state diff with semantic classes.
#include <cstdio>

#include "fault/campaign.hpp"
#include "fault/training.hpp"
#include "hv/machine.hpp"
#include "xentry/framework.hpp"

using namespace xentry;

namespace {

void show_case(const char* title, hv::Machine& golden, hv::Machine& faulty,
               Xentry& xentry, const hv::Activation& act,
               const hv::Injection& inj) {
  std::printf("--- %s ---\n", title);
  std::printf("handler: %s, flip %s bit %d at dynamic instruction %lu\n",
              std::string(hv::handler_symbol(act.reason)).c_str(),
              std::string(sim::reg_name(inj.reg)).c_str(), inj.bit,
              (unsigned long)inj.at_step);

  fault::InjectionExperiment exp(golden, faulty, xentry);
  const auto probe = exp.probe_golden(act);
  const auto result = exp.run_one(act, inj);
  const auto& rec = result.record;

  std::printf("golden:  %lu instructions\n", (unsigned long)probe.steps);
  if (rec.trap != sim::TrapKind::None) {
    std::printf("faulted: trapped with %s\n",
                std::string(sim::trap_name(rec.trap)).c_str());
  } else {
    std::printf("faulted: %s, trace %s\n",
                rec.activated ? "reached VM entry" : "fault never activated",
                rec.trace_diverged ? "DIVERGED" : "identical");
  }
  std::printf("features (golden):  VMER=%ld RT=%ld BR=%ld RM=%ld WM=%ld\n",
              (long)result.golden_features.vmer,
              (long)result.golden_features.rt,
              (long)result.golden_features.br,
              (long)result.golden_features.rm,
              (long)result.golden_features.wm);
  std::printf("features (faulted): VMER=%ld RT=%ld BR=%ld RM=%ld WM=%ld\n",
              (long)rec.features.vmer, (long)rec.features.rt,
              (long)rec.features.br, (long)rec.features.rm,
              (long)rec.features.wm);
  std::printf("consequence: %s; %s",
              std::string(fault::consequence_name(rec.consequence)).c_str(),
              rec.detected ? "DETECTED by " : "undetected");
  if (rec.detected) {
    std::printf("%s after %lu instructions",
                std::string(technique_name(rec.technique)).c_str(),
                (unsigned long)rec.latency);
  }
  std::printf("\n\n");
  // Re-align for the next case.
  faulty.restore(golden.snapshot());
}

}  // namespace

int main() {
  hv::Machine golden, faulty;
  Xentry xentry;
  {
    // A quick training campaign so VM transition detection is live.
    std::printf("training a transition model (quick campaign)...\n\n");
    fault::CampaignConfig cfg;
    cfg.injections = 12000;
    cfg.seed = 77;
    cfg.collect_dataset = true;
    xentry.set_model(
        fault::train_detector(fault::run_campaign(cfg).dataset).rules);
  }

  // (a) Fig. 5a — corrupt the batch count consumed by mmu_update's copy
  // loop: extra iterations, more retired instructions and stores.
  {
    hv::Activation act = golden.make_activation(
        hv::ExitReason::hypercall(hv::Hypercall::mmu_update), 21, 1);
    act.arg1 = 4;  // four-entry batch
    // rdi (the count) is read by the loop-bound compare each iteration.
    show_case("(a) extra code: corrupted loop counter", golden, faulty,
              xentry, act, hv::Injection{6, sim::Reg::rdi, 5});
  }

  // (b) Fig. 5b — corrupt the register a dispatch compare tests: the
  // branch goes to a valid but incorrect target (yield instead of poll).
  {
    hv::Activation act;
    act.reason = hv::ExitReason::hypercall(hv::Hypercall::sched_op);
    act.arg1 = 0;  // yield
    act.arg2 = 2;  // port
    act.vcpu = 1;
    act.seed = 5;
    // rdi selects the sub-operation; a single-bit flip turns a yield
    // into a block: a perfectly valid path the guest never asked for.
    show_case("(b) incorrect branch target: corrupted compare operand",
              golden, faulty, xentry, act, hv::Injection{1, sim::Reg::rdi, 0});
  }

  // (c) a pointer flip: the classic fatal page fault.
  {
    hv::Activation act = golden.make_activation(
        hv::ExitReason::hypercall(hv::Hypercall::console_io), 8, 2);
    // rbp is the hypervisor-data base pointer, dereferenced constantly;
    // a high-bit flip sends the next load into unmapped space.
    show_case("(c) fatal corruption: flipped pointer register", golden,
              faulty, xentry, act, hv::Injection{5, sim::Reg::rbp, 44});
  }
  return 0;
}
