// Campaign reporting: CSV export of raw injection records and a
// human-readable summary, so campaigns can feed external analysis (R,
// pandas, spreadsheets) and logs.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "fault/outcome.hpp"

namespace xentry::fault {

/// Writes one row per record.  Columns:
///   reason,reason_code,seed,vcpu,at_step,reg,bit,injected,activated,
///   consequence,detected,technique,latency,trap,assert_id,
///   trace_diverged,undetected_class,vmer,rt,br,rm,wm
void write_records_csv(std::ostream& os,
                       const std::vector<InjectionRecord>& records);

/// Multi-section text summary: manifestation, coverage by technique,
/// consequence histogram, undetected classes, latency percentiles.
std::string summarize(const std::vector<InjectionRecord>& records);

/// Writes one JSON object per line for every record that carries a
/// forensics payload (obs::Options::forensics): injection identity,
/// outcome names, and the nested replay evidence (first divergence, taint
/// map, attribution).  Records without forensics are skipped, so the file
/// is exactly the replayed population.
void write_forensics_jsonl(std::ostream& os,
                           const std::vector<InjectionRecord>& records);

}  // namespace xentry::fault
