// Ablation: the detection ensemble — VM transition tree, control-flow
// integrity, and timing envelopes — alone and in every combination.
//
// Eight configurations toggle the three techniques on top of the always-on
// runtime baseline (hardware exceptions + software assertions).  Every
// configuration runs the SAME injection plan (same injections/shards/seed/
// workload), so records align index-by-index across configurations and the
// unique contribution of each technique can be counted exactly, not
// estimated.  Reported per configuration:
//
//   coverage      — share of manifested errors detected (Fig. 8 quantity)
//   per-technique — how the detections split across the ensemble
//   fp_masked     — detections on records whose consequence is Masked
//                   (the learned tree may flag benign runs; CFI and the
//                   timing envelope only fire on real evidence)
//   rate          — injections per CPU-second, overhead vs `none`
//
// Two unique-contribution measurements close the bench:
//
//   timing_unique — records the tree+cfi configuration left undetected
//     but the all-three configuration caught via the timing envelope,
//     counted index-by-index over the aligned campaign streams.  Scale-
//     dependent: the responsible fault class is rare under uniform
//     random injection, so small-scale runs may legitimately report 0.
//
//   probe_unique  — a deterministic targeted probe of that fault class:
//     mid-range single-bit flips in loop-carried registers swept across
//     every handler's dynamic steps, several activation seeds and seven
//     candidate registers.  A +2^5..2^7 flip in a counted loop adds that
//     many iterations over perfectly legal back edges: CFI replays
//     nothing illegal, the gate registers end in range, and the run
//     still reaches VM entry.  The learned tree catches the gross
//     overshoots, but batch-style handlers (mmuext_op and friends)
//     legally run long, so the tree's outer feature regions are labeled
//     correct there — and a faulted run just past the static WCET lands
//     inside them.  Only the counter envelope, whose bound is exact
//     rather than learned, flags those.  Machines are reset before every
//     probe so each injection is a controlled A/B from boot state.
//     Exit status is non-zero when the probe finds no fault that
//     tree+cfi miss and the envelope catches.
//
// Usage: ablation_ensemble  (honours XENTRY_BENCH_SCALE)
#include <cstdio>
#include <ctime>
#include <map>
#include <memory>
#include <vector>

#include "bench/bench_util.hpp"
#include "hv/microvisor.hpp"

namespace {

using namespace xentry;

double cpu_seconds() {
  timespec ts;
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         1e-9 * static_cast<double>(ts.tv_nsec);
}

struct EnsembleConfig {
  const char* name;
  bool tree;
  bool cfi;
  bool timing;
};

struct EnsembleResult {
  fault::CoverageBreakdown cov;
  std::size_t fp_masked = 0;
  double rate = 0;
  std::vector<fault::InjectionRecord> records;
};

}  // namespace

int main() {
  bench::print_header("Ablation: detection ensemble (tree / CFI / timing)");

  const fault::TrainedDetector det = bench::train_paper_model();
  const int injections = bench::scaled(30000);
  const std::uint64_t seed = 202;

  fault::CampaignConfig base;
  base.injections = injections;
  base.seed = seed;
  base.workload = bench::pooled_benchmark_profile();
  const hv::Microvisor probe = hv::build_microvisor(base.machine);
  const auto artifacts = std::make_shared<const analysis::AnalysisArtifacts>(
      analysis::analyze_program(probe.program, hv::analyze_options(probe)));

  const EnsembleConfig configs[] = {
      {"none", false, false, false},
      {"tree", true, false, false},
      {"cfi", false, true, false},
      {"timing", false, false, true},
      {"tree+cfi", true, true, false},
      {"tree+timing", true, false, true},
      {"cfi+timing", false, true, true},
      {"all", true, true, true},
  };
  constexpr int kNumConfigs = 8;

  EnsembleResult results[kNumConfigs];
  for (int ci = 0; ci < kNumConfigs; ++ci) {
    const EnsembleConfig& c = configs[ci];
    fault::CampaignConfig cfg = base;
    cfg.xentry.transition_detection = c.tree;
    cfg.xentry.control_flow_detection = c.cfi;
    cfg.xentry.timing_detection = c.timing;
    if (c.tree) cfg.model = det.rules;
    if (c.cfi || c.timing) cfg.analysis = artifacts;
    const double t0 = cpu_seconds();
    fault::CampaignResult res = fault::run_campaign(cfg);
    const double elapsed = cpu_seconds() - t0;
    EnsembleResult& out = results[ci];
    out.cov = fault::coverage_breakdown(res.records);
    for (const fault::InjectionRecord& r : res.records) {
      if (r.detected && r.consequence == fault::Consequence::Masked) {
        ++out.fp_masked;
      }
    }
    out.rate = static_cast<double>(res.records.size()) / elapsed;
    out.records = std::move(res.records);
  }

  std::printf("%-12s %9s | %6s %6s %6s %6s %6s | %9s %9s\n", "config",
              "coverage", "hw+sw", "tree", "cfi", "timing", "undet",
              "fp_masked", "overhead");
  for (int ci = 0; ci < kNumConfigs; ++ci) {
    const EnsembleResult& r = results[ci];
    const double overhead = 1.0 - r.rate / results[0].rate;
    std::printf(
        "%-12s %8.1f%% | %5.1f%% %5.1f%% %5.1f%% %5.1f%% %5.1f%% | %9zu "
        "%8.1f%%\n",
        configs[ci].name, 100 * r.cov.coverage(),
        100 * r.cov.share(r.cov.hw_exception + r.cov.sw_assertion),
        100 * r.cov.share(r.cov.vm_transition),
        100 * r.cov.share(r.cov.control_flow), 100 * r.cov.share(r.cov.timing),
        100 * r.cov.share(r.cov.undetected), r.fp_masked, 100 * overhead);
  }

  // Unique contribution: faults the tree+cfi pair missed that the timing
  // envelope catches.  Records align by index (identical injection plan),
  // so this is an exact per-fault comparison, not a rate difference.
  const std::vector<fault::InjectionRecord>& pair = results[4].records;
  const std::vector<fault::InjectionRecord>& all = results[7].records;
  std::size_t timing_unique = 0;
  std::map<fault::Consequence, std::size_t> unique_by_consequence;
  if (pair.size() == all.size()) {
    for (std::size_t i = 0; i < all.size(); ++i) {
      if (all[i].technique != Technique::Timing) continue;
      if (pair[i].detected || !fault::is_manifested(pair[i].consequence)) {
        continue;
      }
      ++timing_unique;
      ++unique_by_consequence[all[i].consequence];
    }
  } else {
    std::fprintf(stderr,
                 "FAIL: record streams diverged in length (%zu vs %zu) — "
                 "configs no longer share one injection plan\n",
                 pair.size(), all.size());
    return 1;
  }

  std::printf("\ntiming_unique: %zu manifested campaign faults undetected "
              "by tree+cfi, caught by the timing envelope\n",
              timing_unique);
  for (const auto& [c, n] : unique_by_consequence) {
    std::printf("  %-18s %zu\n",
                std::string(fault::consequence_name(c)).c_str(), n);
  }

  // Targeted probe: the iteration-shape class, deterministically.  Two
  // Xentry stacks (tree+cfi vs all three) observe the SAME injection on
  // machines that evolve in lockstep, so every probe is a controlled
  // A/B on one fault.
  XentryConfig pair_cfg;
  pair_cfg.control_flow_detection = true;
  XentryConfig all_cfg = pair_cfg;
  all_cfg.timing_detection = true;
  Xentry pair_x(pair_cfg), all_x(all_cfg);
  pair_x.set_model(det.rules);
  all_x.set_model(det.rules);
  pair_x.set_analysis(artifacts.get());
  all_x.set_analysis(artifacts.get());
  hv::Machine pair_m(base.machine), all_m(base.machine);

  hv::Machine dry_m(base.machine);
  const sim::Reg probe_regs[] = {sim::Reg::rcx, sim::Reg::rsi, sim::Reg::rdx,
                                 sim::Reg::r10, sim::Reg::r11, sim::Reg::r12,
                                 sim::Reg::r14};
  std::size_t probes = 0, probe_unique = 0, probe_pair_hits = 0,
              probe_timing_hits = 0;
  for (const std::uint64_t pseed : {0x5eedULL, 0xbeefULL, 0x1234ULL}) {
    for (const hv::ExitReason& r : hv::all_exit_reasons()) {
      dry_m.reset();
      const hv::Activation dry_act = dry_m.make_activation(r, pseed);
      const hv::RunResult dry = dry_m.run(dry_act);
      if (!dry.reached_vm_entry) continue;
      for (const sim::Reg reg : probe_regs) {
        for (std::uint64_t step = 0; step < dry.steps; step += 5) {
          // Mid-range bits: +32..+128 loop trips — enough extra work to
          // exit the static envelope, small enough to stay inside the
          // learned tree's plausible feature range (higher bits hand the
          // fault to the tree or the watchdog, lower bits stay inside
          // the envelope).
          for (const int bit : {5, 6, 7}) {
            const hv::Injection inj{step, reg, bit};
            hv::RunOptions ro;
            ro.injection = &inj;
            pair_m.reset();
            all_m.reset();
            const hv::Activation pa_act = pair_m.make_activation(r, pseed);
            const hv::Activation aa_act = all_m.make_activation(r, pseed);
            const Observation pa = pair_x.observe(pair_m, pa_act, ro);
            const Observation aa = all_x.observe(all_m, aa_act, ro);
            ++probes;
            if (pa.detected) ++probe_pair_hits;
            if (aa.detected && aa.technique == Technique::Timing) {
              ++probe_timing_hits;
            }
            if (!pa.detected && aa.detected &&
                aa.technique == Technique::Timing) {
              ++probe_unique;
            }
          }
        }
      }
    }
  }
  std::printf("\nprobe: %zu loop-register flips; tree+cfi caught %zu, "
              "timing envelope caught %zu, uniquely %zu\n",
              probes, probe_pair_hits, probe_timing_hits, probe_unique);
  std::printf(
      "\nexpected shape: CFI owns wild-edge faults, the tree owns feature\n"
      "anomalies, and the timing envelope owns iteration-shape corruption\n"
      "that rides legal edges — the class the other two structurally miss.\n");

  if (probe_unique == 0) {
    std::fprintf(stderr,
                 "FAIL: timing envelope contributed no unique detections "
                 "over tree+cfi on the loop-counter probe\n");
    return 1;
  }
  return 0;
}
