// Hardware performance counters of one logical core.
//
// Models the four programmable events Xentry uses (paper Table I):
//   INST_RETIRED            -> inst_retired
//   BR_INST_RETIRED         -> branches
//   MEM_INST_RETIRED.LOADS  -> loads
//   MEM_INST_RETIRED.STORES -> stores
// Counters are armed at VM exit (right before the handler entry function is
// called) and disabled+read at VM entry, exactly as Section IV describes.
// Logical cores do not share counters.
#pragma once

#include <cstdint>

namespace xentry::sim {

struct PerfSnapshot {
  std::uint64_t inst_retired = 0;
  std::uint64_t branches = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;

  friend bool operator==(const PerfSnapshot&, const PerfSnapshot&) = default;
};

class PerfCounters {
 public:
  /// Clears and starts counting (the "VM exit" side).
  void arm() {
    counts_ = {};
    enabled_ = true;
  }

  /// Stops counting and returns the counts (the "VM entry" side).
  PerfSnapshot disarm() {
    enabled_ = false;
    return counts_;
  }

  bool enabled() const { return enabled_; }
  const PerfSnapshot& raw() const { return counts_; }

  /// Called by the CPU once per retired instruction.
  void on_retire(bool branch, bool load, bool store) {
    if (!enabled_) return;
    ++counts_.inst_retired;
    counts_.branches += branch ? 1 : 0;
    counts_.loads += load ? 1 : 0;
    counts_.stores += store ? 1 : 0;
  }

  /// Bulk retire from the specialized run loops, equivalent to `retired`
  /// on_retire calls with the given per-class totals.  The loops accumulate
  /// in locals and flush once at exit instead of paying the enabled check
  /// and four read-modify-writes per instruction.
  void retire_block(std::uint64_t retired, std::uint64_t branches,
                    std::uint64_t loads, std::uint64_t stores) {
    if (!enabled_) return;
    counts_.inst_retired += retired;
    counts_.branches += branches;
    counts_.loads += loads;
    counts_.stores += stores;
  }

 private:
  PerfSnapshot counts_;
  bool enabled_ = false;
};

}  // namespace xentry::sim
