// Runtime control-flow-integrity check: replays an executed instruction
// trace against the statically computed legal-edge sets and, when the
// run reached the VM-entry gate, checks the derived range assertions
// against the final register file.
//
// The trace contains retired instruction addresses only (trapping
// instructions and the Hlt itself never retire), so a legal step is
// either sequential flow inside a block or a block-terminator edge to a
// successor leader.  Anything else is a wild edge — the signature of a
// control-flow soft error that stayed inside valid code and therefore
// never raised a hardware exception.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "analysis/artifacts.hpp"
#include "sim/types.hpp"

namespace xentry::analysis {

/// "No address" sentinel for the optional entry / halt parameters.
inline constexpr sim::Addr kNoAddr = ~sim::Addr{0};

struct CfiResult {
  enum class Kind : std::uint8_t {
    None = 0,
    BadEntry,      ///< first retired instruction is not the handler entry
    WildEdge,      ///< transition outside the legal-edge sets
    DerivedRange,  ///< derived range assertion violated at the gate
  };
  Kind kind = Kind::None;
  std::uint64_t edges_checked = 0;
  std::uint64_t ranges_checked = 0;
  /// Dynamic step index of the violation: index into the trace of the
  /// offending edge's destination, or the trace length for checks at the
  /// VM-entry gate.
  std::size_t step = 0;
  sim::Addr from = 0;
  sim::Addr to = 0;
  /// DerivedRange only: which assertion fired and the observed value.
  std::uint32_t derived_id = 0;
  std::uint8_t reg = 0;
  std::int64_t value = 0;
  std::int64_t lo = 0;
  std::int64_t hi = 0;

  bool ok() const { return kind == Kind::None; }
};

/// Checks one run's retired-instruction trace.
///   expected_entry — the dispatched handler entry; kNoAddr skips the
///                    entry check.
///   hlt_addr       — rip after a run that reached the VM-entry gate
///                    (the Hlt does not retire, so it is appended here as
///                    a virtual final trace element); kNoAddr for runs
///                    that trapped or timed out.
///   final_regs     — register file at the gate; enables the derived
///                    range checks (ignored when hlt_addr is kNoAddr).
CfiResult check_trace(
    const AnalysisArtifacts& artifacts, const std::vector<sim::Addr>& trace,
    sim::Addr expected_entry, sim::Addr hlt_addr,
    const std::array<sim::Word, sim::kNumArchRegs>* final_regs);

}  // namespace xentry::analysis
