// A small two-pass assembler for the simulated ISA.
//
// The microvisor's handlers are written against this builder API; labels
// are forward-referencable and resolved at finish().  Named symbols mark
// handler entry points that the hypervisor dispatcher jumps to.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/isa.hpp"
#include "sim/program.hpp"
#include "sim/types.hpp"

namespace xentry::sim {

class Assembler {
 public:
  /// Opaque forward-referencable code location.
  struct Label {
    std::uint32_t id = 0;
  };

  explicit Assembler(Addr code_base) : base_(code_base) {}

  // -- labels & symbols ----------------------------------------------------

  Label make_label();
  /// Binds `l` to the current position.
  void bind(Label l);
  /// Binds a fresh label here and returns it.
  Label here();
  /// Marks the current position as the named function entry.
  void global(const std::string& name);
  /// Emits `n` explicitly-invalid slots (inter-function padding).
  void pad_ud(std::size_t n);

  Addr current_addr() const { return base_ + code_.size(); }

  // -- data movement ---------------------------------------------------------

  void mov(Reg d, Reg s) { emit({Opcode::MovRR, d, s, 0, 0}); }
  void movi(Reg d, std::int64_t imm) { emit({Opcode::MovRI, d, Reg::rax, imm, 0}); }
  /// Loads a code address into a register (for manual indirect calls).
  void movi(Reg d, Label l) {
    fixups_.push_back({code_.size(), l.id});
    emit({Opcode::MovRI, d, Reg::rax, 0, 0});
  }
  void load(Reg d, Reg base, std::int64_t disp = 0) {
    emit({Opcode::Load, d, base, disp, 0});
  }
  void store(Reg base, Reg s, std::int64_t disp = 0) {
    emit({Opcode::Store, base, s, disp, 0});
  }
  void push(Reg r) { emit({Opcode::Push, r, Reg::rax, 0, 0}); }
  void pop(Reg r) { emit({Opcode::Pop, r, Reg::rax, 0, 0}); }

  // -- ALU -------------------------------------------------------------------

  void add(Reg d, Reg s) { emit({Opcode::AddRR, d, s, 0, 0}); }
  void addi(Reg d, std::int64_t imm) { emit({Opcode::AddRI, d, Reg::rax, imm, 0}); }
  void sub(Reg d, Reg s) { emit({Opcode::SubRR, d, s, 0, 0}); }
  void subi(Reg d, std::int64_t imm) { emit({Opcode::SubRI, d, Reg::rax, imm, 0}); }
  void mul(Reg d, Reg s) { emit({Opcode::MulRR, d, s, 0, 0}); }
  void div(Reg s) { emit({Opcode::DivR, s, Reg::rax, 0, 0}); }
  void and_(Reg d, Reg s) { emit({Opcode::AndRR, d, s, 0, 0}); }
  void andi(Reg d, std::int64_t imm) { emit({Opcode::AndRI, d, Reg::rax, imm, 0}); }
  void or_(Reg d, Reg s) { emit({Opcode::OrRR, d, s, 0, 0}); }
  void ori(Reg d, std::int64_t imm) { emit({Opcode::OrRI, d, Reg::rax, imm, 0}); }
  void xor_(Reg d, Reg s) { emit({Opcode::XorRR, d, s, 0, 0}); }
  void xori(Reg d, std::int64_t imm) { emit({Opcode::XorRI, d, Reg::rax, imm, 0}); }
  void shli(Reg d, std::int64_t imm) { emit({Opcode::ShlRI, d, Reg::rax, imm, 0}); }
  void shri(Reg d, std::int64_t imm) { emit({Opcode::ShrRI, d, Reg::rax, imm, 0}); }
  void shl(Reg d, Reg s) { emit({Opcode::ShlRR, d, s, 0, 0}); }
  void shr(Reg d, Reg s) { emit({Opcode::ShrRR, d, s, 0, 0}); }
  void neg(Reg d) { emit({Opcode::Neg, d, Reg::rax, 0, 0}); }
  void not_(Reg d) { emit({Opcode::Not, d, Reg::rax, 0, 0}); }
  void inc(Reg d) { emit({Opcode::Inc, d, Reg::rax, 0, 0}); }
  void dec(Reg d) { emit({Opcode::Dec, d, Reg::rax, 0, 0}); }

  // -- compare / test ----------------------------------------------------------

  void cmp(Reg a, Reg b) { emit({Opcode::CmpRR, a, b, 0, 0}); }
  void cmpi(Reg a, std::int64_t imm) { emit({Opcode::CmpRI, a, Reg::rax, imm, 0}); }
  void test(Reg a, Reg b) { emit({Opcode::TestRR, a, b, 0, 0}); }
  void testi(Reg a, std::int64_t imm) { emit({Opcode::TestRI, a, Reg::rax, imm, 0}); }

  // -- control flow ------------------------------------------------------------

  void jmp(Label l) { emit_branch(Opcode::Jmp, l); }
  /// Jump to a named symbol (resolved at finish, forward references OK).
  void jmp(const std::string& sym);
  void jmp_reg(Reg r) { emit({Opcode::JmpR, r, Reg::rax, 0, 0}); }
  void je(Label l) { emit_branch(Opcode::Je, l); }
  void jne(Label l) { emit_branch(Opcode::Jne, l); }
  void jl(Label l) { emit_branch(Opcode::Jl, l); }
  void jle(Label l) { emit_branch(Opcode::Jle, l); }
  void jg(Label l) { emit_branch(Opcode::Jg, l); }
  void jge(Label l) { emit_branch(Opcode::Jge, l); }
  void jb(Label l) { emit_branch(Opcode::Jb, l); }
  void jae(Label l) { emit_branch(Opcode::Jae, l); }
  void call(Label l) { emit_branch(Opcode::Call, l); }
  void call(const std::string& sym);
  void ret() { emit({Opcode::Ret, Reg::rax, Reg::rax, 0, 0}); }

  // -- system ------------------------------------------------------------------

  void rdtsc(Reg d) { emit({Opcode::Rdtsc, d, Reg::rax, 0, 0}); }
  void hlt() { emit({Opcode::Hlt, Reg::rax, Reg::rax, 0, 0}); }
  void nop() { emit({Opcode::Nop, Reg::rax, Reg::rax, 0, 0}); }

  // -- software assertions -------------------------------------------------------

  void assert_le(Reg r, std::int64_t imm, std::uint32_t id) {
    emit({Opcode::AssertLeRI, r, Reg::rax, imm, id});
  }
  void assert_ge(Reg r, std::int64_t imm, std::uint32_t id) {
    emit({Opcode::AssertGeRI, r, Reg::rax, imm, id});
  }
  void assert_eq(Reg r, std::int64_t imm, std::uint32_t id) {
    emit({Opcode::AssertEqRI, r, Reg::rax, imm, id});
  }
  void assert_ne(Reg r, std::int64_t imm, std::uint32_t id) {
    emit({Opcode::AssertNeRI, r, Reg::rax, imm, id});
  }
  void assert_eq(Reg a, Reg b, std::uint32_t id) {
    emit({Opcode::AssertEqRR, a, b, 0, id});
  }
  void assert_lt(Reg a, Reg b, std::uint32_t id) {
    emit({Opcode::AssertLtRR, a, b, 0, id});
  }

  /// Emits a pre-built instruction verbatim (no label resolution).  For
  /// tooling and tests that need malformed or hand-crafted encodings.
  void emit_raw(Instruction insn) { emit(insn); }

  /// Resolves all label fixups and produces the final Program.  The
  /// assembler must not be reused afterwards.
  Program finish();

  std::size_t size() const { return code_.size(); }

 private:
  void emit(Instruction insn) { code_.push_back(insn); }
  void emit_branch(Opcode op, Label l);

  struct Fixup {
    std::size_t pos;       // instruction index whose imm needs patching
    std::uint32_t label;
  };
  struct CallFixup {
    std::size_t pos;
    std::string symbol;
  };

  Addr base_;
  std::vector<Instruction> code_;
  std::vector<std::int64_t> label_addr_;  // -1 while unbound
  std::vector<Fixup> fixups_;
  std::vector<CallFixup> call_fixups_;
  std::map<std::string, Addr> symbols_;
};

}  // namespace xentry::sim
