file(REMOVE_RECURSE
  "CMakeFiles/xentry_ml.dir/dataset.cpp.o"
  "CMakeFiles/xentry_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/xentry_ml.dir/decision_tree.cpp.o"
  "CMakeFiles/xentry_ml.dir/decision_tree.cpp.o.d"
  "CMakeFiles/xentry_ml.dir/entropy.cpp.o"
  "CMakeFiles/xentry_ml.dir/entropy.cpp.o.d"
  "CMakeFiles/xentry_ml.dir/forest.cpp.o"
  "CMakeFiles/xentry_ml.dir/forest.cpp.o.d"
  "CMakeFiles/xentry_ml.dir/metrics.cpp.o"
  "CMakeFiles/xentry_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/xentry_ml.dir/rules.cpp.o"
  "CMakeFiles/xentry_ml.dir/rules.cpp.o.d"
  "libxentry_ml.a"
  "libxentry_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xentry_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
