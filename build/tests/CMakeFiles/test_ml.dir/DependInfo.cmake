
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ml/dataset_test.cpp" "tests/CMakeFiles/test_ml.dir/ml/dataset_test.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/dataset_test.cpp.o.d"
  "/root/repo/tests/ml/decision_tree_test.cpp" "tests/CMakeFiles/test_ml.dir/ml/decision_tree_test.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/decision_tree_test.cpp.o.d"
  "/root/repo/tests/ml/entropy_test.cpp" "tests/CMakeFiles/test_ml.dir/ml/entropy_test.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/entropy_test.cpp.o.d"
  "/root/repo/tests/ml/forest_test.cpp" "tests/CMakeFiles/test_ml.dir/ml/forest_test.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/forest_test.cpp.o.d"
  "/root/repo/tests/ml/metrics_test.cpp" "tests/CMakeFiles/test_ml.dir/ml/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/metrics_test.cpp.o.d"
  "/root/repo/tests/ml/pruning_test.cpp" "tests/CMakeFiles/test_ml.dir/ml/pruning_test.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/pruning_test.cpp.o.d"
  "/root/repo/tests/ml/rules_test.cpp" "tests/CMakeFiles/test_ml.dir/ml/rules_test.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/rules_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ml/CMakeFiles/xentry_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
