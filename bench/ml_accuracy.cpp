// Section III-B's classifier evaluation (with a Fig. 6-style tree dump).
//
// Paper anchors: training set 12,024 samples (10,280 correct / 1,744
// incorrect) from ~23,400 injection+fault-free runs; testing set 6,596
// (5,295 / 1,301) from ~17,700 runs; RandomTree 98.6% vs DecisionTree
// 96.1% accuracy; 0.7% false-positive rate.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "ml/decision_tree.hpp"
#include "ml/forest.hpp"
#include "ml/metrics.hpp"
#include "xentry/features.hpp"

int main() {
  using namespace xentry;
  bench::print_header("Section III-B: classifier accuracy");

  // Training campaign (paper: ~23,400 runs).
  fault::CampaignConfig train_cfg;
  train_cfg.injections = bench::scaled(23400);
  train_cfg.seed = 101;
  train_cfg.collect_dataset = true;
  auto train_res = fault::run_campaign(train_cfg);

  // Testing campaign (paper: ~17,700 runs).
  fault::CampaignConfig test_cfg;
  test_cfg.injections = bench::scaled(17700);
  test_cfg.seed = 909;
  test_cfg.collect_dataset = true;
  auto test_res = fault::run_campaign(test_cfg);

  std::printf("training samples: %zu (%zu correct / %zu incorrect)\n",
              train_res.dataset.size(),
              train_res.dataset.count(ml::Label::Correct),
              train_res.dataset.count(ml::Label::Incorrect));
  std::printf("testing samples:  %zu (%zu correct / %zu incorrect)\n",
              test_res.dataset.size(),
              test_res.dataset.count(ml::Label::Correct),
              test_res.dataset.count(ml::Label::Incorrect));
  std::printf("paper: train 12,024 (10,280/1,744); test 6,596 (5,295/1,301)\n\n");

  const ml::Dataset balanced =
      fault::oversample_incorrect(train_res.dataset, 0.20);

  auto report = [&](const char* name, auto& model) {
    auto m = ml::evaluate(test_res.dataset,
                          [&](auto row) { return model.predict(row); });
    std::printf("%-14s accuracy=%.1f%%  fp_rate=%.2f%%  fn_rate=%.1f%%\n",
                name, 100 * m.accuracy(), 100 * m.false_positive_rate(),
                100 * m.false_negative_rate());
    return m;
  };

  ml::DecisionTree random_tree;
  random_tree.train(balanced,
                    ml::random_tree_params(kNumFeatures, 17));
  report("RandomTree", random_tree);

  ml::DecisionTree decision_tree;
  ml::TreeParams dt;
  dt.seed = 17;
  decision_tree.train(balanced, dt);
  report("DecisionTree", decision_tree);

  // J48-style post-pruned decision tree (reduced-error pruning on a
  // held-out slice) -- the likely source of the paper's RandomTree >
  // DecisionTree gap.
  ml::DecisionTree pruned_tree;
  pruned_tree.train(balanced, dt);
  auto [keep, holdout] = train_res.dataset.split(0.8, 31);
  pruned_tree.prune_reduced_error(holdout);
  report("DT+pruning", pruned_tree);

  // Extension beyond the paper: a small bagged forest.
  ml::RandomForest forest;
  ml::RandomForest::Params fp;
  fp.num_trees = 15;
  fp.seed = 23;
  forest.train(balanced, fp);
  report("Forest(15)", forest);

  std::printf("paper: RandomTree 98.6%%, DecisionTree 96.1%%, fp 0.7%%\n");

  // Fig. 6 analogue: the first levels of the learned tree.
  std::printf("\nFig. 6 analogue — top of the learned RandomTree:\n");
  const std::string dump = random_tree.to_string(feature_names());
  int lines = 0;
  for (std::size_t i = 0; i < dump.size() && lines < 16; ++i) {
    std::putchar(dump[i]);
    if (dump[i] == '\n') ++lines;
  }
  std::printf("... (%d nodes, depth %d, %zu leaves)\n",
              static_cast<int>(random_tree.nodes().size()),
              random_tree.depth(), random_tree.leaf_count());
  return 0;
}
