#include "hv/layout.hpp"

namespace xentry::hv::layout {

std::string_view output_class_name(OutputClass c) {
  switch (c) {
    case OutputClass::HvGlobal: return "hv_global";
    case OutputClass::GuestControl: return "guest_control";
    case OutputClass::GuestKernelData: return "guest_kernel_data";
    case OutputClass::AppPointer: return "app_pointer";
    case OutputClass::AppData: return "app_data";
    case OutputClass::TimeValue: return "time_value";
  }
  return "?";
}

bool classify_address(Addr a, int num_domains, int num_vcpus,
                      OutputClass& out, int& domain) {
  domain = -1;

  if (a >= kHvDataBase && a < kHvDataBase + kHvDataSize) {
    const auto off = static_cast<std::int64_t>(a - kHvDataBase);
    // Ephemeral per-pcpu state is not persistent: the guest-context
    // scratch and device-input latches are rewritten at every VM exit,
    // and the perfc counters are diagnostics.
    if (off >= kHvPerfcCounters && off < kHvPerfcCounters + 16) return false;
    if (off >= kHvScratch && off < kHvScratch + 19) return false;
    if (off >= kHvMcBanks && off <= kHvNmiReason) return false;
    if (off == kHvApicEsr || off == kHvThermal) return false;
    out = (off == kHvSystemTime || off == kHvWallclockSec ||
           off == kHvTimerDeadline)
              ? OutputClass::TimeValue
              : OutputClass::HvGlobal;
    return true;
  }

  if (a >= kDomainBase &&
      a < kDomainBase + static_cast<Addr>(num_domains) * kDomainStride) {
    domain = static_cast<int>((a - kDomainBase) / kDomainStride);
    out = OutputClass::HvGlobal;  // domain metadata is hypervisor state
    const auto off = static_cast<std::int64_t>((a - kDomainBase) %
                                               kDomainStride);
    if (off >= kDomGrantTable && off < kDomGrantTable + kNumGrantEntries) {
      out = OutputClass::GuestKernelData;  // grants are guest-visible
    }
    if (off >= kDomEvtchnVcpu && off < kDomEvtchnVcpu + kNumEvtchnPorts) {
      out = OutputClass::GuestKernelData;
    }
    return true;
  }

  if (a >= kVcpuBase &&
      a < kVcpuBase + static_cast<Addr>(num_vcpus) * kVcpuStride) {
    const auto off = static_cast<std::int64_t>((a - kVcpuBase) % kVcpuStride);
    // Domain resolution for VCPUs happens at the Machine level (it knows
    // the vcpu->domain mapping); report the vcpu index via `domain` as a
    // negative sentinel minus index so callers can translate.
    domain = -2 - static_cast<int>((a - kVcpuBase) / kVcpuStride);
    if (off == kVcpuSaveRip || off == kVcpuSaveRsp || off == kVcpuSaveRflags) {
      out = OutputClass::GuestControl;
    } else if (off >= kVcpuRunstateTime && off <= kVcpuTimeVersion) {
      out = OutputClass::TimeValue;
    } else if (off == kVcpuTimerDeadline) {
      out = OutputClass::TimeValue;
    } else if (off >= kVcpuTrapTable && off < kVcpuTrapTable + 19) {
      out = OutputClass::GuestKernelData;
    } else if (off >= kVcpuGdt && off < kVcpuGdt + 8) {
      out = OutputClass::GuestKernelData;
    } else if (off >= kVcpuSaveGprs && off < kVcpuSaveGprs + 16) {
      out = OutputClass::AppData;  // guest register values
    } else if (off == kVcpuPendingEvents || off == kVcpuCallback ||
               off == kVcpuSegBase) {
      out = OutputClass::GuestKernelData;
    } else {
      out = OutputClass::HvGlobal;  // id/domain/state bookkeeping
    }
    return true;
  }

  if (a >= kSharedBase &&
      a < kSharedBase + static_cast<Addr>(num_domains) * kSharedStride) {
    domain = static_cast<int>((a - kSharedBase) / kSharedStride);
    const auto off = static_cast<std::int64_t>((a - kSharedBase) %
                                               kSharedStride);
    if (off <= kShTscMul) {
      out = OutputClass::TimeValue;
    } else if (off == kShEvtchnPending || off == kShEvtchnMask) {
      out = OutputClass::GuestKernelData;
    } else {
      out = OutputClass::AppData;
    }
    return true;
  }

  if (a >= kGuestRamBase &&
      a < kGuestRamBase + static_cast<Addr>(num_domains) * kGuestRamStride) {
    domain = static_cast<int>((a - kGuestRamBase) / kGuestRamStride);
    const auto off = static_cast<std::int64_t>((a - kGuestRamBase) %
                                               kGuestRamStride);
    if (off < kGuestTimeArea) out = OutputClass::AppData;
    else if (off < kGuestAppPtrs) out = OutputClass::TimeValue;
    else if (off < kGuestKernData) out = OutputClass::AppPointer;
    else if (off < kGuestReqBuffer) out = OutputClass::GuestKernelData;
    else out = OutputClass::AppData;  // request buffers hold app payloads
    return true;
  }

  if (a >= kConsoleBase && a < kConsoleBase + kConsoleSize) {
    domain = 0;  // the console ring belongs to Dom0
    out = OutputClass::AppData;
    return true;
  }

  return false;  // stack, code, unmapped: not persistent state
}

}  // namespace xentry::hv::layout
