// Statistical guest-workload models.
//
// The paper exercises the hypervisor with SPEC2006 (mcf, bzip2), PARSEC
// (freqmine, canneal, x264) and Postmark guests, in para-virtualized and
// hardware-assisted modes, because "the hypervisor is the software under
// test rather than the benchmarks" (Section V-A).  Each model here is the
// benchmark's hypervisor-facing fingerprint: the mixture of VM exit
// reasons it provokes and its activation-rate distribution, calibrated to
// the ranges of Fig. 3 (PV roughly 5K-100K/s with freqmine peaking near
// 650K/s; HVM mostly 2K-10K/s).
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <string_view>
#include <vector>

#include "hv/machine.hpp"

namespace xentry::wl {

enum class Benchmark : std::uint8_t {
  mcf = 0,      ///< SPEC2006, memory-bound
  bzip2,        ///< SPEC2006, CPU-bound
  freqmine,     ///< PARSEC, hypercall-intensive under PV
  canneal,      ///< PARSEC, memory/CPU mix
  x264,         ///< PARSEC, I/O + CPU mix
  postmark,     ///< filesystem benchmark, I/O-dominated
};
inline constexpr int kNumBenchmarks = 6;

enum class VirtMode : std::uint8_t {
  Para = 0,  ///< Xen PV: hypercall-rich interface
  Hvm,       ///< hardware-assisted: exits dominated by traps/interrupts
};

std::string_view benchmark_name(Benchmark b);
std::string_view virt_mode_name(VirtMode m);
const std::vector<Benchmark>& all_benchmarks();

/// The hypervisor-facing fingerprint of one benchmark in one mode.
struct WorkloadProfile {
  Benchmark benchmark = Benchmark::mcf;
  VirtMode mode = VirtMode::Para;
  /// Exit-reason mixture (reason, weight); weights need not sum to 1.
  std::vector<std::pair<hv::ExitReason, double>> mix;
  /// Lognormal activation-rate distribution (activations/second).
  double rate_median = 10000.0;
  double rate_sigma = 0.35;
  double rate_cap = 1e9;  ///< physical ceiling (freqmine's PV burst limit)
  /// Cache/TLB disturbance factor: how much each intercepted activation
  /// perturbs the application beyond Xentry's own instructions.  A model
  /// calibration constant (see DESIGN.md / EXPERIMENTS.md).
  double disturbance = 1.0;
};

/// The calibrated profile for a benchmark/mode pair.
WorkloadProfile profile(Benchmark benchmark, VirtMode mode);

/// Draws activations according to a profile's exit-reason mixture.
/// Deterministic per seed.  One generator per thread (not thread-safe).
class WorkloadGenerator {
 public:
  WorkloadGenerator(const hv::Machine& machine, WorkloadProfile profile,
                    std::uint64_t seed);

  const WorkloadProfile& profile() const { return profile_; }

  /// Next activation in the stream (legal inputs, random vcpu).
  hv::Activation next();

  /// Samples an activation rate (activations/second) for one observation
  /// window, from the profile's lognormal.
  double sample_rate();

  std::uint64_t activations_generated() const { return count_; }

  /// Checkpoint support: the RNG stream and the activation count are the
  /// generator's only mutable state — the mixture picker is reconstructed
  /// deterministically from the profile, and the standard distributions
  /// consumed through it are stateless between calls.
  std::mt19937_64& rng() { return rng_; }
  const std::mt19937_64& rng() const { return rng_; }
  void set_activations_generated(std::uint64_t n) { count_ = n; }

 private:
  const hv::Machine& machine_;
  WorkloadProfile profile_;
  std::mt19937_64 rng_;
  std::discrete_distribution<std::size_t> pick_;
  std::uint64_t count_ = 0;
};

}  // namespace xentry::wl
