#include "xentry/exception_parser.hpp"

#include <sstream>

namespace xentry {

ExceptionVerdict ExceptionParser::parse(const sim::Trap& trap) const {
  switch (trap.kind) {
    case sim::TrapKind::None:
    case sim::TrapKind::AssertFailed:
    case sim::TrapKind::StackCheck:
      return ExceptionVerdict::NotHardware;
    case sim::TrapKind::InvalidOpcode:
    case sim::TrapKind::PageFault:
    case sim::TrapKind::GeneralProtection:
    case sim::TrapKind::StackFault:
      // In hypervisor context these are always fatal: the microvisor's own
      // code never legally faults (guest page faults arrive as VM exits,
      // not as host-mode traps).
      return ExceptionVerdict::Fatal;
    case sim::TrapKind::DivideError:
      return policy_.divide_error_is_fatal ? ExceptionVerdict::Fatal
                                           : ExceptionVerdict::Benign;
    case sim::TrapKind::Watchdog:
      return policy_.watchdog_is_fatal ? ExceptionVerdict::Fatal
                                       : ExceptionVerdict::Benign;
  }
  return ExceptionVerdict::NotHardware;
}

std::string ExceptionParser::describe(const sim::Trap& trap) {
  std::ostringstream os;
  os << sim::trap_name(trap.kind) << " at 0x" << std::hex << trap.fault_addr;
  if (trap.kind == sim::TrapKind::AssertFailed) {
    os << " (assert id " << std::dec << trap.aux << ")";
  }
  return os.str();
}

}  // namespace xentry
