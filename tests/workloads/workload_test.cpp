#include "workloads/workload.hpp"

#include <gtest/gtest.h>

#include <map>

namespace xentry::wl {
namespace {

TEST(WorkloadTest, AllProfilesNonEmpty) {
  for (Benchmark b : all_benchmarks()) {
    for (VirtMode m : {VirtMode::Para, VirtMode::Hvm}) {
      WorkloadProfile p = profile(b, m);
      EXPECT_FALSE(p.mix.empty()) << benchmark_name(b);
      EXPECT_GT(p.rate_median, 0.0);
      EXPECT_GT(p.disturbance, 0.0);
    }
  }
}

TEST(WorkloadTest, ParaRatesSitInPaperBands) {
  // Fig. 3: PV activation frequency is generally 5K-100K/s; freqmine
  // peaks near 650K/s; HVM mostly 2K-10K/s.
  for (Benchmark b : all_benchmarks()) {
    const WorkloadProfile pv = profile(b, VirtMode::Para);
    EXPECT_GE(pv.rate_median, 5000.0) << benchmark_name(b);
    EXPECT_LE(pv.rate_median, 100000.0) << benchmark_name(b);
    const WorkloadProfile hvm = profile(b, VirtMode::Hvm);
    EXPECT_GE(hvm.rate_median, 2000.0) << benchmark_name(b);
    EXPECT_LE(hvm.rate_median, 10000.0) << benchmark_name(b);
  }
  EXPECT_DOUBLE_EQ(profile(Benchmark::freqmine, VirtMode::Para).rate_cap,
                   650000.0);
}

TEST(WorkloadTest, Bzip2IsTheQuietestParaWorkload) {
  const double bzip2 = profile(Benchmark::bzip2, VirtMode::Para).rate_median;
  for (Benchmark b : all_benchmarks()) {
    if (b == Benchmark::bzip2) continue;
    EXPECT_LT(bzip2, profile(b, VirtMode::Para).rate_median)
        << benchmark_name(b);
  }
}

TEST(WorkloadTest, GeneratorProducesLegalActivations) {
  hv::Machine m;
  WorkloadGenerator gen(m, profile(Benchmark::postmark, VirtMode::Para), 9);
  for (int i = 0; i < 300; ++i) {
    hv::Activation act = gen.next();
    hv::RunResult res = m.run(act);
    ASSERT_TRUE(res.reached_vm_entry)
        << hv::handler_symbol(act.reason) << " trapped: "
        << sim::trap_name(res.trap.kind);
  }
  EXPECT_EQ(gen.activations_generated(), 300u);
}

TEST(WorkloadTest, GeneratorIsDeterministicPerSeed) {
  hv::Machine m;
  WorkloadGenerator a(m, profile(Benchmark::mcf, VirtMode::Para), 4);
  WorkloadGenerator b(m, profile(Benchmark::mcf, VirtMode::Para), 4);
  for (int i = 0; i < 50; ++i) {
    hv::Activation x = a.next();
    hv::Activation y = b.next();
    EXPECT_EQ(x.reason.code(), y.reason.code());
    EXPECT_EQ(x.seed, y.seed);
    EXPECT_EQ(x.vcpu, y.vcpu);
  }
}

TEST(WorkloadTest, MixturesReflectBenchmarkCharacter) {
  hv::Machine m;
  auto count_category = [&](Benchmark b, hv::ExitCategory cat) {
    WorkloadGenerator gen(m, profile(b, VirtMode::Para), 12);
    int n = 0;
    for (int i = 0; i < 2000; ++i) {
      if (gen.next().reason.category == cat) ++n;
    }
    return n;
  };
  // I/O-bound postmark produces far more device IRQs than CPU-bound bzip2.
  EXPECT_GT(count_category(Benchmark::postmark, hv::ExitCategory::Irq),
            4 * count_category(Benchmark::bzip2, hv::ExitCategory::Irq) + 10);
  // Memory-bound mcf leans on memory-management hypercalls.
  WorkloadGenerator mcf(m, profile(Benchmark::mcf, VirtMode::Para), 12);
  int mmu = 0;
  for (int i = 0; i < 2000; ++i) {
    hv::Activation act = mcf.next();
    if (act.reason.category == hv::ExitCategory::Hypercall &&
        (act.reason.index == static_cast<int>(hv::Hypercall::mmu_update) ||
         act.reason.index ==
             static_cast<int>(hv::Hypercall::update_va_mapping))) {
      ++mmu;
    }
  }
  EXPECT_GT(mmu, 300);
}

TEST(WorkloadTest, RateSamplingRespectsCap) {
  hv::Machine m;
  WorkloadGenerator gen(m, profile(Benchmark::freqmine, VirtMode::Para), 3);
  double max_rate = 0;
  for (int i = 0; i < 500; ++i) {
    max_rate = std::max(max_rate, gen.sample_rate());
  }
  EXPECT_LE(max_rate, 650000.0);
  EXPECT_GT(max_rate, 100000.0);  // the heavy tail is exercised
}

TEST(WorkloadTest, HvmRatesAreLowerThanPara) {
  hv::Machine m;
  for (Benchmark b : all_benchmarks()) {
    WorkloadGenerator pv(m, profile(b, VirtMode::Para), 5);
    WorkloadGenerator hvm(m, profile(b, VirtMode::Hvm), 5);
    double pv_sum = 0, hvm_sum = 0;
    for (int i = 0; i < 200; ++i) {
      pv_sum += pv.sample_rate();
      hvm_sum += hvm.sample_rate();
    }
    EXPECT_GT(pv_sum, hvm_sum) << benchmark_name(b);
  }
}

TEST(WorkloadTest, Names) {
  EXPECT_EQ(benchmark_name(Benchmark::freqmine), "freqmine");
  EXPECT_EQ(virt_mode_name(VirtMode::Para), "para");
  EXPECT_EQ(virt_mode_name(VirtMode::Hvm), "hvm");
  EXPECT_EQ(all_benchmarks().size(), static_cast<std::size_t>(kNumBenchmarks));
}

TEST(WorkloadTest, EmptyMixtureThrows) {
  hv::Machine m;
  WorkloadProfile empty;
  EXPECT_THROW(WorkloadGenerator(m, empty, 1), std::invalid_argument);
}

}  // namespace
}  // namespace xentry::wl
