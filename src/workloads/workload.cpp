#include "workloads/workload.hpp"

#include <cmath>
#include <stdexcept>

namespace xentry::wl {

using hv::ApicInterrupt;
using hv::ExitReason;
using hv::GuestException;
using hv::Hypercall;

std::string_view benchmark_name(Benchmark b) {
  switch (b) {
    case Benchmark::mcf: return "mcf";
    case Benchmark::bzip2: return "bzip2";
    case Benchmark::freqmine: return "freqmine";
    case Benchmark::canneal: return "canneal";
    case Benchmark::x264: return "x264";
    case Benchmark::postmark: return "postmark";
  }
  return "?";
}

std::string_view virt_mode_name(VirtMode m) {
  return m == VirtMode::Para ? "para" : "hvm";
}

const std::vector<Benchmark>& all_benchmarks() {
  static const std::vector<Benchmark> all = {
      Benchmark::mcf,     Benchmark::bzip2, Benchmark::freqmine,
      Benchmark::canneal, Benchmark::x264,  Benchmark::postmark};
  return all;
}

namespace {

using Mix = std::vector<std::pair<ExitReason, double>>;

// Mixture components shared by several profiles.
void add_timer_tick(Mix& mix, double w) {
  mix.emplace_back(ExitReason::apic(ApicInterrupt::timer), w);
  mix.emplace_back(ExitReason::softirq(), w * 0.4);
}

void add_io_path(Mix& mix, double w) {
  // The I/O fast path: device IRQ -> event channel -> grant copy -> wake.
  for (int line = 0; line < 6; ++line) {
    mix.emplace_back(ExitReason::irq(line), w / 6.0);
  }
  mix.emplace_back(ExitReason::hypercall(Hypercall::grant_table_op), w * 0.7);
  mix.emplace_back(ExitReason::hypercall(Hypercall::event_channel_op),
                   w * 0.8);
  mix.emplace_back(ExitReason::hypercall(Hypercall::sched_op), w * 0.5);
  mix.emplace_back(ExitReason::tasklet(), w * 0.2);
}

void add_memory_path(Mix& mix, double w) {
  mix.emplace_back(ExitReason::hypercall(Hypercall::mmu_update), w);
  mix.emplace_back(ExitReason::hypercall(Hypercall::update_va_mapping),
                   w * 0.8);
  mix.emplace_back(ExitReason::hypercall(Hypercall::mmuext_op), w * 0.4);
  mix.emplace_back(ExitReason::exception(GuestException::page_fault),
                   w * 0.6);
  mix.emplace_back(ExitReason::hypercall(Hypercall::memory_op), w * 0.2);
}

void add_pv_baseline(Mix& mix, double w) {
  // Background PV chatter every guest produces.
  mix.emplace_back(ExitReason::hypercall(Hypercall::set_timer_op), w);
  mix.emplace_back(ExitReason::hypercall(Hypercall::iret), w * 0.9);
  mix.emplace_back(ExitReason::hypercall(Hypercall::xen_version), w * 0.05);
  mix.emplace_back(ExitReason::hypercall(Hypercall::vcpu_op), w * 0.1);
  mix.emplace_back(ExitReason::hypercall(Hypercall::multicall), w * 0.15);
  mix.emplace_back(ExitReason::hypercall(Hypercall::console_io), w * 0.05);
  mix.emplace_back(ExitReason::apic(ApicInterrupt::ipi_event_check),
                   w * 0.3);
  mix.emplace_back(ExitReason::apic(ApicInterrupt::ipi_reschedule), w * 0.1);
}

void add_hvm_baseline(Mix& mix, double w) {
  // Hardware-assisted guests exit mostly on privileged instructions,
  // APIC activity, and (emulated) device interrupts.
  mix.emplace_back(
      ExitReason::exception(GuestException::general_protection), w);
  mix.emplace_back(ExitReason::exception(GuestException::page_fault),
                   w * 0.7);
  mix.emplace_back(ExitReason::apic(ApicInterrupt::timer), w * 0.8);
  mix.emplace_back(ExitReason::hypercall(Hypercall::hvm_op), w * 0.3);
  mix.emplace_back(ExitReason::apic(ApicInterrupt::ipi_event_check),
                   w * 0.2);
  for (int line = 0; line < 4; ++line) {
    mix.emplace_back(ExitReason::irq(line), w * 0.1);
  }
}

// The hypercalls freqmine's tight mining loop hammers under PV.
void mixin_freqmine(Mix& mix) {
  mix.emplace_back(ExitReason::hypercall(Hypercall::sched_op), 1.2);
  mix.emplace_back(ExitReason::hypercall(Hypercall::set_timer_op), 0.9);
  mix.emplace_back(ExitReason::hypercall(Hypercall::event_channel_op), 0.8);
  mix.emplace_back(ExitReason::hypercall(Hypercall::iret), 1.0);
  mix.emplace_back(ExitReason::hypercall(Hypercall::update_va_mapping), 0.4);
}

}  // namespace

WorkloadProfile profile(Benchmark benchmark, VirtMode mode) {
  WorkloadProfile p;
  p.benchmark = benchmark;
  p.mode = mode;

  if (mode == VirtMode::Hvm) {
    // HVM rates sit in the paper's 2K-10K/s band regardless of benchmark,
    // with I/O workloads at the top of it.
    add_hvm_baseline(p.mix, 1.0);
    switch (benchmark) {
      case Benchmark::mcf: p.rate_median = 4200; break;
      case Benchmark::bzip2: p.rate_median = 2400; break;
      case Benchmark::freqmine: p.rate_median = 5200; break;
      case Benchmark::canneal: p.rate_median = 3600; break;
      case Benchmark::x264: p.rate_median = 6800; break;
      case Benchmark::postmark:
        p.rate_median = 8800;
        add_io_path(p.mix, 0.8);
        break;
    }
    p.rate_sigma = 0.30;
    p.rate_cap = 20000;
    p.disturbance = 1.0;
    return p;
  }

  // Para-virtualized profiles.
  switch (benchmark) {
    case Benchmark::mcf:
      add_memory_path(p.mix, 1.0);
      add_pv_baseline(p.mix, 0.3);
      add_timer_tick(p.mix, 0.25);
      p.rate_median = 21000;
      p.rate_sigma = 0.35;
      p.disturbance = 2.8;
      break;
    case Benchmark::bzip2:
      // CPU-bound: almost nothing but timer ticks.
      add_timer_tick(p.mix, 1.0);
      add_pv_baseline(p.mix, 0.15);
      p.rate_median = 5600;
      p.rate_sigma = 0.25;
      p.disturbance = 3.5;  // rare exits: Xentry state is always cold
      break;
    case Benchmark::freqmine:
      // The paper's peak case: PV hypercall storms up to ~650K/s.
      add_pv_baseline(p.mix, 1.0);
      mixin_freqmine(p.mix);
      add_timer_tick(p.mix, 0.2);
      p.rate_median = 88000;
      p.rate_sigma = 0.85;   // heavy upper tail
      p.rate_cap = 650000;
      p.disturbance = 0.7;  // hot path: Xentry state stays cached
      break;
    case Benchmark::canneal:
      add_memory_path(p.mix, 0.8);
      add_timer_tick(p.mix, 0.5);
      add_pv_baseline(p.mix, 0.25);
      p.rate_median = 14000;
      p.rate_sigma = 0.35;
      p.disturbance = 3.0;
      break;
    case Benchmark::x264:
      add_io_path(p.mix, 0.7);
      add_pv_baseline(p.mix, 0.5);
      add_timer_tick(p.mix, 0.4);
      p.rate_median = 46000;
      p.rate_sigma = 0.55;
      p.disturbance = 3.2;
      break;
    case Benchmark::postmark:
      add_io_path(p.mix, 1.0);
      add_pv_baseline(p.mix, 0.35);
      add_timer_tick(p.mix, 0.3);
      p.rate_median = 92000;
      p.rate_sigma = 0.80;
      p.rate_cap = 300000;
      p.disturbance = 2.0;
      break;
  }
  return p;
}

WorkloadGenerator::WorkloadGenerator(const hv::Machine& machine,
                                     WorkloadProfile profile,
                                     std::uint64_t seed)
    : machine_(machine), profile_(std::move(profile)), rng_(seed) {
  if (profile_.mix.empty()) {
    throw std::invalid_argument("WorkloadGenerator: empty mixture");
  }
  std::vector<double> weights;
  weights.reserve(profile_.mix.size());
  for (const auto& [reason, w] : profile_.mix) weights.push_back(w);
  pick_ = std::discrete_distribution<std::size_t>(weights.begin(),
                                                  weights.end());
}

hv::Activation WorkloadGenerator::next() {
  const std::size_t i = pick_(rng_);
  ++count_;
  return machine_.make_activation(profile_.mix[i].first, rng_());
}

double WorkloadGenerator::sample_rate() {
  std::lognormal_distribution<double> dist(std::log(profile_.rate_median),
                                           profile_.rate_sigma);
  return std::min(dist(rng_), profile_.rate_cap);
}

}  // namespace xentry::wl
