// Validation bench for the bit-liveness vulnerability map: every
// (step, reg, bit) point the analysis predicts benign must empirically
// mask when injected.
//
// The importance sampler (src/fault/sampler.hpp) skips predicted-masked
// draws and attributes their probability mass to Masked without running
// them — so a single unsound live mask silently biases every campaign
// statistic.  This bench is the empirical check: for every microvisor
// configuration in the analysis matrix it probes real activations,
// densely samples predicted-masked points along each golden trace with a
// deterministic SplitMix stream, injects each one for real, and asserts
// the run is indistinguishable from golden (consequence Masked, no
// detection, no trap, no control-flow divergence).
//
// Output is one JSON object with a per-config breakdown; the process
// exits non-zero when any configuration's empirical masked fraction
// falls below 99.9% (the map is *proof*-based, so the expected violation
// count is exactly zero — the slack only absorbs a future soundness bug
// into a loud CI signal instead of a silent one).
// Usage: bit_coverage [samples_per_activation] [activations_per_config]
//                     [seed]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/artifacts.hpp"
#include "fault/campaign.hpp"
#include "fault/experiment.hpp"
#include "hv/machine.hpp"
#include "hv/microvisor.hpp"
#include "sim/splitmix.hpp"
#include "workloads/workload.hpp"
#include "xentry/framework.hpp"

namespace {

using namespace xentry;

std::string config_name(const hv::MicrovisorOptions& o) {
  std::string s = "domains=" + std::to_string(o.num_domains) +
                  " vcpus=" + std::to_string(o.vcpus_per_domain);
  s += o.assertions ? " assertions" : " no-assertions";
  if (o.time_checks) s += " time-checks";
  if (o.shadow_stack) s += " shadow-stack";
  return s;
}

struct ConfigScore {
  std::string name;
  double masked_fraction = 0;  ///< static prediction from the map
  std::uint64_t tested = 0;
  std::uint64_t masked = 0;
  std::uint64_t violations = 0;
};

ConfigScore run_config(const hv::MicrovisorOptions& opt, int samples,
                       int activations, std::uint64_t seed) {
  ConfigScore score;
  score.name = config_name(opt);

  const hv::Microvisor mv = hv::build_microvisor(opt);
  const analysis::AnalysisArtifacts art =
      analysis::analyze_program(mv.program, hv::analyze_options(mv));
  const analysis::VulnerabilityMap& map = art.vuln;
  score.masked_fraction = map.masked_fraction();

  hv::Machine golden(opt);
  hv::Machine faulty(opt);
  Xentry xentry(XentryConfig{});
  fault::InjectionExperiment experiment(golden, faulty, xentry,
                                        fault::OutcomeModel{});
  wl::WorkloadGenerator gen(golden, fault::uniform_sweep_profile(), seed);
  for (int i = 0; i < 8; ++i) experiment.advance(gen.next());

  sim::SplitMix64 sm(seed ^ 0xbf58476d1ce4e5b9ull);
  fault::InjectionExperiment::GoldenProbe probe;
  for (int a = 0; a < activations; ++a) {
    const hv::Activation act = gen.next();
    experiment.probe_golden_advance(act, probe);
    if (probe.steps == 0) continue;  // golden already at pre == post state
    for (int n = 0; n < samples; ++n) {
      // Deterministic dense sampling of the predicted-masked set: draw
      // (step, reg, bit) until the map proves it benign (the masked set
      // covers ~half the space, so a few draws suffice).
      hv::Injection inj;
      bool found = false;
      for (int attempt = 0; attempt < 64; ++attempt) {
        inj.at_step = sm.below(probe.steps);
        inj.reg = static_cast<sim::Reg>(sm.below(sim::kNumArchRegs));
        inj.bit = static_cast<int>(sm.below(sim::kBitsPerReg));
        if (!map.is_live(probe.trace[inj.at_step],
                         static_cast<std::uint8_t>(inj.reg),
                         static_cast<std::uint8_t>(inj.bit))) {
          found = true;
          break;
        }
      }
      if (!found) continue;  // fully-live window (should not happen)

      const fault::InjectionExperiment::Result r =
          experiment.run_one(act, inj, probe);
      ++score.tested;
      const fault::InjectionRecord& rec = r.record;
      const bool benign = rec.consequence == fault::Consequence::Masked &&
                          !rec.detected && !rec.trace_diverged &&
                          rec.trap == sim::TrapKind::None;
      if (benign) {
        ++score.masked;
      } else {
        ++score.violations;
        if (score.violations <= 8) {
          std::fprintf(
              stderr,
              "[bit_coverage] VIOLATION %s: step=%llu reg=%d bit=%d -> "
              "consequence=%s detected=%d diverged=%d trap=%d\n",
              score.name.c_str(),
              static_cast<unsigned long long>(inj.at_step),
              static_cast<int>(inj.reg), inj.bit,
              std::string(fault::consequence_name(rec.consequence)).c_str(),
              rec.detected ? 1 : 0, rec.trace_diverged ? 1 : 0,
              static_cast<int>(rec.trap));
        }
      }
    }
  }
  return score;
}

}  // namespace

int main(int argc, char** argv) {
  const int samples = argc > 1 ? std::atoi(argv[1]) : 25;
  const int activations = argc > 2 ? std::atoi(argv[2]) : 40;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 7;

  // The analyze_program --all-configs matrix.
  const std::vector<hv::MicrovisorOptions> configs = {
      {3, 1, true, false}, {3, 1, true, true},  {3, 1, false, false},
      {2, 1, true, false}, {4, 2, true, true},  {8, 1, true, false},
      {1, 1, true, false},
  };

  std::vector<ConfigScore> scores;
  std::uint64_t total_tested = 0, total_masked = 0;
  bool pass = true;
  for (const hv::MicrovisorOptions& o : configs) {
    ConfigScore s = run_config(o, samples, activations, seed);
    total_tested += s.tested;
    total_masked += s.masked;
    const double frac =
        s.tested > 0 ? static_cast<double>(s.masked) /
                           static_cast<double>(s.tested)
                     : 1.0;
    if (frac < 0.999 || s.tested == 0) pass = false;
    scores.push_back(std::move(s));
  }

  std::printf("{\n  \"bench\": \"bit_coverage\",\n  \"configs\": [\n");
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const ConfigScore& s = scores[i];
    std::printf(
        "    {\"config\": \"%s\", \"predicted_masked_fraction\": %.4f, "
        "\"tested\": %llu, \"empirically_masked\": %llu, "
        "\"violations\": %llu}%s\n",
        s.name.c_str(), s.masked_fraction,
        static_cast<unsigned long long>(s.tested),
        static_cast<unsigned long long>(s.masked),
        static_cast<unsigned long long>(s.violations),
        i + 1 < scores.size() ? "," : "");
  }
  std::printf(
      "  ],\n  \"total_tested\": %llu,\n  \"total_masked\": %llu,\n"
      "  \"pass\": %s\n}\n",
      static_cast<unsigned long long>(total_tested),
      static_cast<unsigned long long>(total_masked), pass ? "true" : "false");
  if (!pass) {
    std::fprintf(stderr,
                 "[bit_coverage] FAIL: empirical masked fraction below "
                 "99.9%% (or no samples) in at least one config\n");
    return 1;
  }
  std::fprintf(stderr, "[bit_coverage] OK: %llu/%llu predicted-benign "
                       "injections masked across %zu configs\n",
               static_cast<unsigned long long>(total_masked),
               static_cast<unsigned long long>(total_tested), scores.size());
  return 0;
}
