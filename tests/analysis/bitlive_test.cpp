#include "analysis/bitlive.hpp"

#include <gtest/gtest.h>

#include "analysis/artifacts.hpp"
#include "sim/assembler.hpp"

namespace xentry::analysis {
namespace {

using sim::Addr;
using sim::Assembler;
using sim::Program;
using sim::Reg;

constexpr std::uint64_t kAll = ~0ull;

// All programs assemble at base 1000 (see dataflow_test.cpp: small
// immediates must never alias code addresses).
constexpr Addr kBase = 1000;

VulnerabilityMap map_of(const Program& p) {
  const AnalysisArtifacts art = analyze_program(p);
  return art.vuln;
}

std::uint64_t live_at(const VulnerabilityMap& m, Addr a, Reg r) {
  return m.live_mask(a, static_cast<std::uint8_t>(r));
}

TEST(BitLivenessTest, ShiftByImmediateKillsLowBits) {
  Assembler as(kBase);
  as.global("main");
  as.shri(Reg::rax, 8);        // rax >>= 8: low 8 input bits fall away
  as.store(Reg::rbx, Reg::rax);  // memory write: rax fully live here
  as.hlt();
  const VulnerabilityMap m = map_of(as.finish());
  // Live-in at the shift: only the bits that survive into the store.
  EXPECT_EQ(live_at(m, kBase + 0, Reg::rax), kAll << 8);
  EXPECT_EQ(live_at(m, kBase + 1, Reg::rax), kAll);
}

TEST(BitLivenessTest, ShiftByRegisterIsConservativeAndNeedsCount) {
  Assembler as(kBase);
  as.global("main");
  as.shr(Reg::rax, Reg::rcx);  // dynamic amount: any input bit can matter
  as.store(Reg::rbx, Reg::rax);
  as.hlt();
  const VulnerabilityMap m = map_of(as.finish());
  EXPECT_EQ(live_at(m, kBase + 0, Reg::rax), kAll);
  // The shift amount is masked to 6 bits; the rest of rcx stays dead.
  EXPECT_EQ(live_at(m, kBase + 0, Reg::rcx), 0x3full);
}

TEST(BitLivenessTest, AndOrImmediatePropagateBitMasks) {
  Assembler as(kBase);
  as.global("main");
  as.andi(Reg::rax, 0xff);  // clears bits 8..63
  as.ori(Reg::rax, 0x0f);   // forces bits 0..3 to 1
  as.store(Reg::rbx, Reg::rax);
  as.hlt();
  const VulnerabilityMap m = map_of(as.finish());
  // Into the or: everything except the forced-to-1 bits.
  EXPECT_EQ(live_at(m, kBase + 1, Reg::rax), kAll & ~0x0full);
  // Into the and: additionally only the bits the and keeps.
  EXPECT_EQ(live_at(m, kBase + 0, Reg::rax), 0xf0ull);
}

TEST(BitLivenessTest, TestImmediateLivesOnlyTestedBit) {
  Assembler as(kBase);
  as.global("main");
  const auto odd = as.make_label();
  as.testi(Reg::rax, 1);
  as.jne(odd);
  as.hlt();
  as.bind(odd);
  as.hlt();
  const VulnerabilityMap m = map_of(as.finish());
  // The branch observes only ZF of (rax & 1): a single live bit.
  EXPECT_EQ(live_at(m, kBase + 0, Reg::rax), 0x1ull);
}

TEST(BitLivenessTest, MovCopiesLivenessAndKillsDestination) {
  Assembler as(kBase);
  as.global("main");
  as.mov(Reg::rbx, Reg::rax);
  as.store(Reg::rcx, Reg::rbx);
  as.hlt();
  const VulnerabilityMap m = map_of(as.finish());
  EXPECT_EQ(live_at(m, kBase + 0, Reg::rax), kAll);  // copied liveness
  EXPECT_EQ(live_at(m, kBase + 0, Reg::rbx), 0ull);  // overwritten
}

TEST(BitLivenessTest, CompareForBranchMakesOperandFullyLive) {
  Assembler as(kBase);
  as.global("main");
  const auto eq = as.make_label();
  as.cmpi(Reg::rax, 5);
  as.je(eq);
  as.hlt();
  as.bind(eq);
  as.hlt();
  const VulnerabilityMap m = map_of(as.finish());
  // ZF of a compare depends on every bit of the operand.
  EXPECT_EQ(live_at(m, kBase + 0, Reg::rax), kAll);
}

TEST(BitLivenessTest, FusedAndUnfusedComparesAgree) {
  // The assembler marks adjacent cmp+jcc pairs fused; a nop in between
  // prevents fusion.  Fusion is an execution concern only — the map must
  // be identical at the compare either way.
  Assembler fused(kBase);
  fused.global("main");
  const auto f1 = fused.make_label();
  fused.cmpi(Reg::rdx, 9);
  fused.je(f1);
  fused.hlt();
  fused.bind(f1);
  fused.hlt();
  const Program pf = fused.finish();
  ASSERT_TRUE(pf.at(kBase + 0).fused);

  Assembler plain(kBase);
  plain.global("main");
  const auto p1 = plain.make_label();
  plain.cmpi(Reg::rdx, 9);
  plain.nop();
  plain.je(p1);
  plain.hlt();
  plain.bind(p1);
  plain.hlt();
  const Program pp = plain.finish();
  ASSERT_FALSE(pp.at(kBase + 0).fused);

  const VulnerabilityMap mf = map_of(pf);
  const VulnerabilityMap mp = map_of(pp);
  for (int r = 0; r < sim::kNumArchRegs; ++r) {
    EXPECT_EQ(mf.live[0][static_cast<std::size_t>(r)],
              mp.live[0][static_cast<std::size_t>(r)])
        << "reg " << r;
  }
}

TEST(BitLivenessTest, XorSelfKillsWithoutGen) {
  Assembler as(kBase);
  as.global("main");
  as.xor_(Reg::rax, Reg::rax);  // idiom: rax = 0 regardless of input
  as.store(Reg::rbx, Reg::rax);
  as.hlt();
  const VulnerabilityMap m = map_of(as.finish());
  EXPECT_EQ(live_at(m, kBase + 0, Reg::rax), 0ull);
}

TEST(BitLivenessTest, LoopBackEdgeReachesFixpoint) {
  Assembler as(kBase);
  as.global("main");
  const auto loop = as.make_label();
  as.movi(Reg::rcx, 8);
  as.bind(loop);
  as.dec(Reg::rcx);
  as.jne(loop);
  as.hlt();
  const VulnerabilityMap m = map_of(as.finish());
  // Inside the loop the counter feeds ZF (all bits); before the movi that
  // initializes it, it is dead — the kill survives the back-edge join.
  EXPECT_EQ(live_at(m, kBase + 1, Reg::rcx), kAll);
  EXPECT_EQ(live_at(m, kBase + 0, Reg::rcx), 0ull);
}

TEST(BitLivenessTest, GateConsumesDerivedAssertionRegisters) {
  Assembler as(kBase);
  as.global("main");
  as.movi(Reg::rax, 5);  // non-top interval -> derived assertion at hlt
  as.hlt();
  const Program p = as.finish();
  const AnalysisArtifacts art = analyze_program(p);
  ASSERT_FALSE(art.derived.empty());
  const VulnerabilityMap& m = art.vuln;
  // The asserted register is consumed at the gate; an unconstrained one
  // is not.
  EXPECT_EQ(live_at(m, kBase + 1, Reg::rax), kAll);
  EXPECT_EQ(live_at(m, kBase + 1, Reg::rbx), 0ull);
  // The initializing write kills it upstream of the gate.
  EXPECT_EQ(live_at(m, kBase + 0, Reg::rax), 0ull);
}

TEST(BitLivenessTest, RipAlwaysFullyLiveAndOffMapIsLive) {
  Assembler as(kBase);
  as.global("main");
  as.nop();
  as.hlt();
  const VulnerabilityMap m = map_of(as.finish());
  for (Addr a = kBase; a < kBase + 2; ++a) {
    EXPECT_EQ(live_at(m, a, Reg::rip), kAll) << "addr " << a;
  }
  // Addresses outside the image are never provably masked.
  EXPECT_EQ(live_at(m, kBase + 999, Reg::rax), kAll);
  EXPECT_EQ(live_at(m, 0, Reg::rax), kAll);
}

}  // namespace
}  // namespace xentry::analysis
