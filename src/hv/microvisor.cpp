#include "hv/microvisor.hpp"

#include <functional>
#include <stdexcept>

#include "hv/layout.hpp"
#include "sim/assembler.hpp"

namespace xentry::hv {

namespace L = layout;

namespace {

using sim::Assembler;
using R = sim::Reg;

constexpr R rax = R::rax, rbx = R::rbx, rcx = R::rcx, rdx = R::rdx,
            rsi = R::rsi, rdi = R::rdi, r8 = R::r8, r9 = R::r9, r10 = R::r10,
            r11 = R::r11, r12 = R::r12, r13 = R::r13, r14 = R::r14,
            r15 = R::r15, rbp = R::rbp;

/// Emits the complete microvisor text.  One instance per build.
class Emitter {
 public:
  explicit Emitter(const MicrovisorOptions& opt)
      : opt_(opt), as(L::kCodeBase) {}

  sim::Program emit() {
    emit_subroutines();
    emit_irq_softirq_tasklet();
    emit_apic_handlers();
    emit_exception_handlers();
    emit_hypercalls();
    return as.finish();
  }

 private:
  MicrovisorOptions opt_;
  Assembler as;

  std::int64_t idle_vcpu_addr() const {
    return static_cast<std::int64_t>(
        L::vcpu_addr(opt_.num_domains * opt_.vcpus_per_domain));
  }

  // -- conditional software assertions (the runtime-detection half) --------

  void a_le(R r, std::int64_t imm, std::uint32_t id) {
    if (opt_.assertions) as.assert_le(r, imm, id);
  }
  void a_eq(R r, std::int64_t imm, std::uint32_t id) {
    if (opt_.assertions) as.assert_eq(r, imm, id);
  }
  void a_ne(R r, std::int64_t imm, std::uint32_t id) {
    if (opt_.assertions) as.assert_ne(r, imm, id);
  }
  void a_lt(R a, R b, std::uint32_t id) {
    if (opt_.assertions) as.assert_lt(a, b, id);
  }

  // -- structure ------------------------------------------------------------

  /// Emits `sym: call sym_body; jmp ret_to_guest` followed by `sym_body:`.
  /// `body` must leave the return value in rax and end with ret().
  void handler(const std::string& sym, const std::function<void()>& body) {
    as.pad_ud(3);  // inter-function gap: corrupted rip faults realistically
    as.global(sym);
    as.call(sym + "_body");
    as.jmp("ret_to_guest");
    as.global(sym + "_body");
    body();
  }

  // ==========================================================================
  // Shared subroutines
  // ==========================================================================

  void emit_subroutines() {
    // ret_to_guest: the VM-entry tail shared by every handler.  Reloads the
    // (possibly switched) current VCPU and publishes the handler's return
    // value as the guest's rax.
    as.global("ret_to_guest");
    as.load(r8, rbp, L::kHvCurrentVcpu);
    // Executed on every VM entry: validate the current pointer before
    // trusting it (a cheap Listing-2-style condition check).
    if (opt_.assertions) {
      as.assert_ge(r8, static_cast<std::int64_t>(L::kVcpuBase),
                   kAssertCurrentVcpu);
      as.assert_le(r8, idle_vcpu_addr(), kAssertCurrentVcpu);
    }
    as.store(r8, rax, L::kVcpuSaveGprs);
    // Guest-state validation before entering the guest, as real VM entry
    // does: a guest rip outside the guest's address space fails the entry
    // and vectors the guest through its failsafe callback instead.
    {
      auto rip_ok = as.make_label();
      auto failsafe = as.make_label();
      as.load(rbx, r8, L::kVcpuDomain);
      as.load(rbx, rbx, L::kDomGuestRam);
      as.load(rcx, r8, L::kVcpuSaveRip);
      as.cmp(rcx, rbx);
      as.jb(failsafe);
      as.mov(r10, rbx);
      as.addi(r10, static_cast<std::int64_t>(L::kGuestRamStride));
      as.cmp(rcx, r10);
      as.jb(rip_ok);
      as.bind(failsafe);
      as.load(r10, r8, L::kVcpuCallback);
      as.store(r8, r10, L::kVcpuSaveRip);
      as.load(r10, rbp, L::kHvPerfcCounters + 14);  // failsafe count
      as.inc(r10);
      as.store(rbp, r10, L::kHvPerfcCounters + 14);
      as.bind(rip_ok);
    }
    as.hlt();
    as.pad_ud(3);

    emit_runq_insert();
    emit_evtchn_set_pending();
    emit_update_time();
    emit_schedule();
    emit_sched_block();
    emit_inject_guest_event();
    emit_tasklet_work();
    emit_softirq_work();
  }

  // runq_insert: r14 = vcpu index.  Appends to the runqueue unless already
  // present (Xen's vcpu_wake checks the runqueue the same way).
  // Clobbers r15, rbx, rcx.
  void emit_runq_insert() {
    as.global("runq_insert");
    as.load(r15, rbp, L::kHvRunqCount);
    // Timing-analyzability clamp: the count is at most kMaxVcpus in every
    // correct execution, so masking is the identity fault-free while giving
    // the static interval analysis a finite trip bound for the scan loop
    // even in assertion-free builds (a corrupted count cannot spin).
    as.andi(r15, 31);
    as.movi(rcx, 0);
    auto scan = as.here();
    auto append = as.make_label();
    auto out = as.make_label();
    as.cmp(rcx, r15);
    as.jge(append);
    as.mov(rbx, rbp);
    as.add(rbx, rcx);
    as.load(rbx, rbx, L::kHvRunq);
    as.cmp(rbx, r14);
    as.je(out);  // already queued
    as.inc(rcx);
    as.jmp(scan);
    as.bind(append);
    a_le(r15, L::kMaxVcpus - 1, kAssertRunqBounds);
    as.mov(rbx, rbp);
    as.add(rbx, r15);
    as.store(rbx, r14, L::kHvRunq);
    as.inc(r15);
    as.store(rbp, r15, L::kHvRunqCount);
    as.bind(out);
    as.ret();
    as.pad_ud(3);
  }

  // evtchn_set_pending: r10 = target domain struct address, r11 = port.
  // The paper's Fig. 5(b) function: tests the mask, sets the pending bit,
  // marks and wakes the bound VCPU.  Clobbers rbx, rcx, r12..r15.
  void emit_evtchn_set_pending() {
    as.global("evtchn_set_pending");
    a_le(r11, L::kNumEvtchnPorts - 1, kAssertEvtchnPort);
    as.load(r12, r10, L::kDomSharedInfo);
    as.movi(rbx, 1);
    as.shl(rbx, r11);  // rbx = 1 << port
    auto out = as.make_label();
    as.load(r13, r12, L::kShEvtchnMask);
    as.test(r13, rbx);
    as.jne(out);  // channel masked: do not deliver
    as.load(r13, r12, L::kShEvtchnPending);
    as.or_(r13, rbx);
    as.store(r12, r13, L::kShEvtchnPending);
    // Resolve the bound VCPU (global index) and mark it pending.
    as.mov(r14, r10);
    as.add(r14, r11);
    as.load(r14, r14, L::kDomEvtchnVcpu);
    a_le(r14, opt_.num_domains * opt_.vcpus_per_domain - 1,
         kAssertVcpuIndex);
    as.mov(r15, r14);
    as.shli(r15, 6);  // kVcpuStride == 64
    as.addi(r15, static_cast<std::int64_t>(L::kVcpuBase));
    as.movi(r13, 1);
    as.store(r15, r13, L::kVcpuPendingEvents);
    // Wake if blocked.
    as.load(r13, r15, L::kVcpuState);
    as.cmpi(r13, L::kVcpuStateBlocked);
    as.jne(out);
    as.movi(r13, L::kVcpuStateRunning);
    as.store(r15, r13, L::kVcpuState);
    as.call("runq_insert");  // r14 already holds the vcpu index
    as.bind(out);
    as.ret();
    as.pad_ud(3);
  }

  // update_time: recomputes system time from the TSC and publishes it to
  // the current domain's shared-info page (the guest-visible time values
  // of Table II).  Clobbers r10..r13.
  void emit_update_time() {
    as.global("update_time");
    as.rdtsc(r10);
    as.load(r11, rbp, L::kHvTscScaleMul);
    as.mul(r10, r11);
    as.load(r11, rbp, L::kHvTscScaleShift);
    as.shr(r10, r11);  // ns since boot
    // The clock never goes backwards: old < new holds in every correct
    // execution because the TSC advances between updates.
    as.load(r13, rbp, L::kHvSystemTime);
    a_lt(r13, r10, kAssertTimeMonotonic);
    if (opt_.time_checks) {
      // Section VI: "two adjacent rdtsc may have a small variation in
      // their output values.  Checking this variation may help detect
      // errors."  Re-read and re-scale the clock; the delta against the
      // first computation must be tiny and non-negative.
      as.rdtsc(r11);
      as.load(r12, rbp, L::kHvTscScaleMul);
      as.mul(r11, r12);
      as.load(r12, rbp, L::kHvTscScaleShift);
      as.shr(r11, r12);
      as.sub(r11, r10);
      as.assert_ge(r11, 0, kAssertTscDelta);
      as.assert_le(r11, 4096, kAssertTscDelta);
    }
    as.store(rbp, r10, L::kHvSystemTime);
    as.load(r11, r9, L::kDomSharedInfo);
    as.load(r12, r11, L::kShVersion);
    as.inc(r12);
    as.store(r11, r12, L::kShVersion);
    as.rdtsc(r13);
    as.store(r11, r13, L::kShTscStamp);
    as.store(r11, r10, L::kShSystemTime);
    as.load(r12, rbp, L::kHvWallclockSec);
    as.store(r11, r12, L::kShWcSec);
    as.mov(r12, r10);
    as.andi(r12, 0xffff);
    as.store(r11, r12, L::kShWcNsec);
    as.load(r12, rbp, L::kHvTscScaleMul);
    as.store(r11, r12, L::kShTscMul);
    // Per-VCPU pvclock record (update_vcpu_system_time): version bump,
    // TSC stamp, scaled time and runstate stamp for the current vcpu.
    as.load(r12, r8, L::kVcpuTimeVersion);
    as.inc(r12);
    as.store(r8, r12, L::kVcpuTimeVersion);
    as.rdtsc(r13);
    as.load(r12, rbp, L::kHvTscScaleMul);
    as.mul(r13, r12);
    as.load(r12, rbp, L::kHvTscScaleShift);
    as.shr(r13, r12);
    as.store(r8, r13, L::kVcpuRunstateTime + 3);  // local view of now
    as.store(r8, r10, L::kVcpuRunstateTime + 0);  // system time snapshot
    as.ret();
    as.pad_ud(3);
  }

  // schedule: round-robin over the runqueue, skipping non-runnable VCPUs;
  // context-switches the 19-word guest context between the per-pcpu scratch
  // area and the VCPU save areas.  Falls back to the idle VCPU when nothing
  // is runnable — and asserts is_idle_vcpu(current) exactly as the paper's
  // Listing 2 does before idling the physical CPU.
  // Clobbers rax, rdx, rcx, rbx, r10..r15; updates r8/r9/current.
  void emit_schedule() {
    as.global("schedule");
    auto idle_path = as.make_label();
    auto found = as.make_label();
    as.load(r10, rbp, L::kHvRunqCount);
    as.andi(r10, 31);  // timing clamp: identity fault-free (count <= kMaxVcpus)
    as.cmpi(r10, 0);
    as.je(idle_path);
    as.load(r11, rbp, L::kHvSchedCursor);
    as.mov(rcx, r10);  // tries remaining
    auto try_loop = as.here();
    as.inc(r11);
    as.mov(rax, r11);
    as.div(r10);        // rdx = rax % r10
    as.mov(r11, rdx);
    as.mov(r12, rbp);
    as.add(r12, r11);
    as.load(r12, r12, L::kHvRunq);  // candidate vcpu index
    a_le(r12, opt_.num_domains * opt_.vcpus_per_domain - 1,
         kAssertRunqEntry);
    as.mov(r13, r12);
    as.shli(r13, 6);
    as.addi(r13, static_cast<std::int64_t>(L::kVcpuBase));
    as.load(r14, r13, L::kVcpuState);
    as.cmpi(r14, L::kVcpuStateRunning);
    as.je(found);
    as.dec(rcx);
    as.cmpi(rcx, 0);
    as.jg(try_loop);
    as.jmp(idle_path);

    as.bind(found);
    as.store(rbp, r11, L::kHvSchedCursor);
    // Save outgoing context: scratch -> current vcpu save area (19 words).
    as.load(r12, rbp, L::kHvCurrentVcpu);
    as.movi(rcx, 19);
    as.mov(r14, rbp);
    as.addi(r14, L::kHvScratch);
    as.mov(r15, r12);
    as.addi(r15, L::kVcpuSaveGprs);
    auto out_loop = as.here();
    as.load(rbx, r14);
    as.store(r15, rbx);
    as.inc(r14);
    as.inc(r15);
    as.dec(rcx);
    as.cmpi(rcx, 0);
    as.jg(out_loop);
    // Restore incoming context: next vcpu save area -> scratch.
    as.movi(rcx, 19);
    as.mov(r14, r13);
    as.addi(r14, L::kVcpuSaveGprs);
    as.mov(r15, rbp);
    as.addi(r15, L::kHvScratch);
    auto in_loop = as.here();
    as.load(rbx, r14);
    as.store(r15, rbx);
    as.inc(r14);
    as.inc(r15);
    as.dec(rcx);
    as.cmpi(rcx, 0);
    as.jg(in_loop);
    // Runstate accounting (time values).
    as.load(r10, rbp, L::kHvSystemTime);
    as.store(r12, r10, L::kVcpuRunstateTime + 0);  // switched out at
    as.load(r11, r12, L::kVcpuRunstateTime + 2);
    as.inc(r11);
    as.store(r12, r11, L::kVcpuRunstateTime + 2);  // switch-out count
    as.store(r13, r10, L::kVcpuRunstateTime + 1);  // switched in at
    as.load(r11, r13, L::kVcpuTimeVersion);
    as.inc(r11);
    as.store(r13, r11, L::kVcpuTimeVersion);
    // Commit.
    as.store(rbp, r13, L::kHvCurrentVcpu);
    as.mov(r8, r13);
    as.load(r9, r8, L::kVcpuDomain);
    as.ret();

    as.bind(idle_path);
    // Nothing runnable: switch to the idle VCPU and idle the pcpu.
    as.movi(r13, idle_vcpu_addr());
    as.store(rbp, r13, L::kHvCurrentVcpu);
    as.load(r10, r13, L::kVcpuState);
    a_eq(r10, L::kVcpuStateIdle, kAssertIdleVcpu);  // paper Listing 2
    as.mov(r8, r13);
    as.load(r9, r8, L::kVcpuDomain);
    as.ret();
    as.pad_ud(3);
  }

  // sched_block: blocks the current VCPU, compacts it out of the runqueue,
  // and reschedules.  Clobbers nearly everything (calls schedule).
  void emit_sched_block() {
    as.global("sched_block");
    as.movi(r10, L::kVcpuStateBlocked);
    as.store(r8, r10, L::kVcpuState);
    as.load(r10, r8, L::kVcpuId);
    as.load(r11, rbp, L::kHvRunqCount);
    as.andi(r11, 31);  // timing clamp: identity fault-free (count <= kMaxVcpus)
    as.movi(r12, 0);  // read cursor
    as.movi(r13, 0);  // write cursor
    auto scan = as.here();
    auto done = as.make_label();
    auto skip = as.make_label();
    as.cmp(r12, r11);
    as.jge(done);
    as.mov(r14, rbp);
    as.add(r14, r12);
    as.load(r15, r14, L::kHvRunq);
    as.cmp(r15, r10);
    as.je(skip);  // drop the current vcpu's entry
    as.mov(rbx, rbp);
    as.add(rbx, r13);
    as.store(rbx, r15, L::kHvRunq);
    as.inc(r13);
    as.bind(skip);
    as.inc(r12);
    as.jmp(scan);
    as.bind(done);
    as.store(rbp, r13, L::kHvRunqCount);
    as.call("schedule");
    as.ret();
    as.pad_ud(3);
  }

  // inject_guest_event: r10 = vector.  Pushes an exception frame into the
  // guest's kernel area and vectors the guest through its trap table —
  // the PV equivalent of delivering an exception.  Clobbers r11..r13.
  void emit_inject_guest_event() {
    as.global("inject_guest_event");
    a_le(r10, kNumGuestExceptions - 1, kAssertTrapVector);  // Listing 1
    as.load(r11, r9, L::kDomGuestRam);
    as.load(r12, r8, L::kVcpuSaveRip);
    as.store(r11, r12, L::kGuestExcFrame + 0);
    as.load(r12, r8, L::kVcpuSaveRflags);
    as.store(r11, r12, L::kGuestExcFrame + 1);
    as.load(r12, r8, L::kVcpuSaveRsp);
    as.store(r11, r12, L::kGuestExcFrame + 2);
    as.store(r11, r10, L::kGuestExcFrame + 3);
    as.mov(r12, r8);
    as.add(r12, r10);
    as.load(r13, r12, L::kVcpuTrapTable);
    as.store(r8, r13, L::kVcpuSaveRip);
    as.ret();
    as.pad_ud(3);
  }

  // do_tasklet_work: drains the tasklet queue; each tasklet does a small
  // amount of bounded work.  Clobbers r10..r14.
  void emit_tasklet_work() {
    as.global("do_tasklet_work");
    // Timing-analyzability budget: the queue only drains inside the loop,
    // so the iteration count equals the entry count (<= 15 in any correct
    // execution — the assertion below checks it).  Carrying that bound in
    // a register gives the static analysis a provable trip count; the
    // budget never binds fault-free.
    as.load(r14, rbp, L::kHvTaskletCount);
    as.andi(r14, 15);
    auto loop = as.here();
    auto out = as.make_label();
    as.cmpi(r14, 0);
    as.je(out);
    as.dec(r14);
    as.load(r10, rbp, L::kHvTaskletCount);
    as.cmpi(r10, 0);
    as.je(out);
    a_le(r10, 15, kAssertTaskletQueue);
    as.dec(r10);
    as.store(rbp, r10, L::kHvTaskletCount);
    as.mov(r11, rbp);
    as.add(r11, r10);
    as.load(r11, r11, L::kHvTaskletQueue);  // tasklet id
    as.mov(r12, r11);
    as.andi(r12, 3);
    as.inc(r12);  // 1..4 work iterations
    auto work = as.here();
    as.load(r13, rbp, L::kHvPerfcCounters + 1);
    as.add(r13, r11);
    as.store(rbp, r13, L::kHvPerfcCounters + 1);
    as.dec(r12);
    as.cmpi(r12, 0);
    as.jg(work);
    as.jmp(loop);
    as.bind(out);
    as.ret();
    as.pad_ud(3);
  }

  // do_softirq_work: processes pending softirq bits until none remain
  // (timer -> update_time, schedule -> schedule, tasklet -> tasklet work).
  // Clobbers r10, rsi and whatever the dispatched handlers clobber.
  void emit_softirq_work() {
    as.global("do_softirq_work");
    // Timing-analyzability budget: none of the dispatched handlers raises
    // a softirq, so pending bits only ever clear — at most one iteration
    // per serviceable bit plus a final drain, 4 total.  A budget of 8
    // never binds fault-free but bounds the loop even when a fault
    // corrupts the pending word mid-drain.  rsi survives every callee
    // (update_time, schedule, do_tasklet_work leave it untouched).
    as.movi(rsi, 8);
    auto loop = as.here();
    auto out = as.make_label();
    auto not_timer = as.make_label();
    auto not_sched = as.make_label();
    auto clear_all = as.make_label();
    as.cmpi(rsi, 0);
    as.je(out);
    as.dec(rsi);
    as.load(r10, rbp, L::kHvSoftirqPending);
    as.cmpi(r10, 0);
    as.je(out);
    as.testi(r10, L::kSoftirqTimer);
    as.je(not_timer);
    as.andi(r10, ~L::kSoftirqTimer);
    as.store(rbp, r10, L::kHvSoftirqPending);
    as.call("update_time");
    as.jmp(loop);
    as.bind(not_timer);
    as.testi(r10, L::kSoftirqSchedule);
    as.je(not_sched);
    as.andi(r10, ~L::kSoftirqSchedule);
    as.store(rbp, r10, L::kHvSoftirqPending);
    as.call("schedule");
    as.jmp(loop);
    as.bind(not_sched);
    as.testi(r10, L::kSoftirqTasklet);
    as.je(clear_all);
    as.andi(r10, ~L::kSoftirqTasklet);
    as.store(rbp, r10, L::kHvSoftirqPending);
    as.call("do_tasklet_work");
    as.jmp(loop);
    as.bind(clear_all);  // unknown bits: discard
    as.movi(r10, 0);
    as.store(rbp, r10, L::kHvSoftirqPending);
    as.bind(out);
    as.ret();
    as.pad_ud(3);
  }

  // ==========================================================================
  // Category 1 & 3: device IRQs, softirqs, tasklets
  // ==========================================================================

  void emit_irq_softirq_tasklet() {
    handler("do_irq", [&] {
      a_le(rdi, kNumIrqLines - 1, kAssertIrqLine);
      as.mov(r10, rbp);
      as.add(r10, rdi);
      as.load(r11, r10, L::kHvIrqTable);  // entry = dom<<8 | port
      as.mov(r12, r11);
      as.shri(r12, 8);
      as.mov(r13, r11);
      as.andi(r13, 0xff);
      a_le(r12, opt_.num_domains - 1, kAssertDomainIndex);
      as.mov(r10, r12);
      as.shli(r10, 6);
      as.addi(r10, static_cast<std::int64_t>(L::kDomainBase));
      as.mov(r11, r13);
      as.call("evtchn_set_pending");
      as.load(r14, rbp, L::kHvPerfcCounters + 0);
      as.inc(r14);
      as.store(rbp, r14, L::kHvPerfcCounters + 0);
      as.movi(rax, 0);
      as.ret();
    });

    handler("do_softirq", [&] {
      as.call("do_softirq_work");
      as.movi(rax, 0);
      as.ret();
    });

    handler("do_tasklet", [&] {
      as.call("do_tasklet_work");
      as.movi(rax, 0);
      as.ret();
    });
  }

  // ==========================================================================
  // Category 2: APIC interrupt handlers
  // ==========================================================================

  void emit_apic_handlers() {
    handler("apic_timer", [&] {
      as.call("update_time");
      auto no_fire = as.make_label();
      as.load(r10, r8, L::kVcpuTimerDeadline);
      as.cmpi(r10, 0);
      as.je(no_fire);
      as.load(r11, rbp, L::kHvSystemTime);
      as.cmp(r10, r11);
      as.jg(no_fire);  // deadline still in the future
      as.movi(r12, 0);
      as.store(r8, r12, L::kVcpuTimerDeadline);
      as.movi(r12, 1);
      as.store(r8, r12, L::kVcpuPendingEvents);
      as.bind(no_fire);
      as.load(r10, rbp, L::kHvSoftirqPending);
      as.ori(r10, L::kSoftirqTimer | L::kSoftirqSchedule);
      as.store(rbp, r10, L::kHvSoftirqPending);
      as.call("do_softirq_work");
      as.movi(rax, 0);
      as.ret();
    });

    handler("apic_error", [&] {
      as.load(r10, rbp, L::kHvApicEsr);
      as.load(r11, rbp, L::kHvConsolePtr);
      as.mov(r12, r11);
      as.andi(r12, 0xff);
      as.addi(r12, static_cast<std::int64_t>(L::kConsoleBase));
      as.store(r12, r10);
      as.inc(r11);
      as.store(rbp, r11, L::kHvConsolePtr);
      as.movi(r10, 0);
      as.store(rbp, r10, L::kHvApicEsr);
      as.load(r10, rbp, L::kHvPerfcCounters + 7);
      as.inc(r10);
      as.store(rbp, r10, L::kHvPerfcCounters + 7);
      as.movi(rax, 0);
      as.ret();
    });

    handler("apic_spurious", [&] {
      // The shortest handler: just account it.
      as.load(r10, rbp, L::kHvPerfcCounters + 8);
      as.inc(r10);
      as.store(rbp, r10, L::kHvPerfcCounters + 8);
      as.movi(rax, 0);
      as.ret();
    });

    handler("apic_thermal", [&] {
      auto ok = as.make_label();
      as.load(r10, rbp, L::kHvThermal);
      as.cmpi(r10, 100);
      as.jle(ok);
      as.movi(r11, 1);
      as.store(rbp, r11, L::kHvThrottle);
      as.bind(ok);
      as.movi(rax, 0);
      as.ret();
    });

    handler("apic_perf_counter", [&] {
      as.load(r10, rbp, L::kHvPerfcCounters + 9);
      as.inc(r10);
      as.store(rbp, r10, L::kHvPerfcCounters + 9);
      as.store(rbp, rdi, L::kHvPerfcCounters + 10);  // overflow status
      as.movi(rax, 0);
      as.ret();
    });

    handler("apic_cmci", [&] {
      // Corrected machine checks: count set bits across the first banks.
      as.movi(r10, 0);
      as.movi(r11, 0);
      auto loop = as.here();
      auto done = as.make_label();
      as.cmpi(r10, 1);
      as.jg(done);
      as.mov(r12, rbp);
      as.add(r12, r10);
      as.load(r13, r12, L::kHvMcBanks);
      as.add(r11, r13);
      as.inc(r10);
      as.jmp(loop);
      as.bind(done);
      as.load(r12, rbp, L::kHvPerfcCounters + 11);
      as.add(r12, r11);
      as.store(rbp, r12, L::kHvPerfcCounters + 11);
      as.movi(rax, 0);
      as.ret();
    });

    handler("ipi_event_check", [&] {
      auto done = as.make_label();
      as.load(r10, r8, L::kVcpuPendingEvents);
      as.cmpi(r10, 0);
      as.je(done);
      as.load(r11, r9, L::kDomSharedInfo);
      as.load(r12, r11, L::kShArchFlags);
      as.ori(r12, 1);  // callback pending
      as.store(r11, r12, L::kShArchFlags);
      as.bind(done);
      as.movi(rax, 0);
      as.ret();
    });

    handler("ipi_call_function", [&] {
      as.load(r10, rbp, L::kHvIpiArg);
      as.mov(r11, r10);
      as.andi(r11, 7);
      as.inc(r11);  // 1..8 iterations
      auto work = as.here();
      as.load(r12, rbp, L::kHvPerfcCounters + 12);
      as.xor_(r12, r10);
      as.store(rbp, r12, L::kHvPerfcCounters + 12);
      as.dec(r11);
      as.cmpi(r11, 0);
      as.jg(work);
      as.movi(r12, 0);
      as.store(rbp, r12, L::kHvIpiArg);  // ack
      as.movi(rax, 0);
      as.ret();
    });

    handler("ipi_reschedule", [&] {
      as.load(r10, rbp, L::kHvSoftirqPending);
      as.ori(r10, L::kSoftirqSchedule);
      as.store(rbp, r10, L::kHvSoftirqPending);
      as.call("do_softirq_work");
      as.movi(rax, 0);
      as.ret();
    });

    handler("ipi_irq_move", [&] {
      as.load(r10, rbp, L::kHvIpiArg);
      as.andi(r10, 0xf);
      as.mov(r11, rbp);
      as.add(r11, r10);
      as.load(r12, r11, L::kHvIrqTable);   // re-read + rewrite the entry
      as.store(r11, r12, L::kHvIrqTable);  // (destination cpu not modelled)
      as.load(r13, rbp, L::kHvPerfcCounters + 13);
      as.inc(r13);
      as.store(rbp, r13, L::kHvPerfcCounters + 13);
      as.movi(rax, 0);
      as.ret();
    });
  }

  // ==========================================================================
  // Category 4: exception handlers
  // ==========================================================================

  /// A plain "reflect to the guest" exception handler.
  void simple_inject(const std::string& sym, int vector) {
    handler(sym, [&] {
      as.movi(r10, vector);
      as.call("inject_guest_event");
      as.movi(rax, 0);
      as.ret();
    });
  }

  /// Inject with an architectural error code stored into the frame first.
  void inject_with_errcode(const std::string& sym, int vector) {
    handler(sym, [&] {
      as.load(r11, r9, L::kDomGuestRam);
      as.store(r11, rdi, L::kGuestExcFrame + 3);
      as.movi(r10, vector);
      as.call("inject_guest_event");
      as.movi(rax, 0);
      as.ret();
    });
  }

  void emit_exception_handlers() {
    simple_inject("do_divide_error", 0);

    handler("do_debug", [&] {
      as.store(rbp, rdi, L::kHvDebugreg + 6);  // dr6 status
      as.movi(r10, 1);
      as.call("inject_guest_event");
      as.movi(rax, 0);
      as.ret();
    });

    handler("do_nmi", [&] {
      auto no_log = as.make_label();
      as.load(r10, rbp, L::kHvNmiReason);
      as.testi(r10, 1);
      as.je(no_log);
      // Log the NMI reason to the console ring.
      as.load(r11, rbp, L::kHvConsolePtr);
      as.mov(r12, r11);
      as.andi(r12, 0xff);
      as.addi(r12, static_cast<std::int64_t>(L::kConsoleBase));
      as.store(r12, r10);
      as.inc(r11);
      as.store(rbp, r11, L::kHvConsolePtr);
      as.bind(no_log);
      as.load(r10, rbp, L::kHvPerfcCounters + 4);
      as.inc(r10);
      as.store(rbp, r10, L::kHvPerfcCounters + 4);
      as.movi(rax, 0);
      as.ret();
    });

    simple_inject("do_int3", 3);
    simple_inject("do_overflow", 4);
    simple_inject("do_bounds", 5);
    simple_inject("do_invalid_op", 6);

    handler("do_device_not_available", [&] {
      as.load(r10, r9, L::kDomSharedInfo);
      as.load(r11, r10, L::kShArchFlags);
      as.ori(r11, 4);  // fpu dirty
      as.store(r10, r11, L::kShArchFlags);
      as.movi(r10, 7);
      as.call("inject_guest_event");
      as.movi(rax, 0);
      as.ret();
    });

    handler("do_double_fault", [&] {
      // A guest double fault is unrecoverable: crash the domain, log it,
      // and deschedule.
      as.movi(r10, 1);
      as.store(r9, r10, L::kDomState);
      as.load(r11, rbp, L::kHvConsolePtr);
      as.movi(rcx, 4);
      as.load(r13, r9, L::kDomId);
      auto log = as.here();
      as.mov(r12, r11);
      as.andi(r12, 0xff);
      as.addi(r12, static_cast<std::int64_t>(L::kConsoleBase));
      as.store(r12, r13);
      as.inc(r11);
      as.dec(rcx);
      as.cmpi(rcx, 0);
      as.jg(log);
      as.store(rbp, r11, L::kHvConsolePtr);
      as.call("sched_block");
      as.movi(rax, 0);
      as.ret();
    });

    simple_inject("do_coproc_seg_overrun", 9);
    inject_with_errcode("do_invalid_tss", 10);
    inject_with_errcode("do_segment_not_present", 11);
    inject_with_errcode("do_stack_segment", 12);

    // do_general_protection: the paper's Section II example — a guest
    // executed a privileged instruction (cpuid/rdtsc); the hypervisor
    // emulates it and writes the results into the VCPU register save
    // area.  A soft error here produces exactly the "incorrect eax"
    // SDC scenario the paper describes.
    handler("do_general_protection", [&] {
      auto emulate_cpuid = as.make_label();
      auto emulate_rdtsc = as.make_label();
      as.cmpi(rdi, 0x0f);
      as.je(emulate_cpuid);
      as.cmpi(rdi, 0x31);
      as.je(emulate_rdtsc);
      as.movi(r10, 13);
      as.call("inject_guest_event");
      as.movi(rax, 0);
      as.ret();

      // Emulation results land in the guest's register save slots; the
      // emulated eax travels via the handler's return value, which
      // ret_to_guest stores into the guest rax slot.
      as.bind(emulate_cpuid);
      auto leaf1 = as.make_label();
      as.cmpi(rsi, 0);
      as.jne(leaf1);
      as.movi(r11, 0x756e6547);                 // "Genu"
      as.store(r8, r11, L::kVcpuSaveGprs + 1);
      as.movi(r11, 0x6c65746e);                 // "ntel"
      as.store(r8, r11, L::kVcpuSaveGprs + 2);
      as.movi(r11, 0x49656e69);                 // "ineI"
      as.store(r8, r11, L::kVcpuSaveGprs + 3);
      as.movi(rax, 0x0d);  // guest eax: max leaf
      as.ret();
      as.bind(leaf1);
      as.movi(r11, 0x00100800);
      as.store(r8, r11, L::kVcpuSaveGprs + 1);
      as.movi(r11, 0x80982201);
      as.store(r8, r11, L::kVcpuSaveGprs + 2);
      as.movi(r11, 0x078bfbfd);
      as.store(r8, r11, L::kVcpuSaveGprs + 3);
      as.load(rax, r9, L::kDomId);
      as.shli(rax, 8);
      as.addi(rax, 0x000106a5);  // family/model/stepping, domain-stamped
      as.ret();

      as.bind(emulate_rdtsc);
      as.rdtsc(r11);
      as.load(r12, rbp, L::kHvTscScaleMul);
      as.mul(r11, r12);
      as.mov(rax, r11);
      as.andi(rax, 0xffffffff);  // guest eax: low half
      as.shri(r11, 32);
      as.store(r8, r11, L::kVcpuSaveGprs + 3);  // guest edx: high half
      as.ret();
    });

    handler("do_page_fault", [&] {
      auto not_mapped = as.make_label();
      as.load(r10, r9, L::kDomGuestRam);
      as.mov(r11, rdi);
      as.shri(r11, 4);
      as.andi(r11, 0xf);  // l1 index
      as.mov(r12, r10);
      as.add(r12, r11);
      as.load(r13, r12, L::kGuestPageTable);
      as.cmpi(r13, 0);
      as.je(not_mapped);
      // Fixup: synthesize the translation and expose it to the guest.
      as.mov(r14, r13);
      as.shli(r14, 8);
      as.mov(r15, rdi);
      as.andi(r15, 0xf);
      as.or_(r14, r15);
      a_ne(r14, 0, kAssertPtFixup);  // translation must be nonzero
      as.mov(r15, rdi);
      as.andi(r15, 0xff);
      as.add(r15, r10);
      as.store(r15, r14, L::kGuestAppPtrs);
      as.load(r11, rbp, L::kHvPerfcCounters + 5);  // minor-fault count
      as.inc(r11);
      as.store(rbp, r11, L::kHvPerfcCounters + 5);
      as.movi(rax, 0);
      as.ret();
      as.bind(not_mapped);
      as.store(r10, rdi, L::kGuestExcFrame + 3);  // cr2
      as.movi(r10, 14);
      as.call("inject_guest_event");
      as.movi(rax, 0);
      as.ret();
    });

    handler("do_spurious_interrupt", [&] {
      as.load(r10, rbp, L::kHvPerfcCounters + 6);
      as.inc(r10);
      as.store(rbp, r10, L::kHvPerfcCounters + 6);
      as.movi(rax, 0);
      as.ret();
    });

    simple_inject("do_math_fault", 16);
    simple_inject("do_alignment_check", 17);

    handler("do_machine_check", [&] {
      as.movi(r10, 0);
      as.movi(r11, 0);
      auto loop = as.here();
      auto done = as.make_label();
      as.cmpi(r10, 3);
      as.jg(done);
      as.mov(r12, rbp);
      as.add(r12, r10);
      as.load(r13, r12, L::kHvMcBanks);
      as.or_(r11, r13);
      as.inc(r10);
      as.jmp(loop);
      as.bind(done);
      auto benign = as.make_label();
      as.testi(r11, 1);  // fatal bit
      as.je(benign);
      as.movi(r12, 1);
      as.store(r9, r12, L::kDomState);
      as.call("sched_block");
      as.bind(benign);
      as.movi(rax, 0);
      as.ret();
    });

    simple_inject("do_simd_error", 18);
  }

  // ==========================================================================
  // Category 5: hypercalls
  // ==========================================================================

  void emit_hypercalls() {
    handler("hypercall_set_trap_table", [&] {
      a_le(rdi, 16, kAssertTrapTableCount);
      as.andi(rdi, 31);  // timing clamp: identity for any asserted count
      as.load(r10, r9, L::kDomGuestRam);
      as.movi(r11, 0);
      auto loop = as.here();
      auto done = as.make_label();
      as.cmp(r11, rdi);
      as.jge(done);
      as.mov(r12, r11);
      as.shli(r12, 1);
      as.add(r12, r10);
      as.load(r13, r12, L::kGuestReqBuffer);      // vector
      as.load(r14, r12, L::kGuestReqBuffer + 1);  // guest handler address
      a_le(r13, kNumGuestExceptions - 1, kAssertTrapVector);  // Listing 1
      as.mov(r15, r8);
      as.add(r15, r13);
      as.store(r15, r14, L::kVcpuTrapTable);
      as.inc(r11);
      as.jmp(loop);
      as.bind(done);
      as.movi(rax, 0);
      as.ret();
    });

    handler("hypercall_mmu_update", [&] {
      a_le(rdi, 64, kAssertMmuCount);
      as.andi(rdi, 0x7f);  // timing clamp: identity for any asserted count
      as.load(r10, r9, L::kDomGuestRam);
      as.movi(r11, 0);
      as.movi(rax, 0);
      auto loop = as.here();
      auto done = as.make_label();
      auto bad = as.make_label();
      auto next = as.make_label();
      as.cmp(r11, rdi);
      as.jge(done);
      as.mov(r12, r11);
      as.shli(r12, 1);
      as.add(r12, r10);
      as.load(r13, r12, L::kGuestReqBuffer);      // window offset
      as.load(r14, r12, L::kGuestReqBuffer + 1);  // value
      as.cmpi(r13, 64);
      as.jae(bad);
      // Validate the entry before installing it, as real mmu_update does
      // (type and frame checks): the frame field must be within the
      // machine's frame space.  Corrupted values take the reject path.
      as.mov(r15, r14);
      as.shri(r15, 24);
      as.cmpi(r15, 0);
      as.jne(bad);  // frame beyond physical memory: -EINVAL
      as.mov(r15, r10);
      as.add(r15, r13);
      as.store(r15, r14, L::kGuestMmuWindow);
      as.jmp(next);
      as.bind(bad);
      as.movi(rax, -22);  // -EINVAL
      as.bind(next);
      as.inc(r11);
      as.jmp(loop);
      as.bind(done);
      as.ret();
    });

    handler("hypercall_set_gdt", [&] {
      a_le(rdi, 8, kAssertGdtEntries);
      as.andi(rdi, 15);  // timing clamp: identity for any asserted count
      as.load(r10, r9, L::kDomGuestRam);
      as.movi(r11, 0);
      auto loop = as.here();
      auto done = as.make_label();
      as.cmp(r11, rdi);
      as.jge(done);
      as.mov(r12, r11);
      as.add(r12, r10);
      as.load(r13, r12, L::kGuestReqBuffer);
      // Descriptor validation (fixup_guest_code_selector-style): corrupted
      // descriptors are repaired rather than installed verbatim.
      auto desc_ok = as.make_label();
      as.mov(r14, r13);
      as.andi(r14, 1);  // present bit
      as.cmpi(r14, 1);
      as.je(desc_ok);
      as.ori(r13, 1);  // force-present, strip nothing else
      as.bind(desc_ok);
      as.mov(r14, r8);
      as.add(r14, r11);
      as.store(r14, r13, L::kVcpuGdt);
      as.inc(r11);
      as.jmp(loop);
      as.bind(done);
      as.movi(rax, 0);
      as.ret();
    });

    handler("hypercall_stack_switch", [&] {
      auto bad = as.make_label();
      as.load(r10, r9, L::kDomGuestRam);
      as.cmp(rdi, r10);
      as.jb(bad);
      as.mov(r11, r10);
      as.addi(r11, static_cast<std::int64_t>(L::kGuestRamStride));
      as.cmp(rdi, r11);
      as.jae(bad);
      as.store(r8, rdi, L::kVcpuSaveRsp);
      as.movi(rax, 0);
      as.ret();
      as.bind(bad);
      as.movi(rax, -14);  // -EFAULT
      as.ret();
    });

    handler("hypercall_set_callbacks", [&] {
      as.store(r8, rdi, L::kVcpuCallback);
      as.movi(rax, 0);
      as.ret();
    });

    handler("hypercall_fpu_taskswitch", [&] {
      auto clear = as.make_label();
      auto commit = as.make_label();
      as.load(r10, r9, L::kDomSharedInfo);
      as.load(r11, r10, L::kShArchFlags);
      as.cmpi(rdi, 0);
      as.je(clear);
      as.ori(r11, 2);  // TS set
      as.jmp(commit);
      as.bind(clear);
      as.andi(r11, ~std::int64_t{2});
      as.bind(commit);
      as.store(r10, r11, L::kShArchFlags);
      as.movi(rax, 0);
      as.ret();
    });

    handler("hypercall_sched_op_compat", [&] {
      auto block = as.make_label();
      as.cmpi(rdi, 1);
      as.je(block);
      as.call("schedule");  // yield
      as.movi(rax, 0);
      as.ret();
      as.bind(block);
      as.call("sched_block");
      as.movi(rax, 0);
      as.ret();
    });

    handler("hypercall_platform_op", [&] {
      auto settime = as.make_label();
      as.cmpi(rdi, 1);
      as.je(settime);
      as.load(r10, rbp, L::kHvPlatformFlags);
      as.mov(r11, rsi);
      as.or_(r10, r11);
      as.store(rbp, r10, L::kHvPlatformFlags);
      as.movi(rax, 0);
      as.ret();
      as.bind(settime);
      as.store(rbp, rsi, L::kHvWallclockSec);
      as.call("update_time");
      as.movi(rax, 0);
      as.ret();
    });

    handler("hypercall_set_debugreg", [&] {
      a_le(rdi, 7, kAssertDebugregIndex);
      as.mov(r10, rbp);
      as.add(r10, rdi);
      as.store(r10, rsi, L::kHvDebugreg);
      as.movi(rax, 0);
      as.ret();
    });

    handler("hypercall_get_debugreg", [&] {
      a_le(rdi, 7, kAssertDebugregIndex);
      as.mov(r10, rbp);
      as.add(r10, rdi);
      as.load(rax, r10, L::kHvDebugreg);
      as.ret();
    });

    handler("hypercall_update_descriptor", [&] {
      auto bad = as.make_label();
      a_le(rdi, 7, kAssertDescriptorIndex);
      as.mov(r10, rsi);
      as.andi(r10, 1);  // present bit must be set
      as.cmpi(r10, 0);
      as.je(bad);
      as.mov(r10, r8);
      as.add(r10, rdi);
      as.store(r10, rsi, L::kVcpuGdt);
      as.movi(rax, 0);
      as.ret();
      as.bind(bad);
      as.movi(rax, -22);
      as.ret();
    });

    handler("hypercall_memory_op", [&] {
      auto dec_loop_head = as.make_label();
      auto done_inc = as.make_label();
      auto done_dec = as.make_label();
      // Timing clamp: page-op batches are at most 16 pages fault-free.
      as.andi(rsi, 31);
      as.load(r10, r9, L::kDomTotPages);
      as.load(r11, r9, L::kDomMaxPages);
      as.load(r12, r9, L::kDomGuestRam);
      as.movi(r13, 0);
      as.cmpi(rdi, 1);
      as.je(dec_loop_head);
      auto inc_loop = as.here();
      as.cmp(r13, rsi);
      as.jge(done_inc);
      as.inc(r10);
      as.mov(r14, r13);
      as.andi(r14, 0x3f);
      as.add(r14, r12);
      as.store(r14, r10, L::kGuestAppPtrs);  // "frame number" for the app
      as.inc(r13);
      as.jmp(inc_loop);
      as.bind(done_inc);
      as.mov(r14, r11);
      as.inc(r14);
      a_lt(r10, r14, kAssertPagesLimit);  // tot_pages <= max_pages
      as.store(r9, r10, L::kDomTotPages);
      as.mov(rax, rsi);
      as.ret();
      as.bind(dec_loop_head);
      auto dec_loop = as.here();
      as.cmp(r13, rsi);
      as.jge(done_dec);
      as.cmpi(r10, 0);
      as.je(done_dec);
      as.dec(r10);
      as.inc(r13);
      as.jmp(dec_loop);
      as.bind(done_dec);
      as.store(r9, r10, L::kDomTotPages);
      as.mov(rax, r13);
      as.ret();
    });

    handler("hypercall_multicall", [&] {
      a_le(rdi, 8, kAssertMulticallCount);
      // Timing-analyzable loop carriage: the batch bound lives in rdx and
      // the index in rsi, registers none of the multicall-safe bodies
      // write, so neither needs to round-trip through the stack and the
      // static analysis can prove the trip count across the indirect
      // calls.  The clamp is the identity for any asserted batch size.
      as.mov(rdx, rdi);
      as.andi(rdx, 15);
      as.load(r10, r9, L::kDomGuestRam);
      as.movi(rsi, 0);
      auto loop = as.here();
      auto done = as.make_label();
      auto skip = as.make_label();
      as.cmp(rsi, rdx);
      as.jge(done);
      as.mov(r12, rsi);
      as.shli(r12, 1);
      as.add(r12, r10);
      as.load(r13, r12, L::kGuestReqBuffer);      // hypercall number
      as.load(r14, r12, L::kGuestReqBuffer + 1);  // argument
      a_le(r13, kNumHypercalls - 1, kAssertMulticallIndex);
      as.mov(r15, rbp);
      as.add(r15, r13);
      as.load(r15, r15, L::kHvHypercallTable);
      as.cmpi(r15, 0);
      as.je(skip);  // not multicall-safe: skipped
      as.push(rdi);
      as.push(r10);
      as.mov(rdi, r14);
      auto ret_here = as.make_label();
      as.movi(rbx, ret_here);
      as.push(rbx);
      as.jmp_reg(r15);  // manual indirect call through the in-memory table
      as.bind(ret_here);
      as.pop(r10);
      as.pop(rdi);
      as.bind(skip);
      as.inc(rsi);
      as.jmp(loop);
      as.bind(done);
      as.mov(rax, rsi);
      as.ret();
    });

    handler("hypercall_update_va_mapping", [&] {
      auto bad = as.make_label();
      as.cmpi(rdi, 0x100);
      as.jae(bad);
      as.load(r11, r9, L::kDomGuestRam);
      as.mov(r10, rdi);
      as.andi(r10, 0xff);
      as.add(r10, r11);
      as.store(r10, rsi, L::kGuestAppPtrs);
      as.load(r12, rbp, L::kHvPerfcCounters + 2);  // tlb-flush count
      as.inc(r12);
      as.store(rbp, r12, L::kHvPerfcCounters + 2);
      as.movi(rax, 0);
      as.ret();
      as.bind(bad);
      as.movi(rax, -22);
      as.ret();
    });

    handler("hypercall_set_timer_op", [&] {
      auto past = as.make_label();
      as.load(r10, rbp, L::kHvSystemTime);
      as.cmp(rdi, r10);
      as.jb(past);
      as.store(r8, rdi, L::kVcpuTimerDeadline);
      as.movi(rax, 0);
      as.ret();
      as.bind(past);
      as.movi(r11, 0);
      as.store(r8, r11, L::kVcpuTimerDeadline);
      as.load(r11, rbp, L::kHvSoftirqPending);
      as.ori(r11, L::kSoftirqTimer);
      as.store(rbp, r11, L::kHvSoftirqPending);
      as.movi(rax, 0);
      as.ret();
    });

    handler("hypercall_event_channel_op_compat", [&] {
      as.mov(r10, r9);
      as.mov(r11, rdi);
      as.call("evtchn_set_pending");
      as.movi(rax, 0);
      as.ret();
    });

    handler("hypercall_xen_version", [&] {
      auto done = as.make_label();
      as.load(rax, rbp, L::kHvXenVersion);
      as.cmpi(rdi, 1);
      as.jne(done);
      as.load(r10, r9, L::kDomGuestRam);
      as.movi(r11, 0x2e31);  // extraversion ".1"
      as.store(r10, r11, L::kGuestAppData + 0x10);
      as.movi(r11, 0x322e);  // ".2"
      as.store(r10, r11, L::kGuestAppData + 0x11);
      as.movi(r11, 0);
      as.store(r10, r11, L::kGuestAppData + 0x12);
      as.movi(r11, 4);
      as.store(r10, r11, L::kGuestAppData + 0x13);
      as.bind(done);
      as.ret();
    });

    handler("hypercall_console_io", [&] {
      a_le(rdi, 64, kAssertConsoleCount);
      as.andi(rdi, 0x7f);  // timing clamp: identity for any asserted count
      as.load(r10, r9, L::kDomGuestRam);
      as.load(r11, rbp, L::kHvConsolePtr);
      as.movi(r12, 0);
      auto loop = as.here();
      auto done = as.make_label();
      as.cmp(r12, rdi);
      as.jge(done);
      as.mov(r13, r12);
      as.add(r13, r10);
      as.load(r14, r13, L::kGuestReqBuffer);
      as.mov(r13, r11);
      as.andi(r13, 0xff);  // ring wrap
      as.addi(r13, static_cast<std::int64_t>(L::kConsoleBase));
      as.store(r13, r14);
      as.inc(r11);
      as.inc(r12);
      as.jmp(loop);
      as.bind(done);
      as.store(rbp, r11, L::kHvConsolePtr);
      as.mov(rax, rdi);
      as.ret();
    });

    handler("hypercall_physdev_op_compat", [&] {
      as.load(r10, rbp, L::kHvPerfcCounters + 3);
      as.inc(r10);
      as.store(rbp, r10, L::kHvPerfcCounters + 3);
      as.movi(rax, 0);
      as.ret();
    });

    handler("hypercall_grant_table_op", [&] {
      // Timing clamp: grant batches are at most 8 entries fault-free.
      as.andi(rsi, 15);
      as.load(r10, r9, L::kDomGuestRam);
      as.movi(r11, 0);
      auto loop = as.here();
      auto done = as.make_label();
      auto unmap = as.make_label();
      auto next = as.make_label();
      as.cmp(r11, rsi);
      as.jge(done);
      as.mov(r12, r11);
      as.add(r12, r10);
      as.load(r13, r12, L::kGuestReqBuffer);  // grant ref
      a_le(r13, L::kNumGrantEntries - 1, kAssertGrantRef);
      as.mov(r14, r9);
      as.add(r14, r13);
      as.cmpi(rdi, 0);
      as.jne(unmap);
      as.load(r15, r14, L::kDomGrantTable);
      as.ori(r15, 1);  // map flag
      as.store(r14, r15, L::kDomGrantTable);
      as.jmp(next);
      as.bind(unmap);
      as.movi(r15, 0);
      as.store(r14, r15, L::kDomGrantTable);
      as.bind(next);
      as.inc(r11);
      as.jmp(loop);
      as.bind(done);
      as.load(r12, r9, L::kDomGrantCount);
      as.add(r12, rsi);
      as.store(r9, r12, L::kDomGrantCount);
      as.mov(rax, rsi);
      as.ret();
    });

    handler("hypercall_vm_assist", [&] {
      auto disable = as.make_label();
      auto commit = as.make_label();
      as.movi(r10, 1);
      as.shl(r10, rsi);
      as.load(r11, r9, L::kDomVmAssist);
      as.cmpi(rdi, 0);
      as.jne(disable);
      as.or_(r11, r10);
      as.jmp(commit);
      as.bind(disable);
      as.not_(r10);
      as.and_(r11, r10);
      as.bind(commit);
      as.store(r9, r11, L::kDomVmAssist);
      as.movi(rax, 0);
      as.ret();
    });

    handler("hypercall_update_va_mapping_otherdomain", [&] {
      auto denied = as.make_label();
      as.load(r10, r9, L::kDomIsPrivileged);
      as.cmpi(r10, 1);
      as.jne(denied);
      a_le(rdi, opt_.num_domains - 1, kAssertDomainIndex);
      as.mov(r10, rdi);
      as.shli(r10, 6);
      as.addi(r10, static_cast<std::int64_t>(L::kDomainBase));
      as.load(r11, r10, L::kDomGuestRam);
      as.mov(r12, rsi);
      as.andi(r12, 0xff);
      as.add(r12, r11);
      as.store(r12, rdx, L::kGuestAppPtrs);
      as.movi(rax, 0);
      as.ret();
      as.bind(denied);
      as.movi(rax, -1);  // -EPERM
      as.ret();
    });

    handler("hypercall_iret", [&] {
      as.load(r10, r9, L::kDomGuestRam);
      as.load(r11, r10, L::kGuestExcFrame + 0);
      as.store(r8, r11, L::kVcpuSaveRip);
      as.load(r11, r10, L::kGuestExcFrame + 1);
      as.store(r8, r11, L::kVcpuSaveRflags);
      as.load(r11, r10, L::kGuestExcFrame + 2);
      as.store(r8, r11, L::kVcpuSaveRsp);
      as.movi(r11, 0);
      as.store(r8, r11, L::kVcpuPendingEvents);
      as.movi(rax, 0);
      as.ret();
    });

    handler("hypercall_vcpu_op", [&] {
      const int num_vcpus = opt_.num_domains * opt_.vcpus_per_domain;
      auto down = as.make_label();
      auto runstate = as.make_label();
      auto already_up = as.make_label();
      a_le(rsi, num_vcpus - 1, kAssertVcpuIndex);
      as.mov(r10, rsi);
      as.shli(r10, 6);
      as.addi(r10, static_cast<std::int64_t>(L::kVcpuBase));
      as.cmpi(rdi, 1);
      as.je(down);
      as.cmpi(rdi, 2);
      as.je(runstate);
      // VCPUOP_up.
      as.load(r11, r10, L::kVcpuState);
      as.cmpi(r11, L::kVcpuStateRunning);
      as.je(already_up);
      as.movi(r11, L::kVcpuStateRunning);
      as.store(r10, r11, L::kVcpuState);
      as.mov(r14, rsi);
      as.call("runq_insert");
      as.bind(already_up);
      as.movi(rax, 0);
      as.ret();
      // VCPUOP_down: only the *current* vcpu is descheduled here; a foreign
      // vcpu just has its state flipped (the next schedule skips it).
      as.bind(down);
      auto foreign = as.make_label();
      as.load(r11, r8, L::kVcpuId);
      as.cmp(r11, rsi);
      as.jne(foreign);
      as.call("sched_block");
      as.movi(rax, 0);
      as.ret();
      as.bind(foreign);
      as.movi(r11, L::kVcpuStateBlocked);
      as.store(r10, r11, L::kVcpuState);
      as.movi(rax, 0);
      as.ret();
      // VCPUOP_get_runstate_info: export runstate times to the guest.
      as.bind(runstate);
      as.load(r11, r9, L::kDomGuestRam);
      for (int w = 0; w < 4; ++w) {
        as.load(r12, r10, L::kVcpuRunstateTime + w);
        as.store(r11, r12, L::kGuestTimeArea + w);
      }
      as.load(r12, rbp, L::kHvSystemTime);
      as.store(r11, r12, L::kGuestTimeArea + 4);
      as.movi(rax, 0);
      as.ret();
    });

    handler("hypercall_set_segment_base", [&] {
      as.store(r8, rdi, L::kVcpuSegBase);
      as.movi(rax, 0);
      as.ret();
    });

    handler("hypercall_mmuext_op", [&] {
      // Timing clamp: extended-op batches are at most 16 ops fault-free.
      as.andi(rsi, 31);
      as.movi(r10, 0);
      auto loop = as.here();
      auto done = as.make_label();
      auto pin = as.make_label();
      auto next = as.make_label();
      as.cmp(r10, rsi);
      as.jge(done);
      as.cmpi(rdi, 0);
      as.jne(pin);
      as.load(r11, rbp, L::kHvPerfcCounters + 2);  // tlb flush
      as.inc(r11);
      as.store(rbp, r11, L::kHvPerfcCounters + 2);
      as.jmp(next);
      as.bind(pin);
      as.load(r11, r9, L::kDomGuestRam);
      as.mov(r12, r10);
      as.andi(r12, 63);
      as.movi(r13, 1);
      as.shl(r13, r12);
      as.load(r14, r11, L::kGuestPinned);
      as.or_(r14, r13);
      as.store(r11, r14, L::kGuestPinned);
      as.bind(next);
      as.inc(r10);
      as.jmp(loop);
      as.bind(done);
      as.mov(rax, rsi);
      as.ret();
    });

    handler("hypercall_xsm_op", [&] {
      auto denied = as.make_label();
      as.load(r10, rbp, L::kHvXsmPolicy);
      as.mov(r11, rdi);
      as.test(r10, r11);
      as.jne(denied);
      as.movi(rax, 0);
      as.ret();
      as.bind(denied);
      as.movi(rax, -13);  // -EACCES
      as.ret();
    });

    handler("hypercall_nmi_op", [&] {
      as.store(r8, rdi, L::kVcpuNmiCallback);
      as.movi(rax, 0);
      as.ret();
    });

    handler("hypercall_sched_op", [&] {
      auto yield = as.make_label();
      auto block = as.make_label();
      auto shutdown = as.make_label();
      auto ready = as.make_label();
      as.cmpi(rdi, 0);
      as.je(yield);
      as.cmpi(rdi, 1);
      as.je(block);
      as.cmpi(rdi, 2);
      as.je(shutdown);
      // SCHEDOP_poll on port rsi.
      as.load(r10, r9, L::kDomSharedInfo);
      as.load(r11, r10, L::kShEvtchnPending);
      as.movi(r12, 1);
      as.shl(r12, rsi);
      as.test(r11, r12);
      as.jne(ready);
      as.call("sched_block");
      as.movi(rax, 0);
      as.ret();
      as.bind(ready);
      as.movi(rax, 1);
      as.ret();
      as.bind(yield);
      as.call("schedule");
      as.movi(rax, 0);
      as.ret();
      as.bind(block);
      as.call("sched_block");
      as.movi(rax, 0);
      as.ret();
      as.bind(shutdown);
      as.movi(r10, 1);
      as.store(r9, r10, L::kDomState);
      as.call("sched_block");
      as.movi(rax, 0);
      as.ret();
    });

    handler("hypercall_callback_op", [&] {
      as.store(r8, rdi, L::kVcpuCallback);
      as.movi(rax, 0);
      as.ret();
    });

    handler("hypercall_xenoprof_op", [&] {
      as.movi(r10, 0);
      auto loop = as.here();
      auto done = as.make_label();
      as.cmpi(r10, 7);
      as.jg(done);
      as.mov(r11, rbp);
      as.add(r11, r10);
      as.movi(r12, 0);
      as.store(r11, r12, L::kHvPerfcCounters + 8);
      as.inc(r10);
      as.jmp(loop);
      as.bind(done);
      as.movi(rax, 0);
      as.ret();
    });

    handler("hypercall_event_channel_op", [&] {
      auto alloc = as.make_label();
      auto send = as.make_label();
      as.cmpi(rdi, 0);
      as.je(alloc);
      as.cmpi(rdi, 1);
      as.je(send);
      // EVTCHNOP_bind: bind port rsi to the current vcpu.
      a_le(rsi, L::kNumEvtchnPorts - 1, kAssertEvtchnPort);
      as.load(r10, r8, L::kVcpuId);
      as.mov(r11, r9);
      as.add(r11, rsi);
      as.store(r11, r10, L::kDomEvtchnVcpu);
      as.mov(rax, rsi);
      as.ret();
      // EVTCHNOP_alloc_unbound: scan for a free port (sentinel 0xff).
      as.bind(alloc);
      auto scan = as.make_label();
      auto found = as.make_label();
      auto full = as.make_label();
      as.movi(r10, 0);
      as.bind(scan);
      as.cmpi(r10, L::kNumEvtchnPorts - 1);
      as.jg(full);
      as.mov(r11, r9);
      as.add(r11, r10);
      as.load(r12, r11, L::kDomEvtchnVcpu);
      as.cmpi(r12, 0xff);
      as.je(found);
      as.inc(r10);
      as.jmp(scan);
      as.bind(found);
      as.load(r12, r8, L::kVcpuId);
      as.store(r11, r12, L::kDomEvtchnVcpu);
      as.mov(rax, r10);
      as.ret();
      as.bind(full);
      as.movi(rax, -28);  // -ENOSPC
      as.ret();
      // EVTCHNOP_send.
      as.bind(send);
      as.mov(r10, r9);
      as.mov(r11, rsi);
      as.call("evtchn_set_pending");
      as.movi(rax, 0);
      as.ret();
    });

    handler("hypercall_physdev_op", [&] {
      a_le(rdi, kNumIrqLines - 1, kAssertIrqLine);
      as.load(r10, r9, L::kDomId);
      as.shli(r10, 8);
      as.add(r10, rsi);
      as.mov(r11, rbp);
      as.add(r11, rdi);
      as.store(r11, r10, L::kHvIrqTable);
      as.movi(rax, 0);
      as.ret();
    });

    handler("hypercall_hvm_op", [&] {
      a_le(rdi, 3, kAssertHvmParam);
      as.mov(r10, r9);
      as.add(r10, rdi);
      as.store(r10, rsi, L::kDomHvmParams);
      as.movi(rax, 0);
      as.ret();
    });

    handler("hypercall_sysctl", [&] {
      as.movi(r10, 0);
      as.movi(rax, 0);
      auto loop = as.here();
      auto done = as.make_label();
      as.cmpi(r10, opt_.num_domains - 1);
      as.jg(done);
      as.mov(r11, r10);
      as.shli(r11, 6);
      as.addi(r11, static_cast<std::int64_t>(L::kDomainBase));
      as.load(r12, r11, L::kDomTotPages);
      as.add(rax, r12);
      as.inc(r10);
      as.jmp(loop);
      as.bind(done);
      as.ret();
    });

    handler("hypercall_domctl", [&] {
      const int num_vcpus = opt_.num_domains * opt_.vcpus_per_domain;
      auto denied = as.make_label();
      auto pause = as.make_label();
      auto unpause = as.make_label();
      as.load(r10, r9, L::kDomIsPrivileged);
      as.cmpi(r10, 1);
      as.jne(denied);
      a_le(rsi, opt_.num_domains - 1, kAssertDomainIndex);
      as.mov(r10, rsi);
      as.shli(r10, 6);
      as.addi(r10, static_cast<std::int64_t>(L::kDomainBase));
      as.cmpi(rdi, 0);
      as.je(pause);
      as.cmpi(rdi, 1);
      as.je(unpause);
      // DOMCTL_getdomaininfo.
      as.load(r11, r10, L::kDomId);
      as.shli(r11, 32);
      as.load(r12, r10, L::kDomTotPages);
      as.add(r11, r12);
      as.mov(rax, r11);
      as.ret();
      as.bind(pause);
      emit_domctl_setstate(num_vcpus, L::kVcpuStateBlocked);
      as.bind(unpause);
      emit_domctl_setstate(num_vcpus, L::kVcpuStateRunning);
      as.bind(denied);
      as.movi(rax, -1);
      as.ret();
    });

    handler("hypercall_kexec_op", [&] {
      auto bad = as.make_label();
      as.load(r10, r9, L::kDomGuestRam);
      as.cmp(rdi, r10);
      as.jb(bad);
      as.mov(r11, r10);
      as.addi(r11, static_cast<std::int64_t>(L::kGuestRamStride));
      as.cmp(rdi, r11);
      as.jae(bad);
      as.store(rbp, rdi, L::kHvKexecImage);
      as.movi(rax, 0);
      as.ret();
      as.bind(bad);
      as.movi(rax, -22);
      as.ret();
    });

    handler("hypercall_tmem_op", [&] {
      // A compute-heavy body: FNV-style hash over the request buffer.
      as.load(r10, r9, L::kDomGuestRam);
      as.movi(rax, 0x9e37);
      as.movi(r11, 0);
      as.mov(r12, rdi);
      as.andi(r12, 0x3f);
      auto loop = as.here();
      auto done = as.make_label();
      as.cmp(r11, r12);
      as.jge(done);
      as.mov(r13, r11);
      as.add(r13, r10);
      as.load(r14, r13, L::kGuestReqBuffer);
      as.xor_(rax, r14);
      as.movi(r15, 1099511628211);
      as.mul(rax, r15);
      as.inc(r11);
      as.jmp(loop);
      as.bind(done);
      as.ret();
    });
  }

  /// Shared tail for domctl pause/unpause: walk every VCPU and set the
  /// state of those owned by the target domain (address in r10).
  void emit_domctl_setstate(int num_vcpus, std::int64_t state) {
    as.movi(r11, 0);
    auto loop = as.here();
    auto done = as.make_label();
    auto next = as.make_label();
    as.cmpi(r11, num_vcpus - 1);
    as.jg(done);
    as.mov(r12, r11);
    as.shli(r12, 6);
    as.addi(r12, static_cast<std::int64_t>(L::kVcpuBase));
    as.load(r13, r12, L::kVcpuDomain);
    as.cmp(r13, r10);
    as.jne(next);
    as.movi(r14, state);
    as.store(r12, r14, L::kVcpuState);
    as.bind(next);
    as.inc(r11);
    as.jmp(loop);
    as.bind(done);
    as.movi(rax, 0);
    as.ret();
  }
};

}  // namespace

std::string assert_name(std::uint32_t id) {
  switch (id) {
    case kAssertTrapVector: return "trap_vector_le_last";
    case kAssertIdleVcpu: return "is_idle_vcpu_before_idle";
    case kAssertEvtchnPort: return "evtchn_port_bounds";
    case kAssertRunqBounds: return "runq_capacity";
    case kAssertIrqLine: return "irq_line_bounds";
    case kAssertMmuCount: return "mmu_update_batch";
    case kAssertGdtEntries: return "set_gdt_entries";
    case kAssertDebugregIndex: return "debugreg_index";
    case kAssertPagesLimit: return "tot_pages_le_max_pages";
    case kAssertGrantRef: return "grant_ref_bounds";
    case kAssertVcpuIndex: return "vcpu_index_bounds";
    case kAssertConsoleCount: return "console_batch";
    case kAssertMulticallCount: return "multicall_batch";
    case kAssertMulticallIndex: return "multicall_target";
    case kAssertTrapTableCount: return "trap_table_batch";
    case kAssertDescriptorIndex: return "descriptor_index";
    case kAssertHvmParam: return "hvm_param_index";
    case kAssertTaskletQueue: return "tasklet_queue_bounds";
    case kAssertDomainIndex: return "domain_index_bounds";
    case kAssertTimeMonotonic: return "system_time_monotonic";
    case kAssertCurrentVcpu: return "current_vcpu_pointer";
    case kAssertRunqEntry: return "runq_entry_valid";
    case kAssertPtFixup: return "pt_fixup_nonzero";
    case kAssertTscDelta: return "tsc_delta_bounded";
    default: return "unknown_assert_" + std::to_string(id);
  }
}

std::vector<sim::Addr> Microvisor::hypercall_body_table() const {
  std::vector<sim::Addr> table(kNumHypercalls, 0);
  // Only argument-compatible, non-scheduling bodies are multicall-safe,
  // matching how real multicall batches are used (timer, fpu, debugreg,
  // version queries).
  const Hypercall safe[] = {Hypercall::fpu_taskswitch, Hypercall::get_debugreg,
                            Hypercall::set_timer_op, Hypercall::xen_version};
  for (Hypercall h : safe) {
    const std::string sym =
        "hypercall_" + std::string(hypercall_name(h)) + "_body";
    table[static_cast<std::size_t>(h)] = program.symbol(sym);
  }
  return table;
}

analysis::AnalyzeOptions analyze_options(const Microvisor& mv) {
  analysis::AnalyzeOptions opt;
  std::vector<sim::Addr> bodies;
  for (sim::Addr a : mv.hypercall_body_table()) {
    if (a != 0) bodies.push_back(a);
  }
  const sim::Program& p = mv.program;
  for (sim::Addr a = p.base(); a < p.end(); ++a) {
    if (p.at(a).op == sim::Opcode::JmpR) {
      opt.cfg.indirect_targets.emplace(a, bodies);
    }
  }
  opt.verifier.max_assert_id = kAssertMaxId;
  return opt;
}

Microvisor build_microvisor(const MicrovisorOptions& options) {
  if (options.num_domains < 1 || options.num_domains > L::kMaxDomains) {
    throw std::invalid_argument("build_microvisor: bad num_domains");
  }
  if (options.vcpus_per_domain < 1 ||
      options.num_domains * options.vcpus_per_domain + 1 > L::kMaxVcpus) {
    throw std::invalid_argument("build_microvisor: bad vcpus_per_domain");
  }
  Emitter emitter(options);
  return Microvisor{emitter.emit(), options};
}

}  // namespace xentry::hv
