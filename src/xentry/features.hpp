// The five-feature execution signature of Table I.
//
//   VMER  VM exit reason                  (Xentry software)
//   RT    # committed instructions        (INST_RETIRED)
//   BR    # branch instructions           (BR_INST_RETIRED)
//   RM    # read memory accesses          (MEM_INST_RETIRED.LOADS)
//   WM    # write memory accesses         (MEM_INST_RETIRED.STORES)
//
// These do not explicitly represent control flow, but implicitly capture
// its dynamic patterns — which is what lets the transition detector flag
// valid-but-incorrect flows that pure control-flow-validity checkers miss.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "hv/exit_reason.hpp"
#include "sim/perf_counters.hpp"

namespace xentry {

inline constexpr int kNumFeatures = 5;

struct FeatureVector {
  std::int64_t vmer = 0;
  std::int64_t rt = 0;
  std::int64_t br = 0;
  std::int64_t rm = 0;
  std::int64_t wm = 0;

  std::array<std::int64_t, kNumFeatures> as_array() const {
    return {vmer, rt, br, rm, wm};
  }

  static FeatureVector from(const hv::ExitReason& reason,
                            const sim::PerfSnapshot& counters) {
    return {reason.code(),
            static_cast<std::int64_t>(counters.inst_retired),
            static_cast<std::int64_t>(counters.branches),
            static_cast<std::int64_t>(counters.loads),
            static_cast<std::int64_t>(counters.stores)};
  }

  friend bool operator==(const FeatureVector&, const FeatureVector&) = default;
};

/// Canonical feature names, matching Table I's synonyms column and the
/// order of as_array().
const std::vector<std::string>& feature_names();

}  // namespace xentry
