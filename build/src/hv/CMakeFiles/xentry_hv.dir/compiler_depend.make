# Empty compiler generated dependencies file for xentry_hv.
# This may be replaced when dependencies are built.
