// CFG-based implementation of sim::verify_program (declared in
// sim/verifier.hpp; linking xentry_analysis provides it).  Target
// legality and fall-through rules come from the same CFG construction
// the runtime CFI detector replays against, so a program the verifier
// accepts is exactly a program whose fault-free runs the detector will
// never flag.  Issues are emitted in ascending address order (matching
// the retired peephole pass), with UnreachableBlock findings appended
// after the per-instruction diagnostics.
#include "sim/verifier.hpp"

#include <sstream>

#include "analysis/artifacts.hpp"

namespace xentry::sim {

std::string_view issue_kind_name(VerifierIssue::Kind k) {
  switch (k) {
    case VerifierIssue::Kind::BranchOutOfRange: return "branch_out_of_range";
    case VerifierIssue::Kind::BranchIntoPadding: return "branch_into_padding";
    case VerifierIssue::Kind::FallthroughIntoPadding:
      return "fallthrough_into_padding";
    case VerifierIssue::Kind::UnknownAssertId: return "unknown_assert_id";
    case VerifierIssue::Kind::CallTargetNotSymbol:
      return "call_target_not_symbol";
    case VerifierIssue::Kind::UnreachableBlock: return "unreachable_block";
  }
  return "?";
}

std::string VerifierReport::to_string() const {
  std::ostringstream os;
  os << instructions << " instructions (" << padding << " padding), "
     << branches << " branches, " << loads << " loads, " << stores
     << " stores, " << assertions << " assertions, " << indirect_jumps
     << " indirect jumps; " << issues.size() << " issue(s)";
  for (const VerifierIssue& i : issues) {
    os << "\n  [" << issue_kind_name(i.kind) << "] at " << i.addr
       << " target " << i.target << ": " << i.detail;
  }
  return os.str();
}

VerifierReport verify_program(const Program& program,
                              const VerifierOptions& options) {
  const analysis::ControlFlowGraph cfg = analysis::build_cfg(program);
  const analysis::DataflowResult df = analysis::run_dataflow(program, cfg);
  return analysis::verify_with_cfg(program, cfg, df.facts, options);
}

}  // namespace xentry::sim

namespace xentry::analysis {

namespace {

bool is_direct_branch(sim::Opcode op) {
  return op == sim::Opcode::Jmp || op == sim::Opcode::Call ||
         sim::is_cond_branch(op);
}

}  // namespace

sim::VerifierReport verify_with_cfg(const sim::Program& program,
                                    const ControlFlowGraph& cfg,
                                    const std::vector<BlockFacts>& facts,
                                    const sim::VerifierOptions& options) {
  using sim::Addr;
  using sim::Instruction;
  using sim::Opcode;
  using sim::VerifierIssue;

  sim::VerifierReport report;
  std::vector<bool> is_symbol_entry(program.size(), false);
  for (const auto& [name, addr] : program.symbols()) {
    if (program.contains(addr)) {
      is_symbol_entry[addr - program.base()] = true;
    }
  }

  for (Addr a = program.base(); a < program.end(); ++a) {
    const Instruction& insn = program.at(a);
    if (insn.op == Opcode::Ud) {
      ++report.padding;
      continue;
    }
    ++report.instructions;
    report.branches += sim::is_branch(insn.op) ? 1 : 0;
    report.loads += sim::is_mem_load(insn.op) ? 1 : 0;
    report.stores += sim::is_mem_store(insn.op) ? 1 : 0;
    report.assertions += sim::is_assertion(insn.op) ? 1 : 0;
    report.indirect_jumps += insn.op == Opcode::JmpR ? 1 : 0;

    if (is_direct_branch(insn.op)) {
      const auto target = static_cast<Addr>(insn.imm);
      switch (classify_branch_target(program, target)) {
        case TargetStatus::OutOfRange:
          report.issues.push_back({VerifierIssue::Kind::BranchOutOfRange, a,
                                   target, disassemble(insn)});
          break;
        case TargetStatus::Padding:
          report.issues.push_back({VerifierIssue::Kind::BranchIntoPadding, a,
                                   target, disassemble(insn)});
          break;
        case TargetStatus::Ok:
          if (insn.op == Opcode::Call && options.calls_must_hit_symbols &&
              !is_symbol_entry[target - program.base()]) {
            report.issues.push_back({VerifierIssue::Kind::CallTargetNotSymbol,
                                     a, target, disassemble(insn)});
          }
          break;
      }
    }

    if (sim::is_assertion(insn.op) && options.max_assert_id != 0) {
      if (insn.aux == 0 || insn.aux >= options.max_assert_id) {
        report.issues.push_back({VerifierIssue::Kind::UnknownAssertId, a, 0,
                                 disassemble(insn)});
      }
    }

    // Falling through into padding means a function body forgot its
    // ret/jmp/hlt tail.  The CFG marks this on the block's last
    // instruction (an instruction preceding Ud is always block-last).
    const std::uint32_t bi = cfg.block_at(a);
    if (bi != kNoBlock && cfg.blocks[bi].last == a &&
        cfg.blocks[bi].falls_into_padding) {
      report.issues.push_back({VerifierIssue::Kind::FallthroughIntoPadding,
                               a, a + 1, disassemble(insn)});
    }
  }

  // Orphaned code: no static control path from any entry reaches it.
  for (std::uint32_t bi = 0; bi < cfg.blocks.size(); ++bi) {
    if (facts[bi].reachable) continue;
    const BasicBlock& b = cfg.blocks[bi];
    std::ostringstream os;
    os << "block " << b.first << ".." << b.last;
    const std::string sym = program.symbol_at(b.first);
    if (!sym.empty()) os << " in " << sym;
    report.issues.push_back(
        {VerifierIssue::Kind::UnreachableBlock, b.first, b.last, os.str()});
  }
  return report;
}

}  // namespace xentry::analysis
