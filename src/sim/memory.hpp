// Physical memory of the simulated machine.
//
// Memory is a set of mapped regions over a 64-bit word-address space.  Any
// access outside a mapped region raises #PF; a write to a read-only region
// raises #GP.  The sparseness is deliberate: a single bit flip in a pointer
// register usually lands far outside every region, which is exactly how
// soft errors manifest as "fatal system corruptions" the paper's runtime
// detection catches via hardware exceptions (Section III-A).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/types.hpp"

namespace xentry::sim {

enum class Perm : std::uint8_t {
  Read = 1,
  ReadWrite = 3,
};

class Memory {
 public:
  struct Region {
    Addr base = 0;
    Addr size = 0;  ///< in words
    Perm perm = Perm::ReadWrite;
    std::string name;
    std::vector<Word> data;

    bool contains(Addr a) const { return a >= base && a - base < size; }
  };

  /// Maps a region.  Regions must not overlap; they are kept sorted by base.
  /// Returns the region index, which stays stable for the Memory lifetime.
  std::size_t map(Addr base, Addr size, Perm perm, std::string name);

  /// Reads the word at `a` into `out`.  Returns a Trap (kind None on
  /// success).  No C++ exceptions: this is the simulator hot path.
  Trap read(Addr a, Word& out) const;

  /// Writes `v` at `a`.  Returns a Trap (kind None on success).
  Trap write(Addr a, Word v);

  /// Unchecked accessors for host-side (non-simulated) setup and
  /// inspection.  Aborts if `a` is unmapped — programming error, not a
  /// simulated fault.
  Word peek(Addr a) const;
  void poke(Addr a, Word v);

  bool is_mapped(Addr a) const { return find(a) != nullptr; }
  const Region* region_at(Addr a) const { return find(a); }
  const std::vector<Region>& regions() const { return regions_; }

  /// Snapshot/restore of all region contents, for golden-run comparison
  /// and for re-running a faulted activation from a clean state.
  std::vector<std::vector<Word>> snapshot() const;
  void restore(const std::vector<std::vector<Word>>& snap);

  /// Zero-fills every mapped region.
  void clear();

 private:
  const Region* find(Addr a) const;
  Region* find(Addr a);

  std::vector<Region> regions_;  // sorted by base
};

}  // namespace xentry::sim
