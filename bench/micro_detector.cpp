// Microbenchmarks (google-benchmark): the hot paths whose cost the
// overhead model charges — rule evaluation at VM entry, counter
// arm/disarm, simulator step rate, full activation dispatch, and
// end-to-end injection-experiment throughput.
#include <benchmark/benchmark.h>

#include "fault/campaign.hpp"
#include "fault/experiment.hpp"
#include "fault/training.hpp"
#include "hv/machine.hpp"
#include "xentry/framework.hpp"

namespace {

using namespace xentry;

const fault::TrainedDetector& shared_model() {
  static const fault::TrainedDetector det = [] {
    fault::CampaignConfig cfg;
    cfg.injections = 4000;
    cfg.seed = 101;
    cfg.collect_dataset = true;
    auto res = fault::run_campaign(cfg);
    return fault::train_detector(res.dataset);
  }();
  return det;
}

void BM_RuleEvaluation(benchmark::State& state) {
  const ml::RuleSet& rules = shared_model().rules;
  const std::array<std::int64_t, 5> features{28, 120, 25, 30, 22};
  for (auto _ : state) {
    benchmark::DoNotOptimize(rules.evaluate(features));
  }
  state.counters["worst_cmps"] =
      static_cast<double>(rules.max_comparisons());
}
BENCHMARK(BM_RuleEvaluation);

void BM_CounterArmDisarm(benchmark::State& state) {
  sim::PerfCounters pc;
  for (auto _ : state) {
    pc.arm();
    pc.on_retire(true, false, true);
    benchmark::DoNotOptimize(pc.disarm());
  }
}
BENCHMARK(BM_CounterArmDisarm);

void BM_SimulatorSteps(benchmark::State& state) {
  hv::Machine m;
  const auto act = m.make_activation(
      hv::ExitReason::hypercall(hv::Hypercall::mmu_update), 7);
  std::uint64_t steps = 0;
  for (auto _ : state) {
    const hv::RunResult res = m.run(act);
    steps += res.steps;
    benchmark::DoNotOptimize(res.steps);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_SimulatorSteps);

void BM_ActivationUnderXentry(benchmark::State& state) {
  hv::Machine m;
  Xentry x;
  x.set_model(shared_model().rules);
  const auto act = m.make_activation(
      hv::ExitReason::apic(hv::ApicInterrupt::timer), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(x.observe(m, act));
  }
}
BENCHMARK(BM_ActivationUnderXentry);

void BM_InjectionExperiment(benchmark::State& state) {
  hv::Machine golden, faulty;
  Xentry x;
  x.set_model(shared_model().rules);
  fault::InjectionExperiment exp(golden, faulty, x);
  const auto act = golden.make_activation(
      hv::ExitReason::hypercall(hv::Hypercall::grant_table_op), 3);
  std::mt19937_64 rng(5);
  for (auto _ : state) {
    auto probe = exp.probe_golden(act);
    const hv::Injection inj = fault::InjectionExperiment::
        draw_activated_injection(rng, probe.trace,
                                 golden.microvisor().program);
    benchmark::DoNotOptimize(exp.run_one(act, inj));
  }
}
BENCHMARK(BM_InjectionExperiment);

void BM_CampaignThroughput(benchmark::State& state) {
  for (auto _ : state) {
    fault::CampaignConfig cfg;
    cfg.injections = 500;
    cfg.seed = 7;
    benchmark::DoNotOptimize(fault::run_campaign(cfg));
  }
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_CampaignThroughput)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
