// Shared plumbing for the experiment-reproduction binaries.
//
// Every bench prints the rows/series of one paper table or figure.  Scale
// knobs default to paper scale but honour XENTRY_BENCH_SCALE (a fraction,
// e.g. 0.1 for a quick pass).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "fault/campaign.hpp"
#include "fault/record_io.hpp"
#include "fault/stats.hpp"
#include "fault/training.hpp"

namespace xentry::bench {

/// Global scale factor from the environment (default 1.0 = paper scale).
inline double scale() {
  static const double s = [] {
    const char* env = std::getenv("XENTRY_BENCH_SCALE");
    if (env == nullptr) return 1.0;
    const double v = std::atof(env);
    return v > 0 ? v : 1.0;
  }();
  return s;
}

inline int scaled(int n) {
  const int v = static_cast<int>(n * scale());
  return v < 100 ? 100 : v;
}

/// A workload profile pooling every benchmark's PV mixture — the
/// training distribution (the paper trains and tests on the same set of
/// benchmarks, Section III-B).
inline wl::WorkloadProfile pooled_benchmark_profile() {
  wl::WorkloadProfile pooled;
  for (wl::Benchmark b : wl::all_benchmarks()) {
    const wl::WorkloadProfile p = wl::profile(b, wl::VirtMode::Para);
    // Normalize each benchmark's mixture to equal total weight.
    double total = 0;
    for (const auto& [r, w] : p.mix) total += w;
    for (const auto& [r, w] : p.mix) pooled.mix.emplace_back(r, w / total);
  }
  return pooled;
}

/// Trains the deployable transition-detection model the way the paper
/// does: a dedicated injection campaign (~23,400 runs at full scale) over
/// the benchmark workloads, feeding a RandomTree.  Deterministic; shared
/// by the detection benches.
inline fault::TrainedDetector train_paper_model(std::uint64_t seed = 101) {
  fault::CampaignConfig cfg;
  cfg.injections = scaled(23400);
  cfg.seed = seed;
  cfg.collect_dataset = true;
  cfg.workload = pooled_benchmark_profile();
  fault::CampaignResult res = fault::run_campaign(cfg);
  fault::TrainingOptions opt;
  opt.incorrect_target_fraction = 0.20;
  return fault::train_detector(res.dataset, opt);
}

/// Runs the paper's 30,000-injection evaluation campaign with the given
/// model installed.
inline fault::CampaignResult run_eval_campaign(const ml::RuleSet& model,
                                               std::uint64_t seed = 202,
                                               int injections = 30000) {
  fault::CampaignConfig cfg;
  cfg.injections = scaled(injections);
  cfg.seed = seed;
  cfg.model = model;
  cfg.workload = pooled_benchmark_profile();
  return fault::run_campaign(cfg);
}

inline void print_header(const std::string& title) {
  std::printf("=== %s ===\n", title.c_str());
  if (scale() != 1.0) std::printf("(scale factor %.3f)\n", scale());
}

/// FNV-1a over a 64-bit value, byte by byte.  The canonical
/// implementation lives in fault/record_io.hpp next to the codecs and
/// the checkpoint journal that pin the same digest on disk.
using fault::fnv1a;

/// FNV-1a over every determinism-relevant field of every record, in
/// order.  The digest pins the full record stream for a fixed
/// (injections, shards, seed) triple, so CI can assert determinism —
/// and telemetry-independence — without shipping the records themselves.
/// Delegates to fault::records_digest (fault/record_io.hpp), the same
/// digest the checkpoint journal carries and telemetry_tool verifies
/// against persisted shard streams.
using fault::records_digest;

}  // namespace xentry::bench
