// Static-analysis driver: build a microvisor, analyze it, report.
//
// Runs analyze_program over an assembled microvisor configuration (or,
// with --all-configs, every configuration the test matrix exercises),
// prints the artifact summary, and exits non-zero when the analyzer has
// findings (verifier issues or stack warnings) — so CI can gate merges
// on the shipped programs analyzing clean.
//
// Usage: analyze_program [options]
//   --domains N        num_domains (default 3)
//   --vcpus N          vcpus_per_domain (default 1)
//   --no-assertions    build without software assertions
//   --time-checks      enable the duplicated-time-read extension
//   --shadow-stack     enable the shadow-stack extension
//   --all-configs      analyze the full configuration matrix instead
//   --json FILE        write the artifact(s) as JSON (an array with
//                      --all-configs, a single object otherwise)
//   --quiet            suppress the per-config text summary
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/artifacts.hpp"
#include "hv/microvisor.hpp"

namespace {

using namespace xentry;

struct Job {
  hv::MicrovisorOptions opt;
  analysis::AnalysisArtifacts art;
};

std::string config_name(const hv::MicrovisorOptions& o) {
  std::string s = "domains=" + std::to_string(o.num_domains) +
                  " vcpus=" + std::to_string(o.vcpus_per_domain);
  s += o.assertions ? " assertions" : " no-assertions";
  if (o.time_checks) s += " time-checks";
  if (o.shadow_stack) s += " shadow-stack";
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  hv::MicrovisorOptions opt;
  bool all_configs = false, quiet = false;
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--domains") == 0 && i + 1 < argc) {
      opt.num_domains = std::atoi(argv[++i]);
    } else if (std::strcmp(a, "--vcpus") == 0 && i + 1 < argc) {
      opt.vcpus_per_domain = std::atoi(argv[++i]);
    } else if (std::strcmp(a, "--no-assertions") == 0) {
      opt.assertions = false;
    } else if (std::strcmp(a, "--time-checks") == 0) {
      opt.time_checks = true;
    } else if (std::strcmp(a, "--shadow-stack") == 0) {
      opt.shadow_stack = true;
    } else if (std::strcmp(a, "--all-configs") == 0) {
      all_configs = true;
    } else if (std::strcmp(a, "--json") == 0 && i + 1 < argc) {
      json_out = argv[++i];
    } else if (std::strcmp(a, "--quiet") == 0) {
      quiet = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", a);
      return 2;
    }
  }

  std::vector<hv::MicrovisorOptions> configs;
  if (all_configs) {
    configs = {
        {3, 1, true, false}, {3, 1, true, true},  {3, 1, false, false},
        {2, 1, true, false}, {4, 2, true, true},  {8, 1, true, false},
        {1, 1, true, false},
    };
  } else {
    configs.push_back(opt);
  }

  std::vector<Job> jobs;
  std::size_t findings = 0;
  for (const hv::MicrovisorOptions& o : configs) {
    Job j;
    j.opt = o;
    const hv::Microvisor mv = hv::build_microvisor(o);
    j.art = analysis::analyze_program(mv.program, hv::analyze_options(mv));
    findings += j.art.finding_count();
    if (!quiet) {
      std::printf("== %s ==\n%s\n\n", config_name(o).c_str(),
                  j.art.to_string().c_str());
    }
    jobs.push_back(std::move(j));
  }

  if (!json_out.empty()) {
    std::ofstream os(json_out);
    if (!os) {
      std::fprintf(stderr, "cannot open %s\n", json_out.c_str());
      return 2;
    }
    if (all_configs) os << "[\n";
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (all_configs) {
        os << (i ? ",\n" : "") << "{\"config\": \""
           << config_name(jobs[i].opt) << "\", \"artifact\": ";
      }
      jobs[i].art.write_json(os);
      if (all_configs) os << "}";
    }
    if (all_configs) os << "\n]\n";
    std::fprintf(stderr, "[analyze_program] wrote %zu artifact%s to %s\n",
                 jobs.size(), jobs.size() == 1 ? "" : "s", json_out.c_str());
  }

  if (findings > 0) {
    std::fprintf(stderr, "[analyze_program] FAIL: %zu finding%s\n", findings,
                 findings == 1 ? "" : "s");
    return 1;
  }
  std::fprintf(stderr, "[analyze_program] OK: %zu config%s clean\n",
               jobs.size(), jobs.size() == 1 ? "" : "s");
  return 0;
}
