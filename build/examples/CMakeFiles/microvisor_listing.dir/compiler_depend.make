# Empty compiler generated dependencies file for microvisor_listing.
# This may be replaced when dependencies are built.
