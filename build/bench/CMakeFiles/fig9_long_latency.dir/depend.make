# Empty dependencies file for fig9_long_latency.
# This may be replaced when dependencies are built.
