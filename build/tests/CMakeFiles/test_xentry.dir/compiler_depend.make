# Empty compiler generated dependencies file for test_xentry.
# This may be replaced when dependencies are built.
