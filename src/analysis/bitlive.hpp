// Per-bit register liveness over the CFG: the vulnerability map.
//
// A backward dataflow in the style of BEC (arXiv 2401.05753) refining the
// register-granularity activation test to bit granularity.  For every
// instruction address `a` and architectural register `r`, live_mask(a, r)
// has bit `b` set when flipping bit `b` of `r` immediately *before* the
// instruction at `a` executes may change observable behaviour: persistent
// memory contents at the VM-entry gate, the retired-rip trace, trap
// behaviour, or any register a gate-time consumer (derived assertions,
// CFI) reads.  A clear bit is a *proof* that the flip is architecturally
// masked — the injection campaign may skip it, provided the skipped
// probability mass is reweighted exactly (src/fault/sampler.hpp).
//
// The lattice is the powerset of (18 regs × 64 bits) per program point,
// joined by union; transfer functions are monotone and the lattice is
// finite, so the worklist converges without widening.  Conservatism rules:
//   - rip is always fully live (every fetch consumes all of it);
//   - memory-writing operands are fully live (persistent state is diffed
//     word-for-word at the gate);
//   - unresolved indirect control flow (accept_any_succ) makes everything
//     live at block exit;
//   - addresses outside every block (Ud padding) are fully live;
//   - trap *conditions* (divisor, addresses, assertion operands) are fully
//     live, which makes destination kills on the non-trapping path sound:
//     the trapping path is terminal and never reads the destination.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "analysis/cfg.hpp"
#include "sim/program.hpp"

namespace xentry::analysis {

struct DerivedAssertion;

/// Per-register live masks at one instruction address (live-in: state seen
/// by a flip performed just before the instruction executes).
using LiveState = std::array<std::uint64_t, sim::kNumArchRegs>;

struct VulnerabilityMap {
  sim::Addr base = 0;
  std::size_t code_size = 0;

  /// live[slot][reg]: converged live-in masks, one entry per instruction
  /// slot of the analyzed program.
  std::vector<LiveState> live;

  /// Popcount of all 18 masks per slot (≤ 18 * 64 = 1152).  Lets the
  /// sampler price a uniform (step, reg, bit) draw in O(1) per step.
  std::vector<std::uint16_t> live_bits;

  /// Expected live fraction of an activation-biased draw at this slot:
  /// mean over candidate registers (regs_read ∪ {rip}) of
  /// popcount(live[slot][r]) / 64.
  std::vector<double> activated_live_frac;

  bool empty() const { return live.empty(); }
  bool contains(sim::Addr a) const { return a - base < code_size; }

  /// Live mask for `reg` at `a`; all-ones when `a` is outside the image
  /// (never provably masked off the map).
  std::uint64_t live_mask(sim::Addr a, std::uint8_t reg) const {
    const sim::Addr off = a - base;
    if (off >= code_size) return ~0ull;
    return live[off][reg];
  }

  bool is_live(sim::Addr a, std::uint8_t reg, std::uint8_t bit) const {
    return (live_mask(a, reg) >> bit) & 1u;
  }

  /// Fraction of the uniform (reg, bit) space potentially live at `a`.
  double uniform_live_frac(sim::Addr a) const {
    const sim::Addr off = a - base;
    if (off >= code_size) return 1.0;
    return static_cast<double>(live_bits[off]) /
           (sim::kNumArchRegs * sim::kBitsPerReg);
  }

  /// Static summary over the whole image: fraction of (slot, reg, bit)
  /// points proven masked.  1.0 - mean(live_bits) / 1152.
  double masked_fraction() const;
};

/// Compute the converged per-bit liveness map.  `derived` are the
/// analyzer's gate-time range assertions (their registers are consumed at
/// each Hlt); pass an empty vector when assertions are not derived.
VulnerabilityMap compute_bit_liveness(
    const sim::Program& program, const ControlFlowGraph& cfg,
    const std::vector<DerivedAssertion>& derived);

}  // namespace xentry::analysis
