// Ablation: training-set size and tree depth (the study the paper omits
// for space in Section III-B).
#include <cstdio>

#include "bench/bench_util.hpp"
#include "ml/decision_tree.hpp"
#include "ml/metrics.hpp"

int main() {
  using namespace xentry;
  bench::print_header("Ablation: training-set size and tree depth");

  fault::CampaignConfig cfg;
  cfg.injections = bench::scaled(46800);  // 2x the paper's training runs
  cfg.seed = 101;
  cfg.collect_dataset = true;
  auto full = fault::run_campaign(cfg);
  fault::CampaignConfig test_cfg;
  test_cfg.injections = bench::scaled(12000);
  test_cfg.seed = 606;
  test_cfg.collect_dataset = true;
  auto test = fault::run_campaign(test_cfg);

  std::printf("-- training-set size sweep (RandomTree, depth 24) --\n");
  std::printf("%10s %10s %9s %9s %9s\n", "samples", "incorrect", "accuracy",
              "fp_rate", "fn_rate");
  for (double frac : {0.05, 0.1, 0.25, 0.5, 1.0}) {
    auto [sub, rest] = full.dataset.split(frac, 31);
    if (sub.count(ml::Label::Incorrect) == 0 ||
        sub.count(ml::Label::Correct) == 0) {
      continue;
    }
    const ml::Dataset bal = fault::oversample_incorrect(sub, 0.20);
    ml::DecisionTree tree;
    tree.train(bal, ml::random_tree_params(5, 17));
    auto m = ml::evaluate(test.dataset,
                          [&](auto row) { return tree.predict(row); });
    std::printf("%10zu %10zu %8.2f%% %8.2f%% %8.1f%%\n", sub.size(),
                sub.count(ml::Label::Incorrect), 100 * m.accuracy(),
                100 * m.false_positive_rate(),
                100 * m.false_negative_rate());
  }

  std::printf("\n-- tree-depth sweep (full training set) --\n");
  std::printf("%6s %9s %9s %9s %8s %8s\n", "depth", "accuracy", "fp_rate",
              "fn_rate", "leaves", "worstcmp");
  const ml::Dataset bal = fault::oversample_incorrect(full.dataset, 0.20);
  for (int depth : {2, 4, 8, 16, 24, 32}) {
    ml::TreeParams p = ml::random_tree_params(5, 17);
    p.max_depth = depth;
    ml::DecisionTree tree;
    tree.train(bal, p);
    auto m = ml::evaluate(test.dataset,
                          [&](auto row) { return tree.predict(row); });
    const ml::RuleSet rules = ml::RuleSet::compile(tree);
    std::printf("%6d %8.2f%% %8.2f%% %8.1f%% %8zu %8d\n", depth,
                100 * m.accuracy(), 100 * m.false_positive_rate(),
                100 * m.false_negative_rate(), tree.leaf_count(),
                rules.max_comparisons());
  }
  std::printf("\nexpected shape: accuracy saturates with data and depth;\n"
              "deeper trees trade hot-path comparisons for recall.\n");
  return 0;
}
