file(REMOVE_RECURSE
  "CMakeFiles/xentry_fault.dir/campaign.cpp.o"
  "CMakeFiles/xentry_fault.dir/campaign.cpp.o.d"
  "CMakeFiles/xentry_fault.dir/experiment.cpp.o"
  "CMakeFiles/xentry_fault.dir/experiment.cpp.o.d"
  "CMakeFiles/xentry_fault.dir/outcome.cpp.o"
  "CMakeFiles/xentry_fault.dir/outcome.cpp.o.d"
  "CMakeFiles/xentry_fault.dir/report.cpp.o"
  "CMakeFiles/xentry_fault.dir/report.cpp.o.d"
  "CMakeFiles/xentry_fault.dir/stats.cpp.o"
  "CMakeFiles/xentry_fault.dir/stats.cpp.o.d"
  "CMakeFiles/xentry_fault.dir/training.cpp.o"
  "CMakeFiles/xentry_fault.dir/training.cpp.o.d"
  "libxentry_fault.a"
  "libxentry_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xentry_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
