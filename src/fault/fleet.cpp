#include "fault/fleet.hpp"

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <stdexcept>
#include <thread>
#include <utility>

#include <unistd.h>

#include "fault/checkpoint.hpp"
#include "fault/record_io.hpp"
#include "obs/atomic_file.hpp"
#include "obs/fleet_view.hpp"
#include "obs/snapshot.hpp"

namespace xentry::fault {

namespace {

using Clock = std::chrono::steady_clock;

std::string read_file(const std::string& path) {
  std::string text;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return text;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  return text;
}

std::uint64_t file_size(const std::string& path) {
  struct stat sb{};
  if (::stat(path.c_str(), &sb) != 0) return 0;
  return static_cast<std::uint64_t>(sb.st_size);
}

std::string heartbeat_json(int worker, const HeartbeatSample& s) {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "{\"worker\":%d,\"completed\":%llu,\"total\":%llu,"
      "\"recent_per_sec\":%.17g,\"sink_lag_bytes\":%llu,"
      "\"sink_dropped\":%llu,\"checkpointed\":%llu,\"stragglers\":%llu,"
      "\"elapsed_sec\":%.17g}\n",
      worker, static_cast<unsigned long long>(s.completed),
      static_cast<unsigned long long>(s.total), s.recent_per_sec,
      static_cast<unsigned long long>(s.sink_lag_bytes),
      static_cast<unsigned long long>(s.sink_dropped),
      static_cast<unsigned long long>(s.checkpointed),
      static_cast<unsigned long long>(s.stragglers), s.elapsed_sec);
  return std::string(buf);
}

}  // namespace

std::vector<int> fleet_units_for_worker(int unit_count, int workers,
                                        int worker) {
  std::vector<int> units;
  if (workers <= 0) return units;
  for (int u = worker; u < unit_count; u += workers) units.push_back(u);
  return units;
}

std::string fleet_records_path(const std::string& dir) {
  return dir + "/records";
}

std::string fleet_checkpoint_path(const std::string& dir, int worker) {
  return dir + "/ckpt.worker" + std::to_string(worker);
}

std::string fleet_heartbeat_path(const std::string& dir, int worker) {
  return dir + "/hb.worker" + std::to_string(worker) + ".json";
}

std::string fleet_status_path(const std::string& dir) {
  return dir + "/status.json";
}

CampaignConfig make_worker_config(const FleetOptions& opts, int worker) {
  CampaignConfig cfg = opts.base;
  cfg.shards = 0;  // the unit space overrides it
  cfg.fleet.unit_count = opts.units;
  cfg.fleet.units = fleet_units_for_worker(opts.units, opts.workers, worker);
  cfg.streaming.records_path = fleet_records_path(opts.dir);
  cfg.streaming.checkpoint_path = fleet_checkpoint_path(opts.dir, worker);
  // Records live in the durable unit streams; the worker's in-memory
  // copy would only be thrown away at _exit.
  cfg.streaming.keep_records = false;
  cfg.streaming.abort_after = 0;
  cfg.collect_dataset = false;
  // Metrics sidecars are the plane's data source, so they are not
  // optional in a fleet.  (They do not perturb record digests.)
  cfg.obs.metrics = true;
  cfg.heartbeat.straggler_fraction = opts.straggler_fraction;
  if (opts.worker_heartbeat_sec > 0) {
    cfg.heartbeat.interval_sec = opts.worker_heartbeat_sec;
    const std::string hb_path = fleet_heartbeat_path(opts.dir, worker);
    cfg.heartbeat.callback = [hb_path, worker](const HeartbeatSample& s) {
      obs::write_file_atomic(hb_path, heartbeat_json(worker, s));
    };
  } else {
    cfg.heartbeat.interval_sec = 0;
    cfg.heartbeat.callback = nullptr;
  }
  return cfg;
}

int run_fleet_worker(const FleetOptions& opts, int worker,
                     bool simulate_kill) {
  try {
    CampaignConfig cfg = make_worker_config(opts, worker);
    if (simulate_kill && opts.simulate_kill_worker0_after > 0) {
      cfg.streaming.abort_after = opts.simulate_kill_worker0_after;
    }
    run_campaign(cfg);
    // A simulated kill cut the run short exactly as SIGKILL would have;
    // report it as the abnormal exit it stands in for.
    return simulate_kill && opts.simulate_kill_worker0_after > 0 ? 1 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fleet worker %d: %s\n", worker, e.what());
    return 1;
  }
}

FleetResult run_fleet(const FleetOptions& opts_in) {
  FleetOptions opts = opts_in;
  FleetResult out;
  const auto fail = [&out](std::string msg) {
    out.ok = false;
    out.error = std::move(msg);
    return out;
  };
  if (opts.workers < 1) {
    return fail("fleet: workers must be >= 1, got " +
                std::to_string(opts.workers));
  }
  if (opts.dir.empty()) return fail("fleet: dir must be set");
  if (opts.units <= 0) opts.units = opts.workers;
  if (opts.units < opts.workers) {
    return fail("fleet: units (" + std::to_string(opts.units) +
                ") must be >= workers (" + std::to_string(opts.workers) +
                ") so every worker owns at least one unit");
  }
  if (opts.status_interval_sec <= 0) opts.status_interval_sec = 1.0;

  // Fail fast on a bad campaign config before any process exists.
  try {
    for (int w = 0; w < opts.workers; ++w) {
      validate_campaign_config(make_worker_config(opts, w));
    }
  } catch (const std::exception& e) {
    return fail(e.what());
  }

  const obs::RecordFormat fmt = opts.base.streaming.records_format;
  const std::string records_base = fleet_records_path(opts.dir);

  // -- observability plane ---------------------------------------------------
  obs::FleetView::Options vo;
  vo.total_injections = static_cast<std::uint64_t>(opts.base.injections);
  vo.seed = opts.base.seed;
  vo.unit_count = opts.units;
  vo.workers = opts.workers;
  vo.stall_timeout_sec = opts.stall_timeout_sec;
  vo.straggler_fraction = opts.straggler_fraction;
  for (int w = 0; w < opts.workers; ++w) {
    const std::vector<int> units =
        fleet_units_for_worker(opts.units, opts.workers, w);
    const std::string ckpt = fleet_checkpoint_path(opts.dir, w);
    std::vector<std::string> sidecars;
    sidecars.reserve(units.size());
    for (int u : units) sidecars.push_back(snapshot_sidecar_path(ckpt, u));
    vo.worker_units.push_back(units);
    vo.heartbeat_paths.push_back(fleet_heartbeat_path(opts.dir, w));
    vo.sidecar_paths.push_back(std::move(sidecars));
  }
  obs::FleetView view(std::move(vo));
  const std::string status_path = fleet_status_path(opts.dir);

  // -- supervision -----------------------------------------------------------
  const auto spawn =
      opts.spawn != nullptr
          ? opts.spawn
          : std::function<long(int, int)>([&opts](int w, int attempt) -> long {
              const bool sim = opts.simulate_kill_worker0_after > 0 &&
                               w == 0 && attempt == 0;
              const pid_t pid = ::fork();
              if (pid == 0) _exit(run_fleet_worker(opts, w, sim));
              return pid;
            });

  struct Proc {
    long pid = -1;
    int attempts = 0;
    int restarts = 0;
    bool done = false;
    bool failed = false;
  };
  std::vector<Proc> procs(static_cast<std::size_t>(opts.workers));

  const auto launch = [&](int w) {
    Proc& p = procs[static_cast<std::size_t>(w)];
    const int attempt = p.attempts++;
    const long pid = spawn(w, attempt);
    if (pid <= 0) {
      p.failed = true;
      view.set_lifecycle(w, obs::WorkerLifecycle::kFailed, -1, p.restarts);
      return;
    }
    p.pid = pid;
    view.set_lifecycle(w, obs::WorkerLifecycle::kRunning, pid, p.restarts);
  };
  for (int w = 0; w < opts.workers; ++w) launch(w);

  const auto t0 = Clock::now();
  const auto now_sec = [&t0] {
    return std::chrono::duration<double>(Clock::now() - t0).count();
  };
  const auto feed_journals = [&] {
    // Journal growth is a liveness signal even between heartbeats; the
    // checkpointed-record counts themselves arrive via the heartbeat.
    for (int w = 0; w < opts.workers; ++w) {
      view.note_journal(w, 0, file_size(fleet_checkpoint_path(opts.dir, w)));
    }
  };

  bool chaos_pending = opts.kill_one_after > 0;
  bool any_failed = false;
  double next_status = 0.0;
  const auto fleet_alive = [&procs] {
    for (const Proc& p : procs) {
      if (!p.done && !p.failed) return true;
    }
    return false;
  };

  while (fleet_alive()) {
    // Reap exits; clean exit means the worker's units are complete (and
    // the final merge re-verifies that against the journals).
    for (int w = 0; w < opts.workers; ++w) {
      Proc& p = procs[static_cast<std::size_t>(w)];
      if (p.pid <= 0) continue;
      int status = 0;
      const pid_t r = ::waitpid(static_cast<pid_t>(p.pid), &status, WNOHANG);
      if (r == 0) continue;
      p.pid = -1;
      const bool clean =
          r > 0 && WIFEXITED(status) && WEXITSTATUS(status) == 0;
      if (clean) {
        p.done = true;
        view.set_lifecycle(w, obs::WorkerLifecycle::kDone, -1, p.restarts);
      } else if (p.restarts < opts.max_restarts) {
        ++p.restarts;
        view.set_lifecycle(w, obs::WorkerLifecycle::kRestarting, -1,
                           p.restarts);
        launch(w);
      } else {
        p.failed = true;
        any_failed = true;
        view.set_lifecycle(w, obs::WorkerLifecycle::kFailed, -1, p.restarts);
      }
    }

    // The plane runs on the status cadence; while a chaos kill is armed
    // it samples faster so the kill window does not depend on cadence.
    const double now = now_sec();
    if (now >= next_status) {
      feed_journals();
      view.poll(now);
      // Stall: no signal from a running worker within the timeout.  Kill
      // it; the reap above turns that into a restart (budget permitting).
      for (int w = 0; w < opts.workers; ++w) {
        Proc& p = procs[static_cast<std::size_t>(w)];
        if (p.pid > 0 && view.worker(w).stalled) {
          ::kill(static_cast<pid_t>(p.pid), SIGKILL);
        }
      }
      if (chaos_pending && view.completed() >=
                               static_cast<std::uint64_t>(opts.kill_one_after)) {
        for (int w = 0; w < opts.workers; ++w) {
          Proc& p = procs[static_cast<std::size_t>(w)];
          if (p.pid > 0) {
            ::kill(static_cast<pid_t>(p.pid), SIGKILL);
            chaos_pending = false;
            break;
          }
        }
      }
      view.write_status(status_path, "running");
      if (opts.dashboard) opts.dashboard(view.dashboard_line());
      next_status =
          now + (chaos_pending
                     ? std::min(opts.status_interval_sec, 0.05)
                     : opts.status_interval_sec);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  out.elapsed_sec = now_sec();
  out.worker_restarts.reserve(procs.size());
  for (const Proc& p : procs) {
    out.worker_restarts.push_back(p.restarts);
    out.restarts += p.restarts;
  }
  feed_journals();
  view.poll(now_sec());
  view.write_status(status_path, any_failed ? "failed" : "done");
  if (opts.dashboard) opts.dashboard(view.dashboard_line());
  if (any_failed) {
    return fail("fleet: a worker failed after exhausting its " +
                std::to_string(opts.max_restarts) + "-restart budget");
  }

  // -- deterministic merge + verification ------------------------------------
  // Decode every unit stream in unit order (the single-process record
  // order), re-derive each unit's digest, and cross-check it against the
  // owning worker's journal — the same re-derivation telemetry_tool
  // verify performs.
  std::vector<JournalContents> journals;
  journals.reserve(static_cast<std::size_t>(opts.workers));
  for (int w = 0; w < opts.workers; ++w) {
    journals.push_back(read_journal(fleet_checkpoint_path(opts.dir, w)));
  }
  out.digest = kDigestBasis;
  out.digest_cross_checked = true;
  out.records.reserve(static_cast<std::size_t>(opts.base.injections));
  for (int u = 0; u < opts.units; ++u) {
    const std::string path =
        obs::ShardedFileSink::shard_path(records_base, fmt, u);
    std::vector<InjectionRecord> recs;
    if (!decode_records(read_file(path), fmt, recs)) {
      return fail("fleet: unit stream failed to decode: " + path);
    }
    std::uint64_t unit_digest = kDigestBasis;
    for (const InjectionRecord& r : recs) {
      unit_digest = digest_update(unit_digest, r);
      out.digest = digest_update(out.digest, r);
    }
    const JournalContents& js =
        journals[static_cast<std::size_t>(u % opts.workers)];
    if (js.valid && static_cast<std::size_t>(u) < js.shards.size() &&
        js.shards[static_cast<std::size_t>(u)].has_value()) {
      const ShardCheckpoint& ck = *js.shards[static_cast<std::size_t>(u)];
      if (ck.records_written != recs.size() || ck.digest != unit_digest) {
        return fail("fleet: unit " + std::to_string(u) +
                    " stream disagrees with its journal (records " +
                    std::to_string(recs.size()) + " vs " +
                    std::to_string(ck.records_written) +
                    ") — torn or corrupt stream");
      }
    } else {
      out.digest_cross_checked = false;
    }
    out.records.insert(out.records.end(),
                       std::make_move_iterator(recs.begin()),
                       std::make_move_iterator(recs.end()));
  }
  if (out.records.size() !=
      static_cast<std::size_t>(opts.base.injections)) {
    return fail("fleet: merged stream holds " +
                std::to_string(out.records.size()) + " records, expected " +
                std::to_string(opts.base.injections));
  }
  out.rates = weighted_rates(out.records);

  // Merged metrics: unit sidecars in unit order (sums, so the order is
  // cosmetic) plus the campaign-level shard-count gauge the equivalent
  // single-process merge carries.  Its timing gauges (elapsed, rates)
  // are inherently per-run and excluded by strip_timing_metrics on both
  // sides of any comparison.
  for (int u = 0; u < opts.units; ++u) {
    const std::string sidecar = snapshot_sidecar_path(
        fleet_checkpoint_path(opts.dir, u % opts.workers), u);
    const std::string text = read_file(sidecar);
    if (!text.empty()) {
      out.metrics.merge_from(
          obs::merge_snapshots(obs::read_snapshots(text)));
    }
  }
  out.metrics.gauge("campaign.shards").set(opts.units);
  out.ok = true;
  return out;
}

}  // namespace xentry::fault
