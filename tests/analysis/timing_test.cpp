#include "analysis/timing.hpp"

#include <gtest/gtest.h>

#include "analysis/artifacts.hpp"
#include "hv/machine.hpp"
#include "hv/microvisor.hpp"
#include "sim/assembler.hpp"
#include "sim/cpu.hpp"
#include "sim/memory.hpp"

namespace xentry::analysis {
namespace {

using sim::Addr;
using sim::Assembler;
using sim::Program;
using sim::Reg;

TimingEnvelopes envelopes_of(const Program& p) {
  const ControlFlowGraph cfg = build_cfg(p);
  return compute_timing_envelopes(p, cfg);
}

/// Runs `p` from `entry` to the Hlt gate with armed counters.
sim::PerfSnapshot run_counters(const Program& p, const std::string& entry) {
  sim::Memory mem;
  mem.map(0x100, 64, sim::Perm::ReadWrite, "data");
  mem.map(0x200, 64, sim::Perm::ReadWrite, "stack");
  sim::Cpu cpu(&p, &mem);
  cpu.reset(p.symbol(entry), 0x240);
  cpu.counters().arm();
  EXPECT_EQ(cpu.run(100000).status, sim::StepInfo::Status::Halted);
  return cpu.counters().disarm();
}

TEST(TimingModelTest, CyclesLinearInCounterClasses) {
  const TimingCostModel m;
  sim::PerfSnapshot s;
  s.inst_retired = 10;
  s.branches = 2;
  s.loads = 3;
  s.stores = 1;
  EXPECT_EQ(m.cycles_from_counters(s),
            10 * m.base_cycles + 2 * m.branch_extra + 3 * m.load_extra +
                1 * m.store_extra);
  EXPECT_EQ(m.cost_of(sim::Opcode::Hlt), 0);
  EXPECT_EQ(m.cost_of(sim::Opcode::MovRI), m.base_cycles);
  EXPECT_EQ(m.cost_of(sim::Opcode::Jmp), m.base_cycles + m.branch_extra);
  EXPECT_EQ(m.cost_of(sim::Opcode::Pop),
            m.base_cycles + m.branch_extra * 0 + m.load_extra);
  // Ret is both a branch and a load.
  EXPECT_EQ(m.cost_of(sim::Opcode::Ret),
            m.base_cycles + m.branch_extra + m.load_extra);
}

TEST(TimingTest, StraightLineIsExact) {
  Assembler as(0x1000);
  as.global("main");
  as.movi(Reg::rax, 7);
  as.movi(Reg::rbx, 50);
  as.hlt();
  const Program p = as.finish();
  const TimingEnvelopes env = envelopes_of(p);
  const TimingEnvelope* e = env.at(p.symbol("main"));
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->valid);
  EXPECT_EQ(e->clocks[kClockInsts].lo, 2);
  EXPECT_EQ(e->clocks[kClockInsts].hi, 2);
  EXPECT_EQ(e->clocks[kClockBranches].lo, 0);
  EXPECT_EQ(e->clocks[kClockBranches].hi, 0);
  EXPECT_EQ(e->cycles().lo, e->cycles().hi);
  EXPECT_TRUE(e->contains(env.model, run_counters(p, "main")));
}

TEST(TimingTest, BranchDiamondSpreadsEnvelope) {
  // One path does an extra store; lo and hi must differ accordingly.
  Assembler as(0x1000);
  const auto skip = as.make_label();
  as.global("main");
  as.movi(Reg::rbx, 0x100);
  as.cmpi(Reg::rax, 0);
  as.je(skip);
  as.store(Reg::rbx, Reg::rax);
  as.bind(skip);
  as.hlt();
  const Program p = as.finish();
  const TimingEnvelopes env = envelopes_of(p);
  const TimingEnvelope* e = env.at(p.symbol("main"));
  ASSERT_NE(e, nullptr);
  ASSERT_TRUE(e->valid);
  EXPECT_EQ(e->clocks[kClockStores].lo, 0);
  EXPECT_EQ(e->clocks[kClockStores].hi, 1);
  EXPECT_EQ(e->clocks[kClockInsts].lo, 3);
  EXPECT_EQ(e->clocks[kClockInsts].hi, 4);
  EXPECT_LT(e->cycles().lo, e->cycles().hi);
}

TEST(TimingTest, CountedLoopBoundIsTight) {
  // for (rcx = 10; rcx != 0; --rcx): 1 + 10*3 = 31 retired instructions.
  Assembler as(0x1000);
  const auto loop = as.make_label();
  as.global("main");
  as.movi(Reg::rcx, 10);
  as.bind(loop);
  as.dec(Reg::rcx);
  as.cmpi(Reg::rcx, 0);
  as.jne(loop);
  as.hlt();
  const Program p = as.finish();
  const TimingEnvelopes env = envelopes_of(p);
  const TimingEnvelope* e = env.at(p.symbol("main"));
  ASSERT_NE(e, nullptr);
  ASSERT_TRUE(e->valid);
  const sim::PerfSnapshot s = run_counters(p, "main");
  EXPECT_EQ(s.inst_retired, 31u);
  EXPECT_TRUE(e->contains(env.model, s));
  // The WCET side is exact for this loop shape.
  EXPECT_EQ(e->clocks[kClockInsts].hi, 31);
  EXPECT_LE(e->clocks[kClockInsts].lo, 31);
}

TEST(TimingTest, CountedUpLoopWithRegisterBound) {
  // for (rbx = 0; rbx < 5; ++rbx), guarded by cmp rbx, rcx (rcx = 5):
  // the CmpRR refinement must bound the trip count.
  Assembler as(0x1000);
  const auto loop = as.make_label();
  const auto out = as.make_label();
  as.global("main");
  as.movi(Reg::rbx, 0);
  as.movi(Reg::rcx, 5);
  as.bind(loop);
  as.cmp(Reg::rbx, Reg::rcx);
  as.jge(out);
  as.inc(Reg::rbx);
  as.jmp(loop);
  as.bind(out);
  as.hlt();
  const Program p = as.finish();
  const TimingEnvelopes env = envelopes_of(p);
  const TimingEnvelope* e = env.at(p.symbol("main"));
  ASSERT_NE(e, nullptr);
  ASSERT_TRUE(e->valid);
  const sim::PerfSnapshot s = run_counters(p, "main");
  // 2 movi + 6 guard evaluations (2 insns each) + 5 body (inc+jmp) = 24.
  EXPECT_EQ(s.inst_retired, 24u);
  EXPECT_TRUE(e->contains(env.model, s));
}

TEST(TimingTest, NestedLoopsMultiplyBounds) {
  // outer 4 iterations, inner 3 each; exact retired count checked by run.
  Assembler as(0x1000);
  const auto outer = as.make_label();
  const auto inner = as.make_label();
  as.global("main");
  as.movi(Reg::rcx, 4);
  as.bind(outer);
  as.movi(Reg::rbx, 3);
  as.bind(inner);
  as.dec(Reg::rbx);
  as.cmpi(Reg::rbx, 0);
  as.jne(inner);
  as.dec(Reg::rcx);
  as.cmpi(Reg::rcx, 0);
  as.jne(outer);
  as.hlt();
  const Program p = as.finish();
  const TimingEnvelopes env = envelopes_of(p);
  const TimingEnvelope* e = env.at(p.symbol("main"));
  ASSERT_NE(e, nullptr);
  ASSERT_TRUE(e->valid);
  const sim::PerfSnapshot s = run_counters(p, "main");
  // 1 + 4*(1 + 3*3 + 3) = 53 retired instructions.
  EXPECT_EQ(s.inst_retired, 53u);
  EXPECT_TRUE(e->contains(env.model, s));
  EXPECT_GE(e->clocks[kClockInsts].hi, 53);
}

TEST(TimingTest, UnboundedLoopGetsNoEnvelope) {
  // The trip count depends on a loaded value: the interval analysis sees
  // top, so no sound bound exists and the envelope must be withheld.
  Assembler as(0x1000);
  const auto loop = as.make_label();
  as.global("main");
  as.movi(Reg::rbx, 0x100);
  as.load(Reg::rcx, Reg::rbx);
  as.bind(loop);
  as.dec(Reg::rcx);
  as.cmpi(Reg::rcx, 0);
  as.jne(loop);
  as.hlt();
  const Program p = as.finish();
  const TimingEnvelopes env = envelopes_of(p);
  EXPECT_EQ(env.at(p.symbol("main")), nullptr);
}

TEST(TimingTest, UnboundedLoopDoesNotPoisonOtherEntries) {
  Assembler as(0x1000);
  const auto loop = as.make_label();
  as.global("spin");
  as.movi(Reg::rbx, 0x100);
  as.load(Reg::rcx, Reg::rbx);
  as.bind(loop);
  as.dec(Reg::rcx);
  as.cmpi(Reg::rcx, 0);
  as.jne(loop);
  as.hlt();
  as.global("fast");
  as.movi(Reg::rax, 1);
  as.hlt();
  const Program p = as.finish();
  const TimingEnvelopes env = envelopes_of(p);
  EXPECT_EQ(env.at(p.symbol("spin")), nullptr);
  const TimingEnvelope* e = env.at(p.symbol("fast"));
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->valid);
  EXPECT_EQ(e->clocks[kClockInsts].hi, 1);
}

TEST(TimingTest, CallComposesCalleeChannels) {
  Assembler as(0x1000);
  as.global("main");
  as.movi(Reg::rbx, 0x100);
  as.call("leaf");
  as.store(Reg::rbx, Reg::rax);
  as.hlt();
  as.global("leaf");
  as.movi(Reg::rax, 5);
  as.ret();
  const Program p = as.finish();
  const TimingEnvelopes env = envelopes_of(p);
  const TimingEnvelope* e = env.at(p.symbol("main"));
  ASSERT_NE(e, nullptr);
  ASSERT_TRUE(e->valid);
  const sim::PerfSnapshot s = run_counters(p, "main");
  EXPECT_EQ(s.inst_retired, 5u);
  EXPECT_TRUE(e->contains(env.model, s));
  EXPECT_EQ(e->clocks[kClockInsts].lo, 5);
  EXPECT_EQ(e->clocks[kClockInsts].hi, 5);
  // call pushes, ret pops, plus the explicit store/loads.
  EXPECT_EQ(e->clocks[kClockBranches].hi, 2);
  EXPECT_EQ(e->clocks[kClockLoads].hi, 1);
  EXPECT_EQ(e->clocks[kClockStores].hi, 2);
}

TEST(TimingTest, RecursionGetsNoEnvelope) {
  Assembler as(0x1000);
  const auto done = as.make_label();
  as.global("main");
  as.cmpi(Reg::rcx, 0);
  as.je(done);
  as.dec(Reg::rcx);
  as.call("main");
  as.bind(done);
  as.hlt();
  const Program p = as.finish();
  const TimingEnvelopes env = envelopes_of(p);
  EXPECT_EQ(env.at(p.symbol("main")), nullptr);
}

TEST(TimingCheckTest, FlagsCycleAndCounterMisses) {
  Assembler as(0x1000);
  as.global("main");
  as.movi(Reg::rax, 7);
  as.movi(Reg::rbx, 50);
  as.hlt();
  const Program p = as.finish();
  const TimingEnvelopes env = envelopes_of(p);
  const Addr entry = p.symbol("main");

  sim::PerfSnapshot good;
  good.inst_retired = 2;
  TimingCheckResult r = check_timing(env, entry, good);
  EXPECT_TRUE(r.checked);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.first_bad_clock, -1);

  // A skipped instruction (shorter run) violates both the cycle clock and
  // the inst_retired clock.
  sim::PerfSnapshot skipped;
  skipped.inst_retired = 1;
  r = check_timing(env, entry, skipped);
  EXPECT_TRUE(r.checked);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.cycle_miss);
  EXPECT_TRUE(r.counter_miss);
  EXPECT_EQ(r.first_bad_clock, kClockCycles);

  // Same instruction count but an extra load: the counter clocks and the
  // modeled cycle clock both catch it.
  sim::PerfSnapshot skew;
  skew.inst_retired = 2;
  skew.loads = 1;
  r = check_timing(env, entry, skew);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.counter_miss);

  // Unknown entry: no claim, no check.
  r = check_timing(env, entry + 1, good);
  EXPECT_FALSE(r.checked);
  EXPECT_TRUE(r.ok());
}

// ---------------------------------------------------------------------------
// Soundness on the real microvisor: 400 fault-free activations per config,
// all 7 configurations of the test matrix; every observed counter vector
// must lie inside its handler's envelope (the zero-false-positive claim),
// and every exit reason must actually have a finite envelope.
// ---------------------------------------------------------------------------

TEST(TimingMicrovisorTest, EnvelopeSoundnessAcrossConfigMatrix) {
  const std::vector<hv::MicrovisorOptions> configs = {
      {3, 1, true, false}, {3, 1, true, true},  {3, 1, false, false},
      {2, 1, true, false}, {4, 2, true, true},  {8, 1, true, false},
      {1, 1, true, false},
  };
  const auto reasons = hv::all_exit_reasons();
  for (const hv::MicrovisorOptions& opt : configs) {
    hv::Machine machine(opt);
    const hv::Microvisor& mv = machine.microvisor();
    const AnalysisArtifacts art =
        analyze_program(mv.program, hv::analyze_options(mv));

    // Coverage: every exit reason's handler has a finite envelope.
    for (const hv::ExitReason& reason : reasons) {
      const TimingEnvelope* e = art.timing.at(machine.handler_entry(reason));
      ASSERT_NE(e, nullptr) << hv::handler_symbol(reason);
      EXPECT_TRUE(e->valid) << hv::handler_symbol(reason);
      EXPECT_LT(e->cycles().lo, e->cycles().hi)
          << hv::handler_symbol(reason) << ": degenerate cycle envelope";
    }

    // Soundness: 400 fault-free activations, zero envelope misses.
    for (int i = 0; i < 400; ++i) {
      const hv::ExitReason reason = reasons[i % reasons.size()];
      const hv::Activation act =
          machine.make_activation(reason, 0x9000 + static_cast<unsigned>(i));
      hv::RunOptions ro;
      ro.arm_counters = true;
      const hv::RunResult rr = machine.run(act, ro);
      ASSERT_TRUE(rr.reached_vm_entry) << hv::handler_symbol(reason);
      const Addr entry = machine.handler_entry(reason);
      const TimingCheckResult chk =
          check_timing(art.timing, entry, rr.counters);
      ASSERT_TRUE(chk.checked);
      EXPECT_TRUE(chk.ok())
          << hv::handler_symbol(reason) << " seed " << i << ": clock "
          << clock_name(chk.first_bad_clock) << " outside envelope ("
          << rr.counters.inst_retired << " insts, " << rr.counters.branches
          << " br, " << rr.counters.loads << " ld, " << rr.counters.stores
          << " st)";
    }
  }
}

}  // namespace
}  // namespace xentry::analysis
