file(REMOVE_RECURSE
  "libxentry_workloads.a"
)
