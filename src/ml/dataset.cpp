#include "ml/dataset.hpp"

#include <algorithm>
#include <istream>
#include <numeric>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace xentry::ml {

Dataset::Dataset(std::vector<std::string> feature_names)
    : feature_names_(std::move(feature_names)) {
  if (feature_names_.empty()) {
    throw std::invalid_argument("Dataset: need at least one feature");
  }
}

void Dataset::add(std::span<const std::int64_t> features, Label label) {
  if (features.size() != num_features()) {
    throw std::invalid_argument("Dataset::add: feature count mismatch");
  }
  values_.insert(values_.end(), features.begin(), features.end());
  labels_.push_back(label);
}

void Dataset::append(const Dataset& other) {
  if (other.feature_names_ != feature_names_) {
    throw std::invalid_argument("Dataset::append: feature schema mismatch");
  }
  values_.insert(values_.end(), other.values_.begin(), other.values_.end());
  labels_.insert(labels_.end(), other.labels_.begin(), other.labels_.end());
}

void Dataset::reserve(std::size_t rows) {
  values_.reserve(rows * num_features());
  labels_.reserve(rows);
}

std::size_t Dataset::count(Label l) const {
  return static_cast<std::size_t>(
      std::count(labels_.begin(), labels_.end(), l));
}

std::pair<Dataset, Dataset> Dataset::split(double train_fraction,
                                           std::uint64_t seed) const {
  if (train_fraction < 0.0 || train_fraction > 1.0) {
    throw std::invalid_argument("Dataset::split: fraction out of [0,1]");
  }
  std::vector<std::size_t> order(size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::mt19937_64 rng(seed);
  std::shuffle(order.begin(), order.end(), rng);

  const auto n_train =
      static_cast<std::size_t>(train_fraction * static_cast<double>(size()));
  Dataset train(feature_names_), test(feature_names_);
  for (std::size_t i = 0; i < order.size(); ++i) {
    Dataset& dst = i < n_train ? train : test;
    dst.add(row(order[i]), label(order[i]));
  }
  return {std::move(train), std::move(test)};
}

Dataset Dataset::bootstrap(std::mt19937_64& rng) const {
  Dataset out(feature_names_);
  if (empty()) return out;
  std::uniform_int_distribution<std::size_t> pick(0, size() - 1);
  for (std::size_t i = 0; i < size(); ++i) {
    const std::size_t r = pick(rng);
    out.add(row(r), label(r));
  }
  return out;
}

void Dataset::save_csv(std::ostream& os) const {
  for (const std::string& n : feature_names_) os << n << ',';
  os << "label\n";
  for (std::size_t r = 0; r < size(); ++r) {
    for (std::size_t c = 0; c < num_features(); ++c) os << value(r, c) << ',';
    os << (label(r) == Label::Incorrect ? 1 : 0) << '\n';
  }
}

Dataset Dataset::load_csv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) {
    throw std::runtime_error("Dataset::load_csv: empty input");
  }
  std::vector<std::string> names;
  {
    std::istringstream hs(line);
    std::string field;
    while (std::getline(hs, field, ',')) names.push_back(field);
  }
  if (names.empty() || names.back() != "label") {
    throw std::runtime_error("Dataset::load_csv: last column must be label");
  }
  names.pop_back();
  Dataset ds(names);
  std::vector<std::int64_t> feats(names.size());
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string field;
    for (std::size_t c = 0; c < names.size(); ++c) {
      if (!std::getline(ls, field, ',')) {
        throw std::runtime_error("Dataset::load_csv: short row");
      }
      feats[c] = std::stoll(field);
    }
    if (!std::getline(ls, field, ',')) {
      throw std::runtime_error("Dataset::load_csv: missing label");
    }
    ds.add(feats, std::stoi(field) != 0 ? Label::Incorrect : Label::Correct);
  }
  return ds;
}

}  // namespace xentry::ml
