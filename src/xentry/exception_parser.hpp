// Hardware-exception parsing (paper Section III-A).
//
// "While failures may cause exceptions, exceptions do not necessarily
// indicate failures. ... hardware exceptions should be parsed first to
// filter out non-fatal ones."  The parser embodies that policy: it maps a
// trap raised during a hypervisor execution to a verdict — fatal (a strong
// soft-error indicator), benign (legal in correct executions), or not a
// hardware exception at all (assertions have their own channel).
#pragma once

#include <string>

#include "sim/types.hpp"

namespace xentry {

enum class ExceptionVerdict {
  Fatal,      ///< strong soft-error indicator: detection fires
  Benign,     ///< legal in correct executions: filtered out
  NotHardware ///< software assertion or none: not this parser's business
};

class ExceptionParser {
 public:
  struct Policy {
    /// Treat watchdog expiry (Xen's NMI watchdog catching a hung
    /// hypervisor) as a fatal hardware detection.
    bool watchdog_is_fatal = true;
    /// #DE can be legal in guest context but never in the microvisor's
    /// own code; kept configurable for policy experiments.
    bool divide_error_is_fatal = true;
  };

  ExceptionParser() = default;
  explicit ExceptionParser(const Policy& policy) : policy_(policy) {}

  ExceptionVerdict parse(const sim::Trap& trap) const;

  /// Human-readable rationale for logs and reports.
  static std::string describe(const sim::Trap& trap);

  const Policy& policy() const { return policy_; }

 private:
  Policy policy_;
};

}  // namespace xentry
