# Empty dependencies file for fig3_activation_frequency.
# This may be replaced when dependencies are built.
