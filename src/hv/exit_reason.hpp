// VM exit reasons of the microvisor.
//
// Section IV of the paper enumerates five categories of hypervisor
// activations in Xen 4.1.2, all of which Xentry intercepts:
//   1. common device interrupts                (do_irq)
//   2. APIC-generated interrupts               (10 handlers)
//   3. software interrupts and tasklets        (do_softirq, do_tasklet)
//   4. exceptions                              (19 handlers)
//   5. hypercalls                              (38 entries)
// The numeric `code()` of a reason is the VMER feature of Table I.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace xentry::hv {

enum class ExitCategory : std::uint8_t {
  Hypercall = 0,
  Exception,
  Apic,
  Irq,
  Softirq,
  Tasklet,
};

/// The 38 hypercalls of Xen 4.1.2, in ABI order.
enum class Hypercall : std::uint8_t {
  set_trap_table = 0,
  mmu_update,
  set_gdt,
  stack_switch,
  set_callbacks,
  fpu_taskswitch,
  sched_op_compat,
  platform_op,
  set_debugreg,
  get_debugreg,
  update_descriptor,
  memory_op,
  multicall,
  update_va_mapping,
  set_timer_op,
  event_channel_op_compat,
  xen_version,
  console_io,
  physdev_op_compat,
  grant_table_op,
  vm_assist,
  update_va_mapping_otherdomain,
  iret,
  vcpu_op,
  set_segment_base,
  mmuext_op,
  xsm_op,
  nmi_op,
  sched_op,
  callback_op,
  xenoprof_op,
  event_channel_op,
  physdev_op,
  hvm_op,
  sysctl,
  domctl,
  kexec_op,
  tmem_op,
};
inline constexpr int kNumHypercalls = 38;

/// The 19 processor exceptions the microvisor handles on behalf of guests.
enum class GuestException : std::uint8_t {
  divide_error = 0,
  debug,
  nmi,
  int3,
  overflow,
  bounds,
  invalid_op,
  device_not_available,
  double_fault,
  coproc_seg_overrun,
  invalid_tss,
  segment_not_present,
  stack_segment,
  general_protection,
  page_fault,
  spurious_interrupt,
  math_fault,
  alignment_check,
  machine_check,
};
inline constexpr int kNumGuestExceptions = 19;

/// The ten APIC interrupt handlers (category 2 in Section IV).
enum class ApicInterrupt : std::uint8_t {
  timer = 0,
  error,
  spurious,
  thermal,
  perf_counter,
  cmci,
  ipi_event_check,
  ipi_call_function,
  ipi_reschedule,
  ipi_irq_move,
};
inline constexpr int kNumApicInterrupts = 10;

/// A fully-specified exit reason.  `index` selects within the category
/// (hypercall number, exception vector, APIC handler, or IRQ line).
struct ExitReason {
  ExitCategory category = ExitCategory::Hypercall;
  int index = 0;

  /// Dense numeric encoding: the VMER feature value.
  ///   hypercalls   0..37
  ///   exceptions 100..118
  ///   APIC       200..209
  ///   IRQ        300..315  (one code per line: distinct devices behave
  ///                         differently, and the feature should see that)
  ///   softirq    400
  ///   tasklet    401
  int code() const;

  static ExitReason hypercall(Hypercall h) {
    return {ExitCategory::Hypercall, static_cast<int>(h)};
  }
  static ExitReason exception(GuestException e) {
    return {ExitCategory::Exception, static_cast<int>(e)};
  }
  static ExitReason apic(ApicInterrupt a) {
    return {ExitCategory::Apic, static_cast<int>(a)};
  }
  static ExitReason irq(int line) { return {ExitCategory::Irq, line}; }
  static ExitReason softirq() { return {ExitCategory::Softirq, 0}; }
  static ExitReason tasklet() { return {ExitCategory::Tasklet, 0}; }

  friend bool operator==(const ExitReason&, const ExitReason&) = default;
};

inline constexpr int kNumIrqLines = 16;

/// Name of the microvisor entry symbol for a reason, e.g.
/// "hypercall_sched_op", "do_page_fault", "apic_timer", "do_irq".
std::string_view handler_symbol(const ExitReason& reason);

std::string_view hypercall_name(Hypercall h);
std::string_view exception_name(GuestException e);
std::string_view apic_name(ApicInterrupt a);

/// All reasons the microvisor implements, in code() order; used to build
/// the dispatch table and by tests to sweep every handler.
std::array<ExitReason, kNumHypercalls + kNumGuestExceptions +
                           kNumApicInterrupts + kNumIrqLines + 2>
all_exit_reasons();

}  // namespace xentry::hv
