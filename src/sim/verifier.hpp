// Static verification of assembled programs.
//
// Handler authors make the same mistakes hypervisor authors do: branches
// into padding, calls to mid-function addresses, falling off the end of a
// function into the inter-function Ud gap.  The verifier checks a Program
// before it ever runs, so microvisor bugs surface as build-time
// diagnostics rather than as mysterious "fault-free" traps that would
// poison every detection statistic.
//
// The implementation lives in the analysis library (src/analysis): the
// verifier walks the same basic-block CFG the control-flow-integrity
// detector replays against at runtime, so branch-target legality, fusion
// landing-site rules, and verifier diagnostics share one source of truth.
// Linking xentry_analysis is what provides verify_program.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/program.hpp"

namespace xentry::sim {

struct VerifierIssue {
  enum class Kind : std::uint8_t {
    BranchOutOfRange,   ///< direct branch/call target outside the text
    BranchIntoPadding,  ///< direct branch/call target is a Ud slot
    FallthroughIntoPadding,  ///< non-terminal instruction precedes Ud
    UnknownAssertId,     ///< assertion id outside the registered range
    CallTargetNotSymbol, ///< call lands where no symbol begins
    /// Code no static control path reaches: not a symbol entry, not a
    /// branch/call target, not a call return site, not a MovRI code
    /// immediate, and not reachable by falling through from any of those.
    /// The peephole verifier could not express this; the CFG-based one
    /// reports it per basic block (addr = block start, target = block end).
    UnreachableBlock
  };
  Kind kind;
  Addr addr = 0;       ///< offending instruction
  Addr target = 0;     ///< branch/call target when applicable
  std::string detail;
};

std::string_view issue_kind_name(VerifierIssue::Kind k);

struct VerifierOptions {
  /// Assertion ids must be in [1, max_assert_id); 0 disables the check.
  std::uint32_t max_assert_id = 0;
  /// Require call targets to be named symbols (on for the microvisor,
  /// whose calling convention is symbol-based).
  bool calls_must_hit_symbols = true;
};

struct VerifierReport {
  std::vector<VerifierIssue> issues;
  // Text statistics, useful for documentation and sanity checks.
  std::size_t instructions = 0;
  std::size_t padding = 0;
  std::size_t branches = 0;
  std::size_t loads = 0;
  std::size_t stores = 0;
  std::size_t assertions = 0;
  std::size_t indirect_jumps = 0;

  bool ok() const { return issues.empty(); }
  std::string to_string() const;
};

/// Verifies the program; never throws.
VerifierReport verify_program(const Program& program,
                              const VerifierOptions& options = {});

}  // namespace xentry::sim
