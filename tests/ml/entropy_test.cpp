#include "ml/entropy.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace xentry::ml {
namespace {

TEST(EntropyTest, PureSetsHaveZeroEntropy) {
  EXPECT_DOUBLE_EQ(entropy({10, 0}), 0.0);
  EXPECT_DOUBLE_EQ(entropy({0, 10}), 0.0);
  EXPECT_DOUBLE_EQ(entropy({0, 0}), 0.0);
}

TEST(EntropyTest, BalancedSetHasOneBit) {
  EXPECT_NEAR(entropy({5, 5}), 1.0, 1e-12);
}

TEST(EntropyTest, MatchesClosedForm) {
  // H(2/3) = -(2/3)log2(2/3) - (1/3)log2(1/3) ~= 0.9183
  EXPECT_NEAR(entropy({10, 5}), 0.9182958340544896, 1e-12);
}

TEST(EntropyTest, PaperWorkedExample) {
  // Section III-B: 15 points, 10 correct / 5 incorrect.  The paper prints
  // the per-point entropy 0.276 (H/n with H in... it divides by points);
  // the standard Shannon value is 0.9183 bits.  Cutting at RT=200 yields a
  // perfect split: gain equals the full entropy.
  const ClassCounts total{10, 5};
  const double h = entropy(total);
  EXPECT_NEAR(h, 0.918295834, 1e-6);

  // Cut RT=100: left = 5 correct / 2 incorrect, right = 5 / 3.
  const double gain100 = information_gain(total, {5, 2});
  // Cut RT=200: left = all 10 correct, right = all 5 incorrect.
  const double gain200 = information_gain(total, {10, 0});
  EXPECT_NEAR(gain200, h, 1e-12);  // perfect split recovers all entropy
  EXPECT_LT(gain100, 0.02);        // nearly uninformative
  EXPECT_GT(gain200, gain100);     // RT=200 is selected
}

TEST(EntropyTest, GainIsNonNegative) {
  const ClassCounts total{7, 9};
  for (std::size_t c = 0; c <= 7; ++c) {
    for (std::size_t i = 0; i <= 9; ++i) {
      EXPECT_GE(information_gain(total, {c, i}), -1e-12);
    }
  }
}

TEST(EntropyTest, GainOfEmptySplitIsZero) {
  EXPECT_DOUBLE_EQ(information_gain({0, 0}, {0, 0}), 0.0);
  EXPECT_NEAR(information_gain({4, 4}, {0, 0}), 0.0, 1e-12);
  EXPECT_NEAR(information_gain({4, 4}, {4, 4}), 0.0, 1e-12);
}

TEST(EntropyTest, ClassCountsArithmetic) {
  ClassCounts a{3, 4};
  ClassCounts b{1, 2};
  ClassCounts d = a - b;
  EXPECT_EQ(d.correct, 2u);
  EXPECT_EQ(d.incorrect, 2u);
  a += b;
  EXPECT_EQ(a.correct, 4u);
  EXPECT_EQ(a.total(), 10u);
  EXPECT_FALSE(a.pure());
  EXPECT_TRUE((ClassCounts{5, 0}).pure());
}

}  // namespace
}  // namespace xentry::ml
