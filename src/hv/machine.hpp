// The virtual platform: one simulated core + memory + the microvisor.
//
// Machine is the substrate equivalent of the paper's Simics setup (Section
// V-A): it boots the microvisor structures, dispatches VM exits to handler
// entry points, and exposes everything the fault-injection framework and
// Xentry need — performance counters armed per activation, single-bit
// register fault injection at a chosen dynamic instruction, control-flow
// traces, and semantic diffs of persistent state for consequence analysis.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "hv/exit_reason.hpp"
#include "hv/layout.hpp"
#include "hv/microvisor.hpp"
#include "obs/telemetry.hpp"
#include "sim/cpu.hpp"
#include "sim/memory.hpp"
#include "sim/perf_counters.hpp"

namespace xentry::hv {

/// One hypervisor activation: a VM exit with its reason and arguments.
/// `seed` deterministically synthesizes everything else the handler reads
/// (request-buffer contents, stale register values, device state).
struct Activation {
  ExitReason reason;
  std::uint64_t arg1 = 0;
  std::uint64_t arg2 = 0;
  std::uint64_t arg3 = 0;
  int vcpu = 0;
  std::uint64_t seed = 0;
};

/// The paper's fault model: one single-bit flip in one architectural
/// register, applied immediately before the dynamic instruction `at_step`.
struct Injection {
  std::uint64_t at_step = 0;
  sim::Reg reg = sim::Reg::rax;
  int bit = 0;
};

struct RunOptions {
  std::uint64_t max_steps = 100000;   ///< watchdog budget
  const Injection* injection = nullptr;
  std::vector<sim::Addr>* trace = nullptr;  ///< control-flow trace sink
  bool arm_counters = true;
  bool count_assertions = false;  ///< tally executed assertion instructions
};

struct RunResult {
  /// True when the handler reached the VM-entry gate (hlt); false when a
  /// trap ended the execution in host mode.
  bool reached_vm_entry = false;
  sim::Trap trap;               ///< valid when !reached_vm_entry
  sim::PerfSnapshot counters;   ///< the Table I feature counters
  std::uint64_t steps = 0;

  // Fault bookkeeping (meaningful when an injection was requested).
  bool injected = false;   ///< the flip actually happened (at_step reached)
  bool activated = false;  ///< the corrupted register was read afterwards
  std::uint64_t activation_step = 0;
  std::uint64_t trap_step = 0;  ///< dynamic index at which the trap fired

  std::uint64_t assertions_executed = 0;  ///< when count_assertions is set
};

/// One word of persistent state that differs between two runs, with its
/// semantic classification.
struct StateDiff {
  sim::Addr addr = 0;
  sim::Word golden = 0;
  sim::Word faulty = 0;
  layout::OutputClass cls = layout::OutputClass::HvGlobal;
  int domain = -1;  ///< owning domain, or -1 for system-wide state
};

class Machine {
 public:
  explicit Machine(const MicrovisorOptions& options = {});

  /// Re-initializes all memory to boot state (domains, VCPUs, shared
  /// pages, tables).  The TSC keeps advancing monotonically.
  void reset();

  /// Runs one hypervisor activation to VM entry (or to a trap).
  RunResult run(const Activation& activation, const RunOptions& opts = {});

  /// Prepares the machine for `activation` WITHOUT executing anything:
  /// performs the VM-exit side effects (current-VCPU and runqueue
  /// bookkeeping), synthesizes the handler's inputs, and resets the CPU
  /// register file to the handler entry state.  run() performs exactly
  /// this preparation before its execution loop; lockstep forensics
  /// callers use it to re-enter the faulted window and then single-step
  /// cpu() with the reference engine.  Deterministic per activation.
  void begin_activation(const Activation& activation);

  /// Synthesizes a *legal* activation of the given reason: arguments and
  /// derived inputs that a fault-free handler accepts without traps or
  /// assertion failures.  Workload generators build on this.
  Activation make_activation(const ExitReason& reason, std::uint64_t seed,
                             int vcpu = -1) const;

  // -- state management --------------------------------------------------------

  struct Snapshot {
    sim::Memory::Snapshot memory;
    sim::Word tsc = 0;
  };
  Snapshot snapshot() const;
  /// Like snapshot(), but reuses `out`'s buffers; regions unchanged since
  /// the last capture into `out` are skipped (see Memory::snapshot_into).
  /// The campaign hot path re-captures one Snapshot per injection.
  void snapshot_into(Snapshot& out) const;
  void restore(const Snapshot& snap);

  /// Compares the persistent (guest-visible or hypervisor-retained) state
  /// of two machines built with identical options.
  static std::vector<StateDiff> diff_persistent_state(const Machine& golden,
                                                      const Machine& faulty);

  // -- accessors ------------------------------------------------------------------

  const Microvisor& microvisor() const { return mv_; }
  sim::Memory& memory() { return mem_; }
  const sim::Memory& memory() const { return mem_; }
  sim::Cpu& cpu() { return cpu_; }
  int num_domains() const { return mv_.options.num_domains; }
  int num_vcpus() const { return mv_.num_vcpus(); }
  int domain_of_vcpu(int vcpu) const {
    return vcpu / mv_.options.vcpus_per_domain;
  }

  /// Handler entry address for an exit reason (O(1), cached).  The CFI
  /// detector checks each run's first retired instruction against this.
  sim::Addr handler_entry(const ExitReason& reason) const;

  /// Selects the CPU execution engine for this machine's run() path and,
  /// for EngineKind::Jit, attaches the threaded-code compilation (which
  /// must match this machine's program — Cpu::set_compiled throws on a
  /// stale stream).  Injection runs still single-step the reference
  /// engine regardless; the engine accelerates the non-stepwise paths
  /// (golden probes, advance runs, clean campaign runs).  Snapshot and
  /// restore are engine-agnostic: the compiled stream is pure code,
  /// derived only from the immutable program text.
  void set_execution_engine(
      sim::EngineKind kind,
      std::shared_ptr<const sim::jit::CompiledProgram> compiled = nullptr) {
    cpu_.set_compiled(std::move(compiled));
    cpu_.set_engine(kind);
  }

  /// Feature names of Table I, in the order the detector consumes them.
  static const std::vector<std::string>& feature_names();

  /// Attaches observability sinks (per-VM-exit trace spans, the flight
  /// recorder ring, snapshot/restore timing histograms).  The bundle is
  /// borrowed, not owned, and must outlive the machine's use; nullptr
  /// (the default) disables all collection at the cost of one predicted
  /// branch per VM exit / snapshot / restore.
  void set_telemetry(const obs::MachineTelemetry* telemetry) {
    telemetry_ = telemetry;
  }

 private:
  void map_regions();
  void init_boot_state();
  void prepare_inputs(const Activation& activation);

  Microvisor mv_;
  sim::Memory mem_;
  sim::Cpu cpu_;
  /// Handler entry addresses indexed by ExitReason::code(): avoids the
  /// per-activation string symbol lookup on the dispatch path.
  std::vector<sim::Addr> entry_cache_;
  const obs::MachineTelemetry* telemetry_ = nullptr;
  /// Snapshot/restore calls are timed 1-in-kTimingSampleEvery (a
  /// deterministic call-count sample): the campaign snapshots/restores
  /// several times per injection, and timing every call would cost more
  /// clock reads than the rest of the metrics layer combined.
  static constexpr std::uint32_t kTimingSampleEvery = 8;
  mutable std::uint32_t snapshot_calls_ = 0;
  std::uint32_t restore_calls_ = 0;
};

}  // namespace xentry::hv
