#include "sim/program.hpp"

#include <stdexcept>

namespace xentry::sim {

Addr Program::symbol(const std::string& name) const {
  auto it = symbols_.find(name);
  if (it == symbols_.end()) {
    throw std::out_of_range("Program: unknown symbol '" + name + "'");
  }
  return it->second;
}

std::vector<bool> compute_landing_sites(const Program& program) {
  std::vector<bool> landing(program.size(), false);
  auto mark = [&](Addr target) {
    const Addr off = target - program.base();
    if (off < program.size()) landing[off] = true;
  };
  for (std::size_t i = 0; i < program.size(); ++i) {
    const Instruction& insn = program.at(program.base() + i);
    if (insn.op == Opcode::Jmp || insn.op == Opcode::Call ||
        is_cond_branch(insn.op) || insn.op == Opcode::MovRI) {
      mark(static_cast<Addr>(insn.imm));
    }
    if (insn.op == Opcode::Call) mark(program.base() + i + 1);  // return site
  }
  for (const auto& [name, addr] : program.symbols()) mark(addr);
  return landing;
}

void Program::compute_fusion() {
  for (Instruction& insn : code_) insn.fused = 0;
  if (code_.size() < 2) return;

  // A pair whose *tail* (the Jcc slot) is a landing point must not fuse —
  // a jump arriving there must execute the bare Jcc, and fusing the pair
  // would make the head's basic block extend across an incoming edge.
  const std::vector<bool> landing = compute_landing_sites(*this);

  for (std::size_t i = 0; i + 1 < code_.size(); ++i) {
    if (!is_fusable_head(code_[i].op)) continue;
    if (!is_cond_branch(code_[i + 1].op)) continue;
    if (landing[i + 1]) continue;
    code_[i].fused = 1;
  }
}

std::string Program::symbol_at(Addr rip) const {
  std::string best;
  Addr best_addr = 0;
  for (const auto& [name, addr] : symbols_) {
    if (addr <= rip && (best.empty() || addr >= best_addr)) {
      best = name;
      best_addr = addr;
    }
  }
  return best;
}

}  // namespace xentry::sim
