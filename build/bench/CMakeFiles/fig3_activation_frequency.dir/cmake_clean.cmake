file(REMOVE_RECURSE
  "CMakeFiles/fig3_activation_frequency.dir/fig3_activation_frequency.cpp.o"
  "CMakeFiles/fig3_activation_frequency.dir/fig3_activation_frequency.cpp.o.d"
  "fig3_activation_frequency"
  "fig3_activation_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_activation_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
