// Campaign checkpoint journal: resumable injection campaigns.
//
// Every K completed loop iterations, a shard persists everything needed
// to continue the campaign bit-identically after a kill: its three RNG
// cursors (workload generator, main draw stream, importance-sampler aux
// stream), the golden machine image (memory words + TSC — the faulty
// machine realigns from the golden probe every injection, so only golden
// state matters), the running record digest and effective-injection
// accumulator, and the durable offsets of its record sink and metrics
// sidecar streams.
//
// Kill-safety protocol, per checkpoint, in order:
//   1. flush the shard's record sink (records become durable),
//   2. write + flush a metrics snapshot delta to the sidecar,
//   3. append one journal line (the commit point).
// A kill between any two steps leaves a journal whose last line points at
// durable prefixes of both streams; resume truncates the streams to the
// journaled offsets, so torn tails vanish and the rewritten suffix is
// byte-identical to the uninterrupted run's.
//
// The journal itself is JSONL: a header line (the campaign's identity —
// resuming under a different config is an error, not a silent divergence)
// followed by checkpoint lines from all shards interleaved in completion
// order.  The reader takes each shard's last intact line; a torn final
// line is expected input, not corruption.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <optional>
#include <random>
#include <string>
#include <string_view>
#include <vector>

#include "hv/machine.hpp"

namespace xentry::fault {

/// The campaign identity a journal is bound to.  Resume requires an
/// exact match: any of these changing would silently produce a record
/// stream from a different campaign.
struct CheckpointHeader {
  std::uint64_t seed = 0;
  int injections = 0;
  int shards = 0;
  double activation_bias = 0.5;
  int warmup_activations = 0;
  int stream_gap = 0;
  bool importance = false;
  int checkpoint_every = 0;
  std::uint8_t records_format = 0;
  /// Work-unit identity (fleet campaigns): the subset of the `shards`
  /// unit space this journal's process owns.  Empty means "all shards"
  /// (the single-process campaign).  A fleet worker restarted with a
  /// different unit assignment would splice streams from two different
  /// partitions, so the assignment is part of the resume identity.
  std::vector<int> units;

  friend bool operator==(const CheckpointHeader&,
                         const CheckpointHeader&) = default;
};

/// One shard's resume state at a checkpoint boundary ("about to start
/// loop iteration `iterations`").
struct ShardCheckpoint {
  int shard = -1;
  std::uint64_t iterations = 0;       ///< loop iterations completed
  std::uint64_t records_written = 0;  ///< records emitted (non-degenerate)
  std::uint64_t digest = 0;           ///< running digest of those records
  double effective = 0.0;             ///< sum of 1/weight so far
  std::uint64_t sink_offset = 0;      ///< durable record-sink bytes
  std::uint64_t snap_offset = 0;      ///< durable metrics-sidecar bytes
  std::uint64_t snap_count = 0;       ///< snapshots written (writer seq)
  std::uint64_t forensics_counter = 0;
  std::uint64_t activations_generated = 0;
  std::string gen_rng;   ///< mt19937_64 textual state (workload stream)
  std::string main_rng;  ///< mt19937_64 textual state (draw stream)
  std::string aux_rng;   ///< sampler aux stream; empty without importance
  std::uint64_t tsc = 0;
  /// Golden machine memory, one word vector per mapped region.
  std::vector<std::vector<std::uint64_t>> memory;
};

/// Append-only journal writer shared by all shards (mutex-serialized
/// line appends, flushed per line so the commit point is durable).
class CheckpointJournal {
 public:
  /// Creates/truncates `path` and writes the header line.
  static std::unique_ptr<CheckpointJournal> create(
      const std::string& path, const CheckpointHeader& header);

  /// Opens an existing journal for appending (resume path; the header is
  /// already on disk).  Returns nullptr when the file cannot be opened.
  static std::unique_ptr<CheckpointJournal> append_to(const std::string& path);

  ~CheckpointJournal();
  CheckpointJournal(const CheckpointJournal&) = delete;
  CheckpointJournal& operator=(const CheckpointJournal&) = delete;

  /// Appends one checkpoint line and flushes it.
  void append(const ShardCheckpoint& ckpt);

  bool ok() const { return file_ != nullptr && !failed_; }

 private:
  CheckpointJournal() = default;

  std::mutex mu_;
  std::FILE* file_ = nullptr;
  bool failed_ = false;
};

/// Parsed journal state: the header plus each shard's latest intact
/// checkpoint line (nullopt for shards that never checkpointed).
struct JournalContents {
  bool valid = false;  ///< file existed and carried a parseable header
  CheckpointHeader header;
  std::vector<std::optional<ShardCheckpoint>> shards;  ///< size = header.shards
};

/// Reads a journal, tolerating a torn final line.  `valid` is false when
/// the file is missing or its header does not parse.
JournalContents read_journal(const std::string& path);

/// Path of one shard's metrics-snapshot sidecar stream, derived from the
/// journal path: `<checkpoint_path>.shard<N>.snap.jsonl`.
std::string snapshot_sidecar_path(std::string_view checkpoint_path, int shard);

/// Captures the machine's resumable state (memory words + TSC) into `out`.
void capture_machine(const hv::Machine& machine, ShardCheckpoint& out);

/// Restores a machine from checkpointed state.  Throws std::runtime_error
/// when the region shapes do not match the machine's mapping (a journal
/// from a different machine configuration).
void restore_machine(hv::Machine& machine, const ShardCheckpoint& ckpt);

/// mt19937_64 state round-trip (textual, the stream-operator encoding).
std::string rng_state_string(const std::mt19937_64& rng);
bool rng_state_from_string(std::mt19937_64& rng, const std::string& state);

}  // namespace xentry::fault
