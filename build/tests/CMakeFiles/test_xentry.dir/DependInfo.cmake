
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/xentry/assertions_test.cpp" "tests/CMakeFiles/test_xentry.dir/xentry/assertions_test.cpp.o" "gcc" "tests/CMakeFiles/test_xentry.dir/xentry/assertions_test.cpp.o.d"
  "/root/repo/tests/xentry/cost_model_test.cpp" "tests/CMakeFiles/test_xentry.dir/xentry/cost_model_test.cpp.o" "gcc" "tests/CMakeFiles/test_xentry.dir/xentry/cost_model_test.cpp.o.d"
  "/root/repo/tests/xentry/countermeasures_test.cpp" "tests/CMakeFiles/test_xentry.dir/xentry/countermeasures_test.cpp.o" "gcc" "tests/CMakeFiles/test_xentry.dir/xentry/countermeasures_test.cpp.o.d"
  "/root/repo/tests/xentry/exception_parser_test.cpp" "tests/CMakeFiles/test_xentry.dir/xentry/exception_parser_test.cpp.o" "gcc" "tests/CMakeFiles/test_xentry.dir/xentry/exception_parser_test.cpp.o.d"
  "/root/repo/tests/xentry/features_test.cpp" "tests/CMakeFiles/test_xentry.dir/xentry/features_test.cpp.o" "gcc" "tests/CMakeFiles/test_xentry.dir/xentry/features_test.cpp.o.d"
  "/root/repo/tests/xentry/framework_test.cpp" "tests/CMakeFiles/test_xentry.dir/xentry/framework_test.cpp.o" "gcc" "tests/CMakeFiles/test_xentry.dir/xentry/framework_test.cpp.o.d"
  "/root/repo/tests/xentry/recovery_engine_test.cpp" "tests/CMakeFiles/test_xentry.dir/xentry/recovery_engine_test.cpp.o" "gcc" "tests/CMakeFiles/test_xentry.dir/xentry/recovery_engine_test.cpp.o.d"
  "/root/repo/tests/xentry/recovery_test.cpp" "tests/CMakeFiles/test_xentry.dir/xentry/recovery_test.cpp.o" "gcc" "tests/CMakeFiles/test_xentry.dir/xentry/recovery_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xentry/CMakeFiles/xentry_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/xentry_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/xentry_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/xentry_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/hv/CMakeFiles/xentry_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/xentry_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
