#include "analysis/dataflow.hpp"

#include <algorithm>
#include <deque>
#include <sstream>

namespace xentry::analysis {

namespace {

using sim::Addr;
using sim::Instruction;
using sim::Opcode;
using sim::Program;
using sim::Reg;

/// Lattice ascents per block before bounds are widened to infinity.
constexpr int kWidenThreshold = 20;

bool add_overflows(std::int64_t a, std::int64_t b, std::int64_t* out) {
  return __builtin_add_overflow(a, b, out);
}

unsigned gpr(Reg r) { return static_cast<unsigned>(r); }
bool tracked(Reg r) { return gpr(r) < sim::kNumGprs; }

}  // namespace

Interval interval_join(const Interval& a, const Interval& b) {
  if (a.is_empty()) return b;
  if (b.is_empty()) return a;
  return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

Interval interval_meet(const Interval& a, const Interval& b) {
  return {std::max(a.lo, b.lo), std::min(a.hi, b.hi)};
}

Interval interval_add(const Interval& a, const Interval& b) {
  if (a.is_empty() || b.is_empty()) return {1, 0};
  Interval r;
  // The machine wraps; the lattice does not.  Any potential wrap is top.
  if (add_overflows(a.lo, b.lo, &r.lo) || add_overflows(a.hi, b.hi, &r.hi)) {
    return Interval::top();
  }
  return r;
}

Interval interval_sub(const Interval& a, const Interval& b) {
  if (a.is_empty() || b.is_empty()) return {1, 0};
  Interval r;
  if (__builtin_sub_overflow(a.lo, b.hi, &r.lo) ||
      __builtin_sub_overflow(a.hi, b.lo, &r.hi)) {
    return Interval::top();
  }
  return r;
}

namespace {

/// Removes `v` from the interval when it sits on an endpoint (the only
/// hole the domain can express).
Interval trim_value(Interval s, std::int64_t v) {
  if (s.lo == v && s.hi == v) return {1, 0};  // empty
  if (s.lo == v) ++s.lo;
  else if (s.hi == v) --s.hi;
  return s;
}

void clamp_hi(Interval& s, std::int64_t v) { s.hi = std::min(s.hi, v); }
void clamp_lo(Interval& s, std::int64_t v) { s.lo = std::max(s.lo, v); }

}  // namespace

void apply_instruction(const Instruction& insn, RegState& state) {
  const auto set = [&](Reg r, Interval v) {
    if (tracked(r)) state[gpr(r)] = v;
  };
  const auto get = [&](Reg r) {
    return tracked(r) ? state[gpr(r)] : Interval::top();
  };
  Interval& rsp = state[gpr(Reg::rsp)];
  const std::int64_t imm = insn.imm;

  switch (insn.op) {
    case Opcode::MovRR: set(insn.r1, get(insn.r2)); break;
    case Opcode::MovRI: set(insn.r1, Interval::exact(imm)); break;
    case Opcode::Load: set(insn.r1, Interval::top()); break;
    case Opcode::Push: rsp = interval_sub(rsp, Interval::exact(1)); break;
    case Opcode::Pop:
      rsp = interval_add(rsp, Interval::exact(1));
      set(insn.r1, Interval::top());
      break;
    case Opcode::AddRR: set(insn.r1, interval_add(get(insn.r1), get(insn.r2))); break;
    case Opcode::AddRI: set(insn.r1, interval_add(get(insn.r1), Interval::exact(imm))); break;
    case Opcode::SubRR: set(insn.r1, interval_sub(get(insn.r1), get(insn.r2))); break;
    case Opcode::SubRI: set(insn.r1, interval_sub(get(insn.r1), Interval::exact(imm))); break;
    case Opcode::Inc: set(insn.r1, interval_add(get(insn.r1), Interval::exact(1))); break;
    case Opcode::Dec: set(insn.r1, interval_sub(get(insn.r1), Interval::exact(1))); break;
    case Opcode::MulRR: {
      const Interval a = get(insn.r1), b = get(insn.r2);
      Interval r = Interval::top();
      if (a.lo == a.hi && b.lo == b.hi) {
        std::int64_t p = 0;
        if (!__builtin_mul_overflow(a.lo, b.lo, &p)) r = Interval::exact(p);
      }
      set(insn.r1, r);
      break;
    }
    case Opcode::DivR:
      state[gpr(Reg::rax)] = Interval::top();
      state[gpr(Reg::rdx)] = Interval::top();
      break;
    case Opcode::AndRR: {
      const Interval a = get(insn.r1), b = get(insn.r2);
      set(insn.r1, a.lo >= 0 && b.lo >= 0
                       ? Interval{0, std::min(a.hi, b.hi)}
                       : Interval::top());
      break;
    }
    case Opcode::AndRI: {
      const Interval a = get(insn.r1);
      if (imm >= 0) set(insn.r1, {0, imm});
      else if (a.lo >= 0) set(insn.r1, {0, a.hi});
      else set(insn.r1, Interval::top());
      break;
    }
    case Opcode::XorRR:
      // The canonical zeroing idiom; anything else loses all bits info.
      set(insn.r1, insn.r1 == insn.r2 ? Interval::exact(0) : Interval::top());
      break;
    case Opcode::OrRR: case Opcode::OrRI: case Opcode::XorRI:
    case Opcode::ShlRR: case Opcode::ShrRR:
      set(insn.r1, Interval::top());
      break;
    case Opcode::ShlRI: {
      const Interval a = get(insn.r1);
      const auto s = static_cast<unsigned>(imm) & 63u;
      if (a.lo >= 0 && s < 63 && a.hi <= (Interval::kMax >> s)) {
        set(insn.r1, {a.lo << s, a.hi << s});
      } else {
        set(insn.r1, Interval::top());
      }
      break;
    }
    case Opcode::ShrRI: {
      const Interval a = get(insn.r1);
      const auto s = static_cast<unsigned>(imm) & 63u;
      if (s == 0) break;  // identity
      if (a.lo >= 0) {
        set(insn.r1, {a.lo >> s, a.hi >> s});
      } else {
        // Logical shift of any 64-bit value by s >= 1 fits in 63 bits.
        set(insn.r1, {0, static_cast<std::int64_t>(~std::uint64_t{0} >> s)});
      }
      break;
    }
    case Opcode::Neg: {
      const Interval a = get(insn.r1);
      set(insn.r1, a.lo != Interval::kMin ? Interval{-a.hi, -a.lo}
                                          : Interval::top());
      break;
    }
    case Opcode::Not: {
      // ~x = -x-1 is a monotone-decreasing bijection on int64.
      const Interval a = get(insn.r1);
      set(insn.r1, {~a.hi, ~a.lo});
      break;
    }
    case Opcode::Rdtsc:
      // Monotonic counter, one tick per step: nonnegative for any run
      // shorter than 2^63 steps.
      set(insn.r1, {0, Interval::kMax});
      break;
    case Opcode::Call: rsp = interval_sub(rsp, Interval::exact(1)); break;
    case Opcode::Ret: rsp = interval_add(rsp, Interval::exact(1)); break;
    // Assertions refine along their non-trapping path: the next
    // instruction only executes when the predicate held.
    case Opcode::AssertLeRI:
      if (tracked(insn.r1)) clamp_hi(state[gpr(insn.r1)], imm);
      break;
    case Opcode::AssertGeRI:
      if (tracked(insn.r1)) clamp_lo(state[gpr(insn.r1)], imm);
      break;
    case Opcode::AssertEqRI:
      set(insn.r1, interval_meet(get(insn.r1), Interval::exact(imm)));
      break;
    case Opcode::AssertNeRI:
      set(insn.r1, trim_value(get(insn.r1), imm));
      break;
    case Opcode::AssertEqRR: {
      const Interval m = interval_meet(get(insn.r1), get(insn.r2));
      set(insn.r1, m);
      set(insn.r2, m);
      break;
    }
    case Opcode::AssertLtRR: {
      // Unsigned r1 < r2: when r2 is known nonnegative as a signed value,
      // its unsigned value matches, so r1's unsigned value is below
      // kMax — hence r1 is also nonnegative as signed.
      const Interval b = get(insn.r2);
      if (b.lo >= 0 && b.hi > 0) {
        set(insn.r1, interval_meet(get(insn.r1), {0, b.hi - 1}));
      }
      break;
    }
    default:
      break;  // Nop, Store, Cmp*, Test*, branches, Hlt: no register writes
  }
}

namespace {

/// Branch-edge refinement: when a block ends with `cmp/test; jcc`, the
/// guarded register enters each successor with a narrowed interval.
void refine_for_edge(const Program& program, const BasicBlock& b,
                     const BasicBlock& succ, RegState& st) {
  const Instruction& jcc = program.at(b.last);
  if (!sim::is_cond_branch(jcc.op)) return;
  if (b.last == b.first) return;  // guard would live in another block
  const Instruction& guard = program.at(b.last - 1);
  const auto target = static_cast<Addr>(jcc.imm);
  const Addr fallthrough = b.last + 1;
  if (target == fallthrough) return;  // both edges collapse, no knowledge
  bool taken = false;
  if (succ.first == target) taken = true;
  else if (succ.first == fallthrough) taken = false;
  else return;

  if (guard.op == Opcode::CmpRI && tracked(guard.r1)) {
    Interval& s = st[gpr(guard.r1)];
    const std::int64_t k = guard.imm;
    switch (jcc.op) {
      case Opcode::Je:
        s = taken ? interval_meet(s, Interval::exact(k)) : trim_value(s, k);
        break;
      case Opcode::Jne:
        s = taken ? trim_value(s, k) : interval_meet(s, Interval::exact(k));
        break;
      case Opcode::Jl:
        if (taken) { if (k != Interval::kMin) clamp_hi(s, k - 1); }
        else clamp_lo(s, k);
        break;
      case Opcode::Jle:
        if (taken) clamp_hi(s, k);
        else if (k != Interval::kMax) clamp_lo(s, k + 1);
        break;
      case Opcode::Jg:
        if (taken) { if (k != Interval::kMax) clamp_lo(s, k + 1); }
        else clamp_hi(s, k);
        break;
      case Opcode::Jge:
        if (taken) clamp_lo(s, k);
        else if (k != Interval::kMin) clamp_hi(s, k - 1);
        break;
      case Opcode::Jb:  // unsigned <
        if (k >= 0) {
          if (taken) s = interval_meet(s, {0, k - 1});
          else if (s.lo >= 0) clamp_lo(s, k);
        }
        break;
      case Opcode::Jae:  // unsigned >=
        if (k >= 0) {
          if (taken) { if (s.lo >= 0) clamp_lo(s, k); }
          else s = interval_meet(s, {0, k - 1});
        }
        break;
      default:
        break;
    }
  } else if (guard.op == Opcode::TestRR && guard.r1 == guard.r2 &&
             tracked(guard.r1)) {
    Interval& s = st[gpr(guard.r1)];
    if (jcc.op == Opcode::Je) {
      s = taken ? interval_meet(s, Interval::exact(0)) : trim_value(s, 0);
    } else if (jcc.op == Opcode::Jne) {
      s = taken ? trim_value(s, 0) : interval_meet(s, Interval::exact(0));
    }
  }
}

void compute_reachability(const ControlFlowGraph& cfg,
                          std::vector<BlockFacts>& facts) {
  std::deque<std::uint32_t> work(cfg.roots.begin(), cfg.roots.end());
  for (std::uint32_t r : cfg.roots) facts[r].reachable = true;
  while (!work.empty()) {
    const std::uint32_t b = work.front();
    work.pop_front();
    for (std::uint32_t s : cfg.blocks[b].succs) {
      if (!facts[s].reachable) {
        facts[s].reachable = true;
        work.push_back(s);
      }
    }
  }
}

/// Cooper–Harvey–Kennedy iterative dominators with a virtual entry node
/// (index N) whose successors are the CFG roots.
void compute_dominators(const ControlFlowGraph& cfg,
                        std::vector<BlockFacts>& facts) {
  const auto n = static_cast<std::uint32_t>(cfg.blocks.size());
  const std::uint32_t virt = n;
  // Reverse postorder from the virtual root over reachable blocks.
  std::vector<std::uint32_t> po_num(n + 1, kNoBlock);
  std::vector<std::uint32_t> rpo;
  {
    std::vector<std::uint8_t> state(n + 1, 0);
    std::vector<std::pair<std::uint32_t, std::size_t>> stack{{virt, 0}};
    state[virt] = 1;
    std::vector<std::uint32_t> postorder;
    while (!stack.empty()) {
      auto& [b, i] = stack.back();
      const std::vector<std::uint32_t>& succs =
          b == virt ? cfg.roots : cfg.blocks[b].succs;
      if (i < succs.size()) {
        const std::uint32_t s = succs[i++];
        if (state[s] == 0) {
          state[s] = 1;
          stack.emplace_back(s, 0);
        }
      } else {
        postorder.push_back(b);
        stack.pop_back();
      }
    }
    for (std::uint32_t i = 0; i < postorder.size(); ++i) {
      po_num[postorder[i]] = i;
    }
    rpo.assign(postorder.rbegin(), postorder.rend());
  }

  std::vector<std::uint32_t> idom(n + 1, kNoBlock);
  idom[virt] = virt;
  auto intersect = [&](std::uint32_t a, std::uint32_t b) {
    while (a != b) {
      while (po_num[a] < po_num[b]) a = idom[a];
      while (po_num[b] < po_num[a]) b = idom[b];
    }
    return a;
  };
  const std::vector<std::uint32_t> no_preds;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::uint32_t b : rpo) {
      if (b == virt) continue;
      std::uint32_t new_idom = kNoBlock;
      const bool is_root = std::find(cfg.roots.begin(), cfg.roots.end(), b) !=
                           cfg.roots.end();
      if (is_root) new_idom = virt;
      for (std::uint32_t p : cfg.blocks[b].preds) {
        if (po_num[p] == kNoBlock || idom[p] == kNoBlock) continue;
        new_idom = new_idom == kNoBlock ? p : intersect(new_idom, p);
      }
      if (new_idom != kNoBlock && idom[b] != new_idom) {
        idom[b] = new_idom;
        changed = true;
      }
    }
  }
  for (std::uint32_t b = 0; b < n; ++b) {
    facts[b].idom = idom[b] == virt ? kNoBlock : idom[b];
  }
}

void run_intervals(const Program& program, const ControlFlowGraph& cfg,
                   std::vector<BlockFacts>& facts,
                   std::vector<RegState>& in_state) {
  const auto n = static_cast<std::uint32_t>(cfg.blocks.size());
  in_state.assign(n, RegState{});
  std::vector<int> ascents(n, 0);
  std::deque<std::uint32_t> work;
  std::vector<bool> queued(n, false);
  for (std::uint32_t r : cfg.roots) {
    in_state[r].fill(Interval::top());
    facts[r].in_valid = true;
    work.push_back(r);
    queued[r] = true;
  }
  while (!work.empty()) {
    const std::uint32_t bi = work.front();
    work.pop_front();
    queued[bi] = false;
    const BasicBlock& b = cfg.blocks[bi];
    RegState out = in_state[bi];
    for (Addr a = b.first; a <= b.last; ++a) {
      apply_instruction(program.at(a), out);
    }
    for (std::uint32_t si : b.succs) {
      RegState edge = out;
      refine_for_edge(program, b, cfg.blocks[si], edge);
      bool infeasible = false;
      for (const Interval& v : edge) infeasible |= v.is_empty();
      if (infeasible) continue;
      RegState& tin = in_state[si];
      bool changed = false;
      if (!facts[si].in_valid) {
        tin = edge;
        facts[si].in_valid = true;
        changed = true;
      } else {
        for (unsigned r = 0; r < sim::kNumGprs; ++r) {
          Interval j = interval_join(tin[r], edge[r]);
          if (ascents[si] >= kWidenThreshold && !(j == tin[r])) {
            if (j.lo < tin[r].lo) j.lo = Interval::kMin;
            if (j.hi > tin[r].hi) j.hi = Interval::kMax;
          }
          if (!(j == tin[r])) {
            tin[r] = j;
            changed = true;
          }
        }
      }
      if (changed) {
        ++ascents[si];
        if (!queued[si]) {
          work.push_back(si);
          queued[si] = true;
        }
      }
    }
  }
}

void run_stack_depth(const Program& program, const ControlFlowGraph& cfg,
                     std::vector<BlockFacts>& facts,
                     std::vector<StackWarning>& warnings) {
  const auto n = static_cast<std::uint32_t>(cfg.blocks.size());
  auto warn = [&](Addr addr, std::int32_t depth, std::string what) {
    warnings.push_back({addr, depth, std::move(what)});
  };
  std::deque<std::uint32_t> work;
  auto join_in = [&](std::uint32_t bi, std::int32_t depth) {
    BlockFacts& f = facts[bi];
    if (depth == kDepthUnknown) return;
    if (f.stack_in == kDepthUnknown) {
      f.stack_in = depth;
      work.push_back(bi);
    } else if (f.stack_in != depth) {
      std::ostringstream os;
      os << "stack depth mismatch on entry: " << f.stack_in << " vs "
         << depth;
      warn(cfg.blocks[bi].first, f.stack_in, os.str());
    }
  };
  // Function entries start with an empty local frame.  Blocks entered
  // only through manually materialized addresses (MovRI landings) keep
  // kDepthUnknown and stay silent: optimistic joins, so a warning always
  // names two *proven* depths.
  for (std::uint32_t bi = 0; bi < n; ++bi) {
    if (cfg.blocks[bi].is_function_entry) join_in(bi, 0);
  }
  if (cfg.blocks.empty()) return;
  if (!cfg.roots.empty() && program.symbols().empty()) join_in(cfg.roots[0], 0);

  while (!work.empty()) {
    const std::uint32_t bi = work.front();
    work.pop_front();
    const BasicBlock& b = cfg.blocks[bi];
    std::int32_t depth = facts[bi].stack_in;
    if (depth == kDepthUnknown) continue;
    for (Addr a = b.first; a <= b.last; ++a) {
      const Opcode op = program.at(a).op;
      if (op == Opcode::Push) {
        ++depth;
      } else if (op == Opcode::Pop) {
        if (depth <= 0) {
          warn(a, depth, "pop below the function's local frame");
          depth = kDepthUnknown;
          break;
        }
        --depth;
      } else if (op == Opcode::Ret && depth != 0) {
        warn(a, depth, "ret with non-empty local frame");
      }
    }
    if (depth == kDepthUnknown) continue;
    const Opcode last = program.at(b.last).op;
    if (last == Opcode::Call) {
      // A balanced callee returns to the next slot with the frame intact.
      const std::uint32_t next = cfg.block_at(b.last + 1);
      if (next != kNoBlock) join_in(next, depth);
    } else if (last == Opcode::Jmp || sim::is_cond_branch(last) ||
               (!sim::is_branch(last) && last != Opcode::Hlt)) {
      for (std::uint32_t si : b.succs) join_in(si, depth);
    }
    // Ret / JmpR / Hlt: control leaves the frame; nothing to propagate.
  }
}

}  // namespace

DataflowResult run_dataflow(const Program& program,
                            const ControlFlowGraph& cfg) {
  DataflowResult r;
  r.facts.assign(cfg.blocks.size(), BlockFacts{});
  if (cfg.blocks.empty()) return r;
  compute_reachability(cfg, r.facts);
  compute_dominators(cfg, r.facts);
  run_intervals(program, cfg, r.facts, r.in_state);
  run_stack_depth(program, cfg, r.facts, r.stack_warnings);
  return r;
}

}  // namespace xentry::analysis
