#include "xentry/features.hpp"

namespace xentry {

const std::vector<std::string>& feature_names() {
  static const std::vector<std::string> names = {"VMER", "RT", "BR", "RM",
                                                 "WM"};
  return names;
}

}  // namespace xentry
