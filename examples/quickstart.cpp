// Quickstart: boot the virtual platform, run hypervisor activations under
// Xentry, and watch the three detection techniques fire.
//
//   $ ./quickstart
//
// Walks through the core public API in ~5 minutes of reading:
//   hv::Machine     — the simulated platform with the microvisor loaded
//   hv::Activation  — one VM exit (reason + arguments)
//   Xentry          — the detection framework wrapping every activation
//   hv::Injection   — a single-bit soft error in an architectural register
#include <cstdio>

#include "hv/machine.hpp"
#include "ml/decision_tree.hpp"
#include "xentry/framework.hpp"

using namespace xentry;

int main() {
  // 1. A machine with the paper's Simics topology: Dom0 + two DomUs.
  hv::Machine machine;
  std::printf("machine: %d domains, %d vcpus, %zu instructions of "
              "microvisor text\n",
              machine.num_domains(), machine.num_vcpus(),
              machine.microvisor().program.size());

  // 2. A fault-free hypercall, observed by Xentry.
  Xentry xentry;
  hv::Activation act = machine.make_activation(
      hv::ExitReason::hypercall(hv::Hypercall::mmu_update), /*seed=*/42);
  Observation obs = xentry.observe(machine, act);
  std::printf("\nfault-free mmu_update: reached VM entry=%d, "
              "features: VMER=%ld RT=%ld BR=%ld RM=%ld WM=%ld\n",
              obs.run.reached_vm_entry, (long)obs.features.vmer,
              (long)obs.features.rt, (long)obs.features.br,
              (long)obs.features.rm, (long)obs.features.wm);

  // 3. A soft error in the instruction pointer: caught as a fatal
  //    hardware exception (runtime detection).
  hv::Injection rip_flip{/*at_step=*/5, sim::Reg::rip, /*bit=*/40};
  hv::RunOptions opts;
  opts.injection = &rip_flip;
  obs = xentry.observe(machine, act, opts);
  std::printf("\nrip bit-flip: detected=%d technique=%s (%s)\n",
              obs.detected, std::string(technique_name(obs.technique)).c_str(),
              ExceptionParser::describe(obs.run.trap).c_str());

  // 4. A corrupted VCPU state: caught by a software assertion (the
  //    paper's Listing 2 invariant, is_idle_vcpu before idling).
  machine.memory().poke(hv::layout::kHvDataBase + hv::layout::kHvRunqCount,
                        0);
  machine.memory().poke(
      hv::layout::vcpu_addr(machine.num_vcpus()) + hv::layout::kVcpuState,
      hv::layout::kVcpuStateRunning);
  hv::Activation block;
  block.reason = hv::ExitReason::hypercall(hv::Hypercall::sched_op_compat);
  block.arg1 = 1;  // block -> schedule -> idle path
  block.vcpu = 0;
  obs = xentry.observe(machine, block);
  std::printf("corrupted idle vcpu: detected=%d technique=%s assert=\"%s\"\n",
              obs.detected, std::string(technique_name(obs.technique)).c_str(),
              xentry.assertions().description(obs.run.trap.aux).c_str());
  machine.reset();

  // 5. VM transition detection needs a trained model; install a toy one
  //    that flags executions with implausibly few instructions.
  {
    ml::Dataset ds({"VMER", "RT", "BR", "RM", "WM"});
    // Legal runs retire >= ~10 instructions; truncated ones do not.
    for (std::int64_t rt = 10; rt < 200; rt += 10) {
      std::array<std::int64_t, 5> row{1, rt, 5, 5, 5};
      ds.add(row, ml::Label::Correct);
    }
    std::array<std::int64_t, 5> bad{1, 3, 1, 1, 1};
    ds.add(bad, ml::Label::Incorrect);
    ml::DecisionTree tree;
    tree.train(ds);
    xentry.set_model(ml::RuleSet::compile(tree));
  }
  std::printf("\ninstalled a toy transition model (%d comparisons worst "
              "case)\n",
              xentry.detector().max_comparisons_per_entry());
  std::printf("see examples/train_and_deploy.cpp for the real training "
              "pipeline.\n");
  return 0;
}
