#include "fault/training.hpp"

#include <stdexcept>

namespace xentry::fault {

ml::Dataset oversample_incorrect(const ml::Dataset& data,
                                 double target_fraction) {
  if (target_fraction <= 0.0 || target_fraction >= 1.0) return data;
  const std::size_t incorrect = data.count(ml::Label::Incorrect);
  const std::size_t correct = data.size() - incorrect;
  if (incorrect == 0 || correct == 0) return data;

  // Solve (incorrect * k) / (correct + incorrect * k) >= target.
  const double k = target_fraction * static_cast<double>(correct) /
                   ((1.0 - target_fraction) * static_cast<double>(incorrect));
  const auto copies = static_cast<std::size_t>(k);
  if (copies <= 1) return data;

  ml::Dataset out(data.feature_names());
  for (std::size_t r = 0; r < data.size(); ++r) {
    const std::size_t reps =
        data.label(r) == ml::Label::Incorrect ? copies : 1;
    for (std::size_t c = 0; c < reps; ++c) out.add(data.row(r), data.label(r));
  }
  return out;
}

TrainedDetector train_detector(const ml::Dataset& samples,
                               const TrainingOptions& options) {
  if (samples.empty()) {
    throw std::invalid_argument("train_detector: no samples");
  }
  auto [train, test] = samples.split(options.train_fraction, options.seed);
  if (train.empty() || test.empty()) {
    throw std::invalid_argument("train_detector: degenerate split");
  }
  const ml::Dataset balanced =
      oversample_incorrect(train, options.incorrect_target_fraction);

  ml::TreeParams params;
  if (options.random_tree) {
    params = ml::random_tree_params(samples.num_features(), options.seed);
  } else {
    params.seed = options.seed;
  }

  TrainedDetector out;
  out.tree.train(balanced, params);
  out.rules = ml::RuleSet::compile(out.tree);
  out.test_eval = ml::evaluate(
      test, [&](auto row) { return out.tree.predict(row); });
  out.train_samples = balanced.size();
  out.train_incorrect = balanced.count(ml::Label::Incorrect);
  out.test_samples = test.size();
  return out;
}

}  // namespace xentry::fault
