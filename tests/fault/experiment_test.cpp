#include "fault/experiment.hpp"

#include <gtest/gtest.h>

namespace xentry::fault {
namespace {

struct Rig {
  hv::Machine golden;
  hv::Machine faulty;
  Xentry xentry;
  InjectionExperiment exp{golden, faulty, xentry};
};

TEST(ExperimentTest, GoldenProbeRestoresState) {
  Rig rig;
  const auto act = rig.golden.make_activation(
      hv::ExitReason::hypercall(hv::Hypercall::mmu_update), 5);
  const auto before = rig.golden.memory().snapshot();
  auto probe = rig.exp.probe_golden(act);
  EXPECT_GT(probe.steps, 0u);
  EXPECT_EQ(probe.trace.size(), probe.steps);
  EXPECT_EQ(rig.golden.memory().snapshot(), before);
}

TEST(ExperimentTest, GoldenProbeAdvanceLeavesPostRunStateAndFillsProbe) {
  // Two identical rigs: one advances via a plain golden run, the other
  // via probe_golden_advance.  The golden machines must end bit-identical
  // (the probe run IS the golden run), and the probe must carry the same
  // trace/steps as the restoring probe_golden.
  Rig plain, probed;
  const auto act = plain.golden.make_activation(
      hv::ExitReason::hypercall(hv::Hypercall::mmu_update), 5);
  const auto reference = plain.exp.probe_golden(act);  // restores state
  plain.golden.run(act);

  InjectionExperiment::GoldenProbe probe;
  probed.exp.probe_golden_advance(act, probe);
  EXPECT_EQ(probe.steps, reference.steps);
  EXPECT_EQ(probe.trace, reference.trace);
  EXPECT_TRUE(probe.reached_vm_entry);
  EXPECT_EQ(probed.golden.memory().snapshot(),
            plain.golden.memory().snapshot());
}

TEST(ExperimentTest, ProbeReuseRunOneMatchesTwoRunPath) {
  // The golden-run-reuse fast path must produce bit-identical results to
  // the legacy path that re-executes the golden run inside run_one.
  Rig legacy, fast;
  std::vector<hv::Activation> acts;
  for (int i = 0; i < 20; ++i) {
    acts.push_back(legacy.golden.make_activation(
        hv::all_exit_reasons()[static_cast<std::size_t>(i) %
                               hv::all_exit_reasons().size()],
        40 + i));
  }
  std::mt19937_64 rng_a(77), rng_b(77);
  InjectionExperiment::GoldenProbe probe;
  for (const auto& act : acts) {
    const auto ref_probe = legacy.exp.probe_golden(act);
    const hv::Injection inj_a = InjectionExperiment::draw_activated_injection(
        rng_a, ref_probe.trace, legacy.golden.microvisor().program);
    const auto a = legacy.exp.run_one(act, inj_a);

    fast.exp.probe_golden_advance(act, probe);
    const hv::Injection inj_b = InjectionExperiment::draw_activated_injection(
        rng_b, probe.trace, fast.golden.microvisor().program);
    const auto b = fast.exp.run_one(act, inj_b, probe);

    ASSERT_EQ(inj_a.at_step, inj_b.at_step);
    ASSERT_EQ(inj_a.reg, inj_b.reg);
    ASSERT_EQ(inj_a.bit, inj_b.bit);
    EXPECT_EQ(a.golden_ok, b.golden_ok);
    EXPECT_EQ(a.golden_features.as_array(), b.golden_features.as_array());
    EXPECT_EQ(a.record.activated, b.record.activated);
    EXPECT_EQ(a.record.consequence, b.record.consequence);
    EXPECT_EQ(a.record.detected, b.record.detected);
    EXPECT_EQ(a.record.technique, b.record.technique);
    EXPECT_EQ(a.record.latency, b.record.latency);
    EXPECT_EQ(a.record.trap, b.record.trap);
    EXPECT_EQ(a.record.trace_diverged, b.record.trace_diverged);
    EXPECT_EQ(a.record.undetected, b.record.undetected);
    EXPECT_EQ(a.record.features.as_array(), b.record.features.as_array());
  }
  // Both rigs must also end with machines in the same state.
  EXPECT_EQ(legacy.golden.memory().snapshot(),
            fast.golden.memory().snapshot());
  EXPECT_EQ(legacy.faulty.memory().snapshot(),
            fast.faulty.memory().snapshot());
}

TEST(ExperimentTest, ActivatedDrawWithEmptyTraceIsWellFormed) {
  std::mt19937_64 rng(3);
  sim::Program empty_prog;
  bool saw_non_default_reg = false;
  for (int i = 0; i < 100; ++i) {
    const hv::Injection inj = InjectionExperiment::draw_activated_injection(
        rng, {}, empty_prog);
    EXPECT_EQ(inj.at_step, 0u);
    EXPECT_GE(inj.bit, 0);
    EXPECT_LT(inj.bit, sim::kBitsPerReg);
    EXPECT_GE(static_cast<int>(inj.reg), 0);
    EXPECT_LT(static_cast<int>(inj.reg), sim::kNumArchRegs);
    saw_non_default_reg |= inj.reg != sim::Reg::rax;
  }
  // The fallback draws a uniform register, not the default-initialized rax.
  EXPECT_TRUE(saw_non_default_reg);
}

TEST(ExperimentTest, AdvanceKeepsMachinesInLockstep) {
  Rig rig;
  for (int i = 0; i < 5; ++i) {
    rig.exp.advance(rig.golden.make_activation(
        hv::ExitReason::apic(hv::ApicInterrupt::timer), 100 + i));
  }
  EXPECT_TRUE(hv::Machine::diff_persistent_state(rig.golden, rig.faulty)
                  .empty());
}

TEST(ExperimentTest, NonActivatedFaultIsMasked) {
  Rig rig;
  const auto act = rig.golden.make_activation(
      hv::ExitReason::apic(hv::ApicInterrupt::spurious), 9, 0);
  // The spurious handler never touches rdx.
  hv::Injection inj{1, sim::Reg::rdx, 30};
  auto r = rig.exp.run_one(act, inj);
  EXPECT_TRUE(r.golden_ok);
  EXPECT_TRUE(r.record.injected);
  EXPECT_FALSE(r.record.activated);
  EXPECT_EQ(r.record.consequence, Consequence::Masked);
  EXPECT_FALSE(r.record.detected);
}

TEST(ExperimentTest, RipFlipIsHypervisorCrashDetectedByHardware) {
  Rig rig;
  const auto act = rig.golden.make_activation(
      hv::ExitReason::hypercall(hv::Hypercall::console_io), 8, 2);
  hv::Injection inj{3, sim::Reg::rip, 45};
  auto r = rig.exp.run_one(act, inj);
  EXPECT_EQ(r.record.consequence, Consequence::HypervisorCrash);
  EXPECT_TRUE(r.record.detected);
  EXPECT_EQ(r.record.technique, Technique::HardwareException);
  EXPECT_EQ(r.record.trap, sim::TrapKind::PageFault);
  EXPECT_EQ(r.record.latency, 0u);  // activated at the fetch that faulted
}

TEST(ExperimentTest, GoldenFeaturesAreCorrectSample) {
  Rig rig;
  const auto act = rig.golden.make_activation(
      hv::ExitReason::hypercall(hv::Hypercall::xen_version), 4);
  hv::Injection inj{0, sim::Reg::rip, 50};
  auto r = rig.exp.run_one(act, inj);
  EXPECT_TRUE(r.golden_ok);
  EXPECT_GT(r.golden_features.rt, 0);
  EXPECT_EQ(r.golden_features.vmer, act.reason.code());
}

TEST(ExperimentTest, DrawInjectionWithinBounds) {
  std::mt19937_64 rng(5);
  for (int i = 0; i < 200; ++i) {
    hv::Injection inj = InjectionExperiment::draw_injection(rng, 50);
    EXPECT_LT(inj.at_step, 50u);
    EXPECT_GE(inj.bit, 0);
    EXPECT_LT(inj.bit, 64);
    EXPECT_LT(static_cast<int>(inj.reg), sim::kNumArchRegs);
  }
}

TEST(ExperimentTest, ActivatedDrawPicksReadRegisters) {
  Rig rig;
  const auto act = rig.golden.make_activation(
      hv::ExitReason::hypercall(hv::Hypercall::grant_table_op), 6);
  auto probe = rig.exp.probe_golden(act);
  std::mt19937_64 rng(5);
  int activated = 0;
  const int trials = 50;
  for (int i = 0; i < trials; ++i) {
    hv::Injection inj = InjectionExperiment::draw_activated_injection(
        rng, probe.trace, rig.golden.microvisor().program);
    auto r = rig.exp.run_one(act, inj);
    activated += r.record.activated ? 1 : 0;
  }
  // Activation is near-certain by construction (the register is read by
  // the very next instruction unless a trap preempts it).
  EXPECT_GT(activated, trials * 8 / 10);
}

TEST(ExperimentTest, MismatchedMachinesThrow) {
  hv::Machine a;
  hv::MicrovisorOptions opt;
  opt.num_domains = 2;
  hv::Machine b(opt);
  Xentry x;
  EXPECT_THROW(InjectionExperiment(a, b, x), std::invalid_argument);
}

TEST(OutcomeTest, TaxonomyPredicates) {
  EXPECT_TRUE(is_long_latency(Consequence::AppSdc));
  EXPECT_TRUE(is_long_latency(Consequence::AllVmFailure));
  EXPECT_FALSE(is_long_latency(Consequence::HypervisorCrash));
  EXPECT_FALSE(is_long_latency(Consequence::Masked));
  EXPECT_TRUE(is_manifested(Consequence::HypervisorCrash));
  EXPECT_FALSE(is_manifested(Consequence::Masked));
  EXPECT_EQ(consequence_name(Consequence::AppSdc), "app_sdc");
  EXPECT_EQ(undetected_class_name(UndetectedClass::TimeValues),
            "time_values");
}

}  // namespace
}  // namespace xentry::fault
