// End-to-end campaign throughput benchmark (no google-benchmark
// dependency: one shot, wall-clock timed, JSON out).
//
// The paper's headline experiment is a 30,000-injection campaign; the
// injections/sec of `run_campaign` bounds every study we can afford.
// This bench tracks the three layers the hot path is built from:
//   - campaign:  end-to-end injections/sec through run_campaign
//   - golden:    raw simulator throughput (steps/sec) of clean activations
//   - snapshot:  machine snapshot+restore round-trips/sec (the sync cost
//                paid between golden and faulty machines per injection)
//
// Output is a single JSON object, suitable for seeding a BENCH_*.json
// trajectory.  A fourth argument enables the campaign progress heartbeat
// on stderr (stdout stays pure JSON).
// Usage:  micro_campaign [injections] [shards] [seed] [heartbeat_sec]
//                        [--engine fast|reference|jit] [--sampling]
//                        [--metrics-out FILE] [--forensics-out FILE]
//                        [--records-out PATH] [--records-format jsonl|bin]
//                        [--checkpoint PATH] [--help]
// Run `micro_campaign --help` for the flag reference.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/artifacts.hpp"
#include "bench/bench_util.hpp"
#include "fault/campaign.hpp"
#include "fault/record_io.hpp"
#include "fault/report.hpp"
#include "fault/stats.hpp"
#include "hv/machine.hpp"
#include "hv/microvisor.hpp"
#include "obs/atomic_file.hpp"
#include "obs/record_sink.hpp"

namespace {

using namespace xentry;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct StreamingFlags {
  std::string records_out;
  obs::RecordFormat records_format = obs::RecordFormat::kJsonl;
  std::string checkpoint;
  int checkpoint_every = 1024;
};

struct CampaignScore {
  double elapsed = 0;
  std::size_t records = 0;
  std::size_t manifested = 0;
  std::size_t detected = 0;
  std::size_t forensics = 0;
  std::uint64_t digest = 0;
  std::uint64_t streamed = 0;
  bool resumed = false;
  fault::WeightedRates weighted;
};

/// Reads back every persisted record, probing shard files from index 0
/// (the sink writes one file per shard; a missing index ends the run).
std::vector<fault::InjectionRecord> read_streamed_records(
    const std::string& base, obs::RecordFormat fmt) {
  std::vector<fault::InjectionRecord> records;
  for (std::size_t shard = 0;; ++shard) {
    std::ifstream in(obs::ShardedFileSink::shard_path(base, fmt, shard),
                     std::ios::binary);
    if (!in.is_open()) break;
    const std::string data((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    fault::decode_records(data, fmt, records);
  }
  return records;
}

/// Progress heartbeat on stderr, one line per sample, so a long campaign
/// is observable without touching the JSON contract on stdout.  Sink
/// drops and shard stragglers only appear when nonzero — a healthy
/// campaign's line stays free of alarm fields.
void print_heartbeat(const fault::HeartbeatSample& s) {
  std::string alerts;
  if (s.sink_dropped > 0) {
    alerts += "  drops=" + std::to_string(s.sink_dropped);
  }
  if (s.stragglers > 0) {
    alerts += "  strag=" + std::to_string(s.stragglers);
  }
  std::fprintf(
      stderr,
      "[micro_campaign] %llu/%llu injections  %.0f inj/s "
      "(recent %.0f)  detected %llu  ckpt=%llu  lag=%lluB%s  elapsed %.1fs  "
      "eta %.0fs%s\n",
      static_cast<unsigned long long>(s.completed),
      static_cast<unsigned long long>(s.total), s.injections_per_sec,
      s.recent_per_sec, static_cast<unsigned long long>(s.detected_total),
      static_cast<unsigned long long>(s.checkpointed),
      static_cast<unsigned long long>(s.sink_lag_bytes), alerts.c_str(),
      s.elapsed_sec, s.eta_sec, s.last ? "  [final]" : "");
}

CampaignScore time_campaign(int injections, int shards, std::uint64_t seed,
                            double heartbeat_sec, sim::EngineKind engine,
                            bool sampling, const std::string& metrics_out,
                            const std::string& forensics_out,
                            const StreamingFlags& streaming) {
  fault::CampaignConfig cfg;
  cfg.injections = injections;
  cfg.shards = shards;
  cfg.seed = seed;
  // The dataset accumulator is not checkpointable, so a checkpointed run
  // trades it away (validate_campaign_config enforces the exclusion) —
  // and with no dataset and no model, transition detection could never
  // fire, so it goes too.
  cfg.collect_dataset = streaming.checkpoint.empty();
  cfg.xentry.transition_detection = cfg.collect_dataset;
  cfg.xentry.engine = engine;
  cfg.sampling.importance = sampling;
  if (engine == sim::EngineKind::Jit || sampling) {
    cfg.analysis = std::make_shared<analysis::AnalysisArtifacts>(
        analysis::analyze_program(hv::build_microvisor(cfg.machine).program));
  }
  // Checkpointed runs keep metrics on regardless: the registry is what the
  // snapshot sidecar persists, and a resume without it would have nothing
  // to reconstruct.
  cfg.obs.metrics = !metrics_out.empty() || !streaming.checkpoint.empty();
  cfg.obs.forensics = !forensics_out.empty();
  cfg.streaming.records_path = streaming.records_out;
  cfg.streaming.records_format = streaming.records_format;
  cfg.streaming.checkpoint_path = streaming.checkpoint;
  cfg.streaming.checkpoint_every = streaming.checkpoint_every;
  if (heartbeat_sec > 0) {
    cfg.heartbeat.interval_sec = heartbeat_sec;
    cfg.heartbeat.callback = print_heartbeat;
  }
  const auto t0 = Clock::now();
  const fault::CampaignResult res = fault::run_campaign(cfg);
  CampaignScore score;
  score.elapsed = seconds_since(t0);
  score.streamed = res.records_streamed;
  score.resumed = res.resumed;
  // A resumed run holds only the post-resume suffix in memory; the full
  // stream lives in the sink files, so score from those instead.
  std::vector<fault::InjectionRecord> streamed;
  if (res.resumed) {
    streamed = read_streamed_records(streaming.records_out,
                                     streaming.records_format);
  }
  const std::vector<fault::InjectionRecord>& records =
      res.resumed ? streamed : res.records;
  score.records = records.size();
  for (const auto& r : records) {
    score.manifested += fault::is_manifested(r.consequence);
    score.detected += r.detected;
    score.forensics += r.forensics.has_value();
  }
  score.digest = bench::records_digest(records);
  score.weighted = fault::weighted_rates(records);
  if (!metrics_out.empty()) {
    // Atomic publication: tailing readers (the fleet plane's pattern)
    // see either the previous report or this one, never a torn write.
    std::ostringstream os;
    res.metrics.write_json(os);
    obs::write_file_atomic(metrics_out, os.str());
  }
  if (!forensics_out.empty()) {
    std::ofstream os(forensics_out);
    fault::write_forensics_jsonl(os, res.records);
  }
  return score;
}

struct GoldenScore {
  double elapsed = 0;
  std::uint64_t steps = 0;
  std::uint64_t runs = 0;
};

GoldenScore time_golden(double budget_sec) {
  hv::Machine m;
  const auto act = m.make_activation(
      hv::ExitReason::hypercall(hv::Hypercall::mmu_update), 7);
  GoldenScore score;
  const auto t0 = Clock::now();
  do {
    for (int i = 0; i < 64; ++i) {
      const hv::RunResult res = m.run(act);
      score.steps += res.steps;
      ++score.runs;
    }
    score.elapsed = seconds_since(t0);
  } while (score.elapsed < budget_sec);
  return score;
}

struct SnapshotScore {
  double elapsed = 0;
  std::uint64_t round_trips = 0;
};

SnapshotScore time_snapshot(double budget_sec) {
  // The campaign sync pattern: golden advances, faulty is re-aligned.
  hv::Machine golden, faulty;
  const auto act = golden.make_activation(
      hv::ExitReason::hypercall(hv::Hypercall::grant_table_op), 3);
  SnapshotScore score;
  const auto t0 = Clock::now();
  do {
    for (int i = 0; i < 64; ++i) {
      golden.run(act);
      faulty.restore(golden.snapshot());
      ++score.round_trips;
    }
    score.elapsed = seconds_since(t0);
  } while (score.elapsed < budget_sec);
  return score;
}

void print_help() {
  std::printf(
      "usage: micro_campaign [injections] [shards] [seed] [heartbeat_sec]\n"
      "                      [options]\n"
      "\n"
      "Positional (all optional):\n"
      "  injections       campaign size (default 2000)\n"
      "  shards           worker threads (default 1; 0 = hardware "
      "concurrency)\n"
      "  seed             campaign seed (default 7)\n"
      "  heartbeat_sec    progress heartbeat interval on stderr (default "
      "off)\n"
      "\n"
      "Options:\n"
      "  --engine fast|reference|jit\n"
      "                   execution engine for the campaign machines "
      "(default\n"
      "                   fast; jit runs analyze_program first and compiles "
      "the\n"
      "                   threaded stream).  records_digest must be\n"
      "                   bit-identical across all three — CI asserts it.\n"
      "  --sampling       masking-aware importance sampling: runs\n"
      "                   analyze_program for the vulnerability map and "
      "skips\n"
      "                   provably-masked draws with exact reweighting.\n"
      "  --metrics-out FILE\n"
      "                   enable obs.metrics and write the merged registry "
      "JSON\n"
      "  --forensics-out FILE\n"
      "                   enable obs.forensics and write the replay "
      "evidence\n"
      "                   (one JSON object per qualifying record) as JSONL\n"
      "  --records-out PATH\n"
      "                   stream records through the durable sink: one\n"
      "                   append-only file per shard at\n"
      "                   PATH.shard<N>.<jsonl|bin>\n"
      "  --records-format jsonl|bin\n"
      "                   record wire format (default jsonl; bin is ~4x\n"
      "                   denser, decode-equivalent)\n"
      "  --checkpoint PATH\n"
      "                   checkpoint journal (requires --records-out).  If "
      "PATH\n"
      "                   already holds a journal for this exact campaign, "
      "the\n"
      "                   run RESUMES it: killed campaigns continue where "
      "they\n"
      "                   stopped and produce bit-identical record streams.\n"
      "                   Disables dataset collection (not checkpointable).\n"
      "  --checkpoint-every N\n"
      "                   shard iterations between checkpoints (default "
      "1024)\n"
      "  --help           this text\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_out, forensics_out;
  sim::EngineKind engine = sim::EngineKind::Fast;
  bool sampling = false;
  StreamingFlags streaming;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_help();
      return 0;
    } else if (arg == "--sampling") {
      sampling = true;
    } else if (arg == "--metrics-out" && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (arg == "--forensics-out" && i + 1 < argc) {
      forensics_out = argv[++i];
    } else if (arg == "--records-out" && i + 1 < argc) {
      streaming.records_out = argv[++i];
    } else if (arg == "--checkpoint" && i + 1 < argc) {
      streaming.checkpoint = argv[++i];
    } else if (arg == "--checkpoint-every" && i + 1 < argc) {
      streaming.checkpoint_every = std::atoi(argv[++i]);
    } else if (arg == "--records-format" && i + 1 < argc) {
      const auto fmt = obs::record_format_from_name(argv[++i]);
      if (!fmt.has_value()) {
        std::fprintf(stderr,
                     "micro_campaign: unknown --records-format '%s' (want "
                     "jsonl|bin)\n",
                     argv[i]);
        return 2;
      }
      streaming.records_format = *fmt;
    } else if (arg == "--engine" && i + 1 < argc) {
      const std::string name = argv[++i];
      if (name == "fast") {
        engine = sim::EngineKind::Fast;
      } else if (name == "reference") {
        engine = sim::EngineKind::Reference;
      } else if (name == "jit") {
        engine = sim::EngineKind::Jit;
      } else {
        std::fprintf(stderr,
                     "micro_campaign: unknown --engine '%s' (want "
                     "fast|reference|jit)\n",
                     name.c_str());
        return 2;
      }
    } else {
      positional.push_back(argv[i]);
    }
  }
  const int injections =
      positional.size() > 0 ? std::atoi(positional[0]) : 2000;
  const int shards = positional.size() > 1 ? std::atoi(positional[1]) : 1;
  const std::uint64_t seed =
      positional.size() > 2 ? std::strtoull(positional[2], nullptr, 10) : 7;
  const double heartbeat_sec =
      positional.size() > 3 ? std::atof(positional[3]) : 0;

  if (!streaming.checkpoint.empty() && streaming.records_out.empty()) {
    std::fprintf(stderr,
                 "micro_campaign: --checkpoint requires --records-out (a "
                 "resumed campaign reconstructs pre-kill records from the "
                 "sink)\n");
    return 2;
  }

  const CampaignScore campaign =
      time_campaign(injections, shards, seed, heartbeat_sec, engine,
                    sampling, metrics_out, forensics_out, streaming);
  const GoldenScore golden = time_golden(1.0);
  const SnapshotScore snap = time_snapshot(1.0);

  std::printf(
      "{\n"
      "  \"bench\": \"micro_campaign\",\n"
      "  \"injections\": %d,\n"
      "  \"shards\": %d,\n"
      "  \"seed\": %llu,\n"
      "  \"engine\": \"%s\",\n"
      "  \"records\": %zu,\n"
      "  \"records_digest\": \"%016llx\",\n"
      "  \"records_streamed\": %llu,\n"
      "  \"resumed\": %s,\n"
      "  \"manifested\": %zu,\n"
      "  \"detected\": %zu,\n"
      "  \"forensics_records\": %zu,\n"
      "  \"sampling\": %s,\n"
      "  \"effective_injections\": %.1f,\n"
      "  \"weighted_masked_rate\": %.6f,\n"
      "  \"weighted_sdc_rate\": %.6f,\n"
      "  \"weighted_crash_rate\": %.6f,\n"
      "  \"weighted_manifested_rate\": %.6f,\n"
      "  \"weighted_detected_rate\": %.6f,\n"
      "  \"campaign_elapsed_sec\": %.4f,\n"
      "  \"injections_per_sec\": %.1f,\n"
      "  \"effective_injections_per_sec\": %.1f,\n"
      "  \"golden_steps_per_sec\": %.0f,\n"
      "  \"golden_runs_per_sec\": %.0f,\n"
      "  \"snapshot_round_trips_per_sec\": %.0f\n"
      "}\n",
      injections, shards, static_cast<unsigned long long>(seed),
      std::string(sim::engine_name(engine)).c_str(), campaign.records,
      static_cast<unsigned long long>(campaign.digest),
      static_cast<unsigned long long>(campaign.streamed),
      campaign.resumed ? "true" : "false",
      campaign.manifested, campaign.detected, campaign.forensics,
      sampling ? "true" : "false",
      campaign.weighted.effective_injections,
      campaign.weighted.rate(fault::Consequence::Masked),
      campaign.weighted.rate(fault::Consequence::AppSdc),
      campaign.weighted.rate(fault::Consequence::AppCrash),
      campaign.weighted.manifested_rate(),
      campaign.weighted.detected_rate(), campaign.elapsed,
      static_cast<double>(campaign.records) / campaign.elapsed,
      campaign.weighted.effective_injections / campaign.elapsed,
      static_cast<double>(golden.steps) / golden.elapsed,
      static_cast<double>(golden.runs) / golden.elapsed,
      static_cast<double>(snap.round_trips) / snap.elapsed);
  return 0;
}
