// Compilation target of the threaded-code execution engine.
//
// A CompiledProgram is a flat, pre-decoded handler stream: one OpEntry per
// instruction slot (plus one off-the-end sentinel), each carrying a small
// handler token, resolved operands, and the static bookkeeping prefixes of
// its superblock.  The hot loop in the executor (src/sim/jit/engine.cpp)
// is then pure label dispatch — no fetch bounds check, no opcode switch,
// no per-step retire/TSC/counter updates, and no fusion re-check.
//
// Superblocks here are maximal fall-through runs: chains of the analysis
// CFG's basic blocks glued along seams their terminators are guaranteed to
// fall through (conditional-branch fall-through paths and plain landing
// -site splits), extended across trailing Ud padding.  A superblock is
// therefore entered at its top by direct branches, anywhere inside it by
// indirect control flow or a corrupted rip, and left by side exits
// (branches, calls, traps) or off its end.  Two static per-op fields make
// entry-anywhere accounting free:
//
//   pre_*        what a walk from the superblock top to this op would have
//                retired.  The executor *subtracts* the entry op's prefix
//                from its accumulators on entry and *adds* the exit op's
//                prefix on exit, so every op between entry and exit is
//                accounted with zero per-op work, wherever entry landed.
//   sb_remaining worst-case retires from this op to the superblock's end.
//                Checked once per superblock entry against the remaining
//                watchdog budget; when the budget cannot cover the run,
//                the executor deopts to the interpreter run_loop for the
//                short tail instead of re-checking per step.
//
// The stream is position-independent shareable data: branch targets are
// slot indices, not pointers, and nothing references the Cpu or Memory it
// will run against, so one CompiledProgram (cached by program text
// signature, see CodeCache) serves every shard of a campaign concurrently.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/isa.hpp"
#include "sim/types.hpp"

namespace xentry::sim {

class Program;

namespace jit {

/// Handler tokens of the threaded stream, one per architectural opcode
/// plus the two synthetic entries:
///   OffEnd   the sentinel slot one past the code image (fall-through off
///            the end faults like an instruction fetch from unmapped
///            memory, after retiring everything before it)
///   SyncRip  prefix wrapper for the rare instructions that *read* rip as
///            an explicit operand: materializes the architectural rip
///            (which the engine otherwise keeps implicit in the stream
///            cursor) and chains to the real handler via OpEntry::target.
/// The Fuse* tokens are compile-time macro-fusion: a compare/test whose
/// successor slot is a conditional branch executes both in one dispatch
/// (the fused handler sets flags, advances the cursor, and falls straight
/// into the branch handler's code).  The branch keeps its own plain token
/// in its own slot, so indirect control flow landing *on* the branch
/// still works; fusion only short-circuits the fall-through edge.  Each
/// compare kind's eight branch variants are declared contiguously in Jcc
/// order so the compiler derives the token by offset.
/// Tokens are small indices into a per-specialization label table rather
/// than raw label addresses, so one stream serves all Trace/Shadow
/// executor variants and stays shareable across threads.
#define XENTRY_JIT_HANDLERS(X)                                              \
  X(Nop) X(MovRR) X(MovRI) X(Load) X(Store) X(Push) X(Pop)                  \
  X(AddRR) X(AddRI) X(SubRR) X(SubRI) X(MulRR) X(DivR)                      \
  X(AndRR) X(AndRI) X(OrRR) X(OrRI) X(XorRR) X(XorRI)                       \
  X(ShlRI) X(ShrRI) X(ShlRR) X(ShrRR) X(Neg) X(Not) X(Inc) X(Dec)           \
  X(CmpRR) X(CmpRI) X(TestRR) X(TestRI)                                     \
  X(Jmp) X(JmpR) X(Je) X(Jne) X(Jl) X(Jle) X(Jg) X(Jge) X(Jb) X(Jae)        \
  X(Call) X(Ret) X(Rdtsc) X(Hlt)                                            \
  X(AssertLeRI) X(AssertGeRI) X(AssertEqRI) X(AssertNeRI)                   \
  X(AssertEqRR) X(AssertLtRR)                                               \
  X(Ud) X(OffEnd) X(SyncRip)                                                \
  X(FuseCmpRRJe) X(FuseCmpRRJne) X(FuseCmpRRJl) X(FuseCmpRRJle)             \
  X(FuseCmpRRJg) X(FuseCmpRRJge) X(FuseCmpRRJb) X(FuseCmpRRJae)             \
  X(FuseCmpRIJe) X(FuseCmpRIJne) X(FuseCmpRIJl) X(FuseCmpRIJle)             \
  X(FuseCmpRIJg) X(FuseCmpRIJge) X(FuseCmpRIJb) X(FuseCmpRIJae)             \
  X(FuseTestRRJe) X(FuseTestRRJne) X(FuseTestRRJl) X(FuseTestRRJle)         \
  X(FuseTestRRJg) X(FuseTestRRJge) X(FuseTestRRJb) X(FuseTestRRJae)         \
  X(FuseTestRIJe) X(FuseTestRIJne) X(FuseTestRIJl) X(FuseTestRIJle)         \
  X(FuseTestRIJg) X(FuseTestRIJge) X(FuseTestRIJb) X(FuseTestRIJae)

enum class Handler : std::uint16_t {
#define XENTRY_JIT_ENUM_ENTRY(name) name,
  XENTRY_JIT_HANDLERS(XENTRY_JIT_ENUM_ENTRY)
#undef XENTRY_JIT_ENUM_ENTRY
};

inline constexpr std::size_t kNumHandlers = [] {
  std::size_t n = 0;
#define XENTRY_JIT_COUNT_ENTRY(name) ++n;
  XENTRY_JIT_HANDLERS(XENTRY_JIT_COUNT_ENTRY)
#undef XENTRY_JIT_COUNT_ENTRY
  return n;
}();

/// OpEntry::target value for direct branches whose resolved target lies
/// outside the code image (the taken path page-faults at the target).
inline constexpr std::uint32_t kNoTarget = 0xffffffffu;

/// One pre-decoded slot of the threaded stream.
struct OpEntry {
  std::uint16_t handler = 0;  ///< Handler token (index into the label table)
  std::uint8_t r1 = 0;
  std::uint8_t r2 = 0;
  /// Direct branches: resolved target slot index (kNoTarget when outside
  /// the image).  SyncRip: the wrapped real handler token.  Unused
  /// otherwise.
  std::uint32_t target = kNoTarget;
  // Superblock accounting (see the file header).
  std::uint32_t pre_retired = 0;
  std::uint32_t pre_branches = 0;
  std::uint32_t pre_loads = 0;
  std::uint32_t pre_stores = 0;
  std::uint32_t sb_remaining = 0;
  std::uint32_t aux = 0;  ///< assertion id
  std::int64_t imm = 0;   ///< raw immediate (branch target address, ALU imm)
};

/// One superblock: an inclusive range of instruction slots.  Produced by
/// analysis::form_superblocks over the CFG; compile() validates that the
/// list tiles the code image and never splits a guaranteed fall-through
/// edge (the accounting scheme is unsound otherwise).
struct Superblock {
  std::uint32_t first = 0;
  std::uint32_t last = 0;
};

/// True when executing `op` can continue at the next instruction slot.
/// Superblocks end exactly at the ops for which this is false; Call
/// counts as non-fall-through because it always transfers (its return
/// site is re-entered indirectly by Ret, with entry-bias accounting).
constexpr bool can_fall_through(Opcode op) {
  switch (op) {
    case Opcode::Jmp: case Opcode::JmpR: case Opcode::Call:
    case Opcode::Ret: case Opcode::Hlt: case Opcode::Ud:
      return false;
    default:
      return true;
  }
}

struct CompiledProgram {
  Addr base = 0;
  std::uint32_t code_size = 0;  ///< instruction slots, excluding sentinel
  /// sim::program_text_signature of the compiled-from program; the cache
  /// key, and the staleness check Cpu::set_compiled enforces.
  std::uint64_t signature = 0;
  std::vector<OpEntry> ops;  ///< code_size + 1 entries (OffEnd sentinel)
  std::vector<Superblock> superblocks;

  /// True when this compilation is valid for `program` (same base, size,
  /// and text signature — the fused hints may differ; they are not part
  /// of the architectural text and the stream does not use them).
  bool matches(const Program& program) const;
};

/// Compiles `program` into a threaded stream over the given superblock
/// tiling.  Throws std::invalid_argument when the tiling does not cover
/// the image contiguously or splits a fall-through edge (a stale or
/// hand-rolled superblock list — fail fast, the accounting would be
/// silently wrong).
std::shared_ptr<const CompiledProgram> compile(
    const Program& program, const std::vector<Superblock>& superblocks);

}  // namespace jit
}  // namespace xentry::sim
