// Per-activation cost model for Xentry's fault-free overhead (Fig. 7).
//
// Xentry adds three kinds of work to every hypervisor activation:
//   1. interception (the shim redirecting every entry point),
//   2. performance-counter programming at VM exit and readout at VM entry
//      (only when transition detection is enabled),
//   3. the rule evaluation at VM entry (a handful of integer compares),
// plus the software assertions executed inside the handler (runtime
// detection).  All constants are in CPU cycles on the paper's Xeon E5506
// (2.13 GHz); they are model parameters, not measurements of this host.
#pragma once

#include <cstdint>

namespace xentry {

struct CostParams {
  double cpu_ghz = 2.13;              ///< Xeon E5506
  double interception_cycles = 14;    ///< shim entry redirect
  double counter_program_cycles = 96; ///< 4x WRMSR-class ops at VM exit
  double counter_read_cycles = 72;    ///< 4x RDPMC + disable at VM entry
  double cycles_per_comparison = 2;   ///< one rule node: load+cmp+branch
  double cycles_per_assertion = 2;    ///< in-handler assertion: cmp+branch
};

struct ActivationCost {
  double runtime_only_cycles = 0;      ///< assertions only
  double with_transition_cycles = 0;   ///< + interception/counters/rules
};

/// Cycles added to one activation.  `assertions_executed` comes from the
/// run; `rule_comparisons` is the detector's per-entry comparison count.
ActivationCost activation_cost(const CostParams& p,
                               std::uint64_t assertions_executed,
                               int rule_comparisons);

/// Fraction of application time lost to detection, given the workload's
/// activation rate: overhead = rate * added_cycles / (cpu_ghz * 1e9).
double overhead_fraction(const CostParams& p, double activations_per_sec,
                         double added_cycles_per_activation);

}  // namespace xentry
