#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace xentry::ml {

TreeParams random_tree_params(std::size_t num_features, std::uint64_t seed) {
  TreeParams p;
  p.random_features = static_cast<int>(std::floor(
                          std::log2(static_cast<double>(num_features)))) +
                      1;
  p.seed = seed;
  return p;
}

void DecisionTree::train(const Dataset& data, const TreeParams& params) {
  if (data.empty()) {
    throw std::invalid_argument("DecisionTree::train: empty dataset");
  }
  nodes_.clear();
  params_ = params;
  std::vector<std::size_t> rows(data.size());
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  std::mt19937_64 rng(params.seed);
  build(data, rows, 0, rng);
}

std::int32_t DecisionTree::make_leaf(const ClassCounts& counts) {
  TreeNode leaf;
  leaf.counts = counts;
  leaf.label = counts.incorrect > counts.correct ? Label::Incorrect
                                                 : Label::Correct;
  nodes_.push_back(leaf);
  return static_cast<std::int32_t>(nodes_.size() - 1);
}

std::optional<DecisionTree::Split> DecisionTree::best_split(
    const Dataset& data, std::span<const std::size_t> rows,
    const ClassCounts& total, std::mt19937_64& rng) const {
  // Candidate features: all, or a random subset (RandomTree).
  std::vector<int> features(data.num_features());
  std::iota(features.begin(), features.end(), 0);
  if (params_.random_features > 0 &&
      static_cast<std::size_t>(params_.random_features) < features.size()) {
    std::shuffle(features.begin(), features.end(), rng);
    features.resize(static_cast<std::size_t>(params_.random_features));
  }

  Split best;
  std::vector<std::pair<std::int64_t, Label>> column(rows.size());
  for (int f : features) {
    for (std::size_t i = 0; i < rows.size(); ++i) {
      column[i] = {data.value(rows[i], static_cast<std::size_t>(f)),
                   data.label(rows[i])};
    }
    std::sort(column.begin(), column.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });

    // Scan boundaries between distinct values; left accumulates counts of
    // everything <= the candidate threshold.
    ClassCounts left;
    for (std::size_t i = 0; i + 1 < column.size(); ++i) {
      if (column[i].second == Label::Correct) ++left.correct;
      else ++left.incorrect;
      if (column[i].first == column[i + 1].first) continue;
      if (left.total() < params_.min_samples_leaf ||
          (total - left).total() < params_.min_samples_leaf) {
        continue;
      }
      const double gain = information_gain(total, left);
      if (gain > best.gain) {
        // Midpoint threshold, rounded down: everything <= threshold goes
        // left, which the integer midpoint preserves for the sorted pair.
        best.gain = gain;
        best.feature = f;
        best.threshold =
            column[i].first + (column[i + 1].first - column[i].first) / 2;
      }
    }
  }
  if (best.feature < 0 || best.gain <= params_.min_gain) return std::nullopt;
  return best;
}

std::int32_t DecisionTree::build(const Dataset& data,
                                 std::vector<std::size_t>& rows, int depth,
                                 std::mt19937_64& rng) {
  ClassCounts total;
  for (std::size_t r : rows) {
    if (data.label(r) == Label::Correct) ++total.correct;
    else ++total.incorrect;
  }
  if (total.pure() || depth >= params_.max_depth ||
      rows.size() < 2 * params_.min_samples_leaf) {
    return make_leaf(total);
  }
  const auto split = best_split(data, rows, total, rng);
  if (!split) return make_leaf(total);

  std::vector<std::size_t> left_rows, right_rows;
  left_rows.reserve(rows.size());
  right_rows.reserve(rows.size());
  for (std::size_t r : rows) {
    const std::int64_t v =
        data.value(r, static_cast<std::size_t>(split->feature));
    (v <= split->threshold ? left_rows : right_rows).push_back(r);
  }
  if (left_rows.empty() || right_rows.empty()) return make_leaf(total);
  rows.clear();
  rows.shrink_to_fit();

  // Reserve this node's slot before recursing so children index correctly.
  const auto idx = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[static_cast<std::size_t>(idx)].feature = split->feature;
  nodes_[static_cast<std::size_t>(idx)].threshold = split->threshold;
  nodes_[static_cast<std::size_t>(idx)].counts = total;
  const std::int32_t l = build(data, left_rows, depth + 1, rng);
  const std::int32_t r = build(data, right_rows, depth + 1, rng);
  nodes_[static_cast<std::size_t>(idx)].left = l;
  nodes_[static_cast<std::size_t>(idx)].right = r;
  return idx;
}

Label DecisionTree::predict(std::span<const std::int64_t> features,
                            int* comparisons) const {
  if (nodes_.empty()) {
    throw std::logic_error("DecisionTree::predict: untrained model");
  }
  int cmps = 0;
  std::size_t idx = 0;
  while (!nodes_[idx].is_leaf()) {
    const TreeNode& n = nodes_[idx];
    ++cmps;
    idx = static_cast<std::size_t>(
        features[static_cast<std::size_t>(n.feature)] <= n.threshold
            ? n.left
            : n.right);
  }
  if (comparisons != nullptr) *comparisons = cmps;
  return nodes_[idx].label;
}

std::size_t DecisionTree::prune_reduced_error(const Dataset& validation) {
  if (nodes_.empty()) {
    throw std::logic_error("prune_reduced_error: untrained tree");
  }
  // Per-node validation class counts, gathered by routing every row.
  std::vector<ClassCounts> reach(nodes_.size());
  for (std::size_t r = 0; r < validation.size(); ++r) {
    const auto row = validation.row(r);
    std::size_t idx = 0;
    for (;;) {
      if (validation.label(r) == Label::Correct) ++reach[idx].correct;
      else ++reach[idx].incorrect;
      const TreeNode& n = nodes_[idx];
      if (n.is_leaf()) break;
      idx = static_cast<std::size_t>(
          row[static_cast<std::size_t>(n.feature)] <= n.threshold ? n.left
                                                                  : n.right);
    }
  }

  // Children are always appended after their parent, so a reverse index
  // sweep is bottom-up.  subtree_errors[i] = validation mistakes of the
  // (possibly already pruned) subtree rooted at i.
  std::vector<std::size_t> subtree_errors(nodes_.size(), 0);
  std::size_t pruned = 0;
  auto leaf_errors = [&](std::size_t i, Label majority) {
    return majority == Label::Correct ? reach[i].incorrect
                                      : reach[i].correct;
  };
  for (std::size_t i = nodes_.size(); i-- > 0;) {
    TreeNode& n = nodes_[i];
    if (n.is_leaf()) {
      subtree_errors[i] = leaf_errors(i, n.label);
      continue;
    }
    const std::size_t as_subtree =
        subtree_errors[static_cast<std::size_t>(n.left)] +
        subtree_errors[static_cast<std::size_t>(n.right)];
    const Label majority = n.counts.incorrect > n.counts.correct
                               ? Label::Incorrect
                               : Label::Correct;
    const std::size_t as_leaf = leaf_errors(i, majority);
    if (as_leaf <= as_subtree) {
      n.feature = -1;
      n.left = n.right = -1;
      n.label = majority;
      subtree_errors[i] = as_leaf;
      ++pruned;
    } else {
      subtree_errors[i] = as_subtree;
    }
  }
  // Collapsed children remain in the vector as unreachable nodes; depth,
  // leaf_count and prediction all follow links, so they are inert.
  return pruned;
}

std::size_t DecisionTree::leaf_count() const {
  if (nodes_.empty()) return 0;
  // Walk from the root: pruning can orphan nodes that stay in the vector.
  std::size_t n = 0;
  std::vector<std::size_t> stack{0};
  while (!stack.empty()) {
    const std::size_t idx = stack.back();
    stack.pop_back();
    const TreeNode& node = nodes_[idx];
    if (node.is_leaf()) {
      ++n;
      continue;
    }
    stack.push_back(static_cast<std::size_t>(node.left));
    stack.push_back(static_cast<std::size_t>(node.right));
  }
  return n;
}

int DecisionTree::depth() const {
  if (nodes_.empty()) return 0;
  // Iterative depth via explicit stack of (node, depth).
  int max_depth = 0;
  std::vector<std::pair<std::size_t, int>> stack{{0, 1}};
  while (!stack.empty()) {
    auto [idx, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    const TreeNode& n = nodes_[idx];
    if (!n.is_leaf()) {
      stack.emplace_back(static_cast<std::size_t>(n.left), d + 1);
      stack.emplace_back(static_cast<std::size_t>(n.right), d + 1);
    }
  }
  return max_depth;
}

namespace {

void print_node(const std::vector<TreeNode>& nodes,
                const std::vector<std::string>& names, std::size_t idx,
                int indent, std::ostringstream& os) {
  const TreeNode& n = nodes[idx];
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  if (n.is_leaf()) {
    os << pad << (n.label == Label::Incorrect ? "Incorrect" : "Correct")
       << " (" << n.counts.correct << '/' << n.counts.incorrect << ")\n";
    return;
  }
  os << pad << names[static_cast<std::size_t>(n.feature)]
     << " <= " << n.threshold << "?\n";
  print_node(nodes, names, static_cast<std::size_t>(n.left), indent + 1, os);
  os << pad << names[static_cast<std::size_t>(n.feature)] << " > "
     << n.threshold << "?\n";
  print_node(nodes, names, static_cast<std::size_t>(n.right), indent + 1, os);
}

}  // namespace

std::string DecisionTree::to_string(
    const std::vector<std::string>& feature_names) const {
  std::ostringstream os;
  if (nodes_.empty()) return "(untrained)";
  print_node(nodes_, feature_names, 0, 0, os);
  return os.str();
}

}  // namespace xentry::ml
