# Empty compiler generated dependencies file for xentry_fault.
# This may be replaced when dependencies are built.
