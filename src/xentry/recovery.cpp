#include "xentry/recovery.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>

namespace xentry {

RecoveryOverhead estimate_recovery_overhead(
    const RecoveryParams& params, const std::vector<double>& activation_ns,
    double window_ns, int trials, std::uint64_t seed) {
  if (trials <= 0) {
    throw std::invalid_argument("estimate_recovery_overhead: trials <= 0");
  }
  if (window_ns <= 0) {
    throw std::invalid_argument("estimate_recovery_overhead: bad window");
  }
  std::mt19937_64 rng(seed);
  std::bernoulli_distribution is_fp(params.false_positive_rate);

  const double copy_total =
      params.copy_ns * static_cast<double>(activation_ns.size());

  RecoveryOverhead out;
  out.min = 1e300;
  out.max = -1e300;
  double sum = 0;
  for (int t = 0; t < trials; ++t) {
    double reexec = 0;
    for (double ns : activation_ns) {
      if (is_fp(rng)) reexec += ns;  // restore + re-execute the activation
    }
    const double overhead = (copy_total + reexec) / window_ns;
    sum += overhead;
    out.min = std::min(out.min, overhead);
    out.max = std::max(out.max, overhead);
  }
  out.mean = sum / trials;
  return out;
}

double expected_recovery_overhead(const RecoveryParams& params,
                                  const std::vector<double>& activation_ns,
                                  double window_ns) {
  double exec_total = 0;
  for (double ns : activation_ns) exec_total += ns;
  const double copy_total =
      params.copy_ns * static_cast<double>(activation_ns.size());
  return (copy_total + params.false_positive_rate * exec_total) / window_ns;
}

}  // namespace xentry
