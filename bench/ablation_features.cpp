// Ablation: which of Table I's five features carry the detection signal?
//
// The paper omits its feature ablation for space ("we omit the evaluation
// results and discussions on various features, tree depth, and training
// set size"); this bench fills that gap.  Each row trains the RandomTree
// on a feature subset and evaluates on a held-out campaign.
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "ml/decision_tree.hpp"
#include "ml/metrics.hpp"

namespace {

using xentry::ml::Dataset;
using xentry::ml::Label;

/// Projects a dataset onto a subset of feature columns.
Dataset project(const Dataset& src, const std::vector<int>& cols) {
  std::vector<std::string> names;
  for (int c : cols) {
    names.push_back(src.feature_names()[static_cast<std::size_t>(c)]);
  }
  Dataset out(names);
  std::vector<std::int64_t> row(cols.size());
  for (std::size_t r = 0; r < src.size(); ++r) {
    for (std::size_t i = 0; i < cols.size(); ++i) {
      row[i] = src.value(r, static_cast<std::size_t>(cols[i]));
    }
    out.add(row, src.label(r));
  }
  return out;
}

}  // namespace

int main() {
  using namespace xentry;
  bench::print_header("Ablation: feature subsets (VMER, RT, BR, RM, WM)");

  fault::CampaignConfig train_cfg;
  train_cfg.injections = bench::scaled(23400);
  train_cfg.seed = 101;
  train_cfg.collect_dataset = true;
  auto train_res = fault::run_campaign(train_cfg);
  fault::CampaignConfig test_cfg = train_cfg;
  test_cfg.injections = bench::scaled(12000);
  test_cfg.seed = 606;
  auto test_res = fault::run_campaign(test_cfg);

  const ml::Dataset balanced =
      fault::oversample_incorrect(train_res.dataset, 0.20);

  struct Row {
    const char* name;
    std::vector<int> cols;
  };
  const Row rows[] = {
      {"all five", {0, 1, 2, 3, 4}},
      {"no VMER", {1, 2, 3, 4}},
      {"VMER+RT", {0, 1}},
      {"VMER only", {0}},
      {"RT only", {1}},
      {"BR only", {2}},
      {"RM+WM", {3, 4}},
      {"counters only (RT,BR,RM,WM)", {1, 2, 3, 4}},
  };
  std::printf("%-30s %9s %9s %9s\n", "features", "accuracy", "fp_rate",
              "fn_rate");
  for (const Row& r : rows) {
    const Dataset tr = project(balanced, r.cols);
    const Dataset te = project(test_res.dataset, r.cols);
    ml::DecisionTree tree;
    tree.train(tr, ml::random_tree_params(r.cols.size(), 17));
    auto m =
        ml::evaluate(te, [&](auto row) { return tree.predict(row); });
    std::printf("%-30s %8.2f%% %8.2f%% %8.1f%%\n", r.name,
                100 * m.accuracy(), 100 * m.false_positive_rate(),
                100 * m.false_negative_rate());
  }
  std::printf(
      "\nobserved shape: no single feature suffices -- VMER alone cannot\n"
      "separate anything (it is pure context), and each counter alone\n"
      "misses most errors; accuracy needs the counters interpreted\n"
      "together (and VMER mostly conditions them, Section III-B).\n");
  return 0;
}
