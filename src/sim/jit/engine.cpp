// The threaded-code execution engine.
//
// run_jit_loop executes a CompiledProgram with computed-goto dispatch:
// every handler ends by jumping straight through the label table to the
// next slot's handler, so the steady state is one indirect jump per
// instruction — no fetch bounds check, no opcode switch, no per-step
// retire/TSC/counter updates, and no fusion re-check (a threaded
// dispatch is already the single jump fusion buys the interpreter).
//
// Architectural rip is implicit in the stream cursor `ip` and only
// materialized into the register file at control-flow exits (trap, halt,
// watchdog, deopt) and by the SyncRip prefix for the rare ops that read
// rip as a data operand.  Retire bookkeeping uses the superblock prefix
// scheme described in compiled_program.hpp: superblock entry subtracts
// the entry op's prefixes, every exit adds the exit op's (plus its own
// retire when it retires), so the accumulators hold exact totals at
// every boundary while costing nothing per op.
//
// Watchdog exactness: superblock entry checks the *worst case* retires
// of the run against the remaining budget once.  When the budget is too
// tight — only near the watchdog horizon — the engine deopts: it flushes
// exact architectural state and lets Cpu::run_interp walk the short tail
// with its per-step check.  Ops that do not retire (Hlt, Ud, the
// off-the-end sentinel) re-check explicitly because the entry check only
// bounds retires, and the reference engine watchdogs *before* reaching
// them when the budget is already exhausted.
//
// Computed goto is a GNU extension (GCC and Clang both provide it); on
// other compilers run_jit transparently degrades to the fast
// interpreter, which is bit-identical.
#include <stdexcept>
#include <utility>

#include "sim/cpu.hpp"
#include "sim/jit/compiled_program.hpp"

namespace xentry::sim {

void Cpu::set_compiled(std::shared_ptr<const jit::CompiledProgram> compiled) {
  if (compiled != nullptr && !compiled->matches(*prog_)) {
    throw std::invalid_argument(
        "Cpu::set_compiled: compiled program is stale for the attached "
        "program (base, size, or text signature differs) — recompile from "
        "the current image");
  }
  jit_ = std::move(compiled);
}

#if defined(__GNUC__)

namespace {

constexpr std::size_t kRax = static_cast<std::size_t>(Reg::rax);
constexpr std::size_t kRdx = static_cast<std::size_t>(Reg::rdx);
constexpr std::size_t kRsp = static_cast<std::size_t>(Reg::rsp);
constexpr std::size_t kRip = static_cast<std::size_t>(Reg::rip);
constexpr std::size_t kRflags = static_cast<std::size_t>(Reg::rflags);

}  // namespace

template <bool Trace, bool Shadow>
StepInfo Cpu::run_jit_loop(std::uint64_t max_steps, bool& deopted,
                           std::uint64_t& deopt_remaining) {
  const jit::CompiledProgram& cp = *jit_;
  const jit::OpEntry* const ops = cp.ops.data();
  const Addr base = cp.base;
  const Addr size = cp.code_size;
  Memory& mem = *mem_;
  // The register file is its own array: nothing the loop stores through
  // (region data, the trace buffer) aliases it, and telling the compiler
  // so keeps operand loads out of the store-reload chains.
  Word* const __restrict regs = regs_.data();
  std::vector<Addr>* const trace = trace_;
  const Word tsc0 = tsc_;

  // Signed on purpose: a mid-superblock entry subtracts the entry op's
  // prefixes, so the accumulators dip below zero until the matching exit
  // adds the exit op's prefixes back.  At every superblock boundary they
  // hold the true totals.
  std::int64_t executed = 0;
  std::int64_t branches = 0;
  std::int64_t loads = 0;
  std::int64_t stores = 0;

  const auto flush = [&] {
    tsc_ = tsc0 + static_cast<Word>(executed) * kTscPerStep;
    steps_ += static_cast<std::uint64_t>(executed);
    counters_.retire_block(static_cast<std::uint64_t>(executed),
                           static_cast<std::uint64_t>(branches),
                           static_cast<std::uint64_t>(loads),
                           static_cast<std::uint64_t>(stores));
  };
  const auto set_cmp = [&](Word a, Word b) {
    Word f = 0;
    if (a == b) f |= kFlagZero;
    if (static_cast<std::int64_t>(a) < static_cast<std::int64_t>(b)) {
      f |= kFlagSign;
    }
    if (a < b) f |= kFlagCarry;
    regs[kRflags] = f;
  };
  const auto set_res = [&](Word res) {
    Word f = 0;
    if (res == 0) f |= kFlagZero;
    if (static_cast<std::int64_t>(res) < 0) f |= kFlagSign;
    regs[kRflags] = f;
  };

  // Label table, same order as the Handler enum.
  const void* const labels[] = {
#define XENTRY_JIT_LABEL_ENTRY(name) &&h_##name,
      XENTRY_JIT_HANDLERS(XENTRY_JIT_LABEL_ENTRY)
#undef XENTRY_JIT_LABEL_ENTRY
  };
  static_assert(sizeof(labels) / sizeof(labels[0]) == jit::kNumHandlers);

  StepInfo info;
  const jit::OpEntry* ip = ops;
  Addr taddr = 0;
  Addr cur = 0;
  Trap tr;

  // Two-entry software TLB: flat {base, read size, write size, data}
  // views of the last-hit regions, held in locals so a hit is one
  // compare plus one load — the region-vector walk inside Memory is a
  // dependent-load chain that would otherwise dominate every memory op
  // now that dispatch is cheap.  Entry 0 is the most recent; refills
  // rotate 0 into 1.  A read-install leaves the write size 0, so the
  // first write through that region re-installs it and bumps the
  // region's mutation generation exactly once before any raw store
  // (Memory::DirectSpan documents why that preserves the generation
  // contract).  Two entries cover the stack/data alternation of handler
  // code; shadow-stack mirror accesses go through Memory's own hinted
  // path instead so they do not thrash the pair.
  Addr t0b = 0, t0s = 0, t0ws = 0;
  Addr t1b = 0, t1s = 0, t1ws = 0;
  Word* t0d = nullptr;
  Word* t1d = nullptr;

  if (max_steps == 0) {
    // The reference engine watchdogs before fetching anything.
    info.status = StepInfo::Status::Trapped;
    info.trap = Trap{TrapKind::Watchdog, regs[kRip], 0};
    info.rip_before = regs[kRip];
    return info;
  }
  taddr = regs[kRip];
  goto enter_far;

// Advance to the next slot of the current superblock.  The retire itself
// is free: it is pre-aggregated in the next ops' prefixes.
#define XJ_CUR() (base + static_cast<Addr>(ip - ops))
#define XJ_NEXT()                            \
  do {                                       \
    if constexpr (Trace) {                   \
      trace->push_back(XJ_CUR());            \
    }                                        \
    ++ip;                                    \
    goto* labels[ip->handler];               \
  } while (0)

// Account a taken control transfer: the branch retires here (its own
// class counts included), closing out the superblock prefix.
#define XJ_RETIRE_BRANCH()                   \
  do {                                       \
    if constexpr (Trace) {                   \
      trace->push_back(XJ_CUR());            \
    }                                        \
    executed += ip->pre_retired + 1;         \
    branches += ip->pre_branches + 1;        \
    loads += ip->pre_loads;                  \
    stores += ip->pre_stores;                \
  } while (0)

#define XJ_ALU(name, expr)                   \
  h_##name : {                               \
    const Word res = (expr);                 \
    set_res(res);                            \
    regs[ip->r1] = res;                      \
  }                                          \
  XJ_NEXT()

// Superblock entry, replicated at every transfer site so each transfer
// op owns a private indirect-branch slot (a single shared entry dispatch
// would fold every branch/call/ret target into one predictor entry and
// mispredict constantly).  One budget check covers the whole superblock;
// the entry op's prefixes are subtracted so the accumulators read true
// totals at the next exit.
#define XJ_ENTER()                                                        \
  do {                                                                    \
    if (max_steps - static_cast<std::uint64_t>(executed) <                \
        ip->sb_remaining) {                                               \
      goto deopt;                                                         \
    }                                                                     \
    executed -= ip->pre_retired;                                          \
    branches -= ip->pre_branches;                                         \
    loads -= ip->pre_loads;                                               \
    stores -= ip->pre_stores;                                             \
    goto* labels[ip->handler];                                            \
  } while (0)

#define XJ_JCC(name, cond)                   \
  h_##name:                                  \
  if (cond) {                                \
    XJ_RETIRE_BRANCH();                      \
    if (ip->target != jit::kNoTarget) {      \
      ip = ops + ip->target;                 \
      XJ_ENTER();                            \
    }                                        \
    taddr = static_cast<Addr>(ip->imm);      \
    goto exit_oor;                           \
  }                                          \
  XJ_NEXT()

#define XJ_ASSERT(name, fail_cond)                           \
  h_##name:                                                  \
  if (fail_cond) {                                           \
    tr = Trap{TrapKind::AssertFailed, XJ_CUR(), ip->aux};    \
    goto trap_exit;                                          \
  }                                                          \
  XJ_NEXT()

// Reads the word at `a` into `out`.  Sets `tr` only when the address is
// unmapped (`tr` is always kind None while the loop runs: every path
// that makes it truthy exits).  The miss path installs the region's
// direct view for next time; mem.read on a genuinely unmapped address
// produces the exact architectural trap.
#define XJ_READ(a, out)                                               \
  do {                                                                \
    const Addr xr_a = (a);                                            \
    Addr xr_o = xr_a - t0b;                                           \
    if (xr_o < t0s) {                                                 \
      out = t0d[xr_o];                                                \
    } else if ((xr_o = xr_a - t1b) < t1s) {                           \
      out = t1d[xr_o];                                                \
    } else {                                                          \
      const Memory::DirectSpan xr_s = mem.direct_span(xr_a);          \
      if (xr_s.size != 0) {                                           \
        t1b = t0b; t1s = t0s; t1ws = t0ws; t1d = t0d;                 \
        t0b = xr_s.base; t0s = xr_s.size; t0ws = 0; t0d = xr_s.data;  \
        out = t0d[xr_a - t0b];                                        \
      } else {                                                        \
        tr = mem.read(xr_a, out);                                     \
      }                                                               \
    }                                                                 \
  } while (0)

// Writes `v` at `a`; sets `tr` when unmapped or read-only.  A write
// install bumps the region generation once, before the first raw store.
#define XJ_WRITE(a, v)                                                \
  do {                                                                \
    const Addr xw_a = (a);                                            \
    const Word xw_v = (v);                                            \
    Addr xw_o = xw_a - t0b;                                           \
    if (xw_o < t0ws) {                                                \
      t0d[xw_o] = xw_v;                                               \
    } else if ((xw_o = xw_a - t1b) < t1ws) {                          \
      t1d[xw_o] = xw_v;                                               \
    } else {                                                          \
      const Memory::DirectSpan xw_s = mem.direct_span(xw_a);          \
      if (xw_s.size != 0 && xw_s.writable) {                          \
        ++*xw_s.gen;                                                  \
        t1b = t0b; t1s = t0s; t1ws = t0ws; t1d = t0d;                 \
        t0b = xw_s.base; t0s = t0ws = xw_s.size; t0d = xw_s.data;     \
        t0d[xw_a - t0b] = xw_v;                                       \
      } else {                                                        \
        tr = mem.write(xw_a, xw_v);                                   \
      }                                                               \
    }                                                                 \
  } while (0)

enter_far:
  // taddr is an absolute transfer target; accumulators hold true totals.
  if (taddr - base < size) {
    ip = ops + (taddr - base);
    XJ_ENTER();
  }
  goto exit_oor;

exit_oor:
  // Control reached an address outside the code image.  The reference
  // engine's loop head watchdogs first when the budget is spent;
  // otherwise the instruction fetch page-faults.  No masks either way.
  regs[kRip] = taddr;
  flush();
  info.status = StepInfo::Status::Trapped;
  info.trap = static_cast<std::uint64_t>(executed) >= max_steps
                  ? Trap{TrapKind::Watchdog, taddr, 0}
                  : Trap{TrapKind::PageFault, taddr, 0};
  info.rip_before = taddr;
  return info;

deopt:
  // Remaining budget below this superblock's worst case: flush exact
  // state and let the interpreter's per-step watchdog walk the tail.
  regs[kRip] = XJ_CUR();
  flush();
  deopted = true;
  deopt_remaining = max_steps - static_cast<std::uint64_t>(executed);
  return info;

watchdog:
  // Budget exhausted at a non-retiring op (Hlt/Ud/off-end would need a
  // step the watchdog no longer grants).
  executed += ip->pre_retired;
  branches += ip->pre_branches;
  loads += ip->pre_loads;
  stores += ip->pre_stores;
  cur = XJ_CUR();
  regs[kRip] = cur;
  flush();
  info.status = StepInfo::Status::Trapped;
  info.trap = Trap{TrapKind::Watchdog, cur, 0};
  info.rip_before = cur;
  return info;

trap_exit:
  // `tr` describes the trap raised by the op at `ip`, which does not
  // retire.  Masks mirror the interpreter exit: computed from the
  // faulting instruction when mask tracking is on.
  executed += ip->pre_retired;
  branches += ip->pre_branches;
  loads += ip->pre_loads;
  stores += ip->pre_stores;
  cur = XJ_CUR();
  regs[kRip] = cur;
  flush();
  info.status = StepInfo::Status::Trapped;
  info.trap = tr;
  info.rip_before = cur;
  if (track_masks_) {
    const Instruction& insn = prog_->at(cur);
    info.read_mask = regs_read(insn);
    info.written_mask = regs_written(insn);
  }
  return info;

h_Nop:
  XJ_NEXT();

h_MovRR:
  regs[ip->r1] = regs[ip->r2];
  XJ_NEXT();

h_MovRI:
  regs[ip->r1] = static_cast<Word>(ip->imm);
  XJ_NEXT();

h_Load: {
  Word v = 0;
  XJ_READ(regs[ip->r2] + static_cast<Word>(ip->imm), v);
  if (tr) goto trap_exit;
  regs[ip->r1] = v;
}
  XJ_NEXT();

h_Store:
  XJ_WRITE(regs[ip->r1] + static_cast<Word>(ip->imm), regs[ip->r2]);
  if (tr) goto trap_exit;
  XJ_NEXT();

h_Push: {
  const Word sp = regs[kRsp] - 1;
  XJ_WRITE(sp, regs[ip->r1]);
  if (tr) {
    tr.kind = TrapKind::StackFault;
    goto trap_exit;
  }
  regs[kRsp] = sp;
  if constexpr (Shadow) {
    // The mirror stores the complement so a stale/never-pushed slot pair
    // (0, 0) cannot masquerade as consistent.  Mirror faults keep their
    // own kind (the interpreter does not coerce them to StackFault).
    tr = mem.write(sp + static_cast<Word>(shadow_offset_), ~regs[ip->r1]);
    if (tr) goto trap_exit;
  }
}
  XJ_NEXT();

h_Pop: {
  Word v = 0;
  XJ_READ(regs[kRsp], v);
  if constexpr (Shadow) {
    if (!tr) {
      Word mirror = 0;
      tr = mem.read(regs[kRsp] + static_cast<Word>(shadow_offset_), mirror);
      if (!tr && mirror != ~v) {
        tr = Trap{TrapKind::StackCheck, regs[kRsp], 0};
      }
    }
  }
  if (tr) {
    if (tr.kind != TrapKind::StackCheck) tr.kind = TrapKind::StackFault;
    goto trap_exit;
  }
  regs[kRsp] += 1;
  regs[ip->r1] = v;
}
  XJ_NEXT();

  XJ_ALU(AddRR, regs[ip->r1] + regs[ip->r2]);
  XJ_ALU(AddRI, regs[ip->r1] + static_cast<Word>(ip->imm));

h_SubRR: {
  const Word a = regs[ip->r1];
  const Word b = regs[ip->r2];
  set_cmp(a, b);
  regs[ip->r1] = a - b;
}
  XJ_NEXT();

h_SubRI: {
  const Word a = regs[ip->r1];
  const Word b = static_cast<Word>(ip->imm);
  set_cmp(a, b);
  regs[ip->r1] = a - b;
}
  XJ_NEXT();

  XJ_ALU(MulRR, regs[ip->r1] * regs[ip->r2]);

h_DivR: {
  const Word d = regs[ip->r1];
  if (d == 0) {
    tr = Trap{TrapKind::DivideError, XJ_CUR(), 0};
    goto trap_exit;
  }
  const Word a = regs[kRax];
  regs[kRax] = a / d;
  regs[kRdx] = a % d;
  set_res(a / d);
}
  XJ_NEXT();

  XJ_ALU(AndRR, regs[ip->r1] & regs[ip->r2]);
  XJ_ALU(AndRI, regs[ip->r1] & static_cast<Word>(ip->imm));
  XJ_ALU(OrRR, regs[ip->r1] | regs[ip->r2]);
  XJ_ALU(OrRI, regs[ip->r1] | static_cast<Word>(ip->imm));
  XJ_ALU(XorRR, regs[ip->r1] ^ regs[ip->r2]);
  XJ_ALU(XorRI, regs[ip->r1] ^ static_cast<Word>(ip->imm));
  XJ_ALU(ShlRI, regs[ip->r1] << (ip->imm & 63));
  XJ_ALU(ShrRI, regs[ip->r1] >> (ip->imm & 63));
  XJ_ALU(ShlRR, regs[ip->r1] << (regs[ip->r2] & 63));
  XJ_ALU(ShrRR, regs[ip->r1] >> (regs[ip->r2] & 63));
  XJ_ALU(Neg, 0 - regs[ip->r1]);
  XJ_ALU(Not, ~regs[ip->r1]);
  XJ_ALU(Inc, regs[ip->r1] + 1);
  XJ_ALU(Dec, regs[ip->r1] - 1);

h_CmpRR:
  set_cmp(regs[ip->r1], regs[ip->r2]);
  XJ_NEXT();

h_CmpRI:
  set_cmp(regs[ip->r1], static_cast<Word>(ip->imm));
  XJ_NEXT();

h_TestRR:
  set_res(regs[ip->r1] & regs[ip->r2]);
  XJ_NEXT();

h_TestRI:
  set_res(regs[ip->r1] & static_cast<Word>(ip->imm));
  XJ_NEXT();

h_Jmp:
  XJ_RETIRE_BRANCH();
  if (ip->target != jit::kNoTarget) {
    ip = ops + ip->target;
    XJ_ENTER();
  }
  taddr = static_cast<Addr>(ip->imm);
  goto exit_oor;

h_JmpR:
  taddr = regs[ip->r1];
  XJ_RETIRE_BRANCH();
  if (taddr - base < size) {
    ip = ops + (taddr - base);
    XJ_ENTER();
  }
  goto exit_oor;

  XJ_JCC(Je, (regs[kRflags] & kFlagZero) != 0);
  XJ_JCC(Jne, (regs[kRflags] & kFlagZero) == 0);
  XJ_JCC(Jl, (regs[kRflags] & kFlagSign) != 0);
  XJ_JCC(Jle, (regs[kRflags] & (kFlagSign | kFlagZero)) != 0);
  XJ_JCC(Jg, (regs[kRflags] & (kFlagSign | kFlagZero)) == 0);
  XJ_JCC(Jge, (regs[kRflags] & kFlagSign) == 0);
  XJ_JCC(Jb, (regs[kRflags] & kFlagCarry) != 0);
  XJ_JCC(Jae, (regs[kRflags] & kFlagCarry) == 0);

h_Call: {
  const Addr ret = XJ_CUR() + 1;
  const Word sp = regs[kRsp] - 1;
  XJ_WRITE(sp, ret);
  if (tr) {
    tr.kind = TrapKind::StackFault;
    goto trap_exit;
  }
  regs[kRsp] = sp;
  if constexpr (Shadow) {
    tr = mem.write(sp + static_cast<Word>(shadow_offset_), ~ret);
    if (tr) goto trap_exit;
  }
  if constexpr (Trace) {
    trace->push_back(ret - 1);
  }
  executed += ip->pre_retired + 1;
  branches += ip->pre_branches + 1;
  loads += ip->pre_loads;
  stores += ip->pre_stores + 1;
  if (ip->target != jit::kNoTarget) {
    ip = ops + ip->target;
    XJ_ENTER();
  }
  taddr = static_cast<Addr>(ip->imm);
  goto exit_oor;
}

h_Ret: {
  Word ra = 0;
  XJ_READ(regs[kRsp], ra);
  if constexpr (Shadow) {
    if (!tr) {
      Word mirror = 0;
      tr = mem.read(regs[kRsp] + static_cast<Word>(shadow_offset_), mirror);
      if (!tr && mirror != ~ra) {
        tr = Trap{TrapKind::StackCheck, regs[kRsp], 0};
      }
    }
  }
  if (tr) {
    if (tr.kind != TrapKind::StackCheck) tr.kind = TrapKind::StackFault;
    goto trap_exit;
  }
  regs[kRsp] += 1;
  if constexpr (Trace) {
    trace->push_back(XJ_CUR());
  }
  executed += ip->pre_retired + 1;
  branches += ip->pre_branches + 1;
  loads += ip->pre_loads + 1;
  stores += ip->pre_stores;
  taddr = ra;
  if (taddr - base < size) {
    ip = ops + (taddr - base);
    XJ_ENTER();
  }
  goto exit_oor;
}

h_Rdtsc:
  // TSC is implicit: base value plus retires so far, exactly what the
  // interpreter's per-step accumulation would read here.
  regs[ip->r1] =
      tsc0 + static_cast<Word>(executed + ip->pre_retired) * kTscPerStep;
  XJ_NEXT();

h_Hlt:
  // hlt is the VM-entry gate; it does not retire as hypervisor work, and
  // the reference engine watchdogs first when the budget is spent.
  if (static_cast<std::uint64_t>(executed + ip->pre_retired) >= max_steps) {
    goto watchdog;
  }
  executed += ip->pre_retired;
  branches += ip->pre_branches;
  loads += ip->pre_loads;
  stores += ip->pre_stores;
  cur = XJ_CUR();
  regs[kRip] = cur;
  flush();
  info.status = StepInfo::Status::Halted;
  info.rip_before = cur;
  if (track_masks_) {
    const Instruction& insn = prog_->at(cur);
    info.read_mask = regs_read(insn);
    info.written_mask = regs_written(insn);
  }
  return info;

  XJ_ASSERT(AssertLeRI, static_cast<std::int64_t>(regs[ip->r1]) > ip->imm);
  XJ_ASSERT(AssertGeRI, static_cast<std::int64_t>(regs[ip->r1]) < ip->imm);
  XJ_ASSERT(AssertEqRI, regs[ip->r1] != static_cast<Word>(ip->imm));
  XJ_ASSERT(AssertNeRI, regs[ip->r1] == static_cast<Word>(ip->imm));
  XJ_ASSERT(AssertEqRR, regs[ip->r1] != regs[ip->r2]);
  XJ_ASSERT(AssertLtRR, regs[ip->r1] >= regs[ip->r2]);

// Macro-fused compare+branch: set flags, retire the compare (trace push
// is its retirement; the count is pre-aggregated in the branch slot's
// prefixes), advance the cursor, and fall straight into the branch
// handler's code — one dispatch for the pair.
#define XJ_FUSE(cname, jname, cmpstmt)               \
  h_Fuse##cname##jname:                              \
  cmpstmt;                                           \
  if constexpr (Trace) {                             \
    trace->push_back(XJ_CUR());                      \
  }                                                  \
  ++ip;                                              \
  goto h_##jname;

#define XJ_FUSE8(cname, cmpstmt)                     \
  XJ_FUSE(cname, Je, cmpstmt)                        \
  XJ_FUSE(cname, Jne, cmpstmt)                       \
  XJ_FUSE(cname, Jl, cmpstmt)                        \
  XJ_FUSE(cname, Jle, cmpstmt)                       \
  XJ_FUSE(cname, Jg, cmpstmt)                        \
  XJ_FUSE(cname, Jge, cmpstmt)                       \
  XJ_FUSE(cname, Jb, cmpstmt)                        \
  XJ_FUSE(cname, Jae, cmpstmt)

  XJ_FUSE8(CmpRR, set_cmp(regs[ip->r1], regs[ip->r2]))
  XJ_FUSE8(CmpRI, set_cmp(regs[ip->r1], static_cast<Word>(ip->imm)))
  XJ_FUSE8(TestRR, set_res(regs[ip->r1] & regs[ip->r2]))
  XJ_FUSE8(TestRI, set_res(regs[ip->r1] & static_cast<Word>(ip->imm)))

h_Ud:
  if (static_cast<std::uint64_t>(executed + ip->pre_retired) >= max_steps) {
    goto watchdog;
  }
  tr = Trap{TrapKind::InvalidOpcode, XJ_CUR(), 0};
  goto trap_exit;

h_OffEnd:
  // Fell through past the last instruction slot: everything before the
  // sentinel retired, then the fetch at base+size faults (or the
  // watchdog fires first — exit_oor orders that check).
  executed += ip->pre_retired;
  branches += ip->pre_branches;
  loads += ip->pre_loads;
  stores += ip->pre_stores;
  taddr = XJ_CUR();
  goto exit_oor;

h_SyncRip:
  // This op reads rip as a data operand: materialize it, then chain to
  // the real handler carried in `target`.
  regs[kRip] = XJ_CUR();
  goto* labels[ip->target];

#undef XJ_CUR
#undef XJ_NEXT
#undef XJ_RETIRE_BRANCH
#undef XJ_ALU
#undef XJ_ENTER
#undef XJ_JCC
#undef XJ_ASSERT
#undef XJ_READ
#undef XJ_WRITE
#undef XJ_FUSE
#undef XJ_FUSE8
}

StepInfo Cpu::run_jit(std::uint64_t max_steps) {
  bool deopted = false;
  std::uint64_t remaining = 0;
  StepInfo info;
  const unsigned key =
      (trace_ != nullptr ? 1u : 0u) | (shadow_enabled_ ? 2u : 0u);
  switch (key) {
    case 0:
      info = run_jit_loop<false, false>(max_steps, deopted, remaining);
      break;
    case 1:
      info = run_jit_loop<true, false>(max_steps, deopted, remaining);
      break;
    case 2:
      info = run_jit_loop<false, true>(max_steps, deopted, remaining);
      break;
    default:
      info = run_jit_loop<true, true>(max_steps, deopted, remaining);
      break;
  }
  if (!deopted) return info;
  // Deopt tail: architectural state is exact; the interpreter finishes
  // the remaining (watchdog-tight) budget with per-step checks.
  return run_interp(remaining);
}

#else  // !defined(__GNUC__)

// Computed goto unavailable: the threaded engine degrades to the fast
// interpreter, which is bit-identical (just slower).
StepInfo Cpu::run_jit(std::uint64_t max_steps) { return run_interp(max_steps); }

#endif

}  // namespace xentry::sim
