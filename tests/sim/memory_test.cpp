#include "sim/memory.hpp"

#include <gtest/gtest.h>

namespace xentry::sim {
namespace {

TEST(MemoryTest, MappedReadWriteRoundTrips) {
  Memory mem;
  mem.map(0x1000, 64, Perm::ReadWrite, "data");
  ASSERT_FALSE(mem.write(0x1000, 42));
  Word v = 0;
  ASSERT_FALSE(mem.read(0x1000, v));
  EXPECT_EQ(v, 42u);
}

TEST(MemoryTest, UnmappedReadFaults) {
  Memory mem;
  mem.map(0x1000, 64, Perm::ReadWrite, "data");
  Word v = 0;
  Trap t = mem.read(0x0fff, v);
  EXPECT_EQ(t.kind, TrapKind::PageFault);
  EXPECT_EQ(t.fault_addr, 0x0fffu);
  t = mem.read(0x1040, v);
  EXPECT_EQ(t.kind, TrapKind::PageFault);
}

TEST(MemoryTest, UnmappedWriteFaults) {
  Memory mem;
  mem.map(0x1000, 64, Perm::ReadWrite, "data");
  EXPECT_EQ(mem.write(0x2000, 1).kind, TrapKind::PageFault);
}

TEST(MemoryTest, ReadOnlyWriteRaisesGeneralProtection) {
  Memory mem;
  mem.map(0x1000, 16, Perm::Read, "rodata");
  EXPECT_EQ(mem.write(0x1005, 9).kind, TrapKind::GeneralProtection);
  Word v = 1;
  EXPECT_FALSE(mem.read(0x1005, v));
  EXPECT_EQ(v, 0u);
}

TEST(MemoryTest, OverlappingMapThrows) {
  Memory mem;
  mem.map(0x1000, 64, Perm::ReadWrite, "a");
  EXPECT_THROW(mem.map(0x103f, 2, Perm::ReadWrite, "b"),
               std::invalid_argument);
  EXPECT_THROW(mem.map(0x0fff, 2, Perm::ReadWrite, "c"),
               std::invalid_argument);
  // Adjacent is fine.
  EXPECT_NO_THROW(mem.map(0x1040, 4, Perm::ReadWrite, "d"));
  EXPECT_NO_THROW(mem.map(0x0ffe, 2, Perm::ReadWrite, "e"));
}

TEST(MemoryTest, EmptyRegionThrows) {
  Memory mem;
  EXPECT_THROW(mem.map(0x1000, 0, Perm::ReadWrite, "z"),
               std::invalid_argument);
}

TEST(MemoryTest, RegionLookupAcrossSeveralRegions) {
  Memory mem;
  mem.map(0x100, 16, Perm::ReadWrite, "lo");
  mem.map(0x10000, 16, Perm::ReadWrite, "mid");
  mem.map(0x8000000000000000ull, 16, Perm::ReadWrite, "hi");
  EXPECT_TRUE(mem.is_mapped(0x100));
  EXPECT_TRUE(mem.is_mapped(0x1000f));
  EXPECT_TRUE(mem.is_mapped(0x800000000000000full));
  EXPECT_FALSE(mem.is_mapped(0x110));
  EXPECT_FALSE(mem.is_mapped(0xffff));
  EXPECT_EQ(mem.region_at(0x10008)->name, "mid");
}

TEST(MemoryTest, SnapshotRestoreRoundTrips) {
  Memory mem;
  mem.map(0x0, 8, Perm::ReadWrite, "a");
  mem.map(0x100, 8, Perm::ReadWrite, "b");
  mem.poke(0x3, 7);
  mem.poke(0x104, 9);
  auto snap = mem.snapshot();
  mem.poke(0x3, 100);
  mem.poke(0x104, 200);
  mem.restore(snap);
  EXPECT_EQ(mem.peek(0x3), 7u);
  EXPECT_EQ(mem.peek(0x104), 9u);
}

TEST(MemoryTest, ClearZeroesEverything) {
  Memory mem;
  mem.map(0x0, 8, Perm::ReadWrite, "a");
  mem.poke(0x1, 5);
  mem.clear();
  EXPECT_EQ(mem.peek(0x1), 0u);
}

TEST(MemoryTest, BitFlippedPointerLandsOutsideRegions) {
  // The property the fault model relies on: flipping a high bit of a valid
  // pointer almost always leaves every mapped region.
  Memory mem;
  mem.map(0x10000, 1024, Perm::ReadWrite, "hv_data");
  const Addr ptr = 0x10010;
  int out_of_range = 0;
  for (int bit = 0; bit < 64; ++bit) {
    if (!mem.is_mapped(ptr ^ (Addr{1} << bit))) ++out_of_range;
  }
  EXPECT_GE(out_of_range, 50);
}

}  // namespace
}  // namespace xentry::sim
