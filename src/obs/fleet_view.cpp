#include "obs/fleet_view.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <sstream>
#include <utility>

#include "obs/atomic_file.hpp"
#include "obs/json.hpp"
#include "obs/snapshot.hpp"

namespace xentry::obs {

namespace {

std::string read_file(const std::string& path) {
  std::string text;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return text;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  return text;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu",
                static_cast<unsigned long long>(v));
  out += buf;
}

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

double median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t mid = values.size() / 2;
  if (values.size() % 2 == 1) return values[mid];
  return 0.5 * (values[mid - 1] + values[mid]);
}

std::vector<bool> flag_stragglers(const std::vector<double>& rates,
                                  double fraction) {
  std::vector<bool> flagged(rates.size(), false);
  if (fraction <= 0.0 || rates.size() < 2) return flagged;
  const double med = median(rates);
  if (!(med > 0.0)) return flagged;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    flagged[i] = rates[i] < fraction * med;
  }
  return flagged;
}

std::string_view worker_lifecycle_name(WorkerLifecycle s) {
  switch (s) {
    case WorkerLifecycle::kStarting: return "starting";
    case WorkerLifecycle::kRunning: return "running";
    case WorkerLifecycle::kRestarting: return "restarting";
    case WorkerLifecycle::kDone: return "done";
    case WorkerLifecycle::kFailed: return "failed";
  }
  return "unknown";
}

FleetView::FleetView(Options opts) : opts_(std::move(opts)) {
  assert(opts_.worker_units.size() ==
         static_cast<std::size_t>(opts_.workers));
  assert(opts_.heartbeat_paths.size() ==
         static_cast<std::size_t>(opts_.workers));
  assert(opts_.sidecar_paths.size() ==
         static_cast<std::size_t>(opts_.workers));
  workers_.resize(static_cast<std::size_t>(opts_.workers));
  prev_heartbeat_.resize(workers_.size());
  prev_sidecar_bytes_.assign(workers_.size(), 0);
  journal_grew_.assign(workers_.size(), false);
}

void FleetView::set_lifecycle(int worker, WorkerLifecycle state, long pid,
                              int restarts) {
  WorkerStatus& w = workers_[static_cast<std::size_t>(worker)];
  w.state = state;
  w.pid = pid;
  w.restarts = restarts;
  // A lifecycle transition is itself a signal: the stall clock restarts
  // when a replacement process is spawned.
  if (state == WorkerLifecycle::kStarting ||
      state == WorkerLifecycle::kRestarting) {
    w.last_signal_sec = -1;
  }
}

void FleetView::note_journal(int worker, std::uint64_t checkpointed_records,
                             std::uint64_t journal_bytes) {
  WorkerStatus& w = workers_[static_cast<std::size_t>(worker)];
  w.checkpointed = std::max(w.checkpointed, checkpointed_records);
  if (journal_bytes > w.journal_bytes) {
    w.journal_bytes = journal_bytes;
    journal_grew_[static_cast<std::size_t>(worker)] = true;
  }
}

void FleetView::poll(double now_sec) {
  merged_ = MetricsRegistry();
  for (std::size_t wi = 0; wi < workers_.size(); ++wi) {
    WorkerStatus& w = workers_[wi];
    bool signal = journal_grew_[wi];
    journal_grew_[wi] = false;

    // Heartbeat: atomically-published JSON, so a successful read is
    // either the previous or the current beat, never a torn mix.  Any
    // byte change (the elapsed field moves every beat) counts as life.
    const std::string hb = read_file(opts_.heartbeat_paths[wi]);
    if (!hb.empty() && hb != prev_heartbeat_[wi]) {
      signal = true;
      prev_heartbeat_[wi] = hb;
    }
    if (!hb.empty()) {
      if (const std::optional<JsonValue> v = parse_json(hb);
          v.has_value() && v->is_object()) {
        w.completed = v->get_uint("completed");
        w.total = v->get_uint("total");
        w.recent_per_sec = v->get_double("recent_per_sec");
        w.sink_lag_bytes = v->get_uint("sink_lag_bytes");
        w.sink_dropped = v->get_uint("sink_dropped");
        w.shard_stragglers = v->get_uint("stragglers");
        w.checkpointed = std::max(w.checkpointed, v->get_uint("checkpointed"));
      }
    }

    // Sidecars: the per-unit snapshot streams.  read_snapshots stops at
    // a torn tail, so tailing a live stream merges the intact prefix.
    std::uint64_t sidecar_bytes = 0;
    for (const std::string& path : opts_.sidecar_paths[wi]) {
      const std::string text = read_file(path);
      sidecar_bytes += text.size();
      if (text.empty()) continue;
      merged_.merge_from(merge_snapshots(read_snapshots(text)));
    }
    if (sidecar_bytes != prev_sidecar_bytes_[wi]) {
      signal = true;
      prev_sidecar_bytes_[wi] = sidecar_bytes;
    }

    if (signal || w.last_signal_sec < 0) w.last_signal_sec = now_sec;
    w.stalled = w.state == WorkerLifecycle::kRunning &&
                opts_.stall_timeout_sec > 0 &&
                now_sec - w.last_signal_sec > opts_.stall_timeout_sec;
  }

  // Worker-level stragglers: rate normalized per owned unit, compared to
  // the median across running workers that still have work left.
  std::vector<double> rates;
  std::vector<std::size_t> candidates;
  for (std::size_t wi = 0; wi < workers_.size(); ++wi) {
    WorkerStatus& w = workers_[wi];
    w.straggler = false;
    if (w.state != WorkerLifecycle::kRunning) continue;
    if (w.total > 0 && w.completed >= w.total) continue;
    const std::size_t units = opts_.worker_units[wi].size();
    candidates.push_back(wi);
    rates.push_back(units > 0 ? w.recent_per_sec / static_cast<double>(units)
                              : w.recent_per_sec);
  }
  const std::vector<bool> lag =
      flag_stragglers(rates, opts_.straggler_fraction);
  for (std::size_t j = 0; j < candidates.size(); ++j) {
    workers_[candidates[j]].straggler = lag[j];
  }
}

std::uint64_t FleetView::completed() const {
  std::uint64_t n = 0;
  for (const WorkerStatus& w : workers_) n += w.completed;
  return n;
}

std::uint64_t FleetView::checkpointed() const {
  std::uint64_t n = 0;
  for (const WorkerStatus& w : workers_) n += w.checkpointed;
  return n;
}

std::uint64_t FleetView::sink_lag_bytes() const {
  std::uint64_t n = 0;
  for (const WorkerStatus& w : workers_) n += w.sink_lag_bytes;
  return n;
}

std::uint64_t FleetView::sink_dropped() const {
  std::uint64_t n = 0;
  for (const WorkerStatus& w : workers_) n += w.sink_dropped;
  return n;
}

int FleetView::stalled_count() const {
  int n = 0;
  for (const WorkerStatus& w : workers_) n += w.stalled ? 1 : 0;
  return n;
}

int FleetView::straggler_count() const {
  int n = 0;
  for (const WorkerStatus& w : workers_) n += w.straggler ? 1 : 0;
  return n;
}

int FleetView::restart_count() const {
  int n = 0;
  for (const WorkerStatus& w : workers_) n += w.restarts;
  return n;
}

double FleetView::rate_per_sec() const {
  double r = 0;
  for (const WorkerStatus& w : workers_) {
    if (w.state == WorkerLifecycle::kRunning) r += w.recent_per_sec;
  }
  return r;
}

double FleetView::eta_sec() const {
  const double rate = rate_per_sec();
  const std::uint64_t done = completed();
  if (rate <= 0 || done >= opts_.total_injections) return 0;
  return static_cast<double>(opts_.total_injections - done) / rate;
}

std::string FleetView::status_json(std::string_view state) const {
  std::string out = "{\"schema\":\"xentry.fleet.status.v1\",\"state\":\"";
  out += state;
  out += "\",\"fleet\":{\"seed\":";
  append_u64(out, opts_.seed);
  out += ",\"injections\":";
  append_u64(out, opts_.total_injections);
  out += ",\"units\":";
  append_u64(out, static_cast<std::uint64_t>(opts_.unit_count));
  out += ",\"workers\":";
  append_u64(out, static_cast<std::uint64_t>(opts_.workers));
  out += "},\"progress\":{\"completed\":";
  append_u64(out, completed());
  out += ",\"total\":";
  append_u64(out, opts_.total_injections);
  out += ",\"checkpointed\":";
  append_u64(out, checkpointed());
  out += ",\"rate_per_sec\":";
  append_double(out, rate_per_sec());
  out += ",\"eta_sec\":";
  append_double(out, eta_sec());
  out += "},\"sink\":{\"lag_bytes\":";
  append_u64(out, sink_lag_bytes());
  out += ",\"dropped\":";
  append_u64(out, sink_dropped());
  out += "},\"health\":{\"stalled\":";
  append_u64(out, static_cast<std::uint64_t>(stalled_count()));
  out += ",\"stragglers\":";
  append_u64(out, static_cast<std::uint64_t>(straggler_count()));
  out += ",\"restarts\":";
  append_u64(out, static_cast<std::uint64_t>(restart_count()));
  out += "},\"workers\":[";
  for (std::size_t wi = 0; wi < workers_.size(); ++wi) {
    const WorkerStatus& w = workers_[wi];
    if (wi != 0) out += ',';
    out += "{\"worker\":";
    append_u64(out, wi);
    out += ",\"state\":\"";
    out += worker_lifecycle_name(w.state);
    out += "\",\"pid\":";
    append_u64(out, w.pid > 0 ? static_cast<std::uint64_t>(w.pid) : 0);
    out += ",\"restarts\":";
    append_u64(out, static_cast<std::uint64_t>(w.restarts));
    out += ",\"units\":[";
    const std::vector<int>& units = opts_.worker_units[wi];
    for (std::size_t k = 0; k < units.size(); ++k) {
      if (k != 0) out += ',';
      append_u64(out, static_cast<std::uint64_t>(units[k]));
    }
    out += "],\"completed\":";
    append_u64(out, w.completed);
    out += ",\"total\":";
    append_u64(out, w.total);
    out += ",\"recent_per_sec\":";
    append_double(out, w.recent_per_sec);
    out += ",\"checkpointed\":";
    append_u64(out, w.checkpointed);
    out += ",\"sink_lag_bytes\":";
    append_u64(out, w.sink_lag_bytes);
    out += ",\"sink_dropped\":";
    append_u64(out, w.sink_dropped);
    out += ",\"stalled\":";
    out += w.stalled ? "true" : "false";
    out += ",\"straggler\":";
    out += w.straggler ? "true" : "false";
    out += '}';
  }
  out += "],\"metrics\":";
  std::ostringstream metrics;
  merged_.write_json(metrics);
  out += metrics.str();
  out += '}';
  return out;
}

bool FleetView::write_status(const std::string& path,
                             std::string_view state) const {
  std::string doc = status_json(state);
  doc += '\n';
  return write_file_atomic(path, doc);
}

std::string FleetView::dashboard_line() const {
  int up = 0;
  for (const WorkerStatus& w : workers_) {
    if (w.state == WorkerLifecycle::kRunning) ++up;
  }
  const std::uint64_t done = completed();
  const double pct =
      opts_.total_injections > 0
          ? 100.0 * static_cast<double>(done) /
                static_cast<double>(opts_.total_injections)
          : 0.0;
  char buf[256];
  std::snprintf(
      buf, sizeof buf,
      "fleet %d/%d up | %llu/%llu (%.1f%%) | %.0f/s | ckpt %llu | "
      "lag %lluB drops %llu | eta %.0fs | stall %d strag %d restarts %d",
      up, opts_.workers, static_cast<unsigned long long>(done),
      static_cast<unsigned long long>(opts_.total_injections), pct,
      rate_per_sec(), static_cast<unsigned long long>(checkpointed()),
      static_cast<unsigned long long>(sink_lag_bytes()),
      static_cast<unsigned long long>(sink_dropped()), eta_sec(),
      stalled_count(), straggler_count(), restart_count());
  return std::string(buf);
}

}  // namespace xentry::obs
