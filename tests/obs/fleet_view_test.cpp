// The cross-process observability plane, exercised with synthetic files
// and injected clocks: atomic file publication, tailing
// concurrently-growing and torn-tail snapshot sidecars into one merged
// registry, stall detection by signal staleness, straggler flagging
// against the fleet median, and the status.json schema (checked by
// parsing the document with the in-tree JSON parser).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/atomic_file.hpp"
#include "obs/fleet_view.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"

namespace xentry::obs {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void append_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out << text;
}

class FleetViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "fleet_view_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const { return dir_ + "/" + name; }

  /// Heartbeat JSON in the coordinator's wire format.
  static std::string hb_json(int worker, std::uint64_t completed,
                             std::uint64_t total, double rate,
                             std::uint64_t lag = 0, std::uint64_t dropped = 0,
                             std::uint64_t checkpointed = 0,
                             std::uint64_t stragglers = 0,
                             double elapsed = 1.0) {
    std::ostringstream os;
    os << "{\"worker\":" << worker << ",\"completed\":" << completed
       << ",\"total\":" << total << ",\"recent_per_sec\":" << rate
       << ",\"sink_lag_bytes\":" << lag << ",\"sink_dropped\":" << dropped
       << ",\"checkpointed\":" << checkpointed
       << ",\"stragglers\":" << stragglers << ",\"elapsed_sec\":" << elapsed
       << "}\n";
    return os.str();
  }

  /// A two-worker view: worker 0 owns units {0, 2}, worker 1 owns {1, 3}.
  FleetView make_view(double stall_timeout = 30.0,
                      double straggler_fraction = 0.5) {
    FleetView::Options o;
    o.total_injections = 400;
    o.seed = 31;
    o.unit_count = 4;
    o.workers = 2;
    o.worker_units = {{0, 2}, {1, 3}};
    o.heartbeat_paths = {path("hb0.json"), path("hb1.json")};
    o.sidecar_paths = {{path("s0.jsonl"), path("s2.jsonl")},
                       {path("s1.jsonl"), path("s3.jsonl")}};
    o.stall_timeout_sec = stall_timeout;
    o.straggler_fraction = straggler_fraction;
    return FleetView(o);
  }

  std::string dir_;
};

TEST_F(FleetViewTest, WriteFileAtomicPublishesAndOverwrites) {
  const std::string p = path("status.json");
  ASSERT_TRUE(write_file_atomic(p, "first\n"));
  EXPECT_EQ(slurp(p), "first\n");
  ASSERT_TRUE(write_file_atomic(p, "second\n"));
  EXPECT_EQ(slurp(p), "second\n");
  // The temp file never survives a successful publication.
  std::size_t entries = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir_)) {
    (void)e;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
  // Unwritable destination: failure is reported, nothing is left behind.
  EXPECT_FALSE(write_file_atomic(dir_ + "/missing/status.json", "x"));
}

TEST(FleetMedian, MedianOfSortedAndUnsorted) {
  EXPECT_EQ(median({}), 0.0);
  EXPECT_EQ(median({5.0}), 5.0);
  EXPECT_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(FleetStragglers, FlagsBelowFractionOfMedian) {
  const auto flags = flag_stragglers({10.0, 9.0, 2.0, 11.0}, 0.5);
  EXPECT_EQ(flags, (std::vector<bool>{false, false, true, false}));
}

TEST(FleetStragglers, EdgeCasesFlagNothing) {
  // Disabled threshold, a lone worker, and an all-stuck fleet (median 0)
  // produce no straggler flags.
  EXPECT_EQ(flag_stragglers({1.0, 100.0}, 0.0),
            (std::vector<bool>{false, false}));
  EXPECT_EQ(flag_stragglers({1.0}, 0.5), (std::vector<bool>{false}));
  EXPECT_EQ(flag_stragglers({0.0, 0.0, 0.0}, 0.5),
            (std::vector<bool>{false, false, false}));
}

TEST_F(FleetViewTest, MergesGrowingAndTornSidecars) {
  FleetView view = make_view();
  view.set_lifecycle(0, WorkerLifecycle::kRunning, 100, 0);
  view.set_lifecycle(1, WorkerLifecycle::kRunning, 101, 0);

  // Unit 0's sidecar: one full snapshot.
  MetricsRegistry r0;
  r0.counter("fault.injected").inc(10);
  {
    std::ostringstream os;
    SnapshotWriter w(os);
    w.write(r0);
    write_file_atomic(path("s0.jsonl"), os.str());
  }
  view.poll(1.0);
  ASSERT_NE(view.merged_metrics().find_counter("fault.injected"), nullptr);
  EXPECT_EQ(view.merged_metrics().find_counter("fault.injected")->value(),
            10u);

  // Unit 1's sidecar appears later (concurrent growth) with a torn final
  // line — the intact prefix still merges.
  MetricsRegistry r1;
  r1.counter("fault.injected").inc(7);
  {
    std::ostringstream os;
    SnapshotWriter w(os);
    w.write(r1);
    write_file_atomic(path("s1.jsonl"), os.str());
  }
  append_file(path("s1.jsonl"), "{\"seq\":1,\"full\":false,\"coun");
  view.poll(2.0);
  EXPECT_EQ(view.merged_metrics().find_counter("fault.injected")->value(),
            17u);

  // Unit 0's sidecar grows a delta; the merged view follows.
  {
    std::ostringstream os;
    SnapshotWriter w(os);
    w.write(r0);  // re-prime: full snapshot at 10...
    r0.counter("fault.injected").inc(5);
    w.write(r0);  // ...then a delta of +5
    write_file_atomic(path("s0.jsonl"), os.str());
  }
  view.poll(3.0);
  EXPECT_EQ(view.merged_metrics().find_counter("fault.injected")->value(),
            22u);
}

TEST_F(FleetViewTest, AggregatesHeartbeatsIntoFleetTotals) {
  FleetView view = make_view();
  view.set_lifecycle(0, WorkerLifecycle::kRunning, 100, 0);
  view.set_lifecycle(1, WorkerLifecycle::kRunning, 101, 1);
  write_file_atomic(path("hb0.json"), hb_json(0, 120, 200, 50.0, 64, 0, 96));
  write_file_atomic(path("hb1.json"), hb_json(1, 80, 200, 40.0, 32, 3, 64, 1));
  view.note_journal(0, 0, 4096);
  view.note_journal(1, 0, 4096);
  view.poll(1.0);

  EXPECT_EQ(view.completed(), 200u);
  EXPECT_EQ(view.checkpointed(), 160u);
  EXPECT_EQ(view.sink_lag_bytes(), 96u);
  EXPECT_EQ(view.sink_dropped(), 3u);
  EXPECT_EQ(view.restart_count(), 1);
  EXPECT_DOUBLE_EQ(view.rate_per_sec(), 90.0);
  // 400 total - 200 done over 90/s.
  EXPECT_NEAR(view.eta_sec(), 200.0 / 90.0, 1e-9);
  EXPECT_EQ(view.worker(0).completed, 120u);
  EXPECT_EQ(view.worker(1).shard_stragglers, 1u);
  EXPECT_EQ(view.worker(1).sink_dropped, 3u);
  EXPECT_FALSE(view.dashboard_line().empty());
}

TEST_F(FleetViewTest, StatusJsonMatchesSchema) {
  FleetView view = make_view();
  view.set_lifecycle(0, WorkerLifecycle::kRunning, 100, 0);
  view.set_lifecycle(1, WorkerLifecycle::kRunning, 101, 0);
  write_file_atomic(path("hb0.json"), hb_json(0, 120, 200, 50.0));
  write_file_atomic(path("hb1.json"), hb_json(1, 80, 200, 40.0));
  MetricsRegistry reg;
  reg.counter("fault.injected").inc(200);
  reg.histogram("fault.latency_steps").observe(4);
  {
    std::ostringstream os;
    SnapshotWriter w(os);
    w.write(reg);
    write_file_atomic(path("s0.jsonl"), os.str());
  }
  view.poll(1.0);

  const std::string doc = view.status_json("running");
  const std::optional<JsonValue> parsed = parse_json(doc);
  ASSERT_TRUE(parsed.has_value()) << doc;
  EXPECT_EQ(parsed->get_string("schema"), "xentry.fleet.status.v1");
  EXPECT_EQ(parsed->get_string("state"), "running");

  const JsonValue* fleet = parsed->get("fleet");
  ASSERT_NE(fleet, nullptr);
  EXPECT_EQ(fleet->get_uint("seed"), 31u);
  EXPECT_EQ(fleet->get_uint("injections"), 400u);
  EXPECT_EQ(fleet->get_int("units"), 4);
  EXPECT_EQ(fleet->get_int("workers"), 2);

  const JsonValue* progress = parsed->get("progress");
  ASSERT_NE(progress, nullptr);
  EXPECT_EQ(progress->get_uint("completed"), 200u);
  EXPECT_EQ(progress->get_uint("total"), 400u);

  const JsonValue* sink = parsed->get("sink");
  ASSERT_NE(sink, nullptr);
  EXPECT_EQ(sink->get_uint("dropped"), 0u);

  const JsonValue* health = parsed->get("health");
  ASSERT_NE(health, nullptr);
  EXPECT_EQ(health->get_int("stalled"), 0);
  EXPECT_EQ(health->get_int("restarts"), 0);

  const JsonValue* workers = parsed->get("workers");
  ASSERT_NE(workers, nullptr);
  ASSERT_TRUE(workers->is_array());
  ASSERT_EQ(workers->as_array().size(), 2u);
  const JsonValue& w0 = workers->as_array()[0];
  EXPECT_EQ(w0.get_int("worker"), 0);
  EXPECT_EQ(w0.get_string("state"), "running");
  EXPECT_EQ(w0.get_uint("completed"), 120u);
  const JsonValue* units = w0.get("units");
  ASSERT_NE(units, nullptr);
  ASSERT_TRUE(units->is_array());
  EXPECT_EQ(units->as_array().size(), 2u);

  // The merged registry rides along, histogram percentiles included.
  const JsonValue* metrics = parsed->get("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_NE(doc.find("fault.latency_steps"), std::string::npos);
  EXPECT_NE(doc.find("p99"), std::string::npos);

  // write_status publishes the same document plus a trailing newline.
  ASSERT_TRUE(view.write_status(path("status.json"), "running"));
  EXPECT_EQ(slurp(path("status.json")), doc + "\n");
}

TEST_F(FleetViewTest, StallDetectionBySignalStaleness) {
  FleetView view = make_view(/*stall_timeout=*/10.0);
  view.set_lifecycle(0, WorkerLifecycle::kRunning, 100, 0);
  view.set_lifecycle(1, WorkerLifecycle::kRunning, 101, 0);
  write_file_atomic(path("hb0.json"), hb_json(0, 10, 200, 5.0));
  write_file_atomic(path("hb1.json"), hb_json(1, 10, 200, 5.0));
  view.poll(0.0);
  EXPECT_EQ(view.stalled_count(), 0);

  // Worker 1 keeps beating (its elapsed field moves); worker 0 goes dark.
  write_file_atomic(path("hb1.json"), hb_json(1, 30, 200, 5.0, 0, 0, 0, 0,
                                              /*elapsed=*/11.0));
  view.poll(11.0);
  EXPECT_TRUE(view.worker(0).stalled);
  EXPECT_FALSE(view.worker(1).stalled);
  EXPECT_EQ(view.stalled_count(), 1);

  // Journal growth alone counts as a liveness signal.
  view.note_journal(0, 0, 8192);
  view.poll(12.0);
  EXPECT_FALSE(view.worker(0).stalled);

  // A restart resets the stall clock: no instant re-flag on respawn.
  view.set_lifecycle(0, WorkerLifecycle::kRestarting, -1, 1);
  view.set_lifecycle(0, WorkerLifecycle::kRunning, 102, 1);
  view.poll(40.0);
  EXPECT_FALSE(view.worker(0).stalled);
}

TEST_F(FleetViewTest, FlagsWorkerStragglersAgainstFleetMedian) {
  // Worker 1 runs at a tenth of worker 0's per-unit rate.
  FleetView view = make_view(/*stall_timeout=*/30.0,
                             /*straggler_fraction=*/0.5);
  view.set_lifecycle(0, WorkerLifecycle::kRunning, 100, 0);
  view.set_lifecycle(1, WorkerLifecycle::kRunning, 101, 0);
  write_file_atomic(path("hb0.json"), hb_json(0, 100, 200, 100.0));
  write_file_atomic(path("hb1.json"), hb_json(1, 10, 200, 10.0));
  view.poll(1.0);
  EXPECT_FALSE(view.worker(0).straggler);
  EXPECT_TRUE(view.worker(1).straggler);
  EXPECT_EQ(view.straggler_count(), 1);

  // A finished worker is no longer a straggler, however slow it was.
  write_file_atomic(path("hb1.json"), hb_json(1, 200, 200, 0.0));
  view.poll(2.0);
  EXPECT_FALSE(view.worker(1).straggler);
  EXPECT_EQ(view.straggler_count(), 0);
}

}  // namespace
}  // namespace xentry::obs
