# Empty dependencies file for fig8_detection_coverage.
# This may be replaced when dependencies are built.
