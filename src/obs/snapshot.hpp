// Periodic metrics snapshots: the registry's durable sidecar stream.
//
// A campaign shard's MetricsRegistry lives in RAM; if the process dies,
// so do the metrics.  `SnapshotWriter` serializes the registry to an
// append-only JSONL sidecar — a "full" snapshot first, then compact
// deltas — and `merge_snapshots` folds any prefix of that stream back
// into the exact registry state at the last snapshot in the prefix.
// Resume primes the writer with the reconstructed registry so deltas
// never double-count across a kill.
//
// Delta encoding (all integers, so lines are byte-deterministic):
//   - counters: value change since the previous snapshot; omitted when
//     unchanged (but always present in the snapshot where the counter
//     first appears, even at 0, so reconstruction sees every metric).
//   - gauges: absolute value, last-wins on merge; omitted when unchanged.
//   - histograms: per-bucket count deltas plus count/sum deltas and the
//     *cumulative* min/max (min/max only move when observations arrive,
//     so carrying cumulative values keeps the merge exact).
//
// Timing-derived metrics (wall-clock rates, snapshot/restore latency
// histograms) are inherently nondeterministic across runs;
// `strip_timing_metrics` removes them so "identical metrics" comparisons
// are well-defined.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace xentry::obs {

/// One parsed snapshot line.  For `full` snapshots the payloads are
/// absolute values; for deltas they follow the encoding above.
struct MetricsSnapshot {
  std::uint64_t seq = 0;
  bool full = false;

  struct HistogramDelta {
    std::uint64_t buckets[Log2Histogram::kNumBuckets] = {};
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    // Cumulative over the whole run, not the delta window.
    std::uint64_t min = 0;
    std::uint64_t max = 0;
  };

  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramDelta> histograms;
};

/// Streams snapshots of a single registry as JSONL.  Not thread-safe:
/// one writer per shard, same ownership model as the registry itself.
class SnapshotWriter {
 public:
  explicit SnapshotWriter(std::ostream& os) : os_(os) {}

  /// Serializes the registry's state (first call / `force_full`) or its
  /// change since the previous call as one line, and flushes the stream.
  void write(const MetricsRegistry& cur, bool force_full = false);

  /// Resume support: treat `restored` as already-snapshotted state and
  /// continue the sequence at `next_seq`.  The next write() emits only
  /// the change since `restored`.
  void prime(const MetricsRegistry& restored, std::uint64_t next_seq);

  std::uint64_t next_seq() const { return seq_; }

 private:
  std::ostream& os_;
  MetricsRegistry prev_;
  std::uint64_t seq_ = 0;
  bool wrote_any_ = false;
};

/// Parses a snapshot sidecar stream.  Tolerant of a torn final line
/// (a killed process's last write): parsing stops there and returns the
/// intact prefix.
std::vector<MetricsSnapshot> read_snapshots(std::string_view text);

/// Reconstructs the registry state as of the last snapshot in `snaps`.
/// Replay starts at the latest `full` snapshot (earlier entries are
/// superseded), so any prefix of a writer's stream reconstructs exactly
/// the registry that produced its last line.
MetricsRegistry merge_snapshots(const std::vector<MetricsSnapshot>& snaps);

/// True for metrics derived from wall-clock time (rates, latency
/// histograms) that legitimately differ between byte-identical runs.
bool is_timing_metric(std::string_view name);

/// Copy of `reg` without timing metrics — the comparable projection.
MetricsRegistry strip_timing_metrics(const MetricsRegistry& reg);

}  // namespace xentry::obs
