// The Xentry framework facade: "a light-weight software layer between the
// hypervisor and VMs" (paper Section III).
//
// One Xentry instance owns the two detection techniques and drives a
// Machine through the full interception protocol:
//   VM exit  -> intercept, arm performance counters, run the handler
//   (during) -> runtime detection: fatal hardware exceptions + assertions
//   VM entry -> disarm counters, VM transition detection on the features
// The result is an Observation that says whether a soft error was
// detected, by which technique, and at which dynamic instruction.
#pragma once

#include <cstdint>

#include "analysis/artifacts.hpp"
#include "hv/machine.hpp"
#include "obs/metrics.hpp"
#include "obs/options.hpp"
#include "xentry/assertions.hpp"
#include "xentry/exception_parser.hpp"
#include "xentry/features.hpp"
#include "xentry/transition_detector.hpp"

namespace xentry {

/// Which technique produced a detection (paper Fig. 8's legend).
enum class Technique : std::uint8_t {
  None = 0,
  HardwareException,
  SoftwareAssertion,
  VmTransition,
  /// Extension: Section VI's selective stack-value redundancy.
  StackRedundancy,
  /// Extension: control-flow integrity against the statically computed
  /// CFG (legal-edge replay + analyzer-derived range assertions).
  ControlFlow,
  /// Extension: timing-envelope detection — the armed performance
  /// counters at VM entry are checked against the statically computed
  /// per-exit-reason [BCET, WCET] envelope and per-counter envelopes.
  Timing,
};

inline constexpr int kNumTechniques = 7;

std::string_view technique_name(Technique t);

struct XentryConfig {
  /// Hardware-exception parsing + software assertions.  The Machine must
  /// be built with MicrovisorOptions::assertions matching this flag (the
  /// assertions live in hypervisor code).
  bool runtime_detection = true;
  /// VM transition detection at every VM entry (needs a trained model).
  bool transition_detection = true;
  /// Control-flow-integrity detection: replay each run's retired trace
  /// against the statically computed legal-edge sets and check derived
  /// range assertions at the VM-entry gate.  Needs analysis artifacts
  /// via Xentry::set_analysis; off by default — when off, observe() is
  /// bit-identical to a build without the analysis subsystem.
  bool control_flow_detection = false;
  /// Timing-envelope detection: at every VM entry the performance
  /// counters retired by the handler run are checked against the
  /// statically computed per-entry-point envelope (cycle model plus
  /// per-counter clocks).  Needs analysis artifacts via
  /// Xentry::set_analysis; forces counter arming when active; off by
  /// default — when off, observe() is bit-identical to a build without
  /// timing envelopes.
  bool timing_detection = false;
  /// Execution engine for the machines driven under this configuration.
  /// Consumed by the campaign runner, which attaches it (plus the
  /// threaded-code compilation, for EngineKind::Jit) to every machine it
  /// builds; standalone Machine users call Machine::set_execution_engine
  /// directly.  Jit requires analysis artifacts whose signature matches
  /// the machine's program (validate_campaign_config enforces it).
  sim::EngineKind engine = sim::EngineKind::Fast;
  ExceptionParser::Policy exception_policy{};
  /// Observability gates for the framework layer (detections per
  /// technique, handler-length and detection-latency histograms).
  /// Collection additionally needs a registry via Xentry::set_metrics.
  obs::Options obs{};
};

struct Observation {
  hv::RunResult run;
  FeatureVector features;
  bool detected = false;
  Technique technique = Technique::None;
  /// Dynamic instruction index at which detection fired (trap step for
  /// runtime detection, VM entry for transition detection).
  std::uint64_t detection_step = 0;
};

class Xentry {
 public:
  explicit Xentry(const XentryConfig& config = {})
      : cfg_(config), parser_(config.exception_policy) {}

  XentryConfig& config() { return cfg_; }
  const XentryConfig& config() const { return cfg_; }
  TransitionDetector& detector() { return detector_; }
  const TransitionDetector& detector() const { return detector_; }
  AssertionRegistry& assertions() { return registry_; }
  const ExceptionParser& parser() const { return parser_; }

  /// Installs the trained classification model (flattened rules).
  void set_model(ml::RuleSet rules) { detector_.set_model(std::move(rules)); }

  /// Installs static-analysis artifacts for control-flow-integrity
  /// detection (borrowed, must outlive this Xentry; nullptr detaches).
  /// Derived range assertions are registered into the assertion registry
  /// under the reserved id partition so reports can name which derived
  /// invariant a fault violated.
  void set_analysis(const analysis::AnalysisArtifacts* artifacts);

  /// Points framework-level metrics at a registry (shard-local; the
  /// caller owns it and must keep it alive).  Handles are resolved once
  /// here so observe() bumps plain cells — no name lookups on the hot
  /// path.  Only active when config().obs.metrics is also set; nullptr
  /// detaches.
  void set_metrics(obs::MetricsRegistry* registry);

  /// Runs one activation under full Xentry interception and classifies
  /// the outcome.  Counter arming follows the config: transition
  /// detection needs the counters; runtime detection alone does not.
  Observation observe(hv::Machine& machine, const hv::Activation& activation,
                      hv::RunOptions opts = {});

 private:
  void record_detection_metrics(const Observation& obs);
  void check_control_flow(hv::Machine& machine,
                          const hv::Activation& activation,
                          const std::vector<sim::Addr>& trace,
                          bool reached_vm_entry, Observation& obs);
  void check_timing_envelope(hv::Machine& machine,
                             const hv::Activation& activation,
                             Observation& obs);

  /// Pre-resolved metric handles (see set_metrics).  `observations` is
  /// the liveness gate: nullptr means metrics are off.
  struct MetricHandles {
    obs::Counter* observations = nullptr;
    obs::Counter* detections[kNumTechniques] = {};
    obs::Log2Histogram* handler_length = nullptr;
    obs::Log2Histogram* detection_latency = nullptr;
    obs::Counter* cfi_checks = nullptr;
    obs::Counter* cfi_edge_misses = nullptr;
    obs::Counter* cfi_derived_fires = nullptr;
    obs::Counter* timing_checks = nullptr;
    obs::Counter* timing_cycle_misses = nullptr;
    obs::Counter* timing_counter_misses = nullptr;
  };

  bool cfi_active() const {
    return cfg_.control_flow_detection && analysis_ != nullptr;
  }

  bool timing_active() const {
    return cfg_.timing_detection && analysis_ != nullptr &&
           analysis_->timing.valid_count() > 0;
  }

  XentryConfig cfg_;
  ExceptionParser parser_;
  AssertionRegistry registry_;
  TransitionDetector detector_;
  MetricHandles metrics_{};
  const analysis::AnalysisArtifacts* analysis_ = nullptr;
  /// Trace sink observe() attaches when CFI is active and the caller did
  /// not supply one (reused across observations).
  std::vector<sim::Addr> scratch_trace_;
};

}  // namespace xentry
