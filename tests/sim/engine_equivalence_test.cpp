// Differential harness: the mode-specialized fast engine and the
// threaded-code superblock engine (src/sim/jit/) must both be bit-identical
// to the single-step reference engine on every architectural observable —
// final StepInfo, all 18 registers, retired step count, TSC, performance
// counters, recorded trace, and memory contents — across randomly generated
// programs, every trap path, and all eight trace/mask/shadow mode
// combinations.  Also pins down macro-op fusion legality at basic-block
// boundaries and the threaded engine's deopt edges: tight watchdog budgets,
// mid-superblock indirect entry, and out-of-image control transfers.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <stdexcept>
#include <vector>

#include "analysis/cfg.hpp"
#include "analysis/superblocks.hpp"
#include "sim/assembler.hpp"
#include "sim/cpu.hpp"
#include "sim/jit/compiled_program.hpp"
#include "sim/memory.hpp"

namespace xentry::sim {
namespace {

constexpr Addr kCodeBase = 0x400000;
constexpr Addr kDataBase = 0x10000;
constexpr Addr kDataSize = 0x100;
constexpr Addr kStackBase = 0x20000;
constexpr Addr kStackSize = 0x100;
constexpr Addr kStackTop = kStackBase + 0x80;  // room to pop upward too
constexpr std::int64_t kShadowOffset = 0x5000;

Memory make_memory() {
  Memory mem;
  mem.map(kDataBase, kDataSize, Perm::ReadWrite, "data");
  mem.map(0x11000, 0x40, Perm::Read, "rodata");
  mem.map(kStackBase, kStackSize, Perm::ReadWrite, "stack");
  mem.map(kStackBase + static_cast<Addr>(kShadowOffset), kStackSize,
          Perm::ReadWrite, "shadow_stack");
  return mem;
}

/// Every opcode the generator can emit, weighted towards the interesting
/// ones (memory ops, stack ops, compare+branch pairs for fusion).
const Opcode kOpcodePool[] = {
    Opcode::Nop,       Opcode::MovRR,    Opcode::MovRI,    Opcode::Load,
    Opcode::Load,      Opcode::Store,    Opcode::Store,    Opcode::Push,
    Opcode::Push,      Opcode::Pop,      Opcode::Pop,      Opcode::AddRR,
    Opcode::AddRI,     Opcode::SubRR,    Opcode::SubRI,    Opcode::MulRR,
    Opcode::DivR,      Opcode::AndRR,    Opcode::AndRI,    Opcode::OrRR,
    Opcode::OrRI,      Opcode::XorRR,    Opcode::XorRI,    Opcode::ShlRI,
    Opcode::ShrRI,     Opcode::ShlRR,    Opcode::ShrRR,    Opcode::Neg,
    Opcode::Not,       Opcode::Inc,      Opcode::Dec,      Opcode::CmpRR,
    Opcode::CmpRI,     Opcode::CmpRR,    Opcode::CmpRI,    Opcode::TestRR,
    Opcode::TestRI,    Opcode::Jmp,      Opcode::JmpR,     Opcode::Je,
    Opcode::Jne,       Opcode::Jl,       Opcode::Jle,      Opcode::Jg,
    Opcode::Jge,       Opcode::Jb,       Opcode::Jae,      Opcode::Call,
    Opcode::Ret,       Opcode::Rdtsc,    Opcode::Hlt,      Opcode::AssertLeRI,
    Opcode::AssertGeRI, Opcode::AssertEqRI, Opcode::AssertNeRI,
    Opcode::AssertEqRR, Opcode::AssertLtRR, Opcode::Ud,
};

/// A random program over the full ISA.  Immediates for branches/calls land
/// mostly inside the code image (including on and between fusable pairs),
/// occasionally outside it (#PF paths); memory displacements mostly hit the
/// data region.  Assembled through Program's constructor, so fusion
/// metadata is computed exactly as for real workloads.
Program random_program(std::mt19937_64& rng, std::size_t len) {
  std::uniform_int_distribution<std::size_t> pick_op(
      0, std::size(kOpcodePool) - 1);
  std::uniform_int_distribution<int> pick_reg(0, kNumArchRegs - 1);
  std::uniform_int_distribution<std::int64_t> pick_target(
      -2, static_cast<std::int64_t>(len) + 1);
  std::uniform_int_distribution<std::int64_t> pick_disp(-4, kDataSize + 4);
  std::uniform_int_distribution<std::int64_t> pick_imm(-64, 64);
  std::bernoulli_distribution data_addr(0.5);

  std::vector<Instruction> code(len);
  for (Instruction& insn : code) {
    insn.op = kOpcodePool[pick_op(rng)];
    insn.r1 = static_cast<Reg>(pick_reg(rng));
    insn.r2 = static_cast<Reg>(pick_reg(rng));
    insn.aux = static_cast<std::uint32_t>(pick_imm(rng) & 0xff);
    switch (insn.op) {
      case Opcode::Jmp: case Opcode::Je: case Opcode::Jne:
      case Opcode::Jl: case Opcode::Jle: case Opcode::Jg:
      case Opcode::Jge: case Opcode::Jb: case Opcode::Jae:
      case Opcode::Call:
        insn.imm = static_cast<std::int64_t>(kCodeBase) + pick_target(rng);
        break;
      case Opcode::Load:
      case Opcode::Store:
        insn.imm = pick_disp(rng);
        break;
      case Opcode::MovRI:
        // Sometimes a data/code address (indirect-jump material, which
        // also feeds the fusion landing set), sometimes a small scalar.
        insn.imm = data_addr(rng)
                       ? static_cast<std::int64_t>(kCodeBase) + pick_target(rng)
                       : pick_imm(rng);
        break;
      default:
        insn.imm = pick_imm(rng);
        break;
    }
  }
  return Program(kCodeBase, std::move(code), {});
}

struct EngineState {
  StepInfo info;
  std::array<Word, kNumArchRegs> regs;
  std::uint64_t steps = 0;
  Word tsc = 0;
  PerfSnapshot counters;
  std::vector<Addr> trace;
  Memory::Snapshot memory;
};

/// CFG-driven threaded-code compilation, exactly as the campaign front
/// door does it (analysis::compile_threaded minus the cache).
std::shared_ptr<const jit::CompiledProgram> compile_jit(const Program& prog) {
  const analysis::ControlFlowGraph cfg = analysis::build_cfg(prog);
  return jit::compile(prog, analysis::form_superblocks(cfg, prog));
}

EngineState run_engine(
    const Program& prog, std::uint64_t seed, EngineKind kind,
    const std::shared_ptr<const jit::CompiledProgram>& compiled, bool trace,
    bool masks, bool shadow, std::uint64_t max_steps) {
  Memory mem = make_memory();
  Cpu cpu(&prog, &mem);
  cpu.reset(prog.base(), kStackTop);
  cpu.set_tsc(seed & 0xffff);
  if (compiled != nullptr) cpu.set_compiled(compiled);
  cpu.set_engine(kind);

  // Deterministic initial register soup (same for both engines).
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<Word> pick(0, ~Word{0});
  for (int r = 0; r < kNumArchRegs; ++r) {
    const Reg reg = static_cast<Reg>(r);
    if (reg == Reg::rip || reg == Reg::rsp) continue;
    // Mostly small values and valid addresses; raw 64-bit soup sometimes.
    const Word v = pick(rng);
    cpu.set_reg(reg, (v & 3) == 0 ? v
                                  : (v & 1) ? (kDataBase + (v & 0xff))
                                            : (v & 0x3f));
  }

  EngineState st;
  cpu.set_mask_tracking(masks);
  if (trace) cpu.set_trace(&st.trace);
  if (shadow) cpu.enable_shadow_stack(kShadowOffset);
  cpu.counters().arm();

  st.info = cpu.run(max_steps);
  st.regs = cpu.regs();
  st.steps = cpu.steps_executed();
  st.tsc = cpu.tsc();
  st.counters = cpu.counters().disarm();
  st.memory = mem.snapshot();
  return st;
}

void expect_equivalent(const EngineState& a, const EngineState& b,
                       const std::string& what) {
  EXPECT_EQ(a.info.status, b.info.status) << what;
  EXPECT_EQ(a.info.trap.kind, b.info.trap.kind) << what;
  EXPECT_EQ(a.info.trap.fault_addr, b.info.trap.fault_addr) << what;
  EXPECT_EQ(a.info.trap.aux, b.info.trap.aux) << what;
  EXPECT_EQ(a.info.rip_before, b.info.rip_before) << what;
  EXPECT_EQ(a.info.read_mask, b.info.read_mask) << what;
  EXPECT_EQ(a.info.written_mask, b.info.written_mask) << what;
  EXPECT_EQ(a.regs, b.regs) << what;
  EXPECT_EQ(a.steps, b.steps) << what;
  EXPECT_EQ(a.tsc, b.tsc) << what;
  EXPECT_EQ(a.counters, b.counters) << what;
  EXPECT_EQ(a.trace, b.trace) << what;
  EXPECT_TRUE(a.memory == b.memory) << what;
}

TEST(EngineEquivalenceTest, RandomProgramsAllModeCombinations) {
  std::mt19937_64 rng(0x1234abcdu);
  int halted = 0, trapped = 0, watchdogged = 0, fused_programs = 0;
  for (int p = 0; p < 400; ++p) {
    const std::size_t len = 4 + (p % 60);
    const Program prog = random_program(rng, len);
    for (std::size_t off = 0; off + 1 < prog.size(); ++off) {
      if (prog.fused(off).fused) {
        ++fused_programs;
        break;
      }
    }
    const std::uint64_t seed = rng();
    const std::uint64_t max_steps = 1 + (seed % 300);
    const auto compiled = compile_jit(prog);
    for (unsigned mode = 0; mode < 8; ++mode) {
      const bool trace = mode & 1, masks = mode & 2, shadow = mode & 4;
      const std::string what =
          "program " + std::to_string(p) + " mode " + std::to_string(mode);
      const EngineState ref = run_engine(prog, seed, EngineKind::Reference,
                                         nullptr, trace, masks, shadow,
                                         max_steps);
      const EngineState fast = run_engine(prog, seed, EngineKind::Fast,
                                          nullptr, trace, masks, shadow,
                                          max_steps);
      const EngineState threaded = run_engine(prog, seed, EngineKind::Jit,
                                              compiled, trace, masks, shadow,
                                              max_steps);
      expect_equivalent(fast, ref, "fast: " + what);
      expect_equivalent(threaded, ref, "jit: " + what);
      if (mode == 0) {
        if (fast.info.status == StepInfo::Status::Halted) ++halted;
        else if (fast.info.trap.kind == TrapKind::Watchdog) ++watchdogged;
        else ++trapped;
      }
    }
    if (::testing::Test::HasFailure()) break;  // first divergence is enough
  }
  // The generator must actually exercise every exit class and fusion.
  EXPECT_GT(halted, 0);
  EXPECT_GT(trapped, 0);
  EXPECT_GT(watchdogged, 0);
  EXPECT_GT(fused_programs, 100);
}

TEST(EngineEquivalenceTest, FusedPairRetiresAsTwoInstructions) {
  Assembler as(kCodeBase);
  as.movi(Reg::rax, 5);
  const auto out = as.make_label();
  as.cmpi(Reg::rax, 5);  // fusable head
  as.je(out);            // fused tail, taken
  as.movi(Reg::rbx, 1);  // skipped
  as.bind(out);
  as.hlt();
  const Program prog = as.finish();
  ASSERT_TRUE(prog.fused(1).fused);
  EXPECT_EQ(prog.fused(1).jcc, Opcode::Je);

  Memory mem = make_memory();
  Cpu cpu(&prog, &mem);
  cpu.reset(prog.base(), kStackTop);
  std::vector<Addr> trace;
  cpu.set_trace(&trace);
  cpu.counters().arm();
  ASSERT_EQ(cpu.run(100).status, StepInfo::Status::Halted);

  // movi + cmp + je retire; the pair contributes two trace entries, two
  // retired instructions (one branch), and two TSC ticks.
  EXPECT_EQ(cpu.steps_executed(), 3u);
  EXPECT_EQ(cpu.tsc(), 3 * kTscPerStep);
  const PerfSnapshot counters = cpu.counters().disarm();
  EXPECT_EQ(counters.inst_retired, 3u);
  EXPECT_EQ(counters.branches, 1u);
  const std::vector<Addr> want = {kCodeBase, kCodeBase + 1, kCodeBase + 2};
  EXPECT_EQ(trace, want);
  EXPECT_EQ(cpu.reg(Reg::rbx), 0u);  // the not-taken slot was skipped
}

TEST(EngineEquivalenceTest, JumpTargetBetweenPairBlocksFusion) {
  // A branch landing directly on the Jcc slot means control flow can enter
  // between head and tail: the pair must not fuse.
  Assembler as(kCodeBase);
  const auto jcc_slot = as.make_label();
  const auto end = as.make_label();
  as.movi(Reg::rax, 1);
  as.cmpi(Reg::rax, 1);  // head (slot 1)
  as.bind(jcc_slot);
  as.je(end);  // tail (slot 2) — also a landing point
  as.jmp(jcc_slot);
  as.bind(end);
  as.hlt();
  const Program prog = as.finish();
  EXPECT_FALSE(prog.fused(1).fused);
}

TEST(EngineEquivalenceTest, MovRIOfCodeAddressBlocksFusion) {
  // MovRI of a label is indirect-jump material: if the loaded address is
  // the Jcc slot, a JmpR may land between the pair, so fusion is illegal.
  Assembler as(kCodeBase);
  const auto tail = as.make_label();
  const auto end = as.make_label();
  as.movi(Reg::rcx, tail);  // rcx = address of the je below
  as.cmpi(Reg::rax, 0);     // head (slot 1)
  as.bind(tail);
  as.je(end);  // tail (slot 2)
  as.bind(end);
  as.hlt();
  const Program prog = as.finish();
  EXPECT_FALSE(prog.fused(1).fused);
}

TEST(EngineEquivalenceTest, SymbolOnTailBlocksFusion) {
  Assembler as(kCodeBase);
  const auto end = as.make_label();
  as.cmpi(Reg::rax, 0);  // head (slot 0)
  as.global("entry2");   // dispatchable entry right on the tail
  as.je(end);
  as.bind(end);
  as.hlt();
  const Program prog = as.finish();
  EXPECT_FALSE(prog.fused(0).fused);
}

TEST(EngineEquivalenceTest, CallReturnSiteLandsOnHeadNotTail) {
  // A call's return site is the slot right after it.  When that slot is a
  // fusable pair's *head*, control entering there still executes both
  // instructions of the pair — fusion stays legal.  (A return site can
  // never be a pair's tail: that would put the call in the head slot, and
  // a call is not a fusable head.)
  Assembler as(kCodeBase);
  const auto skip = as.make_label();
  as.jmp(skip);
  as.global("leaf");
  as.ret();
  as.bind(skip);
  as.call("leaf");       // slot 2; return site is slot 3
  as.cmpi(Reg::rax, 0);  // slot 3: head, and a landing point
  as.je(skip);           // slot 4: tail, not a landing point
  as.hlt();
  const Program prog = as.finish();
  EXPECT_TRUE(prog.fused(3).fused);
}

TEST(EngineEquivalenceTest, WatchdogBoundarySplitsFusedPair) {
  // max_steps expiring between head and tail: the fast loop must execute
  // the head alone and then watchdog, exactly like the reference engine.
  // test rax,0 sets ZF for any rax, so the loop never exits.
  Assembler as(kCodeBase);
  const auto loop = as.here();
  as.testi(Reg::rax, 0);
  as.je(loop);
  as.hlt();
  const Program prog = as.finish();
  ASSERT_TRUE(prog.fused(0).fused);

  const auto compiled = compile_jit(prog);
  for (std::uint64_t max_steps = 1; max_steps <= 5; ++max_steps) {
    const EngineState ref = run_engine(prog, 42, EngineKind::Reference,
                                       nullptr, true, true, false, max_steps);
    const EngineState fast = run_engine(prog, 42, EngineKind::Fast, nullptr,
                                        true, true, false, max_steps);
    const EngineState threaded = run_engine(prog, 42, EngineKind::Jit,
                                            compiled, true, true, false,
                                            max_steps);
    expect_equivalent(fast, ref, "fast max_steps " + std::to_string(max_steps));
    expect_equivalent(threaded, ref,
                      "jit max_steps " + std::to_string(max_steps));
    EXPECT_EQ(fast.info.trap.kind, TrapKind::Watchdog);
    EXPECT_EQ(fast.steps, max_steps);
  }
}

TEST(EngineEquivalenceTest, JitDeoptsAtEveryTightWatchdogBudget) {
  // A long straight-line superblock ending in a backedge: every budget
  // from 0 (immediate watchdog) up past one full iteration forces the
  // threaded engine's sb_remaining check to deopt to the interpreter at a
  // different interior op.  All budgets must stay bit-identical to the
  // reference engine, including counters and the recorded trace.
  Assembler as(kCodeBase);
  const auto loop = as.here();
  for (int i = 0; i < 12; ++i) as.inc(Reg::rax);
  as.movi(Reg::rbx, kDataBase + 4);
  as.store(Reg::rbx, Reg::rax);
  as.jmp(loop);
  const Program prog = as.finish();
  const auto compiled = compile_jit(prog);

  for (std::uint64_t max_steps = 0; max_steps <= 35; ++max_steps) {
    const EngineState ref = run_engine(prog, 9, EngineKind::Reference,
                                       nullptr, true, true, false, max_steps);
    const EngineState threaded = run_engine(prog, 9, EngineKind::Jit,
                                            compiled, true, true, false,
                                            max_steps);
    expect_equivalent(threaded, ref,
                      "budget " + std::to_string(max_steps));
    EXPECT_EQ(threaded.info.trap.kind, TrapKind::Watchdog);
  }
}

TEST(EngineEquivalenceTest, JitMidSuperblockIndirectEntry) {
  // An indirect jump landing in the *middle* of a superblock exercises
  // the entry-bias accounting: the engine must subtract the landing op's
  // prefixes so only the ops actually executed are retired.
  Assembler as(kCodeBase);
  const auto end = as.make_label();
  as.movi(Reg::rcx, kCodeBase + 6);  // mid-run landing site
  as.jmp_reg(Reg::rcx);
  as.inc(Reg::rax);  // slots 2..8: one straight-line run
  as.inc(Reg::rax);
  as.inc(Reg::rax);
  as.inc(Reg::rax);
  as.inc(Reg::rax);  // slot 6: the landing site
  as.inc(Reg::rax);
  as.inc(Reg::rax);
  as.jmp(end);
  as.bind(end);
  as.hlt();
  const Program prog = as.finish();
  const auto compiled = compile_jit(prog);

  const EngineState ref = run_engine(prog, 5, EngineKind::Reference, nullptr,
                                     true, true, false, 100);
  const EngineState threaded = run_engine(prog, 5, EngineKind::Jit, compiled,
                                          true, true, false, 100);
  expect_equivalent(threaded, ref, "mid-superblock entry");
  EXPECT_EQ(threaded.info.status, StepInfo::Status::Halted);
  // movi, jmp_reg, the three incs from the landing site on, jmp — and
  // nothing before the landing site.
  const std::vector<Addr> want = {kCodeBase,     kCodeBase + 1, kCodeBase + 6,
                                  kCodeBase + 7, kCodeBase + 8, kCodeBase + 9};
  EXPECT_EQ(threaded.trace, want);
  EXPECT_EQ(threaded.counters.inst_retired, 6u);
}

TEST(EngineEquivalenceTest, JitOutOfImageControlTransfers) {
  // Unknown-target edges: a direct branch compiled with kNoTarget, an
  // indirect jump past the image, and one landing exactly on the
  // off-the-end sentinel slot.  Every case must fault like the reference
  // engine (instruction fetch #PF at the target).
  const std::int64_t targets[] = {
      static_cast<std::int64_t>(kCodeBase) + 64,   // far past the image
      static_cast<std::int64_t>(kCodeBase) - 1,    // just before it
      static_cast<std::int64_t>(kCodeBase) + 3,    // one past the last slot
      0,                                           // null
  };
  for (const std::int64_t target : targets) {
    for (const bool indirect : {false, true}) {
      Assembler as(kCodeBase);
      if (indirect) {
        as.movi(Reg::rcx, target);
        as.jmp_reg(Reg::rcx);
        as.hlt();
      } else {
        as.nop();
        as.emit_raw({Opcode::Jmp, Reg::rax, Reg::rax, target, 0});
        as.hlt();
      }
      const Program prog = as.finish();
      const auto compiled = compile_jit(prog);
      const EngineState ref = run_engine(prog, 1, EngineKind::Reference,
                                         nullptr, true, true, false, 100);
      const EngineState threaded = run_engine(prog, 1, EngineKind::Jit,
                                              compiled, true, true, false,
                                              100);
      expect_equivalent(threaded, ref,
                        (indirect ? std::string("jmpr ") : std::string("jmp ")) +
                            std::to_string(target));
      EXPECT_EQ(threaded.info.trap.kind, TrapKind::PageFault);
      EXPECT_EQ(threaded.info.trap.fault_addr, static_cast<Addr>(target));
    }
  }
}

TEST(EngineEquivalenceTest, JitWithoutCompiledProgramFallsBackToFast) {
  Assembler as(kCodeBase);
  as.movi(Reg::rax, 7);
  as.inc(Reg::rax);
  as.hlt();
  const Program prog = as.finish();
  const EngineState ref = run_engine(prog, 3, EngineKind::Reference, nullptr,
                                     true, true, false, 100);
  const EngineState threaded = run_engine(prog, 3, EngineKind::Jit, nullptr,
                                          true, true, false, 100);
  expect_equivalent(threaded, ref, "jit fallback");
  EXPECT_EQ(threaded.info.status, StepInfo::Status::Halted);
}

TEST(EngineEquivalenceTest, StaleCompiledProgramRejected) {
  Assembler as(kCodeBase);
  as.movi(Reg::rax, 1);
  as.hlt();
  const Program prog = as.finish();
  Assembler other_as(kCodeBase);
  other_as.movi(Reg::rax, 2);  // different text, same base and size
  other_as.hlt();
  const Program other = other_as.finish();

  Memory mem = make_memory();
  Cpu cpu(&prog, &mem);
  EXPECT_THROW(cpu.set_compiled(compile_jit(other)), std::invalid_argument);
  EXPECT_NO_THROW(cpu.set_compiled(compile_jit(prog)));
}

TEST(EngineEquivalenceTest, CompileRejectsInvalidTilings) {
  Assembler as(kCodeBase);
  as.inc(Reg::rax);  // 0: falls through
  as.inc(Reg::rax);  // 1: falls through
  as.emit_raw({Opcode::Jmp, Reg::rax, Reg::rax,
               static_cast<std::int64_t>(kCodeBase), 0});  // 2: terminator
  as.hlt();                                                // 3: terminator
  const Program prog = as.finish();

  using jit::Superblock;
  // Valid tiling compiles.
  EXPECT_NO_THROW(jit::compile(prog, {{0, 2}, {3, 3}}));
  // Boundary splits the guaranteed 0->1 fall-through edge.
  EXPECT_THROW(jit::compile(prog, {{0, 0}, {1, 2}, {3, 3}}),
               std::invalid_argument);
  // Superblock continues past the non-fall-through jmp.
  EXPECT_THROW(jit::compile(prog, {{0, 3}}), std::invalid_argument);
  // Gap: slot 3 uncovered.
  EXPECT_THROW(jit::compile(prog, {{0, 2}}), std::invalid_argument);
  // Out of range.
  EXPECT_THROW(jit::compile(prog, {{0, 2}, {3, 4}}), std::invalid_argument);
}

}  // namespace
}  // namespace xentry::sim
