// Append-only record sinks: the durable end of the telemetry pipeline.
//
// Campaign shards stream encoded `InjectionRecord` frames through a
// `RecordSink` instead of accumulating them in RAM.  The obs layer sits
// below fault, so sinks are byte-oriented: a "frame" is an opaque,
// self-delimiting encoded record (a JSONL line including its trailing
// newline, or a length-prefixed binary frame) produced by
// `fault/record_io`.  Each shard owns a private stream — single writer,
// no locks — and shard streams concatenated in shard order reproduce the
// campaign's deterministic in-memory merge order byte for byte.
//
// Buffering contract: appends land in a bounded per-shard buffer; when a
// frame would overflow it, the sink flushes first (a "backpressure
// flush").  `flush()` makes buffered bytes durable and advances
// `offset()`; bytes still in the buffer when a process dies are gone,
// which is exactly the semantics the checkpoint journal accounts for.
// Per-shard counters (appends/flushes/backpressure/drops) are exposed so
// campaigns can mirror them into the metrics registry.
#pragma once

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace xentry::obs {

enum class RecordFormat : std::uint8_t { kJsonl = 0, kBinary = 1 };

/// "jsonl" / "bin" — also the shard-file extension.
std::string_view record_format_name(RecordFormat f);
std::optional<RecordFormat> record_format_from_name(std::string_view name);

struct SinkShardStats {
  std::uint64_t appends = 0;
  std::uint64_t appended_bytes = 0;
  std::uint64_t flushes = 0;
  std::uint64_t flushed_bytes = 0;
  /// Flushes forced by a full buffer (subset of `flushes`).
  std::uint64_t backpressure_flushes = 0;
  /// Frames rejected (capacity cap or failed stream).
  std::uint64_t dropped = 0;
};

class RecordSink {
 public:
  virtual ~RecordSink() = default;

  /// Appends one encoded frame to `shard`'s stream.  Returns false when
  /// the frame was dropped (never for a healthy file sink).
  virtual bool append(std::size_t shard, std::string_view frame) = 0;

  /// Makes `shard`'s buffered bytes durable and advances offset().
  virtual void flush(std::size_t shard) = 0;

  /// Durable (flushed) byte count of `shard`'s stream.
  virtual std::uint64_t offset(std::size_t shard) const = 0;

  /// Bytes appended but not yet durable.
  virtual std::uint64_t buffered_bytes(std::size_t shard) const = 0;

  /// Throws away `shard`'s buffered bytes without writing them — the
  /// unit-test stand-in for SIGKILL (counted in stats().dropped).
  virtual void discard(std::size_t shard) = 0;

  virtual const SinkShardStats& stats(std::size_t shard) const = 0;
  virtual std::size_t shard_count() const = 0;

  void flush_all() {
    for (std::size_t s = 0; s < shard_count(); ++s) flush(s);
  }
};

/// One file per shard: `<base>.shard<N>.<jsonl|bin>`.  A fresh sink
/// truncates; a resume sink truncates each file to the journal's durable
/// offset and appends from there, so replayed frames overwrite nothing
/// and torn tails vanish.
class ShardedFileSink final : public RecordSink {
 public:
  struct Options {
    std::string base_path;
    RecordFormat format = RecordFormat::kJsonl;
    std::size_t shard_count = 1;
    std::size_t buffer_bytes = 64 * 1024;
    /// When non-empty (size == shard_count), resume mode: truncate each
    /// shard file to this offset and append.
    std::vector<std::uint64_t> resume_offsets;
    /// Fleet partition: when non-empty, only these shard indices get a
    /// file opened (and truncated/resumed); the rest stay closed so a
    /// worker process never touches another worker's unit streams.
    /// Appends to an inactive shard drop.  Empty = all shards active.
    std::vector<std::size_t> active_shards;
  };

  static std::string shard_path(std::string_view base, RecordFormat f,
                                std::size_t shard);

  explicit ShardedFileSink(Options opts);
  ~ShardedFileSink() override;

  ShardedFileSink(const ShardedFileSink&) = delete;
  ShardedFileSink& operator=(const ShardedFileSink&) = delete;

  bool append(std::size_t shard, std::string_view frame) override;
  void flush(std::size_t shard) override;
  std::uint64_t offset(std::size_t shard) const override;
  std::uint64_t buffered_bytes(std::size_t shard) const override;
  void discard(std::size_t shard) override;
  const SinkShardStats& stats(std::size_t shard) const override;
  std::size_t shard_count() const override { return shards_.size(); }

  /// False once any active shard hit an I/O failure (open or write).
  bool ok() const;
  const std::string& path(std::size_t shard) const;

 private:
  struct Shard {
    std::string path;
    std::FILE* file = nullptr;
    std::string buffer;
    std::uint64_t offset = 0;
    SinkShardStats stats;
    bool failed = false;
    /// False for shards another process owns (Options::active_shards).
    bool active = true;
  };

  std::size_t buffer_bytes_;
  std::vector<Shard> shards_;
};

/// In-memory sink for tests: same buffering/backpressure behaviour, with
/// an optional per-shard byte cap that forces drops.
class MemoryRecordSink final : public RecordSink {
 public:
  struct Options {
    std::size_t shard_count = 1;
    std::size_t buffer_bytes = 64 * 1024;
    /// 0 = unlimited; otherwise appends past this durable size drop.
    std::uint64_t max_shard_bytes = 0;
  };

  explicit MemoryRecordSink(Options opts);

  bool append(std::size_t shard, std::string_view frame) override;
  void flush(std::size_t shard) override;
  std::uint64_t offset(std::size_t shard) const override;
  std::uint64_t buffered_bytes(std::size_t shard) const override;
  void discard(std::size_t shard) override;
  const SinkShardStats& stats(std::size_t shard) const override;
  std::size_t shard_count() const override { return shards_.size(); }

  /// Durable (flushed) content of one shard's stream.
  const std::string& data(std::size_t shard) const;

 private:
  struct Shard {
    std::string durable;
    std::string buffer;
    SinkShardStats stats;
  };

  Options opts_;
  std::vector<Shard> shards_;
};

}  // namespace xentry::obs
