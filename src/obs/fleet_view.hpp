// Live cross-process observability plane for fleet campaigns.
//
// A fleet coordinator (src/fault/fleet.hpp) spawns worker processes that
// each publish two kinds of files: a heartbeat JSON rewritten atomically
// on a sub-second cadence (obs/atomic_file.hpp) and, per owned work
// unit, the metrics-snapshot sidecar the checkpoint machinery already
// streams.  `FleetView` is the reader side: it tails all of those files
// with the snapshot layer's torn-line tolerance, folds every unit's
// sidecar into one merged MetricsRegistry, computes fleet health
// (stalled workers by signal staleness, stragglers by per-unit
// throughput against the fleet median), and renders the results as an
// atomically-published status.json plus a one-line stderr dashboard.
//
// The view knows nothing about the fault layer: lifecycle transitions
// and checkpoint-journal progress are fed in by the coordinator
// (`set_lifecycle` / `note_journal`), and time is injected through
// `poll(now_sec)` so health logic is testable without real clocks.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace xentry::obs {

/// Median of `values` (by copy; the argument order does not matter).
/// Returns 0 for an empty vector; averages the middle pair for even n.
double median(std::vector<double> values);

/// Flags entries whose rate falls below `fraction` times the median of
/// `rates`.  No entry is flagged when `fraction` <= 0, when fewer than
/// two rates exist (a lone worker has no peers to lag behind), or when
/// the median itself is 0 (everyone equally stuck is a stall, not a
/// straggle).
std::vector<bool> flag_stragglers(const std::vector<double>& rates,
                                  double fraction);

enum class WorkerLifecycle : std::uint8_t {
  kStarting,    ///< spawned, no signal received yet
  kRunning,     ///< process alive
  kRestarting,  ///< exited or was killed; a replacement is being spawned
  kDone,        ///< exited cleanly with all its units complete
  kFailed,      ///< exited nonzero with restarts exhausted
};

std::string_view worker_lifecycle_name(WorkerLifecycle s);

class FleetView {
 public:
  struct Options {
    std::uint64_t total_injections = 0;  ///< fleet-wide campaign size
    std::uint64_t seed = 0;
    int unit_count = 0;
    int workers = 0;
    /// Unit assignment per worker (size == workers).
    std::vector<std::vector<int>> worker_units;
    /// Heartbeat JSON path per worker (size == workers).
    std::vector<std::string> heartbeat_paths;
    /// Metrics sidecar paths per worker, aligned with worker_units
    /// (size == workers; inner size == worker_units[w].size()).
    std::vector<std::vector<std::string>> sidecar_paths;
    /// A running worker with no fresh signal (heartbeat bytes, journal
    /// growth, sidecar growth) for this long is flagged stalled.
    double stall_timeout_sec = 30.0;
    /// Worker straggler threshold, as a fraction of the fleet median
    /// per-unit rate (see flag_stragglers); 0 disables.
    double straggler_fraction = 0.5;
  };

  struct WorkerStatus {
    WorkerLifecycle state = WorkerLifecycle::kStarting;
    long pid = -1;
    int restarts = 0;
    // From the worker's heartbeat file.
    std::uint64_t completed = 0;
    std::uint64_t total = 0;  ///< the worker's own quota
    double recent_per_sec = 0;
    std::uint64_t sink_lag_bytes = 0;
    std::uint64_t sink_dropped = 0;
    std::uint64_t shard_stragglers = 0;  ///< stragglers among its own shards
    // Fed by the coordinator from the worker's checkpoint journal.
    std::uint64_t checkpointed = 0;
    std::uint64_t journal_bytes = 0;
    // Health, recomputed by poll().
    double last_signal_sec = -1;  ///< -1 before the first poll
    bool stalled = false;
    bool straggler = false;
  };

  explicit FleetView(Options opts);

  /// Coordinator input: process lifecycle for one worker.
  void set_lifecycle(int worker, WorkerLifecycle state, long pid,
                     int restarts);

  /// Coordinator input: progress read from the worker's checkpoint
  /// journal.  Growth in `journal_bytes` counts as a liveness signal.
  void note_journal(int worker, std::uint64_t checkpointed_records,
                    std::uint64_t journal_bytes);

  /// Re-reads every worker's heartbeat file and metrics sidecars, then
  /// recomputes stall and straggler flags.  `now_sec` is any monotonic
  /// seconds value (injected for testability); calls must pass
  /// non-decreasing values.
  void poll(double now_sec);

  const WorkerStatus& worker(int w) const {
    return workers_[static_cast<std::size_t>(w)];
  }
  /// All units' sidecar registries merged, as of the last poll().
  const MetricsRegistry& merged_metrics() const { return merged_; }

  std::uint64_t completed() const;
  std::uint64_t checkpointed() const;
  std::uint64_t sink_lag_bytes() const;
  std::uint64_t sink_dropped() const;
  int stalled_count() const;
  int straggler_count() const;
  int restart_count() const;
  /// Sum of worker recent rates (injections/sec).
  double rate_per_sec() const;
  /// Remaining fleet work over the current rate; 0 when unknown or done.
  double eta_sec() const;

  /// The status document (schema "xentry.fleet.status.v1"), one JSON
  /// object: fleet identity, merged progress, sink backpressure, health,
  /// per-worker rows, and the merged metrics registry (with histogram
  /// percentiles).  `state` is the coordinator's phase ("running",
  /// "done", "failed").
  std::string status_json(std::string_view state) const;

  /// Publishes status_json(state) + '\n' to `path` atomically.
  bool write_status(const std::string& path, std::string_view state) const;

  /// One-line fleet dashboard for stderr.
  std::string dashboard_line() const;

 private:
  Options opts_;
  std::vector<WorkerStatus> workers_;
  MetricsRegistry merged_;
  // Per-worker change detection: raw heartbeat bytes and total sidecar
  // bytes from the previous poll, plus journal growth noted in between.
  std::vector<std::string> prev_heartbeat_;
  std::vector<std::uint64_t> prev_sidecar_bytes_;
  std::vector<bool> journal_grew_;
};

}  // namespace xentry::obs
