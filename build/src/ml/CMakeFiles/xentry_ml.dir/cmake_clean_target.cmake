file(REMOVE_RECURSE
  "libxentry_ml.a"
)
