#include "xentry/recovery.hpp"

#include <gtest/gtest.h>

namespace xentry {
namespace {

TEST(RecoveryTest, ExpectedOverheadClosedForm) {
  RecoveryParams p;
  p.copy_ns = 1000;
  p.false_positive_rate = 0.01;
  // 10 activations of 5000 ns in a 1 ms window.
  std::vector<double> acts(10, 5000.0);
  const double o = expected_recovery_overhead(p, acts, 1e6);
  // copies: 10 * 1000 = 10000; fp re-exec: 0.01 * 50000 = 500.
  EXPECT_NEAR(o, (10000.0 + 500.0) / 1e6, 1e-12);
}

TEST(RecoveryTest, MonteCarloBracketsExpectation) {
  RecoveryParams p;  // paper defaults: 1900 ns copy, 0.7% FP
  std::vector<double> acts(5000, 3000.0);
  const double window = 1e9;  // 1 s
  const double expected = expected_recovery_overhead(p, acts, window);
  RecoveryOverhead mc = estimate_recovery_overhead(p, acts, window, 100, 42);
  EXPECT_LE(mc.min, mc.mean);
  EXPECT_LE(mc.mean, mc.max);
  EXPECT_NEAR(mc.mean, expected, expected * 0.2);
}

TEST(RecoveryTest, DeterministicPerSeed) {
  RecoveryParams p;
  std::vector<double> acts(100, 2000.0);
  auto a = estimate_recovery_overhead(p, acts, 1e7, 10, 7);
  auto b = estimate_recovery_overhead(p, acts, 1e7, 10, 7);
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
  EXPECT_DOUBLE_EQ(a.max, b.max);
}

TEST(RecoveryTest, ZeroFalsePositivesLeaveOnlyCopyCost) {
  RecoveryParams p;
  p.false_positive_rate = 0.0;
  std::vector<double> acts(10, 1000.0);
  auto mc = estimate_recovery_overhead(p, acts, 1e6, 5, 1);
  EXPECT_DOUBLE_EQ(mc.min, mc.max);
  EXPECT_DOUBLE_EQ(mc.mean, 10 * p.copy_ns / 1e6);
}

TEST(RecoveryTest, InvalidArgumentsThrow) {
  RecoveryParams p;
  std::vector<double> acts(1, 1.0);
  EXPECT_THROW(estimate_recovery_overhead(p, acts, 1e6, 0, 1),
               std::invalid_argument);
  EXPECT_THROW(estimate_recovery_overhead(p, acts, 0, 10, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace xentry
