// Fault-propagation forensics: the evidence one lockstep replay yields.
//
// When an injection ends in silent data corruption, an app crash, or an
// undetected escape, the campaign re-runs the faulted window with golden
// and faulty machines in bounded-step lockstep (src/fault/lockstep.cpp)
// and records *measured* propagation evidence: where the flipped bit
// first corrupted architectural state beyond the seeded flip, and how the
// corruption set grew over time.  This header is the dependency-free data
// model — the fault layer fills it, the report layer serializes it as
// JSONL, and MetricsRegistry aggregates it.  Class fields are numeric
// (UndetectedClass ordinals, register indices) so obs stays below the
// fault layer in the dependency order.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace xentry::obs {

/// The first architectural divergence beyond the seeded flip: the dynamic
/// instruction whose execution propagated the corruption, and where the
/// new corruption landed.
struct FirstDivergence {
  /// Dynamic instruction index (faulted-run numbering, same scale as
  /// Injection::at_step) of the propagating instruction.
  std::uint64_t step = 0;
  bool in_register = false;
  /// Register index (in_register) or memory word address (!in_register).
  std::uint64_t location = 0;
  int bit = 0;                   ///< lowest corrupted bit at the location
  std::uint64_t xor_mask = 0;    ///< full golden^faulty mask there
};

/// One checkpoint of the corruption frontier during replay.
struct TaintSample {
  /// Boundary step index: instructions executed when the sample was taken
  /// (strictly increasing across a record's samples).
  std::uint64_t step = 0;
  std::uint32_t mem_words = 0;   ///< differing memory words, all regions
  std::uint32_t regs = 0;        ///< differing registers beyond the seed
  std::uint32_t stack_words = 0; ///< subset of mem_words in the stack range
  /// Subset of mem_words in persistent (guest-visible or hv-retained)
  /// structures — what diff_persistent_state would see.
  std::uint32_t persistent_words = 0;
  std::uint32_t time_words = 0;  ///< subset of persistent_words: time values
  /// VM-entry crossing marker: the faulty side had reached the VM-entry
  /// gate by this sample (the corruption survived into guest context).
  bool at_vm_entry = false;
};

/// Everything one replay produced.  Carried on the InjectionRecord as an
/// optional payload, excluded (like the flight-recorder blackbox) from
/// the determinism digest: records stay bit-identical with forensics on
/// or off.
struct ForensicsRecord {
  bool diverged = false;  ///< divergence found; `divergence` is valid
  /// Replay fully converged: the corrupted bit was overwritten before
  /// propagating (possible for undetected-escape qualifiers whose
  /// consequence came from the consumption model, never for AppSdc).
  bool masked = false;
  FirstDivergence divergence;
  /// Exponentially spaced from the divergence, plus one end-state sample.
  std::vector<TaintSample> taint;
  std::uint64_t replay_steps = 0;  ///< reference-engine steps, both sides

  /// Evidence-based escape attribution and the heuristic it cross-checks
  /// (fault::UndetectedClass ordinals; 0 = NotApplicable for detected
  /// records).  The digested record field keeps the heuristic value;
  /// consumers read the attribution through fault::effective_undetected.
  std::uint8_t attributed = 0;
  std::uint8_t heuristic = 0;
  bool heuristic_agrees = true;

  /// One complete JSON object (no trailing newline), numeric fields only;
  /// fault::write_forensics_jsonl wraps it with the record's identity.
  void write_json(std::ostream& os) const;
};

}  // namespace xentry::obs
