// Behavioural tests for the hypercall surface: each handler's observable
// effect on guest-visible and hypervisor state, driven through the public
// Machine API exactly like real activations.
#include <gtest/gtest.h>

#include "hv/machine.hpp"

namespace xentry::hv {
namespace {

namespace L = layout;
using sim::Word;

class HypercallTest : public ::testing::Test {
 protected:
  Activation call(Hypercall h, Word a1 = 0, Word a2 = 0, Word a3 = 0,
                  int vcpu = 1, std::uint64_t seed = 7) {
    Activation act;
    act.reason = ExitReason::hypercall(h);
    act.arg1 = a1;
    act.arg2 = a2;
    act.arg3 = a3;
    act.vcpu = vcpu;
    act.seed = seed;
    return act;
  }

  /// Runs and returns the guest-visible rax (the hypercall return value).
  Word run_rc(const Activation& act) {
    const RunResult res = m.run(act);
    EXPECT_TRUE(res.reached_vm_entry)
        << handler_symbol(act.reason) << ": "
        << sim::trap_name(res.trap.kind);
    const sim::Addr current =
        m.memory().peek(L::kHvDataBase + L::kHvCurrentVcpu);
    return m.memory().peek(current + L::kVcpuSaveGprs);
  }

  Word dom_ram(int dom, std::int64_t off) {
    return m.memory().peek(L::guest_ram_addr(dom) + off);
  }
  Word vcpu_field(int v, std::int64_t off) {
    return m.memory().peek(L::vcpu_addr(v) + off);
  }
  Word dom_field(int d, std::int64_t off) {
    return m.memory().peek(L::domain_addr(d) + off);
  }

  Machine m;
};

TEST_F(HypercallTest, SetTrapTableInstallsValidatedVectors) {
  // prepare_inputs synthesizes (vector, handler) pairs; run and verify a
  // table slot took a guest-range handler address.
  const Activation act = call(Hypercall::set_trap_table, 4);
  EXPECT_EQ(run_rc(act), 0u);
  bool any_in_guest_range = false;
  for (int t = 0; t < kNumGuestExceptions; ++t) {
    const Word h = vcpu_field(1, L::kVcpuTrapTable + t);
    const Word ram = L::guest_ram_addr(1);
    any_in_guest_range |= h >= ram && h < ram + L::kGuestRamStride;
  }
  EXPECT_TRUE(any_in_guest_range);
}

TEST_F(HypercallTest, MmuUpdateWritesWindowAndRejectsBadFrames) {
  EXPECT_EQ(run_rc(call(Hypercall::mmu_update, 8)), 0u);
  // At least one window slot written (values are 24-bit-bounded).
  bool wrote = false;
  for (int i = 0; i < 64; ++i) {
    wrote |= dom_ram(1, L::kGuestMmuWindow + i) != 0;
  }
  EXPECT_TRUE(wrote);
}

TEST_F(HypercallTest, StackSwitchValidatesRange) {
  const Word ram = L::guest_ram_addr(1);
  EXPECT_EQ(run_rc(call(Hypercall::stack_switch, ram + 0x50)), 0u);
  EXPECT_EQ(vcpu_field(1, L::kVcpuSaveRsp), ram + 0x50);
  // Out of range: -EFAULT, and the handler performs no rsp store (the
  // save slot holds whatever the exit stub recorded for this exit).
  EXPECT_EQ(static_cast<std::int64_t>(
                run_rc(call(Hypercall::stack_switch, 0xdead))),
            -14);
  const Word rsp = vcpu_field(1, L::kVcpuSaveRsp);
  EXPECT_GE(rsp, ram + 0xc0);  // the exit stub's synthesized guest rsp
  EXPECT_LT(rsp, ram + 0xe0);
}

TEST_F(HypercallTest, SetCallbacksAndNmiOpAndSegmentBase) {
  const Word ram = L::guest_ram_addr(1);
  run_rc(call(Hypercall::set_callbacks, ram + 0x11));
  EXPECT_EQ(vcpu_field(1, L::kVcpuCallback), ram + 0x11);
  run_rc(call(Hypercall::nmi_op, ram + 0x12));
  EXPECT_EQ(vcpu_field(1, L::kVcpuNmiCallback), ram + 0x12);
  run_rc(call(Hypercall::set_segment_base, ram + 0x13));
  EXPECT_EQ(vcpu_field(1, L::kVcpuSegBase), ram + 0x13);
  run_rc(call(Hypercall::callback_op, ram + 0x14));
  EXPECT_EQ(vcpu_field(1, L::kVcpuCallback), ram + 0x14);
}

TEST_F(HypercallTest, FpuTaskswitchTogglesTsFlag) {
  run_rc(call(Hypercall::fpu_taskswitch, 1));
  EXPECT_TRUE(m.memory().peek(L::shared_info_addr(1) + L::kShArchFlags) & 2);
  run_rc(call(Hypercall::fpu_taskswitch, 0));
  EXPECT_FALSE(m.memory().peek(L::shared_info_addr(1) + L::kShArchFlags) &
               2);
}

TEST_F(HypercallTest, DebugregRoundTrip) {
  EXPECT_EQ(run_rc(call(Hypercall::set_debugreg, 3, 0xabcd)), 0u);
  EXPECT_EQ(run_rc(call(Hypercall::get_debugreg, 3)), 0xabcdu);
}

TEST_F(HypercallTest, UpdateDescriptorValidatesPresentBit) {
  EXPECT_EQ(run_rc(call(Hypercall::update_descriptor, 2, 0x1001)), 0u);
  EXPECT_EQ(vcpu_field(1, L::kVcpuGdt + 2), 0x1001u);
  EXPECT_EQ(static_cast<std::int64_t>(
                run_rc(call(Hypercall::update_descriptor, 2, 0x1000))),
            -22);
  EXPECT_EQ(vcpu_field(1, L::kVcpuGdt + 2), 0x1001u);  // unchanged
}

TEST_F(HypercallTest, MemoryOpAdjustsReservation) {
  const Word before = dom_field(1, L::kDomTotPages);
  EXPECT_EQ(run_rc(call(Hypercall::memory_op, 0, 5)), 5u);  // increase
  EXPECT_EQ(dom_field(1, L::kDomTotPages), before + 5);
  // Frame numbers exposed to the app.
  EXPECT_NE(dom_ram(1, L::kGuestAppPtrs + 0), 0u);
  EXPECT_EQ(run_rc(call(Hypercall::memory_op, 1, 3)), 3u);  // decrease
  EXPECT_EQ(dom_field(1, L::kDomTotPages), before + 2);
}

TEST_F(HypercallTest, MulticallDispatchesThroughTable) {
  // prepare_inputs builds batches over the multicall-safe subset; the
  // return value is the number of calls dispatched.
  EXPECT_EQ(run_rc(call(Hypercall::multicall, 3)), 3u);
}

TEST_F(HypercallTest, UpdateVaMappingWritesTranslation) {
  EXPECT_EQ(run_rc(call(Hypercall::update_va_mapping, 0x21, 0x777)), 0u);
  EXPECT_EQ(dom_ram(1, L::kGuestAppPtrs + 0x21), 0x777u);
  EXPECT_EQ(static_cast<std::int64_t>(
                run_rc(call(Hypercall::update_va_mapping, 0x200, 1))),
            -22);
}

TEST_F(HypercallTest, SetTimerOpFutureAndPast) {
  EXPECT_EQ(run_rc(call(Hypercall::set_timer_op, Word{1} << 52)), 0u);
  EXPECT_EQ(vcpu_field(1, L::kVcpuTimerDeadline), Word{1} << 52);
  // Advance the clock past 1 ns, then set an already-expired deadline:
  // it clears and raises the timer softirq instead.
  Activation tick;
  tick.reason = ExitReason::apic(ApicInterrupt::timer);
  tick.vcpu = 1;
  tick.seed = 3;
  ASSERT_TRUE(m.run(tick).reached_vm_entry);
  ASSERT_GT(m.memory().peek(L::kHvDataBase + L::kHvSystemTime), 1u);
  EXPECT_EQ(run_rc(call(Hypercall::set_timer_op, 1)), 0u);
  EXPECT_EQ(vcpu_field(1, L::kVcpuTimerDeadline), 0u);
}

TEST_F(HypercallTest, XenVersionReturnsPackedVersion) {
  EXPECT_EQ(run_rc(call(Hypercall::xen_version, 0)), (4u << 16) | 1u);
  // cmd 1 also writes the extraversion string.
  run_rc(call(Hypercall::xen_version, 1));
  EXPECT_EQ(dom_ram(1, L::kGuestAppData + 0x10), 0x2e31u);
}

TEST_F(HypercallTest, ConsoleIoCopiesIntoRing) {
  const Word before = m.memory().peek(L::kHvDataBase + L::kHvConsolePtr);
  EXPECT_EQ(run_rc(call(Hypercall::console_io, 6)), 6u);
  EXPECT_EQ(m.memory().peek(L::kHvDataBase + L::kHvConsolePtr), before + 6);
}

TEST_F(HypercallTest, GrantTableOpMapsAndUnmaps) {
  EXPECT_EQ(run_rc(call(Hypercall::grant_table_op, 0, 4)), 4u);  // map
  Word flags = 0;
  for (int i = 0; i < L::kNumGrantEntries; ++i) {
    flags |= dom_field(1, L::kDomGrantTable + i);
  }
  EXPECT_TRUE(flags & 1);
  EXPECT_EQ(run_rc(call(Hypercall::grant_table_op, 1, 4)), 4u);  // unmap
}

TEST_F(HypercallTest, VmAssistSetsAndClearsBits) {
  run_rc(call(Hypercall::vm_assist, 0, 3));  // enable type 3
  EXPECT_TRUE(dom_field(1, L::kDomVmAssist) & (1u << 3));
  run_rc(call(Hypercall::vm_assist, 1, 3));  // disable
  EXPECT_FALSE(dom_field(1, L::kDomVmAssist) & (1u << 3));
}

TEST_F(HypercallTest, OtherdomainMappingNeedsPrivilege) {
  // From a DomU vcpu: -EPERM.
  EXPECT_EQ(static_cast<std::int64_t>(run_rc(
                call(Hypercall::update_va_mapping_otherdomain, 2, 5, 9, 1))),
            -1);
  // From Dom0's vcpu 0: writes into the foreign domain.
  EXPECT_EQ(run_rc(call(Hypercall::update_va_mapping_otherdomain, 2, 5, 9,
                        0)),
            0u);
  EXPECT_EQ(dom_ram(2, L::kGuestAppPtrs + 5), 9u);
}

TEST_F(HypercallTest, IretRestoresGuestFrameAndClearsPending) {
  m.memory().poke(L::vcpu_addr(1) + L::kVcpuPendingEvents, 1);
  const Activation act = call(Hypercall::iret);
  EXPECT_EQ(run_rc(act), 0u);
  EXPECT_EQ(vcpu_field(1, L::kVcpuPendingEvents), 0u);
  // The frame came from guest kernel memory (synthesized by
  // prepare_inputs within the guest's RAM).
  const Word rip = vcpu_field(1, L::kVcpuSaveRip);
  const Word ram = L::guest_ram_addr(1);
  EXPECT_GE(rip, ram);
  EXPECT_LT(rip, ram + L::kGuestRamStride);
}

TEST_F(HypercallTest, VcpuOpUpDownRunstate) {
  EXPECT_EQ(run_rc(call(Hypercall::vcpu_op, 1, 2)), 0u);  // down vcpu 2
  EXPECT_EQ(vcpu_field(2, L::kVcpuState),
            static_cast<Word>(L::kVcpuStateBlocked));
  EXPECT_EQ(run_rc(call(Hypercall::vcpu_op, 0, 2)), 0u);  // up vcpu 2
  EXPECT_EQ(vcpu_field(2, L::kVcpuState),
            static_cast<Word>(L::kVcpuStateRunning));
  // Advance the clock so the runstate snapshot is nonzero, then export.
  Activation tick;
  tick.reason = ExitReason::apic(ApicInterrupt::timer);
  tick.vcpu = 1;
  tick.seed = 3;
  ASSERT_TRUE(m.run(tick).reached_vm_entry);
  EXPECT_EQ(run_rc(call(Hypercall::vcpu_op, 2, 1)), 0u);  // runstate
  // Runstate times exported into the guest's time area.
  EXPECT_NE(dom_ram(1, L::kGuestTimeArea + 4), 0u);  // system time snapshot
}

TEST_F(HypercallTest, MmuextOpPinsPages) {
  EXPECT_EQ(run_rc(call(Hypercall::mmuext_op, 1, 5)), 5u);
  EXPECT_NE(dom_ram(1, L::kGuestPinned), 0u);
  // op 0 flushes the TLB (perfc only) and must not touch the pin mask.
  const Word pins = dom_ram(1, L::kGuestPinned);
  EXPECT_EQ(run_rc(call(Hypercall::mmuext_op, 0, 3)), 3u);
  EXPECT_EQ(dom_ram(1, L::kGuestPinned), pins);
}

TEST_F(HypercallTest, XsmOpEnforcesPolicy) {
  EXPECT_EQ(run_rc(call(Hypercall::xsm_op, 1)), 0u);  // allowed
  EXPECT_EQ(static_cast<std::int64_t>(run_rc(call(Hypercall::xsm_op, 4))),
            -13);  // policy bit 2 denied at boot
}

TEST_F(HypercallTest, SchedOpYieldBlockPoll) {
  EXPECT_EQ(run_rc(call(Hypercall::sched_op, 0)), 0u);  // yield
  EXPECT_EQ(run_rc(call(Hypercall::sched_op, 1, 0, 0, 2)), 0u);  // block
  EXPECT_EQ(vcpu_field(2, L::kVcpuState),
            static_cast<Word>(L::kVcpuStateBlocked));
  // Poll on a pending port returns 1 immediately.
  m.memory().poke(L::shared_info_addr(1) + L::kShEvtchnPending, 1u << 5);
  EXPECT_EQ(run_rc(call(Hypercall::sched_op, 3, 5, 0, 1)), 1u);
}

TEST_F(HypercallTest, SchedOpShutdownCrashesDomain) {
  EXPECT_EQ(run_rc(call(Hypercall::sched_op, 2, 0, 0, 2)), 0u);
  EXPECT_EQ(dom_field(2, L::kDomState), 1u);
}

TEST_F(HypercallTest, EventChannelAllocBindSend) {
  // alloc_unbound finds the first free port (boot leaves 8..15 free).
  EXPECT_EQ(run_rc(call(Hypercall::event_channel_op, 0)), 8u);
  EXPECT_EQ(dom_field(1, L::kDomEvtchnVcpu + 8), 1u);
  // bind port 9 to the current vcpu.
  EXPECT_EQ(run_rc(call(Hypercall::event_channel_op, 2, 9)), 9u);
  EXPECT_EQ(dom_field(1, L::kDomEvtchnVcpu + 9), 1u);
  // send on port 9 sets the pending bit.
  EXPECT_EQ(run_rc(call(Hypercall::event_channel_op, 1, 9)), 0u);
  EXPECT_TRUE(m.memory().peek(L::shared_info_addr(1) + L::kShEvtchnPending) &
              (1u << 9));
}

TEST_F(HypercallTest, PhysdevOpReroutesIrq) {
  EXPECT_EQ(run_rc(call(Hypercall::physdev_op, 6, 2)), 0u);
  // irq 6 now routes to the calling domain (1), port 2.
  EXPECT_EQ(m.memory().peek(L::kHvDataBase + L::kHvIrqTable + 6),
            (1u << 8) | 2u);
}

TEST_F(HypercallTest, HvmOpStoresParam) {
  EXPECT_EQ(run_rc(call(Hypercall::hvm_op, 2, 0x55)), 0u);
  EXPECT_EQ(dom_field(1, L::kDomHvmParams + 2), 0x55u);
}

TEST_F(HypercallTest, SysctlSumsDomainPages) {
  Word expected = 0;
  for (int d = 0; d < m.num_domains(); ++d) {
    expected += dom_field(d, L::kDomTotPages);
  }
  EXPECT_EQ(run_rc(call(Hypercall::sysctl, 0)), expected);
}

TEST_F(HypercallTest, DomctlPrivilegeAndPause) {
  // DomU caller: denied.
  EXPECT_EQ(static_cast<std::int64_t>(
                run_rc(call(Hypercall::domctl, 0, 2, 0, 1))),
            -1);
  // Dom0 pauses domain 2 (its vcpu 2 blocks).
  EXPECT_EQ(run_rc(call(Hypercall::domctl, 0, 2, 0, 0)), 0u);
  EXPECT_EQ(vcpu_field(2, L::kVcpuState),
            static_cast<Word>(L::kVcpuStateBlocked));
  EXPECT_EQ(run_rc(call(Hypercall::domctl, 1, 2, 0, 0)), 0u);  // unpause
  EXPECT_EQ(vcpu_field(2, L::kVcpuState),
            static_cast<Word>(L::kVcpuStateRunning));
  // getinfo packs id<<32 | tot_pages.
  const Word info = run_rc(call(Hypercall::domctl, 2, 2, 0, 0));
  EXPECT_EQ(info >> 32, 2u);
}

TEST_F(HypercallTest, KexecOpValidatesImagePointer) {
  const Word ram = L::guest_ram_addr(1);
  EXPECT_EQ(run_rc(call(Hypercall::kexec_op, ram + 0x30)), 0u);
  EXPECT_EQ(m.memory().peek(L::kHvDataBase + L::kHvKexecImage), ram + 0x30);
  EXPECT_EQ(
      static_cast<std::int64_t>(run_rc(call(Hypercall::kexec_op, 0x1234))),
      -22);
}

TEST_F(HypercallTest, TmemOpHashesDeterministically) {
  const Activation act = call(Hypercall::tmem_op, 16);
  const Word h1 = run_rc(act);
  const Word h2 = run_rc(act);
  EXPECT_EQ(h1, h2);
  EXPECT_NE(h1, 0u);
  // Different request contents (different seed) hash differently.
  Activation other = act;
  other.seed = 8;
  EXPECT_NE(run_rc(other), h1);
}

TEST_F(HypercallTest, PlatformOpSetsWallclock) {
  EXPECT_EQ(run_rc(call(Hypercall::platform_op, 1, 1500000000)), 0u);
  EXPECT_EQ(m.memory().peek(L::kHvDataBase + L::kHvWallclockSec),
            1500000000u);
  // The shared-info wallclock follows via update_time.
  EXPECT_EQ(m.memory().peek(L::shared_info_addr(1) + L::kShWcSec),
            1500000000u);
}

TEST_F(HypercallTest, SchedOpCompatYieldAndBlock) {
  EXPECT_EQ(run_rc(call(Hypercall::sched_op_compat, 0)), 0u);
  EXPECT_EQ(run_rc(call(Hypercall::sched_op_compat, 1, 0, 0, 2)), 0u);
  EXPECT_EQ(vcpu_field(2, L::kVcpuState),
            static_cast<Word>(L::kVcpuStateBlocked));
}

TEST_F(HypercallTest, EventChannelOpCompatDeliversEvent) {
  EXPECT_EQ(run_rc(call(Hypercall::event_channel_op_compat, 4)), 0u);
  EXPECT_TRUE(m.memory().peek(L::shared_info_addr(1) + L::kShEvtchnPending) &
              (1u << 4));
}

}  // namespace
}  // namespace xentry::hv
