#include "ml/rules.hpp"

#include <limits>
#include <sstream>
#include <stdexcept>

namespace xentry::ml {

RuleSet RuleSet::compile(const DecisionTree& tree) {
  if (!tree.trained()) {
    throw std::invalid_argument("RuleSet::compile: untrained tree");
  }
  const auto& nodes = tree.nodes();
  if (nodes.size() > static_cast<std::size_t>(
                         std::numeric_limits<std::int16_t>::max())) {
    throw std::invalid_argument("RuleSet::compile: tree too large");
  }
  RuleSet rs;
  rs.rules_.reserve(nodes.size());
  for (const TreeNode& n : nodes) {
    Rule r;
    if (n.is_leaf()) {
      r.feature = -1;
      r.leaf_label = n.label == Label::Incorrect ? 1 : 0;
    } else {
      r.feature = static_cast<std::int16_t>(n.feature);
      r.threshold = n.threshold;
      r.on_true = static_cast<std::int16_t>(n.left);
      r.on_false = static_cast<std::int16_t>(n.right);
    }
    rs.rules_.push_back(r);
  }
  return rs;
}

Label RuleSet::evaluate(std::span<const std::int64_t> features,
                        int* comparisons) const {
  if (rules_.empty()) {
    throw std::logic_error("RuleSet::evaluate: empty rule set");
  }
  int cmps = 0;
  std::size_t idx = 0;
  while (rules_[idx].feature >= 0) {
    const Rule& r = rules_[idx];
    ++cmps;
    idx = static_cast<std::size_t>(
        features[static_cast<std::size_t>(r.feature)] <= r.threshold
            ? r.on_true
            : r.on_false);
  }
  if (comparisons != nullptr) *comparisons = cmps;
  return rules_[idx].leaf_label != 0 ? Label::Incorrect : Label::Correct;
}

int RuleSet::max_comparisons() const {
  if (rules_.empty()) return 0;
  // Depth-first longest path; the rule graph is a tree, so no visited set.
  int best = 0;
  std::vector<std::pair<std::size_t, int>> stack{{0, 0}};
  while (!stack.empty()) {
    auto [idx, d] = stack.back();
    stack.pop_back();
    const Rule& r = rules_[idx];
    if (r.feature < 0) {
      best = std::max(best, d);
      continue;
    }
    stack.emplace_back(static_cast<std::size_t>(r.on_true), d + 1);
    stack.emplace_back(static_cast<std::size_t>(r.on_false), d + 1);
  }
  return best;
}

std::string RuleSet::serialize() const {
  std::ostringstream os;
  for (const Rule& r : rules_) {
    os << r.feature << ' ' << r.threshold << ' ' << r.on_true << ' '
       << r.on_false << ' ' << static_cast<int>(r.leaf_label) << '\n';
  }
  return os.str();
}

RuleSet RuleSet::deserialize(const std::string& text) {
  RuleSet rs;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    Rule r;
    int feature = 0, on_true = 0, on_false = 0, leaf = 0;
    if (!(ls >> feature >> r.threshold >> on_true >> on_false >> leaf)) {
      throw std::runtime_error("RuleSet::deserialize: malformed rule line");
    }
    r.feature = static_cast<std::int16_t>(feature);
    r.on_true = static_cast<std::int16_t>(on_true);
    r.on_false = static_cast<std::int16_t>(on_false);
    r.leaf_label = static_cast<std::uint8_t>(leaf);
    rs.rules_.push_back(r);
  }
  if (rs.rules_.empty()) {
    throw std::runtime_error("RuleSet::deserialize: no rules");
  }
  return rs;
}

}  // namespace xentry::ml
