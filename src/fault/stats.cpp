#include "fault/stats.hpp"

#include <algorithm>
#include <cmath>

namespace xentry::fault {

CoverageBreakdown coverage_breakdown(
    const std::vector<InjectionRecord>& records) {
  CoverageBreakdown out;
  for (const InjectionRecord& r : records) {
    if (!is_manifested(r.consequence)) continue;
    ++out.manifested;
    if (!r.detected) {
      ++out.undetected;
      continue;
    }
    switch (r.technique) {
      case Technique::HardwareException: ++out.hw_exception; break;
      case Technique::SoftwareAssertion: ++out.sw_assertion; break;
      case Technique::VmTransition: ++out.vm_transition; break;
      case Technique::StackRedundancy: ++out.stack_redundancy; break;
      case Technique::ControlFlow: ++out.control_flow; break;
      case Technique::Timing: ++out.timing; break;
      case Technique::None: ++out.undetected; break;
    }
  }
  return out;
}

std::vector<LongLatencyRow> long_latency_breakdown(
    const std::vector<InjectionRecord>& records) {
  // Fig. 9's column order: APP SDC, APP crash, all-VM, one-VM.
  const std::array<Consequence, 4> order = {
      Consequence::AppSdc, Consequence::AppCrash, Consequence::AllVmFailure,
      Consequence::OneVmFailure};
  std::vector<LongLatencyRow> rows;
  for (Consequence c : order) {
    LongLatencyRow row;
    row.consequence = c;
    for (const InjectionRecord& r : records) {
      if (r.consequence != c) continue;
      ++row.total;
      row.detected += r.detected ? 1 : 0;
    }
    rows.push_back(row);
  }
  return rows;
}

std::map<Technique, std::vector<std::uint64_t>> latency_by_technique(
    const std::vector<InjectionRecord>& records) {
  std::map<Technique, std::vector<std::uint64_t>> out;
  for (const InjectionRecord& r : records) {
    if (!r.detected || !r.activated) continue;
    out[r.technique].push_back(r.latency);
  }
  return out;
}

std::vector<double> latency_cdf(std::vector<std::uint64_t> latencies,
                                const std::vector<std::uint64_t>& points) {
  std::sort(latencies.begin(), latencies.end());
  std::vector<double> cdf;
  cdf.reserve(points.size());
  for (std::uint64_t p : points) {
    const auto it =
        std::upper_bound(latencies.begin(), latencies.end(), p);
    cdf.push_back(latencies.empty()
                      ? 0.0
                      : static_cast<double>(it - latencies.begin()) /
                            static_cast<double>(latencies.size()));
  }
  return cdf;
}

std::uint64_t latency_percentile(std::vector<std::uint64_t> latencies,
                                 double pct) {
  if (latencies.empty()) return 0;
  std::sort(latencies.begin(), latencies.end());
  const double rank = pct / 100.0 * static_cast<double>(latencies.size() - 1);
  const auto idx = static_cast<std::size_t>(std::llround(rank));
  return latencies[std::min(idx, latencies.size() - 1)];
}

UndetectedBreakdown undetected_breakdown(
    const std::vector<InjectionRecord>& records) {
  UndetectedBreakdown out;
  for (const InjectionRecord& r : records) {
    if (!is_manifested(r.consequence) || r.detected) continue;
    ++out.total;
    // Evidence-based class when the forensics replay ran, heuristic
    // otherwise (they're the same field without forensics).
    switch (effective_undetected(r)) {
      case UndetectedClass::MisClassified: ++out.mis_classified; break;
      case UndetectedClass::StackValues: ++out.stack_values; break;
      case UndetectedClass::TimeValues: ++out.time_values; break;
      case UndetectedClass::OtherValues: ++out.other_values; break;
      case UndetectedClass::NotApplicable: break;  // hypervisor crash/hang
    }
  }
  return out;
}

std::map<Consequence, std::size_t> consequence_histogram(
    const std::vector<InjectionRecord>& records) {
  std::map<Consequence, std::size_t> out;
  for (const InjectionRecord& r : records) ++out[r.consequence];
  return out;
}

WeightedRates weighted_rates(const std::vector<InjectionRecord>& records) {
  WeightedRates out;
  for (const InjectionRecord& r : records) {
    out.mass[static_cast<std::size_t>(r.consequence)] += r.weight;
    out.mass[static_cast<std::size_t>(Consequence::Masked)] +=
        r.masked_weight;
    out.total_mass += r.weight + r.masked_weight;
    if (r.detected) out.detected_mass += r.weight;
    if (is_manifested(r.consequence)) out.manifested_mass += r.weight;
    out.effective_injections += r.weight > 0.0 ? 1.0 / r.weight : 1.0;
  }
  return out;
}

}  // namespace xentry::fault
