#include "sim/isa.hpp"

#include <sstream>

namespace xentry::sim {

std::string_view opcode_name(Opcode op) {
  switch (op) {
    case Opcode::Nop: return "nop";
    case Opcode::MovRR: return "mov";
    case Opcode::MovRI: return "mov";
    case Opcode::Load: return "load";
    case Opcode::Store: return "store";
    case Opcode::Push: return "push";
    case Opcode::Pop: return "pop";
    case Opcode::AddRR: case Opcode::AddRI: return "add";
    case Opcode::SubRR: case Opcode::SubRI: return "sub";
    case Opcode::MulRR: return "mul";
    case Opcode::DivR: return "div";
    case Opcode::AndRR: case Opcode::AndRI: return "and";
    case Opcode::OrRR: case Opcode::OrRI: return "or";
    case Opcode::XorRR: case Opcode::XorRI: return "xor";
    case Opcode::ShlRI: case Opcode::ShlRR: return "shl";
    case Opcode::ShrRI: case Opcode::ShrRR: return "shr";
    case Opcode::Neg: return "neg";
    case Opcode::Not: return "not";
    case Opcode::Inc: return "inc";
    case Opcode::Dec: return "dec";
    case Opcode::CmpRR: case Opcode::CmpRI: return "cmp";
    case Opcode::TestRR: case Opcode::TestRI: return "test";
    case Opcode::Jmp: return "jmp";
    case Opcode::JmpR: return "jmp*";
    case Opcode::Je: return "je";
    case Opcode::Jne: return "jne";
    case Opcode::Jl: return "jl";
    case Opcode::Jle: return "jle";
    case Opcode::Jg: return "jg";
    case Opcode::Jge: return "jge";
    case Opcode::Jb: return "jb";
    case Opcode::Jae: return "jae";
    case Opcode::Call: return "call";
    case Opcode::Ret: return "ret";
    case Opcode::Rdtsc: return "rdtsc";
    case Opcode::Hlt: return "hlt";
    case Opcode::AssertLeRI: return "assert_le";
    case Opcode::AssertGeRI: return "assert_ge";
    case Opcode::AssertEqRI: return "assert_eq";
    case Opcode::AssertNeRI: return "assert_ne";
    case Opcode::AssertEqRR: return "assert_eq";
    case Opcode::AssertLtRR: return "assert_lt";
    case Opcode::Ud: return "ud2";
  }
  return "?";
}

namespace {

enum class Form { None, R, RR, RI, RRI, I, RIAux };

Form form_of(Opcode op) {
  switch (op) {
    case Opcode::Nop: case Opcode::Hlt: case Opcode::Ud: case Opcode::Ret:
      return Form::None;
    case Opcode::MovRR: case Opcode::AddRR: case Opcode::SubRR:
    case Opcode::MulRR: case Opcode::AndRR: case Opcode::OrRR:
    case Opcode::XorRR: case Opcode::CmpRR: case Opcode::TestRR:
    case Opcode::ShlRR: case Opcode::ShrRR:
    case Opcode::AssertEqRR: case Opcode::AssertLtRR:
      return Form::RR;
    case Opcode::MovRI: case Opcode::AddRI: case Opcode::SubRI:
    case Opcode::AndRI: case Opcode::OrRI: case Opcode::XorRI:
    case Opcode::ShlRI: case Opcode::ShrRI: case Opcode::CmpRI:
    case Opcode::TestRI:
      return Form::RI;
    case Opcode::AssertLeRI: case Opcode::AssertGeRI:
    case Opcode::AssertEqRI: case Opcode::AssertNeRI:
      return Form::RIAux;
    case Opcode::Load: case Opcode::Store:
      return Form::RRI;
    case Opcode::Push: case Opcode::Pop: case Opcode::DivR:
    case Opcode::Neg: case Opcode::Not: case Opcode::Inc: case Opcode::Dec:
    case Opcode::JmpR: case Opcode::Rdtsc:
      return Form::R;
    case Opcode::Jmp: case Opcode::Je: case Opcode::Jne: case Opcode::Jl:
    case Opcode::Jle: case Opcode::Jg: case Opcode::Jge: case Opcode::Jb:
    case Opcode::Jae: case Opcode::Call:
      return Form::I;
  }
  return Form::None;
}

}  // namespace

std::string disassemble(const Instruction& insn) {
  std::ostringstream os;
  os << opcode_name(insn.op);
  switch (form_of(insn.op)) {
    case Form::None:
      break;
    case Form::R:
      os << ' ' << reg_name(insn.r1);
      break;
    case Form::RR:
      os << ' ' << reg_name(insn.r1) << ", " << reg_name(insn.r2);
      break;
    case Form::RI:
      os << ' ' << reg_name(insn.r1) << ", " << insn.imm;
      break;
    case Form::RIAux:
      os << ' ' << reg_name(insn.r1) << ", " << insn.imm << "  ; id="
         << insn.aux;
      break;
    case Form::RRI:
      if (insn.op == Opcode::Load) {
        os << ' ' << reg_name(insn.r1) << ", [" << reg_name(insn.r2);
        if (insn.imm != 0) os << (insn.imm > 0 ? "+" : "") << insn.imm;
        os << ']';
      } else {
        os << " [" << reg_name(insn.r1);
        if (insn.imm != 0) os << (insn.imm > 0 ? "+" : "") << insn.imm;
        os << "], " << reg_name(insn.r2);
      }
      break;
    case Form::I:
      os << " 0x" << std::hex << insn.imm;
      break;
  }
  return os.str();
}

std::uint32_t regs_read(const Instruction& insn) {
  const std::uint32_t rflags_bit = reg_bit(Reg::rflags);
  const std::uint32_t rsp_bit = reg_bit(Reg::rsp);
  switch (insn.op) {
    case Opcode::Nop: case Opcode::Hlt: case Opcode::Ud:
      return 0;
    case Opcode::MovRR:
      return reg_bit(insn.r2);
    case Opcode::MovRI:
      return 0;
    case Opcode::Load:
      return reg_bit(insn.r2);
    case Opcode::Store:
      return reg_bit(insn.r1) | reg_bit(insn.r2);
    case Opcode::Push:
      return reg_bit(insn.r1) | rsp_bit;
    case Opcode::Pop:
      return rsp_bit;
    case Opcode::AddRR: case Opcode::SubRR: case Opcode::MulRR:
    case Opcode::AndRR: case Opcode::OrRR: case Opcode::XorRR:
    case Opcode::ShlRR: case Opcode::ShrRR:
      // xor r, r is an idiom for zeroing: it does not depend on the old
      // value in any meaningful sense, but architecturally it reads both.
      return reg_bit(insn.r1) | reg_bit(insn.r2);
    case Opcode::AddRI: case Opcode::SubRI: case Opcode::AndRI:
    case Opcode::OrRI: case Opcode::XorRI: case Opcode::ShlRI:
    case Opcode::ShrRI: case Opcode::Neg: case Opcode::Not:
    case Opcode::Inc: case Opcode::Dec:
      return reg_bit(insn.r1);
    case Opcode::DivR:
      return reg_bit(insn.r1) | reg_bit(Reg::rax);
    case Opcode::CmpRR: case Opcode::TestRR:
      return reg_bit(insn.r1) | reg_bit(insn.r2);
    case Opcode::CmpRI: case Opcode::TestRI:
      return reg_bit(insn.r1);
    case Opcode::Jmp: case Opcode::Call:
      return insn.op == Opcode::Call ? rsp_bit : 0u;
    case Opcode::JmpR:
      return reg_bit(insn.r1);
    case Opcode::Je: case Opcode::Jne: case Opcode::Jl: case Opcode::Jle:
    case Opcode::Jg: case Opcode::Jge: case Opcode::Jb: case Opcode::Jae:
      return rflags_bit;
    case Opcode::Ret:
      return rsp_bit;
    case Opcode::Rdtsc:
      return 0;
    case Opcode::AssertLeRI: case Opcode::AssertGeRI:
    case Opcode::AssertEqRI: case Opcode::AssertNeRI:
      return reg_bit(insn.r1);
    case Opcode::AssertEqRR: case Opcode::AssertLtRR:
      return reg_bit(insn.r1) | reg_bit(insn.r2);
  }
  return 0;
}

std::uint32_t regs_written(const Instruction& insn) {
  const std::uint32_t rflags_bit = reg_bit(Reg::rflags);
  const std::uint32_t rsp_bit = reg_bit(Reg::rsp);
  switch (insn.op) {
    case Opcode::Nop: case Opcode::Hlt: case Opcode::Ud:
    case Opcode::Store:
      return 0;
    case Opcode::MovRR: case Opcode::MovRI: case Opcode::Load:
    case Opcode::Rdtsc:
      return reg_bit(insn.r1);
    case Opcode::Push:
      return rsp_bit;
    case Opcode::Pop:
      return reg_bit(insn.r1) | rsp_bit;
    case Opcode::AddRR: case Opcode::AddRI: case Opcode::SubRR:
    case Opcode::SubRI: case Opcode::MulRR: case Opcode::AndRR:
    case Opcode::AndRI: case Opcode::OrRR: case Opcode::OrRI:
    case Opcode::XorRR: case Opcode::XorRI: case Opcode::ShlRI:
    case Opcode::ShrRI: case Opcode::ShlRR: case Opcode::ShrRR:
    case Opcode::Neg: case Opcode::Not:
    case Opcode::Inc: case Opcode::Dec:
      return reg_bit(insn.r1) | rflags_bit;
    case Opcode::DivR:
      return reg_bit(Reg::rax) | reg_bit(Reg::rdx) | rflags_bit;
    case Opcode::CmpRR: case Opcode::CmpRI: case Opcode::TestRR:
    case Opcode::TestRI:
      return rflags_bit;
    case Opcode::Jmp: case Opcode::JmpR: case Opcode::Je: case Opcode::Jne:
    case Opcode::Jl: case Opcode::Jle: case Opcode::Jg: case Opcode::Jge:
    case Opcode::Jb: case Opcode::Jae:
      return 0;  // rip handled separately by the CPU
    case Opcode::Call:
      return rsp_bit;
    case Opcode::Ret:
      return rsp_bit;
    case Opcode::AssertLeRI: case Opcode::AssertGeRI:
    case Opcode::AssertEqRI: case Opcode::AssertNeRI:
    case Opcode::AssertEqRR: case Opcode::AssertLtRR:
      return 0;
  }
  return 0;
}

}  // namespace xentry::sim
