
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xentry/assertions.cpp" "src/xentry/CMakeFiles/xentry_core.dir/assertions.cpp.o" "gcc" "src/xentry/CMakeFiles/xentry_core.dir/assertions.cpp.o.d"
  "/root/repo/src/xentry/cost_model.cpp" "src/xentry/CMakeFiles/xentry_core.dir/cost_model.cpp.o" "gcc" "src/xentry/CMakeFiles/xentry_core.dir/cost_model.cpp.o.d"
  "/root/repo/src/xentry/exception_parser.cpp" "src/xentry/CMakeFiles/xentry_core.dir/exception_parser.cpp.o" "gcc" "src/xentry/CMakeFiles/xentry_core.dir/exception_parser.cpp.o.d"
  "/root/repo/src/xentry/features.cpp" "src/xentry/CMakeFiles/xentry_core.dir/features.cpp.o" "gcc" "src/xentry/CMakeFiles/xentry_core.dir/features.cpp.o.d"
  "/root/repo/src/xentry/framework.cpp" "src/xentry/CMakeFiles/xentry_core.dir/framework.cpp.o" "gcc" "src/xentry/CMakeFiles/xentry_core.dir/framework.cpp.o.d"
  "/root/repo/src/xentry/recovery.cpp" "src/xentry/CMakeFiles/xentry_core.dir/recovery.cpp.o" "gcc" "src/xentry/CMakeFiles/xentry_core.dir/recovery.cpp.o.d"
  "/root/repo/src/xentry/recovery_engine.cpp" "src/xentry/CMakeFiles/xentry_core.dir/recovery_engine.cpp.o" "gcc" "src/xentry/CMakeFiles/xentry_core.dir/recovery_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hv/CMakeFiles/xentry_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/xentry_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/xentry_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
