#include "xentry/assertions.hpp"

#include <stdexcept>

namespace xentry {

AssertionRegistry::AssertionRegistry() {
  for (std::uint32_t id = hv::kAssertTrapVector; id < hv::kAssertMaxId;
       ++id) {
    entries_.emplace(id, hv::assert_name(id));
  }
}

void AssertionRegistry::register_assertion(std::uint32_t id,
                                           std::string description) {
  if (id >= analysis::kDerivedAssertBase) {
    throw std::invalid_argument(
        "AssertionRegistry: id " + std::to_string(id) +
        " is inside the reserved derived-assertion partition");
  }
  if (!entries_.emplace(id, std::move(description)).second) {
    throw std::invalid_argument("AssertionRegistry: duplicate id " +
                                std::to_string(id));
  }
}

void AssertionRegistry::register_derived(
    const analysis::DerivedAssertion& derived) {
  if (derived.id < analysis::kDerivedAssertBase) {
    throw std::invalid_argument(
        "AssertionRegistry: derived assertion id " +
        std::to_string(derived.id) + " below the reserved partition");
  }
  entries_.insert_or_assign(derived.id, derived.description);
}

const std::string& AssertionRegistry::description(std::uint32_t id) const {
  static const std::string unknown = "(unregistered assertion)";
  auto it = entries_.find(id);
  return it == entries_.end() ? unknown : it->second;
}

std::uint64_t AssertionRegistry::fires(std::uint32_t id) const {
  auto it = fires_.find(id);
  return it == fires_.end() ? 0 : it->second;
}

std::uint64_t AssertionRegistry::total_fires() const {
  std::uint64_t total = 0;
  for (const auto& [id, n] : fires_) total += n;
  return total;
}

std::vector<AssertionRegistry::Row> AssertionRegistry::rows() const {
  std::vector<Row> out;
  out.reserve(entries_.size());
  for (const auto& [id, desc] : entries_) {
    out.push_back({id, desc, fires(id)});
  }
  return out;
}

}  // namespace xentry
