file(REMOVE_RECURSE
  "CMakeFiles/test_hv.dir/hv/exception_semantics_test.cpp.o"
  "CMakeFiles/test_hv.dir/hv/exception_semantics_test.cpp.o.d"
  "CMakeFiles/test_hv.dir/hv/hypercall_semantics_test.cpp.o"
  "CMakeFiles/test_hv.dir/hv/hypercall_semantics_test.cpp.o.d"
  "CMakeFiles/test_hv.dir/hv/machine_test.cpp.o"
  "CMakeFiles/test_hv.dir/hv/machine_test.cpp.o.d"
  "CMakeFiles/test_hv.dir/hv/microvisor_test.cpp.o"
  "CMakeFiles/test_hv.dir/hv/microvisor_test.cpp.o.d"
  "CMakeFiles/test_hv.dir/hv/verifier_microvisor_test.cpp.o"
  "CMakeFiles/test_hv.dir/hv/verifier_microvisor_test.cpp.o.d"
  "test_hv"
  "test_hv.pdb"
  "test_hv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
