#include "analysis/artifacts.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace xentry::analysis {

namespace {

using sim::Addr;
using sim::Opcode;
using sim::Program;

std::string location(const Program& program, Addr addr) {
  std::ostringstream os;
  const std::string sym = program.symbol_at(addr);
  if (sym.empty()) {
    os << "@" << addr;
  } else {
    os << sym << "+" << (addr - program.symbol(sym));
  }
  return os.str();
}

void derive_assertions(const Program& program, AnalysisArtifacts& art,
                       std::size_t max_derived) {
  for (std::uint32_t bi = 0; bi < art.cfg.blocks.size(); ++bi) {
    const BasicBlock& b = art.cfg.blocks[bi];
    if (program.at(b.last).op != Opcode::Hlt) continue;
    if (!art.facts[bi].reachable || !art.facts[bi].in_valid) continue;
    RegState st = art.block_in[bi];
    for (Addr a = b.first; a < b.last; ++a) {
      apply_instruction(program.at(a), st);
    }
    for (unsigned r = 0; r < sim::kNumGprs; ++r) {
      const Interval& v = st[r];
      if (v.is_top() || v.is_empty()) continue;
      if (art.derived.size() >= max_derived) return;
      DerivedAssertion d;
      d.addr = b.last;
      d.reg = static_cast<std::uint8_t>(r);
      d.lo = v.lo;
      d.hi = v.hi;
      std::ostringstream os;
      os << "derived @" << location(program, b.last) << ": "
         << sim::reg_name(static_cast<sim::Reg>(r)) << " in [";
      if (v.lo == Interval::kMin) os << "-inf";
      else os << v.lo;
      os << ", ";
      if (v.hi == Interval::kMax) os << "+inf";
      else os << v.hi;
      os << "]";
      d.description = os.str();
      art.derived.push_back(std::move(d));
    }
  }
}

void json_escape(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\' << c;
    else if (c == '\n') os << "\\n";
    else os << c;
  }
  os << '"';
}

}  // namespace

std::size_t AnalysisArtifacts::reachable_blocks() const {
  return static_cast<std::size_t>(
      std::count_if(facts.begin(), facts.end(),
                    [](const BlockFacts& f) { return f.reachable; }));
}

std::pair<std::size_t, std::size_t> AnalysisArtifacts::derived_at(
    sim::Addr addr) const {
  const auto lo = std::lower_bound(
      derived.begin(), derived.end(), addr,
      [](const DerivedAssertion& d, sim::Addr a) { return d.addr < a; });
  auto hi = lo;
  while (hi != derived.end() && hi->addr == addr) ++hi;
  return {static_cast<std::size_t>(lo - derived.begin()),
          static_cast<std::size_t>(hi - derived.begin())};
}

std::string AnalysisArtifacts::to_string() const {
  std::ostringstream os;
  std::size_t edges = 0, accept_any = 0, entries = 0;
  for (const BasicBlock& b : cfg.blocks) {
    edges += b.succs.size();
    accept_any += b.accept_any_succ ? 1 : 0;
    entries += b.is_function_entry ? 1 : 0;
  }
  os << cfg.blocks.size() << " blocks (" << reachable_blocks()
     << " reachable, " << entries << " function entries), " << edges
     << " edges (" << accept_any << " unresolved indirect), "
     << derived.size() << " derived assertions, " << stack_warnings.size()
     << " stack warnings\nverifier: " << verifier.to_string();
  if (!vuln.empty()) {
    os << "\nbit-liveness: " << vuln.live.size() << " slots, "
       << (vuln.masked_fraction() * 100.0)
       << "% of (slot, reg, bit) points provably masked";
  }
  if (!timing.by_entry.empty()) {
    os << "\ntiming: " << timing.valid_count() << "/"
       << timing.by_entry.size() << " entry points with finite envelopes";
  }
  for (const StackWarning& w : stack_warnings) {
    os << "\n  [stack] at " << w.addr << " (" << location(program, w.addr)
       << "): " << w.what;
  }
  for (const DerivedAssertion& d : derived) {
    os << "\n  [" << d.id << "] " << d.description;
  }
  return os.str();
}

void AnalysisArtifacts::write_json(std::ostream& os) const {
  os << "{\n  \"signature\": \"" << std::hex << signature << std::dec
     << "\",\n  \"blocks\": [";
  for (std::uint32_t bi = 0; bi < cfg.blocks.size(); ++bi) {
    const BasicBlock& b = cfg.blocks[bi];
    const BlockFacts& f = facts[bi];
    os << (bi == 0 ? "\n" : ",\n") << "    {\"first\": " << b.first
       << ", \"last\": " << b.last << ", \"function\": ";
    json_escape(os, program.symbol_at(b.first));
    os << ", \"reachable\": " << (f.reachable ? "true" : "false")
       << ", \"stack_in\": ";
    if (f.stack_in == kDepthUnknown) os << "null";
    else os << f.stack_in;
    os << ", \"idom\": ";
    if (f.idom == kNoBlock) os << "null";
    else os << f.idom;
    os << ", \"accept_any\": " << (b.accept_any_succ ? "true" : "false")
       << ", \"signature\": \"" << std::hex << b.signature << std::dec
       << "\", \"succs\": [";
    for (std::size_t i = 0; i < b.succs.size(); ++i) {
      os << (i ? ", " : "") << b.succs[i];
    }
    os << "]}";
  }
  os << "\n  ],\n  \"derived_assertions\": [";
  for (std::size_t i = 0; i < derived.size(); ++i) {
    const DerivedAssertion& d = derived[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"id\": " << d.id
       << ", \"addr\": " << d.addr << ", \"reg\": ";
    json_escape(os, std::string(sim::reg_name(static_cast<sim::Reg>(d.reg))));
    os << ", \"lo\": " << d.lo << ", \"hi\": " << d.hi
       << ", \"description\": ";
    json_escape(os, d.description);
    os << "}";
  }
  os << "\n  ],\n  \"stack_warnings\": [";
  for (std::size_t i = 0; i < stack_warnings.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    {\"addr\": "
       << stack_warnings[i].addr << ", \"what\": ";
    json_escape(os, stack_warnings[i].what);
    os << "}";
  }
  os << "\n  ],\n  \"verifier_issues\": [";
  for (std::size_t i = 0; i < verifier.issues.size(); ++i) {
    const sim::VerifierIssue& issue = verifier.issues[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"kind\": ";
    json_escape(os, std::string(sim::issue_kind_name(issue.kind)));
    os << ", \"addr\": " << issue.addr << ", \"target\": " << issue.target
       << ", \"detail\": ";
    json_escape(os, issue.detail);
    os << "}";
  }
  os << "\n  ],\n  \"bit_liveness\": ";
  if (vuln.empty()) {
    os << "null";
  } else {
    std::uint64_t total_live = 0;
    for (std::uint16_t bits : vuln.live_bits) total_live += bits;
    os << "{\"slots\": " << vuln.live.size() << ", \"live_bits\": "
       << total_live << ", \"total_bits\": "
       << vuln.live.size() * sim::kNumArchRegs * sim::kBitsPerReg
       << ", \"masked_fraction\": " << vuln.masked_fraction() << "}";
  }
  os << ",\n  \"timing_envelopes\": [";
  {
    std::size_t i = 0;
    for (const auto& [addr, env] : timing.by_entry) {
      os << (i++ == 0 ? "\n" : ",\n") << "    {\"entry\": " << addr
         << ", \"function\": ";
      json_escape(os, program.symbol_at(addr));
      os << ", \"valid\": " << (env.valid ? "true" : "false");
      for (int c = 0; c < kNumClocks; ++c) {
        os << ", \"" << clock_name(c) << "\": [" << env.clocks[c].lo << ", "
           << env.clocks[c].hi << "]";
      }
      os << "}";
    }
  }
  os << "\n  ],\n  \"timing_model\": {\"base_cycles\": "
     << timing.model.base_cycles << ", \"branch_extra\": "
     << timing.model.branch_extra << ", \"load_extra\": "
     << timing.model.load_extra << ", \"store_extra\": "
     << timing.model.store_extra << "}";
  os << ",\n  \"stats\": {\"instructions\": " << verifier.instructions
     << ", \"padding\": " << verifier.padding << ", \"branches\": "
     << verifier.branches << ", \"indirect_jumps\": "
     << verifier.indirect_jumps << ", \"assertions\": "
     << verifier.assertions << ", \"num_blocks\": " << cfg.blocks.size()
     << ", \"reachable_blocks\": " << reachable_blocks() << "}\n}\n";
}

AnalysisArtifacts analyze_program(const Program& program,
                                  const AnalyzeOptions& options) {
  AnalysisArtifacts art;
  art.program = program;
  art.signature = program_signature(program);
  art.cfg = build_cfg(program, options.cfg);
  DataflowResult df = run_dataflow(program, art.cfg);
  art.facts = std::move(df.facts);
  art.block_in = std::move(df.in_state);
  art.stack_warnings = std::move(df.stack_warnings);
  if (options.derive_assertions) {
    derive_assertions(program, art, options.max_derived);
    for (std::size_t i = 0; i < art.derived.size(); ++i) {
      art.derived[i].id = kDerivedAssertBase + static_cast<std::uint32_t>(i);
    }
  }
  if (options.bit_liveness) {
    art.vuln = compute_bit_liveness(program, art.cfg, art.derived);
  }
  if (options.timing_envelopes) {
    art.timing = compute_timing_envelopes(program, art.cfg,
                                          options.timing_model);
  }
  art.verifier = verify_with_cfg(program, art.cfg, art.facts, options.verifier);
  return art;
}

}  // namespace xentry::analysis
