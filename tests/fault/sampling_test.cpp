#include "fault/sampler.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <random>

#include "analysis/artifacts.hpp"
#include "fault/campaign.hpp"
#include "fault/experiment.hpp"
#include "fault/stats.hpp"
#include "hv/microvisor.hpp"

namespace xentry::fault {
namespace {

std::shared_ptr<const analysis::AnalysisArtifacts> microvisor_artifacts(
    const hv::MicrovisorOptions& opt = {}) {
  return std::make_shared<analysis::AnalysisArtifacts>(
      analysis::analyze_program(hv::build_microvisor(opt).program));
}

bool same_injection(const hv::Injection& a, const hv::Injection& b) {
  return a.at_step == b.at_step && a.reg == b.reg && a.bit == b.bit;
}

TEST(ImportanceSamplerTest, MainRngConsumptionMatchesPlainDraws) {
  // The sampler must consume the main stream exactly like uniform mode:
  // same draw calls, same order — so the activation/probe sequence of the
  // campaign is bit-identical across sampling modes.
  const hv::Microvisor mv = hv::build_microvisor({});
  const analysis::AnalysisArtifacts art = analysis::analyze_program(mv.program);
  ASSERT_FALSE(art.vuln.empty());

  // A synthetic in-image trace is enough: the draws only need sizes.
  std::vector<sim::Addr> trace;
  for (sim::Addr a = mv.program.base(); a < mv.program.base() + 200; ++a) {
    trace.push_back(a);
  }

  ImportanceSampler sampler(art.vuln, mv.program, 1.0 / 64, 99);
  std::mt19937_64 sampled(42), plain(42);
  for (int i = 0; i < 50; ++i) {
    sampler.propose_uniform(sampled, trace.size(), trace);
    InjectionExperiment::draw_injection(plain, trace.size());
    // The comparison itself consumes one value from each stream, keeping
    // them aligned for the next round.
    ASSERT_EQ(sampled(), plain()) << "uniform branch diverged at slot " << i;
    sampler.propose_activated(sampled, trace);
    InjectionExperiment::draw_activated_injection(plain, trace, mv.program);
    ASSERT_EQ(sampled(), plain()) << "activated branch diverged at slot " << i;
  }
}

TEST(ImportanceSamplerTest, ProposalsLandOnLiveBitsOrGoAnalytic) {
  const hv::Microvisor mv = hv::build_microvisor({});
  const analysis::AnalysisArtifacts art = analysis::analyze_program(mv.program);
  std::vector<sim::Addr> trace;
  for (sim::Addr a = mv.program.base(); a < mv.program.base() + 300; ++a) {
    trace.push_back(a);
  }
  ImportanceSampler sampler(art.vuln, mv.program, 1.0 / 64, 7);
  std::mt19937_64 rng(1);
  int executed = 0, redrawn = 0;
  for (int i = 0; i < 400; ++i) {
    std::mt19937_64 probe_rng = rng;  // copy: re-derive the original draw
    const hv::Injection original =
        InjectionExperiment::draw_injection(probe_rng, trace.size());
    const ImportanceSampler::Proposal p =
        sampler.propose_uniform(rng, trace.size(), trace);
    ASSERT_GT(p.live_mass, 0.0);
    ASSERT_LE(p.live_mass, 1.0);
    if (p.analytic) continue;
    ++executed;
    redrawn += same_injection(p.injection, original) ? 0 : 1;
    // Every executed proposal sits on a bit the map cannot prove masked.
    EXPECT_TRUE(art.vuln.is_live(
        trace[p.injection.at_step],
        static_cast<std::uint8_t>(p.injection.reg),
        static_cast<std::uint8_t>(p.injection.bit)));
  }
  // The microvisor map masks ~half the space: both paths must be common.
  EXPECT_GT(executed, 300);
  EXPECT_GT(redrawn, 50);
}

TEST(CampaignSamplingTest, ValidateRejectsBadSamplingConfigs) {
  CampaignConfig cfg;
  cfg.xentry.transition_detection = false;
  cfg.sampling.importance = true;
  // No analysis artifacts installed.
  EXPECT_THROW(validate_campaign_config(cfg), std::invalid_argument);

  // Artifacts without a vulnerability map.
  analysis::AnalyzeOptions no_bits;
  no_bits.bit_liveness = false;
  cfg.analysis = std::make_shared<analysis::AnalysisArtifacts>(
      analysis::analyze_program(hv::build_microvisor(cfg.machine).program,
                                no_bits));
  EXPECT_THROW(validate_campaign_config(cfg), std::invalid_argument);

  cfg.analysis = microvisor_artifacts(cfg.machine);
  EXPECT_NO_THROW(validate_campaign_config(cfg));

  cfg.sampling.weight_floor = 0.0;
  EXPECT_THROW(validate_campaign_config(cfg), std::invalid_argument);
  cfg.sampling.weight_floor = -0.5;
  EXPECT_THROW(validate_campaign_config(cfg), std::invalid_argument);
  cfg.sampling.weight_floor = 1.5;
  EXPECT_THROW(validate_campaign_config(cfg), std::invalid_argument);
  cfg.sampling.weight_floor = std::nan("");
  EXPECT_THROW(validate_campaign_config(cfg), std::invalid_argument);
  cfg.sampling.weight_floor = 1.0;
  EXPECT_NO_THROW(validate_campaign_config(cfg));
}

TEST(CampaignSamplingTest, WeightsAreUnitUnderUniformSampling) {
  CampaignConfig cfg;
  cfg.injections = 150;
  cfg.seed = 5;
  cfg.shards = 2;
  cfg.xentry.transition_detection = false;
  const CampaignResult res = run_campaign(cfg);
  for (const InjectionRecord& r : res.records) {
    EXPECT_EQ(r.weight, 1.0);
    EXPECT_EQ(r.masked_weight, 0.0);
  }
  const WeightedRates w = weighted_rates(res.records);
  EXPECT_DOUBLE_EQ(w.total_mass, 150.0);
  EXPECT_DOUBLE_EQ(w.effective_injections, 150.0);
  const auto hist = consequence_histogram(res.records);
  for (const auto& [c, n] : hist) {
    EXPECT_DOUBLE_EQ(w.mass[static_cast<std::size_t>(c)],
                     static_cast<double>(n));
  }
}

TEST(CampaignSamplingTest, ReweightedRatesMatchUniformWithinTolerance) {
  CampaignConfig uniform;
  uniform.injections = 1500;
  uniform.seed = 7;
  uniform.shards = 2;
  uniform.xentry.transition_detection = false;

  CampaignConfig sampled = uniform;
  sampled.sampling.importance = true;
  sampled.analysis = microvisor_artifacts(uniform.machine);

  const CampaignResult ur = run_campaign(uniform);
  const CampaignResult sr = run_campaign(sampled);
  ASSERT_EQ(ur.records.size(), sr.records.size());

  const WeightedRates uw = weighted_rates(ur.records);
  const WeightedRates sw = weighted_rates(sr.records);
  // The reweighted estimator targets the same estimand; for the same
  // seed the two runs share golden streams, so residual disagreement is
  // only the masked-stratum resampling noise.
  EXPECT_NEAR(sw.rate(Consequence::Masked), uw.rate(Consequence::Masked),
              0.04);
  EXPECT_NEAR(sw.manifested_rate(), uw.manifested_rate(), 0.04);
  EXPECT_NEAR(sw.detected_rate(), uw.detected_rate(), 0.04);
  EXPECT_NEAR(sw.rate(Consequence::AppSdc), uw.rate(Consequence::AppSdc),
              0.02);
  EXPECT_NEAR(sw.rate(Consequence::AppCrash), uw.rate(Consequence::AppCrash),
              0.02);
  // The sampled campaign is statistically larger than its record count.
  EXPECT_GT(sw.effective_injections,
            1.3 * static_cast<double>(sr.records.size()));

  // Weight invariants: every executed slot carries its exact live mass.
  for (const InjectionRecord& r : sr.records) {
    EXPECT_GT(r.weight, 0.0);
    EXPECT_LE(r.weight, 1.0);
    const bool analytic = r.masked_weight == 0.0 && r.weight == 1.0;
    if (!analytic) {
      EXPECT_NEAR(r.weight + r.masked_weight, 1.0, 1e-12);
    }
  }
}

TEST(CampaignSamplingTest, SampledCampaignIsDeterministic) {
  CampaignConfig cfg;
  cfg.injections = 300;
  cfg.seed = 13;
  cfg.shards = 3;
  cfg.xentry.transition_detection = false;
  cfg.sampling.importance = true;
  cfg.analysis = microvisor_artifacts(cfg.machine);
  const CampaignResult a = run_campaign(cfg);
  const CampaignResult b = run_campaign(cfg);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const InjectionRecord& x = a.records[i];
    const InjectionRecord& y = b.records[i];
    EXPECT_TRUE(same_injection(x.injection, y.injection)) << "record " << i;
    EXPECT_EQ(x.consequence, y.consequence) << "record " << i;
    EXPECT_EQ(x.detected, y.detected) << "record " << i;
    EXPECT_EQ(x.activated, y.activated) << "record " << i;
    EXPECT_DOUBLE_EQ(x.weight, y.weight) << "record " << i;
    EXPECT_DOUBLE_EQ(x.masked_weight, y.masked_weight) << "record " << i;
  }
}

}  // namespace
}  // namespace xentry::fault
