// Ablation: checkpoint + re-execution recovery (Section VI's sketch,
// implemented).  For every detected fault in a campaign-style stream,
// restore the critical-data checkpoint and re-execute; report how often
// the re-run lands exactly in the golden post-state, broken down by the
// detecting technique.
#include <cstdio>
#include <map>

#include "bench/bench_util.hpp"
#include "fault/experiment.hpp"
#include "workloads/workload.hpp"
#include "xentry/recovery_engine.hpp"

int main() {
  using namespace xentry;
  bench::print_header("Ablation: checkpoint + re-execution recovery");

  fault::TrainedDetector det = bench::train_paper_model();

  hv::Machine golden, faulty;
  Xentry xentry;
  xentry.set_model(det.rules);
  fault::InjectionExperiment exp(golden, faulty, xentry);
  RecoveryEngine recovery(faulty);
  wl::WorkloadGenerator gen(golden, bench::pooled_benchmark_profile(), 42);
  std::mt19937_64 rng(7);

  struct Tally {
    std::size_t detections = 0;
    std::size_t clean = 0;     ///< re-run reached VM entry
    std::size_t exact = 0;     ///< post-state identical to golden
  };
  std::map<Technique, Tally> by_technique;

  const int trials = bench::scaled(12000);
  for (int i = 0; i < trials; ++i) {
    const hv::Activation act = gen.next();
    const auto probe = exp.probe_golden(act);
    if (probe.steps == 0) continue;
    const hv::Injection inj =
        fault::InjectionExperiment::draw_activated_injection(
            rng, probe.trace, golden.microvisor().program);
    recovery.checkpoint(act);  // the VM-exit-side copy
    const auto result = exp.run_one(act, inj);
    if (result.record.detected) {
      Tally& t = by_technique[result.record.technique];
      ++t.detections;
      const hv::RunResult rerun = recovery.recover();
      t.clean += rerun.reached_vm_entry ? 1 : 0;
      t.exact +=
          hv::Machine::diff_persistent_state(golden, faulty).empty() ? 1 : 0;
    }
    // Re-align and continue the stream.
    faulty.restore(golden.snapshot());
    exp.advance(gen.next());
  }

  std::printf("%-16s %10s %12s %13s\n", "technique", "detections",
              "clean rerun", "exact state");
  for (const auto& [tech, t] : by_technique) {
    std::printf("%-16s %10zu %11.1f%% %12.1f%%\n",
                std::string(technique_name(tech)).c_str(), t.detections,
                t.detections ? 100.0 * t.clean / t.detections : 0.0,
                t.detections ? 100.0 * t.exact / t.detections : 0.0);
  }
  std::printf("\ncheckpoint footprint: %zu words per VM exit "
              "(the paper's measured 1,900 ns copy)\n",
              recovery.checkpoint_words());
  std::printf(
      "expected shape: runtime detections (short latency, nothing written\n"
      "to guest memory yet) recover exactly; transition detections fire\n"
      "after guest-visible writes, so some residue survives re-execution.\n");
  return 0;
}
