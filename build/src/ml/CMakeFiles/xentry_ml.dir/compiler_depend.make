# Empty compiler generated dependencies file for xentry_ml.
# This may be replaced when dependencies are built.
