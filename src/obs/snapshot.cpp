#include "obs/snapshot.hpp"

#include <bit>
#include <ostream>

#include "obs/json.hpp"

namespace xentry::obs {

namespace {

/// Metric names are identifiers by convention, but lines must stay valid
/// JSON for any name.
void write_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char hex[] = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_histogram_delta(std::ostream& os, const Log2Histogram& cur,
                           const Log2Histogram* prev) {
  const std::uint64_t count_delta = cur.count() - (prev ? prev->count() : 0);
  const std::uint64_t sum_delta = cur.sum() - (prev ? prev->sum() : 0);
  os << "{\"count\":" << count_delta << ",\"sum\":" << sum_delta;
  if (cur.count() > 0) {
    // Cumulative min/max: exact under merge because min/max only improve.
    os << ",\"min\":" << cur.min() << ",\"max\":" << cur.max();
  }
  os << ",\"buckets\":{";
  bool first = true;
  for (int i = 0; i < Log2Histogram::kNumBuckets; ++i) {
    const std::uint64_t d = cur.bucket(i) - (prev ? prev->bucket(i) : 0);
    if (d == 0) continue;
    if (!first) os << ',';
    first = false;
    os << '"' << Log2Histogram::bucket_lower_bound(i) << "\":" << d;
  }
  os << "}}";
}

}  // namespace

void SnapshotWriter::write(const MetricsRegistry& cur, bool force_full) {
  const bool full = force_full || !wrote_any_;
  os_ << "{\"seq\":" << seq_ << ",\"kind\":\"" << (full ? "full" : "delta")
      << "\",\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : cur.counters()) {
    const Counter* prev = full ? nullptr : prev_.find_counter(name);
    if (prev != nullptr && prev->value() == c.value()) continue;
    if (!first) os_ << ',';
    first = false;
    write_escaped(os_, name);
    os_ << ':' << (c.value() - (prev ? prev->value() : 0));
  }
  os_ << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : cur.gauges()) {
    const Gauge* prev = full ? nullptr : prev_.find_gauge(name);
    if (prev != nullptr && prev->value() == g.value()) continue;
    if (!first) os_ << ',';
    first = false;
    write_escaped(os_, name);
    os_ << ':' << g.value();
  }
  os_ << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : cur.histograms()) {
    const Log2Histogram* prev = full ? nullptr : prev_.find_histogram(name);
    // Buckets and sum can only move with count, so count is the dirty bit.
    if (prev != nullptr && prev->count() == h.count()) continue;
    if (!first) os_ << ',';
    first = false;
    write_escaped(os_, name);
    os_ << ':';
    write_histogram_delta(os_, h, prev);
  }
  os_ << "}}\n";
  os_.flush();
  prev_ = cur;
  ++seq_;
  wrote_any_ = true;
}

void SnapshotWriter::prime(const MetricsRegistry& restored,
                           std::uint64_t next_seq) {
  prev_ = restored;
  seq_ = next_seq;
  wrote_any_ = true;
}

std::vector<MetricsSnapshot> read_snapshots(std::string_view text) {
  std::vector<MetricsSnapshot> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) break;  // torn tail: no terminator
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    const std::optional<JsonValue> v = parse_json(line);
    if (!v.has_value() || !v->is_object()) break;  // torn/corrupt: stop here
    MetricsSnapshot snap;
    snap.seq = v->get_uint("seq");
    snap.full = v->get_string("kind") == "full";
    if (const JsonValue* counters = v->get("counters")) {
      for (const auto& [name, val] : counters->as_object()) {
        snap.counters.emplace(name, val.as_uint());
      }
    }
    if (const JsonValue* gauges = v->get("gauges")) {
      for (const auto& [name, val] : gauges->as_object()) {
        snap.gauges.emplace(name, val.as_int());
      }
    }
    if (const JsonValue* hists = v->get("histograms")) {
      for (const auto& [name, hv] : hists->as_object()) {
        MetricsSnapshot::HistogramDelta d;
        d.count = hv.get_uint("count");
        d.sum = hv.get_uint("sum");
        d.min = hv.get_uint("min");
        d.max = hv.get_uint("max");
        if (const JsonValue* buckets = hv.get("buckets")) {
          for (const auto& [lb_str, n] : buckets->as_object()) {
            std::uint64_t lb = 0;
            for (char c : lb_str) {
              if (c < '0' || c > '9') {
                lb = ~std::uint64_t{0};
                break;
              }
              lb = lb * 10 + static_cast<std::uint64_t>(c - '0');
            }
            if (lb == ~std::uint64_t{0}) continue;
            // bucket_lower_bound is invertible: index = bit_width(lb).
            const int idx = static_cast<int>(std::bit_width(lb));
            if (idx < Log2Histogram::kNumBuckets) d.buckets[idx] = n.as_uint();
          }
        }
        snap.histograms.emplace(name, d);
      }
    }
    out.push_back(std::move(snap));
  }
  return out;
}

MetricsRegistry merge_snapshots(const std::vector<MetricsSnapshot>& snaps) {
  // Replay from the last full snapshot: everything before it is
  // superseded state.
  std::size_t start = 0;
  for (std::size_t i = 0; i < snaps.size(); ++i) {
    if (snaps[i].full) start = i;
  }
  MetricsRegistry reg;
  for (std::size_t i = start; i < snaps.size(); ++i) {
    const MetricsSnapshot& s = snaps[i];
    for (const auto& [name, delta] : s.counters) {
      reg.counter(name).inc(delta);
    }
    for (const auto& [name, value] : s.gauges) {
      reg.gauge(name).set(value);
    }
    for (const auto& [name, d] : s.histograms) {
      reg.histogram(name).merge_from(
          Log2Histogram::from_parts(d.buckets, d.count, d.sum, d.min, d.max));
    }
  }
  return reg;
}

bool is_timing_metric(std::string_view name) {
  // Wall-clock-derived families: latency histograms (…_ns/…_us) and
  // throughput rates (…per_sec, …elapsed…).
  return name.ends_with("_ns") || name.ends_with("_us") ||
         name.find("per_sec") != std::string_view::npos ||
         name.find("elapsed") != std::string_view::npos;
}

MetricsRegistry strip_timing_metrics(const MetricsRegistry& reg) {
  MetricsRegistry out;
  for (const auto& [name, c] : reg.counters()) {
    if (!is_timing_metric(name)) out.counter(name).inc(c.value());
  }
  for (const auto& [name, g] : reg.gauges()) {
    if (!is_timing_metric(name)) out.gauge(name).set(g.value());
  }
  for (const auto& [name, h] : reg.histograms()) {
    if (!is_timing_metric(name)) out.histogram(name).merge_from(h);
  }
  return out;
}

}  // namespace xentry::obs
