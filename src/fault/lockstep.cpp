#include "fault/lockstep.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <vector>

#include "hv/layout.hpp"

namespace xentry::fault {

namespace L = hv::layout;

namespace {

/// One replay side: the CPU plus whether it has reached its natural end
/// (VM-entry halt or trap).  A done side parks; the other may continue.
struct Side {
  sim::Cpu* cpu = nullptr;
  bool done = false;
  bool halted = false;  ///< done via Hlt (the VM-entry gate), not a trap
};

/// Advances `s` up to `n` reference steps; returns steps executed
/// (each step() call counts one, including the ending Hlt/trap).
std::uint64_t advance(Side& s, std::uint64_t n) {
  std::uint64_t k = 0;
  while (k < n && !s.done) {
    const sim::StepInfo info = s.cpu->step();
    ++k;
    if (info.status != sim::StepInfo::Status::Ok) {
      s.done = true;
      s.halted = info.status == sim::StepInfo::Status::Halted;
    }
  }
  return k;
}

struct Cmp {
  bool beyond = false;     ///< corruption beyond the seeded flip
  bool identical = false;  ///< no difference at all (flip overwritten)
};

/// The divergence predicate.  The seed register carrying exactly the seed
/// mask is the injected fault itself, not propagation; any other register
/// difference, any changed seed-register mask, or any memory difference
/// (the seed lives in a register, so memory is beyond by definition) is.
Cmp compare(const Side& g, const Side& f, sim::Reg seed_reg,
            sim::Word seed_mask) {
  Cmp c;
  bool seed_present = false;
  const auto& gr = g.cpu->regs();
  const auto& fr = f.cpu->regs();
  for (int r = 0; r < sim::kNumArchRegs; ++r) {
    const sim::Word x = gr[static_cast<std::size_t>(r)] ^
                        fr[static_cast<std::size_t>(r)];
    if (x == 0) continue;
    if (static_cast<sim::Reg>(r) == seed_reg && x == seed_mask) {
      seed_present = true;
      continue;
    }
    c.beyond = true;
    return c;
  }
  const bool mem = g.cpu->memory().differs_from(f.cpu->memory());
  c.beyond = mem;
  c.identical = !mem && !seed_present;
  return c;
}

/// Chunk-entry checkpoint: both sides' memory images, register files,
/// TSCs, and park states.  Memory::Snapshot buffers are reused across
/// captures, so repeated bisection probes do not reallocate.
struct Checkpoint {
  sim::Memory::Snapshot g_mem, f_mem;
  std::array<sim::Word, sim::kNumArchRegs> g_regs{}, f_regs{};
  sim::Word g_tsc = 0, f_tsc = 0;
  bool g_done = false, g_halted = false;
  bool f_done = false, f_halted = false;
};

void capture(Checkpoint& c, const Side& g, const Side& f) {
  g.cpu->memory().snapshot_into(c.g_mem);
  f.cpu->memory().snapshot_into(c.f_mem);
  c.g_regs = g.cpu->regs();
  c.f_regs = f.cpu->regs();
  c.g_tsc = g.cpu->tsc();
  c.f_tsc = f.cpu->tsc();
  c.g_done = g.done;
  c.g_halted = g.halted;
  c.f_done = f.done;
  c.f_halted = f.halted;
}

void rewind(const Checkpoint& c, Side& g, Side& f) {
  g.cpu->memory().restore(c.g_mem);
  f.cpu->memory().restore(c.f_mem);
  g.cpu->set_regs(c.g_regs);
  f.cpu->set_regs(c.f_regs);
  g.cpu->set_tsc(c.g_tsc);
  f.cpu->set_tsc(c.f_tsc);
  g.done = c.g_done;
  g.halted = c.g_halted;
  f.done = c.f_done;
  f.halted = c.f_halted;
}

/// Fills the divergence location from the first new corruption at the
/// current (first dirty) boundary: registers in index order first, then
/// the lowest differing memory word.
void fill_location(obs::FirstDivergence& d, const Side& g, const Side& f,
                   sim::Reg seed_reg, sim::Word seed_mask) {
  const auto& gr = g.cpu->regs();
  const auto& fr = f.cpu->regs();
  for (int r = 0; r < sim::kNumArchRegs; ++r) {
    const sim::Word x = gr[static_cast<std::size_t>(r)] ^
                        fr[static_cast<std::size_t>(r)];
    if (x == 0) continue;
    if (static_cast<sim::Reg>(r) == seed_reg && x == seed_mask) continue;
    d.in_register = true;
    d.location = static_cast<std::uint64_t>(r);
    d.xor_mask = x;
    d.bit = std::countr_zero(x);
    return;
  }
  std::vector<sim::WordDiff> diffs;
  g.cpu->memory().diff_spans(f.cpu->memory(), diffs);
  if (!diffs.empty()) {
    d.in_register = false;
    d.location = diffs.front().addr;
    d.xor_mask = diffs.front().xor_mask;
    d.bit = std::countr_zero(diffs.front().xor_mask);
  }
}

}  // namespace

DivergenceScan find_first_divergence(sim::Cpu& golden, sim::Cpu& faulty,
                                     sim::Reg seed_reg, sim::Word seed_mask,
                                     std::uint64_t start_step,
                                     const LockstepParams& params) {
  DivergenceScan out;
  Side g{&golden};
  Side f{&faulty};
  const std::uint64_t chunk =
      params.chunk_steps > 0 ? static_cast<std::uint64_t>(params.chunk_steps)
                             : 1;
  Checkpoint chk;
  std::uint64_t boundary = 0;  // steps executed past start_step

  const auto finish = [&](bool masked) {
    out.masked = masked;
    out.boundary = start_step + boundary;
    out.golden_done = g.done;
    out.golden_halted = g.halted;
    out.faulty_done = f.done;
    out.faulty_halted = f.halted;
  };

  while (true) {
    if ((g.done && f.done) || boundary >= params.max_replay_steps) {
      // Window exhausted with no propagation: the flip either converged
      // away entirely (masked) or stayed latent in the seed register.
      finish(compare(g, f, seed_reg, seed_mask).identical);
      return out;
    }
    const std::uint64_t n =
        std::min(chunk, params.max_replay_steps - boundary);
    capture(chk, g, f);
    out.steps_replayed += advance(g, n) + advance(f, n);
    boundary += n;
    const Cmp c = compare(g, f, seed_reg, seed_mask);
    if (c.identical) {
      finish(true);
      return out;
    }
    if (!c.beyond) continue;

    // Dirty chunk: bisect offsets (0, n] from the checkpoint.  The
    // predicate is false at the chunk entry and true at its end, so the
    // first-true binary search lands on a genuine false->true edge; the
    // divergence step is the instruction executed across that edge.
    std::uint64_t lo = 0, hi = n;
    while (hi - lo > 1) {
      const std::uint64_t mid = lo + (hi - lo) / 2;
      rewind(chk, g, f);
      out.steps_replayed += advance(g, mid) + advance(f, mid);
      if (compare(g, f, seed_reg, seed_mask).beyond) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    rewind(chk, g, f);
    out.steps_replayed += advance(g, hi) + advance(f, hi);
    const std::uint64_t chunk_base = boundary - n;
    boundary = chunk_base + hi;
    out.diverged = true;
    out.divergence.step = start_step + boundary - 1;
    fill_location(out.divergence, g, f, seed_reg, seed_mask);
    finish(false);
    return out;
  }
}

namespace {

/// One taint-map sample at the current boundary: the corruption set
/// diffed and classified (stack range, persistent structures, time
/// values), with the VM-entry crossing marker.
obs::TaintSample make_sample(std::uint64_t boundary, const Side& g,
                             const Side& f, sim::Reg seed_reg,
                             sim::Word seed_mask, int nd, int nv,
                             std::vector<sim::WordDiff>& diffs,
                             std::vector<sim::RegDiff>& rdiffs) {
  obs::TaintSample s;
  s.step = boundary;
  g.cpu->memory().diff_spans(f.cpu->memory(), diffs);
  s.mem_words = static_cast<std::uint32_t>(diffs.size());
  for (const sim::WordDiff& d : diffs) {
    const bool stack =
        (d.addr >= L::kStackBase && d.addr < L::kStackTop) ||
        (d.addr >= L::kStackBase + static_cast<sim::Addr>(L::kShadowStackOffset) &&
         d.addr < L::kStackTop + static_cast<sim::Addr>(L::kShadowStackOffset));
    if (stack) {
      ++s.stack_words;
      continue;
    }
    L::OutputClass cls = L::OutputClass::HvGlobal;
    int dom = 0;
    if (L::classify_address(d.addr, nd, nv, cls, dom)) {
      ++s.persistent_words;
      if (cls == L::OutputClass::TimeValue) ++s.time_words;
    }
  }
  sim::diff_regs(*g.cpu, *f.cpu, rdiffs);
  for (const sim::RegDiff& rd : rdiffs) {
    if (rd.reg == seed_reg && rd.xor_mask == seed_mask) continue;
    ++s.regs;
  }
  s.at_vm_entry = f.done && f.halted;
  return s;
}

}  // namespace

obs::ForensicsRecord run_lockstep_forensics(hv::Machine& golden,
                                            hv::Machine& faulty,
                                            const hv::Activation& activation,
                                            const hv::Injection& injection,
                                            const hv::Machine::Snapshot& pre,
                                            const LockstepParams& params) {
  obs::ForensicsRecord fx;
  golden.restore(pre);
  faulty.restore(pre);
  golden.begin_activation(activation);
  faulty.begin_activation(activation);
  sim::Cpu& gc = golden.cpu();
  sim::Cpu& fc = faulty.cpu();
  // Reference-engine single stepping; masks are an activation-watching
  // concern the replay does not have.  Machine::run re-establishes the
  // flag per run, so leaving it off here is invisible to the campaign.
  gc.set_mask_tracking(false);
  fc.set_mask_tracking(false);

  // Advance both sides to the injection point (the flip precedes the
  // dynamic instruction at_step, exactly as Machine::run applies it).
  for (std::uint64_t i = 0; i < injection.at_step; ++i) {
    const sim::StepInfo a = gc.step();
    const sim::StepInfo b = fc.step();
    fx.replay_steps += 2;
    if (a.status != sim::StepInfo::Status::Ok ||
        b.status != sim::StepInfo::Status::Ok) {
      // The faulted run reached at_step, so a clean replay must too; bail
      // without evidence rather than mis-attribute (callers fall back to
      // the heuristic).
      gc.set_mask_tracking(true);
      fc.set_mask_tracking(true);
      return fx;
    }
  }
  fc.flip_bit(injection.reg, injection.bit);
  const sim::Word seed_mask = sim::Word{1} << injection.bit;

  const DivergenceScan scan = find_first_divergence(
      gc, fc, injection.reg, seed_mask, injection.at_step, params);
  fx.replay_steps += scan.steps_replayed;
  fx.diverged = scan.diverged;
  fx.masked = scan.masked;

  if (scan.diverged) {
    fx.divergence = scan.divergence;
    // Taint sampling: the boundary right after the first divergence, then
    // exponentially spaced checkpoints, ending at the end state (both
    // sides done) or the budget/sample cap.
    Side g{&gc, scan.golden_done, scan.golden_halted};
    Side f{&fc, scan.faulty_done, scan.faulty_halted};
    const int nd = golden.num_domains();
    const int nv = golden.num_vcpus() + 1;  // include the idle vcpu
    std::vector<sim::WordDiff> diffs;
    std::vector<sim::RegDiff> rdiffs;
    const std::uint64_t budget_end =
        injection.at_step + params.max_replay_steps;
    std::uint64_t boundary = scan.boundary;
    std::uint64_t interval = 1;
    while (true) {
      fx.taint.push_back(make_sample(boundary, g, f, injection.reg, seed_mask,
                                     nd, nv, diffs, rdiffs));
      if (g.done && f.done) break;
      if (static_cast<int>(fx.taint.size()) >= params.max_taint_samples) break;
      if (boundary >= budget_end) break;
      const std::uint64_t n = std::min(interval, budget_end - boundary);
      const std::uint64_t adv_g = advance(g, n);
      const std::uint64_t adv_f = advance(f, n);
      fx.replay_steps += adv_g + adv_f;
      boundary += std::max(adv_g, adv_f);
      interval *= 2;
    }
  }

  gc.set_mask_tracking(true);
  fc.set_mask_tracking(true);
  return fx;
}

}  // namespace xentry::fault
