#include <gtest/gtest.h>

#include <array>
#include <random>

#include "ml/decision_tree.hpp"
#include "ml/metrics.hpp"
#include "ml/rules.hpp"

namespace xentry::ml {
namespace {

// Noisy data the tree will overfit without pruning.
Dataset noisy(std::uint64_t seed, int n, double noise) {
  Dataset ds({"a", "b"});
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> u(0, 100);
  std::bernoulli_distribution flip(noise);
  for (int i = 0; i < n; ++i) {
    const std::int64_t a = u(rng), b = u(rng);
    bool incorrect = a > 60 && b < 40;
    if (flip(rng)) incorrect = !incorrect;
    std::array<std::int64_t, 2> v{a, b};
    ds.add(v, incorrect ? Label::Incorrect : Label::Correct);
  }
  return ds;
}

TEST(PruningTest, ShrinksOverfitTreeWithoutHurtingHeldOutAccuracy) {
  const Dataset train = noisy(1, 1500, 0.10);
  const Dataset validation = noisy(2, 600, 0.10);
  const Dataset test = noisy(3, 800, 0.10);

  DecisionTree tree;
  tree.train(train);
  const std::size_t leaves_before = tree.leaf_count();
  const double acc_before =
      evaluate(test, [&](auto r) { return tree.predict(r); }).accuracy();

  const std::size_t removed = tree.prune_reduced_error(validation);
  EXPECT_GT(removed, 0u);
  EXPECT_LT(tree.leaf_count(), leaves_before);
  const double acc_after =
      evaluate(test, [&](auto r) { return tree.predict(r); }).accuracy();
  // Reduced-error pruning must not hurt held-out accuracy materially, and
  // with 10% label noise it typically helps.
  EXPECT_GE(acc_after, acc_before - 0.01);
}

TEST(PruningTest, PerfectTreeOnCleanDataMayPruneOnlyRedundancy) {
  // Separable data: pruning with a faithful validation set must keep the
  // tree perfect.
  Dataset ds({"x"});
  for (int i = 0; i < 50; ++i) {
    std::array<std::int64_t, 1> v{i};
    ds.add(v, i >= 25 ? Label::Incorrect : Label::Correct);
  }
  DecisionTree tree;
  tree.train(ds);
  tree.prune_reduced_error(ds);
  const auto m = evaluate(ds, [&](auto r) { return tree.predict(r); });
  EXPECT_DOUBLE_EQ(m.accuracy(), 1.0);
}

TEST(PruningTest, UnreachedSubtreesCollapse) {
  // A validation set that never exercises the right branch lets it fold.
  Dataset train({"x"});
  for (int i = 0; i < 20; ++i) {
    std::array<std::int64_t, 1> v{i};
    train.add(v, i >= 10 ? Label::Incorrect : Label::Correct);
  }
  DecisionTree tree;
  tree.train(train);
  ASSERT_GT(tree.depth(), 1);
  Dataset validation({"x"});
  std::array<std::int64_t, 1> v{0};
  validation.add(v, Label::Correct);
  tree.prune_reduced_error(validation);
  // Root collapses to the training majority (a tie -> Correct).
  EXPECT_EQ(tree.leaf_count(), 1u);
}

TEST(PruningTest, PrunedTreeStillCompilesToRules) {
  const Dataset train = noisy(5, 800, 0.15);
  DecisionTree tree;
  tree.train(train);
  tree.prune_reduced_error(noisy(6, 300, 0.15));
  const RuleSet rules = RuleSet::compile(tree);
  for (std::int64_t a = 0; a <= 100; a += 9) {
    for (std::int64_t b = 0; b <= 100; b += 11) {
      std::array<std::int64_t, 2> v{a, b};
      EXPECT_EQ(rules.evaluate(v), tree.predict(v));
    }
  }
}

TEST(PruningTest, UntrainedTreeThrows) {
  DecisionTree tree;
  Dataset ds({"x"});
  std::array<std::int64_t, 1> v{0};
  ds.add(v, Label::Correct);
  EXPECT_THROW(tree.prune_reduced_error(ds), std::logic_error);
}

}  // namespace
}  // namespace xentry::ml
