#include "xentry/framework.hpp"

namespace xentry {

std::string_view technique_name(Technique t) {
  switch (t) {
    case Technique::None: return "undetected";
    case Technique::HardwareException: return "hw_exception";
    case Technique::SoftwareAssertion: return "sw_assertion";
    case Technique::VmTransition: return "vm_transition";
    case Technique::StackRedundancy: return "stack_redundancy";
  }
  return "?";
}

Observation Xentry::observe(hv::Machine& machine,
                            const hv::Activation& activation,
                            hv::RunOptions opts) {
  opts.arm_counters = cfg_.transition_detection;
  Observation obs;
  obs.run = machine.run(activation, opts);
  obs.features = FeatureVector::from(activation.reason, obs.run.counters);

  if (!obs.run.reached_vm_entry) {
    // Host-mode trap: runtime detection territory.
    const sim::Trap& trap = obs.run.trap;
    if (cfg_.runtime_detection) {
      if (trap.kind == sim::TrapKind::StackCheck) {
        obs.detected = true;
        obs.technique = Technique::StackRedundancy;
        obs.detection_step = obs.run.trap_step;
      } else if (trap.kind == sim::TrapKind::AssertFailed) {
        registry_.record_fire(trap.aux);
        obs.detected = true;
        obs.technique = Technique::SoftwareAssertion;
        obs.detection_step = obs.run.trap_step;
      } else if (parser_.parse(trap) == ExceptionVerdict::Fatal) {
        obs.detected = true;
        obs.technique = Technique::HardwareException;
        obs.detection_step = obs.run.trap_step;
      }
    }
    return obs;
  }

  // VM entry: transition detection before the guest resumes.
  if (cfg_.transition_detection && detector_.has_model() &&
      detector_.flag(obs.features)) {
    obs.detected = true;
    obs.technique = Technique::VmTransition;
    obs.detection_step = obs.run.steps;
  }
  return obs;
}

}  // namespace xentry
