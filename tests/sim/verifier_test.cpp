#include "sim/verifier.hpp"

#include <gtest/gtest.h>

#include "sim/assembler.hpp"

namespace xentry::sim {
namespace {

TEST(VerifierTest, CleanProgramPasses) {
  Assembler as(100);
  as.global("main");
  as.movi(Reg::rax, 1);
  as.call("leaf");
  as.hlt();
  as.pad_ud(2);
  as.global("leaf");
  as.ret();
  const Program p = as.finish();
  const VerifierReport r = verify_program(p);
  EXPECT_TRUE(r.ok()) << r.to_string();
  EXPECT_EQ(r.padding, 2u);
  EXPECT_EQ(r.instructions, 4u);
  EXPECT_EQ(r.branches, 2u);  // call + ret
}

TEST(VerifierTest, DetectsBranchOutOfRange) {
  Assembler as(0);
  as.emit_raw({Opcode::Jmp, Reg::rax, Reg::rax, 999, 0});
  const Program p = as.finish();
  const VerifierReport r = verify_program(p);
  ASSERT_EQ(r.issues.size(), 1u);
  EXPECT_EQ(r.issues[0].kind, VerifierIssue::Kind::BranchOutOfRange);
  EXPECT_EQ(r.issues[0].target, 999u);
}

TEST(VerifierTest, DetectsBranchIntoPadding) {
  Assembler as(0);
  as.emit_raw({Opcode::Je, Reg::rax, Reg::rax, 2, 0});
  as.hlt();
  as.pad_ud(1);
  const Program p = as.finish();
  const VerifierReport r = verify_program(p);
  ASSERT_EQ(r.issues.size(), 1u);
  EXPECT_EQ(r.issues[0].kind, VerifierIssue::Kind::BranchIntoPadding);
}

TEST(VerifierTest, DetectsFallthroughIntoPadding) {
  Assembler as(0);
  as.movi(Reg::rax, 1);  // falls into the Ud below: missing ret/hlt
  as.pad_ud(1);
  const Program p = as.finish();
  const VerifierReport r = verify_program(p);
  ASSERT_EQ(r.issues.size(), 1u);
  EXPECT_EQ(r.issues[0].kind, VerifierIssue::Kind::FallthroughIntoPadding);
}

TEST(VerifierTest, DetectsUnknownAssertId) {
  Assembler as(0);
  as.assert_le(Reg::rax, 5, 99);
  as.hlt();
  const Program p = as.finish();
  VerifierOptions opt;
  opt.max_assert_id = 10;
  const VerifierReport r = verify_program(p, opt);
  ASSERT_EQ(r.issues.size(), 1u);
  EXPECT_EQ(r.issues[0].kind, VerifierIssue::Kind::UnknownAssertId);
  // Without the bound the program is clean.
  EXPECT_TRUE(verify_program(p).ok());
}

TEST(VerifierTest, DetectsCallToNonSymbol) {
  Assembler as(0);
  as.global("main");
  as.emit_raw({Opcode::Call, Reg::rax, Reg::rax, 2, 0});  // mid-function
  as.hlt();
  as.nop();
  as.hlt();
  const Program p = as.finish();
  const VerifierReport r = verify_program(p);
  ASSERT_EQ(r.issues.size(), 1u);
  EXPECT_EQ(r.issues[0].kind, VerifierIssue::Kind::CallTargetNotSymbol);
  VerifierOptions lax;
  lax.calls_must_hit_symbols = false;
  EXPECT_TRUE(verify_program(p, lax).ok());
}

TEST(VerifierTest, DetectsUnreachableBlock) {
  Assembler as(0);
  as.global("main");
  as.movi(Reg::rax, 42);  // 0
  as.hlt();               // 1
  as.nop();               // 2: no branch targets this, no fallthrough
  as.hlt();               // 3
  const Program p = as.finish();
  const VerifierReport r = verify_program(p);
  ASSERT_EQ(r.issues.size(), 1u);
  EXPECT_EQ(r.issues[0].kind, VerifierIssue::Kind::UnreachableBlock);
  EXPECT_EQ(r.issues[0].addr, 2u);
  EXPECT_EQ(r.issues[0].target, 3u);  // block extent
}

TEST(VerifierTest, ReturnSiteAndCodeImmediateLandingsAreReachable) {
  // Blocks entered only through a manually materialized address (MovRI
  // of a code location) or a call return site must not be flagged: the
  // CFG treats both as external entries.
  Assembler as(0);
  as.global("main");
  as.movi(Reg::rax, 5);  // 0: address of "target" below
  as.call("leaf");       // 1
  as.hlt();              // 2: return site
  as.pad_ud(1);          // 3
  as.global("leaf");
  as.ret();     // 4
  as.hlt();     // 5: only reachable via the rax value
  const Program p = as.finish();
  EXPECT_TRUE(verify_program(p).ok());
}

TEST(VerifierTest, ReportRendersIssues) {
  Assembler as(0);
  as.emit_raw({Opcode::Jmp, Reg::rax, Reg::rax, 999, 0});
  const VerifierReport r = verify_program(as.finish());
  const std::string s = r.to_string();
  EXPECT_NE(s.find("branch_out_of_range"), std::string::npos);
  EXPECT_NE(s.find("999"), std::string::npos);
}

}  // namespace
}  // namespace xentry::sim
