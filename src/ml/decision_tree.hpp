// Binary decision tree with numeric thresholds, plus the RandomTree
// variant used by the paper.
//
// Splits have the form `feature <= threshold` (go left when true); leaves
// carry the majority label and the training class counts.  RandomTree
// differs only in considering a random subset of floor(log2(F)) + 1
// candidate features at each node (Section III-B: "three in our case" for
// the five features of Table I).
#pragma once

#include <cstdint>
#include <optional>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/entropy.hpp"

namespace xentry::ml {

struct TreeNode {
  // Internal nodes: feature >= 0 and left/right are node indices.
  // Leaves: feature == -1 and `label` is the prediction.
  std::int32_t feature = -1;
  std::int64_t threshold = 0;
  std::int32_t left = -1;
  std::int32_t right = -1;
  Label label = Label::Correct;
  ClassCounts counts;  ///< training samples that reached this node

  bool is_leaf() const { return feature < 0; }
};

struct TreeParams {
  int max_depth = 24;
  std::size_t min_samples_leaf = 1;
  double min_gain = 1e-12;
  /// Number of candidate features sampled per split; 0 means "all" (the
  /// plain decision tree).  RandomTree uses floor(log2(F)) + 1.
  int random_features = 0;
  std::uint64_t seed = 1;
};

class DecisionTree {
 public:
  /// Fits the tree to `data`.  Any previous model is discarded.
  void train(const Dataset& data, const TreeParams& params = {});

  /// Predicts the label for one feature vector.  If `comparisons` is
  /// non-null it receives the number of integer comparisons performed —
  /// the cost Xentry pays per VM entry.
  Label predict(std::span<const std::int64_t> features,
                int* comparisons = nullptr) const;

  bool trained() const { return !nodes_.empty(); }
  const std::vector<TreeNode>& nodes() const { return nodes_; }
  std::size_t leaf_count() const;
  int depth() const;

  /// Pretty-prints the tree using the dataset's feature names, in the
  /// style of the paper's Fig. 6.
  std::string to_string(const std::vector<std::string>& feature_names) const;

  /// Reduced-error pruning: bottom-up, replaces a subtree by its
  /// training-majority leaf whenever the `validation` set makes the leaf
  /// at least as accurate as the subtree (J48-style post-pruning; the
  /// likely source of the paper's DecisionTree-vs-RandomTree gap).
  /// Subtrees no validation sample reaches are collapsed.  Returns the
  /// number of internal nodes removed.
  std::size_t prune_reduced_error(const Dataset& validation);

 private:
  struct Split {
    int feature = -1;
    std::int64_t threshold = 0;
    double gain = 0.0;
  };

  std::int32_t build(const Dataset& data, std::vector<std::size_t>& rows,
                     int depth, std::mt19937_64& rng);
  std::optional<Split> best_split(const Dataset& data,
                                  std::span<const std::size_t> rows,
                                  const ClassCounts& total,
                                  std::mt19937_64& rng) const;
  std::int32_t make_leaf(const ClassCounts& counts);

  std::vector<TreeNode> nodes_;
  TreeParams params_;
};

/// Convenience factory: the paper's RandomTree configuration for a dataset
/// with F features (floor(log2(F)) + 1 random candidates per node).
TreeParams random_tree_params(std::size_t num_features, std::uint64_t seed);

}  // namespace xentry::ml
