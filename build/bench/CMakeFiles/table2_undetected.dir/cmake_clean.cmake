file(REMOVE_RECURSE
  "CMakeFiles/table2_undetected.dir/table2_undetected.cpp.o"
  "CMakeFiles/table2_undetected.dir/table2_undetected.cpp.o.d"
  "table2_undetected"
  "table2_undetected.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_undetected.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
