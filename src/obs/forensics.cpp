#include "obs/forensics.hpp"

#include <ostream>

namespace xentry::obs {

void ForensicsRecord::write_json(std::ostream& os) const {
  os << "{\"diverged\": " << (diverged ? "true" : "false")
     << ", \"masked\": " << (masked ? "true" : "false");
  if (diverged) {
    os << ", \"divergence\": {\"step\": " << divergence.step
       << ", \"in_register\": " << (divergence.in_register ? "true" : "false")
       << ", \"location\": " << divergence.location
       << ", \"bit\": " << divergence.bit
       << ", \"xor_mask\": " << divergence.xor_mask << "}";
  }
  os << ", \"taint\": [";
  bool first = true;
  for (const TaintSample& s : taint) {
    if (!first) os << ", ";
    first = false;
    os << "{\"step\": " << s.step << ", \"mem_words\": " << s.mem_words
       << ", \"regs\": " << s.regs << ", \"stack_words\": " << s.stack_words
       << ", \"persistent_words\": " << s.persistent_words
       << ", \"time_words\": " << s.time_words
       << ", \"at_vm_entry\": " << (s.at_vm_entry ? "true" : "false") << "}";
  }
  os << "], \"replay_steps\": " << replay_steps
     << ", \"attributed\": " << static_cast<int>(attributed)
     << ", \"heuristic\": " << static_cast<int>(heuristic)
     << ", \"heuristic_agrees\": " << (heuristic_agrees ? "true" : "false")
     << "}";
}

}  // namespace xentry::obs
