#include "sim/memory.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <stdexcept>

namespace xentry::sim {

std::size_t Memory::map(Addr base, Addr size, Perm perm, std::string name) {
  if (size == 0) throw std::invalid_argument("Memory::map: empty region");
  for (const Region& r : regions_) {
    const bool disjoint = base + size <= r.base || r.base + r.size <= base;
    if (!disjoint) {
      throw std::invalid_argument("Memory::map: region '" + name +
                                  "' overlaps '" + r.name + "'");
    }
  }
  Region region;
  region.base = base;
  region.size = size;
  region.perm = perm;
  region.name = std::move(name);
  region.data.assign(size, 0);
  auto it = std::upper_bound(
      regions_.begin(), regions_.end(), base,
      [](Addr b, const Region& r) { return b < r.base; });
  it = regions_.insert(it, std::move(region));
  return static_cast<std::size_t>(it - regions_.begin());
}

const Memory::Region* Memory::find(Addr a) const {
  // Regions are sorted by base; find the last region with base <= a.
  auto it = std::upper_bound(
      regions_.begin(), regions_.end(), a,
      [](Addr x, const Region& r) { return x < r.base; });
  if (it == regions_.begin()) return nullptr;
  --it;
  return it->contains(a) ? &*it : nullptr;
}

Memory::Region* Memory::find(Addr a) {
  return const_cast<Region*>(static_cast<const Memory*>(this)->find(a));
}

Trap Memory::read(Addr a, Word& out) const {
  const Region* r = find(a);
  if (r == nullptr) return Trap{TrapKind::PageFault, a, 0};
  out = r->data[a - r->base];
  return {};
}

Trap Memory::write(Addr a, Word v) {
  Region* r = find(a);
  if (r == nullptr) return Trap{TrapKind::PageFault, a, 0};
  if (r->perm != Perm::ReadWrite) {
    return Trap{TrapKind::GeneralProtection, a, 0};
  }
  r->data[a - r->base] = v;
  return {};
}

Word Memory::peek(Addr a) const {
  const Region* r = find(a);
  assert(r != nullptr && "peek of unmapped address");
  if (r == nullptr) std::abort();
  return r->data[a - r->base];
}

void Memory::poke(Addr a, Word v) {
  Region* r = find(a);
  assert(r != nullptr && "poke of unmapped address");
  if (r == nullptr) std::abort();
  r->data[a - r->base] = v;
}

std::vector<std::vector<Word>> Memory::snapshot() const {
  std::vector<std::vector<Word>> snap;
  snap.reserve(regions_.size());
  for (const Region& r : regions_) snap.push_back(r.data);
  return snap;
}

void Memory::restore(const std::vector<std::vector<Word>>& snap) {
  assert(snap.size() == regions_.size());
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    assert(snap[i].size() == regions_[i].data.size());
    regions_[i].data = snap[i];
  }
}

void Memory::clear() {
  for (Region& r : regions_) std::fill(r.data.begin(), r.data.end(), 0);
}

}  // namespace xentry::sim
