// Campaign aggregation: the statistics behind Figs. 8, 9, 10 and Table II.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fault/outcome.hpp"

namespace xentry::fault {

/// Fig. 8: share of manifested errors per detection technique.
struct CoverageBreakdown {
  std::size_t manifested = 0;   ///< injections that caused failure/corruption
  std::size_t hw_exception = 0;
  std::size_t sw_assertion = 0;
  std::size_t vm_transition = 0;
  std::size_t stack_redundancy = 0;  ///< extension technique, 0 by default
  std::size_t control_flow = 0;      ///< CFI against the static CFG
  std::size_t timing = 0;            ///< timing-envelope misses
  std::size_t undetected = 0;

  double coverage() const {
    return manifested == 0
               ? 0.0
               : 1.0 - static_cast<double>(undetected) /
                           static_cast<double>(manifested);
  }
  double share(std::size_t n) const {
    return manifested == 0
               ? 0.0
               : static_cast<double>(n) / static_cast<double>(manifested);
  }
};

CoverageBreakdown coverage_breakdown(
    const std::vector<InjectionRecord>& records);

/// Fig. 9: per-consequence detection rates among long-latency errors.
struct LongLatencyRow {
  Consequence consequence = Consequence::AppSdc;
  std::size_t total = 0;
  std::size_t detected = 0;
  double rate() const {
    return total == 0
               ? 0.0
               : static_cast<double>(detected) / static_cast<double>(total);
  }
};

std::vector<LongLatencyRow> long_latency_breakdown(
    const std::vector<InjectionRecord>& records);

/// Fig. 10: detection latencies (instructions) grouped per technique.
std::map<Technique, std::vector<std::uint64_t>> latency_by_technique(
    const std::vector<InjectionRecord>& records);

/// Empirical CDF: fraction of `latencies` <= x for each x in `points`.
std::vector<double> latency_cdf(std::vector<std::uint64_t> latencies,
                                const std::vector<std::uint64_t>& points);

/// Percentile (0..100) of a latency sample; 0 for empty input.
std::uint64_t latency_percentile(std::vector<std::uint64_t> latencies,
                                 double pct);

/// Table II: distribution of undetected manifested errors by escape class.
struct UndetectedBreakdown {
  std::size_t total = 0;
  std::size_t mis_classified = 0;
  std::size_t stack_values = 0;
  std::size_t time_values = 0;
  std::size_t other_values = 0;

  double share(std::size_t n) const {
    return total == 0 ? 0.0
                      : static_cast<double>(n) / static_cast<double>(total);
  }
};

UndetectedBreakdown undetected_breakdown(
    const std::vector<InjectionRecord>& records);

/// Count of records per consequence class (general-purpose reporting).
std::map<Consequence, std::size_t> consequence_histogram(
    const std::vector<InjectionRecord>& records);

/// Exact reweighting of an importance-sampled campaign back to the
/// uniform-sampling estimand (DESIGN.md section 5f).  Every record
/// contributes `weight` to its observed consequence class and
/// `masked_weight` to Masked; with uniform sampling (all weights 1,
/// masked weights 0) the rates reduce to plain record counts, so this is
/// safe to call on any campaign.
struct WeightedRates {
  /// Sum of (weight + masked_weight) — the record count under both modes.
  double total_mass = 0;
  /// Sum of 1/weight: the uniform-campaign size this sampled campaign is
  /// statistically equivalent to.
  double effective_injections = 0;
  /// Indexed by Consequence ordinal; Masked includes the skipped mass.
  std::array<double, kNumConsequences> mass{};
  double detected_mass = 0;    ///< weight of detected records
  double manifested_mass = 0;  ///< weight of manifested records

  double rate(Consequence c) const {
    return total_mass == 0
               ? 0.0
               : mass[static_cast<std::size_t>(c)] / total_mass;
  }
  double detected_rate() const {
    return total_mass == 0 ? 0.0 : detected_mass / total_mass;
  }
  double manifested_rate() const {
    return total_mass == 0 ? 0.0 : manifested_mass / total_mass;
  }

  /// Multi-worker merge: rates are mass ratios, so merging is a plain
  /// field-wise sum — combining per-worker WeightedRates gives exactly
  /// the rates of the concatenated record streams (telemetry_tool merges
  /// many workers' streams this way without materializing all records).
  void merge_from(const WeightedRates& other) {
    total_mass += other.total_mass;
    effective_injections += other.effective_injections;
    for (std::size_t i = 0; i < mass.size(); ++i) mass[i] += other.mass[i];
    detected_mass += other.detected_mass;
    manifested_mass += other.manifested_mass;
  }
};

WeightedRates weighted_rates(const std::vector<InjectionRecord>& records);

}  // namespace xentry::fault
