#include "ml/entropy.hpp"

#include <cmath>

namespace xentry::ml {

double entropy(const ClassCounts& c) {
  const std::size_t n = c.total();
  if (n == 0 || c.pure()) return 0.0;
  const double p = static_cast<double>(c.correct) / static_cast<double>(n);
  const double q = 1.0 - p;
  return -(p * std::log2(p) + q * std::log2(q));
}

double information_gain(const ClassCounts& total, const ClassCounts& left) {
  const std::size_t n = total.total();
  if (n == 0) return 0.0;
  const ClassCounts right = total - left;
  const double pl = static_cast<double>(left.total()) / static_cast<double>(n);
  const double pr = 1.0 - pl;
  return entropy(total) - (pl * entropy(left) + pr * entropy(right));
}

}  // namespace xentry::ml
