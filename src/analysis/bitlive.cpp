#include "analysis/bitlive.hpp"

#include <bit>
#include <cstddef>

#include "analysis/artifacts.hpp"
#include "sim/isa.hpp"
#include "sim/types.hpp"

namespace xentry::analysis {
namespace {

using sim::Opcode;

constexpr std::uint64_t kAll = ~0ull;
constexpr int kRipIdx = static_cast<int>(sim::Reg::rip);
constexpr int kFlagsIdx = static_cast<int>(sim::Reg::rflags);
/// Flags with operand dependence after set_flags_cmp (OF is written 0).
constexpr std::uint64_t kCmpFlags =
    sim::kFlagZero | sim::kFlagSign | sim::kFlagCarry;

/// Union of `need >> s` over all shift amounts s ≥ 0: every bit at or
/// below the highest needed one.  Models rightward influence of carry /
/// borrow / multiply chains (result bit i depends on operand bits 0..i)
/// and of left shifts by an unknown amount.
std::uint64_t carry_up(std::uint64_t need) {
  if (need == 0) return 0;
  const int msb = 63 - std::countl_zero(need);
  return msb >= 63 ? kAll : (1ull << (msb + 1)) - 1;
}

/// Union of `need << s` over all s ≥ 0: right shift by unknown amount.
std::uint64_t spread_down(std::uint64_t need) {
  if (need == 0) return 0;
  return kAll << std::countr_zero(need);
}

/// Result bits whose value the live flag bits depend on after
/// set_flags_result: ZF reads the whole result, SF reads bit 63; CF/OF
/// are written as constant zero.
std::uint64_t result_flag_need(std::uint64_t flags_live) {
  std::uint64_t need = 0;
  if (flags_live & sim::kFlagZero) need = kAll;
  if (flags_live & sim::kFlagSign) need |= 1ull << 63;
  return need;
}

std::uint64_t jcc_flag_use(Opcode op) {
  switch (op) {
    case Opcode::Je: case Opcode::Jne:
      return sim::kFlagZero;
    case Opcode::Jl: case Opcode::Jge:
      return sim::kFlagSign;
    case Opcode::Jle: case Opcode::Jg:
      return sim::kFlagZero | sim::kFlagSign;
    case Opcode::Jb: case Opcode::Jae:
      return sim::kFlagCarry;
    default:
      return 0;
  }
}

/// Backward transfer: `s` holds live-out of the instruction on entry and
/// live-in on exit.  `gate_regs` is the bitmask (by Reg index) of GPRs
/// consumed at this address by gate-time checks when the instruction is
/// the VM-entry Hlt.
void transfer(const sim::Instruction& insn, LiveState& s,
              std::uint32_t gate_regs) {
  const int r1 = static_cast<int>(insn.r1);
  const int r2 = static_cast<int>(insn.r2);

  switch (insn.op) {
    case Opcode::Nop:
    case Opcode::Jmp:
      break;

    case Opcode::MovRR: {
      const std::uint64_t need = s[r1];
      s[r1] = 0;
      s[r2] |= need;
      break;
    }
    case Opcode::MovRI:
    case Opcode::Rdtsc:
      s[r1] = 0;
      break;
    case Opcode::Load:
      // Kill the destination first so Load r, [r + d] leaves the address
      // register fully live.  The address feeds the trap predicate and the
      // cell choice, so every bit matters.
      s[r1] = 0;
      s[r2] |= kAll;
      break;
    case Opcode::Store:
      // Persistent memory is diffed word-for-word at the gate: the stored
      // value and the address are both fully observable.
      s[r1] |= kAll;
      s[r2] |= kAll;
      break;
    case Opcode::Push:
      s[r1] |= kAll;
      s[static_cast<int>(sim::Reg::rsp)] |= kAll;
      break;
    case Opcode::Pop:
      s[r1] = 0;
      s[static_cast<int>(sim::Reg::rsp)] |= kAll;
      break;
    case Opcode::Call:
    case Opcode::Ret:
      s[static_cast<int>(sim::Reg::rsp)] |= kAll;
      break;
    case Opcode::JmpR:
      s[r1] |= kAll;
      break;

    case Opcode::AddRR:
    case Opcode::SubRR:
    case Opcode::MulRR:
    case Opcode::AndRR:
    case Opcode::OrRR:
    case Opcode::XorRR:
    case Opcode::AddRI:
    case Opcode::SubRI:
    case Opcode::AndRI:
    case Opcode::OrRI:
    case Opcode::XorRI:
    case Opcode::ShlRI:
    case Opcode::ShrRI:
    case Opcode::ShlRR:
    case Opcode::ShrRR:
    case Opcode::Neg:
    case Opcode::Not:
    case Opcode::Inc:
    case Opcode::Dec:
    case Opcode::DivR: {
      // Flag-writing ALU ops.  rip/rflags as an explicit operand would
      // make the dest and flag writes overlap; no assembled program does
      // that, so fall back to gen-everything / kill-nothing conservatism.
      if (r1 >= sim::kNumGprs || r2 >= sim::kNumGprs) {
        s[r1] |= kAll;
        s[r2] |= kAll;
        s[kFlagsIdx] |= kAll;
        break;
      }
      const std::uint64_t fneed = result_flag_need(s[kFlagsIdx]);
      switch (insn.op) {
        case Opcode::AddRR: {
          const std::uint64_t need = carry_up(s[r1] | fneed);
          s[kFlagsIdx] = 0;
          s[r1] = need;
          s[r2] |= need;
          break;
        }
        case Opcode::AddRI:
        case Opcode::Inc:
        case Opcode::Dec:
        case Opcode::Neg: {
          const std::uint64_t need = carry_up(s[r1] | fneed);
          s[kFlagsIdx] = 0;
          s[r1] = need;
          break;
        }
        case Opcode::SubRR: {
          // Sub sets flags via set_flags_cmp: ZF/SF/CF compare the full
          // operands, so any live compare flag makes both fully live.
          const bool flags = (s[kFlagsIdx] & kCmpFlags) != 0;
          const std::uint64_t need = flags ? kAll : carry_up(s[r1]);
          s[kFlagsIdx] = 0;
          s[r1] = need;
          s[r2] |= need;
          break;
        }
        case Opcode::SubRI: {
          const bool flags = (s[kFlagsIdx] & kCmpFlags) != 0;
          s[kFlagsIdx] = 0;
          s[r1] = flags ? kAll : carry_up(s[r1]);
          break;
        }
        case Opcode::MulRR: {
          const std::uint64_t need = carry_up(s[r1] | fneed);
          s[kFlagsIdx] = 0;
          s[r1] = need;
          s[r2] |= need;
          break;
        }
        case Opcode::AndRR:
        case Opcode::OrRR: {
          // Bit i of the result depends only on bit i of each operand.
          const std::uint64_t need = s[r1] | fneed;
          s[kFlagsIdx] = 0;
          s[r1] = need;
          s[r2] |= need;
          break;
        }
        case Opcode::AndRI: {
          const std::uint64_t need = s[r1] | fneed;
          s[kFlagsIdx] = 0;
          s[r1] = need & static_cast<std::uint64_t>(insn.imm);
          break;
        }
        case Opcode::OrRI: {
          const std::uint64_t need = s[r1] | fneed;
          s[kFlagsIdx] = 0;
          s[r1] = need & ~static_cast<std::uint64_t>(insn.imm);
          break;
        }
        case Opcode::XorRR: {
          if (r1 == r2) {
            // Canonical zeroing idiom: the result is 0 for every input.
            s[kFlagsIdx] = 0;
            s[r1] = 0;
            break;
          }
          const std::uint64_t need = s[r1] | fneed;
          s[kFlagsIdx] = 0;
          s[r1] = need;
          s[r2] |= need;
          break;
        }
        case Opcode::XorRI:
        case Opcode::Not: {
          // Bitwise bijection per bit position.
          const std::uint64_t need = s[r1] | fneed;
          s[kFlagsIdx] = 0;
          s[r1] = need;
          break;
        }
        case Opcode::ShlRI: {
          const int sh = static_cast<int>(insn.imm) & 63;
          const std::uint64_t need = s[r1] | fneed;
          s[kFlagsIdx] = 0;
          s[r1] = need >> sh;
          break;
        }
        case Opcode::ShrRI: {
          const int sh = static_cast<int>(insn.imm) & 63;
          const std::uint64_t need = s[r1] | fneed;
          s[kFlagsIdx] = 0;
          s[r1] = need << sh;
          break;
        }
        case Opcode::ShlRR: {
          const std::uint64_t need = s[r1] | fneed;
          s[kFlagsIdx] = 0;
          s[r1] = carry_up(need);
          s[r2] |= 0x3f;
          break;
        }
        case Opcode::ShrRR: {
          const std::uint64_t need = s[r1] | fneed;
          s[kFlagsIdx] = 0;
          s[r1] = spread_down(need);
          s[r2] |= 0x3f;
          break;
        }
        case Opcode::DivR: {
          // The divisor decides the #DE trap, so it is live in full even
          // when every output is dead; the trap path is terminal, which
          // makes the rax/rdx kills on the fall-through sound.
          const std::uint64_t need =
              s[static_cast<int>(sim::Reg::rax)] |
              s[static_cast<int>(sim::Reg::rdx)] | fneed;
          s[kFlagsIdx] = 0;
          s[static_cast<int>(sim::Reg::rax)] = need != 0 ? kAll : 0;
          s[static_cast<int>(sim::Reg::rdx)] = 0;
          s[r1] |= kAll;
          break;
        }
        default:
          break;
      }
      break;
    }

    case Opcode::CmpRR: {
      const bool flags = (s[kFlagsIdx] & kCmpFlags) != 0;
      s[kFlagsIdx] = 0;
      // cmp r, r sets ZF=1, SF=CF=0 for every input: no dependence.
      if (flags && r1 != r2) {
        s[r1] |= kAll;
        s[r2] |= kAll;
      }
      break;
    }
    case Opcode::CmpRI: {
      const bool flags = (s[kFlagsIdx] & kCmpFlags) != 0;
      s[kFlagsIdx] = 0;
      if (flags) s[r1] |= kAll;
      break;
    }
    case Opcode::TestRR: {
      const std::uint64_t need = result_flag_need(s[kFlagsIdx]);
      s[kFlagsIdx] = 0;
      s[r1] |= need;
      s[r2] |= need;
      break;
    }
    case Opcode::TestRI: {
      const std::uint64_t need =
          result_flag_need(s[kFlagsIdx]) & static_cast<std::uint64_t>(insn.imm);
      s[kFlagsIdx] = 0;
      s[r1] |= need;
      break;
    }

    case Opcode::Je: case Opcode::Jne:
    case Opcode::Jl: case Opcode::Jle:
    case Opcode::Jg: case Opcode::Jge:
    case Opcode::Jb: case Opcode::Jae:
      s[kFlagsIdx] |= jcc_flag_use(insn.op);
      break;

    case Opcode::AssertLeRI:
    case Opcode::AssertGeRI:
    case Opcode::AssertEqRI:
    case Opcode::AssertNeRI:
      s[r1] |= kAll;
      break;
    case Opcode::AssertEqRR:
    case Opcode::AssertLtRR:
      s[r1] |= kAll;
      s[r2] |= kAll;
      break;

    case Opcode::Hlt:
      // The gate: execution of this activation ends here.  Nothing past
      // the Hlt reads registers except gate-time consumers — derived range
      // assertions (and the CFI edge check, which reads only rip).
      s.fill(0);
      for (int r = 0; r < sim::kNumGprs; ++r) {
        if (gate_regs & (1u << r)) s[r] = kAll;
      }
      break;

    case Opcode::Ud:
      // Never inside a block; defensive all-live if it ever is.
      s.fill(kAll);
      break;
  }

  // Every fetch consumes the whole instruction pointer: a flip lands in
  // padding, out of the image, or on a different instruction.
  s[kRipIdx] = kAll;
}

LiveState all_live() {
  LiveState s;
  s.fill(kAll);
  return s;
}

LiveState block_out(const ControlFlowGraph& cfg, const BasicBlock& block,
                    const std::vector<LiveState>& in_first) {
  if (block.accept_any_succ) return all_live();
  LiveState out{};
  for (std::uint32_t succ : block.succs) {
    const LiveState& in = in_first[succ];
    for (int r = 0; r < sim::kNumArchRegs; ++r) out[r] |= in[r];
  }
  (void)cfg;
  return out;
}

}  // namespace

double VulnerabilityMap::masked_fraction() const {
  if (live.empty()) return 0.0;
  std::uint64_t total_live = 0;
  for (std::uint16_t bits : live_bits) total_live += bits;
  const double total =
      static_cast<double>(live.size()) * sim::kNumArchRegs * sim::kBitsPerReg;
  return 1.0 - static_cast<double>(total_live) / total;
}

VulnerabilityMap compute_bit_liveness(
    const sim::Program& program, const ControlFlowGraph& cfg,
    const std::vector<DerivedAssertion>& derived) {
  VulnerabilityMap map;
  map.base = program.base();
  map.code_size = program.size();
  if (program.empty()) return map;

  // Gate-time register consumers, per slot: the derived range assertions
  // checked when fault-free execution halts at that address.
  std::vector<std::uint32_t> gate_regs(program.size(), 0);
  for (const DerivedAssertion& d : derived) {
    const sim::Addr off = d.addr - program.base();
    if (off < program.size() && d.reg < sim::kNumGprs) {
      gate_regs[off] |= 1u << d.reg;
    }
  }

  // Round-robin to fixpoint over the finite union lattice.  Blocks are
  // ordered by address and the CFG is mostly forward, so sweeping in
  // reverse order converges in a handful of passes.
  std::vector<LiveState> in_first(cfg.blocks.size(), LiveState{});
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = cfg.blocks.size(); i-- > 0;) {
      const BasicBlock& block = cfg.blocks[i];
      LiveState s = block_out(cfg, block, in_first);
      for (sim::Addr a = block.last + 1; a-- > block.first;) {
        transfer(program.at(a), s, gate_regs[a - program.base()]);
      }
      if (s != in_first[i]) {
        in_first[i] = s;
        changed = true;
      }
    }
  }

  // Final pass: materialize converged live-in masks per slot.  Slots in
  // no block (Ud padding) stay fully live.
  map.live.assign(program.size(), all_live());
  for (std::size_t i = 0; i < cfg.blocks.size(); ++i) {
    const BasicBlock& block = cfg.blocks[i];
    LiveState s = block_out(cfg, block, in_first);
    for (sim::Addr a = block.last + 1; a-- > block.first;) {
      transfer(program.at(a), s, gate_regs[a - program.base()]);
      map.live[a - program.base()] = s;
    }
  }

  map.live_bits.resize(program.size());
  map.activated_live_frac.resize(program.size());
  for (std::size_t off = 0; off < program.size(); ++off) {
    const LiveState& s = map.live[off];
    unsigned total = 0;
    for (int r = 0; r < sim::kNumArchRegs; ++r) {
      total += static_cast<unsigned>(std::popcount(s[r]));
    }
    map.live_bits[off] = static_cast<std::uint16_t>(total);

    // Candidate set of an activation-biased draw at this slot: the
    // registers the instruction reads, plus rip (mirrors
    // draw_activated_injection).
    const std::uint32_t cand =
        sim::regs_read(program.at(program.base() + off)) |
        sim::reg_bit(sim::Reg::rip);
    unsigned n = 0;
    unsigned live = 0;
    for (int r = 0; r < sim::kNumArchRegs; ++r) {
      if (cand & (1u << r)) {
        ++n;
        live += static_cast<unsigned>(std::popcount(s[r]));
      }
    }
    map.activated_live_frac[off] =
        n == 0 ? 1.0
               : static_cast<double>(live) /
                     (static_cast<double>(n) * sim::kBitsPerReg);
  }
  return map;
}

}  // namespace xentry::analysis
