// Fleet coordination correctness: the deterministic partition of the
// injection space, the work-unit identity carried in checkpoint-journal
// headers, and the headline guarantee — a multi-process fleet campaign
// (including one whose worker is killed mid-flight and restarted from
// its own checkpoint) produces the bit-identical record stream, records
// digest, and timing-stripped merged metrics of the single-process run
// with shards = units.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/artifacts.hpp"
#include "fault/campaign.hpp"
#include "fault/checkpoint.hpp"
#include "fault/fleet.hpp"
#include "fault/record_io.hpp"
#include "hv/microvisor.hpp"
#include "obs/record_sink.hpp"
#include "obs/snapshot.hpp"

namespace xentry::fault {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

std::string stripped_metrics_json(const obs::MetricsRegistry& reg) {
  std::ostringstream os;
  obs::strip_timing_metrics(reg).write_json(os);
  return os.str();
}

std::shared_ptr<const analysis::AnalysisArtifacts> analyze_machine(
    const hv::MicrovisorOptions& opt) {
  const hv::Microvisor mv = hv::build_microvisor(opt);
  return std::make_shared<const analysis::AnalysisArtifacts>(
      analysis::analyze_program(mv.program, hv::analyze_options(mv)));
}

TEST(FleetPartition, CoversEveryUnitExactlyOnce) {
  for (const int units : {1, 2, 4, 6, 13}) {
    for (const int workers : {1, 2, 3, 4, 7}) {
      if (workers > units) continue;  // run_fleet rejects idle workers
      std::set<int> seen;
      for (int w = 0; w < workers; ++w) {
        const std::vector<int> mine = fleet_units_for_worker(units, workers, w);
        EXPECT_FALSE(mine.empty()) << units << "/" << workers << "/" << w;
        for (std::size_t i = 1; i < mine.size(); ++i) {
          EXPECT_LT(mine[i - 1], mine[i]) << "assignment must be ascending";
        }
        for (const int u : mine) {
          EXPECT_TRUE(seen.insert(u).second)
              << "unit " << u << " assigned twice (units=" << units
              << " workers=" << workers << ")";
        }
      }
      EXPECT_EQ(seen.size(), static_cast<std::size_t>(units));
      EXPECT_EQ(*seen.begin(), 0);
      EXPECT_EQ(*seen.rbegin(), units - 1);
    }
  }
}

TEST(FleetPartition, AssignmentIsRoundRobin) {
  // Unit u belongs to worker u % workers: the partition depends only on
  // (unit_count, workers), never on timing or process identity.
  EXPECT_EQ(fleet_units_for_worker(6, 3, 0), (std::vector<int>{0, 3}));
  EXPECT_EQ(fleet_units_for_worker(6, 3, 1), (std::vector<int>{1, 4}));
  EXPECT_EQ(fleet_units_for_worker(6, 3, 2), (std::vector<int>{2, 5}));
  EXPECT_EQ(fleet_units_for_worker(5, 2, 0), (std::vector<int>{0, 2, 4}));
  EXPECT_EQ(fleet_units_for_worker(5, 2, 1), (std::vector<int>{1, 3}));
}

TEST(FleetPaths, LayoutUnderCampaignDir) {
  EXPECT_EQ(fleet_records_path("/d"), "/d/records");
  EXPECT_EQ(fleet_checkpoint_path("/d", 2), "/d/ckpt.worker2");
  EXPECT_EQ(fleet_heartbeat_path("/d", 0), "/d/hb.worker0.json");
  EXPECT_EQ(fleet_status_path("/d"), "/d/status.json");
}

/// Fresh scratch directory per test; removed on teardown.
class FleetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "fleet_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  CampaignConfig base_cfg(bool importance) {
    CampaignConfig cfg;
    cfg.injections = 240;
    cfg.seed = 31;
    cfg.xentry.transition_detection = false;  // no model installed
    cfg.obs.metrics = true;
    cfg.streaming.checkpoint_every = 16;
    if (importance) {
      cfg.analysis = analyze_machine(cfg.machine);
      cfg.sampling.importance = true;
    }
    return cfg;
  }

  /// The single-process reference: same campaign, shards = units.
  CampaignResult run_reference(int units, bool importance) {
    CampaignConfig cfg = base_cfg(importance);
    cfg.shards = units;
    cfg.streaming.records_path = dir_ + "/ref";
    cfg.streaming.checkpoint_path = dir_ + "/ref.ckpt";
    return run_campaign(cfg);
  }

  FleetOptions fleet_opts(int workers, int units, bool importance,
                          int sim_kill) {
    FleetOptions fo;
    fo.base = base_cfg(importance);
    fo.units = units;
    fo.workers = workers;
    fo.dir = dir_ + "/fleet";
    std::filesystem::create_directories(fo.dir);
    fo.status_interval_sec = 0.05;
    fo.worker_heartbeat_sec = 0.05;
    fo.stall_timeout_sec = 60;  // no spurious stall kills under CI load
    fo.max_restarts = 2;
    fo.simulate_kill_worker0_after = sim_kill;
    return fo;
  }

  std::string dir_;
};

void expect_fleet_matches_reference(FleetTest* t, int workers, int units,
                                    bool importance, int sim_kill,
                                    FleetOptions opts,
                                    const CampaignResult& ref,
                                    const std::string& dir) {
  const FleetResult res = run_fleet(opts);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_TRUE(res.digest_cross_checked);
  ASSERT_EQ(res.records.size(), ref.records.size());
  EXPECT_EQ(res.digest, records_digest(ref.records))
      << "fleet digest must match the single-process run bit for bit "
      << "(workers=" << workers << " units=" << units
      << " importance=" << importance << " sim_kill=" << sim_kill << ")";
  if (sim_kill > 0) {
    EXPECT_GE(res.restarts, 1) << "the simulated kill must force a restart";
    EXPECT_GE(res.worker_restarts[0], 1);
  } else {
    EXPECT_EQ(res.restarts, 0);
  }

  // Stronger than digest equality: every unit's persisted stream is
  // byte-identical to the reference's shard stream.
  for (int u = 0; u < units; ++u) {
    const auto up = static_cast<std::size_t>(u);
    EXPECT_EQ(slurp(obs::ShardedFileSink::shard_path(
                  fleet_records_path(opts.dir), obs::RecordFormat::kJsonl, up)),
              slurp(obs::ShardedFileSink::shard_path(
                  dir + "/ref", obs::RecordFormat::kJsonl, up)))
        << "unit " << u;
  }

  // Merged sidecar metrics (timing stripped) match the reference's
  // registry — the observability plane reconstructs the same campaign.
  EXPECT_EQ(stripped_metrics_json(res.metrics),
            stripped_metrics_json(ref.metrics));

  // Weighted rates survive the merge.
  EXPECT_DOUBLE_EQ(res.rates.effective_injections,
                   weighted_rates(ref.records).effective_injections);
  (void)t;
}

#define FLEET_MATCHES_REFERENCE(workers, units, importance, sim_kill)        \
  do {                                                                       \
    const CampaignResult ref = run_reference(units, importance);             \
    expect_fleet_matches_reference(                                          \
        this, workers, units, importance, sim_kill,                          \
        fleet_opts(workers, units, importance, sim_kill), ref, dir_);        \
  } while (0)

TEST_F(FleetTest, OneWorkerUniformKillRestartMatchesReference) {
  FLEET_MATCHES_REFERENCE(1, 2, false, 21);
}

TEST_F(FleetTest, TwoWorkersUniformKillRestartMatchesReference) {
  FLEET_MATCHES_REFERENCE(2, 4, false, 21);
}

TEST_F(FleetTest, FourWorkersUniformKillRestartMatchesReference) {
  FLEET_MATCHES_REFERENCE(4, 8, false, 17);
}

TEST_F(FleetTest, OneWorkerImportanceKillRestartMatchesReference) {
  FLEET_MATCHES_REFERENCE(1, 2, true, 21);
}

TEST_F(FleetTest, TwoWorkersImportanceKillRestartMatchesReference) {
  FLEET_MATCHES_REFERENCE(2, 4, true, 21);
}

TEST_F(FleetTest, FourWorkersImportanceKillRestartMatchesReference) {
  FLEET_MATCHES_REFERENCE(4, 8, true, 17);
}

TEST_F(FleetTest, CleanRunWithoutChaosMatchesReference) {
  FLEET_MATCHES_REFERENCE(3, 6, false, 0);
}

TEST_F(FleetTest, StatusFileIsPublished) {
  const FleetOptions opts = fleet_opts(2, 4, false, 0);
  const FleetResult res = run_fleet(opts);
  ASSERT_TRUE(res.ok) << res.error;
  const std::string status = slurp(fleet_status_path(opts.dir));
  EXPECT_NE(status.find("\"schema\":\"xentry.fleet.status.v1\""),
            std::string::npos);
  EXPECT_NE(status.find("\"state\":\"done\""), std::string::npos);
}

TEST_F(FleetTest, HeaderUnitsRoundTripAndGuardResumeIdentity) {
  // A fleet worker's journal header records its unit assignment.
  CampaignConfig cfg = base_cfg(false);
  cfg.fleet.unit_count = 4;
  cfg.fleet.units = {0, 2};
  cfg.streaming.records_path = dir_ + "/w";
  cfg.streaming.checkpoint_path = dir_ + "/w.ckpt";
  cfg.streaming.abort_after = 20;  // leave a resumable journal behind
  run_campaign(cfg);

  const JournalContents j = read_journal(cfg.streaming.checkpoint_path);
  ASSERT_TRUE(j.valid);
  EXPECT_EQ(j.header.shards, 4);  // the unit space, not the active subset
  EXPECT_EQ(j.header.units, (std::vector<int>{0, 2}));

  // Resuming under a different unit assignment would splice streams from
  // two different partitions — rejected like any identity mismatch.
  CampaignConfig other = cfg;
  other.streaming.abort_after = 0;
  other.fleet.units = {0, 3};
  EXPECT_THROW(run_campaign(other), std::invalid_argument);

  // The correct assignment resumes fine.
  cfg.streaming.abort_after = 0;
  const CampaignResult res = run_campaign(cfg);
  EXPECT_TRUE(res.resumed);
}

TEST_F(FleetTest, SingleProcessJournalHeaderHasNoUnits) {
  // The "units" key is emitted only for fleet workers: single-process
  // journals stay byte-identical to pre-fleet ones.
  CampaignConfig cfg = base_cfg(false);
  cfg.shards = 2;
  cfg.streaming.records_path = dir_ + "/solo";
  cfg.streaming.checkpoint_path = dir_ + "/solo.ckpt";
  run_campaign(cfg);
  const JournalContents j = read_journal(cfg.streaming.checkpoint_path);
  ASSERT_TRUE(j.valid);
  EXPECT_TRUE(j.header.units.empty());
  EXPECT_EQ(slurp(cfg.streaming.checkpoint_path)
                .find("\"units\""),
            std::string::npos);
}

TEST_F(FleetTest, FleetConfigValidation) {
  const auto valid = [this] {
    CampaignConfig cfg = base_cfg(false);
    cfg.fleet.unit_count = 4;
    cfg.fleet.units = {1, 3};
    cfg.streaming.records_path = dir_ + "/v";
    return cfg;
  };
  EXPECT_NO_THROW(validate_campaign_config(valid()));

  auto c = valid();
  c.streaming.records_path.clear();  // fleet merge needs durable streams
  EXPECT_THROW(validate_campaign_config(c), std::invalid_argument);

  c = valid();
  c.fleet.unit_count = 500;  // > injections: single-process run would
  EXPECT_THROW(validate_campaign_config(c),  // clamp, breaking bit-identity
               std::invalid_argument);

  c = valid();
  c.fleet.units.clear();
  EXPECT_THROW(validate_campaign_config(c), std::invalid_argument);

  c = valid();
  c.fleet.units = {1, 4};  // out of range
  EXPECT_THROW(validate_campaign_config(c), std::invalid_argument);

  c = valid();
  c.fleet.units = {1, 1};  // duplicate
  EXPECT_THROW(validate_campaign_config(c), std::invalid_argument);

  c = valid();
  c.fleet.unit_count = 0;  // units without a unit space
  EXPECT_THROW(validate_campaign_config(c), std::invalid_argument);

  c = valid();
  c.heartbeat.straggler_fraction = 1.0;  // must be in [0, 1)
  EXPECT_THROW(validate_campaign_config(c), std::invalid_argument);
}

TEST_F(FleetTest, RunFleetRejectsBadOptions) {
  FleetOptions fo = fleet_opts(2, 4, false, 0);
  fo.workers = 0;
  EXPECT_FALSE(run_fleet(fo).ok);

  fo = fleet_opts(2, 4, false, 0);
  fo.dir.clear();
  EXPECT_FALSE(run_fleet(fo).ok);

  fo = fleet_opts(4, 2, false, 0);  // more workers than units
  EXPECT_FALSE(run_fleet(fo).ok);
}

}  // namespace
}  // namespace xentry::fault
