# Empty compiler generated dependencies file for ml_accuracy.
# This may be replaced when dependencies are built.
