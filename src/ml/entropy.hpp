// Entropy and information-gain computations (paper Section III-B).
//
// The splitting procedure during tree construction maximizes the expected
// entropy deduction D(T, T_L, T_R) = Entropy(T) - (P_L * Entropy(T_L) +
// P_R * Entropy(T_R)) over candidate cut points.
#pragma once

#include <cstddef>

namespace xentry::ml {

/// Class-count pair for the binary (correct/incorrect) problem.
struct ClassCounts {
  std::size_t correct = 0;
  std::size_t incorrect = 0;

  std::size_t total() const { return correct + incorrect; }
  bool pure() const { return correct == 0 || incorrect == 0; }

  ClassCounts& operator+=(const ClassCounts& o) {
    correct += o.correct;
    incorrect += o.incorrect;
    return *this;
  }
  ClassCounts operator-(const ClassCounts& o) const {
    return {correct - o.correct, incorrect - o.incorrect};
  }
};

/// Shannon entropy (bits) of a two-class distribution.  Empty sets have
/// zero entropy.
double entropy(const ClassCounts& c);

/// Expected entropy deduction of splitting `total` into `left` and
/// `total - left`.
double information_gain(const ClassCounts& total, const ClassCounts& left);

}  // namespace xentry::ml
