# Empty compiler generated dependencies file for xentry_sim.
# This may be replaced when dependencies are built.
