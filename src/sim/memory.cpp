#include "sim/memory.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdlib>
#include <stdexcept>

namespace xentry::sim {

namespace {

// Campaign shards construct Machines (and thus Memories) concurrently.
std::uint64_t next_memory_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

Memory::Memory() : id_(next_memory_id()) {}

Memory::Memory(const Memory& other)
    : regions_(other.regions_),
      sync_(other.sync_),
      id_(next_memory_id()),
      hint_(other.hint_),
      hint2_(other.hint2_) {}

Memory& Memory::operator=(const Memory& other) {
  if (this != &other) {
    regions_ = other.regions_;
    sync_ = other.sync_;
    hint_ = other.hint_;
    hint2_ = other.hint2_;
    // Fresh identity: snapshots captured from the old contents must not
    // be mistaken for captures of the newly assigned contents.
    id_ = next_memory_id();
  }
  return *this;
}

std::size_t Memory::map(Addr base, Addr size, Perm perm, std::string name) {
  if (size == 0) throw std::invalid_argument("Memory::map: empty region");
  for (const Region& r : regions_) {
    const bool disjoint = base + size <= r.base || r.base + r.size <= base;
    if (!disjoint) {
      throw std::invalid_argument("Memory::map: region '" + name +
                                  "' overlaps '" + r.name + "'");
    }
  }
  Region region;
  region.base = base;
  region.size = size;
  region.perm = perm;
  region.name = std::move(name);
  region.data.assign(size, 0);
  auto it = std::upper_bound(
      regions_.begin(), regions_.end(), base,
      [](Addr b, const Region& r) { return b < r.base; });
  it = regions_.insert(it, std::move(region));
  const std::size_t idx = static_cast<std::size_t>(it - regions_.begin());
  sync_.insert(sync_.begin() + static_cast<std::ptrdiff_t>(idx), SyncState{});
  hint_ = idx;
  return idx;
}

const Memory::Region* Memory::find(Addr a) const {
  // Straight-line code hits the same region on almost every access; try
  // the two last-hit regions before falling back to the binary search.
  if (hint_ < regions_.size() && regions_[hint_].contains(a)) {
    return &regions_[hint_];
  }
  if (hint2_ < regions_.size() && regions_[hint2_].contains(a)) {
    return &regions_[hint2_];
  }
  // Regions are sorted by base; find the last region with base <= a.
  auto it = std::upper_bound(
      regions_.begin(), regions_.end(), a,
      [](Addr x, const Region& r) { return x < r.base; });
  if (it == regions_.begin()) return nullptr;
  --it;
  if (!it->contains(a)) return nullptr;
  hint2_ = hint_;
  hint_ = static_cast<std::size_t>(it - regions_.begin());
  return &*it;
}

Memory::Region* Memory::find(Addr a) {
  return const_cast<Region*>(static_cast<const Memory*>(this)->find(a));
}

Trap Memory::read_slow(Addr a, Word& out) const {
  const Region* r = find(a);
  if (r == nullptr) return Trap{TrapKind::PageFault, a, 0};
  out = r->data[a - r->base];
  return {};
}

Trap Memory::write_slow(Addr a, Word v) {
  Region* r = find(a);
  if (r == nullptr) return Trap{TrapKind::PageFault, a, 0};
  if (r->perm != Perm::ReadWrite) {
    return Trap{TrapKind::GeneralProtection, a, 0};
  }
  r->data[a - r->base] = v;
  ++r->gen;
  return {};
}

Word Memory::peek_slow(Addr a) const {
  const Region* r = find(a);
  assert(r != nullptr && "peek of unmapped address");
  if (r == nullptr) std::abort();
  return r->data[a - r->base];
}

void Memory::poke_slow(Addr a, Word v) {
  Region* r = find(a);
  assert(r != nullptr && "poke of unmapped address");
  if (r == nullptr) std::abort();
  r->data[a - r->base] = v;
  ++r->gen;
}

Word* Memory::poke_span(Addr a, Addr len) {
  Region* r = find(a);
  assert(r != nullptr && "poke_span of unmapped address");
  if (r == nullptr || len == 0 || a - r->base + len > r->size) std::abort();
  ++r->gen;
  return &r->data[a - r->base];
}

Memory::DirectSpan Memory::direct_span(Addr a) {
  Region* r = find(a);
  DirectSpan s;
  if (r == nullptr) return s;
  s.base = r->base;
  s.size = r->size;
  s.data = r->data.data();
  s.gen = &r->gen;
  s.writable = r->perm == Perm::ReadWrite;
  return s;
}

Memory::Snapshot Memory::snapshot() const {
  Snapshot snap;
  snapshot_into(snap);
  return snap;
}

void Memory::snapshot_into(Snapshot& out) const {
  const bool fresh =
      out.source_id != id_ || out.regions.size() != regions_.size();
  if (fresh) {
    out.regions.clear();
    out.regions.resize(regions_.size());
  }
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    Snapshot::RegionImage& img = out.regions[i];
    if (!fresh && img.gen == regions_[i].gen &&
        img.data.size() == regions_[i].data.size()) {
      continue;  // unchanged since the last capture into `out`
    }
    img.data = regions_[i].data;  // assign reuses existing capacity
    img.gen = regions_[i].gen;
  }
  out.source_id = id_;
}

void Memory::restore(const Snapshot& snap) {
  assert(snap.regions.size() == regions_.size());
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    Region& r = regions_[i];
    SyncState& s = sync_[i];
    assert(snap.regions[i].data.size() == r.data.size());
    const bool in_sync = s.source_id != 0 &&
                         s.source_id == snap.source_id &&
                         s.source_gen == snap.regions[i].gen &&
                         s.own_gen == r.gen;
    if (!in_sync) {
      // std::copy into the existing buffer: no reallocation.
      std::copy(snap.regions[i].data.begin(), snap.regions[i].data.end(),
                r.data.begin());
      ++r.gen;
    }
    s.source_id = snap.source_id;
    s.source_gen = snap.regions[i].gen;
    s.own_gen = r.gen;
  }
}

std::size_t Memory::diff_spans(const Memory& other,
                               std::vector<WordDiff>& out) const {
  assert(other.regions_.size() == regions_.size());
  out.clear();
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    const Region& a = regions_[i];
    const Region& b = other.regions_[i];
    assert(a.base == b.base && a.size == b.size);
    if (a.data == b.data) continue;  // memcmp gate: no diffs in this region
    for (Addr off = 0; off < a.size; ++off) {
      const Word x = a.data[off] ^ b.data[off];
      if (x != 0) out.push_back(WordDiff{a.base + off, x});
    }
  }
  return out.size();
}

bool Memory::differs_from(const Memory& other) const {
  assert(other.regions_.size() == regions_.size());
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    if (regions_[i].data != other.regions_[i].data) return true;
  }
  return false;
}

void Memory::clear() {
  for (Region& r : regions_) {
    std::fill(r.data.begin(), r.data.end(), 0);
    ++r.gen;
  }
}

}  // namespace xentry::sim
