file(REMOVE_RECURSE
  "CMakeFiles/test_xentry.dir/xentry/assertions_test.cpp.o"
  "CMakeFiles/test_xentry.dir/xentry/assertions_test.cpp.o.d"
  "CMakeFiles/test_xentry.dir/xentry/cost_model_test.cpp.o"
  "CMakeFiles/test_xentry.dir/xentry/cost_model_test.cpp.o.d"
  "CMakeFiles/test_xentry.dir/xentry/countermeasures_test.cpp.o"
  "CMakeFiles/test_xentry.dir/xentry/countermeasures_test.cpp.o.d"
  "CMakeFiles/test_xentry.dir/xentry/exception_parser_test.cpp.o"
  "CMakeFiles/test_xentry.dir/xentry/exception_parser_test.cpp.o.d"
  "CMakeFiles/test_xentry.dir/xentry/features_test.cpp.o"
  "CMakeFiles/test_xentry.dir/xentry/features_test.cpp.o.d"
  "CMakeFiles/test_xentry.dir/xentry/framework_test.cpp.o"
  "CMakeFiles/test_xentry.dir/xentry/framework_test.cpp.o.d"
  "CMakeFiles/test_xentry.dir/xentry/recovery_engine_test.cpp.o"
  "CMakeFiles/test_xentry.dir/xentry/recovery_engine_test.cpp.o.d"
  "CMakeFiles/test_xentry.dir/xentry/recovery_test.cpp.o"
  "CMakeFiles/test_xentry.dir/xentry/recovery_test.cpp.o.d"
  "test_xentry"
  "test_xentry.pdb"
  "test_xentry[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xentry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
