#include "sim/program.hpp"

#include <stdexcept>

namespace xentry::sim {

Addr Program::symbol(const std::string& name) const {
  auto it = symbols_.find(name);
  if (it == symbols_.end()) {
    throw std::out_of_range("Program: unknown symbol '" + name + "'");
  }
  return it->second;
}

const std::vector<bool>& compute_landing_sites(const Program& program) {
  return program.landing_sites();
}

namespace {

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  constexpr std::uint64_t kFnvPrime = 1099511628211ull;
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

std::uint64_t instruction_fnv(std::uint64_t h, const Instruction& insn) {
  h = fnv_mix(h, static_cast<std::uint64_t>(insn.op));
  h = fnv_mix(h, static_cast<std::uint64_t>(insn.r1));
  h = fnv_mix(h, static_cast<std::uint64_t>(insn.r2));
  h = fnv_mix(h, static_cast<std::uint64_t>(insn.imm));
  h = fnv_mix(h, insn.aux);
  return h;
}

std::uint64_t program_text_signature(const Program& program) {
  std::uint64_t h = fnv_mix(kFnvOffsetBasis, program.base());
  for (Addr a = program.base(); a < program.end(); ++a) {
    h = instruction_fnv(h, program.at(a));
  }
  return h;
}

void Program::compute_landing() {
  landing_.assign(code_.size(), false);
  auto mark = [this](Addr target) {
    const Addr off = target - base_;
    if (off < code_.size()) landing_[off] = true;
  };
  for (std::size_t i = 0; i < code_.size(); ++i) {
    const Instruction& insn = code_[i];
    if (insn.op == Opcode::Jmp || insn.op == Opcode::Call ||
        is_cond_branch(insn.op) || insn.op == Opcode::MovRI) {
      mark(static_cast<Addr>(insn.imm));
    }
    if (insn.op == Opcode::Call) mark(base_ + i + 1);  // return site
  }
  for (const auto& [name, addr] : symbols_) mark(addr);
}

void Program::compute_fusion() {
  for (Instruction& insn : code_) insn.fused = 0;
  if (code_.size() < 2) return;

  // A pair whose *tail* (the Jcc slot) is a landing point must not fuse —
  // a jump arriving there must execute the bare Jcc, and fusing the pair
  // would make the head's basic block extend across an incoming edge.
  for (std::size_t i = 0; i + 1 < code_.size(); ++i) {
    if (!is_fusable_head(code_[i].op)) continue;
    if (!is_cond_branch(code_[i + 1].op)) continue;
    if (landing_[i + 1]) continue;
    code_[i].fused = 1;
  }
}

std::string Program::symbol_at(Addr rip) const {
  std::string best;
  Addr best_addr = 0;
  for (const auto& [name, addr] : symbols_) {
    if (addr <= rip && (best.empty() || addr >= best_addr)) {
      best = name;
      best_addr = addr;
    }
  }
  return best;
}

}  // namespace xentry::sim
