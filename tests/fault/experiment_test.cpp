#include "fault/experiment.hpp"

#include <gtest/gtest.h>

namespace xentry::fault {
namespace {

struct Rig {
  hv::Machine golden;
  hv::Machine faulty;
  Xentry xentry;
  InjectionExperiment exp{golden, faulty, xentry};
};

TEST(ExperimentTest, GoldenProbeRestoresState) {
  Rig rig;
  const auto act = rig.golden.make_activation(
      hv::ExitReason::hypercall(hv::Hypercall::mmu_update), 5);
  const auto before = rig.golden.memory().snapshot();
  auto probe = rig.exp.probe_golden(act);
  EXPECT_GT(probe.steps, 0u);
  EXPECT_EQ(probe.trace.size(), probe.steps);
  EXPECT_EQ(rig.golden.memory().snapshot(), before);
}

TEST(ExperimentTest, AdvanceKeepsMachinesInLockstep) {
  Rig rig;
  for (int i = 0; i < 5; ++i) {
    rig.exp.advance(rig.golden.make_activation(
        hv::ExitReason::apic(hv::ApicInterrupt::timer), 100 + i));
  }
  EXPECT_TRUE(hv::Machine::diff_persistent_state(rig.golden, rig.faulty)
                  .empty());
}

TEST(ExperimentTest, NonActivatedFaultIsMasked) {
  Rig rig;
  const auto act = rig.golden.make_activation(
      hv::ExitReason::apic(hv::ApicInterrupt::spurious), 9, 0);
  // The spurious handler never touches rdx.
  hv::Injection inj{1, sim::Reg::rdx, 30};
  auto r = rig.exp.run_one(act, inj);
  EXPECT_TRUE(r.golden_ok);
  EXPECT_TRUE(r.record.injected);
  EXPECT_FALSE(r.record.activated);
  EXPECT_EQ(r.record.consequence, Consequence::Masked);
  EXPECT_FALSE(r.record.detected);
}

TEST(ExperimentTest, RipFlipIsHypervisorCrashDetectedByHardware) {
  Rig rig;
  const auto act = rig.golden.make_activation(
      hv::ExitReason::hypercall(hv::Hypercall::console_io), 8, 2);
  hv::Injection inj{3, sim::Reg::rip, 45};
  auto r = rig.exp.run_one(act, inj);
  EXPECT_EQ(r.record.consequence, Consequence::HypervisorCrash);
  EXPECT_TRUE(r.record.detected);
  EXPECT_EQ(r.record.technique, Technique::HardwareException);
  EXPECT_EQ(r.record.trap, sim::TrapKind::PageFault);
  EXPECT_EQ(r.record.latency, 0u);  // activated at the fetch that faulted
}

TEST(ExperimentTest, GoldenFeaturesAreCorrectSample) {
  Rig rig;
  const auto act = rig.golden.make_activation(
      hv::ExitReason::hypercall(hv::Hypercall::xen_version), 4);
  hv::Injection inj{0, sim::Reg::rip, 50};
  auto r = rig.exp.run_one(act, inj);
  EXPECT_TRUE(r.golden_ok);
  EXPECT_GT(r.golden_features.rt, 0);
  EXPECT_EQ(r.golden_features.vmer, act.reason.code());
}

TEST(ExperimentTest, DrawInjectionWithinBounds) {
  std::mt19937_64 rng(5);
  for (int i = 0; i < 200; ++i) {
    hv::Injection inj = InjectionExperiment::draw_injection(rng, 50);
    EXPECT_LT(inj.at_step, 50u);
    EXPECT_GE(inj.bit, 0);
    EXPECT_LT(inj.bit, 64);
    EXPECT_LT(static_cast<int>(inj.reg), sim::kNumArchRegs);
  }
}

TEST(ExperimentTest, ActivatedDrawPicksReadRegisters) {
  Rig rig;
  const auto act = rig.golden.make_activation(
      hv::ExitReason::hypercall(hv::Hypercall::grant_table_op), 6);
  auto probe = rig.exp.probe_golden(act);
  std::mt19937_64 rng(5);
  int activated = 0;
  const int trials = 50;
  for (int i = 0; i < trials; ++i) {
    hv::Injection inj = InjectionExperiment::draw_activated_injection(
        rng, probe.trace, rig.golden.microvisor().program);
    auto r = rig.exp.run_one(act, inj);
    activated += r.record.activated ? 1 : 0;
  }
  // Activation is near-certain by construction (the register is read by
  // the very next instruction unless a trap preempts it).
  EXPECT_GT(activated, trials * 8 / 10);
}

TEST(ExperimentTest, MismatchedMachinesThrow) {
  hv::Machine a;
  hv::MicrovisorOptions opt;
  opt.num_domains = 2;
  hv::Machine b(opt);
  Xentry x;
  EXPECT_THROW(InjectionExperiment(a, b, x), std::invalid_argument);
}

TEST(OutcomeTest, TaxonomyPredicates) {
  EXPECT_TRUE(is_long_latency(Consequence::AppSdc));
  EXPECT_TRUE(is_long_latency(Consequence::AllVmFailure));
  EXPECT_FALSE(is_long_latency(Consequence::HypervisorCrash));
  EXPECT_FALSE(is_long_latency(Consequence::Masked));
  EXPECT_TRUE(is_manifested(Consequence::HypervisorCrash));
  EXPECT_FALSE(is_manifested(Consequence::Masked));
  EXPECT_EQ(consequence_name(Consequence::AppSdc), "app_sdc");
  EXPECT_EQ(undetected_class_name(UndetectedClass::TimeValues),
            "time_values");
}

}  // namespace
}  // namespace xentry::fault
