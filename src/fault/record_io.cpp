#include "fault/record_io.hpp"

#include <bit>
#include <charconv>

#include "obs/json.hpp"

namespace xentry::fault {

std::uint64_t digest_update(std::uint64_t h, const InjectionRecord& r) {
  h = fnv1a(h, static_cast<std::uint64_t>(r.reason.code()));
  h = fnv1a(h, r.activation_seed);
  h = fnv1a(h, static_cast<std::uint64_t>(r.vcpu));
  h = fnv1a(h, r.injection.at_step);
  h = fnv1a(h, static_cast<std::uint64_t>(r.injection.reg));
  h = fnv1a(h, static_cast<std::uint64_t>(r.injection.bit));
  h = fnv1a(h, r.injected);
  h = fnv1a(h, r.activated);
  h = fnv1a(h, static_cast<std::uint64_t>(r.consequence));
  h = fnv1a(h, r.detected);
  h = fnv1a(h, static_cast<std::uint64_t>(r.technique));
  h = fnv1a(h, r.latency);
  h = fnv1a(h, static_cast<std::uint64_t>(r.trap));
  h = fnv1a(h, r.assert_id);
  h = fnv1a(h, r.trace_diverged);
  h = fnv1a(h, static_cast<std::uint64_t>(r.undetected));
  for (std::int64_t f : r.features.as_array()) {
    h = fnv1a(h, static_cast<std::uint64_t>(f));
  }
  return h;
}

std::uint64_t records_digest(const std::vector<InjectionRecord>& records) {
  std::uint64_t h = kDigestBasis;
  for (const InjectionRecord& r : records) h = digest_update(h, r);
  return h;
}

namespace {

// -- binary frame -----------------------------------------------------------

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}
void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}
void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

struct ByteReader {
  std::string_view data;
  std::size_t pos = 0;
  bool ok = true;

  std::uint8_t u8() {
    if (pos + 1 > data.size()) {
      ok = false;
      return 0;
    }
    return static_cast<std::uint8_t>(data[pos++]);
  }
  std::uint32_t u32() {
    if (pos + 4 > data.size()) {
      ok = false;
      return 0;
    }
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(data[pos++]))
           << (8 * i);
    }
    return v;
  }
  std::uint64_t u64() {
    if (pos + 8 > data.size()) {
      ok = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(data[pos++]))
           << (8 * i);
    }
    return v;
  }
};

constexpr std::uint8_t kFlagInjected = 1u << 0;
constexpr std::uint8_t kFlagActivated = 1u << 1;
constexpr std::uint8_t kFlagDetected = 1u << 2;
constexpr std::uint8_t kFlagDiverged = 1u << 3;

void encode_binary(const InjectionRecord& r, std::string& out) {
  const std::size_t len_at = out.size();
  put_u32(out, 0);  // patched below
  const std::size_t payload_at = out.size();
  put_u8(out, static_cast<std::uint8_t>(r.reason.category));
  put_u32(out, static_cast<std::uint32_t>(r.reason.index));
  put_u64(out, r.activation_seed);
  put_u32(out, static_cast<std::uint32_t>(r.vcpu));
  put_u64(out, r.injection.at_step);
  put_u8(out, static_cast<std::uint8_t>(r.injection.reg));
  put_u32(out, static_cast<std::uint32_t>(r.injection.bit));
  std::uint8_t flags = 0;
  if (r.injected) flags |= kFlagInjected;
  if (r.activated) flags |= kFlagActivated;
  if (r.detected) flags |= kFlagDetected;
  if (r.trace_diverged) flags |= kFlagDiverged;
  put_u8(out, flags);
  put_u8(out, static_cast<std::uint8_t>(r.consequence));
  put_u8(out, static_cast<std::uint8_t>(r.technique));
  put_u64(out, r.latency);
  put_u8(out, static_cast<std::uint8_t>(r.trap));
  put_u32(out, r.assert_id);
  put_u8(out, static_cast<std::uint8_t>(r.undetected));
  for (std::int64_t f : r.features.as_array()) {
    put_u64(out, static_cast<std::uint64_t>(f));
  }
  put_u64(out, std::bit_cast<std::uint64_t>(r.weight));
  put_u64(out, std::bit_cast<std::uint64_t>(r.masked_weight));
  const std::uint32_t len = static_cast<std::uint32_t>(out.size() - payload_at);
  for (int i = 0; i < 4; ++i) {
    out[len_at + static_cast<std::size_t>(i)] =
        static_cast<char>((len >> (8 * i)) & 0xff);
  }
}

bool decode_binary(std::string_view data, std::size_t& pos,
                   InjectionRecord& out) {
  ByteReader r{data, pos};
  const std::uint32_t len = r.u32();
  if (!r.ok || r.pos + len > data.size()) return false;
  const std::size_t frame_end = r.pos + len;
  InjectionRecord rec;
  const std::uint8_t cat = r.u8();
  const std::uint32_t idx = r.u32();
  rec.activation_seed = r.u64();
  rec.vcpu = static_cast<int>(r.u32());
  rec.injection.at_step = r.u64();
  const std::uint8_t reg = r.u8();
  rec.injection.bit = static_cast<int>(r.u32());
  const std::uint8_t flags = r.u8();
  const std::uint8_t cons = r.u8();
  const std::uint8_t tech = r.u8();
  rec.latency = r.u64();
  const std::uint8_t trap = r.u8();
  rec.assert_id = r.u32();
  const std::uint8_t undet = r.u8();
  std::int64_t f[kNumFeatures];
  for (std::int64_t& v : f) v = static_cast<std::int64_t>(r.u64());
  rec.weight = std::bit_cast<double>(r.u64());
  rec.masked_weight = std::bit_cast<double>(r.u64());
  if (!r.ok || r.pos > frame_end) return false;
  if (cat > static_cast<std::uint8_t>(hv::ExitCategory::Tasklet) ||
      reg >= static_cast<std::uint8_t>(sim::kNumArchRegs) ||
      cons >= static_cast<std::uint8_t>(kNumConsequences) ||
      tech >= static_cast<std::uint8_t>(kNumTechniques) ||
      trap > static_cast<std::uint8_t>(sim::TrapKind::StackCheck) ||
      undet > static_cast<std::uint8_t>(UndetectedClass::OtherValues)) {
    return false;
  }
  rec.reason = {static_cast<hv::ExitCategory>(cat), static_cast<int>(idx)};
  rec.injection.reg = static_cast<sim::Reg>(reg);
  rec.injected = (flags & kFlagInjected) != 0;
  rec.activated = (flags & kFlagActivated) != 0;
  rec.detected = (flags & kFlagDetected) != 0;
  rec.trace_diverged = (flags & kFlagDiverged) != 0;
  rec.consequence = static_cast<Consequence>(cons);
  rec.technique = static_cast<Technique>(tech);
  rec.trap = static_cast<sim::TrapKind>(trap);
  rec.undetected = static_cast<UndetectedClass>(undet);
  rec.features = {f[0], f[1], f[2], f[3], f[4]};
  pos = frame_end;  // honour the prefix even if a future writer added bytes
  out = std::move(rec);
  return true;
}

// -- JSONL ------------------------------------------------------------------

// std::to_chars, not snprintf: the encoder runs once per record on the
// campaign hot path, and ~20 snprintf calls per record is most of the
// streaming overhead.  to_chars(general, 17) is specified to match
// printf "%.17g", so the bytes (and double round-trips) are unchanged.
void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}
void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}
void append_double(std::string& out, double v) {
  char buf[40];
  const auto res =
      std::to_chars(buf, buf + sizeof buf, v, std::chars_format::general, 17);
  out.append(buf, res.ptr);
}

void encode_jsonl(const InjectionRecord& r, std::string& out) {
  out += "{\"cat\":";
  append_u64(out, static_cast<std::uint64_t>(r.reason.category));
  out += ",\"idx\":";
  append_i64(out, r.reason.index);
  out += ",\"seed\":";
  append_u64(out, r.activation_seed);
  out += ",\"vcpu\":";
  append_i64(out, r.vcpu);
  out += ",\"step\":";
  append_u64(out, r.injection.at_step);
  out += ",\"reg\":";
  append_u64(out, static_cast<std::uint64_t>(r.injection.reg));
  out += ",\"bit\":";
  append_i64(out, r.injection.bit);
  out += ",\"inj\":";
  out += r.injected ? '1' : '0';
  out += ",\"act\":";
  out += r.activated ? '1' : '0';
  out += ",\"cons\":\"";
  out += consequence_name(r.consequence);
  out += "\",\"det\":";
  out += r.detected ? '1' : '0';
  out += ",\"tech\":";
  append_u64(out, static_cast<std::uint64_t>(r.technique));
  out += ",\"lat\":";
  append_u64(out, r.latency);
  out += ",\"trap\":";
  append_u64(out, static_cast<std::uint64_t>(r.trap));
  out += ",\"assert\":";
  append_u64(out, r.assert_id);
  out += ",\"div\":";
  out += r.trace_diverged ? '1' : '0';
  out += ",\"undet\":\"";
  out += undetected_class_name(r.undetected);
  out += "\",\"f\":[";
  bool first = true;
  for (std::int64_t f : r.features.as_array()) {
    if (!first) out += ',';
    first = false;
    append_i64(out, f);
  }
  out += "],\"w\":";
  append_double(out, r.weight);
  out += ",\"mw\":";
  append_double(out, r.masked_weight);
  out += "}\n";
}

bool decode_jsonl(std::string_view data, std::size_t& pos,
                  InjectionRecord& out) {
  const std::size_t eol = data.find('\n', pos);
  if (eol == std::string_view::npos) return false;  // truncated line
  const std::optional<obs::JsonValue> v =
      obs::parse_json(data.substr(pos, eol - pos));
  if (!v.has_value() || !v->is_object()) return false;
  InjectionRecord rec;
  const std::uint64_t cat = v->get_uint("cat");
  const std::uint64_t reg = v->get_uint("reg");
  const std::uint64_t tech = v->get_uint("tech");
  const std::uint64_t trap = v->get_uint("trap");
  const std::optional<Consequence> cons =
      consequence_from_name(v->get_string("cons"));
  const std::optional<UndetectedClass> undet =
      undetected_class_from_name(v->get_string("undet"));
  if (cat > static_cast<std::uint64_t>(hv::ExitCategory::Tasklet) ||
      reg >= static_cast<std::uint64_t>(sim::kNumArchRegs) ||
      tech >= static_cast<std::uint64_t>(kNumTechniques) ||
      trap > static_cast<std::uint64_t>(sim::TrapKind::StackCheck) ||
      !cons.has_value() || !undet.has_value()) {
    return false;
  }
  rec.reason = {static_cast<hv::ExitCategory>(cat),
                static_cast<int>(v->get_int("idx"))};
  rec.activation_seed = v->get_uint("seed");
  rec.vcpu = static_cast<int>(v->get_int("vcpu"));
  rec.injection.at_step = v->get_uint("step");
  rec.injection.reg = static_cast<sim::Reg>(reg);
  rec.injection.bit = static_cast<int>(v->get_int("bit"));
  rec.injected = v->get_int("inj") != 0;
  rec.activated = v->get_int("act") != 0;
  rec.consequence = *cons;
  rec.detected = v->get_int("det") != 0;
  rec.technique = static_cast<Technique>(tech);
  rec.latency = v->get_uint("lat");
  rec.trap = static_cast<sim::TrapKind>(trap);
  rec.assert_id = static_cast<std::uint32_t>(v->get_uint("assert"));
  rec.trace_diverged = v->get_int("div") != 0;
  rec.undetected = *undet;
  const obs::JsonValue* f = v->get("f");
  if (f == nullptr ||
      f->as_array().size() != static_cast<std::size_t>(kNumFeatures)) {
    return false;
  }
  const auto& fa = f->as_array();
  rec.features = {fa[0].as_int(), fa[1].as_int(), fa[2].as_int(),
                  fa[3].as_int(), fa[4].as_int()};
  rec.weight = v->get_double("w", 1.0);
  rec.masked_weight = v->get_double("mw", 0.0);
  pos = eol + 1;
  out = std::move(rec);
  return true;
}

}  // namespace

void encode_record(const InjectionRecord& r, obs::RecordFormat format,
                   std::string& out) {
  if (format == obs::RecordFormat::kJsonl) {
    encode_jsonl(r, out);
  } else {
    encode_binary(r, out);
  }
}

bool decode_record(std::string_view data, obs::RecordFormat format,
                   std::size_t& pos, InjectionRecord& out) {
  return format == obs::RecordFormat::kJsonl ? decode_jsonl(data, pos, out)
                                             : decode_binary(data, pos, out);
}

bool decode_records(std::string_view data, obs::RecordFormat format,
                    std::vector<InjectionRecord>& out) {
  std::size_t pos = 0;
  while (pos < data.size()) {
    InjectionRecord rec;
    if (!decode_record(data, format, pos, rec)) return false;
    out.push_back(std::move(rec));
  }
  return true;
}

}  // namespace xentry::fault
