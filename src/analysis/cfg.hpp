// Basic-block control-flow graph over an assembled Program.
//
// Leaders come from the same landing-site set the macro-op fuser uses
// (sim::compute_landing_sites), plus the slot after every branch and the
// first slot of every contiguous non-padding run, so the fuser, the
// verifier, and the runtime control-flow-integrity detector can never
// disagree about where control may arrive.  Every non-Ud instruction
// belongs to exactly one block; Ud padding belongs to none.
//
// Edges model one dynamic step of retired control flow, which is exactly
// what the trace-replay CFI check walks:
//   - Jmp/Jcc: taken target (+ fall-through for Jcc);
//   - Call:    the callee entry (the return site becomes a separate
//              root block, entered later by the callee's Ret);
//   - Ret:     every statically visible return address of the enclosing
//              function — return sites of direct calls to its entry plus
//              every MovRI immediate landing in code (manually pushed
//              return addresses, e.g. the multicall trampoline);
//   - JmpR:    the caller-supplied resolved target set, or "accept any
//              valid instruction" when the set is unknown;
//   - Hlt:     nothing (the VM-entry gate does not retire).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "sim/program.hpp"

namespace xentry::analysis {

inline constexpr std::uint32_t kNoBlock = 0xffffffffu;

struct BasicBlock {
  sim::Addr first = 0;  ///< address of the first instruction
  sim::Addr last = 0;   ///< address of the last instruction (inclusive)
  std::vector<std::uint32_t> succs;  ///< successor block indices
  std::vector<std::uint32_t> preds;  ///< predecessor block indices
  /// Set for a block ending in an indirect jump with no resolved target
  /// set: at runtime any valid instruction is accepted as its successor.
  bool accept_any_succ = false;
  bool is_function_entry = false;  ///< leader is a named symbol
  /// Ends with a direct branch whose target is illegal (out of range or
  /// padding); the offending edge is omitted from succs.
  bool has_illegal_target = false;
  /// Last instruction can fall through but the next slot is Ud padding.
  bool falls_into_padding = false;
  std::uint64_t signature = 0;  ///< FNV-1a over the block's instructions

  std::size_t size() const {
    return static_cast<std::size_t>(last - first) + 1;
  }
};

/// Legality of a direct branch/call target — the single implementation
/// behind both CFG edge construction and verifier diagnostics.
enum class TargetStatus : std::uint8_t { Ok, OutOfRange, Padding };
TargetStatus classify_branch_target(const sim::Program& program,
                                    sim::Addr target);

struct CfgOptions {
  /// Statically resolved target sets for indirect jumps, keyed by the
  /// address of the JmpR instruction.  A JmpR without an entry (or with
  /// an empty set) is treated as unresolved: accept_any_succ.
  std::map<sim::Addr, std::vector<sim::Addr>> indirect_targets;
};

struct ControlFlowGraph {
  sim::Addr base = 0;
  std::size_t code_size = 0;
  std::vector<BasicBlock> blocks;  ///< ordered by first address
  /// Per-slot block index (kNoBlock for Ud padding), O(1) lookup for the
  /// runtime edge check.
  std::vector<std::uint32_t> block_of;
  std::vector<bool> landing;  ///< sim::compute_landing_sites snapshot
  /// Block indices control can enter from outside the graph: symbol
  /// entries (or the first instruction when there are none), call return
  /// sites, and MovRI code-immediate landing sites.  Reachability,
  /// dominators, and the interval analysis all start here.
  std::vector<std::uint32_t> roots;

  std::uint32_t block_at(sim::Addr a) const {
    const sim::Addr off = a - base;
    return off < code_size ? block_of[off] : kNoBlock;
  }
};

ControlFlowGraph build_cfg(const sim::Program& program,
                           const CfgOptions& options = {});

/// FNV-1a over the architectural encoding (op, r1, r2, imm, aux — not the
/// fusion hint) of every instruction slot.  Pairs artifacts with the
/// exact program they were computed from.
std::uint64_t program_signature(const sim::Program& program);

}  // namespace xentry::analysis
