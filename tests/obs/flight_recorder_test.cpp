#include "obs/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace xentry::obs {
namespace {

FlightFrame frame(std::int64_t exit_code) {
  FlightFrame f;
  f.exit_code = exit_code;
  f.steps = static_cast<std::uint64_t>(exit_code) * 10;
  return f;
}

TEST(FlightRecorderTest, EmptyRecorderDumpsNothing) {
  FlightRecorder rec(4);
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.total_appended(), 0u);
  std::vector<FlightFrame> out{frame(99)};  // must be cleared
  rec.dump_into(out);
  EXPECT_TRUE(out.empty());
}

TEST(FlightRecorderTest, PartiallyFilledDumpsInAppendOrder) {
  FlightRecorder rec(4);
  rec.append(frame(1));
  rec.append(frame(2));
  EXPECT_EQ(rec.size(), 2u);
  EXPECT_EQ(rec.total_appended(), 2u);
  std::vector<FlightFrame> out;
  rec.dump_into(out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].exit_code, 1);
  EXPECT_EQ(out[1].exit_code, 2);
  EXPECT_EQ(out[0].seq, 0u);
  EXPECT_EQ(out[1].seq, 1u);
}

/// The satellite's ring-wraparound case: append depth+k frames, the dump
/// holds exactly the last `depth` of them, oldest first, with monotonic
/// sequence numbers that account for the evicted frames.
TEST(FlightRecorderTest, WraparoundKeepsLastDepthFramesOldestFirst) {
  FlightRecorder rec(4);
  for (int i = 1; i <= 10; ++i) rec.append(frame(i));
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.depth(), 4u);
  EXPECT_EQ(rec.total_appended(), 10u);
  std::vector<FlightFrame> out;
  rec.dump_into(out);
  ASSERT_EQ(out.size(), 4u);
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(out[k].exit_code, 7 + k) << "k=" << k;
    EXPECT_EQ(out[k].seq, static_cast<std::uint64_t>(6 + k)) << "k=" << k;
  }
}

TEST(FlightRecorderTest, ExactlyFullBoundary) {
  FlightRecorder rec(3);
  for (int i = 1; i <= 3; ++i) rec.append(frame(i));
  std::vector<FlightFrame> out;
  rec.dump_into(out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].exit_code, 1);
  EXPECT_EQ(out[2].exit_code, 3);
  // One more append evicts exactly the oldest.
  rec.append(frame(4));
  rec.dump_into(out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].exit_code, 2);
  EXPECT_EQ(out[2].exit_code, 4);
}

TEST(FlightRecorderTest, ClearResetsRing) {
  FlightRecorder rec(2);
  rec.append(frame(1));
  rec.append(frame(2));
  rec.append(frame(3));
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.total_appended(), 0u);
  rec.append(frame(9));
  std::vector<FlightFrame> out;
  rec.dump_into(out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].exit_code, 9);
  EXPECT_EQ(out[0].seq, 0u);
}

TEST(FlightRecorderTest, DegenerateDepthClampsToOne) {
  FlightRecorder rec(0);
  EXPECT_EQ(rec.depth(), 1u);
  rec.append(frame(1));
  rec.append(frame(2));
  std::vector<FlightFrame> out;
  rec.dump_into(out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].exit_code, 2);
}

TEST(FlightRecorderTest, FramePayloadRoundTrips) {
  FlightRecorder rec(2);
  FlightFrame f;
  f.exit_code = 5;
  f.steps = 123;
  f.inst_retired = 120;
  f.branches = 17;
  f.loads = 40;
  f.stores = 22;
  f.source = 1;
  f.reached_vm_entry = false;
  f.trap_kind = 3;
  f.trap_aux = 77;
  f.trap_addr = 0xdeadbeef;
  rec.append(f);
  std::vector<FlightFrame> out;
  rec.dump_into(out);
  ASSERT_EQ(out.size(), 1u);
  f.seq = 0;  // append assigns the sequence number
  EXPECT_EQ(out[0], f);
}

}  // namespace
}  // namespace xentry::obs
