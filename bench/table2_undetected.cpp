// Table II: distribution of undetected faults by escape class.
//
// Paper anchors: mis-classify 10%, stack values 20%, time values 53%,
// other values 17%.
#include <cstdio>

#include "bench/bench_util.hpp"

int main() {
  using namespace xentry;
  bench::print_header("Table II: undetected faults");

  fault::TrainedDetector det = bench::train_paper_model();
  const auto res = bench::run_eval_campaign(det.rules);
  const auto cov = fault::coverage_breakdown(res.records);
  const auto und = fault::undetected_breakdown(res.records);

  std::printf("undetected: %zu of %zu manifested (%.1f%%)\n\n", und.total,
              cov.manifested,
              cov.manifested ? 100.0 * static_cast<double>(und.total) /
                                   static_cast<double>(cov.manifested)
                             : 0.0);
  std::printf("%-14s %-13s %-12s %-13s\n", "Mis-Classify", "Stack Values",
              "Time Values", "Other Values");
  std::printf("%-14.0f%% %-13.0f%% %-12.0f%% %-13.0f%%\n",
              100 * und.share(und.mis_classified),
              100 * und.share(und.stack_values),
              100 * und.share(und.time_values),
              100 * und.share(und.other_values));
  std::printf("\npaper: 10%% / 20%% / 53%% / 17%% "
              "(undetected = 2.4%% of manifested)\n");
  return 0;
}
