// Fig. 9: detection coverage of long-latency errors, grouped by the
// consequence they would have caused if undetected: APP SDC, APP crash,
// all-VM failure, one-VM failure.
//
// Paper anchors: 92.6% of APP SDC and 96.8% of APP crash cases detected;
// these cases propagate across VM entry and are invisible to runtime
// detection — only VM transition detection catches them.
#include <cstdio>

#include "bench/bench_util.hpp"

int main() {
  using namespace xentry;
  bench::print_header("Fig. 9: detection of long-latency errors");

  fault::TrainedDetector det = bench::train_paper_model();
  const auto res = bench::run_eval_campaign(det.rules);

  std::printf("%-16s %8s %10s %12s\n", "consequence", "total", "detected",
              "detected %");
  for (const fault::LongLatencyRow& row :
       fault::long_latency_breakdown(res.records)) {
    std::printf("%-16s %8zu %10zu %11.1f%%\n",
                std::string(fault::consequence_name(row.consequence)).c_str(),
                row.total, row.detected, 100 * row.rate());
  }

  // Control-flow-visible subset: the population the paper's technique is
  // designed for (errors that altered the dynamic execution signature).
  std::size_t cf_total = 0, cf_detected = 0;
  for (const auto& r : res.records) {
    if (!fault::is_long_latency(r.consequence) || !r.trace_diverged) continue;
    ++cf_total;
    cf_detected += r.detected ? 1 : 0;
  }
  std::printf("\ncontrol-flow-visible long-latency errors: %zu, detected "
              "%.1f%%\n",
              cf_total,
              cf_total ? 100.0 * static_cast<double>(cf_detected) /
                             static_cast<double>(cf_total)
                       : 0.0);
  std::printf(
      "paper anchors: APP SDC 92.6%%, APP crash 96.8%% detected; all four\n"
      "classes are only reachable by VM transition detection.\n");
  return 0;
}
