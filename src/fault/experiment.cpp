#include "fault/experiment.hpp"

#include <stdexcept>

#include "sim/splitmix.hpp"

namespace xentry::fault {

namespace L = hv::layout;

InjectionExperiment::InjectionExperiment(hv::Machine& golden,
                                         hv::Machine& faulty, Xentry& xentry,
                                         const OutcomeModel& model)
    : golden_(golden), faulty_(faulty), xentry_(xentry), model_(model) {
  if (golden.num_domains() != faulty.num_domains() ||
      golden.num_vcpus() != faulty.num_vcpus()) {
    throw std::invalid_argument(
        "InjectionExperiment: machines differ in configuration");
  }
}

hv::Injection InjectionExperiment::draw_injection(
    std::mt19937_64& rng, std::uint64_t golden_steps) {
  hv::Injection inj;
  std::uniform_int_distribution<std::uint64_t> step(
      0, golden_steps > 0 ? golden_steps - 1 : 0);
  std::uniform_int_distribution<int> reg(0, sim::kNumArchRegs - 1);
  std::uniform_int_distribution<int> bit(0, sim::kBitsPerReg - 1);
  inj.at_step = step(rng);
  inj.reg = static_cast<sim::Reg>(reg(rng));
  inj.bit = bit(rng);
  return inj;
}

void InjectionExperiment::advance(const hv::Activation& activation) {
  golden_.run(activation);
  golden_.snapshot_into(sync_snap_);
  faulty_.restore(sync_snap_);
}

std::uint64_t InjectionExperiment::measure_golden_steps(
    const hv::Activation& activation) {
  golden_.snapshot_into(sync_snap_);
  const hv::RunResult res = golden_.run(activation);
  golden_.restore(sync_snap_);
  return res.steps;
}

InjectionExperiment::GoldenProbe InjectionExperiment::probe_golden(
    const hv::Activation& activation) {
  GoldenProbe probe;
  probe_golden_advance(activation, probe);
  golden_.restore(probe.pre);
  return probe;
}

void InjectionExperiment::probe_golden_advance(
    const hv::Activation& activation, GoldenProbe& probe) {
  golden_.snapshot_into(probe.pre);
  probe.trace.clear();
  hv::RunOptions opts;
  opts.trace = &probe.trace;
  const hv::RunResult res = golden_.run(activation, opts);
  probe.steps = res.steps;
  probe.counters = res.counters;
  probe.reached_vm_entry = res.reached_vm_entry;
}

hv::Injection InjectionExperiment::draw_activated_injection(
    std::mt19937_64& rng, const std::vector<sim::Addr>& golden_trace,
    const sim::Program& program) {
  hv::Injection inj;
  std::uniform_int_distribution<int> bit(0, sim::kBitsPerReg - 1);
  inj.bit = bit(rng);
  if (golden_trace.empty()) {
    // No trace to bias towards: fall back to a uniform register draw so
    // the injection is still well-formed (not default-initialized).
    std::uniform_int_distribution<int> reg(0, sim::kNumArchRegs - 1);
    inj.reg = static_cast<sim::Reg>(reg(rng));
    return inj;
  }
  std::uniform_int_distribution<std::uint64_t> step(
      0, golden_trace.size() - 1);
  inj.at_step = step(rng);
  const sim::Instruction& insn = program.at(golden_trace[inj.at_step]);
  // Candidate registers: whatever the instruction reads, plus rip (whose
  // flip the next fetch consumes unconditionally).
  std::uint32_t mask = sim::regs_read(insn) | sim::reg_bit(sim::Reg::rip);
  std::vector<sim::Reg> candidates;
  for (int r = 0; r < sim::kNumArchRegs; ++r) {
    if (mask & (1u << r)) candidates.push_back(static_cast<sim::Reg>(r));
  }
  std::uniform_int_distribution<std::size_t> pick(0, candidates.size() - 1);
  inj.reg = candidates[pick(rng)];
  return inj;
}

InjectionExperiment::Result InjectionExperiment::run_one(
    const hv::Activation& activation, const hv::Injection& injection) {
  // Two-run convenience path: execute the golden run here, then reuse it.
  probe_golden_advance(activation, scratch_probe_);
  return run_faulted(activation, injection, scratch_probe_);
}

InjectionExperiment::Result InjectionExperiment::run_one(
    const hv::Activation& activation, const hv::Injection& injection,
    const GoldenProbe& probe) {
  return run_faulted(activation, injection, probe);
}

InjectionExperiment::Result InjectionExperiment::run_faulted(
    const hv::Activation& activation, const hv::Injection& injection,
    const GoldenProbe& probe) {
  Result out;
  InjectionRecord& rec = out.record;
  rec.reason = activation.reason;
  rec.activation_seed = activation.seed;
  rec.vcpu = activation.vcpu;
  rec.injection = injection;

  // The golden run already happened (probe); the golden machine sits at
  // its post-run state.  Align the faulted machine with the pre-run state.
  faulty_.restore(probe.pre);
  out.golden_ok = probe.reached_vm_entry;
  out.golden_features =
      FeatureVector::from(activation.reason, probe.counters);
  last_golden_steps_ = probe.steps;

  // Faulted run under Xentry interception.
  fault_trace_.clear();
  hv::RunOptions fopts;
  fopts.trace = &fault_trace_;
  fopts.injection = &injection;
  const Observation obs = xentry_.observe(faulty_, activation, fopts);

  rec.injected = obs.run.injected;
  rec.activated = obs.run.activated;
  rec.features = obs.features;
  rec.trap = obs.run.trap.kind;
  rec.assert_id = obs.run.trap.aux;
  rec.trace_diverged = fault_trace_ != probe.trace;

  if (!rec.activated) {
    // Non-activated faults never affect correctness (Section V-B).
    rec.consequence = Consequence::Masked;
    return out;
  }

  if (!obs.run.reached_vm_entry) {
    rec.consequence = obs.run.trap.kind == sim::TrapKind::Watchdog
                          ? Consequence::HypervisorHang
                          : Consequence::HypervisorCrash;
  } else {
    const auto diffs = consumed_diffs(
        hv::Machine::diff_persistent_state(golden_, faulty_), activation,
        injection);
    rec.consequence = classify_consequence(diffs);
    rec.undetected = UndetectedClass::NotApplicable;
    if (rec.consequence != Consequence::Masked) {
      // Fill in the would-be escape class now; cleared below if detected.
      rec.undetected = classify_undetected(rec, diffs, fault_trace_);
    }
  }

  rec.detected = obs.detected;
  rec.technique = obs.technique;
  if (rec.detected) {
    rec.undetected = UndetectedClass::NotApplicable;
    rec.latency = obs.detection_step >= obs.run.activation_step
                      ? obs.detection_step - obs.run.activation_step
                      : 0;
  }

  // SDC / crash postmortem: ship the recent VM-exit anatomy with the
  // record so Table 2-style analysis needs no re-run.  The faulted run
  // that produced this outcome is the ring's newest frame.
  if (flight_ != nullptr && is_blackbox_worthy(rec.consequence)) {
    flight_->dump_into(rec.blackbox);
  }

  if (forensics_.enabled && needs_forensics(rec.consequence, rec.detected)) {
    // SDC / app-crash outcomes always replay; the (cheaper to explain)
    // undetected-escape residue can be thinned with sample_every.
    const bool always = rec.consequence == Consequence::AppSdc ||
                        rec.consequence == Consequence::AppCrash;
    const bool sampled =
        always || forensics_.sample_every <= 1 ||
        (forensics_counter_++ % static_cast<std::uint64_t>(
                                    forensics_.sample_every)) == 0;
    if (sampled) run_forensics(rec, activation, injection, probe);
  }
  return out;
}

void InjectionExperiment::run_forensics(InjectionRecord& rec,
                                        const hv::Activation& activation,
                                        const hv::Injection& injection,
                                        const GoldenProbe& probe) {
  // The replay dirties both machines.  The faulty machine is re-synced
  // before every campaign use, but the golden machine's post-run state is
  // load-bearing (the stream advances from it) — save and re-instate it.
  golden_.snapshot_into(forensics_post_);
  obs::ForensicsRecord fx = run_lockstep_forensics(
      golden_, faulty_, activation, injection, probe.pre, forensics_.params);
  golden_.restore(forensics_post_);

  fx.heuristic = static_cast<std::uint8_t>(rec.undetected);
  const UndetectedClass attributed =
      rec.detected ? UndetectedClass::NotApplicable
                   : attribute_from_evidence(fx, rec);
  fx.attributed = static_cast<std::uint8_t>(attributed);
  fx.heuristic_agrees = attributed == rec.undetected;
  rec.forensics = std::move(fx);
}

UndetectedClass InjectionExperiment::attribute_from_evidence(
    const obs::ForensicsRecord& fx, const InjectionRecord& rec) const {
  // No replay evidence (window exhausted before propagation, or the clean
  // replay disagreed with the faulted run): fall back to the heuristic
  // rather than invent a class.
  if (!fx.diverged || fx.taint.empty()) return rec.undetected;

  // Mirrors the heuristic's precedence (time > stack > classifier-miss >
  // other) so disagreements mean contradicting *evidence*, not ordering.
  const obs::TaintSample& last = fx.taint.back();
  if (last.persistent_words > 0 && last.time_words == last.persistent_words) {
    return UndetectedClass::TimeValues;
  }

  bool stack_evidence =
      rec.injection.reg == sim::Reg::rsp ||
      (fx.divergence.in_register &&
       fx.divergence.location ==
           static_cast<std::uint64_t>(sim::Reg::rsp));
  if (!fx.divergence.in_register) {
    const sim::Addr a = static_cast<sim::Addr>(fx.divergence.location);
    stack_evidence |=
        (a >= L::kStackBase && a < L::kStackTop) ||
        (a >= L::kStackBase + static_cast<sim::Addr>(L::kShadowStackOffset) &&
         a < L::kStackTop + static_cast<sim::Addr>(L::kShadowStackOffset));
  }
  for (const obs::TaintSample& s : fx.taint) {
    stack_evidence |= s.stack_words > 0;
  }
  if (stack_evidence) return UndetectedClass::StackValues;

  if (rec.trace_diverged && xentry_.config().transition_detection) {
    return UndetectedClass::MisClassified;
  }
  return UndetectedClass::OtherValues;
}

std::vector<hv::StateDiff> InjectionExperiment::consumed_diffs(
    const std::vector<hv::StateDiff>& diffs, const hv::Activation& act,
    const hv::Injection& inj) const {
  sim::SplitMix64 sm(act.seed ^ (inj.at_step << 24) ^
                     (static_cast<std::uint64_t>(inj.reg) << 16) ^
                     static_cast<std::uint64_t>(inj.bit));
  auto keep = [&](double p) {
    return static_cast<double>(sm.next()) <
           p * 18446744073709551616.0;  // p * 2^64
  };
  std::vector<hv::StateDiff> out;
  out.reserve(diffs.size());
  for (hv::StateDiff d : diffs) {
    double p = 1.0;
    switch (d.cls) {
      case L::OutputClass::AppData:
        p = model_.app_consume_probability;
        break;
      case L::OutputClass::AppPointer:
        p = model_.app_consume_probability;
        // Wrong translations only sometimes fault; the rest silently read
        // or write the wrong frame (data corruption).
        if (!keep(model_.pointer_crash_fraction)) {
          d.cls = L::OutputClass::AppData;
        }
        break;
      case L::OutputClass::TimeValue:
        p = model_.time_consume_probability;
        break;
      case L::OutputClass::GuestKernelData:
        p = model_.kernel_consume_probability;
        break;
      case L::OutputClass::HvGlobal:
        p = model_.hv_consume_probability;
        break;
      case L::OutputClass::GuestControl:
        break;  // always consumed: the VM resumes into this state
    }
    if (keep(p)) out.push_back(d);
  }
  return out;
}

Consequence InjectionExperiment::classify_consequence(
    const std::vector<hv::StateDiff>& diffs) const {
  if (diffs.empty()) return Consequence::Masked;
  // Corruption confined to time values is transient clock skew for the
  // affected domain: a VM-level disturbance (timeouts, scheduling drift),
  // not an application output corruption.
  bool only_time = true;
  for (const hv::StateDiff& d : diffs) {
    if (d.cls != L::OutputClass::TimeValue) {
      only_time = false;
      break;
    }
  }
  if (only_time) return Consequence::OneVmFailure;

  // Corrupted guest control state (rip/rsp/rflags) crashes the VM the
  // moment it resumes — it dominates everything else.  Otherwise classify
  // by where the bulk of the consumed corruption sits: kernel-level
  // corruption fails the VM (the control VM takes the whole system down,
  // Section II), application-level corruption crashes or silently
  // corrupts the app.
  bool control = false, control_dom0 = false;
  std::size_t kernel = 0, kernel_dom0 = 0, app = 0, app_crash = 0;
  for (const hv::StateDiff& d : diffs) {
    switch (d.cls) {
      case L::OutputClass::GuestControl:
        control = true;
        control_dom0 |= d.domain == 0;
        break;
      case L::OutputClass::HvGlobal:
        ++kernel;
        ++kernel_dom0;
        break;
      case L::OutputClass::GuestKernelData:
        ++kernel;
        kernel_dom0 += d.domain == 0 ? 1 : 0;
        break;
      case L::OutputClass::AppPointer:
        ++app;
        ++app_crash;
        break;
      case L::OutputClass::AppData:
      case L::OutputClass::TimeValue:
        ++app;
        break;
    }
  }
  if (control) {
    return control_dom0 ? Consequence::AllVmFailure
                        : Consequence::OneVmFailure;
  }
  if (kernel >= app) {
    if (kernel == 0) return Consequence::Masked;  // unreachable guard
    return kernel_dom0 > 0 ? Consequence::AllVmFailure
                           : Consequence::OneVmFailure;
  }
  return app_crash > 0 ? Consequence::AppCrash : Consequence::AppSdc;
}

UndetectedClass InjectionExperiment::classify_undetected(
    const InjectionRecord& rec, const std::vector<hv::StateDiff>& diffs,
    const std::vector<sim::Addr>& fault_trace) const {
  // All corruption confined to time-related values?
  bool all_time = !diffs.empty();
  for (const hv::StateDiff& d : diffs) {
    if (d.cls != L::OutputClass::TimeValue) {
      all_time = false;
      break;
    }
  }
  if (all_time) return UndetectedClass::TimeValues;

  // Corruption that travelled through the stack: the flipped register was
  // the stack pointer, or the fault activated at a stack operation.
  if (rec.injection.reg == sim::Reg::rsp) return UndetectedClass::StackValues;
  const std::uint64_t astep = rec.injection.at_step <= fault_trace.size()
                                  ? rec.injection.at_step
                                  : 0;
  for (std::uint64_t i = astep;
       i < fault_trace.size() && i < astep + 4; ++i) {
    const sim::Opcode op =
        golden_.microvisor().program.contains(fault_trace[i])
            ? golden_.microvisor().program.at(fault_trace[i]).op
            : sim::Opcode::Nop;
    if (op == sim::Opcode::Push || op == sim::Opcode::Pop ||
        op == sim::Opcode::Call || op == sim::Opcode::Ret) {
      return UndetectedClass::StackValues;
    }
  }

  // A diverged control flow the transition detector judged correct is a
  // classifier miss; pure data corruption gives it nothing to see.
  return rec.trace_diverged ? UndetectedClass::MisClassified
                            : UndetectedClass::OtherValues;
}

}  // namespace xentry::fault
