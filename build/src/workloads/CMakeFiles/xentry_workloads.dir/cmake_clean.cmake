file(REMOVE_RECURSE
  "CMakeFiles/xentry_workloads.dir/workload.cpp.o"
  "CMakeFiles/xentry_workloads.dir/workload.cpp.o.d"
  "libxentry_workloads.a"
  "libxentry_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xentry_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
