#include "sim/cpu.hpp"

namespace xentry::sim {

void Cpu::reset(Addr rip, Addr rsp) {
  regs_.fill(0);
  set_reg(Reg::rip, rip);
  set_reg(Reg::rsp, rsp);
  steps_ = 0;
}

void Cpu::set_flags_cmp(Word a, Word b) {
  Word f = 0;
  if (a == b) f |= kFlagZero;
  if (static_cast<std::int64_t>(a) < static_cast<std::int64_t>(b)) {
    f |= kFlagSign;
  }
  if (a < b) f |= kFlagCarry;
  set_reg(Reg::rflags, f);
}

void Cpu::set_flags_result(Word res) {
  Word f = 0;
  if (res == 0) f |= kFlagZero;
  if (static_cast<std::int64_t>(res) < 0) f |= kFlagSign;
  set_reg(Reg::rflags, f);
}

StepInfo Cpu::step() {
  StepInfo info;
  const Addr rip = reg(Reg::rip);
  info.rip_before = rip;

  const Instruction* fetched = prog_->fetch(rip);
  if (fetched == nullptr) {
    info.status = StepInfo::Status::Trapped;
    info.trap = Trap{TrapKind::PageFault, rip, 0};
    return info;
  }
  const Instruction& insn = *fetched;
  if (insn.op == Opcode::Ud) {
    info.status = StepInfo::Status::Trapped;
    info.trap = Trap{TrapKind::InvalidOpcode, rip, 0};
    return info;
  }

  if (track_masks_) {
    info.read_mask = regs_read(insn);
    info.written_mask = regs_written(insn);
  }

  // Retire bookkeeping happens for every instruction that begins executing;
  // a mid-instruction memory fault still counts as issued work for the
  // trace, but a trapped instruction does not retire.
  Addr next_rip = rip + 1;
  Trap trap;

  auto mem_read = [&](Addr a, Word& out) { trap = mem_->read(a, out); };
  auto mem_write = [&](Addr a, Word v) { trap = mem_->write(a, v); };

  switch (insn.op) {
    case Opcode::Nop:
      break;
    case Opcode::MovRR:
      set_reg(insn.r1, reg(insn.r2));
      break;
    case Opcode::MovRI:
      set_reg(insn.r1, static_cast<Word>(insn.imm));
      break;
    case Opcode::Load: {
      Word v = 0;
      mem_read(reg(insn.r2) + static_cast<Word>(insn.imm), v);
      if (!trap) set_reg(insn.r1, v);
      break;
    }
    case Opcode::Store:
      mem_write(reg(insn.r1) + static_cast<Word>(insn.imm), reg(insn.r2));
      break;
    case Opcode::Push: {
      const Word sp = reg(Reg::rsp) - 1;
      mem_write(sp, reg(insn.r1));
      if (!trap) {
        set_reg(Reg::rsp, sp);
        if (shadow_enabled_) {
          // The mirror stores the complement so a stale/never-pushed slot
          // pair (0, 0) cannot masquerade as consistent.
          trap = mem_->write(sp + static_cast<Word>(shadow_offset_),
                             ~reg(insn.r1));
        }
      } else {
        trap.kind = TrapKind::StackFault;
      }
      break;
    }
    case Opcode::Pop: {
      Word v = 0;
      mem_read(reg(Reg::rsp), v);
      if (!trap && shadow_enabled_) {
        Word mirror = 0;
        trap = mem_->read(reg(Reg::rsp) + static_cast<Word>(shadow_offset_),
                          mirror);
        if (!trap && mirror != ~v) {
          trap = Trap{TrapKind::StackCheck, reg(Reg::rsp), 0};
        }
      }
      if (!trap) {
        set_reg(Reg::rsp, reg(Reg::rsp) + 1);
        set_reg(insn.r1, v);
      } else if (trap.kind != TrapKind::StackCheck) {
        trap.kind = TrapKind::StackFault;
      }
      break;
    }
    case Opcode::AddRR: {
      const Word res = reg(insn.r1) + reg(insn.r2);
      set_flags_result(res);
      set_reg(insn.r1, res);
      break;
    }
    case Opcode::AddRI: {
      const Word res = reg(insn.r1) + static_cast<Word>(insn.imm);
      set_flags_result(res);
      set_reg(insn.r1, res);
      break;
    }
    case Opcode::SubRR: {
      const Word a = reg(insn.r1), b = reg(insn.r2);
      set_flags_cmp(a, b);
      set_reg(insn.r1, a - b);
      break;
    }
    case Opcode::SubRI: {
      const Word a = reg(insn.r1), b = static_cast<Word>(insn.imm);
      set_flags_cmp(a, b);
      set_reg(insn.r1, a - b);
      break;
    }
    case Opcode::MulRR: {
      const Word res = reg(insn.r1) * reg(insn.r2);
      set_flags_result(res);
      set_reg(insn.r1, res);
      break;
    }
    case Opcode::DivR: {
      const Word d = reg(insn.r1);
      if (d == 0) {
        trap = Trap{TrapKind::DivideError, rip, 0};
      } else {
        const Word a = reg(Reg::rax);
        set_reg(Reg::rax, a / d);
        set_reg(Reg::rdx, a % d);
        set_flags_result(a / d);
      }
      break;
    }
    case Opcode::AndRR: {
      const Word res = reg(insn.r1) & reg(insn.r2);
      set_flags_result(res);
      set_reg(insn.r1, res);
      break;
    }
    case Opcode::AndRI: {
      const Word res = reg(insn.r1) & static_cast<Word>(insn.imm);
      set_flags_result(res);
      set_reg(insn.r1, res);
      break;
    }
    case Opcode::OrRR: {
      const Word res = reg(insn.r1) | reg(insn.r2);
      set_flags_result(res);
      set_reg(insn.r1, res);
      break;
    }
    case Opcode::OrRI: {
      const Word res = reg(insn.r1) | static_cast<Word>(insn.imm);
      set_flags_result(res);
      set_reg(insn.r1, res);
      break;
    }
    case Opcode::XorRR: {
      const Word res = reg(insn.r1) ^ reg(insn.r2);
      set_flags_result(res);
      set_reg(insn.r1, res);
      break;
    }
    case Opcode::XorRI: {
      const Word res = reg(insn.r1) ^ static_cast<Word>(insn.imm);
      set_flags_result(res);
      set_reg(insn.r1, res);
      break;
    }
    case Opcode::ShlRI: {
      const Word res = reg(insn.r1) << (insn.imm & 63);
      set_flags_result(res);
      set_reg(insn.r1, res);
      break;
    }
    case Opcode::ShrRI: {
      const Word res = reg(insn.r1) >> (insn.imm & 63);
      set_flags_result(res);
      set_reg(insn.r1, res);
      break;
    }
    case Opcode::ShlRR: {
      const Word res = reg(insn.r1) << (reg(insn.r2) & 63);
      set_flags_result(res);
      set_reg(insn.r1, res);
      break;
    }
    case Opcode::ShrRR: {
      const Word res = reg(insn.r1) >> (reg(insn.r2) & 63);
      set_flags_result(res);
      set_reg(insn.r1, res);
      break;
    }
    case Opcode::Neg: {
      const Word res = 0 - reg(insn.r1);
      set_flags_result(res);
      set_reg(insn.r1, res);
      break;
    }
    case Opcode::Not: {
      const Word res = ~reg(insn.r1);
      set_flags_result(res);
      set_reg(insn.r1, res);
      break;
    }
    case Opcode::Inc: {
      const Word res = reg(insn.r1) + 1;
      set_flags_result(res);
      set_reg(insn.r1, res);
      break;
    }
    case Opcode::Dec: {
      const Word res = reg(insn.r1) - 1;
      set_flags_result(res);
      set_reg(insn.r1, res);
      break;
    }
    case Opcode::CmpRR:
      set_flags_cmp(reg(insn.r1), reg(insn.r2));
      break;
    case Opcode::CmpRI:
      set_flags_cmp(reg(insn.r1), static_cast<Word>(insn.imm));
      break;
    case Opcode::TestRR:
      set_flags_result(reg(insn.r1) & reg(insn.r2));
      break;
    case Opcode::TestRI:
      set_flags_result(reg(insn.r1) & static_cast<Word>(insn.imm));
      break;
    case Opcode::Jmp:
      next_rip = static_cast<Addr>(insn.imm);
      break;
    case Opcode::JmpR:
      next_rip = reg(insn.r1);
      break;
    case Opcode::Je:
      if (flag(kFlagZero)) next_rip = static_cast<Addr>(insn.imm);
      break;
    case Opcode::Jne:
      if (!flag(kFlagZero)) next_rip = static_cast<Addr>(insn.imm);
      break;
    case Opcode::Jl:
      if (flag(kFlagSign)) next_rip = static_cast<Addr>(insn.imm);
      break;
    case Opcode::Jle:
      if (flag(kFlagSign) || flag(kFlagZero)) {
        next_rip = static_cast<Addr>(insn.imm);
      }
      break;
    case Opcode::Jg:
      if (!flag(kFlagSign) && !flag(kFlagZero)) {
        next_rip = static_cast<Addr>(insn.imm);
      }
      break;
    case Opcode::Jge:
      if (!flag(kFlagSign)) next_rip = static_cast<Addr>(insn.imm);
      break;
    case Opcode::Jb:
      if (flag(kFlagCarry)) next_rip = static_cast<Addr>(insn.imm);
      break;
    case Opcode::Jae:
      if (!flag(kFlagCarry)) next_rip = static_cast<Addr>(insn.imm);
      break;
    case Opcode::Call: {
      const Word sp = reg(Reg::rsp) - 1;
      mem_write(sp, rip + 1);
      if (!trap) {
        set_reg(Reg::rsp, sp);
        next_rip = static_cast<Addr>(insn.imm);
        if (shadow_enabled_) {
          trap = mem_->write(sp + static_cast<Word>(shadow_offset_),
                             ~(rip + 1));
        }
      } else {
        trap.kind = TrapKind::StackFault;
      }
      break;
    }
    case Opcode::Ret: {
      Word ra = 0;
      mem_read(reg(Reg::rsp), ra);
      if (!trap && shadow_enabled_) {
        Word mirror = 0;
        trap = mem_->read(reg(Reg::rsp) + static_cast<Word>(shadow_offset_),
                          mirror);
        if (!trap && mirror != ~ra) {
          trap = Trap{TrapKind::StackCheck, reg(Reg::rsp), 0};
        }
      }
      if (!trap) {
        set_reg(Reg::rsp, reg(Reg::rsp) + 1);
        next_rip = ra;
      } else if (trap.kind != TrapKind::StackCheck) {
        trap.kind = TrapKind::StackFault;
      }
      break;
    }
    case Opcode::Rdtsc:
      set_reg(insn.r1, tsc_);
      break;
    case Opcode::Hlt:
      info.status = StepInfo::Status::Halted;
      break;
    case Opcode::AssertLeRI:
      if (static_cast<std::int64_t>(reg(insn.r1)) > insn.imm) {
        trap = Trap{TrapKind::AssertFailed, rip, insn.aux};
      }
      break;
    case Opcode::AssertGeRI:
      if (static_cast<std::int64_t>(reg(insn.r1)) < insn.imm) {
        trap = Trap{TrapKind::AssertFailed, rip, insn.aux};
      }
      break;
    case Opcode::AssertEqRI:
      if (reg(insn.r1) != static_cast<Word>(insn.imm)) {
        trap = Trap{TrapKind::AssertFailed, rip, insn.aux};
      }
      break;
    case Opcode::AssertNeRI:
      if (reg(insn.r1) == static_cast<Word>(insn.imm)) {
        trap = Trap{TrapKind::AssertFailed, rip, insn.aux};
      }
      break;
    case Opcode::AssertEqRR:
      if (reg(insn.r1) != reg(insn.r2)) {
        trap = Trap{TrapKind::AssertFailed, rip, insn.aux};
      }
      break;
    case Opcode::AssertLtRR:
      if (reg(insn.r1) >= reg(insn.r2)) {
        trap = Trap{TrapKind::AssertFailed, rip, insn.aux};
      }
      break;
    case Opcode::Ud:
      // handled at fetch
      break;
  }

  if (trap) {
    info.status = StepInfo::Status::Trapped;
    info.trap = trap;
    return info;
  }
  if (info.status == StepInfo::Status::Halted) {
    // hlt is the VM-entry gate; it does not retire as hypervisor work.
    return info;
  }

  // The instruction retired: advance rip, counters, TSC, trace.
  set_reg(Reg::rip, next_rip);
  counters_.on_retire(is_branch(insn.op), is_mem_load(insn.op),
                      is_mem_store(insn.op));
  tsc_ += kTscPerStep;
  ++steps_;
  if (trace_ != nullptr) trace_->push_back(rip);
  return info;
}

StepInfo Cpu::run_reference(std::uint64_t max_steps) {
  for (std::uint64_t i = 0; i < max_steps; ++i) {
    StepInfo info = step();
    if (info.status != StepInfo::Status::Ok) return info;
  }
  StepInfo info;
  info.status = StepInfo::Status::Trapped;
  info.trap = Trap{TrapKind::Watchdog, reg(Reg::rip), 0};
  info.rip_before = reg(Reg::rip);
  return info;
}

namespace {

/// Taken-condition of a fused conditional branch, evaluated directly on
/// the flags word the fused head just produced.
inline bool cond_taken(Opcode jcc, Word f) {
  switch (jcc) {
    case Opcode::Je: return (f & kFlagZero) != 0;
    case Opcode::Jne: return (f & kFlagZero) == 0;
    case Opcode::Jl: return (f & kFlagSign) != 0;
    case Opcode::Jle: return (f & (kFlagSign | kFlagZero)) != 0;
    case Opcode::Jg: return (f & (kFlagSign | kFlagZero)) == 0;
    case Opcode::Jge: return (f & kFlagSign) == 0;
    case Opcode::Jb: return (f & kFlagCarry) != 0;
    default: return (f & kFlagCarry) == 0;  // Jae
  }
}

}  // namespace

template <bool Trace, bool Masks, bool Shadow>
StepInfo Cpu::run_loop(std::uint64_t max_steps) {
  const Program& prog = *prog_;
  Memory& mem = *mem_;
  std::vector<Addr>* const trace = trace_;

  // Retire bookkeeping accumulates in locals and is flushed exactly once
  // at loop exit; rip and rflags stay in the register array because
  // instructions may name them as ordinary operands.
  Word tsc = tsc_;
  std::uint64_t executed = 0;
  std::uint64_t branches = 0, loads = 0, stores = 0;
  const auto flush = [&] {
    tsc_ = tsc;
    steps_ += executed;
    counters_.retire_block(executed, branches, loads, stores);
  };

  StepInfo info;
  while (executed < max_steps) {
    const Addr rip = reg(Reg::rip);
    const Instruction* fetched = prog.fetch(rip);
    if (fetched == nullptr) {
      flush();
      info.status = StepInfo::Status::Trapped;
      info.trap = Trap{TrapKind::PageFault, rip, 0};
      info.rip_before = rip;
      return info;
    }
    const Instruction& insn = *fetched;
    if (insn.op == Opcode::Ud) {
      flush();
      info.status = StepInfo::Status::Trapped;
      info.trap = Trap{TrapKind::InvalidOpcode, rip, 0};
      info.rip_before = rip;
      return info;
    }

    if constexpr (Masks) {
      // Register watch: hand control back before any instruction whose
      // static read/write set touches the watched registers.  The caller
      // (the injection path) single-steps that instruction with full
      // activation bookkeeping, then resumes batching.
      if (watch_mask_ != 0 &&
          ((regs_read(insn) | regs_written(insn)) & watch_mask_) != 0) {
        flush();
        info.status = StepInfo::Status::Ok;
        info.rip_before = rip;
        info.read_mask = regs_read(insn);
        info.written_mask = regs_written(insn);
        return info;
      }
    }

    // Macro-op fusion: a Cmp*/Test* head whose successor Jcc is not a
    // control-flow landing point executes as one dispatch but retires as
    // two instructions (two trace entries, two counter retires, same
    // rflags effects).  Never fuse across the watchdog boundary, and not
    // while a watch is armed (the tail's reads must stay visible).
    if (insn.fused && executed + 2 <= max_steps &&
        (!Masks || watch_mask_ == 0)) {
      switch (insn.op) {
        case Opcode::CmpRR:
          set_flags_cmp(reg(insn.r1), reg(insn.r2));
          break;
        case Opcode::CmpRI:
          set_flags_cmp(reg(insn.r1), static_cast<Word>(insn.imm));
          break;
        case Opcode::TestRR:
          set_flags_result(reg(insn.r1) & reg(insn.r2));
          break;
        default:  // TestRI: the only remaining fusable head
          set_flags_result(reg(insn.r1) & static_cast<Word>(insn.imm));
          break;
      }
      // The fused flag guarantees the successor slot exists and is the Jcc.
      const Instruction& jcc = fetched[1];
      const Addr jrip = rip + 1;
      const Addr next = cond_taken(jcc.op, reg(Reg::rflags))
                            ? static_cast<Addr>(jcc.imm)
                            : jrip + 1;
      set_reg(Reg::rip, next);
      executed += 2;
      branches += 1;  // the head is not a branch; the tail is
      tsc += 2 * kTscPerStep;
      if constexpr (Trace) {
        trace->push_back(rip);
        trace->push_back(jrip);
      }
      continue;
    }

    Addr next_rip = rip + 1;
    Trap trap;

    switch (insn.op) {
      case Opcode::Nop:
        break;
      case Opcode::MovRR:
        set_reg(insn.r1, reg(insn.r2));
        break;
      case Opcode::MovRI:
        set_reg(insn.r1, static_cast<Word>(insn.imm));
        break;
      case Opcode::Load: {
        Word v = 0;
        trap = mem.read(reg(insn.r2) + static_cast<Word>(insn.imm), v);
        if (!trap) set_reg(insn.r1, v);
        break;
      }
      case Opcode::Store:
        trap = mem.write(reg(insn.r1) + static_cast<Word>(insn.imm),
                         reg(insn.r2));
        break;
      case Opcode::Push: {
        const Word sp = reg(Reg::rsp) - 1;
        trap = mem.write(sp, reg(insn.r1));
        if (!trap) {
          set_reg(Reg::rsp, sp);
          if constexpr (Shadow) {
            // The mirror stores the complement so a stale/never-pushed
            // slot pair (0, 0) cannot masquerade as consistent.
            trap = mem.write(sp + static_cast<Word>(shadow_offset_),
                             ~reg(insn.r1));
          }
        } else {
          trap.kind = TrapKind::StackFault;
        }
        break;
      }
      case Opcode::Pop: {
        Word v = 0;
        trap = mem.read(reg(Reg::rsp), v);
        if constexpr (Shadow) {
          if (!trap) {
            Word mirror = 0;
            trap = mem.read(reg(Reg::rsp) + static_cast<Word>(shadow_offset_),
                            mirror);
            if (!trap && mirror != ~v) {
              trap = Trap{TrapKind::StackCheck, reg(Reg::rsp), 0};
            }
          }
        }
        if (!trap) {
          set_reg(Reg::rsp, reg(Reg::rsp) + 1);
          set_reg(insn.r1, v);
        } else if (trap.kind != TrapKind::StackCheck) {
          trap.kind = TrapKind::StackFault;
        }
        break;
      }
      case Opcode::AddRR: {
        const Word res = reg(insn.r1) + reg(insn.r2);
        set_flags_result(res);
        set_reg(insn.r1, res);
        break;
      }
      case Opcode::AddRI: {
        const Word res = reg(insn.r1) + static_cast<Word>(insn.imm);
        set_flags_result(res);
        set_reg(insn.r1, res);
        break;
      }
      case Opcode::SubRR: {
        const Word a = reg(insn.r1), b = reg(insn.r2);
        set_flags_cmp(a, b);
        set_reg(insn.r1, a - b);
        break;
      }
      case Opcode::SubRI: {
        const Word a = reg(insn.r1), b = static_cast<Word>(insn.imm);
        set_flags_cmp(a, b);
        set_reg(insn.r1, a - b);
        break;
      }
      case Opcode::MulRR: {
        const Word res = reg(insn.r1) * reg(insn.r2);
        set_flags_result(res);
        set_reg(insn.r1, res);
        break;
      }
      case Opcode::DivR: {
        const Word d = reg(insn.r1);
        if (d == 0) {
          trap = Trap{TrapKind::DivideError, rip, 0};
        } else {
          const Word a = reg(Reg::rax);
          set_reg(Reg::rax, a / d);
          set_reg(Reg::rdx, a % d);
          set_flags_result(a / d);
        }
        break;
      }
      case Opcode::AndRR: {
        const Word res = reg(insn.r1) & reg(insn.r2);
        set_flags_result(res);
        set_reg(insn.r1, res);
        break;
      }
      case Opcode::AndRI: {
        const Word res = reg(insn.r1) & static_cast<Word>(insn.imm);
        set_flags_result(res);
        set_reg(insn.r1, res);
        break;
      }
      case Opcode::OrRR: {
        const Word res = reg(insn.r1) | reg(insn.r2);
        set_flags_result(res);
        set_reg(insn.r1, res);
        break;
      }
      case Opcode::OrRI: {
        const Word res = reg(insn.r1) | static_cast<Word>(insn.imm);
        set_flags_result(res);
        set_reg(insn.r1, res);
        break;
      }
      case Opcode::XorRR: {
        const Word res = reg(insn.r1) ^ reg(insn.r2);
        set_flags_result(res);
        set_reg(insn.r1, res);
        break;
      }
      case Opcode::XorRI: {
        const Word res = reg(insn.r1) ^ static_cast<Word>(insn.imm);
        set_flags_result(res);
        set_reg(insn.r1, res);
        break;
      }
      case Opcode::ShlRI: {
        const Word res = reg(insn.r1) << (insn.imm & 63);
        set_flags_result(res);
        set_reg(insn.r1, res);
        break;
      }
      case Opcode::ShrRI: {
        const Word res = reg(insn.r1) >> (insn.imm & 63);
        set_flags_result(res);
        set_reg(insn.r1, res);
        break;
      }
      case Opcode::ShlRR: {
        const Word res = reg(insn.r1) << (reg(insn.r2) & 63);
        set_flags_result(res);
        set_reg(insn.r1, res);
        break;
      }
      case Opcode::ShrRR: {
        const Word res = reg(insn.r1) >> (reg(insn.r2) & 63);
        set_flags_result(res);
        set_reg(insn.r1, res);
        break;
      }
      case Opcode::Neg: {
        const Word res = 0 - reg(insn.r1);
        set_flags_result(res);
        set_reg(insn.r1, res);
        break;
      }
      case Opcode::Not: {
        const Word res = ~reg(insn.r1);
        set_flags_result(res);
        set_reg(insn.r1, res);
        break;
      }
      case Opcode::Inc: {
        const Word res = reg(insn.r1) + 1;
        set_flags_result(res);
        set_reg(insn.r1, res);
        break;
      }
      case Opcode::Dec: {
        const Word res = reg(insn.r1) - 1;
        set_flags_result(res);
        set_reg(insn.r1, res);
        break;
      }
      case Opcode::CmpRR:
        set_flags_cmp(reg(insn.r1), reg(insn.r2));
        break;
      case Opcode::CmpRI:
        set_flags_cmp(reg(insn.r1), static_cast<Word>(insn.imm));
        break;
      case Opcode::TestRR:
        set_flags_result(reg(insn.r1) & reg(insn.r2));
        break;
      case Opcode::TestRI:
        set_flags_result(reg(insn.r1) & static_cast<Word>(insn.imm));
        break;
      case Opcode::Jmp:
        next_rip = static_cast<Addr>(insn.imm);
        break;
      case Opcode::JmpR:
        next_rip = reg(insn.r1);
        break;
      case Opcode::Je:
        if (flag(kFlagZero)) next_rip = static_cast<Addr>(insn.imm);
        break;
      case Opcode::Jne:
        if (!flag(kFlagZero)) next_rip = static_cast<Addr>(insn.imm);
        break;
      case Opcode::Jl:
        if (flag(kFlagSign)) next_rip = static_cast<Addr>(insn.imm);
        break;
      case Opcode::Jle:
        if (flag(kFlagSign) || flag(kFlagZero)) {
          next_rip = static_cast<Addr>(insn.imm);
        }
        break;
      case Opcode::Jg:
        if (!flag(kFlagSign) && !flag(kFlagZero)) {
          next_rip = static_cast<Addr>(insn.imm);
        }
        break;
      case Opcode::Jge:
        if (!flag(kFlagSign)) next_rip = static_cast<Addr>(insn.imm);
        break;
      case Opcode::Jb:
        if (flag(kFlagCarry)) next_rip = static_cast<Addr>(insn.imm);
        break;
      case Opcode::Jae:
        if (!flag(kFlagCarry)) next_rip = static_cast<Addr>(insn.imm);
        break;
      case Opcode::Call: {
        const Word sp = reg(Reg::rsp) - 1;
        trap = mem.write(sp, rip + 1);
        if (!trap) {
          set_reg(Reg::rsp, sp);
          next_rip = static_cast<Addr>(insn.imm);
          if constexpr (Shadow) {
            trap = mem.write(sp + static_cast<Word>(shadow_offset_),
                             ~(rip + 1));
          }
        } else {
          trap.kind = TrapKind::StackFault;
        }
        break;
      }
      case Opcode::Ret: {
        Word ra = 0;
        trap = mem.read(reg(Reg::rsp), ra);
        if constexpr (Shadow) {
          if (!trap) {
            Word mirror = 0;
            trap = mem.read(reg(Reg::rsp) + static_cast<Word>(shadow_offset_),
                            mirror);
            if (!trap && mirror != ~ra) {
              trap = Trap{TrapKind::StackCheck, reg(Reg::rsp), 0};
            }
          }
        }
        if (!trap) {
          set_reg(Reg::rsp, reg(Reg::rsp) + 1);
          next_rip = ra;
        } else if (trap.kind != TrapKind::StackCheck) {
          trap.kind = TrapKind::StackFault;
        }
        break;
      }
      case Opcode::Rdtsc:
        set_reg(insn.r1, tsc);
        break;
      case Opcode::Hlt:
        info.status = StepInfo::Status::Halted;
        break;
      case Opcode::AssertLeRI:
        if (static_cast<std::int64_t>(reg(insn.r1)) > insn.imm) {
          trap = Trap{TrapKind::AssertFailed, rip, insn.aux};
        }
        break;
      case Opcode::AssertGeRI:
        if (static_cast<std::int64_t>(reg(insn.r1)) < insn.imm) {
          trap = Trap{TrapKind::AssertFailed, rip, insn.aux};
        }
        break;
      case Opcode::AssertEqRI:
        if (reg(insn.r1) != static_cast<Word>(insn.imm)) {
          trap = Trap{TrapKind::AssertFailed, rip, insn.aux};
        }
        break;
      case Opcode::AssertNeRI:
        if (reg(insn.r1) == static_cast<Word>(insn.imm)) {
          trap = Trap{TrapKind::AssertFailed, rip, insn.aux};
        }
        break;
      case Opcode::AssertEqRR:
        if (reg(insn.r1) != reg(insn.r2)) {
          trap = Trap{TrapKind::AssertFailed, rip, insn.aux};
        }
        break;
      case Opcode::AssertLtRR:
        if (reg(insn.r1) >= reg(insn.r2)) {
          trap = Trap{TrapKind::AssertFailed, rip, insn.aux};
        }
        break;
      case Opcode::Ud:
        // handled at fetch
        break;
    }

    if (trap || info.status == StepInfo::Status::Halted) {
      // A trapped or halting instruction does not retire: flush what did.
      flush();
      if (trap) {
        info.status = StepInfo::Status::Trapped;
        info.trap = trap;
      }
      info.rip_before = rip;
      if constexpr (Masks) {
        info.read_mask = regs_read(insn);
        info.written_mask = regs_written(insn);
      }
      return info;
    }

    set_reg(Reg::rip, next_rip);
    ++executed;
    branches += is_branch(insn.op) ? 1 : 0;
    loads += is_mem_load(insn.op) ? 1 : 0;
    stores += is_mem_store(insn.op) ? 1 : 0;
    tsc += kTscPerStep;
    if constexpr (Trace) trace->push_back(rip);
  }

  flush();
  info.status = StepInfo::Status::Trapped;
  info.trap = Trap{TrapKind::Watchdog, reg(Reg::rip), 0};
  info.rip_before = reg(Reg::rip);
  return info;
}

std::size_t diff_regs(const Cpu& a, const Cpu& b, std::vector<RegDiff>& out) {
  out.clear();
  for (int r = 0; r < kNumArchRegs; ++r) {
    const Word x = a.regs()[static_cast<std::size_t>(r)] ^
                   b.regs()[static_cast<std::size_t>(r)];
    if (x != 0) out.push_back(RegDiff{static_cast<Reg>(r), x});
  }
  return out.size();
}

StepInfo Cpu::run(std::uint64_t max_steps) {
  // A register watch needs the per-instruction mask check only the
  // interpreter loops implement; the engines are bit-identical, so the
  // detour never changes results.
  if (watch_mask_ != 0) return run_interp(max_steps);
  switch (engine_) {
    case EngineKind::Reference:
      return run_reference(max_steps);
    case EngineKind::Jit:
      // No compiled stream attached (e.g. a scratch machine built outside
      // the campaign path): fall back to the fast interpreter, which is
      // bit-identical.
      if (jit_ != nullptr) return run_jit(max_steps);
      break;
    case EngineKind::Fast:
      break;
  }
  return run_interp(max_steps);
}

StepInfo Cpu::run_interp(std::uint64_t max_steps) {
  const unsigned key = (trace_ != nullptr ? 1u : 0u) |
                       (track_masks_ || watch_mask_ != 0 ? 2u : 0u) |
                       (shadow_enabled_ ? 4u : 0u);
  switch (key) {
    case 0: return run_loop<false, false, false>(max_steps);
    case 1: return run_loop<true, false, false>(max_steps);
    case 2: return run_loop<false, true, false>(max_steps);
    case 3: return run_loop<true, true, false>(max_steps);
    case 4: return run_loop<false, false, true>(max_steps);
    case 5: return run_loop<true, false, true>(max_steps);
    case 6: return run_loop<false, true, true>(max_steps);
    default: return run_loop<true, true, true>(max_steps);
  }
}

}  // namespace xentry::sim
