// Fleet campaign coordinator: one campaign, many worker processes.
//
// The injection space of a campaign is partitioned into `units`
// deterministic work units — exactly the shard space the single-process
// run with `shards = units` uses: unit u's quota is
// `injections/units + (u < injections%units)` and its RNG seeds derive
// from (seed, u) alone, so results never depend on which process runs a
// unit or on the worker count.  Units are assigned round-robin
// (`u % workers`), each worker streams its units into the
// single-process shard-file layout (`<dir>/records.shard<u>.*`), and
// the files concatenated in unit order are byte-identical to the
// single-process run's for ANY worker count — including after a worker
// is SIGKILLed and restarted, because each worker owns a private
// checkpoint journal (`<dir>/ckpt.worker<W>`) whose unit assignment is
// part of the resume identity, and the PR's resume machinery rewrites
// the post-kill suffix bit-identically.
//
// The coordinator supervises the fleet: it spawns workers (fork by
// default; the CLI substitutes fork+exec of itself in --worker mode),
// reaps exits, restarts unhealthy workers (nonzero exit, stall —
// no heartbeat/journal/sidecar signal within a timeout — and chaos
// kills) up to a per-worker restart budget, and drives the live
// observability plane (obs::FleetView): merged metrics from every
// unit's snapshot sidecar, an atomically-rewritten status.json, and a
// one-line dashboard.  On completion it decodes every unit stream in
// unit order, re-derives the records digest, cross-checks it against
// the journals' per-unit digests, and merges the final metrics — the
// digest and the timing-stripped metrics are bit-identical to the
// equivalent single-process run's (DESIGN.md section 5h).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fault/campaign.hpp"
#include "fault/stats.hpp"

namespace xentry::fault {

/// Units owned by `worker`: round-robin, unit u belongs to worker
/// u % workers.  Ascending, possibly empty when workers > unit_count.
std::vector<int> fleet_units_for_worker(int unit_count, int workers,
                                        int worker);

/// Shared record-stream base: `<dir>/records` (shard files hang off it).
std::string fleet_records_path(const std::string& dir);
/// Worker W's private checkpoint journal: `<dir>/ckpt.worker<W>`.
std::string fleet_checkpoint_path(const std::string& dir, int worker);
/// Worker W's heartbeat file: `<dir>/hb.worker<W>.json`.
std::string fleet_heartbeat_path(const std::string& dir, int worker);
/// The coordinator's status document: `<dir>/status.json`.
std::string fleet_status_path(const std::string& dir);

struct FleetOptions {
  /// Campaign identity and knobs (injections, seed, bias, sampling,
  /// engine, checkpoint_every, records_format...).  The fleet fields,
  /// streaming paths, heartbeat callback, keep_records, and
  /// collect_dataset are overwritten per worker by make_worker_config.
  CampaignConfig base{};
  int units = 0;    ///< work-unit count; 0 = one per worker
  int workers = 1;  ///< worker process count
  std::string dir;  ///< campaign directory (must already exist)

  double status_interval_sec = 1.0;    ///< status.json / dashboard cadence
  double worker_heartbeat_sec = 0.25;  ///< worker heartbeat-file cadence
  double stall_timeout_sec = 30.0;     ///< no-signal window before restart
  double straggler_fraction = 0.5;     ///< see obs::flag_stragglers
  int max_restarts = 2;                ///< restart budget per worker

  /// Spawns worker `worker` (attempt 0 is the first launch) and returns
  /// its pid, or -1 on failure.  Default: fork + run_fleet_worker in the
  /// child.  The CLI overrides this with fork+exec of the same binary in
  /// --worker mode, which is what makes the plane cross-process for real.
  std::function<long(int worker, int attempt)> spawn;

  /// Chaos hook: once fleet-wide completed injections reach this count,
  /// SIGKILL the first running worker (once).  0 = off.  Exercises the
  /// kill → restart → bit-identical-result path with a real signal.
  int kill_one_after = 0;
  /// Deterministic test stand-in for kill_one_after: worker 0's first
  /// attempt runs with streaming.abort_after set to this iteration count
  /// (buffered sink bytes are dropped, no final checkpoint) and exits
  /// nonzero, forcing a restart from its journal.  0 = off.
  int simulate_kill_worker0_after = 0;

  /// Receives dashboard_line() once per status interval (e.g. stderr).
  std::function<void(const std::string&)> dashboard;
};

/// The campaign configuration worker `worker` runs: base plus the fleet
/// partition, the shared record-stream base path, the worker's private
/// journal, and observability forced on (metrics sidecars feed the
/// plane; records are not kept in RAM).
CampaignConfig make_worker_config(const FleetOptions& opts, int worker);

/// Runs worker `worker`'s share of the campaign in THIS process — the
/// body of the CLI's --worker mode and of the default fork spawn.
/// Installs a heartbeat callback that atomically publishes the worker's
/// progress to its heartbeat file.  Returns a process exit code: 0 on
/// success, nonzero on error or when `simulate_kill` cut the run short.
int run_fleet_worker(const FleetOptions& opts, int worker,
                     bool simulate_kill = false);

struct FleetResult {
  bool ok = false;
  std::string error;  ///< non-empty when !ok

  /// Every unit stream decoded, concatenated in unit order — exactly
  /// the single-process run's record order.
  std::vector<InjectionRecord> records;
  /// records_digest(records), bit-comparable to the single-process run.
  std::uint64_t digest = 0;
  /// Re-derived per-unit digests matched every journaled digest.
  bool digest_cross_checked = false;
  WeightedRates rates;
  /// Unit sidecar registries merged + the campaign.shards gauge (the
  /// single-process merge order is reproduced; compare after
  /// obs::strip_timing_metrics).
  obs::MetricsRegistry metrics;

  double elapsed_sec = 0;
  int restarts = 0;  ///< fleet-wide restart count
  std::vector<int> worker_restarts;
};

/// Runs the whole fleet: spawn, supervise, observe, merge, verify.
FleetResult run_fleet(const FleetOptions& opts);

}  // namespace xentry::fault
