// SplitMix64: a tiny, high-quality mixing function used wherever the
// simulator needs cheap deterministic pseudo-random values derived from a
// seed (activation arguments, request-buffer contents, stale register
// values).  Determinism is load-bearing: a golden run and a faulted run of
// the same activation must see byte-identical inputs.
#pragma once

#include <cstdint>

namespace xentry::sim {

class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    state_ += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform value in [0, bound).  `bound` must be nonzero.
  constexpr std::uint64_t below(std::uint64_t bound) {
    return next() % bound;
  }

 private:
  std::uint64_t state_;
};

}  // namespace xentry::sim
