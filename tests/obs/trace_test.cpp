#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

namespace xentry::obs {
namespace {

// ---------------------------------------------------------------------------
// A minimal recursive-descent JSON reader, just enough to schema-check the
// Chrome trace output without external dependencies.  Numbers are parsed as
// doubles (trace values are small integers, exactly representable).
// ---------------------------------------------------------------------------
struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<JsonArray>, std::shared_ptr<JsonObject>>
      v;

  bool is_object() const {
    return std::holds_alternative<std::shared_ptr<JsonObject>>(v);
  }
  bool is_array() const {
    return std::holds_alternative<std::shared_ptr<JsonArray>>(v);
  }
  bool is_string() const { return std::holds_alternative<std::string>(v); }
  bool is_number() const { return std::holds_alternative<double>(v); }
  const JsonObject& obj() const {
    return *std::get<std::shared_ptr<JsonObject>>(v);
  }
  const JsonArray& arr() const {
    return *std::get<std::shared_ptr<JsonArray>>(v);
  }
  const std::string& str() const { return std::get<std::string>(v); }
  double num() const { return std::get<double>(v); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) throw std::runtime_error("trailing data");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) throw std::runtime_error("unexpected end");
    return text_[pos_];
  }
  void expect(char c) {
    if (peek() != c) {
      throw std::runtime_error(std::string("expected '") + c + "' at " +
                               std::to_string(pos_));
    }
    ++pos_;
  }

  JsonValue value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return {parse_string()};
      case 't': literal("true"); return {true};
      case 'f': literal("false"); return {false};
      case 'n': literal("null"); return {nullptr};
      default: return {number()};
    }
  }

  void literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_++] != *p) {
        throw std::runtime_error("bad literal");
      }
    }
  }

  JsonValue object() {
    expect('{');
    auto obj = std::make_shared<JsonObject>();
    if (peek() == '}') {
      ++pos_;
      return {obj};
    }
    while (true) {
      std::string key = parse_string();
      expect(':');
      (*obj)[key] = value();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return {obj};
    }
  }

  JsonValue array() {
    expect('[');
    auto arr = std::make_shared<JsonArray>();
    if (peek() == ']') {
      ++pos_;
      return {arr};
    }
    while (true) {
      arr->push_back(value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return {arr};
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u':
            if (pos_ + 4 > text_.size()) throw std::runtime_error("bad \\u");
            out += "\\u" + text_.substr(pos_, 4);  // keep escaped; ASCII-only
            pos_ += 4;
            break;
          default: throw std::runtime_error("bad escape");
        }
      } else {
        out += c;
      }
    }
    throw std::runtime_error("unterminated string");
  }

  double number() {
    std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) throw std::runtime_error("bad number");
    return std::stod(text_.substr(start, pos_ - start));
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

std::string chrome_json(const TraceRecorder& rec) {
  std::ostringstream os;
  rec.write_chrome_json(os);
  return os.str();
}

// ---------------------------------------------------------------------------

TEST(TraceRecorderTest, SpanRecordsCompleteEvent) {
  TraceRecorder rec;
  {
    TraceRecorder::Span span(&rec, "phase:test", 3);
    span.arg("at_step", 42);
  }
  ASSERT_EQ(rec.events().size(), 1u);
  const TraceEvent& ev = rec.events()[0];
  EXPECT_EQ(ev.name, "phase:test");
  EXPECT_EQ(ev.phase, 'X');
  EXPECT_EQ(ev.tid, 3);
  EXPECT_EQ(ev.arg_name, "at_step");
  EXPECT_EQ(ev.arg_value, 42u);
}

TEST(TraceRecorderTest, NullRecorderSpanIsNoOp) {
  TraceRecorder::Span span(nullptr, "ghost", 0);
  span.arg("x", 1);
  span.end();  // must not crash
}

TEST(TraceRecorderTest, CapDropsExcessAndCounts) {
  TraceRecorder rec(2);
  rec.instant("a", 0);
  rec.instant("b", 0);
  rec.instant("c", 0);
  rec.complete("d", 0, 1, 0);
  EXPECT_EQ(rec.events().size(), 2u);
  EXPECT_EQ(rec.dropped(), 2u);
}

TEST(TraceRecorderTest, MergePreservesShardOrderAndCap) {
  const TraceRecorder::Clock::time_point epoch = TraceRecorder::Clock::now();
  TraceRecorder merged(3, epoch);
  TraceRecorder shard0(8, epoch), shard1(8, epoch);
  shard0.complete("s0_a", 1, 1, 0);
  shard0.complete("s0_b", 2, 1, 0);
  shard1.complete("s1_a", 1, 1, 1);
  shard1.complete("s1_b", 2, 1, 1);
  merged.merge_from(std::move(shard0));
  merged.merge_from(std::move(shard1));
  ASSERT_EQ(merged.events().size(), 3u);
  EXPECT_EQ(merged.events()[0].name, "s0_a");
  EXPECT_EQ(merged.events()[1].name, "s0_b");
  EXPECT_EQ(merged.events()[2].name, "s1_a");
  EXPECT_EQ(merged.dropped(), 1u);
}

/// The satellite's schema check: the export parses as JSON and has the
/// Chrome trace-event structure Perfetto expects — a traceEvents array
/// whose entries carry name/ph/pid/tid/ts (and dur for 'X'), plus one
/// thread_name metadata record per distinct tid.
TEST(TraceRecorderTest, ChromeJsonSchema) {
  TraceRecorder rec;
  rec.complete("phase:warmup", 10, 5, 0);
  rec.complete("exit:hypercall_map", 20, 2, 1, "at_step", 7);
  rec.instant("undetected_sdc", 0, "at_step", 99);

  const JsonValue root = JsonParser(chrome_json(rec)).parse();
  ASSERT_TRUE(root.is_object());
  ASSERT_TRUE(root.obj().count("traceEvents"));
  ASSERT_TRUE(root.obj().count("displayTimeUnit"));

  int metadata_events = 0, span_events = 0, instant_events = 0;
  const JsonArray& events = root.obj().at("traceEvents").arr();
  for (const JsonValue& ev : events) {
    ASSERT_TRUE(ev.is_object());
    const JsonObject& obj = ev.obj();
    ASSERT_TRUE(obj.count("name"));
    ASSERT_TRUE(obj.count("ph"));
    ASSERT_TRUE(obj.count("pid"));
    ASSERT_TRUE(obj.count("tid"));
    EXPECT_TRUE(obj.at("name").is_string());
    EXPECT_TRUE(obj.at("pid").is_number());
    EXPECT_TRUE(obj.at("tid").is_number());
    const std::string& ph = obj.at("ph").str();
    if (ph == "M") {
      ++metadata_events;
      EXPECT_EQ(obj.at("name").str(), "thread_name");
      ASSERT_TRUE(obj.count("args"));
      const JsonObject& args = obj.at("args").obj();
      ASSERT_TRUE(args.count("name"));
      EXPECT_EQ(args.at("name").str().rfind("shard ", 0), 0u);
    } else if (ph == "X") {
      ++span_events;
      ASSERT_TRUE(obj.count("ts"));
      ASSERT_TRUE(obj.count("dur"));
      EXPECT_TRUE(obj.at("ts").is_number());
      EXPECT_TRUE(obj.at("dur").is_number());
    } else if (ph == "i") {
      ++instant_events;
      ASSERT_TRUE(obj.count("ts"));
      ASSERT_TRUE(obj.count("s"));  // instant scope
    } else {
      FAIL() << "unexpected phase: " << ph;
    }
  }
  EXPECT_EQ(metadata_events, 2);  // tids 0 and 1
  EXPECT_EQ(span_events, 2);
  EXPECT_EQ(instant_events, 1);

  // The span with an argument round-trips it.
  bool found_arg = false;
  for (const JsonValue& ev : events) {
    const JsonObject& obj = ev.obj();
    if (obj.at("name").is_string() &&
        obj.at("name").str() == "exit:hypercall_map") {
      ASSERT_TRUE(obj.count("args"));
      EXPECT_EQ(obj.at("args").obj().at("at_step").num(), 7.0);
      found_arg = true;
    }
  }
  EXPECT_TRUE(found_arg);
}

TEST(TraceRecorderTest, ChromeJsonEmptyRecorderStillValid) {
  TraceRecorder rec;
  const JsonValue root = JsonParser(chrome_json(rec)).parse();
  ASSERT_TRUE(root.is_object());
  EXPECT_TRUE(root.obj().at("traceEvents").is_array());
  EXPECT_TRUE(root.obj().at("traceEvents").arr().empty());
}

}  // namespace
}  // namespace xentry::obs
