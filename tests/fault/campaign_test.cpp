#include "fault/campaign.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <mutex>

#include "analysis/artifacts.hpp"
#include "fault/stats.hpp"
#include "sim/cpu.hpp"
#include "fault/training.hpp"
#include "hv/microvisor.hpp"

namespace xentry::fault {
namespace {

/// Field-by-field equality: the determinism contract is bit-identical
/// records, not just aggregate counts.
bool records_identical(const InjectionRecord& a, const InjectionRecord& b) {
  return a.reason.code() == b.reason.code() &&
         a.activation_seed == b.activation_seed && a.vcpu == b.vcpu &&
         a.injection.at_step == b.injection.at_step &&
         a.injection.reg == b.injection.reg &&
         a.injection.bit == b.injection.bit && a.injected == b.injected &&
         a.activated == b.activated && a.consequence == b.consequence &&
         a.detected == b.detected && a.technique == b.technique &&
         a.latency == b.latency && a.trap == b.trap &&
         a.assert_id == b.assert_id && a.trace_diverged == b.trace_diverged &&
         a.undetected == b.undetected &&
         a.features.as_array() == b.features.as_array();
}

TEST(CampaignTest, RunsRequestedInjectionsAcrossShards) {
  CampaignConfig cfg;
  cfg.injections = 200;
  cfg.seed = 7;
  cfg.shards = 4;
  cfg.xentry.transition_detection = false;  // no model installed
  auto res = run_campaign(cfg);
  EXPECT_EQ(res.records.size(), 200u);
}

TEST(CampaignTest, DeterministicForFixedSeedAndShards) {
  CampaignConfig cfg;
  cfg.injections = 120;
  cfg.seed = 11;
  cfg.shards = 3;
  cfg.xentry.transition_detection = false;  // no model installed
  auto a = run_campaign(cfg);
  auto b = run_campaign(cfg);
  ASSERT_EQ(a.records.size(), b.records.size());
  std::size_t manifested_a = 0, manifested_b = 0, detected_a = 0,
              detected_b = 0;
  for (const auto& r : a.records) {
    manifested_a += is_manifested(r.consequence);
    detected_a += r.detected;
  }
  for (const auto& r : b.records) {
    manifested_b += is_manifested(r.consequence);
    detected_b += r.detected;
  }
  EXPECT_EQ(manifested_a, manifested_b);
  EXPECT_EQ(detected_a, detected_b);
}

TEST(CampaignTest, BitIdenticalRecordsAndDatasetForFixedSeedAndShards) {
  // Regression guard for the snapshot/golden-run-reuse optimizations: a
  // fixed (seed, shards) pair must produce bit-identical record sequences
  // and dataset labels, run after run.
  CampaignConfig cfg;
  cfg.injections = 300;
  cfg.seed = 29;
  cfg.shards = 3;
  cfg.collect_dataset = true;
  const auto a = run_campaign(cfg);
  const auto b = run_campaign(cfg);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    ASSERT_TRUE(records_identical(a.records[i], b.records[i]))
        << "record " << i << " differs";
  }
  ASSERT_EQ(a.dataset.size(), b.dataset.size());
  for (std::size_t i = 0; i < a.dataset.size(); ++i) {
    ASSERT_EQ(a.dataset.label(i), b.dataset.label(i)) << "label " << i;
    const auto ra = a.dataset.row(i);
    const auto rb = b.dataset.row(i);
    ASSERT_TRUE(std::equal(ra.begin(), ra.end(), rb.begin(), rb.end()))
        << "row " << i;
  }
}

TEST(CampaignTest, DatasetCollectedWhenRequested) {
  CampaignConfig cfg;
  cfg.injections = 150;
  cfg.seed = 3;
  cfg.shards = 2;
  cfg.collect_dataset = true;
  auto res = run_campaign(cfg);
  // Every injection contributes at least the golden sample.
  EXPECT_GE(res.dataset.size(), 150u);
  EXPECT_GT(res.dataset.count(ml::Label::Correct), 0u);
}

TEST(CampaignTest, ManifestationRateMatchesPaperBand) {
  // Paper Section V-D: ~17,700 of 30,000 injections manifested (59%).
  CampaignConfig cfg;
  cfg.injections = 4000;
  cfg.seed = 42;
  cfg.xentry.transition_detection = false;  // no model installed
  auto res = run_campaign(cfg);
  std::size_t manifested = 0;
  for (const auto& r : res.records) {
    manifested += is_manifested(r.consequence);
  }
  const double rate =
      static_cast<double>(manifested) / static_cast<double>(res.records.size());
  EXPECT_GT(rate, 0.40);
  EXPECT_LT(rate, 0.70);
}

TEST(CampaignTest, RecordsBitIdenticalAcrossTelemetryModes) {
  // The observability contract: telemetry must observe the campaign, not
  // perturb it.  Fully-on and fully-off runs of the same (seed, shards)
  // must agree field-by-field on every record.
  CampaignConfig base;
  base.injections = 250;
  base.seed = 13;
  base.shards = 2;
  base.xentry.transition_detection = false;  // no model installed
  CampaignConfig on = base;
  on.obs = obs::Options::all();
  const auto a = run_campaign(base);
  const auto b = run_campaign(on);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    ASSERT_TRUE(records_identical(a.records[i], b.records[i]))
        << "record " << i << " differs between telemetry modes";
  }
  // The off run collects nothing; the on run collects everything.
  EXPECT_TRUE(a.metrics.empty());
  EXPECT_TRUE(a.trace.events().empty());
  EXPECT_FALSE(b.metrics.empty());
  EXPECT_FALSE(b.trace.events().empty());
}

TEST(CampaignTest, ValidateRejectsBadConfigs) {
  const auto valid = [] {
    CampaignConfig c;
    c.xentry.transition_detection = false;
    return c;
  };
  EXPECT_NO_THROW(validate_campaign_config(valid()));

  CampaignConfig c = valid();
  c.injections = -1;
  EXPECT_THROW(validate_campaign_config(c), std::invalid_argument);
  EXPECT_THROW(run_campaign(c), std::invalid_argument);  // checked up front

  c = valid();
  c.activation_bias = 1.5;
  EXPECT_THROW(validate_campaign_config(c), std::invalid_argument);
  c.activation_bias = -0.1;
  EXPECT_THROW(validate_campaign_config(c), std::invalid_argument);
  c.activation_bias = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(validate_campaign_config(c), std::invalid_argument);

  c = valid();
  c.warmup_activations = -1;
  EXPECT_THROW(validate_campaign_config(c), std::invalid_argument);

  c = valid();
  c.stream_gap = -3;
  EXPECT_THROW(validate_campaign_config(c), std::invalid_argument);

  c = valid();
  c.shards = -2;
  EXPECT_THROW(validate_campaign_config(c), std::invalid_argument);

  c = valid();
  c.obs.flight_recorder = true;
  c.obs.flight_recorder_depth = 0;
  EXPECT_THROW(validate_campaign_config(c), std::invalid_argument);

  c = valid();
  c.obs.tracing = true;
  c.obs.trace_max_events = 0;
  EXPECT_THROW(validate_campaign_config(c), std::invalid_argument);

  c = valid();
  c.heartbeat.interval_sec = 1.0;  // interval without a callback
  EXPECT_THROW(validate_campaign_config(c), std::invalid_argument);

  c = valid();
  c.heartbeat.interval_sec = -1.0;
  c.heartbeat.callback = [](const HeartbeatSample&) {};
  EXPECT_THROW(validate_campaign_config(c), std::invalid_argument);

  // Transition detection with no model AND no dataset collection would
  // silently detect nothing; training configs (collect_dataset) are the
  // legitimate exception.
  c = valid();
  c.xentry.transition_detection = true;
  EXPECT_THROW(validate_campaign_config(c), std::invalid_argument);
  c.collect_dataset = true;
  EXPECT_NO_THROW(validate_campaign_config(c));
}

std::shared_ptr<const analysis::AnalysisArtifacts> analyze_machine(
    const hv::MicrovisorOptions& opt) {
  const hv::Microvisor mv = hv::build_microvisor(opt);
  return std::make_shared<const analysis::AnalysisArtifacts>(
      analysis::analyze_program(mv.program, hv::analyze_options(mv)));
}

TEST(CampaignTest, ControlFlowDetectionRequiresArtifacts) {
  CampaignConfig c;
  c.xentry.transition_detection = false;
  c.xentry.control_flow_detection = true;
  EXPECT_THROW(validate_campaign_config(c), std::invalid_argument);
  c.analysis = analyze_machine(c.machine);
  EXPECT_NO_THROW(validate_campaign_config(c));
}

TEST(CampaignTest, StaleAnalysisArtifactsRejected) {
  CampaignConfig c;
  c.injections = 1;
  c.xentry.transition_detection = false;
  hv::MicrovisorOptions other = c.machine;
  other.assertions = !other.assertions;  // different program text
  c.analysis = analyze_machine(other);
  EXPECT_THROW(run_campaign(c), std::invalid_argument);
  c.analysis = analyze_machine(c.machine);
  EXPECT_NO_THROW(run_campaign(c));
}

TEST(CampaignTest, JitEngineRequiresAnalysisArtifacts) {
  // The threaded engine compiles from the CFG in cfg.analysis; without
  // artifacts the config must be rejected up front, not at shard time.
  CampaignConfig c;
  c.xentry.transition_detection = false;
  c.xentry.engine = sim::EngineKind::Jit;
  EXPECT_THROW(validate_campaign_config(c), std::invalid_argument);
  c.analysis = analyze_machine(c.machine);
  EXPECT_NO_THROW(validate_campaign_config(c));
  // The reference engine needs nothing attached.
  c.analysis = nullptr;
  c.xentry.engine = sim::EngineKind::Reference;
  EXPECT_NO_THROW(validate_campaign_config(c));
}

TEST(CampaignTest, RecordsBitIdenticalAcrossExecutionEngines) {
  // The tentpole determinism contract: the execution engine is a pure
  // throughput knob.  Fast, reference, and threaded-code runs of the same
  // (seed, shards) must agree field-by-field on every record.
  CampaignConfig fast;
  fast.injections = 120;
  fast.seed = 23;
  fast.shards = 2;
  fast.xentry.transition_detection = false;  // no model installed
  CampaignConfig ref = fast;
  ref.xentry.engine = sim::EngineKind::Reference;
  CampaignConfig jit = fast;
  jit.xentry.engine = sim::EngineKind::Jit;
  jit.analysis = analyze_machine(jit.machine);
  const auto a = run_campaign(fast);
  const auto b = run_campaign(ref);
  const auto c = run_campaign(jit);
  ASSERT_EQ(a.records.size(), b.records.size());
  ASSERT_EQ(a.records.size(), c.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    ASSERT_TRUE(records_identical(a.records[i], b.records[i]))
        << "record " << i << " differs fast vs reference";
    ASSERT_TRUE(records_identical(a.records[i], c.records[i]))
        << "record " << i << " differs fast vs jit";
  }
}

TEST(CampaignTest, RecordsBitIdenticalWithControlFlowDisabledVsAbsent) {
  // The digest contract for the new technique: installing artifacts with
  // the detection flag off must not perturb a single record.
  CampaignConfig base;
  base.injections = 250;
  base.seed = 13;
  base.shards = 2;
  base.xentry.transition_detection = false;  // no model installed
  CampaignConfig with_artifacts = base;
  with_artifacts.analysis = analyze_machine(base.machine);
  const auto a = run_campaign(base);
  const auto b = run_campaign(with_artifacts);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    ASSERT_TRUE(records_identical(a.records[i], b.records[i]))
        << "record " << i << " differs with artifacts installed";
  }
}

TEST(CampaignTest, ControlFlowDetectionFiresAsDistinctClass) {
  CampaignConfig cfg;
  cfg.injections = 3000;
  cfg.seed = 17;
  cfg.shards = 2;
  cfg.xentry.transition_detection = false;  // isolate the CFI technique
  cfg.xentry.control_flow_detection = true;
  cfg.analysis = analyze_machine(cfg.machine);
  const auto res = run_campaign(cfg);
  const CoverageBreakdown cov = coverage_breakdown(res.records);
  EXPECT_GT(cov.control_flow, 0u)
      << "a 3000-injection campaign should catch some wild edges";
  std::size_t cfi_records = 0;
  for (const auto& r : res.records) {
    if (r.technique == xentry::Technique::ControlFlow) {
      EXPECT_TRUE(r.detected);
      ++cfi_records;
    }
  }
  EXPECT_GT(cfi_records, 0u);

  // Same campaign without CFI: the technique never appears.
  CampaignConfig off = cfg;
  off.xentry.control_flow_detection = false;
  off.analysis = nullptr;
  const auto plain = run_campaign(off);
  for (const auto& r : plain.records) {
    EXPECT_NE(r.technique, xentry::Technique::ControlFlow);
  }
  // CFI only adds detections on runs the other techniques passed over:
  // total coverage can only improve.
  const CoverageBreakdown cov_off = coverage_breakdown(plain.records);
  EXPECT_GE(cov.coverage(), cov_off.coverage());
}

TEST(CampaignTest, ControlFlowMetricsExposed) {
  CampaignConfig cfg;
  cfg.injections = 400;
  cfg.seed = 23;
  cfg.shards = 2;
  cfg.xentry.transition_detection = false;
  cfg.xentry.control_flow_detection = true;
  cfg.analysis = analyze_machine(cfg.machine);
  cfg.obs.metrics = true;
  const auto res = run_campaign(cfg);
  ASSERT_NE(res.metrics.find_counter("xentry.cfi.checks"), nullptr);
  EXPECT_GT(res.metrics.find_counter("xentry.cfi.checks")->value(), 0u);
  std::uint64_t cfi_detections = 0;
  for (const auto& r : res.records) {
    cfi_detections += r.technique == xentry::Technique::ControlFlow;
  }
  const obs::Counter* edge = res.metrics.find_counter("xentry.cfi.edge_misses");
  const obs::Counter* derived =
      res.metrics.find_counter("xentry.cfi.derived_fires");
  ASSERT_NE(edge, nullptr);
  ASSERT_NE(derived, nullptr);
  // Metrics count observations; records count activated faults.  A derived
  // range check inspects register *values* at the gate, so a flipped but
  // never-read register (not "activated" per the bookkeeping) can trip it —
  // that observation bumps the metric while the record stays Masked.
  EXPECT_GE(edge->value() + derived->value(), cfi_detections);
  EXPECT_GT(cfi_detections, 0u);
}

TEST(CampaignTest, TimingDetectionRequiresArtifactsWithEnvelopes) {
  CampaignConfig c;
  c.xentry.transition_detection = false;
  c.xentry.timing_detection = true;
  EXPECT_THROW(validate_campaign_config(c), std::invalid_argument);
  // Artifacts without timing envelopes are equally useless: the detector
  // could never fire, so the config must be rejected up front.
  const hv::Microvisor mv = hv::build_microvisor(c.machine);
  analysis::AnalyzeOptions no_timing = hv::analyze_options(mv);
  no_timing.timing_envelopes = false;
  c.analysis = std::make_shared<const analysis::AnalysisArtifacts>(
      analysis::analyze_program(mv.program, no_timing));
  EXPECT_THROW(validate_campaign_config(c), std::invalid_argument);
  c.analysis = analyze_machine(c.machine);
  EXPECT_NO_THROW(validate_campaign_config(c));
}

TEST(CampaignTest, RecordsBitIdenticalWithTimingDisabledVsAbsent) {
  // The digest contract: installing artifacts that carry timing
  // envelopes with timing detection off must not perturb a single
  // record — the disabled path must not even change counter arming.
  CampaignConfig base;
  base.injections = 250;
  base.seed = 29;
  base.shards = 2;
  base.xentry.transition_detection = false;  // no model installed
  CampaignConfig with_artifacts = base;
  with_artifacts.analysis = analyze_machine(base.machine);
  with_artifacts.xentry.timing_detection = false;  // explicit
  const auto a = run_campaign(base);
  const auto b = run_campaign(with_artifacts);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    ASSERT_TRUE(records_identical(a.records[i], b.records[i]))
        << "record " << i << " differs with envelopes installed";
  }
}

TEST(CampaignTest, TimingOnVsOffDiffersOnlyInDetectionFields) {
  // With transition detection on (counters armed either way), enabling
  // timing detection must not change which injections run or what they
  // do — only the detection verdict may move.
  CampaignConfig off;
  off.injections = 2000;
  off.seed = 31;
  off.shards = 2;
  off.collect_dataset = true;  // the training configuration: counters armed
  off.analysis = analyze_machine(off.machine);
  CampaignConfig on = off;
  on.xentry.timing_detection = true;
  const auto a = run_campaign(off);
  const auto b = run_campaign(on);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const InjectionRecord& ra = a.records[i];
    const InjectionRecord& rb = b.records[i];
    ASSERT_EQ(ra.reason.code(), rb.reason.code()) << "record " << i;
    ASSERT_EQ(ra.activation_seed, rb.activation_seed) << "record " << i;
    ASSERT_EQ(ra.injection.at_step, rb.injection.at_step) << "record " << i;
    ASSERT_EQ(ra.injection.reg, rb.injection.reg) << "record " << i;
    ASSERT_EQ(ra.injection.bit, rb.injection.bit) << "record " << i;
    ASSERT_EQ(ra.injected, rb.injected) << "record " << i;
    ASSERT_EQ(ra.activated, rb.activated) << "record " << i;
    ASSERT_EQ(ra.consequence, rb.consequence) << "record " << i;
    ASSERT_EQ(ra.trap, rb.trap) << "record " << i;
    ASSERT_TRUE(ra.features.as_array() == rb.features.as_array())
        << "record " << i;
    if (ra.detected) {
      // Timing only inspects runs the other techniques passed over, so
      // an off-side detection must survive unchanged.
      ASSERT_TRUE(rb.detected) << "record " << i;
      ASSERT_EQ(ra.technique, rb.technique) << "record " << i;
    } else if (rb.detected) {
      ASSERT_EQ(rb.technique, xentry::Technique::Timing) << "record " << i;
    }
  }
}

TEST(CampaignTest, TimingDetectionFiresAsDistinctClass) {
  CampaignConfig cfg;
  cfg.injections = 6000;
  cfg.seed = 202;
  cfg.shards = 2;
  cfg.xentry.transition_detection = false;  // isolate the timing technique
  cfg.xentry.timing_detection = true;
  cfg.analysis = analyze_machine(cfg.machine);
  const auto res = run_campaign(cfg);
  const CoverageBreakdown cov = coverage_breakdown(res.records);
  EXPECT_GT(cov.timing, 0u)
      << "a 6000-injection campaign should trip some counter envelopes";
  std::size_t timing_records = 0;
  for (const auto& r : res.records) {
    if (r.technique == xentry::Technique::Timing) {
      EXPECT_TRUE(r.detected);
      ++timing_records;
    }
  }
  EXPECT_GT(timing_records, 0u);

  // Same campaign without timing detection: the technique never appears.
  CampaignConfig off = cfg;
  off.xentry.timing_detection = false;
  const auto plain = run_campaign(off);
  for (const auto& r : plain.records) {
    EXPECT_NE(r.technique, xentry::Technique::Timing);
  }
  const CoverageBreakdown cov_off = coverage_breakdown(plain.records);
  EXPECT_GE(cov.coverage(), cov_off.coverage());
}

TEST(CampaignTest, TimingMetricsExposed) {
  CampaignConfig cfg;
  cfg.injections = 400;
  cfg.seed = 23;
  cfg.shards = 2;
  cfg.xentry.transition_detection = false;
  cfg.xentry.timing_detection = true;
  cfg.analysis = analyze_machine(cfg.machine);
  cfg.obs.metrics = true;
  const auto res = run_campaign(cfg);
  const obs::Counter* checks = res.metrics.find_counter("xentry.timing.checks");
  ASSERT_NE(checks, nullptr);
  EXPECT_GT(checks->value(), 0u);
  const obs::Counter* cyc =
      res.metrics.find_counter("xentry.timing.cycle_misses");
  const obs::Counter* ctr =
      res.metrics.find_counter("xentry.timing.counter_misses");
  ASSERT_NE(cyc, nullptr);
  ASSERT_NE(ctr, nullptr);
  std::uint64_t timing_detections = 0;
  for (const auto& r : res.records) {
    timing_detections += r.technique == xentry::Technique::Timing;
  }
  // Every timing detection implies at least one envelope miss; misses on
  // non-activated observations may exceed the record count.
  EXPECT_GE(cyc->value() + ctr->value(), timing_detections);
}

TEST(CampaignTest, HeartbeatFiresAndFinalSampleIsExact) {
  CampaignConfig cfg;
  cfg.injections = 400;
  cfg.seed = 7;
  cfg.shards = 2;
  cfg.xentry.transition_detection = false;  // no model installed
  std::mutex mu;
  std::vector<HeartbeatSample> samples;
  cfg.heartbeat.interval_sec = 0.002;
  cfg.heartbeat.callback = [&](const HeartbeatSample& s) {
    std::lock_guard<std::mutex> lock(mu);
    samples.push_back(s);
  };
  const auto res = run_campaign(cfg);

  // run_campaign joins the monitor before returning; no lock needed now.
  ASSERT_FALSE(samples.empty());
  for (std::size_t i = 0; i + 1 < samples.size(); ++i) {
    EXPECT_FALSE(samples[i].last) << "sample " << i;
    EXPECT_LE(samples[i].completed, samples[i].total);
  }
  const HeartbeatSample& fin = samples.back();
  EXPECT_TRUE(fin.last);
  EXPECT_EQ(fin.total, 400u);
  EXPECT_EQ(fin.completed, res.records.size());
  EXPECT_GT(fin.elapsed_sec, 0.0);
  std::uint64_t detected = 0;
  std::array<std::uint64_t, kNumTechniques> by_technique{};
  for (const auto& r : res.records) {
    detected += r.detected;
    if (r.detected) ++by_technique[static_cast<int>(r.technique)];
  }
  EXPECT_EQ(fin.detected_total, detected);
  EXPECT_EQ(fin.detected_by_technique, by_technique);
}

TEST(CampaignTest, FlightRecorderPopulatesBlackboxOnSdcAndCrash) {
  CampaignConfig cfg;
  cfg.injections = 600;
  cfg.seed = 9;
  cfg.shards = 2;
  cfg.xentry.transition_detection = false;  // no model installed
  cfg.obs.flight_recorder = true;
  cfg.obs.flight_recorder_depth = 8;
  const auto res = run_campaign(cfg);
  std::size_t worthy = 0;
  for (const auto& r : res.records) {
    if (is_blackbox_worthy(r.consequence)) {
      ++worthy;
      EXPECT_FALSE(r.blackbox.empty());
      EXPECT_LE(r.blackbox.size(), 8u);
      for (std::size_t i = 1; i < r.blackbox.size(); ++i) {
        EXPECT_EQ(r.blackbox[i].seq, r.blackbox[i - 1].seq + 1)
            << "frames must be consecutive, oldest first";
      }
    } else {
      EXPECT_TRUE(r.blackbox.empty());
    }
  }
  ASSERT_GT(worthy, 0u) << "campaign produced no SDC/crash outcomes to dump";

  // With the recorder off, no record carries a postmortem.
  cfg.obs = {};
  const auto off = run_campaign(cfg);
  for (const auto& r : off.records) EXPECT_TRUE(r.blackbox.empty());
}

TEST(CampaignTest, MetricsMatchRecordStream) {
  CampaignConfig cfg;
  cfg.injections = 500;
  cfg.seed = 21;
  cfg.shards = 2;
  cfg.xentry.transition_detection = false;  // no model installed
  cfg.obs.metrics = true;
  const auto res = run_campaign(cfg);

  std::uint64_t activated = 0, manifested = 0, detected = 0;
  for (const auto& r : res.records) {
    activated += r.activated;
    manifested += is_manifested(r.consequence);
    detected += r.detected;
  }
  ASSERT_NE(res.metrics.find_counter("campaign.injections"), nullptr);
  EXPECT_EQ(res.metrics.find_counter("campaign.injections")->value(), 500u);
  EXPECT_EQ(res.metrics.find_counter("campaign.activated")->value(), activated);
  EXPECT_EQ(res.metrics.find_counter("campaign.manifested")->value(),
            manifested);
  EXPECT_EQ(res.metrics.find_counter("campaign.detected")->value(), detected);
  ASSERT_NE(res.metrics.find_gauge("campaign.shards"), nullptr);
  EXPECT_EQ(res.metrics.find_gauge("campaign.shards")->value(), 2);
  EXPECT_GT(res.metrics.find_gauge("campaign.elapsed_us")->value(), 0);

  // The machine-level histograms saw traffic (sampled 1-in-N, but a
  // 500-injection campaign snapshots far more often than N).
  ASSERT_NE(res.metrics.find_histogram("machine.snapshot_ns"), nullptr);
  EXPECT_GT(res.metrics.find_histogram("machine.snapshot_ns")->count(), 0u);
  ASSERT_NE(res.metrics.find_histogram("xentry.handler_length"), nullptr);
  EXPECT_GT(res.metrics.find_histogram("xentry.handler_length")->count(), 0u);

  // Every detection technique seen in the records has a live counter.
  for (const auto& r : res.records) {
    if (!r.detected) continue;
    std::string name = "xentry.detections.";
    name += technique_name(r.technique);
    const obs::Counter* c = res.metrics.find_counter(name);
    ASSERT_NE(c, nullptr) << name;
    EXPECT_GT(c->value(), 0u) << name;
  }
}

TEST(CampaignTest, TraceCoversCampaignPhases) {
  CampaignConfig cfg;
  cfg.injections = 120;
  cfg.seed = 3;
  cfg.shards = 2;
  cfg.xentry.transition_detection = false;  // no model installed
  cfg.obs.tracing = true;
  cfg.obs.metrics = true;
  const auto res = run_campaign(cfg);
  bool saw_warmup = false, saw_probe = false, saw_faulted = false;
  for (const auto& ev : res.trace.events()) {
    EXPECT_GE(ev.tid, 0);
    EXPECT_LT(ev.tid, 2);
    if (ev.name == "phase:warmup") saw_warmup = true;
    if (ev.name == "phase:golden_probe") saw_probe = true;
    if (ev.name == "phase:faulted_run") saw_faulted = true;
  }
  EXPECT_TRUE(saw_warmup);
  EXPECT_TRUE(saw_probe);
  EXPECT_TRUE(saw_faulted);
  EXPECT_EQ(res.trace.dropped(), 0u);
  // The recorder's drop count is mirrored into the registry so snapshot
  // and heartbeat consumers see it without parsing the trace footer.
  ASSERT_NE(res.metrics.find_gauge("obs.trace.dropped"), nullptr);
  EXPECT_EQ(res.metrics.find_gauge("obs.trace.dropped")->value(),
            static_cast<std::int64_t>(res.trace.dropped()));
}

TEST(CampaignTest, UniformSweepCoversAllReasons) {
  auto profile = uniform_sweep_profile();
  EXPECT_EQ(profile.mix.size(), hv::all_exit_reasons().size());
}

TEST(StatsTest, CoverageBreakdownAccounting) {
  std::vector<InjectionRecord> recs(4);
  recs[0].consequence = Consequence::HypervisorCrash;
  recs[0].detected = true;
  recs[0].technique = Technique::HardwareException;
  recs[1].consequence = Consequence::AppSdc;
  recs[1].detected = true;
  recs[1].technique = Technique::VmTransition;
  recs[2].consequence = Consequence::Masked;  // not manifested
  recs[3].consequence = Consequence::AllVmFailure;  // undetected
  auto cov = coverage_breakdown(recs);
  EXPECT_EQ(cov.manifested, 3u);
  EXPECT_EQ(cov.hw_exception, 1u);
  EXPECT_EQ(cov.vm_transition, 1u);
  EXPECT_EQ(cov.undetected, 1u);
  EXPECT_NEAR(cov.coverage(), 2.0 / 3.0, 1e-12);
}

TEST(StatsTest, LatencyCdfAndPercentile) {
  std::vector<std::uint64_t> lat = {10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
  auto cdf = latency_cdf(lat, {0, 50, 100, 200});
  ASSERT_EQ(cdf.size(), 4u);
  EXPECT_DOUBLE_EQ(cdf[0], 0.0);
  EXPECT_DOUBLE_EQ(cdf[1], 0.5);
  EXPECT_DOUBLE_EQ(cdf[2], 1.0);
  EXPECT_DOUBLE_EQ(cdf[3], 1.0);
  EXPECT_EQ(latency_percentile(lat, 95), 100u);
  EXPECT_EQ(latency_percentile(lat, 0), 10u);
  EXPECT_EQ(latency_percentile({}, 95), 0u);
}

TEST(StatsTest, UndetectedBreakdownSkipsDetectedAndMasked) {
  std::vector<InjectionRecord> recs(3);
  recs[0].consequence = Consequence::AppSdc;
  recs[0].undetected = UndetectedClass::TimeValues;
  recs[1].consequence = Consequence::AppSdc;
  recs[1].detected = true;
  recs[2].consequence = Consequence::Masked;
  auto u = undetected_breakdown(recs);
  EXPECT_EQ(u.total, 1u);
  EXPECT_EQ(u.time_values, 1u);
  EXPECT_DOUBLE_EQ(u.share(u.time_values), 1.0);
}

TEST(TrainingTest, OversampleReachesTargetFraction) {
  ml::Dataset ds({"x"});
  std::array<std::int64_t, 1> v{1};
  for (int i = 0; i < 95; ++i) ds.add(v, ml::Label::Correct);
  for (int i = 0; i < 5; ++i) ds.add(v, ml::Label::Incorrect);
  ml::Dataset bal = oversample_incorrect(ds, 0.2);
  const double frac = static_cast<double>(bal.count(ml::Label::Incorrect)) /
                      static_cast<double>(bal.size());
  EXPECT_GT(frac, 0.12);  // integer-copy granularity keeps it near target
  EXPECT_LE(frac, 0.25);
}

TEST(TrainingTest, OversampleNoOpCases) {
  ml::Dataset ds({"x"});
  std::array<std::int64_t, 1> v{1};
  ds.add(v, ml::Label::Incorrect);
  ds.add(v, ml::Label::Incorrect);
  EXPECT_EQ(oversample_incorrect(ds, 0.5).size(), 2u);  // all incorrect
  EXPECT_EQ(oversample_incorrect(ds, 0.0).size(), 2u);  // disabled
}

TEST(TrainingTest, EndToEndTrainingProducesUsableModel) {
  CampaignConfig cfg;
  cfg.injections = 2500;
  cfg.seed = 5;
  cfg.collect_dataset = true;
  auto res = run_campaign(cfg);
  auto det = train_detector(res.dataset);
  EXPECT_TRUE(det.tree.trained());
  EXPECT_FALSE(det.rules.empty());
  EXPECT_GT(det.test_eval.accuracy(), 0.90);
  EXPECT_LT(det.test_eval.false_positive_rate(), 0.05);
}

TEST(TrainingTest, EmptyDatasetThrows) {
  ml::Dataset empty({"a"});
  EXPECT_THROW(train_detector(empty), std::invalid_argument);
}

}  // namespace
}  // namespace xentry::fault
