// Parallel fault-injection campaigns.
//
// The paper runs 30,000 injections for the coverage study and ~23,400 +
// ~17,700 for training/testing the classifier (Sections III-B, V-D).  A
// campaign shards its injections across threads; each shard owns an
// isolated golden/faulty Machine pair and a workload generator seeded
// per shard, so results are deterministic for a fixed (seed, shards)
// pair and shards share no mutable state.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/experiment.hpp"
#include "fault/outcome.hpp"
#include "ml/dataset.hpp"
#include "ml/rules.hpp"
#include "workloads/workload.hpp"
#include "xentry/framework.hpp"

namespace xentry::fault {

struct CampaignConfig {
  int injections = 1000;
  /// Probability that an injection targets a register the upcoming
  /// instruction reads (an *activated* error, paper Section V-B) instead
  /// of a uniform architectural flip (which mostly lands in dead registers
  /// and masks).  0.5 reproduces the paper's manifestation rate of
  /// roughly 17,700 of 30,000 injections.
  double activation_bias = 0.5;
  /// Fault-free activations executed before the first injection, so the
  /// machine is warm ("regions when applications are running", V-B).
  int warmup_activations = 32;
  /// Fault-free activations between consecutive injections.
  int stream_gap = 2;
  std::uint64_t seed = 1;
  int shards = 0;  ///< 0: hardware concurrency

  hv::MicrovisorOptions machine{};
  XentryConfig xentry{};
  OutcomeModel outcome{};
  /// Transition-detection model (empty: no model installed).
  ml::RuleSet model{};
  /// Activation source.  Leave `mix` empty to sweep all exit reasons
  /// uniformly (the classifier-training configuration).
  wl::WorkloadProfile workload{};

  /// Collect (features, label) samples into CampaignResult::dataset.
  bool collect_dataset = false;
};

struct CampaignResult {
  std::vector<InjectionRecord> records;
  /// Labelled samples: golden runs (Correct) + faulted runs that reached
  /// VM entry (Incorrect when the control-flow trace diverged).
  ml::Dataset dataset{std::vector<std::string>{"VMER", "RT", "BR", "RM",
                                               "WM"}};
};

/// Runs the campaign.  Deterministic per (config.seed, shard count).
CampaignResult run_campaign(const CampaignConfig& config);

/// A workload profile that sweeps every exit reason uniformly.
wl::WorkloadProfile uniform_sweep_profile();

}  // namespace xentry::fault
