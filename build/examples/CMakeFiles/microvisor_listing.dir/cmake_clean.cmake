file(REMOVE_RECURSE
  "CMakeFiles/microvisor_listing.dir/microvisor_listing.cpp.o"
  "CMakeFiles/microvisor_listing.dir/microvisor_listing.cpp.o.d"
  "microvisor_listing"
  "microvisor_listing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microvisor_listing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
