// micro_step: raw interpreter step rate, per execution mode.
//
// Times a representative handler-mix program (loads, stores, ALU, push/pop,
// a call/ret leaf, and a fusable cmp+jne back edge) directly against the
// Cpu, with no Machine or campaign machinery in the loop, for every
// per-step feature mode:
//   plain    run_loop<false,false,false>   (the golden-run configuration)
//   +trace   run_loop<true, false,false>   (golden probe runs)
//   +mask    run_loop<false,true, false>   (exit-mask materialization)
//   +shadow  run_loop<false,false,true>    (shadow-stack redundancy)
// and, for each mode, all three engines: the threaded-code superblock
// engine (jit), the specialized interpreter loop (fast), and the
// single-step reference engine (reference).  The jit/fast ratio is the
// payoff of leaving switch dispatch behind; fast/reference is the payoff
// of mode specialization; the per-mode spread is the marginal cost of
// each feature.
//
// Usage: micro_step [budget_sec_per_cell]
// Output: JSON on stdout.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "analysis/cfg.hpp"
#include "analysis/superblocks.hpp"
#include "sim/assembler.hpp"
#include "sim/cpu.hpp"
#include "sim/jit/compiled_program.hpp"
#include "sim/memory.hpp"

namespace {

using namespace xentry;
using sim::Addr;
using sim::Reg;
using sim::Word;
using Clock = std::chrono::steady_clock;

constexpr Addr kCodeBase = 0x1000;
constexpr Addr kDataBase = 0x8000;
constexpr Addr kDataSize = 0x100;
constexpr Addr kStackBase = 0x20000;
constexpr Addr kStackSize = 0x100;
constexpr Addr kStackTop = kStackBase + kStackSize;
constexpr std::int64_t kShadowOffset = 0x1000;
constexpr std::int64_t kIters = 1000;

/// The handler-mix kernel: each iteration does 2 memory ops, 5 ALU ops,
/// a push/pop pair, a call/ret to a leaf, and the fused compare+branch
/// back edge — roughly the instruction-class mix of the microvisor's
/// hypercall handlers.
sim::Program build_kernel() {
  sim::Assembler as(kCodeBase);
  as.global("bench_entry");
  as.movi(Reg::rcx, kIters);
  as.movi(Reg::rbx, static_cast<std::int64_t>(kDataBase));
  const auto loop = as.here();
  as.load(Reg::rax, Reg::rbx, 0);
  as.addi(Reg::rax, 7);
  as.xori(Reg::rax, 0x55);
  as.store(Reg::rbx, Reg::rax, 1);
  as.push(Reg::rcx);
  as.call("leaf");
  as.pop(Reg::rcx);
  as.shli(Reg::rax, 3);
  as.or_(Reg::rdx, Reg::rax);
  as.dec(Reg::rcx);
  as.cmpi(Reg::rcx, 0);  // fuses with the jne back edge
  as.jne(loop);
  as.hlt();
  as.pad_ud(2);
  as.global("leaf");
  as.inc(Reg::rdx);
  as.ret();
  return as.finish();
}

struct Cell {
  const char* engine;
  const char* mode;
  double steps_per_sec = 0;
};

Cell time_cell(const sim::Program& prog, const char* engine, const char* mode,
               sim::EngineKind kind,
               const std::shared_ptr<const sim::jit::CompiledProgram>& compiled,
               bool trace, bool masks, bool shadow, double budget_sec) {
  sim::Memory mem;
  mem.map(kDataBase, kDataSize, sim::Perm::ReadWrite, "data");
  mem.map(kStackBase, kStackSize, sim::Perm::ReadWrite, "stack");
  mem.map(kStackBase + static_cast<Addr>(kShadowOffset), kStackSize,
          sim::Perm::ReadWrite, "shadow_stack");

  sim::Cpu cpu(&prog, &mem);
  cpu.set_compiled(compiled);
  cpu.set_engine(kind);
  std::vector<Addr> trace_buf;
  cpu.set_mask_tracking(masks);
  if (shadow) cpu.enable_shadow_stack(kShadowOffset);

  Cell cell{engine, mode};
  std::uint64_t steps = 0;
  double elapsed = 0;
  const auto t0 = Clock::now();
  do {
    for (int rep = 0; rep < 8; ++rep) {
      cpu.reset(prog.symbol("bench_entry"), kStackTop);
      if (trace) {
        trace_buf.clear();
        cpu.set_trace(&trace_buf);
      }
      const sim::StepInfo info = cpu.run(1u << 20);
      if (info.status != sim::StepInfo::Status::Halted) {
        std::fprintf(stderr, "micro_step: kernel did not halt\n");
        std::exit(1);
      }
      steps += cpu.steps_executed();
    }
    elapsed = std::chrono::duration<double>(Clock::now() - t0).count();
  } while (elapsed < budget_sec);
  cell.steps_per_sec = static_cast<double>(steps) / elapsed;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const double budget = argc > 1 ? std::atof(argv[1]) : 0.2;
  const sim::Program prog = build_kernel();
  const analysis::ControlFlowGraph cfg = analysis::build_cfg(prog);
  const auto compiled =
      sim::jit::compile(prog, analysis::form_superblocks(cfg, prog));

  const struct {
    const char* mode;
    bool trace, masks, shadow;
  } modes[] = {
      {"plain", false, false, false},
      {"trace", true, false, false},
      {"mask", false, true, false},
      {"shadow", false, false, true},
  };

  std::vector<Cell> cells;
  for (const auto& m : modes) {
    cells.push_back(time_cell(prog, "jit", m.mode, sim::EngineKind::Jit,
                              compiled, m.trace, m.masks, m.shadow, budget));
    cells.push_back(time_cell(prog, "fast", m.mode, sim::EngineKind::Fast,
                              nullptr, m.trace, m.masks, m.shadow, budget));
    cells.push_back(time_cell(prog, "reference", m.mode,
                              sim::EngineKind::Reference, nullptr, m.trace,
                              m.masks, m.shadow, budget));
  }

  std::printf("{\n  \"benchmark\": \"micro_step\",\n  \"cells\": [\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    std::printf("    {\"engine\": \"%s\", \"mode\": \"%s\", "
                "\"steps_per_sec\": %.0f}%s\n",
                cells[i].engine, cells[i].mode, cells[i].steps_per_sec,
                i + 1 < cells.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
  return 0;
}
