# Empty compiler generated dependencies file for xentry_core.
# This may be replaced when dependencies are built.
