#include "fault/record_io.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "fault/outcome.hpp"

namespace xentry::fault {
namespace {

/// A record with every encoded field away from its default.
InjectionRecord sample_record(int i) {
  InjectionRecord r;
  switch (i % 3) {
    case 0:
      r.reason = hv::ExitReason::hypercall(static_cast<hv::Hypercall>(2));
      break;
    case 1:
      r.reason = hv::ExitReason::irq(5);
      break;
    default:
      r.reason = hv::ExitReason::softirq();
      break;
  }
  r.activation_seed = 0x123456789abcdef0ull + static_cast<std::uint64_t>(i);
  r.vcpu = i % 4;
  r.injection.at_step = 77 + static_cast<std::uint64_t>(i);
  r.injection.reg = static_cast<sim::Reg>(i % 8);
  r.injection.bit = (i * 7) % 64;
  r.injected = true;
  r.activated = i % 2 == 0;
  r.consequence = static_cast<Consequence>(i % kNumConsequences);
  r.detected = i % 2 == 1;
  r.technique = static_cast<Technique>(i % kNumTechniques);
  r.latency = 1000u * static_cast<std::uint64_t>(i);
  r.trap = sim::TrapKind::None;
  r.assert_id = static_cast<std::uint32_t>(i);
  r.trace_diverged = i % 5 == 0;
  r.undetected = static_cast<UndetectedClass>(i % 5);
  r.features = {100 + i, 200 + i, 300 + i, 400 + i, 500 + i};
  r.weight = 1.0 / (1.0 + i);  // exercises %.17g round-tripping
  r.masked_weight = 1.0 - r.weight;
  return r;
}

std::vector<InjectionRecord> sample_records(int n) {
  std::vector<InjectionRecord> recs;
  for (int i = 0; i < n; ++i) recs.push_back(sample_record(i));
  return recs;
}

class RecordIoFormatTest : public ::testing::TestWithParam<obs::RecordFormat> {
};

TEST_P(RecordIoFormatTest, EncodeDecodeRoundTripsEveryField) {
  const auto fmt = GetParam();
  const auto recs = sample_records(12);
  std::string stream;
  for (const auto& r : recs) encode_record(r, fmt, stream);

  std::vector<InjectionRecord> decoded;
  EXPECT_TRUE(decode_records(stream, fmt, decoded));
  ASSERT_EQ(decoded.size(), recs.size());
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const auto& a = recs[i];
    const auto& b = decoded[i];
    EXPECT_EQ(a.reason, b.reason) << i;
    EXPECT_EQ(a.activation_seed, b.activation_seed) << i;
    EXPECT_EQ(a.vcpu, b.vcpu) << i;
    EXPECT_EQ(a.injection.at_step, b.injection.at_step) << i;
    EXPECT_EQ(a.injection.reg, b.injection.reg) << i;
    EXPECT_EQ(a.injection.bit, b.injection.bit) << i;
    EXPECT_EQ(a.injected, b.injected) << i;
    EXPECT_EQ(a.activated, b.activated) << i;
    EXPECT_EQ(a.consequence, b.consequence) << i;
    EXPECT_EQ(a.detected, b.detected) << i;
    EXPECT_EQ(a.technique, b.technique) << i;
    EXPECT_EQ(a.latency, b.latency) << i;
    EXPECT_EQ(a.trap, b.trap) << i;
    EXPECT_EQ(a.assert_id, b.assert_id) << i;
    EXPECT_EQ(a.trace_diverged, b.trace_diverged) << i;
    EXPECT_EQ(a.undetected, b.undetected) << i;
    EXPECT_EQ(a.features.as_array(), b.features.as_array()) << i;
    // Weights survive exactly (%.17g / raw bits round-trip).
    EXPECT_EQ(a.weight, b.weight) << i;
    EXPECT_EQ(a.masked_weight, b.masked_weight) << i;
  }
  // The digest contract: the persisted stream is digest-equivalent to the
  // in-memory records it came from.
  EXPECT_EQ(records_digest(decoded), records_digest(recs));
}

TEST_P(RecordIoFormatTest, TruncatedStreamKeepsTheIntactPrefix) {
  const auto fmt = GetParam();
  const auto recs = sample_records(4);
  std::string stream;
  for (const auto& r : recs) encode_record(r, fmt, stream);

  std::string one;
  encode_record(recs[0], fmt, one);
  const std::string torn = stream.substr(0, stream.size() - one.size() / 2);
  std::vector<InjectionRecord> decoded;
  EXPECT_FALSE(decode_records(torn, fmt, decoded));
  EXPECT_EQ(decoded.size(), 3u);

  // decode_record on the torn tail reports failure without advancing.
  std::size_t pos = 0;
  std::string_view tail =
      std::string_view(torn).substr(torn.size() - one.size() / 2);
  InjectionRecord out;
  EXPECT_FALSE(decode_record(tail, fmt, pos, out));
  EXPECT_EQ(pos, 0u);
}

INSTANTIATE_TEST_SUITE_P(Formats, RecordIoFormatTest,
                         ::testing::Values(obs::RecordFormat::kJsonl,
                                           obs::RecordFormat::kBinary),
                         [](const auto& info) {
                           return std::string(
                               obs::record_format_name(info.param));
                         });

TEST(RecordIoTest, FormatsAreDecodeEquivalent) {
  const auto recs = sample_records(8);
  std::string jsonl, bin;
  for (const auto& r : recs) {
    encode_record(r, obs::RecordFormat::kJsonl, jsonl);
    encode_record(r, obs::RecordFormat::kBinary, bin);
  }
  std::vector<InjectionRecord> from_jsonl, from_bin;
  ASSERT_TRUE(decode_records(jsonl, obs::RecordFormat::kJsonl, from_jsonl));
  ASSERT_TRUE(decode_records(bin, obs::RecordFormat::kBinary, from_bin));
  ASSERT_EQ(from_jsonl.size(), from_bin.size());
  EXPECT_EQ(records_digest(from_jsonl), records_digest(from_bin));
  // Binary earns its keep: meaningfully denser than JSONL.
  EXPECT_LT(bin.size(), jsonl.size());
}

TEST(RecordIoTest, DigestIgnoresPostmortemPayloadsAndWeights) {
  InjectionRecord a = sample_record(1);
  InjectionRecord b = a;
  b.weight = 0.125;
  b.masked_weight = 0.875;
  b.blackbox.resize(3);
  const std::uint64_t da = digest_update(kDigestBasis, a);
  EXPECT_EQ(da, digest_update(kDigestBasis, b));

  // But every digested field matters.
  InjectionRecord c = a;
  c.latency += 1;
  EXPECT_NE(da, digest_update(kDigestBasis, c));
  InjectionRecord d = a;
  d.detected = !d.detected;
  EXPECT_NE(da, digest_update(kDigestBasis, d));
}

TEST(RecordIoTest, StreamDigestIsTheFoldOfRecordDigests) {
  const auto recs = sample_records(5);
  std::uint64_t h = kDigestBasis;
  for (const auto& r : recs) h = digest_update(h, r);
  EXPECT_EQ(records_digest(recs), h);
  EXPECT_EQ(records_digest({}), kDigestBasis);
}

TEST(RecordIoTest, JsonlFramesAreSingleTerminatedLines) {
  std::string out;
  encode_record(sample_record(0), obs::RecordFormat::kJsonl, out);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.back(), '\n');
  EXPECT_EQ(out.find('\n'), out.size() - 1);  // no embedded newlines
  EXPECT_EQ(out.front(), '{');
}

}  // namespace
}  // namespace xentry::fault
