// Physical memory of the simulated machine.
//
// Memory is a set of mapped regions over a 64-bit word-address space.  Any
// access outside a mapped region raises #PF; a write to a read-only region
// raises #GP.  The sparseness is deliberate: a single bit flip in a pointer
// register usually lands far outside every region, which is exactly how
// soft errors manifest as "fatal system corruptions" the paper's runtime
// detection catches via hardware exceptions (Section III-A).
//
// Snapshot/restore is the fault-campaign hot path: every injection
// round-trips machine state several times.  Two mechanisms keep that
// cheap without changing observable contents:
//   - every region carries a generation counter bumped on each mutation,
//     so snapshot capture and restore can skip regions that provably have
//     not changed since the last capture/sync (see Snapshot);
//   - read/write cache the last-hit region index, since straight-line
//     code touches the same region on almost every consecutive access.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/types.hpp"

namespace xentry::sim {

enum class Perm : std::uint8_t {
  Read = 1,
  ReadWrite = 3,
};

/// One word that differs between two Memories with identical mappings:
/// the compact (location, xor-mask) element of a corruption set.  The
/// forensics replay engine diffs golden/faulty state at every lockstep
/// checkpoint, so the representation carries no values — just where and
/// which bits.
struct WordDiff {
  Addr addr = 0;
  Word xor_mask = 0;  ///< a ^ b at `addr`; never zero
};

class Memory {
 public:
  struct Region {
    Addr base = 0;
    Addr size = 0;  ///< in words
    Perm perm = Perm::ReadWrite;
    std::string name;
    std::vector<Word> data;
    /// Mutation generation: bumped on every write/poke/restore-copy/clear.
    /// Equal generations between two points in time prove the contents
    /// did not change in between (the converse need not hold).
    std::uint64_t gen = 0;

    bool contains(Addr a) const { return a >= base && a - base < size; }
  };

  /// A copy of all region contents, tagged with the source Memory's
  /// identity and per-region generations so a later restore (or
  /// re-capture via snapshot_into) can prove which regions are already
  /// up to date and skip them.  Equality compares contents only.
  struct Snapshot {
    struct RegionImage {
      std::vector<Word> data;
      std::uint64_t gen = 0;
    };
    std::uint64_t source_id = 0;  ///< Memory instance captured from (0: none)
    std::vector<RegionImage> regions;

    bool empty() const { return regions.empty(); }
    friend bool operator==(const Snapshot& a, const Snapshot& b) {
      if (a.regions.size() != b.regions.size()) return false;
      for (std::size_t i = 0; i < a.regions.size(); ++i) {
        if (a.regions[i].data != b.regions[i].data) return false;
      }
      return true;
    }
  };

  Memory();
  /// Copies share contents but get a fresh identity: snapshots taken from
  /// the copy must never be mistaken for snapshots of the original once
  /// the two diverge.
  Memory(const Memory& other);
  Memory& operator=(const Memory& other);
  Memory(Memory&&) = default;
  Memory& operator=(Memory&&) = default;

  /// Maps a region.  Regions must not overlap; they are kept sorted by base.
  /// Returns the region index, which stays stable for the Memory lifetime.
  std::size_t map(Addr base, Addr size, Perm perm, std::string name);

  /// Reads the word at `a` into `out`.  Returns a Trap (kind None on
  /// success).  No C++ exceptions: this is the simulator hot path.
  /// The last-two-hit-regions fast path lives here so call sites inline
  /// it; two entries cover the common stack/data alternation of handler
  /// code, which a single hint would thrash on.
  Trap read(Addr a, Word& out) const {
    if (hint_ < regions_.size()) {
      const Region& r = regions_[hint_];
      if (r.contains(a)) {
        out = r.data[a - r.base];
        return {};
      }
    }
    if (hint2_ < regions_.size()) {
      const Region& r = regions_[hint2_];
      if (r.contains(a)) {
        out = r.data[a - r.base];
        return {};
      }
    }
    return read_slow(a, out);
  }

  /// Writes `v` at `a`.  Returns a Trap (kind None on success).
  Trap write(Addr a, Word v) {
    if (hint_ < regions_.size()) {
      Region& r = regions_[hint_];
      if (r.contains(a) && r.perm == Perm::ReadWrite) {
        r.data[a - r.base] = v;
        ++r.gen;
        return {};
      }
    }
    if (hint2_ < regions_.size()) {
      Region& r = regions_[hint2_];
      if (r.contains(a) && r.perm == Perm::ReadWrite) {
        r.data[a - r.base] = v;
        ++r.gen;
        return {};
      }
    }
    return write_slow(a, v);
  }

  /// Unchecked accessors for host-side (non-simulated) setup and
  /// inspection.  Aborts if `a` is unmapped — programming error, not a
  /// simulated fault.
  Word peek(Addr a) const {
    if (hint_ < regions_.size() && regions_[hint_].contains(a)) {
      const Region& r = regions_[hint_];
      return r.data[a - r.base];
    }
    return peek_slow(a);
  }
  void poke(Addr a, Word v) {
    if (hint_ < regions_.size() && regions_[hint_].contains(a)) {
      Region& r = regions_[hint_];
      r.data[a - r.base] = v;
      ++r.gen;
      return;
    }
    poke_slow(a, v);
  }

  /// Direct mutable view of `len` words starting at `a`, for host-side
  /// bulk setup (one region lookup and one generation bump instead of one
  /// per word).  Aborts if the range is not fully inside one mapped
  /// region — programming error, not a simulated fault.
  Word* poke_span(Addr a, Addr len);

  /// Raw view of one mapped region, for the execution engines' software
  /// TLB: a flat {base, size, data, writable} the hot loop can keep in
  /// registers so a hit is one compare and one load, skipping the region
  /// vector walk.  `gen` lets the engine bump the mutation generation
  /// itself — exactly once per write-install, before any raw store goes
  /// through the view, which preserves the generation contract (equal
  /// generations prove unchanged contents) because snapshot/restore never
  /// run while an engine holds a view.  Views are invalidated by map();
  /// engines hold them only within one run call.
  struct DirectSpan {
    Addr base = 0;
    Addr size = 0;  ///< 0: no mapped region at the probed address
    Word* data = nullptr;
    std::uint64_t* gen = nullptr;
    bool writable = false;
  };
  DirectSpan direct_span(Addr a);

  /// Fills `out` with one WordDiff per word whose contents differ from
  /// `other`, in ascending address order, and returns the diff count.
  /// `other` must have identical region mappings (same map() calls).
  /// Regions whose contents compare equal are skipped via one memcmp, so
  /// the common nearly-converged comparison touches no per-word loop.
  /// `out` is cleared first and reused — the lockstep replay calls this
  /// once per checkpoint and must not reallocate per call.
  std::size_t diff_spans(const Memory& other, std::vector<WordDiff>& out) const;

  /// True when any mapped word differs from `other` (identical mappings
  /// required).  The existence-only form of diff_spans: one memcmp per
  /// region, early exit on the first mismatch — the lockstep divergence
  /// predicate evaluates this every chunk boundary.
  bool differs_from(const Memory& other) const;

  bool is_mapped(Addr a) const { return find(a) != nullptr; }
  const Region* region_at(Addr a) const { return find(a); }
  const std::vector<Region>& regions() const { return regions_; }

  /// Snapshot of all region contents, for golden-run comparison and for
  /// re-running a faulted activation from a clean state.
  Snapshot snapshot() const;

  /// Like snapshot(), but reuses `out`'s buffers and skips regions whose
  /// generation shows `out` already holds their current contents.  The
  /// campaign loop re-captures the same Snapshot object every injection;
  /// only regions the last activation actually wrote get re-copied.
  void snapshot_into(Snapshot& out) const;

  /// Restores region contents from `snap`.  Incremental: a region is
  /// copied back only if it was mutated since the last sync with `snap`'s
  /// source, or if the source itself mutated it since that sync — regions
  /// untouched on both sides are provably identical and skipped.
  void restore(const Snapshot& snap);

  /// Zero-fills every mapped region.
  void clear();

 private:
  /// Per-region record of the last restore: which source snapshot state
  /// this region was synced to, and our own generation right after.
  struct SyncState {
    std::uint64_t source_id = 0;   ///< 0: never synced
    std::uint64_t source_gen = 0;
    std::uint64_t own_gen = 0;
  };

  const Region* find(Addr a) const;
  Region* find(Addr a);
  Trap read_slow(Addr a, Word& out) const;
  Trap write_slow(Addr a, Word v);
  Word peek_slow(Addr a) const;
  void poke_slow(Addr a, Word v);

  std::vector<Region> regions_;  // sorted by base
  std::vector<SyncState> sync_;  // parallel to regions_
  std::uint64_t id_ = 0;         ///< unique per instance (and per copy)
  mutable std::size_t hint_ = 0;  ///< last-hit region index (locality cache)
  mutable std::size_t hint2_ = 0; ///< previous distinct hit (2-way cache)
};

}  // namespace xentry::sim
