// Fig. 10: cumulative distribution of detection latency (instructions
// between error activation and detection), per technique.
//
// Paper anchors: ~95% of VM-transition detections within 700 instructions;
// hardware exceptions and software assertions generally shorter; every
// detection lands before the VM execution resumes.
#include <cstdio>

#include "bench/bench_util.hpp"

int main() {
  using namespace xentry;
  bench::print_header("Fig. 10: CDF of detection latency (instructions)");

  fault::TrainedDetector det = bench::train_paper_model();
  const auto res = bench::run_eval_campaign(det.rules);
  auto by_tech = fault::latency_by_technique(res.records);

  const std::vector<std::uint64_t> points = {100, 200, 300, 400, 500,
                                             600, 700, 800, 900, 1000};
  std::printf("%-14s", "technique");
  for (std::uint64_t p : points) std::printf(" %6lu", (unsigned long)p);
  std::printf("   n      p95\n");

  for (Technique t : {Technique::HardwareException,
                      Technique::SoftwareAssertion,
                      Technique::VmTransition}) {
    const auto& lats = by_tech[t];
    const auto cdf = fault::latency_cdf(lats, points);
    std::printf("%-14s", std::string(technique_name(t)).c_str());
    for (double c : cdf) std::printf(" %5.1f%%", 100 * c);
    std::printf(" %5zu %7lu\n", lats.size(),
                (unsigned long)fault::latency_percentile(lats, 95));
  }
  std::printf(
      "\npaper anchors: vm_transition p95 < 700 instructions; runtime\n"
      "techniques shorter; all detections occur before VM entry resumes.\n");
  return 0;
}
