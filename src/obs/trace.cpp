#include "obs/trace.hpp"

#include <algorithm>
#include <ostream>
#include <set>

namespace xentry::obs {

void TraceRecorder::merge_from(TraceRecorder&& other) {
  dropped_ += other.dropped_;
  for (TraceEvent& e : other.events_) {
    if (events_.size() >= max_events_) {
      ++dropped_;
      continue;
    }
    events_.push_back(e);
  }
  other.clear();
}

namespace {

void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char hex[] = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

void TraceRecorder::write_chrome_json(std::ostream& os) const {
  os << "{\"traceEvents\": [";
  bool first = true;

  // Lane names: one metadata event per distinct tid.
  std::set<std::int32_t> tids;
  for (const TraceEvent& e : events_) tids.insert(e.tid);
  for (std::int32_t tid : tids) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": "
       << tid << ", \"args\": {\"name\": \"shard " << tid << "\"}}";
  }

  for (const TraceEvent& e : events_) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "{\"name\": ";
    write_json_string(os, e.name);
    os << ", \"ph\": \"" << e.phase << "\", \"pid\": 1, \"tid\": " << e.tid
       << ", \"ts\": " << e.ts_us;
    if (e.phase == 'X') os << ", \"dur\": " << e.dur_us;
    if (e.phase == 'i') os << ", \"s\": \"t\"";
    if (!e.arg_name.empty()) {
      os << ", \"args\": {";
      write_json_string(os, e.arg_name);
      os << ": " << e.arg_value << "}";
    }
    os << "}";
  }
  os << "\n], \"displayTimeUnit\": \"ms\", \"otherData\": {\"dropped_events\": "
     << dropped_ << "}}\n";
}

}  // namespace xentry::obs
