// The microvisor: a miniature para-virtualized hypervisor whose entry
// points are programs in the simulated ISA.
//
// Every handler the paper's Section IV enumerates is emitted as real code:
// 38 hypercalls, 19 exception handlers, 10 APIC interrupt handlers, the
// device-IRQ path, softirqs and tasklets — plus shared subroutines
// (ret_to_guest, evtchn_set_pending, update_time, schedule,
// inject_guest_event).  Because handlers execute instruction by
// instruction, an injected register bit flip perturbs them exactly the way
// the paper describes: corrupted loop counters add dynamic instructions
// (Fig. 5a), corrupted flags take valid-but-wrong branches (Fig. 5b),
// corrupted pointers fault, and corrupted data reaches guest-visible state.
//
// Register conventions (set up by the Machine dispatcher at VM exit):
//   rbp        = hypervisor data base (layout::kHvDataBase)
//   r8         = current VCPU struct address
//   r9         = current domain struct address
//   rdi/rsi/rdx = activation arguments 1..3
//   rax        = handler return value (stored to the guest's rax save slot
//                by ret_to_guest)
// Handler wrappers are `<symbol>: call <symbol>_body; jmp ret_to_guest`;
// bodies are `ret`-terminated so multicall can invoke them indirectly
// through the in-memory hypercall table.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/artifacts.hpp"
#include "hv/exit_reason.hpp"
#include "sim/program.hpp"

namespace xentry::hv {

/// Identifiers of the software assertions compiled into the microvisor.
/// The first two mirror the paper's Listings 1 and 2.
enum AssertId : std::uint32_t {
  kAssertTrapVector = 1,     ///< Listing 1: trap vector <= LAST
  kAssertIdleVcpu,           ///< Listing 2: is_idle_vcpu before idling pcpu
  kAssertEvtchnPort,         ///< event-channel port within table bounds
  kAssertRunqBounds,         ///< runqueue insertion within capacity
  kAssertIrqLine,            ///< IRQ line within the interrupt table
  kAssertMmuCount,           ///< mmu_update batch within limits
  kAssertGdtEntries,         ///< set_gdt entry count within the GDT
  kAssertDebugregIndex,      ///< debug register index 0..7
  kAssertPagesLimit,         ///< tot_pages <= max_pages after memory_op
  kAssertGrantRef,           ///< grant reference within the grant table
  kAssertVcpuIndex,          ///< vcpu_op target within the domain
  kAssertConsoleCount,       ///< console_io batch within the ring
  kAssertMulticallCount,     ///< multicall batch limit
  kAssertMulticallIndex,     ///< multicall target hypercall number
  kAssertTrapTableCount,     ///< set_trap_table batch limit
  kAssertDescriptorIndex,    ///< update_descriptor slot 0..7
  kAssertHvmParam,           ///< hvm_op parameter index
  kAssertTaskletQueue,       ///< tasklet queue occupancy
  kAssertDomainIndex,        ///< foreign-domain index within bounds
  kAssertTimeMonotonic,      ///< system time never goes backwards
  kAssertCurrentVcpu,        ///< current-vcpu pointer within the vcpu table
  kAssertRunqEntry,          ///< runqueue entries are valid vcpu indices
  kAssertPtFixup,            ///< page-fault fixup translation is nonzero
  kAssertTscDelta,           ///< duplicated time reads agree (extension)
  kAssertMaxId,              ///< one past the last valid id
};

std::string assert_name(std::uint32_t id);

struct MicrovisorOptions {
  int num_domains = 3;       ///< Dom0 + two DomUs (the paper's Simics setup)
  int vcpus_per_domain = 1;
  /// Emit the software assertions (the runtime-detection half that lives
  /// in code).  Turning them off yields the "no runtime detection"
  /// baseline for the overhead study.
  bool assertions = true;
  /// Extension (paper Section VI): duplicate time reads in update_time and
  /// verify their variation, catching corrupted time values before they
  /// are published to guests.
  bool time_checks = false;
  /// Extension (paper Section VI): selective redundancy for stack values —
  /// every pushed word is mirrored and verified on pop.  Implemented at
  /// the machine level (the compiler-inserted-duplication equivalent).
  bool shadow_stack = false;
};

struct Microvisor {
  sim::Program program;
  MicrovisorOptions options;

  /// Total vcpus across guest domains (excluding the idle vcpu).
  int num_vcpus() const {
    return options.num_domains * options.vcpus_per_domain;
  }
  /// The reserved idle VCPU slot index.
  int idle_vcpu() const { return num_vcpus(); }

  /// Entry address for an exit reason.
  sim::Addr entry(const ExitReason& reason) const {
    return program.symbol(std::string(handler_symbol(reason)));
  }

  /// Addresses of the `_body` symbols, indexed by hypercall number, for
  /// initializing the in-memory hypercall table.
  std::vector<sim::Addr> hypercall_body_table() const;
};

/// Assembles the complete microvisor text.
Microvisor build_microvisor(const MicrovisorOptions& options = {});

/// Static-analysis options for a microvisor program: every JmpR site is
/// resolved to the multicall-safe hypercall-body set (the only indirect
/// jump the microvisor emits goes through the in-memory hypercall table),
/// and the verifier is bound to the built-in assertion id range.
analysis::AnalyzeOptions analyze_options(const Microvisor& mv);

}  // namespace xentry::hv
