// Observability configuration.
//
// One Options struct gates every telemetry layer: the metrics registry
// (counters / gauges / log2 histograms), the phase/span trace recorder
// (Chrome trace-event JSON), and the per-machine SDC flight recorder.
// Everything defaults to OFF, and every collection site in the hot path
// reduces to a single well-predicted null-pointer or bool check when its
// layer is disabled — the overhead contract (<= 2% disabled, <= 10%
// fully enabled on the micro_campaign configuration) is enforced by
// `bench/obs_overhead`.
#pragma once

#include <cstddef>

namespace xentry::obs {

struct Options {
  /// Per-shard MetricsRegistry collection (detections per technique,
  /// latency/handler-length histograms, snapshot/restore timings),
  /// merged deterministically at campaign end.
  bool metrics = false;
  /// Structured span tracing of campaign phases and per-VM-exit spans,
  /// exportable as Chrome trace-event JSON (Perfetto-loadable).
  bool tracing = false;
  /// Ring buffer of the last N VM exits per machine, dumped into the
  /// InjectionRecord when an outcome is SDC / crash class.
  bool flight_recorder = false;

  /// Ring depth for the flight recorder (frames kept per machine).
  int flight_recorder_depth = 32;
  /// Hard cap on buffered trace events per recorder; events beyond the
  /// cap are counted as dropped, never reallocated past it.
  std::size_t trace_max_events = 1u << 20;

  /// True when any collection layer is live.
  constexpr bool any() const { return metrics || tracing || flight_recorder; }

  /// Everything on, default sizing — the `obs_overhead` "fully enabled"
  /// configuration.
  static constexpr Options all() {
    Options o;
    o.metrics = true;
    o.tracing = true;
    o.flight_recorder = true;
    return o;
  }
};

}  // namespace xentry::obs
