// Golden/faulty lockstep replay: the forensics engine behind
// obs::ForensicsRecord.
//
// A qualifying injection (SDC, app crash, undetected escape) is re-run
// from the golden probe's pre-run snapshot with both machines advancing
// in bounded-step lockstep on the reference engine.  State is compared
// every `chunk_steps` instructions; the first dirty chunk is bisected by
// restoring the chunk-entry checkpoint and replaying prefixes, so the
// first architectural divergence — the instruction whose execution
// propagated the corruption beyond the seeded (register, bit) flip — is
// located to single-instruction resolution.  From there the corruption
// set is sampled at exponentially spaced checkpoints into the taint map.
//
// The replay consumes no campaign randomness and the caller restores
// machine state afterwards, so campaign record digests are bit-identical
// with forensics on or off.
#pragma once

#include <cstdint>

#include "hv/machine.hpp"
#include "obs/forensics.hpp"
#include "sim/cpu.hpp"

namespace xentry::fault {

struct LockstepParams {
  /// Compare interval; a dirty chunk costs ~log2(chunk) bisection probes
  /// of at most chunk steps each.
  int chunk_steps = 64;
  /// Per-side instruction budget after the injection point (a hung faulty
  /// run has no natural end).
  std::uint64_t max_replay_steps = 1u << 17;
  /// Taint-map sample cap (exponentially spaced, so the covered window is
  /// ~2^cap boundaries before the budget cuts in).
  int max_taint_samples = 24;
};

/// Outcome of the divergence scan alone (unit-testable at the CPU level).
struct DivergenceScan {
  bool diverged = false;
  /// States fully converged (the flip was overwritten before propagating).
  bool masked = false;
  obs::FirstDivergence divergence;  ///< valid when `diverged`
  /// Boundary (dynamic step index, at_step scale) where the scan ended:
  /// divergence.step + 1 when diverged, else the end of the window.
  std::uint64_t boundary = 0;
  std::uint64_t steps_replayed = 0;  ///< reference steps, both sides
  // Side states at the final boundary, for taint-sampling continuation.
  bool golden_done = false, golden_halted = false;
  bool faulty_done = false, faulty_halted = false;
};

/// Scans for the first architectural divergence beyond the seeded flip.
/// Both CPUs must be at the same dynamic step `start_step` with the seed
/// flip (`seed_reg` xor `seed_mask`) already applied to `faulty`, and
/// their memories must have identical mappings.  On return the CPUs sit
/// at `boundary`; when diverged that is the first post-propagation state,
/// ready for taint sampling.
DivergenceScan find_first_divergence(sim::Cpu& golden, sim::Cpu& faulty,
                                     sim::Reg seed_reg, sim::Word seed_mask,
                                     std::uint64_t start_step,
                                     const LockstepParams& params = {});

/// Full machine-level replay: restores both machines from `pre`, re-enters
/// the activation, advances to the injection point, applies the flip, runs
/// the divergence scan, and samples the taint map.  Fills everything in
/// the returned record except the attribution fields (the experiment owns
/// those).  Both machines are left at an arbitrary replay state — the
/// caller restores them (the campaign re-syncs the faulty machine before
/// every use; the golden machine's post-run state must be re-instated).
obs::ForensicsRecord run_lockstep_forensics(hv::Machine& golden,
                                            hv::Machine& faulty,
                                            const hv::Activation& activation,
                                            const hv::Injection& injection,
                                            const hv::Machine::Snapshot& pre,
                                            const LockstepParams& params = {});

}  // namespace xentry::fault
