// Table I: selected features for VM transition detection — verified
// against the running system (each feature is demonstrably collectable
// from the substrate's counters / Xentry software).
#include <cstdio>

#include "bench/bench_util.hpp"
#include "hv/machine.hpp"
#include "xentry/features.hpp"

int main() {
  using namespace xentry;
  bench::print_header("Table I: selected features for VM transition detection");

  std::printf("%-28s %-28s %s\n", "Feature", "H/W & S/W support", "Synonym");
  std::printf("%-28s %-28s %s\n", "VM exit reason", "Xentry", "VMER");
  std::printf("%-28s %-28s %s\n", "# committed instructions",
              "INST_RETIRED", "RT");
  std::printf("%-28s %-28s %s\n", "# branch instructions",
              "BR_INST_RETIRED", "BR");
  std::printf("%-28s %-28s %s\n", "# read memory access",
              "MEM_INST_RETIRED.LOADS", "RM");
  std::printf("%-28s %-28s %s\n", "# write memory access",
              "MEM_INST_RETIRED.STORES", "WM");

  // Demonstrate collection on a live activation of each category.
  hv::Machine m;
  std::printf("\nLive feature vectors (one activation per category):\n");
  std::printf("%-34s %6s %6s %6s %6s %6s\n", "handler", "VMER", "RT", "BR",
              "RM", "WM");
  const hv::ExitReason samples[] = {
      hv::ExitReason::hypercall(hv::Hypercall::mmu_update),
      hv::ExitReason::exception(hv::GuestException::page_fault),
      hv::ExitReason::apic(hv::ApicInterrupt::timer),
      hv::ExitReason::irq(2),
      hv::ExitReason::softirq(),
      hv::ExitReason::tasklet(),
  };
  for (const hv::ExitReason& r : samples) {
    const hv::RunResult res = m.run(m.make_activation(r, 7));
    const FeatureVector f = FeatureVector::from(r, res.counters);
    std::printf("%-34s %6ld %6ld %6ld %6ld %6ld\n",
                std::string(hv::handler_symbol(r)).c_str(),
                static_cast<long>(f.vmer), static_cast<long>(f.rt),
                static_cast<long>(f.br), static_cast<long>(f.rm),
                static_cast<long>(f.wm));
  }
  return 0;
}
