#include "fault/campaign.hpp"

#include <gtest/gtest.h>

#include "fault/stats.hpp"
#include "fault/training.hpp"

namespace xentry::fault {
namespace {

/// Field-by-field equality: the determinism contract is bit-identical
/// records, not just aggregate counts.
bool records_identical(const InjectionRecord& a, const InjectionRecord& b) {
  return a.reason.code() == b.reason.code() &&
         a.activation_seed == b.activation_seed && a.vcpu == b.vcpu &&
         a.injection.at_step == b.injection.at_step &&
         a.injection.reg == b.injection.reg &&
         a.injection.bit == b.injection.bit && a.injected == b.injected &&
         a.activated == b.activated && a.consequence == b.consequence &&
         a.detected == b.detected && a.technique == b.technique &&
         a.latency == b.latency && a.trap == b.trap &&
         a.assert_id == b.assert_id && a.trace_diverged == b.trace_diverged &&
         a.undetected == b.undetected &&
         a.features.as_array() == b.features.as_array();
}

TEST(CampaignTest, RunsRequestedInjectionsAcrossShards) {
  CampaignConfig cfg;
  cfg.injections = 200;
  cfg.seed = 7;
  cfg.shards = 4;
  auto res = run_campaign(cfg);
  EXPECT_EQ(res.records.size(), 200u);
}

TEST(CampaignTest, DeterministicForFixedSeedAndShards) {
  CampaignConfig cfg;
  cfg.injections = 120;
  cfg.seed = 11;
  cfg.shards = 3;
  auto a = run_campaign(cfg);
  auto b = run_campaign(cfg);
  ASSERT_EQ(a.records.size(), b.records.size());
  std::size_t manifested_a = 0, manifested_b = 0, detected_a = 0,
              detected_b = 0;
  for (const auto& r : a.records) {
    manifested_a += is_manifested(r.consequence);
    detected_a += r.detected;
  }
  for (const auto& r : b.records) {
    manifested_b += is_manifested(r.consequence);
    detected_b += r.detected;
  }
  EXPECT_EQ(manifested_a, manifested_b);
  EXPECT_EQ(detected_a, detected_b);
}

TEST(CampaignTest, BitIdenticalRecordsAndDatasetForFixedSeedAndShards) {
  // Regression guard for the snapshot/golden-run-reuse optimizations: a
  // fixed (seed, shards) pair must produce bit-identical record sequences
  // and dataset labels, run after run.
  CampaignConfig cfg;
  cfg.injections = 300;
  cfg.seed = 29;
  cfg.shards = 3;
  cfg.collect_dataset = true;
  const auto a = run_campaign(cfg);
  const auto b = run_campaign(cfg);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    ASSERT_TRUE(records_identical(a.records[i], b.records[i]))
        << "record " << i << " differs";
  }
  ASSERT_EQ(a.dataset.size(), b.dataset.size());
  for (std::size_t i = 0; i < a.dataset.size(); ++i) {
    ASSERT_EQ(a.dataset.label(i), b.dataset.label(i)) << "label " << i;
    const auto ra = a.dataset.row(i);
    const auto rb = b.dataset.row(i);
    ASSERT_TRUE(std::equal(ra.begin(), ra.end(), rb.begin(), rb.end()))
        << "row " << i;
  }
}

TEST(CampaignTest, DatasetCollectedWhenRequested) {
  CampaignConfig cfg;
  cfg.injections = 150;
  cfg.seed = 3;
  cfg.shards = 2;
  cfg.collect_dataset = true;
  auto res = run_campaign(cfg);
  // Every injection contributes at least the golden sample.
  EXPECT_GE(res.dataset.size(), 150u);
  EXPECT_GT(res.dataset.count(ml::Label::Correct), 0u);
}

TEST(CampaignTest, ManifestationRateMatchesPaperBand) {
  // Paper Section V-D: ~17,700 of 30,000 injections manifested (59%).
  CampaignConfig cfg;
  cfg.injections = 4000;
  cfg.seed = 42;
  auto res = run_campaign(cfg);
  std::size_t manifested = 0;
  for (const auto& r : res.records) {
    manifested += is_manifested(r.consequence);
  }
  const double rate =
      static_cast<double>(manifested) / static_cast<double>(res.records.size());
  EXPECT_GT(rate, 0.40);
  EXPECT_LT(rate, 0.70);
}

TEST(CampaignTest, UniformSweepCoversAllReasons) {
  auto profile = uniform_sweep_profile();
  EXPECT_EQ(profile.mix.size(), hv::all_exit_reasons().size());
}

TEST(StatsTest, CoverageBreakdownAccounting) {
  std::vector<InjectionRecord> recs(4);
  recs[0].consequence = Consequence::HypervisorCrash;
  recs[0].detected = true;
  recs[0].technique = Technique::HardwareException;
  recs[1].consequence = Consequence::AppSdc;
  recs[1].detected = true;
  recs[1].technique = Technique::VmTransition;
  recs[2].consequence = Consequence::Masked;  // not manifested
  recs[3].consequence = Consequence::AllVmFailure;  // undetected
  auto cov = coverage_breakdown(recs);
  EXPECT_EQ(cov.manifested, 3u);
  EXPECT_EQ(cov.hw_exception, 1u);
  EXPECT_EQ(cov.vm_transition, 1u);
  EXPECT_EQ(cov.undetected, 1u);
  EXPECT_NEAR(cov.coverage(), 2.0 / 3.0, 1e-12);
}

TEST(StatsTest, LatencyCdfAndPercentile) {
  std::vector<std::uint64_t> lat = {10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
  auto cdf = latency_cdf(lat, {0, 50, 100, 200});
  ASSERT_EQ(cdf.size(), 4u);
  EXPECT_DOUBLE_EQ(cdf[0], 0.0);
  EXPECT_DOUBLE_EQ(cdf[1], 0.5);
  EXPECT_DOUBLE_EQ(cdf[2], 1.0);
  EXPECT_DOUBLE_EQ(cdf[3], 1.0);
  EXPECT_EQ(latency_percentile(lat, 95), 100u);
  EXPECT_EQ(latency_percentile(lat, 0), 10u);
  EXPECT_EQ(latency_percentile({}, 95), 0u);
}

TEST(StatsTest, UndetectedBreakdownSkipsDetectedAndMasked) {
  std::vector<InjectionRecord> recs(3);
  recs[0].consequence = Consequence::AppSdc;
  recs[0].undetected = UndetectedClass::TimeValues;
  recs[1].consequence = Consequence::AppSdc;
  recs[1].detected = true;
  recs[2].consequence = Consequence::Masked;
  auto u = undetected_breakdown(recs);
  EXPECT_EQ(u.total, 1u);
  EXPECT_EQ(u.time_values, 1u);
  EXPECT_DOUBLE_EQ(u.share(u.time_values), 1.0);
}

TEST(TrainingTest, OversampleReachesTargetFraction) {
  ml::Dataset ds({"x"});
  std::array<std::int64_t, 1> v{1};
  for (int i = 0; i < 95; ++i) ds.add(v, ml::Label::Correct);
  for (int i = 0; i < 5; ++i) ds.add(v, ml::Label::Incorrect);
  ml::Dataset bal = oversample_incorrect(ds, 0.2);
  const double frac = static_cast<double>(bal.count(ml::Label::Incorrect)) /
                      static_cast<double>(bal.size());
  EXPECT_GT(frac, 0.12);  // integer-copy granularity keeps it near target
  EXPECT_LE(frac, 0.25);
}

TEST(TrainingTest, OversampleNoOpCases) {
  ml::Dataset ds({"x"});
  std::array<std::int64_t, 1> v{1};
  ds.add(v, ml::Label::Incorrect);
  ds.add(v, ml::Label::Incorrect);
  EXPECT_EQ(oversample_incorrect(ds, 0.5).size(), 2u);  // all incorrect
  EXPECT_EQ(oversample_incorrect(ds, 0.0).size(), 2u);  // disabled
}

TEST(TrainingTest, EndToEndTrainingProducesUsableModel) {
  CampaignConfig cfg;
  cfg.injections = 2500;
  cfg.seed = 5;
  cfg.collect_dataset = true;
  auto res = run_campaign(cfg);
  auto det = train_detector(res.dataset);
  EXPECT_TRUE(det.tree.trained());
  EXPECT_FALSE(det.rules.empty());
  EXPECT_GT(det.test_eval.accuracy(), 0.90);
  EXPECT_LT(det.test_eval.false_positive_rate(), 0.05);
}

TEST(TrainingTest, EmptyDatasetThrows) {
  ml::Dataset empty({"a"});
  EXPECT_THROW(train_detector(empty), std::invalid_argument);
}

}  // namespace
}  // namespace xentry::fault
