#include "obs/record_sink.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

namespace xentry::obs {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST(RecordFormatTest, NamesRoundTrip) {
  EXPECT_EQ(record_format_name(RecordFormat::kJsonl), "jsonl");
  EXPECT_EQ(record_format_name(RecordFormat::kBinary), "bin");
  EXPECT_EQ(record_format_from_name("jsonl"), RecordFormat::kJsonl);
  EXPECT_EQ(record_format_from_name("bin"), RecordFormat::kBinary);
  EXPECT_EQ(record_format_from_name("binary"), RecordFormat::kBinary);
  EXPECT_EQ(record_format_from_name("csv"), std::nullopt);
}

TEST(MemoryRecordSinkTest, BuffersUntilFlush) {
  MemoryRecordSink sink({.shard_count = 2, .buffer_bytes = 64});
  EXPECT_TRUE(sink.append(0, "hello\n"));
  EXPECT_EQ(sink.offset(0), 0u);
  EXPECT_EQ(sink.buffered_bytes(0), 6u);
  EXPECT_TRUE(sink.data(0).empty());
  sink.flush(0);
  EXPECT_EQ(sink.offset(0), 6u);
  EXPECT_EQ(sink.buffered_bytes(0), 0u);
  EXPECT_EQ(sink.data(0), "hello\n");
  // Shards are independent streams.
  EXPECT_EQ(sink.offset(1), 0u);
  EXPECT_EQ(sink.stats(0).appends, 1u);
  EXPECT_EQ(sink.stats(0).appended_bytes, 6u);
  EXPECT_EQ(sink.stats(0).flushes, 1u);
  EXPECT_EQ(sink.stats(0).flushed_bytes, 6u);
  EXPECT_EQ(sink.stats(0).backpressure_flushes, 0u);
  EXPECT_EQ(sink.stats(1).appends, 0u);
}

TEST(MemoryRecordSinkTest, BackpressureFlushPreservesFrameOrder) {
  MemoryRecordSink sink({.shard_count = 1, .buffer_bytes = 8});
  EXPECT_TRUE(sink.append(0, "aaaa"));
  EXPECT_TRUE(sink.append(0, "bbbb"));  // exactly fills: no flush yet
  EXPECT_EQ(sink.stats(0).backpressure_flushes, 0u);
  EXPECT_TRUE(sink.append(0, "cc"));  // would overflow: flushes first
  EXPECT_EQ(sink.stats(0).backpressure_flushes, 1u);
  EXPECT_EQ(sink.data(0), "aaaabbbb");
  EXPECT_EQ(sink.buffered_bytes(0), 2u);
  sink.flush_all();
  EXPECT_EQ(sink.data(0), "aaaabbbbcc");
}

TEST(MemoryRecordSinkTest, OversizedFramePushesStraightThrough) {
  MemoryRecordSink sink({.shard_count = 1, .buffer_bytes = 4});
  EXPECT_TRUE(sink.append(0, "0123456789"));
  // A frame the buffer cannot bound is flushed immediately.
  EXPECT_EQ(sink.data(0), "0123456789");
  EXPECT_EQ(sink.buffered_bytes(0), 0u);
}

TEST(MemoryRecordSinkTest, CapDropsAndCounts) {
  MemoryRecordSink sink(
      {.shard_count = 1, .buffer_bytes = 64, .max_shard_bytes = 10});
  EXPECT_TRUE(sink.append(0, "12345678"));
  EXPECT_FALSE(sink.append(0, "90123"));  // would exceed the cap
  EXPECT_EQ(sink.stats(0).dropped, 1u);
  EXPECT_EQ(sink.stats(0).appends, 1u);
  sink.flush(0);
  EXPECT_EQ(sink.data(0), "12345678");
}

TEST(MemoryRecordSinkTest, DiscardThrowsAwayBufferedBytes) {
  MemoryRecordSink sink({.shard_count = 1, .buffer_bytes = 64});
  sink.append(0, "durable\n");
  sink.flush(0);
  sink.append(0, "torn tail");
  sink.discard(0);  // the unit-test SIGKILL
  EXPECT_EQ(sink.buffered_bytes(0), 0u);
  EXPECT_EQ(sink.data(0), "durable\n");
  EXPECT_EQ(sink.stats(0).dropped, 1u);
  sink.discard(0);  // empty buffer: nothing to drop
  EXPECT_EQ(sink.stats(0).dropped, 1u);
}

class ShardedFileSinkTest : public ::testing::Test {
 protected:
  std::string base_ = ::testing::TempDir() + "record_sink_test";

  std::string sink_path(std::size_t shard,
                        RecordFormat f = RecordFormat::kJsonl) const {
    return ShardedFileSink::shard_path(base_, f, shard);
  }

  ShardedFileSink::Options file_opts(
      std::size_t shards, std::vector<std::uint64_t> resume = {}) const {
    ShardedFileSink::Options o;
    o.base_path = base_;
    o.shard_count = shards;
    o.resume_offsets = std::move(resume);
    return o;
  }

  void TearDown() override {
    for (std::size_t s = 0; s < 4; ++s) {
      for (auto f : {RecordFormat::kJsonl, RecordFormat::kBinary}) {
        std::remove(ShardedFileSink::shard_path(base_, f, s).c_str());
      }
    }
  }
};

TEST_F(ShardedFileSinkTest, ShardPathEncodesFormatAndIndex) {
  EXPECT_EQ(ShardedFileSink::shard_path("/tmp/run", RecordFormat::kJsonl, 0),
            "/tmp/run.shard0.jsonl");
  EXPECT_EQ(ShardedFileSink::shard_path("/tmp/run", RecordFormat::kBinary, 3),
            "/tmp/run.shard3.bin");
}

TEST_F(ShardedFileSinkTest, WritesOneFilePerShard) {
  {
    ShardedFileSink sink(file_opts(2));
    ASSERT_TRUE(sink.ok());
    sink.append(0, "shard zero\n");
    sink.append(1, "shard one\n");
    EXPECT_EQ(sink.offset(0), 0u);  // still buffered
    sink.flush_all();
    EXPECT_EQ(sink.offset(0), 11u);
    EXPECT_EQ(sink.offset(1), 10u);
  }
  EXPECT_EQ(slurp(sink_path(0)), "shard zero\n");
  EXPECT_EQ(slurp(sink_path(1)), "shard one\n");
}

TEST_F(ShardedFileSinkTest, DestructorFlushesBufferedBytes) {
  {
    ShardedFileSink sink(file_opts(1));
    sink.append(0, "buffered until the end\n");
  }
  EXPECT_EQ(slurp(sink_path(0)), "buffered until the end\n");
}

TEST_F(ShardedFileSinkTest, ResumeTruncatesTornTailAndAppends) {
  {
    ShardedFileSink sink(file_opts(1));
    sink.append(0, "line one\n");
    sink.flush(0);  // durable: offset 9
    sink.append(0, "torn ta");
    sink.flush(0);  // durable on disk, but past the journaled offset
  }
  {
    ShardedFileSink sink(file_opts(1, {9}));
    ASSERT_TRUE(sink.ok());
    EXPECT_EQ(sink.offset(0), 9u);
    sink.append(0, "line two\n");
    sink.flush(0);
    EXPECT_EQ(sink.offset(0), 18u);
  }
  // The torn tail vanished; the rewritten suffix starts at the journal
  // offset, so the stream reads as if the kill never happened.
  EXPECT_EQ(slurp(sink_path(0)), "line one\nline two\n");
}

TEST_F(ShardedFileSinkTest, ResumeOfMissingFileFailsSafely) {
  ShardedFileSink sink(file_opts(1, {100}));
  EXPECT_FALSE(sink.ok());
  EXPECT_FALSE(sink.append(0, "dropped\n"));
  EXPECT_EQ(sink.stats(0).dropped, 1u);
}

}  // namespace
}  // namespace xentry::obs
