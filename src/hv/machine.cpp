#include "hv/machine.hpp"

#include <cassert>
#include <chrono>
#include <stdexcept>
#include <string>

#include "sim/splitmix.hpp"

namespace xentry::hv {

namespace L = layout;
using sim::Addr;
using sim::Reg;
using sim::SplitMix64;
using sim::Word;

Machine::Machine(const MicrovisorOptions& options)
    : mv_(build_microvisor(options)), cpu_(&mv_.program, &mem_) {
  map_regions();
  init_boot_state();
  for (const ExitReason& r : all_exit_reasons()) {
    const std::size_t code = static_cast<std::size_t>(r.code());
    if (entry_cache_.size() <= code) entry_cache_.resize(code + 1, 0);
    entry_cache_[code] = mv_.entry(r);
  }
}

sim::Addr Machine::handler_entry(const ExitReason& reason) const {
  const std::size_t code = static_cast<std::size_t>(reason.code());
  if (code < entry_cache_.size() && entry_cache_[code] != 0) {
    return entry_cache_[code];
  }
  return mv_.entry(reason);
}

void Machine::map_regions() {
  const int nd = num_domains();
  const int nv = num_vcpus() + 1;  // + idle vcpu
  mem_.map(L::kHvDataBase, L::kHvDataSize, sim::Perm::ReadWrite, "hv_data");
  mem_.map(L::kDomainBase, static_cast<Addr>(nd) * L::kDomainStride,
           sim::Perm::ReadWrite, "domains");
  mem_.map(L::kVcpuBase, static_cast<Addr>(nv) * L::kVcpuStride,
           sim::Perm::ReadWrite, "vcpus");
  mem_.map(L::kSharedBase, static_cast<Addr>(nd) * L::kSharedStride,
           sim::Perm::ReadWrite, "shared_info");
  mem_.map(L::kGuestRamBase, static_cast<Addr>(nd) * L::kGuestRamStride,
           sim::Perm::ReadWrite, "guest_ram");
  mem_.map(L::kStackBase, L::kStackSize, sim::Perm::ReadWrite, "stack");
  if (mv_.options.shadow_stack) {
    mem_.map(L::kStackBase + L::kShadowStackOffset, L::kStackSize,
             sim::Perm::ReadWrite, "shadow_stack");
    cpu_.enable_shadow_stack(L::kShadowStackOffset);
  }
  mem_.map(L::kConsoleBase, L::kConsoleSize, sim::Perm::ReadWrite, "console");
}

void Machine::reset() {
  mem_.clear();
  init_boot_state();
}

void Machine::init_boot_state() {
  const int nd = num_domains();
  const int nv = num_vcpus();
  const int vpd = mv_.options.vcpus_per_domain;
  const Addr hv = L::kHvDataBase;

  // Hypervisor globals.
  mem_.poke(hv + L::kHvNumDomains, static_cast<Word>(nd));
  mem_.poke(hv + L::kHvNumVcpus, static_cast<Word>(nv));
  mem_.poke(hv + L::kHvTscScaleMul, 8);
  mem_.poke(hv + L::kHvTscScaleShift, 3);  // ns == tsc with these values
  mem_.poke(hv + L::kHvXenVersion, (4u << 16) | 1u);
  mem_.poke(hv + L::kHvWallclockSec, 1404000000);  // paper-era epoch
  mem_.poke(hv + L::kHvXsmPolicy, 0x4);  // ops with bit 2 set are denied
  mem_.poke(hv + L::kHvThermal, 50);
  mem_.poke(hv + L::kHvCurrentVcpu, L::vcpu_addr(0));

  // IRQ routing: line -> (domain, port).
  for (int irq = 0; irq < kNumIrqLines; ++irq) {
    const int dom = irq % nd;
    const int port = irq % 8;
    mem_.poke(hv + L::kHvIrqTable + irq,
              (static_cast<Word>(dom) << 8) | static_cast<Word>(port));
  }

  // Hypercall body table (for multicall's indirect dispatch).
  const auto table = mv_.hypercall_body_table();
  for (int i = 0; i < kNumHypercalls; ++i) {
    mem_.poke(hv + L::kHvHypercallTable + i, table[static_cast<size_t>(i)]);
  }

  // Domains.
  for (int d = 0; d < nd; ++d) {
    const Addr dom = L::domain_addr(d);
    mem_.poke(dom + L::kDomId, static_cast<Word>(d));
    mem_.poke(dom + L::kDomNumVcpus, static_cast<Word>(vpd));
    mem_.poke(dom + L::kDomSharedInfo, L::shared_info_addr(d));
    mem_.poke(dom + L::kDomTotPages, 256 + static_cast<Word>(d));
    mem_.poke(dom + L::kDomMaxPages, Word{1} << 40);
    mem_.poke(dom + L::kDomIsPrivileged, d == 0 ? 1 : 0);
    mem_.poke(dom + L::kDomGuestRam, L::guest_ram_addr(d));
    // Event-channel port bindings: the first 8 ports bind to the domain's
    // first vcpu; the rest are free (sentinel 0xff) for alloc_unbound.
    for (int p = 0; p < L::kNumEvtchnPorts; ++p) {
      mem_.poke(dom + L::kDomEvtchnVcpu + p,
                p < 8 ? static_cast<Word>(d * vpd) : 0xff);
    }
    // Shared info: all channels unmasked, time scale published.
    const Addr sh = L::shared_info_addr(d);
    mem_.poke(sh + L::kShTscMul, 8);
    // Guest "page tables": the first 12 L1 slots are mapped.
    const Addr ram = L::guest_ram_addr(d);
    for (int i = 0; i < 12; ++i) {
      mem_.poke(ram + L::kGuestPageTable + i, static_cast<Word>(i + 1));
    }
  }

  // VCPUs (id is the *global* index; the runqueue stores these).
  for (int v = 0; v < nv; ++v) {
    const Addr vc = L::vcpu_addr(v);
    const int dom = v / vpd;
    mem_.poke(vc + L::kVcpuId, static_cast<Word>(v));
    mem_.poke(vc + L::kVcpuDomain, L::domain_addr(dom));
    mem_.poke(vc + L::kVcpuState, L::kVcpuStateRunning);
    // Guest trap table: plausible in-guest handler addresses.
    for (int t = 0; t < kNumGuestExceptions; ++t) {
      mem_.poke(vc + L::kVcpuTrapTable + t,
                L::guest_ram_addr(dom) + 0x10 + static_cast<Word>(t));
    }
    mem_.poke(vc + L::kVcpuSaveRip, L::guest_ram_addr(dom) + 0x20);
    mem_.poke(vc + L::kVcpuSaveRsp, L::guest_ram_addr(dom) + 0xc0);
    mem_.poke(vc + L::kVcpuCallback, L::guest_ram_addr(dom) + 0x14);
  }
  // The idle VCPU (belongs to Dom0's address space, never runs guest code).
  const Addr idle = L::vcpu_addr(nv);
  mem_.poke(idle + L::kVcpuId, static_cast<Word>(nv));
  mem_.poke(idle + L::kVcpuDomain, L::domain_addr(0));
  mem_.poke(idle + L::kVcpuState, L::kVcpuStateIdle);
  // The idle loop "runs" in Dom0's address space; VM-entry validation
  // must see a plausible rip even right after an idle switch.
  mem_.poke(idle + L::kVcpuSaveRip, L::guest_ram_addr(0) + 0x20);
  mem_.poke(idle + L::kVcpuSaveRsp, L::guest_ram_addr(0) + 0xc0);

  // Runqueue: all guest VCPUs runnable.
  mem_.poke(L::kHvDataBase + L::kHvRunqCount, static_cast<Word>(nv));
  for (int v = 0; v < nv; ++v) {
    mem_.poke(L::kHvDataBase + L::kHvRunq + v, static_cast<Word>(v));
  }
}

const std::vector<std::string>& Machine::feature_names() {
  static const std::vector<std::string> names = {"VMER", "RT", "BR", "RM",
                                                 "WM"};
  return names;
}

Activation Machine::make_activation(const ExitReason& reason,
                                    std::uint64_t seed, int vcpu) const {
  SplitMix64 sm(seed * 0x5851f42d4c957f2dull + reason.code());
  Activation act;
  act.reason = reason;
  act.seed = seed;
  act.vcpu = vcpu >= 0 ? vcpu : static_cast<int>(sm.below(
                                    static_cast<std::uint64_t>(num_vcpus())));
  const int dom = domain_of_vcpu(act.vcpu);
  const Addr ram = L::guest_ram_addr(dom);

  switch (reason.category) {
    case ExitCategory::Hypercall:
      switch (static_cast<Hypercall>(reason.index)) {
        case Hypercall::set_trap_table: act.arg1 = 1 + sm.below(8); break;
        case Hypercall::mmu_update: act.arg1 = 1 + sm.below(16); break;
        case Hypercall::set_gdt: act.arg1 = 1 + sm.below(8); break;
        case Hypercall::stack_switch:
          act.arg1 = ram + 0x40 + sm.below(0x40);
          break;
        case Hypercall::set_callbacks:
          act.arg1 = ram + 0x10 + sm.below(0x40);
          break;
        case Hypercall::fpu_taskswitch: act.arg1 = sm.below(2); break;
        case Hypercall::sched_op_compat: act.arg1 = sm.below(2); break;
        case Hypercall::platform_op:
          act.arg1 = sm.below(2);
          act.arg2 = sm.below(0x10000);
          break;
        case Hypercall::set_debugreg:
          act.arg1 = sm.below(8);
          act.arg2 = sm.next();
          break;
        case Hypercall::get_debugreg: act.arg1 = sm.below(8); break;
        case Hypercall::update_descriptor:
          act.arg1 = sm.below(8);
          act.arg2 = sm.next() | 1;  // present bit
          break;
        case Hypercall::memory_op:
          act.arg1 = sm.below(2);
          act.arg2 = 1 + sm.below(16);
          break;
        case Hypercall::multicall: act.arg1 = 1 + sm.below(4); break;
        case Hypercall::update_va_mapping:
          act.arg1 = sm.below(0x100);
          act.arg2 = sm.next() & 0xffffff;
          break;
        case Hypercall::set_timer_op:
          // Mostly future deadlines; occasionally already expired.
          act.arg1 = sm.below(8) == 0 ? 1 : (Word{1} << 50) + sm.below(1000);
          break;
        case Hypercall::event_channel_op_compat:
          act.arg1 = sm.below(8);
          break;
        case Hypercall::xen_version: act.arg1 = sm.below(2); break;
        case Hypercall::console_io: act.arg1 = 1 + sm.below(32); break;
        case Hypercall::physdev_op_compat: act.arg1 = sm.below(4); break;
        case Hypercall::grant_table_op:
          act.arg1 = sm.below(2);
          act.arg2 = 1 + sm.below(8);
          break;
        case Hypercall::vm_assist:
          act.arg1 = sm.below(2);
          act.arg2 = sm.below(8);
          break;
        case Hypercall::update_va_mapping_otherdomain:
          act.arg1 = sm.below(static_cast<std::uint64_t>(num_domains()));
          act.arg2 = sm.below(0x100);
          act.arg3 = sm.next() & 0xffffff;
          break;
        case Hypercall::iret: break;
        case Hypercall::vcpu_op:
          act.arg1 = sm.below(3);
          act.arg2 = sm.below(static_cast<std::uint64_t>(num_vcpus()));
          break;
        case Hypercall::set_segment_base:
          act.arg1 = ram + sm.below(0x100);
          break;
        case Hypercall::mmuext_op:
          act.arg1 = sm.below(2);
          act.arg2 = 1 + sm.below(16);
          break;
        case Hypercall::xsm_op: act.arg1 = sm.below(8); break;
        case Hypercall::nmi_op: act.arg1 = ram + 0x18; break;
        case Hypercall::sched_op: {
          // yield / block / poll mix; shutdown only via explicit tests.
          const std::uint64_t r = sm.below(4);
          act.arg1 = r == 3 ? 3 : (r == 2 ? 1 : 0);
          act.arg2 = sm.below(8);
          break;
        }
        case Hypercall::callback_op: act.arg1 = ram + 0x14; break;
        case Hypercall::xenoprof_op: act.arg1 = sm.below(4); break;
        case Hypercall::event_channel_op:
          act.arg1 = sm.below(3);
          act.arg2 = act.arg1 == 2 ? sm.below(L::kNumEvtchnPorts)
                                   : sm.below(8);
          break;
        case Hypercall::physdev_op:
          act.arg1 = sm.below(kNumIrqLines);
          act.arg2 = sm.below(8);
          break;
        case Hypercall::hvm_op:
          act.arg1 = sm.below(4);
          act.arg2 = sm.next() & 0xffff;
          break;
        case Hypercall::sysctl: act.arg1 = 0; break;
        case Hypercall::domctl:
          act.arg1 = sm.below(3);
          act.arg2 = sm.below(static_cast<std::uint64_t>(num_domains()));
          break;
        case Hypercall::kexec_op: act.arg1 = ram + sm.below(0x400); break;
        case Hypercall::tmem_op: act.arg1 = 1 + sm.below(32); break;
      }
      break;
    case ExitCategory::Exception:
      switch (static_cast<GuestException>(reason.index)) {
        case GuestException::general_protection: {
          constexpr Word ops[] = {0x0f, 0x0f, 0x31, 0x6c};
          act.arg1 = ops[sm.below(4)];
          act.arg2 = sm.below(2);  // cpuid leaf
          break;
        }
        case GuestException::page_fault:
          act.arg1 = sm.below(0x100);  // fault va (l1 idx 0..15; <12 mapped)
          break;
        default:
          act.arg1 = sm.next() & 0xffff;  // error code
          break;
      }
      break;
    case ExitCategory::Apic:
      if (static_cast<ApicInterrupt>(reason.index) ==
          ApicInterrupt::perf_counter) {
        act.arg1 = sm.below(16);  // overflow status
      }
      break;
    case ExitCategory::Irq:
      act.arg1 = static_cast<Word>(reason.index);
      break;
    case ExitCategory::Softirq:
    case ExitCategory::Tasklet:
      break;
  }
  return act;
}

void Machine::prepare_inputs(const Activation& act) {
  SplitMix64 sm(act.seed ^ 0xa5a5a5a5a5a5a5a5ull);
  const int dom = domain_of_vcpu(act.vcpu);
  const Addr ram = L::guest_ram_addr(dom);
  const Addr hv = L::kHvDataBase;
  const Addr vc = L::vcpu_addr(act.vcpu);

  // Guest context at exit: write it into the per-pcpu scratch area and the
  // VCPU save area (what the real exit stub does).
  Word guest_ctx[19];
  for (int i = 0; i < 16; ++i) guest_ctx[i] = sm.next() & 0xffff;
  guest_ctx[16] = ram + 0x10 + sm.below(0x80);  // guest rip
  guest_ctx[17] = ram + 0xc0 + sm.below(0x20);  // guest rsp
  guest_ctx[18] = sm.below(0x100);              // guest rflags
  // Bulk spans: this runs per activation, so pay one region lookup per
  // destination instead of one per word.
  Word* scratch = mem_.poke_span(hv + L::kHvScratch, 19);
  Word* save = mem_.poke_span(vc + L::kVcpuSaveGprs, 19);
  for (int i = 0; i < 19; ++i) scratch[i] = guest_ctx[i];
  for (int i = 0; i < 19; ++i) save[i] = guest_ctx[i];

  // Device / platform state handlers may consult.
  mem_.poke(hv + L::kHvApicEsr, sm.below(0x100));
  mem_.poke(hv + L::kHvThermal, sm.below(120));
  mem_.poke(hv + L::kHvNmiReason, sm.below(2));
  mem_.poke(hv + L::kHvIpiArg, sm.below(0x100));
  for (int b = 0; b < 4; ++b) {
    mem_.poke(hv + L::kHvMcBanks + b, sm.below(8) * 2);  // even: non-fatal
  }

  // Request buffer: whatever the handler's batch loops will read.
  const Addr req = ram + L::kGuestReqBuffer;
  auto fill_default = [&] {
    Word* buf = mem_.poke_span(req, 64);
    for (int i = 0; i < 64; ++i) buf[i] = sm.next() & 0xffff;
  };
  if (act.reason.category == ExitCategory::Hypercall) {
    switch (static_cast<Hypercall>(act.reason.index)) {
      case Hypercall::set_trap_table: {
        Word* buf = mem_.poke_span(req, 34);
        for (int i = 0; i < 17; ++i) {
          const Word vec = sm.below(kNumGuestExceptions);
          buf[2 * i] = vec;
          buf[2 * i + 1] = ram + 0x10 + vec;
        }
        break;
      }
      case Hypercall::mmu_update: {
        Word* buf = mem_.poke_span(req, 64);
        for (int i = 0; i < 32; ++i) {
          buf[2 * i] = sm.below(64);
          buf[2 * i + 1] = sm.next() & 0xffffff;
        }
        break;
      }
      case Hypercall::set_gdt: {
        Word* buf = mem_.poke_span(req, 8);
        for (int i = 0; i < 8; ++i) buf[i] = sm.next() | 1;
        break;
      }
      case Hypercall::multicall: {
        Word* buf = mem_.poke_span(req, 16);
        for (int i = 0; i < 8; ++i) {
          constexpr Word targets[] = {5, 9, 14, 16};
          const Word idx = targets[sm.below(4)];
          Word arg = 0;
          if (idx == 5) arg = sm.below(2);
          else if (idx == 9) arg = sm.below(8);
          else if (idx == 14) arg = (Word{1} << 50) + sm.below(1000);
          buf[2 * i] = idx;
          buf[2 * i + 1] = arg;
        }
        break;
      }
      case Hypercall::grant_table_op: {
        Word* buf = mem_.poke_span(req, 16);
        for (int i = 0; i < 16; ++i) buf[i] = sm.below(L::kNumGrantEntries);
        break;
      }
      case Hypercall::iret: {
        Word* frame = mem_.poke_span(ram + L::kGuestExcFrame, 3);
        frame[0] = ram + 0x20 + sm.below(0x40);
        frame[1] = sm.below(0x100);
        frame[2] = ram + 0xc0 + sm.below(0x20);
        break;
      }
      default:
        fill_default();
        break;
    }
  } else if (act.reason.category == ExitCategory::Softirq) {
    mem_.poke(hv + L::kHvSoftirqPending, 1 + sm.below(7));
  } else if (act.reason.category == ExitCategory::Tasklet) {
    const Word n = 1 + sm.below(4);
    mem_.poke(hv + L::kHvTaskletCount, n);
    for (Word i = 0; i < n; ++i) {
      mem_.poke(hv + L::kHvTaskletQueue + i, sm.below(64));
    }
  } else {
    fill_default();
  }
}

void Machine::begin_activation(const Activation& act) {
  if (act.vcpu < 0 || act.vcpu >= num_vcpus()) {
    throw std::invalid_argument("Machine::begin_activation: bad vcpu index");
  }

  // VM-exit side (hardware + exit stub): the exiting VCPU is by definition
  // running; make it current and ensure it is on the runqueue.
  const Addr vc = L::vcpu_addr(act.vcpu);
  const Addr hv = L::kHvDataBase;
  mem_.poke(hv + L::kHvCurrentVcpu, vc);
  mem_.poke(vc + L::kVcpuState, L::kVcpuStateRunning);
  {
    Word count = mem_.peek(hv + L::kHvRunqCount);
    bool queued = false;
    for (Word i = 0; i < count; ++i) {
      if (mem_.peek(hv + L::kHvRunq + i) == static_cast<Word>(act.vcpu)) {
        queued = true;
        break;
      }
    }
    if (!queued && count < static_cast<Word>(L::kMaxVcpus)) {
      mem_.poke(hv + L::kHvRunq + count, static_cast<Word>(act.vcpu));
      mem_.poke(hv + L::kHvRunqCount, count + 1);
    }
  }

  prepare_inputs(act);

  // Register file at handler entry.
  cpu_.reset(handler_entry(act.reason), L::kStackTop);
  cpu_.set_reg(Reg::rbp, L::kHvDataBase);
  cpu_.set_reg(Reg::r8, vc);
  cpu_.set_reg(Reg::r9, L::domain_addr(domain_of_vcpu(act.vcpu)));
  cpu_.set_reg(Reg::rdi, act.arg1);
  cpu_.set_reg(Reg::rsi, act.arg2);
  cpu_.set_reg(Reg::rdx, act.arg3);
  cpu_.set_reg(Reg::rax, static_cast<Word>(act.reason.code()));
  {
    // Stale values left over from previous executions.
    SplitMix64 sm(act.seed ^ 0x517cc1b727220a95ull);
    for (Reg r : {Reg::rbx, Reg::rcx, Reg::r10, Reg::r11, Reg::r12, Reg::r13,
                  Reg::r14, Reg::r15}) {
      cpu_.set_reg(r, sm.next() & 0xffff);
    }
  }
}

RunResult Machine::run(const Activation& act, const RunOptions& opts) {
  // Per-VM-exit span: named by the handler symbol (static storage), one
  // lane per campaign shard.  A null recorder makes the span a no-op.
  const bool tracing = telemetry_ != nullptr && telemetry_->trace != nullptr;
  obs::TraceRecorder::Span span(
      tracing ? telemetry_->trace : nullptr,
      tracing ? handler_symbol(act.reason) : std::string_view{},
      tracing ? telemetry_->tid : 0);

  begin_activation(act);

  cpu_.set_trace(opts.trace);
  if (opts.arm_counters) cpu_.counters().arm();

  RunResult result;
  const Injection* inj = opts.injection;
  // Register read/write masks are only consumed while watching an
  // injection for activation; skip computing them on clean runs.
  cpu_.set_mask_tracking(inj != nullptr);
  // Tracing alone no longer forces single-stepping: the specialized run
  // loops record the trace themselves, so golden/probe runs stay on the
  // fast engine.  Only injection watching and assertion counting need a
  // per-instruction view.
  const bool stepwise = inj != nullptr || opts.count_assertions;

  if (!stepwise) {
    const sim::StepInfo info = cpu_.run(opts.max_steps);
    result.steps = cpu_.steps_executed();
    if (info.status == sim::StepInfo::Status::Halted) {
      result.reached_vm_entry = true;
    } else {
      result.trap = info.trap;
      result.trap_step = result.steps;
    }
  } else if (inj != nullptr && !opts.count_assertions) {
    // Injection path, batched.  The fault-free prefix before the flip and
    // the suffix after activation resolves run on the configured engine;
    // only the window where the flip must be watched for activation is
    // stepped, and even there the CPU's register watch batches between
    // instructions that statically touch the target register.  Every
    // observable (result fields, trace, counters, record digests) is
    // bit-identical to the single-step loop below — the engine
    // differential tests and the campaign digest tests enforce it.
    const std::uint32_t target_bit = sim::reg_bit(inj->reg);
    std::uint64_t step = 0;  // instructions retired so far
    bool done = false;

    // Phase 1: fault-free prefix [0, min(at_step, max_steps)).
    const std::uint64_t prefix =
        std::min<std::uint64_t>(inj->at_step, opts.max_steps);
    cpu_.set_mask_tracking(false);
    if (prefix > 0) {
      const sim::StepInfo info = cpu_.run(prefix);
      step = cpu_.steps_executed();
      if (info.status == sim::StepInfo::Status::Halted) {
        result.reached_vm_entry = true;
        result.steps = step;
        done = true;
      } else if (info.trap.kind == sim::TrapKind::Watchdog) {
        // run() raises Watchdog at budget exhaustion; it is the
        // architectural watchdog only when the budget was the full
        // allowance.  Otherwise the prefix simply completed: fall
        // through to the flip.
        if (prefix == opts.max_steps) {
          result.trap = info.trap;
          result.trap_step = step;
          done = true;  // result.steps stays 0: the watchdog never sets it
        }
      } else {
        result.trap = info.trap;
        result.trap_step = step;
        result.steps = step;
        done = true;
      }
    }
    if (!done && step >= opts.max_steps) {
      // Degenerate budget (max_steps == 0): watchdog before the flip.
      result.trap = sim::Trap{sim::TrapKind::Watchdog, cpu_.reg(Reg::rip), 0};
      result.trap_step = step;
      done = true;
    }

    if (!done) {
      // Phase 2: the flip, immediately before executing step `at_step`.
      cpu_.flip_bit(inj->reg, inj->bit);
      result.injected = true;
      bool watching = false;
      if (inj->reg == Reg::rip) {
        // The very next fetch consumes the corrupted rip.
        result.activated = true;
        result.activation_step = step;
      } else {
        watching = true;
      }

      // Phase 3: watch window.  Batch to the next instruction that
      // statically reads or writes the target register, then single-step
      // it with activation bookkeeping.
      cpu_.set_mask_tracking(true);
      cpu_.set_watch(target_bit);
      while (watching) {
        if (step >= opts.max_steps) {
          result.trap =
              sim::Trap{sim::TrapKind::Watchdog, cpu_.reg(Reg::rip), 0};
          result.trap_step = step;
          done = true;
          break;
        }
        const sim::StepInfo hop = cpu_.run(opts.max_steps - step);
        step = cpu_.steps_executed();
        if (hop.status == sim::StepInfo::Status::Ok) {
          // Watch boundary: the pending instruction touches the target.
          const sim::StepInfo info = cpu_.step();
          if (info.read_mask & target_bit) {
            result.activated = true;
            result.activation_step = step;
            watching = false;
          } else if (info.written_mask & target_bit) {
            watching = false;  // overwritten before any read
          }
          if (info.status == sim::StepInfo::Status::Halted) {
            result.reached_vm_entry = true;
            result.steps = step;
            done = true;
            break;
          }
          if (info.status == sim::StepInfo::Status::Trapped) {
            result.trap = info.trap;
            result.trap_step = step;
            result.steps = step;
            done = true;
            break;
          }
          ++step;
          continue;
        }
        if (hop.status == sim::StepInfo::Status::Halted) {
          result.reached_vm_entry = true;
          result.steps = step;
          done = true;
          break;
        }
        if (hop.trap.kind == sim::TrapKind::Watchdog) {
          result.trap = hop.trap;  // budget == remaining allowance: genuine
          result.trap_step = step;
          done = true;
          break;
        }
        result.trap = hop.trap;
        result.trap_step = step;
        result.steps = step;
        done = true;
        break;
      }
      cpu_.set_watch(0);
      cpu_.set_mask_tracking(false);

      // Phase 4: activation resolved — batch the remainder.
      if (!done) {
        if (step >= opts.max_steps) {
          result.trap =
              sim::Trap{sim::TrapKind::Watchdog, cpu_.reg(Reg::rip), 0};
          result.trap_step = step;
        } else {
          const sim::StepInfo info = cpu_.run(opts.max_steps - step);
          step = cpu_.steps_executed();
          if (info.status == sim::StepInfo::Status::Halted) {
            result.reached_vm_entry = true;
            result.steps = step;
          } else if (info.trap.kind == sim::TrapKind::Watchdog) {
            result.trap = info.trap;
            result.trap_step = step;
          } else {
            result.trap = info.trap;
            result.trap_step = step;
            result.steps = step;
          }
        }
      }
    }
  } else {
    const std::uint32_t target_bit =
        inj != nullptr ? sim::reg_bit(inj->reg) : 0;
    bool watching = false;
    for (std::uint64_t step = 0;; ++step) {
      if (step >= opts.max_steps) {
        result.trap = sim::Trap{sim::TrapKind::Watchdog,
                                cpu_.reg(Reg::rip), 0};
        result.trap_step = step;
        break;
      }
      if (inj != nullptr && !result.injected && step == inj->at_step) {
        cpu_.flip_bit(inj->reg, inj->bit);
        result.injected = true;
        if (inj->reg == Reg::rip) {
          // The very next fetch consumes the corrupted rip.
          result.activated = true;
          result.activation_step = step;
        } else {
          watching = true;
        }
      }
      if (opts.count_assertions) {
        const Addr rip = cpu_.reg(Reg::rip);
        if (mv_.program.contains(rip) &&
            sim::is_assertion(mv_.program.at(rip).op)) {
          ++result.assertions_executed;
        }
      }
      const sim::StepInfo info = cpu_.step();
      if (watching && !result.activated) {
        if (info.read_mask & target_bit) {
          result.activated = true;
          result.activation_step = step;
          watching = false;
        } else if (info.written_mask & target_bit) {
          watching = false;  // overwritten before any read: never activates
        }
      }
      if (info.status == sim::StepInfo::Status::Halted) {
        result.reached_vm_entry = true;
        result.steps = step;
        break;
      }
      if (info.status == sim::StepInfo::Status::Trapped) {
        result.trap = info.trap;
        result.trap_step = step;
        result.steps = step;
        break;
      }
    }
  }

  result.counters = opts.arm_counters ? cpu_.counters().disarm()
                                      : sim::PerfSnapshot{};
  cpu_.set_trace(nullptr);
  cpu_.set_mask_tracking(true);

  if (tracing) span.arg("steps", result.steps);
  if (telemetry_ != nullptr && telemetry_->flight != nullptr) {
    obs::FlightFrame frame;
    frame.exit_code = act.reason.code();
    frame.steps = result.steps;
    frame.inst_retired = result.counters.inst_retired;
    frame.branches = result.counters.branches;
    frame.loads = result.counters.loads;
    frame.stores = result.counters.stores;
    frame.source = telemetry_->flight_source;
    frame.reached_vm_entry = result.reached_vm_entry;
    frame.trap_kind = static_cast<std::uint8_t>(result.trap.kind);
    frame.trap_aux = result.trap.aux;
    frame.trap_addr = result.trap.fault_addr;
    telemetry_->flight->append(frame);
  }
  return result;
}

Machine::Snapshot Machine::snapshot() const {
  Snapshot snap;
  snapshot_into(snap);
  return snap;
}

namespace {

/// Nanoseconds since an arbitrary epoch, for snapshot/restore timing.
inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

void Machine::snapshot_into(Snapshot& out) const {
  if (telemetry_ != nullptr && telemetry_->snapshot_ns != nullptr &&
      snapshot_calls_++ % kTimingSampleEvery == 0) {
    const std::uint64_t t0 = now_ns();
    mem_.snapshot_into(out.memory);
    out.tsc = cpu_.tsc();
    telemetry_->snapshot_ns->observe(now_ns() - t0);
    return;
  }
  mem_.snapshot_into(out.memory);
  out.tsc = cpu_.tsc();
}

void Machine::restore(const Snapshot& snap) {
  if (telemetry_ != nullptr && telemetry_->restore_ns != nullptr &&
      restore_calls_++ % kTimingSampleEvery == 0) {
    const std::uint64_t t0 = now_ns();
    mem_.restore(snap.memory);
    cpu_.set_tsc(snap.tsc);
    telemetry_->restore_ns->observe(now_ns() - t0);
    return;
  }
  mem_.restore(snap.memory);
  cpu_.set_tsc(snap.tsc);
}

std::vector<StateDiff> Machine::diff_persistent_state(const Machine& golden,
                                                      const Machine& faulty) {
  std::vector<StateDiff> diffs;
  const auto& gr = golden.memory().regions();
  const auto& fr = faulty.memory().regions();
  assert(gr.size() == fr.size());
  const int nd = golden.num_domains();
  const int nv = golden.num_vcpus() + 1;  // include the idle vcpu
  const int vpd = golden.mv_.options.vcpus_per_domain;
  for (std::size_t r = 0; r < gr.size(); ++r) {
    if (gr[r].name == "stack") continue;  // scratch, not persistent state
    if (gr[r].data == fr[r].data) continue;  // memcmp gate: no diffs here
    for (Addr off = 0; off < gr[r].size; ++off) {
      const Word g = gr[r].data[off];
      const Word f = fr[r].data[off];
      if (g == f) continue;
      StateDiff d;
      d.addr = gr[r].base + off;
      d.golden = g;
      d.faulty = f;
      if (!L::classify_address(d.addr, nd, nv, d.cls, d.domain)) continue;
      if (d.domain <= -2) {
        // VCPU sentinel: translate the vcpu index to its domain.
        const int vcpu = -2 - d.domain;
        d.domain = vcpu >= golden.num_vcpus() ? 0 : vcpu / vpd;
      }
      diffs.push_back(d);
    }
  }
  return diffs;
}

}  // namespace xentry::hv
