// Classifier evaluation metrics.
//
// The paper reports accuracy (RandomTree 98.6% vs DecisionTree 96.1%) and
// a false-positive rate (0.7%) used later to cost out recovery overhead
// (Section VI).  "Positive" here means classified Incorrect.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <string>

#include "ml/dataset.hpp"

namespace xentry::ml {

struct ConfusionMatrix {
  // Rows: ground truth; columns: prediction.
  std::size_t true_positive = 0;   ///< incorrect classified incorrect
  std::size_t false_negative = 0;  ///< incorrect classified correct
  std::size_t false_positive = 0;  ///< correct classified incorrect
  std::size_t true_negative = 0;   ///< correct classified correct

  std::size_t total() const {
    return true_positive + false_negative + false_positive + true_negative;
  }
  double accuracy() const;
  /// Fraction of genuinely-correct executions flagged as incorrect: the
  /// rate that triggers unnecessary recovery.
  double false_positive_rate() const;
  /// Fraction of genuinely-incorrect executions missed.
  double false_negative_rate() const;
  double precision() const;
  double recall() const;

  std::string to_string() const;
};

/// Evaluates a predictor over a dataset.  The predictor maps a feature row
/// to a Label (any trained model: DecisionTree, RuleSet, Forest).
ConfusionMatrix evaluate(
    const Dataset& data,
    const std::function<Label(std::span<const std::int64_t>)>& predict);

}  // namespace xentry::ml
