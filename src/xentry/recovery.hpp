// Recovery-cost model for false positives (paper Section VI, Fig. 11).
//
// The assumed light-weight recovery preserves the critical hypervisor data
// (VCPU/domain structures) and the VM exit reason by copying them at every
// VM exit (measured at ~1,900 ns on the Xeon E5506).  On a positive
// detection — correct or false — the copies are restored and the
// hypervisor execution re-executed, roughly doubling its time.  The model
// draws false positives at the measured rate over a trace of hypervisor
// executions and reports the resulting application overhead; the paper
// repeats the draw 100 times per application.
#pragma once

#include <cstdint>
#include <vector>

namespace xentry {

struct RecoveryParams {
  double copy_ns = 1900.0;            ///< critical-data copy per VM exit
  double false_positive_rate = 0.007; ///< from Section III-B's evaluation
  double cpu_ghz = 2.13;
};

struct RecoveryOverhead {
  double mean = 0;  ///< mean overhead fraction across trials
  double min = 0;
  double max = 0;
};

/// Monte-Carlo estimate of fault-free overhead with recovery enabled.
///
/// `activation_ns` is a trace of hypervisor execution durations within an
/// observation window of `window_ns` total (application) time; false
/// positives re-execute the affected activation.  Deterministic per seed.
RecoveryOverhead estimate_recovery_overhead(
    const RecoveryParams& params, const std::vector<double>& activation_ns,
    double window_ns, int trials, std::uint64_t seed);

/// Closed-form expectation (no sampling): rate*copy + fp*Σexec / window.
double expected_recovery_overhead(const RecoveryParams& params,
                                  const std::vector<double>& activation_ns,
                                  double window_ns);

}  // namespace xentry
