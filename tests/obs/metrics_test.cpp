#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>
#include <vector>

namespace xentry::obs {
namespace {

TEST(CounterTest, IncrementAndMerge) {
  Counter a, b;
  a.inc();
  a.inc(41);
  b.inc(8);
  EXPECT_EQ(a.value(), 42u);
  a.merge_from(b);
  EXPECT_EQ(a.value(), 50u);
}

TEST(GaugeTest, SetOverwritesAndMergeSums) {
  Gauge g, h;
  g.set(3);
  g.set(-7);
  EXPECT_EQ(g.value(), -7);
  h.set(10);
  g.merge_from(h);
  EXPECT_EQ(g.value(), 3);
}

TEST(Log2HistogramTest, BucketBoundaries) {
  // Bucket 0 holds exactly 0; bucket i holds [2^(i-1), 2^i - 1].
  Log2Histogram h;
  h.observe(0);
  EXPECT_EQ(h.bucket(0), 1u);
  h.observe(1);
  EXPECT_EQ(h.bucket(1), 1u);
  h.observe(2);
  h.observe(3);
  EXPECT_EQ(h.bucket(2), 2u);
  h.observe(4);
  h.observe(7);
  EXPECT_EQ(h.bucket(3), 2u);
  h.observe(8);
  EXPECT_EQ(h.bucket(4), 1u);
  h.observe(std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(h.bucket(64), 1u);

  EXPECT_EQ(h.count(), 8u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), std::numeric_limits<std::uint64_t>::max());

  // The static bounds agree with where observe actually lands values.
  EXPECT_EQ(Log2Histogram::bucket_lower_bound(0), 0u);
  EXPECT_EQ(Log2Histogram::bucket_upper_bound(0), 0u);
  for (int i = 1; i < Log2Histogram::kNumBuckets; ++i) {
    Log2Histogram probe;
    probe.observe(Log2Histogram::bucket_lower_bound(i));
    probe.observe(Log2Histogram::bucket_upper_bound(i));
    EXPECT_EQ(probe.bucket(i), 2u) << "bucket " << i;
  }
}

TEST(Log2HistogramTest, MergePreservesMomentsAndExtremes) {
  Log2Histogram a, b;
  a.observe(5);
  a.observe(100);
  b.observe(3);
  b.observe(70000);
  a.merge_from(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.sum(), 5u + 100u + 3u + 70000u);
  EXPECT_EQ(a.min(), 3u);
  EXPECT_EQ(a.max(), 70000u);
  // Merging an empty histogram must not clobber min/max.
  Log2Histogram empty;
  a.merge_from(empty);
  EXPECT_EQ(a.min(), 3u);
  EXPECT_EQ(a.max(), 70000u);
}

TEST(MetricsRegistryTest, HandlesAreStableAcrossInsertions) {
  MetricsRegistry reg;
  Counter& c = reg.counter("a");
  // Force rebalancing-ish churn; node-based storage keeps &c valid.
  for (int i = 0; i < 100; ++i) {
    reg.counter("name_" + std::to_string(i));
  }
  c.inc(7);
  EXPECT_EQ(reg.find_counter("a")->value(), 7u);
  EXPECT_EQ(&reg.counter("a"), &c);
  EXPECT_EQ(reg.find_counter("missing"), nullptr);
}

std::string registry_json(const MetricsRegistry& reg) {
  std::ostringstream os;
  reg.write_json(os);
  return os.str();
}

/// The determinism contract: distributing one observation stream over K
/// shard registries and merging in shard order yields byte-identical
/// exports for any K.  Mirrors how run_campaign merges per-shard metrics.
TEST(MetricsRegistryTest, MergeDeterministicAcrossShardCounts) {
  // A synthetic observation stream with enough spread to hit many
  // buckets; derived deterministically from the index.
  struct Obs {
    std::uint64_t histogram_value;
    bool bump_counter;
  };
  std::vector<Obs> stream;
  std::uint64_t x = 0x2545f4914f6cdd1dull;
  for (int i = 0; i < 1000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    stream.push_back({x >> (x % 50), (x & 3) == 0});
  }

  std::string baseline;
  for (int shards : {1, 2, 7}) {
    std::vector<MetricsRegistry> regs(static_cast<std::size_t>(shards));
    for (std::size_t i = 0; i < stream.size(); ++i) {
      MetricsRegistry& reg = regs[i % static_cast<std::size_t>(shards)];
      reg.histogram("h").observe(stream[i].histogram_value);
      if (stream[i].bump_counter) reg.counter("c").inc();
      reg.gauge("g").set(1);  // per-shard contribution; merged = shard count
    }
    MetricsRegistry merged;
    for (const MetricsRegistry& reg : regs) merged.merge_from(reg);
    // Gauges sum across shards by design, so normalize before comparing.
    merged.gauge("g").set(1);
    const std::string json = registry_json(merged);
    if (baseline.empty()) {
      baseline = json;
    } else {
      EXPECT_EQ(json, baseline) << "shards=" << shards;
    }
  }
  EXPECT_NE(baseline.find("\"counters\""), std::string::npos);
  EXPECT_NE(baseline.find("\"histograms\""), std::string::npos);
}

TEST(MetricsRegistryTest, JsonIsSortedAndEscaped) {
  MetricsRegistry reg;
  reg.counter("zeta").inc();
  reg.counter("alpha").inc(2);
  reg.counter("quote\"key").inc(3);
  const std::string json = registry_json(reg);
  EXPECT_LT(json.find("alpha"), json.find("zeta"));
  EXPECT_NE(json.find("quote\\\"key"), std::string::npos);
}

TEST(Log2HistogramTest, PercentileEmptyAndSingleValue) {
  Log2Histogram h;
  EXPECT_EQ(h.percentile(0.5), 0.0);
  h.observe(42);
  // One observation: every quantile is that value (the min/max clamp
  // collapses the bucket interpolation).
  EXPECT_EQ(h.percentile(0.0), 42.0);
  EXPECT_EQ(h.percentile(0.5), 42.0);
  EXPECT_EQ(h.percentile(1.0), 42.0);
}

TEST(Log2HistogramTest, PercentileWalksBucketsInOrder) {
  Log2Histogram h;
  // 100 values: 90 small (bucket of 1) and 10 large (bucket of 1024).
  for (int i = 0; i < 90; ++i) h.observe(1);
  for (int i = 0; i < 10; ++i) h.observe(1024);
  EXPECT_EQ(h.percentile(0.5), 1.0);   // rank 49.5 sits in the small mass
  EXPECT_GE(h.percentile(0.95), 1024.0);  // rank 94.05 is in the large mass
  EXPECT_LE(h.percentile(0.95), 2047.0);  // ...and within its bucket range
  EXPECT_LE(h.percentile(0.99), h.max());
  // Quantiles are monotone in q.
  EXPECT_LE(h.percentile(0.5), h.percentile(0.95));
  EXPECT_LE(h.percentile(0.95), h.percentile(0.99));
}

TEST(Log2HistogramTest, PercentileClampedToObservedRange) {
  Log2Histogram h;
  h.observe(1000);
  h.observe(1030);
  // Both land in bucket [1024's neighborhood]: interpolation must not
  // leave [min, max].
  for (double q : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    EXPECT_GE(h.percentile(q), 1000.0);
    EXPECT_LE(h.percentile(q), 1030.0);
  }
}

TEST(Log2HistogramTest, JsonHasPercentilesWhenNonEmpty) {
  Log2Histogram h;
  std::ostringstream empty_os;
  h.write_json(empty_os);
  EXPECT_EQ(empty_os.str().find("\"p50\""), std::string::npos);
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<std::uint64_t>(i));
  std::ostringstream os;
  h.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 100"), std::string::npos);
}

TEST(MetricsRegistryTest, RegistryJsonIncludesHistogramPercentiles) {
  MetricsRegistry reg;
  for (int i = 0; i < 32; ++i) reg.histogram("lat").observe(8);
  const std::string json = registry_json(reg);
  EXPECT_NE(json.find("\"lat\""), std::string::npos);
  EXPECT_NE(json.find("\"p50\": 8.0"), std::string::npos);
}

TEST(MetricsRegistryTest, MergeAdoptsMetricsAbsentOnOneSide) {
  MetricsRegistry a, b;
  a.counter("only_a").inc(1);
  b.counter("only_b").inc(2);
  b.histogram("h").observe(9);
  a.merge_from(b);
  EXPECT_EQ(a.find_counter("only_a")->value(), 1u);
  EXPECT_EQ(a.find_counter("only_b")->value(), 2u);
  EXPECT_EQ(a.find_histogram("h")->count(), 1u);
}

}  // namespace
}  // namespace xentry::obs
