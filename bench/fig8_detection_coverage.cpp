// Fig. 8: overall detection coverage per benchmark — shares of manifested
// errors detected by hardware exceptions, software assertions, and VM
// transition detection, plus the undetected residue.
//
// Paper anchors (30,000 injections, ~17,700 manifested): coverage up to
// 99.4%, average 97.6%; H/W exceptions ~85.1%, S/W assertions ~5.2%,
// VM transition detection ~6.9%, undetected ~2.4%.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "workloads/workload.hpp"

int main() {
  using namespace xentry;
  bench::print_header("Fig. 8: overall detection coverage");

  fault::TrainedDetector det = bench::train_paper_model();

  std::printf("%-10s %10s %8s %8s %8s %8s %9s\n", "benchmark", "manifested",
              "hw_exc", "sw_asrt", "vm_tran", "undet", "coverage");

  fault::CoverageBreakdown total;
  const int per_benchmark = bench::scaled(30000) / 6;
  for (wl::Benchmark b : wl::all_benchmarks()) {
    fault::CampaignConfig cfg;
    cfg.injections = per_benchmark;
    cfg.seed = 202 + static_cast<std::uint64_t>(b);
    cfg.model = det.rules;
    cfg.workload = wl::profile(b, wl::VirtMode::Para);
    const auto res = fault::run_campaign(cfg);
    const auto cov = fault::coverage_breakdown(res.records);
    std::printf("%-10s %10zu %7.1f%% %7.1f%% %7.1f%% %7.1f%% %8.1f%%\n",
                std::string(wl::benchmark_name(b)).c_str(), cov.manifested,
                100 * cov.share(cov.hw_exception),
                100 * cov.share(cov.sw_assertion),
                100 * cov.share(cov.vm_transition),
                100 * cov.share(cov.undetected), 100 * cov.coverage());
    total.manifested += cov.manifested;
    total.hw_exception += cov.hw_exception;
    total.sw_assertion += cov.sw_assertion;
    total.vm_transition += cov.vm_transition;
    total.undetected += cov.undetected;
  }
  std::printf("%-10s %10zu %7.1f%% %7.1f%% %7.1f%% %7.1f%% %8.1f%%\n", "AVG",
              total.manifested, 100 * total.share(total.hw_exception),
              100 * total.share(total.sw_assertion),
              100 * total.share(total.vm_transition),
              100 * total.share(total.undetected), 100 * total.coverage());
  std::printf(
      "\npaper anchors: coverage up to 99.4%%, avg 97.6%%; hw 85.1%%, "
      "sw 5.2%%, vmt 6.9%%, undetected 2.4%%.\n");
  return 0;
}
