// Consolidated-server scenario from the paper's introduction: a physical
// host running guest VMs whose workloads hammer the hypervisor hundreds of
// thousands of times per second, with occasional soft errors striking
// during hypervisor execution.
//
//   $ ./datacenter_sim [benchmark] [seconds] [faults_per_million]
//
// Streams workload activations through a Xentry-protected machine,
// injecting faults at the requested rate, and prints a per-second ops log
// plus a final incident report.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>

#include "fault/campaign.hpp"
#include "fault/training.hpp"
#include "workloads/workload.hpp"

using namespace xentry;

int main(int argc, char** argv) {
  const char* bench_name = argc > 1 ? argv[1] : "postmark";
  const int seconds = argc > 2 ? std::atoi(argv[2]) : 5;
  const int faults_per_million = argc > 3 ? std::atoi(argv[3]) : 3000;

  wl::Benchmark bench = wl::Benchmark::postmark;
  for (wl::Benchmark b : wl::all_benchmarks()) {
    if (wl::benchmark_name(b) == bench_name) bench = b;
  }

  // Train a detector on a quick campaign before "deploying" the host.
  std::printf("training transition detector...\n");
  fault::CampaignConfig tc;
  tc.injections = 12000;
  tc.seed = 77;
  tc.collect_dataset = true;
  fault::TrainedDetector det =
      fault::train_detector(fault::run_campaign(tc).dataset);

  hv::Machine golden, host;
  Xentry xentry;
  xentry.set_model(det.rules);
  fault::InjectionExperiment experiment(golden, host, xentry);
  wl::WorkloadGenerator gen(golden, wl::profile(bench, wl::VirtMode::Para),
                            1234);
  std::mt19937_64 rng(99);
  std::bernoulli_distribution strikes(faults_per_million / 1e6);

  std::printf("host up: 4 VMs running %s (PV), fault rate %d/M "
              "activations\n\n",
              std::string(wl::benchmark_name(bench)).c_str(),
              faults_per_million);

  std::size_t total = 0, faults = 0, detected = 0, escaped = 0, benign = 0;
  for (int s = 0; s < seconds; ++s) {
    // Scale the second down so the demo stays interactive: simulate
    // rate/100 activations per wall second.
    const auto per_second =
        static_cast<std::size_t>(gen.sample_rate() / 100.0);
    std::size_t sec_detected = 0;
    for (std::size_t i = 0; i < per_second; ++i) {
      const hv::Activation act = gen.next();
      ++total;
      if (!strikes(rng)) {
        experiment.advance(act);
        continue;
      }
      ++faults;
      const auto probe = experiment.probe_golden(act);
      if (probe.steps == 0) continue;
      const hv::Injection inj =
          fault::InjectionExperiment::draw_activated_injection(
              rng, probe.trace, golden.microvisor().program);
      const auto result = experiment.run_one(act, inj);
      if (result.record.detected) {
        ++detected;
        ++sec_detected;
      } else if (fault::is_manifested(result.record.consequence)) {
        ++escaped;
      } else {
        ++benign;
      }
      // Recovery: re-align the host with the golden machine.
      host.restore(golden.snapshot());
    }
    std::printf("t=%ds  %8zu activations  %2zu faults detected\n", s + 1,
                per_second, sec_detected);
  }

  std::printf("\nincident report\n");
  std::printf("  activations served:   %zu (scaled 1:100)\n", total);
  std::printf("  soft errors struck:   %zu\n", faults);
  std::printf("  detected & recovered: %zu\n", detected);
  std::printf("  benign (masked):      %zu\n", benign);
  std::printf("  escaped detection:    %zu\n", escaped);
  if (faults > benign) {
    std::printf("  detection coverage:   %.1f%%\n",
                100.0 * static_cast<double>(detected) /
                    static_cast<double>(faults - benign));
  }
  return 0;
}
